// Package fixture provides shared test inputs: the paper's running
// example (Fig. 1/2/5) with its exactly-known immutable regions, and
// random general-position cases for property-based cross-validation.
package fixture

import (
	"math/rand"

	"repro/internal/vec"
)

// RunningExample returns the dataset, query and k of the paper's Fig. 1:
// d1=(0.8,0.32), d2=(0.7,0.5), d3=(0.1,0.8), d4=(0.1,0.6), q=(0.8,0.5),
// k=2. The top-2 result is [d2, d1] (ids 1, 0), the candidate list [d3]
// (id 2), IR1=(−16/35, 0.1), IR2=(−1/18, 0.5).
func RunningExample() (tuples []vec.Sparse, q vec.Query, k int) {
	tuples = []vec.Sparse{
		vec.FromDense([]float64{0.8, 0.32}), // d1, id 0
		vec.FromDense([]float64{0.7, 0.5}),  // d2, id 1
		vec.FromDense([]float64{0.1, 0.8}),  // d3, id 2
		vec.FromDense([]float64{0.1, 0.6}),  // d4, id 3
	}
	q = vec.MustQuery([]int{0, 1}, []float64{0.8, 0.5})
	return tuples, q, 2
}

// Case is one randomized test scenario in general position: every tuple
// is non-zero on at least one query dimension, so TA's view of the
// ranking agrees with the naive one for any k ≤ n.
type Case struct {
	Tuples []vec.Sparse
	M      int
	Q      vec.Query
	K      int
}

// RandCase draws a scenario: n tuples in m dimensions, a qlen-dimension
// query, and k. density controls how many extra (non-query) coordinates
// each tuple carries; sparsity within query dimensions varies per tuple
// so that all three candidate classes (C0/CH/CL) occur.
func RandCase(rng *rand.Rand, n, m, qlen, k int) Case {
	if qlen > m {
		qlen = m
	}
	dims := rng.Perm(m)[:qlen]
	weights := make([]float64, qlen)
	for i := range weights {
		weights[i] = 0.05 + 0.95*rng.Float64()
	}
	q := vec.MustQuery(dims, weights)

	tuples := make([]vec.Sparse, n)
	for i := range tuples {
		var entries []vec.Entry
		// Choose how many query dimensions this tuple is non-zero on:
		// 1 with p=1/2 (C0/CH material), otherwise 2..qlen (CL material).
		nz := 1
		if qlen > 1 && rng.Float64() < 0.5 {
			nz = 2 + rng.Intn(qlen-1)
		}
		perm := rng.Perm(qlen)
		for _, p := range perm[:nz] {
			entries = append(entries, vec.Entry{Dim: q.Dims[p], Val: 0.05 + 0.95*rng.Float64()})
		}
		// Sprinkle non-query coordinates (they never affect scores).
		for d := 0; d < m; d++ {
			if q.Pos(d) >= 0 {
				continue
			}
			if rng.Float64() < 0.3 {
				entries = append(entries, vec.Entry{Dim: d, Val: rng.Float64()})
			}
		}
		t, err := vec.NewSparse(entries)
		if err != nil {
			panic(err)
		}
		tuples[i] = t
	}
	return Case{Tuples: tuples, M: m, Q: q, K: k}
}
