// Package dataset provides the three evaluation datasets of §7.1 as
// synthetic equivalents (the originals are not redistributable; see
// DESIGN.md for the substitution rationale):
//
//   - WSJ: a sparse text corpus with Zipf-distributed document
//     frequencies and TF-IDF values — most tuples touch exactly one of a
//     random query's dimensions, which is what makes candidate pruning
//     shine (Fig. 6a, Fig. 10).
//   - KB: image-like feature vectors with moderate block correlation and
//     medium sparsity, so all three candidate classes are sizable
//     (Fig. 12).
//   - ST: dense multivariate-normal tuples with pairwise correlation 0.5
//     (the Matlab mvnrnd benchmark), where CL dominates and thresholding
//     carries CPT (Fig. 6b, Fig. 11).
//
// All generators are deterministic in their seed and emit tuples in
// [0,1]^m with per-dimension maxima normalized, matching the paper's
// data model.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/lists"
	"repro/internal/vec"
)

// Dataset is a generated collection plus the metadata query sampling
// needs (document frequencies per dimension).
type Dataset struct {
	Name   string
	Tuples []vec.Sparse
	M      int

	df []int // per-dimension document frequency
}

// New wraps raw tuples as a Dataset.
func New(name string, tuples []vec.Sparse, m int) *Dataset {
	d := &Dataset{Name: name, Tuples: tuples, M: m, df: make([]int, m)}
	for _, t := range tuples {
		for _, e := range t {
			d.df[e.Dim]++
		}
	}
	return d
}

// N returns the dataset cardinality.
func (d *Dataset) N() int { return len(d.Tuples) }

// DF returns the document frequency (inverted-list length) of dim.
func (d *Dataset) DF(dim int) int { return d.df[dim] }

// Index builds an in-memory inverted-list index over the dataset.
func (d *Dataset) Index() *lists.MemIndex { return lists.NewMemIndex(d.Tuples, d.M) }

// Save persists the dataset in the on-disk storage formats.
func (d *Dataset) Save(tuplePath, listPath string) error {
	return lists.SaveDataset(tuplePath, listPath, d.Tuples, d.M)
}

// SampleQuery draws a query over qlen distinct dimensions whose inverted
// lists have at least minDF entries (so top-k is well-populated), with
// weights uniform in [0.2, 1] — the paper's random query formation.
func (d *Dataset) SampleQuery(rng *rand.Rand, qlen, minDF int) (vec.Query, error) {
	var eligible []int
	for dim, f := range d.df {
		if f >= minDF {
			eligible = append(eligible, dim)
		}
	}
	if len(eligible) < qlen {
		return vec.Query{}, fmt.Errorf("dataset %s: only %d dimensions with df >= %d, need %d",
			d.Name, len(eligible), minDF, qlen)
	}
	perm := rng.Perm(len(eligible))[:qlen]
	dims := make([]int, qlen)
	weights := make([]float64, qlen)
	for i, p := range perm {
		dims[i] = eligible[p]
		weights[i] = 0.2 + 0.8*rng.Float64()
	}
	return vec.NewQuery(dims, weights)
}

// WSJConfig parameterizes the text-corpus generator. Zero fields take the
// scaled-down defaults; the paper-scale corpus is Docs=172891,
// Vocab=181978.
type WSJConfig struct {
	Docs      int     // number of documents (default 8000)
	Vocab     int     // vocabulary size (default 12000)
	MeanTerms int     // mean distinct terms per document (default 60)
	ZipfS     float64 // Zipf skew of term popularity (default 1.1)
	Seed      int64
}

func (c *WSJConfig) defaults() {
	if c.Docs == 0 {
		c.Docs = 8000
	}
	if c.Vocab == 0 {
		c.Vocab = 12000
	}
	if c.MeanTerms == 0 {
		c.MeanTerms = 60
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
}

// GenerateWSJ builds the synthetic WSJ-like corpus: Zipfian term
// popularity gives uneven inverted-list lengths, values are
// TF·IDF normalized per dimension, and term co-occurrence for randomly
// chosen query terms is low.
func GenerateWSJ(cfg WSJConfig) *Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Vocab-1))

	type posting struct {
		doc int
		tf  float64
	}
	byTerm := make(map[int][]posting, cfg.Vocab)
	for doc := 0; doc < cfg.Docs; doc++ {
		// Log-normal distinct-term count, clamped.
		nTerms := int(math.Exp(math.Log(float64(cfg.MeanTerms)) + 0.5*rng.NormFloat64()))
		if nTerms < 5 {
			nTerms = 5
		}
		if nTerms > cfg.Vocab/2 {
			nTerms = cfg.Vocab / 2
		}
		seen := make(map[int]bool, nTerms)
		for len(seen) < nTerms {
			term := int(zipf.Uint64())
			if seen[term] {
				continue
			}
			seen[term] = true
			tf := 1 + rng.ExpFloat64()*2 // term frequency, heavy-tailed
			byTerm[term] = append(byTerm[term], posting{doc: doc, tf: tf})
		}
	}

	// TF-IDF values, normalized to (0,1] per dimension. Terms appearing
	// in a single document are dropped, as in the paper's preprocessing.
	entriesByDoc := make([][]vec.Entry, cfg.Docs)
	for term, ps := range byTerm {
		df := len(ps)
		if df < 2 {
			continue
		}
		idf := math.Log(float64(cfg.Docs) / float64(df))
		maxV := 0.0
		for _, p := range ps {
			if v := p.tf * idf; v > maxV {
				maxV = v
			}
		}
		if maxV == 0 {
			continue
		}
		for _, p := range ps {
			entriesByDoc[p.doc] = append(entriesByDoc[p.doc], vec.Entry{Dim: term, Val: p.tf * idf / maxV})
		}
	}
	tuples := make([]vec.Sparse, cfg.Docs)
	for doc, entries := range entriesByDoc {
		t, err := vec.NewSparse(entries)
		if err != nil {
			panic(err)
		}
		tuples[doc] = t
	}
	return New("WSJ", tuples, cfg.Vocab)
}

// KBConfig parameterizes the image-feature generator. The paper-scale
// dataset is Images=28452, Features=9693.
type KBConfig struct {
	Images    int     // default 8000
	Features  int     // default 1200
	BlockSize int     // correlated feature block width (default 20)
	Rho       float64 // intra-block correlation (default 0.55)
	Seed      int64
}

func (c *KBConfig) defaults() {
	if c.Images == 0 {
		c.Images = 8000
	}
	if c.Features == 0 {
		c.Features = 1200
	}
	if c.BlockSize == 0 {
		c.BlockSize = 20
	}
	if c.Rho == 0 {
		c.Rho = 0.55
	}
}

// GenerateKB builds the synthetic KB-like feature set: features come in
// correlated blocks; each image activates a subset of blocks, so tuples
// have medium sparsity and random queries see all of C0/CH/CL.
func GenerateKB(cfg KBConfig) *Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nBlocks := (cfg.Features + cfg.BlockSize - 1) / cfg.BlockSize
	rootRho := math.Sqrt(cfg.Rho)
	rootRest := math.Sqrt(1 - cfg.Rho)

	tuples := make([]vec.Sparse, cfg.Images)
	for img := 0; img < cfg.Images; img++ {
		var entries []vec.Entry
		for b := 0; b < nBlocks; b++ {
			if rng.Float64() > 0.35 {
				continue // block inactive for this image
			}
			z := rng.NormFloat64() // shared block factor
			lo := b * cfg.BlockSize
			hi := lo + cfg.BlockSize
			if hi > cfg.Features {
				hi = cfg.Features
			}
			for f := lo; f < hi; f++ {
				if rng.Float64() > 0.7 {
					continue
				}
				v := 0.5 + 0.22*(rootRho*z+rootRest*rng.NormFloat64())
				if v <= 0 {
					continue
				}
				if v > 1 {
					v = 1
				}
				entries = append(entries, vec.Entry{Dim: f, Val: v})
			}
		}
		if len(entries) == 0 {
			f := rng.Intn(cfg.Features)
			entries = append(entries, vec.Entry{Dim: f, Val: 0.1 + 0.9*rng.Float64()})
		}
		t, err := vec.NewSparse(entries)
		if err != nil {
			panic(err)
		}
		tuples[img] = t
	}
	return New("KB", tuples, cfg.Features)
}

// STConfig parameterizes the correlated synthetic generator. The paper
// uses N=1e6, M=20, Rho=0.5 (Matlab mvnrnd).
type STConfig struct {
	N     int     // default 50000
	M     int     // default 20
	Rho   float64 // pairwise correlation (default 0.5)
	Seed  int64
	Mu    float64 // mean (default 0.5)
	Sigma float64 // marginal std dev (default 0.15)
}

func (c *STConfig) defaults() {
	if c.N == 0 {
		c.N = 50000
	}
	if c.M == 0 {
		c.M = 20
	}
	if c.Rho == 0 {
		c.Rho = 0.5
	}
	if c.Mu == 0 {
		c.Mu = 0.5
	}
	if c.Sigma == 0 {
		c.Sigma = 0.15
	}
}

// GenerateST draws N tuples from a multivariate normal with constant
// pairwise correlation Rho via the Cholesky factor of the correlation
// matrix (our stand-in for mvnrnd), clipped to [0,1]^M. Tuples cluster
// along the [0,…,0]–[1,…,1] diagonal exactly as the paper describes.
func GenerateST(cfg STConfig) *Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	corr := constantCorrelation(cfg.M, cfg.Rho)
	L, err := Cholesky(corr)
	if err != nil {
		panic(err)
	}
	tuples := make([]vec.Sparse, cfg.N)
	z := make([]float64, cfg.M)
	x := make([]float64, cfg.M)
	for i := 0; i < cfg.N; i++ {
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		// x = mu + sigma * L z
		for r := 0; r < cfg.M; r++ {
			s := 0.0
			for c := 0; c <= r; c++ {
				s += L[r][c] * z[c]
			}
			v := cfg.Mu + cfg.Sigma*s
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			x[r] = v
		}
		tuples[i] = vec.FromDense(x)
	}
	return New("ST", tuples, cfg.M)
}

// constantCorrelation builds (1-rho)·I + rho·J.
func constantCorrelation(m int, rho float64) [][]float64 {
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
		for j := range a[i] {
			if i == j {
				a[i][j] = 1
			} else {
				a[i][j] = rho
			}
		}
	}
	return a
}

// Cholesky returns the lower-triangular L with L·Lᵀ = a, or an error if
// a is not positive definite.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= L[i][k] * L[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("dataset: matrix not positive definite at %d (pivot %v)", i, s)
				}
				L[i][i] = math.Sqrt(s)
			} else {
				L[i][j] = s / L[j][j]
			}
		}
	}
	return L, nil
}

// Stats summarizes structural properties of a dataset; the generators'
// tests pin these to the regimes the figures depend on.
type Stats struct {
	N, M         int
	Postings     int
	MeanNNZ      float64
	MaxListLen   int
	MedListLen   int
	GiniListLen  float64 // inequality of list lengths (Zipf signature)
	MeanPairCorr float64 // average pairwise correlation over sampled dims
}

// ComputeStats derives Stats, sampling up to sampleDims dimensions for
// the correlation estimate.
func ComputeStats(d *Dataset, rng *rand.Rand, sampleDims int) Stats {
	st := Stats{N: d.N(), M: d.M}
	nnz := 0
	var lens []int
	for _, f := range d.df {
		if f > 0 {
			lens = append(lens, f)
			nnz += f
		}
	}
	st.Postings = nnz
	st.MeanNNZ = float64(nnz) / float64(max(1, d.N()))
	sort.Ints(lens)
	if len(lens) > 0 {
		st.MaxListLen = lens[len(lens)-1]
		st.MedListLen = lens[len(lens)/2]
		st.GiniListLen = gini(lens)
	}
	st.MeanPairCorr = meanPairwiseCorrelation(d, rng, sampleDims)
	return st
}

// gini computes the Gini coefficient of sorted positive values.
func gini(sorted []int) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	var cum, total float64
	for i, v := range sorted {
		cum += float64(v) * float64(2*(i+1)-n-1)
		total += float64(v)
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// meanPairwiseCorrelation estimates the average Pearson correlation
// between sampled pairs of populated dimensions.
func meanPairwiseCorrelation(d *Dataset, rng *rand.Rand, sampleDims int) float64 {
	var dims []int
	for dim, f := range d.df {
		if f >= d.N()/20 && f >= 2 {
			dims = append(dims, dim)
		}
	}
	if len(dims) < 2 {
		return 0
	}
	if sampleDims > len(dims) {
		sampleDims = len(dims)
	}
	perm := rng.Perm(len(dims))[:sampleDims]
	cols := make([][]float64, sampleDims)
	for i, p := range perm {
		col := make([]float64, d.N())
		dim := dims[p]
		for id, t := range d.Tuples {
			col[id] = t.Get(dim)
		}
		cols[i] = col
	}
	var sum float64
	var cnt int
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			sum += pearson(cols[i], cols[j])
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
