package dataset

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/lists"
)

func TestGenerateWSJShape(t *testing.T) {
	d := GenerateWSJ(WSJConfig{Docs: 2000, Vocab: 4000, Seed: 1})
	if d.N() != 2000 || d.M != 4000 {
		t.Fatalf("n=%d m=%d", d.N(), d.M)
	}
	rng := rand.New(rand.NewSource(2))
	st := ComputeStats(d, rng, 12)
	if st.MeanNNZ < 10 || st.MeanNNZ > 400 {
		t.Errorf("mean nnz = %v, outside plausible corpus range", st.MeanNNZ)
	}
	// Zipf popularity ⇒ strongly unequal list lengths.
	if st.GiniListLen < 0.4 {
		t.Errorf("gini of list lengths = %v, want >= 0.4 (Zipf signature)", st.GiniListLen)
	}
	if st.MaxListLen <= 4*st.MedListLen {
		t.Errorf("max list %d vs median %d: lists not uneven enough", st.MaxListLen, st.MedListLen)
	}
	// Near-zero correlation between randomly sampled common terms.
	if math.Abs(st.MeanPairCorr) > 0.22 {
		t.Errorf("mean pairwise correlation = %v, want ~0 for text", st.MeanPairCorr)
	}
	for id, tp := range d.Tuples {
		if err := tp.Validate(); err != nil {
			t.Fatalf("doc %d: %v", id, err)
		}
	}
}

// TestWSJSingletonDominance: for random queries on the corpus, tuples
// touching exactly one query dimension must dominate — the regime in
// which pruning is effective (Fig. 6a).
func TestWSJSingletonDominance(t *testing.T) {
	d := GenerateWSJ(WSJConfig{Docs: 3000, Vocab: 5000, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	single, multi := 0, 0
	for trial := 0; trial < 10; trial++ {
		q, err := d.SampleQuery(rng, 4, 40)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range d.Tuples {
			switch nz := q.NonZeroQueryDims(tp); {
			case nz == 1:
				single++
			case nz > 1:
				multi++
			}
		}
	}
	if single < 5*multi {
		t.Errorf("singleton/multi = %d/%d; want singletons to dominate strongly", single, multi)
	}
}

func TestGenerateKBShape(t *testing.T) {
	d := GenerateKB(KBConfig{Images: 2000, Features: 600, Seed: 5})
	if d.N() != 2000 || d.M != 600 {
		t.Fatalf("n=%d m=%d", d.N(), d.M)
	}
	rng := rand.New(rand.NewSource(6))
	st := ComputeStats(d, rng, 16)
	// Moderate sparsity: a fair share of the features per image.
	frac := st.MeanNNZ / float64(d.M)
	if frac < 0.05 || frac > 0.6 {
		t.Errorf("mean active fraction = %v, want medium sparsity", frac)
	}
	for _, tp := range d.Tuples {
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateSTCorrelation(t *testing.T) {
	d := GenerateST(STConfig{N: 4000, M: 10, Rho: 0.5, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	st := ComputeStats(d, rng, 10)
	if st.MeanPairCorr < 0.3 || st.MeanPairCorr > 0.7 {
		t.Errorf("mean pairwise correlation = %v, want ≈ 0.5", st.MeanPairCorr)
	}
	// Dense tuples: nearly all coordinates populated.
	if st.MeanNNZ < float64(d.M)*0.9 {
		t.Errorf("mean nnz = %v of %d, want dense", st.MeanNNZ, d.M)
	}
	for _, tp := range d.Tuples {
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCholesky(t *testing.T) {
	a := constantCorrelation(6, 0.5)
	L, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L Lᵀ must reproduce a.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			s := 0.0
			for k := 0; k < 6; k++ {
				s += L[i][k] * L[j][k]
			}
			if math.Abs(s-a[i][j]) > 1e-12 {
				t.Fatalf("LLt[%d][%d] = %v, want %v", i, j, s, a[i][j])
			}
		}
	}
	// Non-PD matrix must be rejected.
	bad := [][]float64{{1, 2}, {2, 1}}
	if _, err := Cholesky(bad); err == nil {
		t.Fatal("non-positive-definite matrix accepted")
	}
}

func TestSampleQuery(t *testing.T) {
	d := GenerateST(STConfig{N: 500, M: 8, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	q, err := d.SampleQuery(rng, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 4 {
		t.Fatalf("qlen = %d", q.Len())
	}
	for i, dim := range q.Dims {
		if d.DF(dim) < 10 {
			t.Errorf("dim %d has df %d < 10", dim, d.DF(dim))
		}
		if q.Weights[i] < 0.2 || q.Weights[i] > 1 {
			t.Errorf("weight %v outside [0.2,1]", q.Weights[i])
		}
	}
	if _, err := d.SampleQuery(rng, 4, d.N()+1); err == nil {
		t.Fatal("impossible df threshold accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := GenerateKB(KBConfig{Images: 300, Features: 80, Seed: 11})
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "t.dat"), filepath.Join(dir, "l.dat")
	if err := d.Save(tp, lp); err != nil {
		t.Fatal(err)
	}
	ix, err := lists.OpenDiskIndex(tp, lp, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.NumTuples() != d.N() || ix.Dim() != d.M {
		t.Fatalf("reload: n=%d m=%d", ix.NumTuples(), ix.Dim())
	}
	for _, id := range []int{0, 17, 299} {
		got := ix.Tuple(id)
		want := d.Tuples[id]
		if len(got) != len(want) {
			t.Fatalf("tuple %d mismatch", id)
		}
	}
}

func TestGini(t *testing.T) {
	if g := gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("gini of equal values = %v, want 0", g)
	}
	if g := gini([]int{0, 0, 0, 100}); g < 0.7 {
		t.Errorf("gini of concentrated values = %v, want high", g)
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateWSJ(WSJConfig{Docs: 300, Vocab: 500, Seed: 42})
	b := GenerateWSJ(WSJConfig{Docs: 300, Vocab: 500, Seed: 42})
	if a.N() != b.N() {
		t.Fatal("nondeterministic cardinality")
	}
	for i := range a.Tuples {
		if len(a.Tuples[i]) != len(b.Tuples[i]) {
			t.Fatalf("doc %d differs between runs", i)
		}
		for j := range a.Tuples[i] {
			if a.Tuples[i][j] != b.Tuples[i][j] {
				t.Fatalf("doc %d entry %d differs", i, j)
			}
		}
	}
}
