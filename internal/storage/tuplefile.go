package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro/internal/vec"
)

// tupleMagic identifies the external tuple file ("external file holding
// the entire data vectors" in the paper's system model).
var tupleMagic = [8]byte{'I', 'R', 'T', 'U', 'P', '0', '0', '1'}

// WriteTupleFile persists tuples to path. The format is:
//
//	magic[8] | numTuples uint32 | m uint32 | offsets [numTuples]int64 |
//	records: (nnz uint32, nnz × (dim uint32, val float64))
//
// Records are addressed by the offsets table, enabling O(1) random access.
func WriteTupleFile(path string, tuples []vec.Sparse, m int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	w := &crcWriter{w: bw}

	if _, err := w.Write(tupleMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(tuples)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	// offsets
	base := int64(8+8) + int64(8*len(tuples))
	off := base
	offBuf := make([]byte, 8)
	for _, t := range tuples {
		binary.LittleEndian.PutUint64(offBuf, uint64(off))
		if _, err := w.Write(offBuf); err != nil {
			return err
		}
		off += int64(4 + 12*len(t))
	}
	// records
	rec := make([]byte, 0, 4+12*64)
	for _, t := range tuples {
		rec = rec[:0]
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(t)))
		for _, e := range t {
			rec = binary.LittleEndian.AppendUint32(rec, uint32(e.Dim))
			rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(e.Val))
		}
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	if err := w.writeTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// TupleFile provides random access to tuples persisted by WriteTupleFile.
// Every Get is accounted as one random I/O against the supplied stats,
// mirroring the paper's accounting where each evaluated candidate costs
// one random fetch of its full vector.
type TupleFile struct {
	pager   *Pager
	stats   *IOStats
	offsets []int64
	sizes   []int32
	m       int
}

// OpenTupleFile opens a tuple file. poolPages sizes the buffer pool used
// for the physical reads (0 disables it); logical random-read counting is
// unaffected by pool hits.
func OpenTupleFile(path string, stats *IOStats, poolPages int) (*TupleFile, error) {
	pager, err := NewPager(path, poolPages)
	if err != nil {
		return nil, err
	}
	tf := &TupleFile{pager: pager, stats: stats}
	hdr := make([]byte, 16)
	if _, err := pager.ReadRange(0, hdr); err != nil {
		pager.Close()
		return nil, err
	}
	if string(hdr[:8]) != string(tupleMagic[:]) {
		pager.Close()
		return nil, fmt.Errorf("storage: %s is not a tuple file", path)
	}
	n := int(binary.LittleEndian.Uint32(hdr[8:12]))
	tf.m = int(binary.LittleEndian.Uint32(hdr[12:16]))
	offRaw := make([]byte, 8*n)
	if _, err := pager.ReadRange(16, offRaw); err != nil {
		pager.Close()
		return nil, err
	}
	tf.offsets = make([]int64, n)
	for i := 0; i < n; i++ {
		tf.offsets[i] = int64(binary.LittleEndian.Uint64(offRaw[8*i:]))
	}
	payloadEnd, err := dataEnd(pager, path)
	if err != nil {
		pager.Close()
		return nil, err
	}
	tf.sizes = make([]int32, n)
	for i := 0; i < n; i++ {
		end := payloadEnd
		if i+1 < n {
			end = tf.offsets[i+1]
		}
		tf.sizes[i] = int32(end - tf.offsets[i])
	}
	return tf, nil
}

// Close releases the file.
func (tf *TupleFile) Close() error { return tf.pager.Close() }

// NumTuples returns the dataset cardinality.
func (tf *TupleFile) NumTuples() int { return len(tf.offsets) }

// Dim returns the dimensionality m.
func (tf *TupleFile) Dim() int { return tf.m }

// Get fetches tuple id. One logical random read is charged per call.
func (tf *TupleFile) Get(id int) (vec.Sparse, error) { return tf.GetWith(id, tf.stats) }

// GetWith fetches tuple id, charging the random read to st instead of the
// file's meter (st is typically a per-query Child of the shared meter).
// On a mapped pager the record is decoded straight out of the mmap
// region (no copy, no buffer-pool traffic); the logical random-read
// charge is identical either way, so the paper's metrics don't depend on
// the transport.
func (tf *TupleFile) GetWith(id int, st *IOStats) (vec.Sparse, error) {
	if id < 0 || id >= len(tf.offsets) {
		return nil, fmt.Errorf("storage: tuple id %d out of range [0,%d)", id, len(tf.offsets))
	}
	raw, zeroCopy := tf.pager.Slice(tf.offsets[id], int(tf.sizes[id]))
	if !zeroCopy {
		raw = make([]byte, tf.sizes[id])
		if _, err := tf.pager.ReadRange(tf.offsets[id], raw); err != nil {
			return nil, err
		}
	}
	if st != nil {
		st.AddRandRead(len(raw))
		if zeroCopy {
			st.AddBypass(1)
		}
	}
	nnz := int(binary.LittleEndian.Uint32(raw[0:4]))
	if 4+12*nnz > len(raw) {
		return nil, fmt.Errorf("storage: tuple %d corrupt (nnz=%d, %d bytes)", id, nnz, len(raw))
	}
	t := make(vec.Sparse, nnz)
	for i := 0; i < nnz; i++ {
		base := 4 + 12*i
		t[i] = vec.Entry{
			Dim: int(binary.LittleEndian.Uint32(raw[base : base+4])),
			Val: math.Float64frombits(binary.LittleEndian.Uint64(raw[base+4 : base+12])),
		}
	}
	return t, nil
}
