package storage

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/vec"
)

func randTuples(rng *rand.Rand, n, m int) []vec.Sparse {
	tuples := make([]vec.Sparse, n)
	for i := range tuples {
		var entries []vec.Entry
		for d := 0; d < m; d++ {
			if rng.Float64() < 0.4 {
				entries = append(entries, vec.Entry{Dim: d, Val: rng.Float64()})
			}
		}
		if len(entries) == 0 {
			entries = append(entries, vec.Entry{Dim: rng.Intn(m), Val: rng.Float64() + 0.001})
		}
		t, _ := vec.NewSparse(entries)
		tuples[i] = t
	}
	return tuples
}

func TestTupleFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tuples := randTuples(rng, 200, 12)
	path := filepath.Join(t.TempDir(), "tuples.dat")
	if err := WriteTupleFile(path, tuples, 12); err != nil {
		t.Fatal(err)
	}
	stats := &IOStats{}
	tf, err := OpenTupleFile(path, stats, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if tf.NumTuples() != 200 || tf.Dim() != 12 {
		t.Fatalf("header: n=%d m=%d", tf.NumTuples(), tf.Dim())
	}
	for _, id := range rng.Perm(200) {
		got, err := tf.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		want := tuples[id]
		if len(got) != len(want) {
			t.Fatalf("tuple %d: %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tuple %d entry %d: %v, want %v", id, i, got[i], want[i])
			}
		}
	}
	if stats.RandReads() != 200 {
		t.Fatalf("rand reads = %d, want 200 (one per Get)", stats.RandReads())
	}
	if _, err := tf.Get(200); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := tf.Get(-1); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestOpenTupleFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lists.dat")
	if err := WriteListFile(path, map[int][]Posting{0: {{ID: 1, Val: 0.5}}}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTupleFile(path, &IOStats{}, 0); err == nil {
		t.Fatal("list file accepted as tuple file")
	}
}

func TestListFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	lists := map[int][]Posting{}
	for d := 0; d < 7; d++ {
		n := rng.Intn(900)
		l := make([]Posting, n)
		val := 1.0
		for i := range l {
			val -= rng.Float64() / float64(n+1)
			if val < 0 {
				val = 0
			}
			l[i] = Posting{ID: rng.Intn(10000), Val: val}
		}
		lists[d] = l
	}
	path := filepath.Join(t.TempDir(), "lists.dat")
	if err := WriteListFile(path, lists, 7); err != nil {
		t.Fatal(err)
	}
	stats := &IOStats{}
	lf, err := OpenListFile(path, stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	for d, want := range lists {
		if lf.ListLen(d) != len(want) {
			t.Fatalf("dim %d: len %d, want %d", d, lf.ListLen(d), len(want))
		}
		cur := lf.Cursor(d)
		if p, ok := cur.Peek(); len(want) > 0 && (!ok || p != want[0]) {
			t.Fatalf("dim %d: Peek %v,%v", d, p, ok)
		}
		for i, w := range want {
			got, ok := cur.Next()
			if !ok || got != w {
				t.Fatalf("dim %d posting %d: %v (ok=%v), want %v", d, i, got, ok, w)
			}
		}
		if _, ok := cur.Next(); ok {
			t.Fatalf("dim %d: cursor did not end", d)
		}
		if cur.Consumed() != len(want) {
			t.Fatalf("dim %d: consumed %d, want %d", d, cur.Consumed(), len(want))
		}
	}
	if stats.SeqPages() == 0 {
		t.Fatal("no sequential pages recorded")
	}
	// A dimension without a list yields an empty cursor.
	if _, ok := lf.Cursor(99).Next(); ok {
		t.Fatal("missing dimension returned postings")
	}
}

func TestIOStats(t *testing.T) {
	s := &IOStats{}
	s.AddSeqPage(3)
	s.AddRandRead(100)
	seq, rnd, bytes := s.Snapshot()
	if seq != 3 || rnd != 1 || bytes != 3*PageSize+100 {
		t.Fatalf("snapshot %d %d %d", seq, rnd, bytes)
	}
	s.Reset()
	if s.SeqPages() != 0 || s.RandReads() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDiskModel(t *testing.T) {
	m := DiskModel{SeqPage: time.Millisecond, RandRead: 10 * time.Millisecond}
	if got := m.Time(5, 2); got != 25*time.Millisecond {
		t.Fatalf("Time = %v", got)
	}
	s := &IOStats{}
	s.AddSeqPage(2)
	if got := m.TimeOf(s); got != 2*time.Millisecond {
		t.Fatalf("TimeOf = %v", got)
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.put(lruKey{1, 1}, "a")
	c.put(lruKey{1, 2}, "b")
	if v, ok := c.get(lruKey{1, 1}); !ok || v != "a" {
		t.Fatal("miss on present key")
	}
	c.put(lruKey{1, 3}, "c") // evicts (1,2), the LRU
	if _, ok := c.get(lruKey{1, 2}); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.get(lruKey{1, 1}); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	c.put(lruKey{1, 1}, "a2") // refresh
	if v, _ := c.get(lruKey{1, 1}); v != "a2" {
		t.Fatal("refresh failed")
	}
	c.reset()
	if c.len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestPagerPoolAvoidsRereads(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tuples := randTuples(rng, 50, 6)
	path := filepath.Join(t.TempDir(), "tuples.dat")
	if err := WriteTupleFile(path, tuples, 6); err != nil {
		t.Fatal(err)
	}
	p, err := NewPager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf := make([]byte, 128)
	m1, err := p.ReadRange(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == 0 {
		t.Fatal("first read had no misses")
	}
	m2, err := p.ReadRange(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != 0 {
		t.Fatalf("second read missed %d pages despite pool", m2)
	}
	if _, err := p.ReadRange(p.Size()-10, make([]byte, 20)); err == nil {
		t.Fatal("read past EOF accepted")
	}
}
