//go:build (linux || darwin) && !nommap

package storage

import (
	"os"
	"syscall"
)

// Read-only mmap support for generation files. Generation files are
// immutable once written (writers always create a fresh generation and
// swap), so a shared read-only mapping is safe for any number of
// concurrent readers: TupleFile/ListFile cursors decode straight out of
// the mapping without per-read buffer allocation or buffer-pool copies,
// and the replication sender ships snapshot chunks as subslices of the
// mapping. The mapping pins the file's data blocks via the fd, so a
// checkpoint swap may unlink the path at any time; readers drain (the
// engine's write lock) before Close munmaps.
//
// The fallback build (mmap_fallback.go, tag nommap or an unsupported
// platform) keeps the original pread+LRU path byte-for-byte.

// mmapEnabled reports whether this build maps generation files.
const mmapEnabled = true

// mapFile maps size bytes of f read-only. A nil mapping (with nil
// error) means "not mapped" and callers fall back to pread.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// unmapFile releases a mapping returned by mapFile.
func unmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}

// MapForRead maps an already-open file read-only and returns the mapped
// bytes with a release func. The mapping references the fd's inode, not
// the path, so it stays valid even if the path is unlinked or swapped by
// a checkpoint while the bytes are being streamed. ok=false means the
// build or platform cannot map and the caller should stream via reads.
func MapForRead(f *os.File) (data []byte, release func() error, ok bool) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, false
	}
	data, err = mapFile(f, st.Size())
	if err != nil || data == nil {
		return nil, nil, false
	}
	return data, func() error { return unmapFile(data) }, true
}
