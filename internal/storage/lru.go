package storage

import "container/list"

// lruKey identifies a cached object: a page of a file or a tuple record.
type lruKey struct {
	file int
	id   int64
}

// lruCache is a fixed-capacity least-recently-used cache. It backs both
// the page-level buffer pool and the tuple cache. Not safe for concurrent
// use; callers serialize access (the engine is single-threaded per query,
// like the paper's).
type lruCache struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[lruKey]*list.Element
}

type lruEntry struct {
	key lruKey
	val interface{}
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), items: make(map[lruKey]*list.Element, capacity)}
}

// get returns the cached value and promotes it, or ok=false on a miss.
func (c *lruCache) get(k lruKey) (interface{}, bool) {
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(k lruKey, v interface{}) {
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&lruEntry{key: k, val: v})
	c.items[k] = el
	if c.order.Len() > c.cap {
		last := c.order.Back()
		if last != nil {
			c.order.Remove(last)
			delete(c.items, last.Value.(*lruEntry).key)
		}
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int { return c.order.Len() }

// reset drops all entries.
func (c *lruCache) reset() {
	c.order.Init()
	c.items = make(map[lruKey]*list.Element, c.cap)
}
