package storage

import (
	"container/list"
	"sync"
)

// lruKey identifies a cached object: a page of a file or a tuple record.
type lruKey struct {
	file int
	id   int64
}

// lruCache is a fixed-capacity least-recently-used cache. It backs both
// the page-level buffer pool and the tuple cache. A single mutex guards
// the recency list and map: concurrent queries share one buffer pool, and
// every operation (including get, which promotes) mutates the structure.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[lruKey]*list.Element
}

type lruEntry struct {
	key lruKey
	val interface{}
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), items: make(map[lruKey]*list.Element, capacity)}
}

// get returns the cached value and promotes it, or ok=false on a miss.
func (c *lruCache) get(k lruKey) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(k lruKey, v interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&lruEntry{key: k, val: v})
	c.items[k] = el
	if c.order.Len() > c.cap {
		last := c.order.Back()
		if last != nil {
			c.order.Remove(last)
			delete(c.items, last.Value.(*lruEntry).key)
		}
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// reset drops all entries.
func (c *lruCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[lruKey]*list.Element, c.cap)
}
