package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeRaw persists a deterministic pseudo-random blob of n bytes and
// returns its content.
func writeRaw(t *testing.T, n int) (string, []byte) {
	t.Helper()
	content := make([]byte, n)
	rand.New(rand.NewSource(int64(n))).Read(content)
	path := filepath.Join(t.TempDir(), "raw.dat")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, content
}

// TestReadRangeEdgeCases pins the ReadRange contract at the boundaries:
// reads straddling the final partial page, zero-length reads (in bounds
// and at EOF), reads ending exactly at EOF, and out-of-bounds rejections.
func TestReadRangeEdgeCases(t *testing.T) {
	size := PageSize + 100 // final page is partial
	path, content := writeRaw(t, size)
	p, err := NewPager(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	check := func(name string, off int64, n int) {
		t.Helper()
		dst := make([]byte, n)
		if _, err := p.ReadRange(off, dst); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(dst, content[off:off+int64(n)]) {
			t.Fatalf("%s: content mismatch", name)
		}
	}
	check("straddle final partial page", PageSize-50, 100)
	check("entirely inside final partial page", PageSize+10, 50)
	check("read ending exactly at EOF", int64(size-10), 10)
	check("full file", 0, size)
	check("zero-length at 0", 0, 0)
	check("zero-length mid-file", 123, 0)
	check("zero-length exactly at EOF", int64(size), 0)

	if _, err := p.ReadRange(int64(size)-10, make([]byte, 20)); err == nil {
		t.Fatal("read past EOF accepted")
	}
	if _, err := p.ReadRange(int64(size)+1, nil); err == nil {
		t.Fatal("zero-length read past EOF accepted")
	}
	if _, err := p.ReadRange(-1, make([]byte, 1)); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// TestPagerSlice proves the zero-copy view agrees byte-for-byte with
// ReadRange when mapped, and that the fallback build reports ok=false
// consistently (this branch is what -tags=nommap CI exercises).
func TestPagerSlice(t *testing.T) {
	size := 3*PageSize + 17
	path, content := writeRaw(t, size)
	p, err := NewPager(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Mapped() != mmapEnabled {
		t.Fatalf("Mapped() = %v, build says mmapEnabled=%v", p.Mapped(), mmapEnabled)
	}
	sl, ok := p.Slice(PageSize-5, 40)
	if !mmapEnabled {
		if ok {
			t.Fatal("fallback build returned a mapped slice")
		}
		return
	}
	if !ok {
		t.Fatal("mapped build refused an in-bounds slice")
	}
	if !bytes.Equal(sl, content[PageSize-5:PageSize+35]) {
		t.Fatal("slice content mismatch")
	}
	// Out-of-bounds requests must be refused, not clamped.
	if _, ok := p.Slice(int64(size)-10, 11); ok {
		t.Fatal("slice past EOF accepted")
	}
	if _, ok := p.Slice(-1, 4); ok {
		t.Fatal("negative-offset slice accepted")
	}
	if sl, ok := p.Slice(int64(size), 0); !ok || len(sl) != 0 {
		t.Fatal("empty slice at EOF should be valid")
	}
}

// TestBypassAccounting checks that the mapped build counts pool-bypass
// accesses while charging identical logical I/O to the fallback path.
func TestBypassAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tuples := randTuples(rng, 300, 8)
	dir := t.TempDir()
	tp := filepath.Join(dir, "tuples.dat")
	if err := WriteTupleFile(tp, tuples, 8); err != nil {
		t.Fatal(err)
	}
	stats := &IOStats{}
	tf, err := OpenTupleFile(tp, stats, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	for id := 0; id < 300; id++ {
		if _, err := tf.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if stats.RandReads() != 300 {
		t.Fatalf("rand reads = %d, want 300 regardless of transport", stats.RandReads())
	}
	if mmapEnabled {
		if stats.Bypasses() != 300 {
			t.Fatalf("bypasses = %d, want 300 on the mapped build", stats.Bypasses())
		}
	} else if stats.Bypasses() != 0 {
		t.Fatalf("bypasses = %d, want 0 on the fallback build", stats.Bypasses())
	}

	// Child meters forward bypass charges to the parent.
	child := stats.Child()
	if _, err := tf.GetWith(0, child); err != nil {
		t.Fatal(err)
	}
	if mmapEnabled && (child.Bypasses() != 1 || stats.Bypasses() != 301) {
		t.Fatalf("child bypass forwarding: child=%d parent=%d", child.Bypasses(), stats.Bypasses())
	}
	stats.Reset()
	if stats.Bypasses() != 0 {
		t.Fatal("Reset did not clear bypass counter")
	}
}

// TestListCursorMappedAccounting pins the deterministic sequential-page
// model of the mapped scan: one page per fill (341 postings), matching
// the in-memory index's charge, with the pool bypassed.
func TestListCursorMappedAccounting(t *testing.T) {
	const n = 700 // ceil(700/341) = 3 fills
	postings := make([]Posting, n)
	for i := range postings {
		postings[i] = Posting{ID: i, Val: 1 - float64(i)/(n+1)}
	}
	path := filepath.Join(t.TempDir(), "lists.dat")
	if err := WriteListFile(path, map[int][]Posting{0: postings}, 1); err != nil {
		t.Fatal(err)
	}
	stats := &IOStats{}
	lf, err := OpenListFile(path, stats, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	stats.Reset() // drop header/directory charges
	cur := lf.Cursor(0)
	for i := 0; ; i++ {
		p, ok := cur.Next()
		if !ok {
			break
		}
		if p != postings[i] {
			t.Fatalf("posting %d = %v, want %v", i, p, postings[i])
		}
	}
	if !mmapEnabled {
		if stats.SeqPages() == 0 {
			t.Fatal("fallback scan charged no sequential pages")
		}
		return
	}
	if got := stats.SeqPages(); got != 3 {
		t.Fatalf("mapped scan seq pages = %d, want 3 (one per fill)", got)
	}
	if got := stats.Bypasses(); got != 3 {
		t.Fatalf("mapped scan bypasses = %d, want 3", got)
	}
}
