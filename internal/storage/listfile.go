package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
)

// Posting is one inverted-list entry 〈dα, dαj〉: the tuple id and its
// coordinate in the list's dimension.
type Posting struct {
	ID  int
	Val float64
}

const postingBytes = 12 // uint32 id + float64 val

// listMagic identifies the inverted-list file.
var listMagic = [8]byte{'I', 'R', 'L', 'S', 'T', '0', '1', 0}

// WriteListFile persists per-dimension inverted lists. lists maps a
// dimension to its postings, which must already be sorted by descending
// Val (ties by ascending ID). Format:
//
//	magic[8] | numLists uint32 | m uint32 |
//	directory: numLists × (dim uint32, count uint32, offset int64) |
//	posting data: count × (id uint32, val float64) per list
func WriteListFile(path string, lists map[int][]Posting, m int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	w := &crcWriter{w: bw}

	dims := make([]int, 0, len(lists))
	for d := range lists {
		dims = append(dims, d)
	}
	sort.Ints(dims)

	if _, err := w.Write(listMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(dims)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	off := int64(8+8) + int64(16*len(dims))
	dirBuf := make([]byte, 16)
	for _, d := range dims {
		binary.LittleEndian.PutUint32(dirBuf[0:4], uint32(d))
		binary.LittleEndian.PutUint32(dirBuf[4:8], uint32(len(lists[d])))
		binary.LittleEndian.PutUint64(dirBuf[8:16], uint64(off))
		if _, err := w.Write(dirBuf); err != nil {
			return err
		}
		off += int64(postingBytes * len(lists[d]))
	}
	pBuf := make([]byte, postingBytes)
	for _, d := range dims {
		for _, p := range lists[d] {
			binary.LittleEndian.PutUint32(pBuf[0:4], uint32(p.ID))
			binary.LittleEndian.PutUint64(pBuf[4:12], math.Float64bits(p.Val))
			if _, err := w.Write(pBuf); err != nil {
				return err
			}
		}
	}
	if err := w.writeTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// ListFile reads inverted lists persisted by WriteListFile. Sorted access
// proceeds through cursors; each page-boundary crossing during cursor
// advancement charges one sequential page to stats (pool hits are free —
// the buffer pool models the list caching of a warm server).
type ListFile struct {
	pager *Pager
	stats *IOStats
	m     int
	dir   map[int]listExtent
}

type listExtent struct {
	off   int64
	count int
}

// OpenListFile opens an inverted-list file with a buffer pool of
// poolPages pages (0 disables pooling).
func OpenListFile(path string, stats *IOStats, poolPages int) (*ListFile, error) {
	pager, err := NewPager(path, poolPages)
	if err != nil {
		return nil, err
	}
	lf := &ListFile{pager: pager, stats: stats, dir: make(map[int]listExtent)}
	if _, err := dataEnd(pager, path); err != nil {
		pager.Close()
		return nil, err
	}
	hdr := make([]byte, 16)
	if _, err := pager.ReadRange(0, hdr); err != nil {
		pager.Close()
		return nil, err
	}
	if string(hdr[:8]) != string(listMagic[:]) {
		pager.Close()
		return nil, fmt.Errorf("storage: %s is not a list file", path)
	}
	n := int(binary.LittleEndian.Uint32(hdr[8:12]))
	lf.m = int(binary.LittleEndian.Uint32(hdr[12:16]))
	dirRaw := make([]byte, 16*n)
	if _, err := pager.ReadRange(16, dirRaw); err != nil {
		pager.Close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		base := 16 * i
		dim := int(binary.LittleEndian.Uint32(dirRaw[base : base+4]))
		cnt := int(binary.LittleEndian.Uint32(dirRaw[base+4 : base+8]))
		off := int64(binary.LittleEndian.Uint64(dirRaw[base+8 : base+16]))
		lf.dir[dim] = listExtent{off: off, count: cnt}
	}
	return lf, nil
}

// Close releases the file.
func (lf *ListFile) Close() error { return lf.pager.Close() }

// Dim returns the dimensionality m.
func (lf *ListFile) Dim() int { return lf.m }

// ListLen returns the number of postings in dimension dim's list (0 when
// the dimension has no list).
func (lf *ListFile) ListLen(dim int) int { return lf.dir[dim].count }

// Cursor opens a sorted-access cursor over dimension dim's list, charging
// sequential pages to the file's own meter.
func (lf *ListFile) Cursor(dim int) *ListCursor { return lf.CursorWith(dim, lf.stats) }

// CursorWith opens a cursor whose sequential-page charges go to st
// instead of the file's meter — the hook concurrent servers use to meter
// each query separately (st is typically a Child of the shared meter).
func (lf *ListFile) CursorWith(dim int, st *IOStats) *ListCursor {
	ext, ok := lf.dir[dim]
	if !ok {
		return &ListCursor{} // empty cursor
	}
	return &ListCursor{lf: lf, ext: ext, stats: st}
}

// ListCursor iterates one inverted list from the top (highest coordinate)
// downward, fetching a page worth of postings at a time. The decoded
// buffer is columnar (parallel id/value arrays) to match the in-memory
// index layout.
type ListCursor struct {
	lf    *ListFile
	ext   listExtent
	stats *IOStats
	pos   int // postings consumed
	ids   []int32
	vals  []float64
	bufI  int
}

// fill loads the next batch of postings into the buffer.
//
// On a mapped pager the batch decodes straight from the mmap region:
// sequential scans bypass the buffer pool (counted on the meter's bypass
// gauge) and allocate nothing per fill. One logical sequential page is
// charged per fill — a fill is exactly one page worth of postings except
// at the list tail — which matches the in-memory index's deterministic
// page model (one page per postingsPerPage consumed), so mapped disk
// scans meter like memory scans instead of depending on pool residency.
func (c *ListCursor) fill() error {
	remaining := c.ext.count - c.pos
	if remaining <= 0 || c.lf == nil {
		return nil
	}
	batch := PageSize / postingBytes
	if batch > remaining {
		batch = remaining
	}
	off := c.ext.off + int64(c.pos*postingBytes)
	raw, zeroCopy := c.lf.pager.Slice(off, batch*postingBytes)
	if !zeroCopy {
		raw = make([]byte, batch*postingBytes)
		misses, err := c.lf.pager.ReadRange(off, raw)
		if err != nil {
			return err
		}
		if c.stats != nil && misses > 0 {
			c.stats.AddSeqPage(misses)
		}
	} else if c.stats != nil {
		c.stats.AddSeqPage(1)
		c.stats.AddBypass(1)
	}
	c.ids = c.ids[:0]
	c.vals = c.vals[:0]
	for i := 0; i < batch; i++ {
		base := postingBytes * i
		c.ids = append(c.ids, int32(binary.LittleEndian.Uint32(raw[base:base+4])))
		c.vals = append(c.vals, math.Float64frombits(binary.LittleEndian.Uint64(raw[base+4:base+12])))
	}
	c.bufI = 0
	return nil
}

// Peek returns the next posting without consuming it; ok=false at list end.
func (c *ListCursor) Peek() (Posting, bool) {
	if c.bufI >= len(c.ids) {
		if c.lf == nil || c.pos >= c.ext.count {
			return Posting{}, false
		}
		if err := c.fill(); err != nil || len(c.ids) == 0 {
			return Posting{}, false
		}
	}
	return Posting{ID: int(c.ids[c.bufI]), Val: c.vals[c.bufI]}, true
}

// Next consumes and returns the next posting; ok=false at list end.
func (c *ListCursor) Next() (Posting, bool) {
	p, ok := c.Peek()
	if !ok {
		return Posting{}, false
	}
	c.bufI++
	c.pos++
	return p, true
}

// Consumed reports how many postings this cursor has consumed.
func (c *ListCursor) Consumed() int { return c.pos }

// CloneCursor returns an independent cursor at the same position. The
// decoded buffer is copied, so re-reading buffered postings through the
// clone charges no further I/O; pages past the buffer are charged to the
// clone's meter as usual.
func (c *ListCursor) CloneCursor() *ListCursor {
	cp := *c
	cp.ids = append([]int32(nil), c.ids...)
	cp.vals = append([]float64(nil), c.vals...)
	return &cp
}
