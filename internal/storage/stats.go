// Package storage provides the disk substrate of the reproduction: an
// external tuple file accessed at random (one fetch per evaluated
// candidate — the cost the paper's I/O charts measure), inverted-list
// files consumed by sorted access, a page-granular LRU buffer pool, and
// explicit I/O accounting with a spinning-disk cost model so that the
// experiment harness can report I/O time comparable in shape to the
// paper's 2012 testbed.
package storage

import (
	"fmt"
	"sync/atomic"
	"time"
)

// PageSize is the I/O unit for sequential list access, matching a common
// filesystem block.
const PageSize = 4096

// IOStats accumulates I/O counters. All storage components funnel their
// accesses through one IOStats so an experiment can be metered end to end.
// Counters are lock-free atomics, so many queries may charge one meter
// concurrently.
//
// A meter may be a child of another (see Child): every charge to the
// child is forwarded to its parent. Concurrent servers give each query a
// child of the index-wide meter, so per-query deltas stay exact while
// the global counters keep aggregating.
type IOStats struct {
	seqPages  atomic.Int64 // inverted-list pages fetched by sorted access
	randReads atomic.Int64 // tuple-file fetches by random access
	bytesRead atomic.Int64
	bypass    atomic.Int64 // page-equivalents served from the mmap, pool bypassed
	parent    *IOStats
}

// Child returns a fresh meter that forwards every charge to s. Reading
// the child observes only the charges made through it.
func (s *IOStats) Child() *IOStats { return &IOStats{parent: s} }

// AddSeqPage records n sequential page fetches.
func (s *IOStats) AddSeqPage(n int) {
	s.seqPages.Add(int64(n))
	s.bytesRead.Add(int64(n) * PageSize)
	if s.parent != nil {
		s.parent.AddSeqPage(n)
	}
}

// AddRandRead records one random tuple fetch of the given byte size.
func (s *IOStats) AddRandRead(bytes int) {
	s.randReads.Add(1)
	s.bytesRead.Add(int64(bytes))
	if s.parent != nil {
		s.parent.AddRandRead(bytes)
	}
}

// AddBypass records n page-equivalent accesses served straight from the
// mmap region, bypassing the buffer pool. Bypass accesses are physical-
// path bookkeeping only — the logical counters (AddSeqPage/AddRandRead)
// are still charged separately, so the paper's cost model is unaffected
// by which transport served the bytes.
func (s *IOStats) AddBypass(n int) {
	s.bypass.Add(int64(n))
	if s.parent != nil {
		s.parent.AddBypass(n)
	}
}

// Bypasses returns the pool-bypass counter.
func (s *IOStats) Bypasses() int64 { return s.bypass.Load() }

// Snapshot returns the current counter values.
func (s *IOStats) Snapshot() (seqPages, randReads, bytesRead int64) {
	return s.seqPages.Load(), s.randReads.Load(), s.bytesRead.Load()
}

// SeqPages returns the sequential page counter.
func (s *IOStats) SeqPages() int64 { return s.seqPages.Load() }

// RandReads returns the random read counter.
func (s *IOStats) RandReads() int64 { return s.randReads.Load() }

// Reset zeroes all counters (of this meter only; parents are untouched).
func (s *IOStats) Reset() {
	s.seqPages.Store(0)
	s.randReads.Store(0)
	s.bytesRead.Store(0)
	s.bypass.Store(0)
}

// Sub returns the difference s - o as plain numbers (seq, rand, bytes).
func (s *IOStats) Sub(seq, rand, bytes int64) (int64, int64, int64) {
	a, b, c := s.Snapshot()
	return a - seq, b - rand, c - bytes
}

func (s *IOStats) String() string {
	a, b, c := s.Snapshot()
	return fmt.Sprintf("io{seqPages=%d randReads=%d bytes=%d}", a, b, c)
}

// DiskModel converts I/O counts into modeled time. The defaults
// approximate the 2012-era server disk of the paper's testbed: a random
// access pays a seek+rotate penalty, sequential pages stream.
type DiskModel struct {
	SeqPage  time.Duration // cost of one sequential 4 KiB page
	RandRead time.Duration // cost of one random tuple fetch
}

// DefaultDiskModel is a 7200 RPM HDD: ~5 ms per random access, ~0.05 ms
// per sequential page (≈80 MB/s streaming).
var DefaultDiskModel = DiskModel{SeqPage: 50 * time.Microsecond, RandRead: 5 * time.Millisecond}

// Time converts counters into modeled elapsed I/O time.
func (m DiskModel) Time(seqPages, randReads int64) time.Duration {
	return time.Duration(seqPages)*m.SeqPage + time.Duration(randReads)*m.RandRead
}

// TimeOf converts an IOStats snapshot into modeled elapsed I/O time.
func (m DiskModel) TimeOf(s *IOStats) time.Duration {
	seq, rnd, _ := s.Snapshot()
	return m.Time(seq, rnd)
}
