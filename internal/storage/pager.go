package storage

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// Pager mediates page-granular access to a file through an optional LRU
// buffer pool. Counting of logical I/O (sequential page vs random tuple
// fetch) is done by the owning TupleFile/ListFile because the distinction
// is semantic; the pager only tracks physical page residency.
//
// On platforms with mmap support (see mmap.go) the whole file is also
// mapped read-only; Slice then hands out zero-copy views that bypass the
// buffer pool entirely. ReadRange always uses the pread+pool path, so
// callers choose per access whether pool accounting applies.
type Pager struct {
	f      *os.File
	size   int64
	pool   *lruCache
	fileID int
	mapped []byte // nil when the build/platform cannot map
}

var nextFileID atomic.Int64

// NewPager opens path for reading. poolPages > 0 enables a buffer pool of
// that many pages shared by all reads through this pager. Pagers are safe
// for concurrent use: reads go through the preadv-style ReadAt and the
// buffer pool serializes internally.
func NewPager(path string, poolPages int) (*Pager, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	p := &Pager{f: f, size: st.Size(), fileID: int(nextFileID.Add(1))}
	if poolPages > 0 {
		p.pool = newLRU(poolPages)
	}
	// Best effort: a mapping failure (exotic filesystem, address-space
	// pressure) silently falls back to the pread path.
	if m, err := mapFile(f, p.size); err == nil {
		p.mapped = m
	}
	return p, nil
}

// Close unmaps (if mapped) and releases the underlying file. Callers
// must have drained readers first: slices handed out by Slice die with
// the mapping.
func (p *Pager) Close() error {
	err := unmapFile(p.mapped)
	p.mapped = nil
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Mapped reports whether the file is memory-mapped in this build.
func (p *Pager) Mapped() bool { return p.mapped != nil }

// Slice returns a zero-copy read-only view of [off, off+n), bypassing
// the buffer pool. ok=false when the file is not mapped (fallback build)
// or the range is out of bounds; callers then use ReadRange. The slice
// is valid until Close — callers must decode out of it, not retain it.
func (p *Pager) Slice(off int64, n int) ([]byte, bool) {
	if p.mapped == nil || off < 0 || n < 0 || off+int64(n) > p.size {
		return nil, false
	}
	return p.mapped[off : off+int64(n) : off+int64(n)], true
}

// Size returns the file size in bytes.
func (p *Pager) Size() int64 { return p.size }

// page returns the content of page no (possibly short at EOF), noting
// whether it was served from the pool.
func (p *Pager) page(no int64) ([]byte, bool, error) {
	if p.pool != nil {
		if v, ok := p.pool.get(lruKey{file: p.fileID, id: no}); ok {
			return v.([]byte), true, nil
		}
	}
	off := no * PageSize
	n := int64(PageSize)
	if off+n > p.size {
		n = p.size - off
	}
	if n <= 0 {
		return nil, false, io.EOF
	}
	buf := make([]byte, n)
	if _, err := p.f.ReadAt(buf, off); err != nil {
		return nil, false, err
	}
	if p.pool != nil {
		p.pool.put(lruKey{file: p.fileID, id: no}, buf)
	}
	return buf, false, nil
}

// ReadRange fills dst from the file starting at off. It returns the
// number of pool misses (pages physically fetched), which the caller
// converts into logical I/O counts.
func (p *Pager) ReadRange(off int64, dst []byte) (misses int, err error) {
	if off < 0 || off+int64(len(dst)) > p.size {
		return 0, fmt.Errorf("storage: read [%d,%d) beyond file size %d", off, off+int64(len(dst)), p.size)
	}
	done := 0
	for done < len(dst) {
		pos := off + int64(done)
		pageNo := pos / PageSize
		pageOff := int(pos % PageSize)
		pg, hit, err := p.page(pageNo)
		if err != nil {
			return misses, err
		}
		if !hit {
			misses++
		}
		n := copy(dst[done:], pg[pageOff:])
		if n == 0 {
			return misses, io.ErrUnexpectedEOF
		}
		done += n
	}
	return misses, nil
}
