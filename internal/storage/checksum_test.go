package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vec"
)

func writeBoth(t *testing.T) (tuplePath, listPath string) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	tuples := randTuples(rng, 120, 8)
	dir := t.TempDir()
	tuplePath = filepath.Join(dir, "tuples.dat")
	listPath = filepath.Join(dir, "lists.dat")
	if err := WriteTupleFile(tuplePath, tuples, 8); err != nil {
		t.Fatal(err)
	}
	lists := map[int][]Posting{}
	for id, tp := range tuples {
		for _, e := range tp {
			lists[e.Dim] = append(lists[e.Dim], Posting{ID: id, Val: e.Val})
		}
	}
	if err := WriteListFile(listPath, lists, 8); err != nil {
		t.Fatal(err)
	}
	return tuplePath, listPath
}

func TestVerifyChecksumClean(t *testing.T) {
	tp, lp := writeBoth(t)
	if err := VerifyChecksum(tp); err != nil {
		t.Errorf("clean tuple file: %v", err)
	}
	if err := VerifyChecksum(lp); err != nil {
		t.Errorf("clean list file: %v", err)
	}
}

// flipByte corrupts one byte at offset off.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyChecksumDetectsCorruption(t *testing.T) {
	tp, lp := writeBoth(t)
	for _, path := range []string{tp, lp} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt a byte in the middle of the payload.
		flipByte(t, path, st.Size()/2)
		if err := VerifyChecksum(path); err == nil {
			t.Errorf("%s: corruption not detected", filepath.Base(path))
		}
	}
}

func TestOpenRejectsTruncatedFiles(t *testing.T) {
	tp, lp := writeBoth(t)
	for _, c := range []struct {
		path string
		open func(string) error
	}{
		{tp, func(p string) error { _, err := OpenTupleFile(p, &IOStats{}, 0); return err }},
		{lp, func(p string) error { _, err := OpenListFile(p, &IOStats{}, 0); return err }},
	} {
		st, err := os.Stat(c.path)
		if err != nil {
			t.Fatal(err)
		}
		// Chop off the trailer plus a bit of data.
		if err := os.Truncate(c.path, st.Size()-trailerSize-5); err != nil {
			t.Fatal(err)
		}
		if err := c.open(c.path); err == nil {
			t.Errorf("%s: truncated file opened successfully", filepath.Base(c.path))
		}
	}
}

func TestOpenRejectsTinyFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.dat")
	if err := os.WriteFile(path, []byte("IRTUP001"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTupleFile(path, &IOStats{}, 0); err == nil {
		t.Error("8-byte file opened as tuple file")
	}
	if err := VerifyChecksum(path); err == nil {
		t.Error("8-byte file passed checksum verification")
	}
}

func TestTrailerSurvivesRoundTrip(t *testing.T) {
	// The trailer must not be readable as payload: the last tuple's
	// record must end exactly at the trailer.
	dir := t.TempDir()
	path := filepath.Join(dir, "one.dat")
	tuples := []vec.Sparse{vec.MustSparse(vec.Entry{Dim: 3, Val: 0.25})}
	if err := WriteTupleFile(path, tuples, 4); err != nil {
		t.Fatal(err)
	}
	tf, err := OpenTupleFile(path, &IOStats{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	got, err := tf.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (vec.Entry{Dim: 3, Val: 0.25}) {
		t.Fatalf("tuple = %v", got)
	}
}
