package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Every persisted file ends with a 16-byte integrity trailer:
//
//	magic "IRCRC001" (8) | crc32-IEEE of all preceding bytes (4) | pad (4)
//
// Openers check the trailer's presence (cheap); VerifyChecksum re-reads
// the file and validates the CRC (full scan, meant for irgen/irquery's
// explicit verification paths and tests).

var crcMagic = [8]byte{'I', 'R', 'C', 'R', 'C', '0', '0', '1'}

// trailerSize is the byte length of the integrity trailer.
const trailerSize = 16

// crcWriter computes a running CRC over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// writeTrailer appends the integrity trailer for the accumulated CRC.
func (cw *crcWriter) writeTrailer() error {
	var tr [trailerSize]byte
	copy(tr[:8], crcMagic[:])
	binary.LittleEndian.PutUint32(tr[8:12], cw.crc)
	// trailer bytes are excluded from the CRC; write to the inner writer
	_, err := cw.w.Write(tr[:])
	return err
}

// dataEnd validates the trailer's presence via the pager and returns the
// offset where payload data ends.
func dataEnd(p *Pager, path string) (int64, error) {
	if p.Size() < trailerSize {
		return 0, fmt.Errorf("storage: %s too short for integrity trailer", path)
	}
	tr := make([]byte, trailerSize)
	if _, err := p.ReadRange(p.Size()-trailerSize, tr); err != nil {
		return 0, err
	}
	if string(tr[:8]) != string(crcMagic[:]) {
		return 0, fmt.Errorf("storage: %s missing integrity trailer (truncated or foreign file)", path)
	}
	return p.Size() - trailerSize, nil
}

// VerifyChecksum re-reads path in full and validates its CRC trailer.
func VerifyChecksum(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < trailerSize {
		return fmt.Errorf("storage: %s too short for integrity trailer", path)
	}
	payload := st.Size() - trailerSize
	h := crc32.NewIEEE()
	if _, err := io.CopyN(h, f, payload); err != nil {
		return err
	}
	tr := make([]byte, trailerSize)
	if _, err := io.ReadFull(f, tr); err != nil {
		return err
	}
	if string(tr[:8]) != string(crcMagic[:]) {
		return fmt.Errorf("storage: %s missing integrity trailer", path)
	}
	want := binary.LittleEndian.Uint32(tr[8:12])
	if got := h.Sum32(); got != want {
		return fmt.Errorf("storage: %s corrupt: crc %08x, trailer says %08x", path, got, want)
	}
	return nil
}
