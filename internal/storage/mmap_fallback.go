//go:build (!linux && !darwin) || nommap

package storage

import "os"

// Fallback build: no mmap. Pagers keep the original pread+LRU buffer
// pool path unchanged, which is what makes the fallback trivially
// answer-identical to the mapped build — the decoded bytes are the same,
// only the transport differs.

// mmapEnabled reports whether this build maps generation files.
const mmapEnabled = false

func mapFile(f *os.File, size int64) ([]byte, error) { return nil, nil }

func unmapFile(data []byte) error { return nil }

// MapForRead always reports ok=false in the fallback build; callers
// stream through reads instead.
func MapForRead(f *os.File) (data []byte, release func() error, ok bool) {
	return nil, nil, false
}
