package replication

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestBackoffJitterDeterministic: the reconnect jitter is a pure
// function of the follower's identity — reproducible across runs, yet
// spread across distinct followers.
func TestBackoffJitterDeterministic(t *testing.T) {
	a1 := NewFollower(FollowerConfig{Dir: t.TempDir(), PrimaryAddr: "x", ID: "node-a"})
	a2 := NewFollower(FollowerConfig{Dir: t.TempDir(), PrimaryAddr: "x", ID: "node-a"})
	b := NewFollower(FollowerConfig{Dir: t.TempDir(), PrimaryAddr: "x", ID: "node-b"})
	if a1.BackoffJitter() != a2.BackoffJitter() {
		t.Fatalf("same ID, different jitter: %v vs %v", a1.BackoffJitter(), a2.BackoffJitter())
	}
	if a1.BackoffJitter() == b.BackoffJitter() {
		t.Fatalf("distinct IDs collided on jitter %v", a1.BackoffJitter())
	}
	for _, f := range []*Follower{a1, b} {
		if j := f.BackoffJitter(); j < 0 || j >= 0.5 {
			t.Fatalf("jitter %v outside [0, 0.5)", j)
		}
	}
	// Unset ID falls back to the directory, so two followers of the
	// same primary in different directories still spread.
	c := NewFollower(FollowerConfig{Dir: t.TempDir(), PrimaryAddr: "x"})
	d := NewFollower(FollowerConfig{Dir: t.TempDir(), PrimaryAddr: "x"})
	if c.BackoffJitter() == d.BackoffJitter() {
		t.Fatalf("directory-derived jitter collided: %v", c.BackoffJitter())
	}
}

// TestHeartbeatAgeZeroOnDisconnect: the staleness clock must not keep
// ticking from the last received heartbeat after the session dies — a
// disconnected follower reports no heartbeat at all, so failover
// timers fire on FailoverTimeout, not on a bogus "recent" beat.
func TestHeartbeatAgeZeroOnDisconnect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pdir, fdir := t.TempDir(), t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 20))
	p := startPrimary(t, pdir, AckAsync, 0)
	fh := startFollower(t, fdir, p.addr)
	waitFor(t, "follower connected", func() bool {
		_, ok := fh.f.HeartbeatAge()
		return ok
	})
	if age, ok := fh.f.HeartbeatAge(); !ok || age < 0 {
		t.Fatalf("connected follower: age=%v ok=%v", age, ok)
	}
	// Sever the primary; the follower must stop claiming a heartbeat
	// even though one arrived milliseconds ago.
	p.close(t)
	waitFor(t, "heartbeat clock zeroed", func() bool {
		_, ok := fh.f.HeartbeatAge()
		return !ok
	})
	fh.stop(t)
}

// silentFollower completes a streaming handshake and then reads frames
// forever without ever acking — the connected-but-silent partition a
// quorum primary must not wait on twice.
type silentFollower struct {
	conn net.Conn
	done chan struct{}
}

func dialSilentFollower(t testing.TB, p *primaryHarness) *silentFollower {
	t.Helper()
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := p.eng.LastSeq()
	h := hello{
		Proto:     ProtoVersion,
		DatasetID: p.prim.DatasetID(),
		LastSeq:   lastSeq,
		Epoch:     p.eng.Epoch(),
		LastEpoch: p.eng.EpochAt(lastSeq),
	}
	if err := writeJSONMsg(conn, msgHello, h); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := readMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if kind != msgWelcome {
		t.Fatalf("expected welcome, got kind %q payload %q", kind, payload)
	}
	var w welcome
	if err := json.Unmarshal(payload, &w); err != nil {
		t.Fatal(err)
	}
	if w.Mode != ModeStream {
		t.Fatalf("expected streaming session, got mode %q", w.Mode)
	}
	sf := &silentFollower{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(sf.done)
		for {
			if _, _, err := readMsg(conn); err != nil {
				return
			}
			// Swallow every frame and heartbeat; never ack.
		}
	}()
	return sf
}

func (sf *silentFollower) close() {
	sf.conn.Close()
	<-sf.done
}

// TestQuorumPartitionedFollowerReaped: with a single connected follower
// that is silent (receives frames, never acks), a quorum Apply must
// fail with ErrQuorum at AckTimeout, the silent session must be reaped,
// and — crucially — it must not count toward the NEXT quorum: a fresh
// healthy follower alone then satisfies ⌈n/2⌉.
func TestQuorumPartitionedFollowerReaped(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pdir := t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 20))
	p := startPrimary(t, pdir, AckQuorum, 250*time.Millisecond)
	defer p.close(t)

	sf := dialSilentFollower(t, p)
	defer sf.close()
	waitFor(t, "silent session streaming", func() bool {
		return len(p.prim.Stats().Followers) == 1
	})

	start := time.Now()
	_, err := p.eng.Apply(randBatch(rng, p.eng.N()))
	if !errors.Is(err, engine.ErrQuorum) {
		t.Fatalf("expected ErrQuorum from a silent follower, got %v", err)
	}
	if waited := time.Since(start); waited < 200*time.Millisecond {
		t.Fatalf("quorum failure fired after %v, before the 250ms AckTimeout", waited)
	}
	waitFor(t, "silent session reaped", func() bool {
		st := p.prim.Stats()
		return st.SessionsReaped == 1 && len(st.Followers) == 0
	})

	// A healthy follower now forms the whole quorum; the reaped ghost
	// must not drag n up to 2.
	fh := startFollower(t, t.TempDir(), p.addr)
	defer fh.stop(t)
	waitFor(t, "healthy follower caught up", caughtUp(p, fh))
	if _, err := p.eng.Apply(randBatch(rng, p.eng.N())); err != nil {
		t.Fatalf("apply after reap: %v", err)
	}
	if qf := p.prim.Stats().QuorumFailures; qf != 1 {
		t.Fatalf("expected exactly 1 quorum failure, got %d", qf)
	}
}

// TestHandshakeFencesStalePrimary: a follower whose hello carries a
// higher epoch deposes the primary — the handshake itself is a fencing
// channel, so a stale primary is fenced by the first follower that
// learned of the successor.
func TestHandshakeFencesStalePrimary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pdir := t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 20))
	p := startPrimary(t, pdir, AckAsync, 0)
	defer p.close(t)

	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h := hello{
		Proto:     ProtoVersion,
		DatasetID: p.prim.DatasetID(),
		LastSeq:   p.eng.LastSeq(),
		Epoch:     p.eng.Epoch() + 3, // I have seen a newer primary
	}
	if err := writeJSONMsg(conn, msgHello, h); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := readMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if kind != msgError {
		t.Fatalf("expected refusal, got kind %q", kind)
	}
	_ = payload
	if !p.eng.Fenced() {
		t.Fatal("primary did not fence itself on a higher-epoch hello")
	}
	if _, err := p.eng.Apply(randBatch(rng, p.eng.N())); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("fenced primary accepted a write: %v", err)
	}
}
