package replication

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSnapshotFileRoundtrip: sendFile announces a whole-file CRC and
// receiveFile reproduces the bytes exactly, across the chunk boundary.
func TestSnapshotFileRoundtrip(t *testing.T) {
	payload := make([]byte, snapshotChunkBytes+snapshotChunkBytes/2)
	for i := range payload {
		payload[i] = byte(i*7 + i>>9)
	}
	src := filepath.Join(t.TempDir(), "src.dat")
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sendErr := make(chan error, 1)
	go func() {
		var p Primary
		sendErr <- p.sendFile(&session{conn: a}, "tuples.dat", f)
	}()

	kind, hdr, err := readMsg(b)
	if err != nil || kind != msgFileBegin {
		t.Fatalf("header: kind=%q err=%v", kind, err)
	}
	var fb fileBegin
	if err := json.Unmarshal(hdr, &fb); err != nil {
		t.Fatal(err)
	}
	if fb.Size != int64(len(payload)) || fb.Crc32 != crc32.ChecksumIEEE(payload) {
		t.Fatalf("header %+v, want size %d crc %08x", fb, len(payload), crc32.ChecksumIEEE(payload))
	}
	dir := t.TempDir()
	fl := &Follower{cfg: FollowerConfig{Dir: dir}}
	if err := fl.receiveFile(b, fb); err != nil {
		t.Fatalf("receive: %v", err)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "tuples.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("received file differs from the source")
	}
}

// TestSnapshotTransferCorruptionDetected: a transfer whose bytes do not
// match the announced CRC — a mid-stream truncation refilled with other
// data, or plain corruption — is rejected by receiveFile, so the bad
// file never reaches the manifest save and engine swap.
func TestSnapshotTransferCorruptionDetected(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	fb := fileBegin{Name: "lists.dat", Size: int64(len(payload)), Crc32: crc32.ChecksumIEEE(payload)}

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		bad := append([]byte(nil), payload...)
		bad[10] ^= 0xff // right size, wrong bytes
		writeMsg(a, msgFileChunk, bad)
	}()
	fl := &Follower{cfg: FollowerConfig{Dir: t.TempDir()}}
	err := fl.receiveFile(b, fb)
	if err == nil || !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("corrupted transfer err=%v, want crc mismatch", err)
	}

	// A truncated transfer (sender dies mid-file) errors too.
	a2, b2 := net.Pipe()
	defer b2.Close()
	go func() {
		writeMsg(a2, msgFileChunk, payload[:8])
		a2.Close()
	}()
	if err := fl.receiveFile(b2, fb); err == nil {
		t.Fatal("truncated transfer accepted")
	}

	// Legacy senders (no CRC announced) still pass on size alone.
	a3, b3 := net.Pipe()
	defer a3.Close()
	defer b3.Close()
	go func() { writeMsg(a3, msgFileChunk, payload) }()
	if err := fl.receiveFile(b3, fileBegin{Name: "lists.dat", Size: int64(len(payload))}); err != nil {
		t.Fatalf("crc-less transfer rejected: %v", err)
	}
}
