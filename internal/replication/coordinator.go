// The failover coordinator: a Node wraps one cluster member's whole
// replication life — primary or follower, and the transitions between
// them — so a primary crash heals with zero operator action.
//
// # Model
//
// Every member runs a Node. The Node owns a single persistent
// replication listener (its address never changes across role changes)
// and a periodic coordination step:
//
//   - A follower measures primary health over the tail-heartbeat
//     stream it already receives: no heartbeat, frame or welcome
//     within FailoverTimeout means the primary is dead or partitioned
//     away. Only then does it probe the peers' GET /cluster endpoints
//     to discover a live primary or stand for election.
//   - The election is deterministic: among the reachable members
//     (which must be a majority of the configured cluster size), the
//     follower with the highest fsynced sequence wins, node ID
//     breaking ties. Every reachable member computes the same winner
//     from the same views; only the winner promotes itself.
//   - Promotion advances the fencing epoch to max(all observed)+1 and
//     persists it (engine.AdvanceEpoch) before serving a single write.
//   - A deposed primary learns of the newer epoch through a probe or a
//     follower's handshake, fences itself (client writes fail with
//     409), broadcasts msgDeposed to its sessions, and rejoins as a
//     follower of the successor — wiping its divergent tail if the
//     successor's timeline refuses it.
//
// # Split-brain prevention
//
// Two primaries can only both accept writes if each believes itself
// current. The Node makes that unreachable by construction:
//
//  1. A node never accepts client writes unless it is a CONFIRMED
//     primary, and confirmation is supporter-based and continuously
//     re-evaluated: a supporter is a member whose probe reports it as
//     a connected follower of THIS node at THIS node's epoch, and the
//     node is confirmed only while supporters (counting itself) form
//     a majority of the configured cluster size. A follower streams
//     from exactly one primary, so two primaries can never hold
//     disjoint supporter majorities simultaneously — even if a race
//     mints the same epoch twice, at most one of the pair can accept
//     writes, and the equal-epoch rival rule below demotes the loser.
//  2. Promotion requires a majority of members reachable, and a fresh
//     primary starts UNCONFIRMED (unless the cluster is a singleton):
//     it serves 409/503, never a write, until a probe round shows a
//     supporter majority. Equal-epoch rivals resolve deterministically
//     — lower (seq, id) demotes, and a loser that never confirmed
//     never acked a write at that epoch, so nothing is lost.
//  3. The epoch is persisted in the MANIFEST before the promoted
//     primary accepts its first write, and every handshake carries
//     epochs both ways, so any contact between a stale primary and the
//     rest of the cluster fences the stale one (engine.Fence).
//
// The orthodox alternative is consensus (Raft) on every write; this
// coordinator deliberately keeps the data path untouched (the PR 5
// shipping protocol) and pays for it with a weaker liveness guarantee:
// a partitioned minority serves stale reads until it reconnects.
package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Role is a Node's current cluster role.
type Role string

const (
	RolePrimary  Role = "primary"
	RoleFollower Role = "follower"
)

// ClusterInfo is the GET /cluster document every Node serves: the
// topology beacon coordinators, proxies and operators discover the
// cluster through.
type ClusterInfo struct {
	NodeID    string `json:"node_id"`
	Role      string `json:"role"`
	Confirmed bool   `json:"confirmed"` // primary only: leadership verified against a majority
	Epoch     uint64 `json:"epoch"`
	LastSeq   uint64 `json:"last_seq"`
	DatasetID string `json:"dataset_id,omitempty"`
	// HTTPAddr is this node's advertised HTTP base URL; ReplAddr its
	// live replication listener.
	HTTPAddr string `json:"http_addr"`
	ReplAddr string `json:"repl_addr"`
	// PrimaryHTTP is where this node believes the current primary
	// serves HTTP (itself, when primary).
	PrimaryHTTP string   `json:"primary_http,omitempty"`
	Peers       []string `json:"peers,omitempty"`
	Ready       bool     `json:"ready"`
	Connected   bool     `json:"connected"` // follower: replication session up
	LagSeqs     uint64   `json:"lag_seqs"`  // follower: primary tail minus applied
}

// FetchClusterInfo retrieves a node's /cluster document.
func FetchClusterInfo(ctx context.Context, hc *http.Client, baseURL string) (ClusterInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/cluster", nil)
	if err != nil {
		return ClusterInfo{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return ClusterInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return ClusterInfo{}, fmt.Errorf("replication: %s/cluster: %s", baseURL, resp.Status)
	}
	var ci ClusterInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxControlBytes)).Decode(&ci); err != nil {
		return ClusterInfo{}, err
	}
	return ci, nil
}

// NodeConfig tunes a cluster member.
type NodeConfig struct {
	// Dir is the member's data directory; PoolPages the buffer pool
	// size; Engine the base engine configuration (durability and
	// writability are forced, as for followers).
	Dir       string
	PoolPages int
	Engine    engine.Config
	// NodeID is the member's stable identity and the election
	// tiebreaker (default AdvertiseHTTP).
	NodeID string
	// AdvertiseHTTP is this member's HTTP base URL, e.g.
	// "http://db1:8080" — what peers probe and clients get redirected
	// to.
	AdvertiseHTTP string
	// ReplListen is the replication listen address (default
	// "127.0.0.1:0"). AdvertiseRepl overrides the address peers are
	// told to dial (default: the bound listener address).
	ReplListen    string
	AdvertiseRepl string
	// Peers are the OTHER members' AdvertiseHTTP base URLs.
	// ClusterSize is the full membership count for majority math
	// (default len(Peers)+1).
	Peers       []string
	ClusterSize int
	// StartPrimary makes this member boot in the primary role. It
	// still must confirm leadership against a majority before
	// accepting writes (see the package comment).
	StartPrimary bool
	// AckMode / AckTimeout / HeartbeatInterval configure the Primary
	// role (see PrimaryConfig).
	AckMode           AckMode
	AckTimeout        time.Duration
	HeartbeatInterval time.Duration
	// FailoverTimeout is how long a follower tolerates heartbeat
	// silence before suspecting the primary (default 2s; must exceed
	// HeartbeatInterval). ProbeInterval is the coordination step
	// period (default 500ms).
	FailoverTimeout time.Duration
	ProbeInterval   time.Duration
	// ReadyLag is the /readyz lag bound in sequence numbers (default
	// 1024).
	ReadyLag uint64
	// DialTimeout / RetryInterval tune the follower role (see
	// FollowerConfig).
	DialTimeout   time.Duration
	RetryInterval time.Duration
}

func (c *NodeConfig) setDefaults() {
	if c.NodeID == "" {
		c.NodeID = c.AdvertiseHTTP
	}
	if c.ReplListen == "" {
		c.ReplListen = "127.0.0.1:0"
	}
	if c.ClusterSize <= 0 {
		c.ClusterSize = len(c.Peers) + 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.FailoverTimeout <= 0 {
		c.FailoverTimeout = 2 * time.Second
	}
	if c.ReadyLag == 0 {
		c.ReadyLag = 1024
	}
}

// Node is one cluster member's coordinator: it owns the persistent
// replication listener, the current Primary or Follower, and the
// role transitions between them.
type Node struct {
	cfg  NodeConfig
	ln   net.Listener
	hc   *http.Client
	done chan struct{}

	// stepMu serializes role transitions: the coordination step loop
	// and operator-forced Promote. Never held while n.mu is needed by
	// fast accessors — transitions take mu only for short field flips.
	stepMu sync.Mutex

	mu        sync.Mutex
	runCtx    context.Context
	role      Role
	confirmed bool
	prim      *Primary
	fol       *Follower
	folCancel context.CancelFunc
	eng       *engine.Engine // the engine, whenever not owned by fol
	primHTTP  string         // believed current primary's HTTP base URL
	lastErr   string
	dsID      string // cached DATASET_ID

	elections  atomic.Int64
	promotions atomic.Int64
	demotions  atomic.Int64
}

// NewNode opens the member's engine (when the directory holds a
// dataset), binds the replication listener and assumes the boot role.
// Call Run to start coordinating.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg.setDefaults()
	n := &Node{
		cfg:  cfg,
		done: make(chan struct{}),
		hc:   &http.Client{Timeout: cfg.FailoverTimeout},
		role: RoleFollower,
	}
	if hasDataset(cfg.Dir) {
		eng, err := engine.OpenDir(cfg.Dir, cfg.PoolPages, n.engineConfig())
		if err != nil {
			return nil, fmt.Errorf("replication: node open %s: %w", cfg.Dir, err)
		}
		n.eng = eng
	}
	ln, err := net.Listen("tcp", cfg.ReplListen)
	if err != nil {
		if n.eng != nil {
			n.eng.Close()
		}
		return nil, fmt.Errorf("replication: node listen %s: %w", cfg.ReplListen, err)
	}
	n.ln = ln
	if cfg.StartPrimary {
		if n.eng == nil {
			ln.Close()
			return nil, fmt.Errorf("replication: %s holds no dataset; a boot primary needs one", cfg.Dir)
		}
		if err := n.attachPrimary(n.eng); err != nil {
			ln.Close()
			n.eng.Close()
			return nil, err
		}
		n.role = RolePrimary
		n.confirmed = cfg.ClusterSize == 1 // nobody to confirm against
		n.primHTTP = cfg.AdvertiseHTTP
	}
	return n, nil
}

// engineConfig forces the durable, fsync-per-batch configuration every
// cluster member needs in either role.
func (n *Node) engineConfig() engine.Config {
	cfg := n.cfg.Engine
	cfg.WAL = true
	cfg.ReadOnly = false
	cfg.WALSync = wal.SyncPolicy{Mode: wal.SyncBatch}
	return cfg
}

// attachPrimary builds a Primary over eng and wires the sink and (in
// quorum mode) the commit gate. Caller updates role fields.
func (n *Node) attachPrimary(eng *engine.Engine) error {
	prim, err := NewPrimary(eng, n.cfg.Dir, PrimaryConfig{
		HTTPAddr:          n.cfg.AdvertiseHTTP,
		AckMode:           n.cfg.AckMode,
		AckTimeout:        n.cfg.AckTimeout,
		HeartbeatInterval: n.cfg.HeartbeatInterval,
	})
	if err != nil {
		return err
	}
	eng.SetReplicationSink(prim)
	if n.cfg.AckMode == AckQuorum {
		eng.SetCommitGate(prim.Gate)
	} else {
		eng.SetCommitGate(nil)
	}
	n.prim = prim
	return nil
}

// ReplAddr returns the address peers should dial for replication.
func (n *Node) ReplAddr() string {
	if n.cfg.AdvertiseRepl != "" {
		return n.cfg.AdvertiseRepl
	}
	return n.ln.Addr().String()
}

// Done is closed when Run returns (shutdown complete).
func (n *Node) Done() <-chan struct{} { return n.done }

// Run accepts replication connections and coordinates role transitions
// until ctx fires, then shuts everything down (including the engine).
// It blocks; run it in its own goroutine.
func (n *Node) Run(ctx context.Context) {
	defer close(n.done)
	n.mu.Lock()
	n.runCtx = ctx
	n.mu.Unlock()
	go n.acceptLoop()
	n.step(ctx)
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			n.shutdown()
			return
		case <-t.C:
			n.step(ctx)
		}
	}
}

// acceptLoop dispatches replication connections to the current Primary;
// while not primary, dialers are told where to go instead. The listener
// (and so the member's replication address) survives role changes.
func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		prim, primHTTP := n.prim, n.primHTTP
		n.mu.Unlock()
		if prim == nil {
			go func(c net.Conn) {
				_ = writeMsg(c, msgError, []byte(fmt.Sprintf("not primary; current primary: %s", primHTTP)))
				c.Close()
			}(conn)
			continue
		}
		go prim.handle(conn)
	}
}

func (n *Node) shutdown() {
	n.ln.Close()
	n.stepMu.Lock()
	defer n.stepMu.Unlock()
	n.mu.Lock()
	prim, fol, cancel, eng := n.prim, n.fol, n.folCancel, n.eng
	n.prim, n.fol, n.folCancel, n.eng = nil, nil, nil, nil
	n.mu.Unlock()
	if prim != nil {
		prim.Close()
	}
	if fol != nil {
		if cancel != nil {
			cancel()
		}
		<-fol.Done()
		fol.Close()
	}
	if eng != nil {
		eng.Close()
	}
}

// step runs one coordination round. stepMu makes transitions atomic
// with respect to operator-forced promotion.
func (n *Node) step(ctx context.Context) {
	n.stepMu.Lock()
	defer n.stepMu.Unlock()
	if ctx.Err() != nil {
		return
	}
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	if role == RolePrimary {
		n.stepPrimary(ctx)
	} else {
		n.stepFollower(ctx)
	}
}

// stepPrimary probes the peers for a higher epoch (self-fence +
// demotion), resolves equal-epoch rivalries, and re-evaluates the
// supporter majority that confirms leadership.
func (n *Node) stepPrimary(ctx context.Context) {
	n.mu.Lock()
	eng := n.eng
	n.mu.Unlock()
	if eng == nil {
		return // shutting down
	}
	views := n.probePeers(ctx)
	myEpoch, myID := eng.Epoch(), n.cfg.NodeID
	var successor ClusterInfo
	haveSuccessor := false
	rivalWins := false
	supporters := 1 // self
	for _, v := range views {
		if !datasetCompatible(n.datasetID(), v.DatasetID) {
			continue
		}
		if v.Epoch > myEpoch {
			eng.Fence(v.Epoch)
		}
		if v.Role == string(RoleFollower) && v.Connected &&
			v.Epoch == myEpoch && v.PrimaryHTTP == n.cfg.AdvertiseHTTP {
			supporters++
		}
		if v.Role != string(RolePrimary) || v.NodeID == myID {
			continue
		}
		if v.Epoch > myEpoch {
			successor, haveSuccessor = v, true
		} else if v.Epoch == myEpoch {
			// Equal-epoch rival: two concurrent elections minted the same
			// epoch from stale views (or a dual boot-primary
			// misconfiguration). Neither outranks the other by epoch, so
			// without a tiebreak both would stand forever — the
			// deterministic loser stands down, confirmed or not. The
			// loser cannot have acknowledged writes at this epoch: writes
			// require confirmation, confirmation requires a supporter
			// majority, and a follower streams from exactly one primary
			// at a time.
			if v.LastSeq > eng.LastSeq() || (v.LastSeq == eng.LastSeq() && v.NodeID > myID) {
				rivalWins = true
				successor, haveSuccessor = v, true
			}
		}
	}
	if eng.Fenced() || rivalWins {
		n.demote(ctx, successor, haveSuccessor)
		return
	}
	// Confirmation is continuous and supporter-based: leadership holds
	// only while this primary plus the followers CONNECTED TO IT at its
	// epoch form a majority of the configured cluster. Mere
	// reachability is not enough — two concurrent elections can each
	// reach a majority, but two disjoint supporter majorities cannot
	// exist.
	confirmed := supporters >= n.majority()
	n.mu.Lock()
	n.confirmed = confirmed
	if confirmed {
		n.lastErr = ""
	}
	n.mu.Unlock()
	if !confirmed {
		n.setErr(fmt.Sprintf("leadership unconfirmed: %d of %d members support this primary (majority %d)",
			supporters, n.cfg.ClusterSize, n.majority()))
	}
}

// stepFollower checks primary health over the heartbeat stream and,
// when the primary is gone, discovers a live one or stands for
// election.
func (n *Node) stepFollower(ctx context.Context) {
	n.mu.Lock()
	fol := n.fol
	n.mu.Unlock()
	if fol != nil {
		if age, ok := fol.HeartbeatAge(); ok && age < n.cfg.FailoverTimeout {
			return // the tail-heartbeat stream says the primary is alive
		}
	}
	views := n.probePeers(ctx)
	if v, ok := n.pickPrimary(views); ok {
		n.retarget(ctx, v)
		return
	}
	n.maybePromote(ctx, views)
}

// probePeers fetches every peer's /cluster concurrently; unreachable
// peers are simply absent from the result.
func (n *Node) probePeers(ctx context.Context) []ClusterInfo {
	type slot struct {
		ci ClusterInfo
		ok bool
	}
	slots := make([]slot, len(n.cfg.Peers))
	var wg sync.WaitGroup
	for i, peer := range n.cfg.Peers {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			if ci, err := FetchClusterInfo(ctx, n.hc, base); err == nil {
				slots[i] = slot{ci, true}
			}
		}(i, peer)
	}
	wg.Wait()
	views := make([]ClusterInfo, 0, len(slots))
	for _, s := range slots {
		if s.ok {
			views = append(views, s.ci)
		}
	}
	return views
}

// pickPrimary selects the live primary to follow: highest epoch not
// below our own, confirmed preferred.
func (n *Node) pickPrimary(views []ClusterInfo) (ClusterInfo, bool) {
	myEpoch, mySeq := uint64(0), uint64(0)
	if eng := n.liveEngine(); eng != nil {
		myEpoch, mySeq = eng.Epoch(), eng.LastSeq()
	}
	var best ClusterInfo
	found := false
	for _, v := range views {
		if v.Role != string(RolePrimary) || !datasetCompatible(n.datasetID(), v.DatasetID) {
			continue
		}
		if v.Epoch < myEpoch {
			continue // deposed and hasn't noticed; never follow backwards
		}
		if v.Epoch == myEpoch && v.LastSeq < mySeq {
			// An equal-epoch primary BEHIND our committed history cannot
			// have written our frames — it is the loser of a double-mint
			// race, not our regime's owner. Following it would wipe
			// legitimate (possibly acknowledged) history; falling through
			// to the election path instead promotes the freshest survivor
			// at a higher epoch, which deposes it cleanly. (A genuinely
			// newer primary always carries a higher epoch; the sequence
			// guard never applies to it.)
			continue
		}
		if !found || v.Epoch > best.Epoch ||
			(v.Epoch == best.Epoch && v.Confirmed && !best.Confirmed) {
			best, found = v, true
		}
	}
	return best, found
}

// maybePromote runs the election: with a majority of members reachable
// and no live primary, the follower with the highest fsynced sequence
// (node ID breaking ties) promotes itself under epoch max(seen)+1.
// Every reachable member computes the same winner, so only one
// promotes.
func (n *Node) maybePromote(ctx context.Context, views []ClusterInfo) {
	eng := n.liveEngine()
	if eng == nil {
		n.setErr("no local dataset: cannot stand for election")
		return
	}
	myID, mySeq, myEpoch := n.cfg.NodeID, eng.LastSeq(), eng.Epoch()
	if fb := eng.FencedBy(); fb > myEpoch {
		myEpoch = fb // never mint an epoch at or below one we know exists
	}
	reachable, maxEpoch := 1, myEpoch
	winID, winSeq := myID, mySeq
	for _, v := range views {
		if !datasetCompatible(n.datasetID(), v.DatasetID) {
			continue
		}
		reachable++
		if v.Epoch > maxEpoch {
			maxEpoch = v.Epoch
		}
		if v.Role != string(RoleFollower) || v.DatasetID == "" {
			continue // empty members cannot win; primaries were handled earlier
		}
		if v.LastSeq > winSeq || (v.LastSeq == winSeq && v.NodeID > winID) {
			winID, winSeq = v.NodeID, v.LastSeq
		}
	}
	if reachable < n.majority() {
		n.setErr(fmt.Sprintf("no election quorum: %d of %d members reachable (majority %d)",
			reachable, n.cfg.ClusterSize, n.majority()))
		return
	}
	n.elections.Add(1)
	mElections.Inc()
	if winID != myID {
		n.setErr(fmt.Sprintf("election: waiting for %s (seq %d) to promote", winID, winSeq))
		return
	}
	if err := n.promote(ctx, maxEpoch+1); err != nil {
		n.setErr(fmt.Sprintf("promotion failed: %v", err))
	}
}

// promote turns this member into the primary under newEpoch: stop the
// follower, reclaim the engine, persist the epoch advance, attach the
// shipper, flip the role. The epoch is durable before the first write
// can be accepted.
func (n *Node) promote(ctx context.Context, newEpoch uint64) error {
	n.mu.Lock()
	fol, cancel := n.fol, n.folCancel
	n.mu.Unlock()
	var eng *engine.Engine
	if fol != nil {
		cancel()
		<-fol.Done()
		eng = fol.DetachEngine()
		n.mu.Lock()
		n.fol, n.folCancel = nil, nil
		n.mu.Unlock()
	} else {
		n.mu.Lock()
		eng, n.eng = n.eng, nil
		n.mu.Unlock()
	}
	if eng == nil {
		return fmt.Errorf("replication: no open engine to promote (snapshot re-seed in progress)")
	}
	restore := func() {
		n.mu.Lock()
		n.eng = eng
		n.mu.Unlock()
	}
	if err := eng.AdvanceEpoch(newEpoch); err != nil {
		restore()
		return err
	}
	n.mu.Lock()
	if err := n.attachPrimary(eng); err != nil {
		n.mu.Unlock()
		restore()
		return err
	}
	n.eng = eng
	n.role = RolePrimary
	// Confirmation waits for a supporter majority (the next coordination
	// step): two concurrent elections can mint the same epoch from stale
	// views, and acknowledging writes before the survivors have actually
	// re-pointed here would let both winners ack. A singleton cluster
	// has no supporters to wait for.
	n.confirmed = n.cfg.ClusterSize == 1
	n.primHTTP = n.cfg.AdvertiseHTTP
	n.lastErr = ""
	n.mu.Unlock()
	n.promotions.Add(1)
	mPromotions.Inc()
	return nil
}

// demote turns a fenced (or outbid) primary back into a follower:
// announce msgDeposed to the sessions, tear the shipper down, keep the
// engine, and re-point at the successor when one is known.
func (n *Node) demote(ctx context.Context, successor ClusterInfo, haveSuccessor bool) {
	n.mu.Lock()
	prim, eng := n.prim, n.eng
	n.prim = nil
	n.role = RoleFollower
	n.confirmed = false
	if haveSuccessor {
		n.primHTTP = successor.HTTPAddr
	} else {
		n.primHTTP = ""
	}
	n.mu.Unlock()
	if prim != nil {
		epoch := uint64(0)
		if eng != nil {
			epoch = eng.FencedBy()
		}
		succHTTP := ""
		if haveSuccessor {
			succHTTP = successor.HTTPAddr
		}
		prim.Depose(epoch, succHTTP)
	}
	if eng != nil {
		eng.SetReplicationSink(nil)
		eng.SetCommitGate(nil)
	}
	n.demotions.Add(1)
	mDemotions.Inc()
	if haveSuccessor {
		n.retarget(ctx, successor)
	}
}

// retarget points the follower role at primary v, carrying the open
// engine over. A follower already pointed at v is left alone (its own
// reconnect loop is handling any transient).
func (n *Node) retarget(ctx context.Context, v ClusterInfo) {
	n.mu.Lock()
	fol, cancel := n.fol, n.folCancel
	if fol != nil && fol.cfg.PrimaryAddr == v.ReplAddr {
		n.primHTTP = v.HTTPAddr
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	var eng *engine.Engine
	if fol != nil {
		cancel()
		<-fol.Done()
		eng = fol.DetachEngine()
	} else {
		n.mu.Lock()
		eng, n.eng = n.eng, nil
		n.mu.Unlock()
	}
	f := NewFollower(FollowerConfig{
		Dir:           n.cfg.Dir,
		PrimaryAddr:   v.ReplAddr,
		PoolPages:     n.cfg.PoolPages,
		Engine:        n.cfg.Engine,
		DialTimeout:   n.cfg.DialTimeout,
		RetryInterval: n.cfg.RetryInterval,
		ID:            n.cfg.NodeID,
		// A demoted primary's un-replicated tail is a divergent branch
		// under a dead epoch; re-seeding is the designed recovery.
		WipeOnDiverge: true,
	})
	if eng != nil {
		f.AdoptEngine(eng)
	}
	fctx, fcancel := context.WithCancel(ctx)
	n.mu.Lock()
	n.fol, n.folCancel = f, fcancel
	n.primHTTP = v.HTTPAddr
	n.mu.Unlock()
	go f.Run(fctx)
}

// Promote forces promotion NOW — the POST /promote operator override.
// It skips the death detection and majority requirement (the operator
// is trusted to know the cluster state better than the probes do) but
// still outbids every reachable epoch, so fencing semantics hold.
func (n *Node) Promote() (uint64, error) {
	n.stepMu.Lock()
	defer n.stepMu.Unlock()
	n.mu.Lock()
	ctx := n.runCtx
	role := n.role
	n.mu.Unlock()
	if role == RolePrimary {
		return 0, fmt.Errorf("replication: already primary")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	eng := n.liveEngine()
	if eng == nil {
		return 0, fmt.Errorf("replication: no local dataset to promote")
	}
	maxEpoch := eng.Epoch()
	if fb := eng.FencedBy(); fb > maxEpoch {
		maxEpoch = fb
	}
	for _, v := range n.probePeers(ctx) {
		if datasetCompatible(n.datasetID(), v.DatasetID) && v.Epoch > maxEpoch {
			maxEpoch = v.Epoch
		}
	}
	newEpoch := maxEpoch + 1
	if err := n.promote(ctx, newEpoch); err != nil {
		return 0, err
	}
	return newEpoch, nil
}

// Engine returns the currently serving engine (nil mid-bootstrap).
// The pointer changes across re-seeds and role changes; serve traffic
// through a func() accessor (server.FromEngineFunc).
func (n *Node) Engine() *engine.Engine { return n.liveEngine() }

func (n *Node) liveEngine() *engine.Engine {
	n.mu.Lock()
	fol, eng := n.fol, n.eng
	n.mu.Unlock()
	if fol != nil {
		return fol.Engine()
	}
	return eng
}

// WriteGate is the HTTP layer's dynamic write admission: writes are
// allowed only on a confirmed, unfenced primary; otherwise the caller
// gets the best-known primary URL to redirect to ("" when unknown).
func (n *Node) WriteGate() (allow bool, redirect string) {
	n.mu.Lock()
	role, confirmed, eng, fol, primHTTP := n.role, n.confirmed, n.eng, n.fol, n.primHTTP
	n.mu.Unlock()
	if role == RolePrimary && confirmed && eng != nil && !eng.Fenced() {
		return true, ""
	}
	if fol != nil {
		if u := fol.PrimaryHTTPURL(); u != "" {
			return false, u
		}
	}
	if role == RolePrimary {
		return false, "" // unconfirmed and no better address known
	}
	return false, primHTTP
}

// Readiness implements /readyz: nil when this node is safe to serve
// from (a confirmed primary, or a connected follower within the lag
// bound).
func (n *Node) Readiness() error {
	n.mu.Lock()
	role, confirmed, eng, fol := n.role, n.confirmed, n.eng, n.fol
	lastErr := n.lastErr
	n.mu.Unlock()
	if role == RolePrimary {
		if eng == nil {
			return fmt.Errorf("engine not open")
		}
		if eng.Fenced() {
			return fmt.Errorf("fenced by epoch %d (deposed primary)", eng.FencedBy())
		}
		if !confirmed {
			if lastErr != "" {
				return fmt.Errorf("leadership unconfirmed: %s", lastErr)
			}
			return fmt.Errorf("leadership unconfirmed")
		}
		return nil
	}
	if fol == nil {
		if lastErr != "" {
			return fmt.Errorf("not following a primary: %s", lastErr)
		}
		return fmt.Errorf("not following a primary")
	}
	st := fol.Stats()
	if fol.Engine() == nil {
		return fmt.Errorf("snapshot bootstrap in progress")
	}
	if !st.Connected {
		return fmt.Errorf("replication session down")
	}
	if st.SeqDelta > n.cfg.ReadyLag {
		return fmt.Errorf("replication lag %d exceeds the %d bound", st.SeqDelta, n.cfg.ReadyLag)
	}
	return nil
}

// ClusterInfo assembles this node's /cluster document.
func (n *Node) ClusterInfo() ClusterInfo {
	n.mu.Lock()
	role, confirmed, fol, primHTTP := n.role, n.confirmed, n.fol, n.primHTTP
	n.mu.Unlock()
	ci := ClusterInfo{
		NodeID:      n.cfg.NodeID,
		Role:        string(role),
		Confirmed:   confirmed,
		HTTPAddr:    n.cfg.AdvertiseHTTP,
		ReplAddr:    n.ReplAddr(),
		PrimaryHTTP: primHTTP,
		Peers:       n.cfg.Peers,
		DatasetID:   n.datasetID(),
	}
	if eng := n.liveEngine(); eng != nil {
		ci.Epoch = eng.Epoch()
		ci.LastSeq = eng.LastSeq()
	}
	if fol != nil {
		st := fol.Stats()
		ci.Connected = st.Connected
		ci.LagSeqs = st.SeqDelta
		if st.PrimaryHTTP != "" {
			ci.PrimaryHTTP = st.PrimaryHTTP
		}
	}
	ci.Ready = n.Readiness() == nil
	return ci
}

// NodeStats is the coordinator's /stats replication block.
type NodeStats struct {
	NodeID     string         `json:"node_id"`
	Role       string         `json:"role"`
	Confirmed  bool           `json:"confirmed"`
	Epoch      uint64         `json:"epoch"`
	Elections  int64          `json:"elections"`
	Promotions int64          `json:"promotions"`
	Demotions  int64          `json:"demotions"`
	LastError  string         `json:"last_error,omitempty"`
	Primary    *PrimaryStats  `json:"primary,omitempty"`
	Follower   *FollowerStats `json:"follower,omitempty"`
}

// Stats snapshots the coordinator and its active role.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	role, confirmed, prim, fol, lastErr := n.role, n.confirmed, n.prim, n.fol, n.lastErr
	n.mu.Unlock()
	st := NodeStats{
		NodeID:     n.cfg.NodeID,
		Role:       string(role),
		Confirmed:  confirmed,
		Elections:  n.elections.Load(),
		Promotions: n.promotions.Load(),
		Demotions:  n.demotions.Load(),
		LastError:  lastErr,
	}
	if eng := n.liveEngine(); eng != nil {
		st.Epoch = eng.Epoch()
	}
	if prim != nil {
		ps := prim.Stats()
		st.Primary = &ps
	}
	if fol != nil {
		fs := fol.Stats()
		st.Follower = &fs
	}
	return st
}

func (n *Node) majority() int { return n.cfg.ClusterSize/2 + 1 }

func (n *Node) setErr(s string) {
	n.mu.Lock()
	n.lastErr = s
	n.mu.Unlock()
}

// datasetID returns (and caches once known) the member's DATASET_ID.
func (n *Node) datasetID() string {
	n.mu.Lock()
	id := n.dsID
	n.mu.Unlock()
	if id != "" {
		return id
	}
	id, _ = ReadDatasetID(n.cfg.Dir)
	if id != "" {
		n.mu.Lock()
		n.dsID = id
		n.mu.Unlock()
	}
	return id
}

// datasetCompatible reports whether two members can belong to the same
// cluster ("" means not-yet-seeded and is compatible with anything).
func datasetCompatible(a, b string) bool {
	return a == "" || b == "" || a == b
}
