// Failover acceptance tests: the ROADMAP's HA scenario. A three-member
// cluster behind the routing client takes kill -9 of its primary
// mid-write-load, elects deterministically, fences the deposed primary,
// and resumes — with every acknowledged write surviving and the healed
// topology bit-identical to a single-node oracle that replays the
// committed WAL prefix.
//
// The tests live in the external test package: they drive the exported
// Node/Server/Client surfaces only, and the client package (used as the
// chaos workload driver) itself imports replication.
package replication_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lists"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/vec"
	"repro/internal/wal"
)

const fDims = 4

func fGenTuples(rng *rand.Rand, n int) []vec.Sparse {
	out := make([]vec.Sparse, n)
	for i := range out {
		entries := make([]vec.Entry, fDims)
		for d := 0; d < fDims; d++ {
			entries[d] = vec.Entry{Dim: d, Val: rng.Float64()}
		}
		out[i] = vec.MustSparse(entries...)
	}
	return out
}

func fSaveDataset(t testing.TB, dir string, tuples []vec.Sparse) {
	t.Helper()
	if err := lists.SaveDataset(filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat"), tuples, fDims); err != nil {
		t.Fatal(err)
	}
}

func fWaitFor(t testing.TB, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}

// fAssertEnginesEqual proves a and b answer the probe queries
// bit-identically (cache bypassed).
func fAssertEnginesEqual(t testing.TB, label string, a, b *engine.Engine) {
	t.Helper()
	opts := engine.Options{Options: core.Options{Method: core.MethodCPT}, NoCache: true}
	specs := [][2][]float64{
		{{0, 1}, {0.8, 0.4}},
		{{1, 2}, {0.3, 0.9}},
		{{0, 2, 3}, {0.5, 0.6, 0.7}},
		{{0, 1, 2, 3}, {0.9, 0.2, 0.5, 0.8}},
	}
	for qi, s := range specs {
		dims := make([]int, len(s[0]))
		for i, d := range s[0] {
			dims[i] = int(d)
		}
		q, err := vec.NewQuery(dims, s[1])
		if err != nil {
			t.Fatal(err)
		}
		aa, err := a.Analyze(context.Background(), q, 5, opts)
		if err != nil {
			t.Fatalf("%s: query %d on oracle: %v", label, qi, err)
		}
		ba, err := b.Analyze(context.Background(), q, 5, opts)
		if err != nil {
			t.Fatalf("%s: query %d: %v", label, qi, err)
		}
		if !reflect.DeepEqual(aa.Result, ba.Result) || !reflect.DeepEqual(aa.Regions, ba.Regions) {
			t.Fatalf("%s: query %d diverged:\n  oracle %+v\n  got    %+v", label, qi, aa.Result, ba.Result)
		}
	}
}

// clusterMember is one node: a stable httptest URL whose handler is
// swapped on kill/restart, so peers and clients keep a fixed address
// across the member's crashes — like a machine that reboots.
type clusterMember struct {
	idx    int
	dir    string
	hs     *httptest.Server
	mu     sync.Mutex
	h      http.Handler // nil = process dead
	node   *replication.Node
	cancel context.CancelFunc
}

func (m *clusterMember) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	h := m.h
	m.mu.Unlock()
	if h == nil {
		http.Error(w, "connection refused (member down)", http.StatusBadGateway)
		return
	}
	h.ServeHTTP(w, r)
}

func (m *clusterMember) setHandler(h http.Handler) {
	m.mu.Lock()
	m.h = h
	m.mu.Unlock()
}

type cluster struct {
	t       *testing.T
	members []*clusterMember
}

// newCluster brings up n members: member 0 boots as primary over the
// seed dataset, the rest bootstrap themselves via snapshot transfer.
func newCluster(t *testing.T, n int, tuples []vec.Sparse) *cluster {
	t.Helper()
	c := &cluster{t: t}
	for i := 0; i < n; i++ {
		m := &clusterMember{idx: i, dir: t.TempDir()}
		m.hs = httptest.NewServer(m)
		c.members = append(c.members, m)
	}
	t.Cleanup(c.close)
	fSaveDataset(t, c.members[0].dir, tuples)
	for i := range c.members {
		c.start(i, i == 0)
	}
	return c
}

// start boots (or reboots) member i. Restarts always come back in the
// follower role unless bootPrimary says otherwise — the deposed-primary
// regression restarts with its original -cluster-primary flags.
func (c *cluster) start(i int, bootPrimary bool) {
	c.t.Helper()
	m := c.members[i]
	peers := make([]string, 0, len(c.members)-1)
	for j, p := range c.members {
		if j != i {
			peers = append(peers, p.hs.URL)
		}
	}
	node, err := replication.NewNode(replication.NodeConfig{
		Dir:               m.dir,
		PoolPages:         64,
		Engine:            engine.Config{CheckpointBytes: -1},
		NodeID:            fmt.Sprintf("node-%d", i),
		AdvertiseHTTP:     m.hs.URL,
		Peers:             peers,
		ClusterSize:       len(c.members),
		StartPrimary:      bootPrimary,
		AckMode:           replication.AckQuorum,
		AckTimeout:        2 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		FailoverTimeout:   250 * time.Millisecond,
		ProbeInterval:     40 * time.Millisecond,
		ReadyLag:          1 << 20,
		RetryInterval:     20 * time.Millisecond,
	})
	if err != nil {
		c.t.Fatalf("start member %d: %v", i, err)
	}
	srv := server.FromEngineFunc(node.Engine)
	srv.SetWriteGate(node.WriteGate)
	srv.SetReadiness(node.Readiness)
	srv.SetClusterInfo(func() any { return node.ClusterInfo() })
	srv.SetPromote(node.Promote)
	srv.SetReplicationStats(func() any { return node.Stats() })
	ctx, cancel := context.WithCancel(context.Background())
	go node.Run(ctx)
	m.mu.Lock()
	m.h, m.node, m.cancel = srv.Handler(), node, cancel
	m.mu.Unlock()
}

// kill takes member i down hard: the HTTP address stops answering and
// the node is torn down at a frame boundary (every committed frame is
// already fsynced — followers run fsync-per-batch — so this is the
// kill -9 persistence model).
func (c *cluster) kill(i int) {
	c.t.Helper()
	m := c.members[i]
	m.mu.Lock()
	node, cancel := m.node, m.cancel
	m.h, m.node, m.cancel = nil, nil, nil
	m.mu.Unlock()
	if node == nil {
		return
	}
	cancel()
	select {
	case <-node.Done():
	case <-time.After(15 * time.Second):
		c.t.Fatalf("member %d did not shut down", i)
	}
}

func (c *cluster) close() {
	for i := range c.members {
		c.kill(i)
	}
	for _, m := range c.members {
		m.hs.Close()
	}
}

func (c *cluster) node(i int) *replication.Node {
	m := c.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node
}

func (c *cluster) urls() []string {
	out := make([]string, len(c.members))
	for i, m := range c.members {
		out[i] = m.hs.URL
	}
	return out
}

// primaryIdx returns the index of the confirmed primary, or -1.
func (c *cluster) primaryIdx() int {
	for i := range c.members {
		if n := c.node(i); n != nil {
			ci := n.ClusterInfo()
			if ci.Role == string(replication.RolePrimary) && ci.Confirmed {
				return i
			}
		}
	}
	return -1
}

// dumpState renders every member's coordination view — the post-mortem
// attached to a convergence timeout.
func (c *cluster) dumpState() string {
	var b bytes.Buffer
	for i := range c.members {
		n := c.node(i)
		if n == nil {
			fmt.Fprintf(&b, "  member %d: down\n", i)
			continue
		}
		ci := n.ClusterInfo()
		st := n.Stats()
		fmt.Fprintf(&b, "  member %d: role=%s confirmed=%v epoch=%d seq=%d connected=%v ready=%v primary_http=%q elections=%d promotions=%d demotions=%d last_error=%q\n",
			i, ci.Role, ci.Confirmed, ci.Epoch, ci.LastSeq, ci.Connected, ci.Ready, ci.PrimaryHTTP,
			st.Elections, st.Promotions, st.Demotions, st.LastError)
	}
	return b.String()
}

// fWaitTopology is fWaitFor with the cluster post-mortem on timeout.
func (c *cluster) fWaitTopology(desc string, cond func() bool) {
	c.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("timed out waiting for %s; cluster state:\n%s", desc, c.dumpState())
}

// waitHealed waits for a healed topology: exactly one confirmed
// primary, every other live member a connected follower. It does NOT
// demand sequence equality, so it is safe to call while a write load
// is still running (followers trail the tail by a frame or two).
func (c *cluster) waitHealed() int {
	c.t.Helper()
	var prim int
	c.fWaitTopology("cluster heal", func() bool {
		prim = c.primaryIdx()
		if prim < 0 || c.node(prim) == nil {
			return false
		}
		for i := range c.members {
			if i == prim {
				continue
			}
			n := c.node(i)
			if n == nil {
				continue // still down; fine
			}
			ci := n.ClusterInfo()
			if ci.Role != string(replication.RoleFollower) || !ci.Connected {
				return false
			}
		}
		return true
	})
	return prim
}

// waitConverged waits for full quiescent convergence: a healed
// topology whose live followers have caught up to the primary's
// sequence and epoch. Only meaningful once the write load has stopped.
func (c *cluster) waitConverged() int {
	c.t.Helper()
	var prim int
	c.fWaitTopology("cluster convergence", func() bool {
		prim = c.primaryIdx()
		if prim < 0 {
			return false
		}
		pn := c.node(prim)
		if pn == nil {
			return false
		}
		pi := pn.ClusterInfo()
		for i := range c.members {
			if i == prim {
				continue
			}
			n := c.node(i)
			if n == nil {
				continue // still down; fine
			}
			ci := n.ClusterInfo()
			if ci.Role != string(replication.RoleFollower) || !ci.Connected {
				return false
			}
			if ci.Epoch != pi.Epoch || ci.LastSeq != pi.LastSeq {
				return false
			}
		}
		return true
	})
	return prim
}

func updateBody(rng *rand.Rand) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"ops":[{"tuple":[`)
	for d := 0; d < fDims; d++ {
		if d > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"dim":%d,"val":%.9f}`, d, rng.Float64())
	}
	fmt.Fprintf(&b, `]}]}`)
	return b.Bytes()
}

func newChaosClient(t testing.TB, c *cluster, id string) *client.Client {
	t.Helper()
	cl, err := client.New(client.Config{
		Seeds:       c.urls(),
		ID:          id,
		MaxRetries:  30,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    150 * time.Millisecond,
		TopologyTTL: 75 * time.Millisecond,
		HTTPClient:  &http.Client{Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// oracleCheck rebuilds the committed history on a fresh single-node
// engine — seed dataset plus the committed WAL prefix replayed frame by
// frame — and asserts every live member answers bit-identically to it.
// Frames are collected across all live members' logs because a member
// that was re-seeded mid-trial keeps only a suffix of the log.
func (c *cluster) oracleCheck(tuples []vec.Sparse, prim int) {
	t := c.t
	t.Helper()
	pEng := c.node(prim).Engine()
	tail := pEng.LastSeq()

	frames := make(map[uint64][]wal.Op)
	for i := range c.members {
		if c.node(i) == nil {
			continue
		}
		logPath := filepath.Join(c.members[i].dir, wal.LogName)
		if _, err := os.Stat(logPath); err != nil {
			continue
		}
		if _, err := wal.Replay(logPath, 0, func(seq uint64, ops []wal.Op) error {
			if _, ok := frames[seq]; !ok {
				frames[seq] = ops
			}
			return nil
		}); err != nil {
			t.Fatalf("reading member %d log: %v", i, err)
		}
	}

	oracleDir := t.TempDir()
	fSaveDataset(t, oracleDir, tuples)
	oracle, err := engine.OpenDir(oracleDir, 64, engine.Config{WAL: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for seq := uint64(1); seq <= tail; seq++ {
		ops, ok := frames[seq]
		if !ok {
			t.Fatalf("committed frame %d missing from every surviving log", seq)
		}
		if _, err := oracle.ApplyReplicated(seq, ops); err != nil {
			t.Fatalf("oracle replay seq %d: %v", seq, err)
		}
	}

	for i := range c.members {
		n := c.node(i)
		if n == nil || n.Engine() == nil {
			continue
		}
		fAssertEnginesEqual(t, fmt.Sprintf("member %d vs oracle", i), oracle, n.Engine())
	}
}

// TestClusterFailoverHeals is the tentpole scenario straight: kill the
// confirmed primary, watch a standby take over with no operator action,
// write through the new primary, bring the old one back, and verify
// bit-identical convergence against the oracle.
func TestClusterFailoverHeals(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tuples := fGenTuples(rng, 30)
	c := newCluster(t, 3, tuples)
	prim := c.waitConverged()
	if prim != 0 {
		t.Fatalf("boot primary is member %d, want 0", prim)
	}

	cl := newChaosClient(t, c, "heal-test")
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := cl.PostJSON(ctx, "/update", updateBody(rng), nil); err != nil {
			t.Fatalf("pre-kill write %d: %v", i, err)
		}
	}

	c.kill(0)
	fWaitFor(t, "a new confirmed primary", func() bool {
		p := c.primaryIdx()
		return p > 0
	})
	newPrim := c.primaryIdx()
	if e := c.node(newPrim).ClusterInfo().Epoch; e == 0 {
		t.Fatalf("new primary did not advance the fencing epoch")
	}

	// Writes flow again with zero operator action.
	for i := 0; i < 5; i++ {
		if err := cl.PostJSON(ctx, "/update", updateBody(rng), nil); err != nil {
			t.Fatalf("post-failover write %d: %v", i, err)
		}
	}

	// The crashed member reboots (as a follower) and rejoins.
	c.start(0, false)
	prim = c.waitConverged()
	c.oracleCheck(tuples, prim)
}

// TestDeposedPrimaryRefusesAndRejoins is the fencing regression pinned
// by the issue: restart the killed primary with its original
// -cluster-primary flags (stale epoch). It must never take a write —
// every attempt during the window answers 409 (with a Location pointing
// at the successor) or 503, and the node then demotes itself to a
// follower of the new primary with no operator action.
func TestDeposedPrimaryRefusesAndRejoins(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tuples := fGenTuples(rng, 30)
	c := newCluster(t, 3, tuples)
	c.waitConverged()

	cl := newChaosClient(t, c, "depose-test")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := cl.PostJSON(ctx, "/update", updateBody(rng), nil); err != nil {
			t.Fatalf("pre-kill write %d: %v", i, err)
		}
	}

	c.kill(0)
	fWaitFor(t, "successor elected", func() bool { return c.primaryIdx() > 0 })
	successor := c.members[c.primaryIdx()].hs.URL

	// The deposed primary comes back believing it is still the boss.
	c.start(0, true)

	// Hammer it directly until it has demoted; not one write may leak
	// through (200), and once fenced it must answer 409 with a referral
	// to the successor.
	hc := &http.Client{Timeout: 2 * time.Second, CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	saw409 := false
	fWaitFor(t, "deposed primary refuses with a 409 referral", func() bool {
		resp, err := hc.Post(c.members[0].hs.URL+"/update", "application/json", bytes.NewReader(updateBody(rng)))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			t.Fatalf("deposed primary ACCEPTED a write")
		case http.StatusConflict:
			loc := resp.Header.Get("Location")
			if loc == "" {
				return false
			}
			if want := successor + "/update"; loc != want {
				t.Fatalf("409 Location = %q, want %q", loc, want)
			}
			saw409 = true
			return true
		}
		return false // 503 while unconfirmed: keep probing
	})
	if !saw409 {
		t.Fatal("never saw the 409 referral")
	}

	// And it rejoins as a follower, fully converged.
	prim := c.waitConverged()
	if prim == 0 {
		t.Fatal("deposed member re-took the primary role without an election")
	}
	ci := c.node(0).ClusterInfo()
	if ci.Role != string(replication.RoleFollower) || !ci.Connected {
		t.Fatalf("member 0 did not rejoin as a connected follower: %+v", ci)
	}
	c.oracleCheck(tuples, prim)
}

// runChaosTrial runs one randomized kill/restart schedule against a
// three-member cluster under continuous write and read load, then
// asserts the healed cluster lost no acknowledged write and matches the
// single-node oracle bit for bit.
func runChaosTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	tuples := fGenTuples(rng, 30)
	c := newCluster(t, 3, tuples)
	c.waitConverged()

	ctx, cancelLoad := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var acked atomic.Int64

	// Writer: hammer /update through the routing client; count only
	// 200-acknowledged batches. Each batch is one insert.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(seed*31 + 1))
		cl := newChaosClient(t, c, fmt.Sprintf("chaos-writer-%d", seed))
		for ctx.Err() == nil {
			if err := cl.PostJSON(ctx, "/update", updateBody(wrng), nil); err == nil {
				acked.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Reader: hammer /analyze; during the failover window errors are
	// legitimate, the loop only exercises read routing under churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := newChaosClient(t, c, fmt.Sprintf("chaos-reader-%d", seed))
		body := []byte(`{"dims":[0,1],"weights":[0.8,0.4],"k":5,"phi":1}`)
		for ctx.Err() == nil {
			_ = cl.PostJSON(ctx, "/analyze", body, nil)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The chaos schedule: alternate kills (primary-biased) and
	// restarts, at most one member down at a time — the quorum design
	// tolerates any single-node loss.
	down := -1
	events := 4 + rng.Intn(3)
	for e := 0; e < events; e++ {
		time.Sleep(time.Duration(150+rng.Intn(200)) * time.Millisecond)
		if down >= 0 {
			c.start(down, false)
			down = -1
			continue
		}
		victim := -1
		if prim := c.primaryIdx(); prim >= 0 && rng.Intn(3) < 2 {
			victim = prim // two thirds of kills hit the primary mid-load
		} else {
			candidates := []int{}
			for i := range c.members {
				if c.node(i) != nil {
					candidates = append(candidates, i)
				}
			}
			if len(candidates) > 0 {
				victim = candidates[rng.Intn(len(candidates))]
			}
		}
		if victim >= 0 {
			c.kill(victim)
			down = victim
		}
	}
	if down >= 0 {
		time.Sleep(200 * time.Millisecond)
		c.start(down, false)
	}

	// Let the cluster heal under load, then stop the load and wait for
	// the followers to drain the tail.
	c.waitHealed()
	cancelLoad()
	wg.Wait()
	prim := c.waitConverged()

	// No acknowledged write may be lost: the workload is insert-only,
	// so the primary must hold at least seed + acked tuples (retries
	// can legitimately add more — at-least-once delivery).
	pEng := c.node(prim).Engine()
	wantAtLeast := len(tuples) + int(acked.Load())
	if got := pEng.N(); got < wantAtLeast {
		t.Fatalf("acknowledged writes lost: %d tuples on the healed primary, want >= %d (%d acked)",
			got, wantAtLeast, acked.Load())
	}
	c.oracleCheck(tuples, prim)
	if testing.Verbose() {
		t.Logf("seed %d: %d acked writes, healed primary member %d at seq %d epoch %d",
			seed, acked.Load(), prim, pEng.LastSeq(), c.node(prim).ClusterInfo().Epoch)
	}
}

// TestFailoverChaosProperty: a few fixed-seed chaos trials — the tier-1
// smoke version of the soak.
func TestFailoverChaosProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosTrial(t, seed)
		})
	}
}

// TestFailoverChaosSoak: the long randomized soak (make test-failover
// runs it at FAILOVER_SOAK_TRIALS=50 under -race). Skipped under
// -short so the tier-1 suite stays fast.
func TestFailoverChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped under -short (run make test-failover)")
	}
	trials := 8
	if s := os.Getenv("FAILOVER_SOAK_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad FAILOVER_SOAK_TRIALS %q", s)
		}
		trials = n
	}
	for i := 0; i < trials; i++ {
		seed := int64(100 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosTrial(t, seed)
		})
	}
}
