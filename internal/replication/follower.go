// The standby side: a Follower maintains its own durable data
// directory, connects to the primary, bootstraps via snapshot transfer
// when needed, and replays the shipped frames through
// Engine.ApplyReplicated — acking each frame after its own WAL fsync.
// The engine it exposes serves read-only HTTP traffic.
package replication

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/wal"
)

// FollowerConfig tunes a Follower.
type FollowerConfig struct {
	// Dir is the follower's own data directory (its WAL, manifest and
	// generation files live here). May start empty: the first connect
	// seeds it with a snapshot transfer.
	Dir string
	// PrimaryAddr is the primary's -replicate-listen address.
	PrimaryAddr string
	// PoolPages sizes the disk index buffer pool.
	PoolPages int
	// Engine is the base engine configuration (cache bounds, worker
	// pool, parallelism). WAL, sync policy (fsync-per-batch — an ack
	// must mean stable storage) and writability are forced.
	Engine engine.Config
	// DialTimeout bounds one connection attempt (default 5s);
	// RetryInterval is the reconnect backoff base (default 250ms,
	// doubling to 5s, plus a deterministic per-follower jitter).
	DialTimeout   time.Duration
	RetryInterval time.Duration
	// ID identifies this follower for jitter derivation (default Dir):
	// after a primary restart, followers sharing an ID-less pure
	// exponential backoff would reconnect in lockstep thundering herds.
	// The jitter fraction is a deterministic hash of the ID, so a given
	// deployment's timing is reproducible.
	ID string
	// WipeOnDiverge lets the follower wipe its local dataset and
	// re-seed via snapshot when the primary refuses its resume point as
	// divergent history (a branch written under a dead fencing epoch).
	// Off by default: standalone deployments should surface divergence
	// to an operator; the failover coordinator turns it on because a
	// demoted primary's un-replicated tail is exactly such a branch.
	WipeOnDiverge bool
}

// Follower replicates a primary into a local durable engine.
type Follower struct {
	cfg    FollowerConfig
	done   chan struct{}
	jitter float64 // deterministic backoff jitter fraction in [0, 0.5)

	mu          sync.Mutex
	eng         *engine.Engine
	conn        net.Conn
	primaryHTTP string
	lastErr     string

	lastApplied    atomic.Uint64
	primaryTail    atomic.Uint64
	bytesReceived  atomic.Int64
	lastFrameNanos atomic.Int64
	lastBeatNanos  atomic.Int64 // any primary liveness signal: welcome, frame, tail
	snapshots      atomic.Int64
	reconnects     atomic.Int64
	folds          atomic.Int64
	connected      atomic.Bool
}

// NewFollower builds a follower; call Run to start it.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 250 * time.Millisecond
	}
	if cfg.ID == "" {
		cfg.ID = cfg.Dir
	}
	f := &Follower{cfg: cfg, done: make(chan struct{}), jitter: jitterFraction(cfg.ID)}
	gaugeFollower.Store(f)
	return f
}

// jitterFraction maps a follower ID to a backoff jitter fraction in
// [0, 0.5) — an FNV-1a hash, so it is deterministic (reproducible test
// timing) yet spreads simultaneous reconnects across half a backoff
// period.
func jitterFraction(id string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return float64(h%1024) / 2048
}

// engineConfig is the follower's forced engine configuration: durable,
// writable (replication is the only writer — the HTTP layer rejects
// client writes), fsync-per-batch so acks certify stable storage.
func (f *Follower) engineConfig() engine.Config {
	cfg := f.cfg.Engine
	cfg.WAL = true
	cfg.ReadOnly = false
	cfg.WALSync = wal.SyncPolicy{Mode: wal.SyncBatch}
	return cfg
}

// Engine returns the live standby engine, nil until the first
// bootstrap completes. The pointer changes when a snapshot re-seed
// replaces the engine; serve traffic through a func() accessor
// (server.FromEngineFunc) rather than a captured pointer.
func (f *Follower) Engine() *engine.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng
}

// PrimaryHTTPURL returns the primary's advertised HTTP base URL
// ("" until a welcome has been received); the read-only HTTP layer
// points rejected writers here.
func (f *Follower) PrimaryHTTPURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primaryHTTP
}

// Done is closed when Run returns.
func (f *Follower) Done() <-chan struct{} { return f.done }

// WaitReady blocks until the follower has a serving engine (bootstrap
// complete) or ctx fires.
func (f *Follower) WaitReady(ctx context.Context) (*engine.Engine, error) {
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		if eng := f.Engine(); eng != nil {
			return eng, nil
		}
		select {
		case <-ctx.Done():
			f.mu.Lock()
			last := f.lastErr
			f.mu.Unlock()
			if last != "" {
				return nil, fmt.Errorf("replication: follower not ready: %v (last error: %s)", ctx.Err(), last)
			}
			return nil, fmt.Errorf("replication: follower not ready: %w", ctx.Err())
		case <-f.done:
			f.mu.Lock()
			last := f.lastErr
			f.mu.Unlock()
			return nil, fmt.Errorf("replication: follower stopped before becoming ready (last error: %s)", last)
		case <-t.C:
		}
	}
}

// Run connects, replays and reconnects until ctx fires. It owns the
// replication lifecycle; call Close afterwards to release the engine.
func (f *Follower) Run(ctx context.Context) {
	defer close(f.done)
	backoff := f.cfg.RetryInterval
	for {
		err := f.session(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			f.mu.Lock()
			f.lastErr = err.Error()
			f.mu.Unlock()
		}
		f.reconnects.Add(1)
		mReconnects.Inc()
		// Jittered exponential backoff: the deterministic per-follower
		// fraction desynchronizes a herd of standbys reconnecting after a
		// primary restart without making test timing nondeterministic.
		sleep := backoff + time.Duration(float64(backoff)*f.jitter)
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// BackoffJitter exposes the follower's deterministic jitter fraction
// (tests pin the derivation; operators can log it).
func (f *Follower) BackoffJitter() float64 { return f.jitter }

// DetachEngine hands the live engine to the caller and forgets it —
// the promotion path: the coordinator stops the follower (cancel Run's
// ctx, wait on Done), detaches the engine with its WAL, dir lock and
// replayed state intact, and rebuilds a Primary around it. Returns nil
// when the follower has no open engine (mid-re-seed).
func (f *Follower) DetachEngine() *engine.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	eng := f.eng
	f.eng = nil
	return eng
}

// AdoptEngine seeds the follower with an already-open durable engine —
// the demotion path: a deposed primary keeps its engine (and dir lock)
// and hands it to a fresh follower pointed at the successor. Must be
// called before Run.
func (f *Follower) AdoptEngine(eng *engine.Engine) {
	f.mu.Lock()
	f.eng = eng
	f.mu.Unlock()
	if eng != nil {
		f.lastApplied.Store(eng.LastSeq())
	}
}

// HeartbeatAge reports how long ago the live session last heard from
// the primary (welcome, frame, or tail heartbeat); ok is false when no
// session is live — a dead connection's clock reads as absent, never
// as fresh.
func (f *Follower) HeartbeatAge() (age time.Duration, ok bool) {
	ns := f.lastBeatNanos.Load()
	if ns == 0 || !f.connected.Load() {
		return 0, false
	}
	return time.Since(time.Unix(0, ns)), true
}

// Close severs the connection (if Run is still draining) and closes the
// standby engine. Call after Run has returned.
func (f *Follower) Close() error {
	f.mu.Lock()
	conn, eng := f.conn, f.eng
	f.conn, f.eng = nil, nil
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if eng != nil {
		return eng.Close()
	}
	return nil
}

// hasDataset reports whether dir holds an openable dataset (a manifest
// or the generation-0 default files).
func hasDataset(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, wal.ManifestName)); err == nil {
		return true
	}
	if _, err := os.Stat(filepath.Join(dir, wal.DefaultManifest().Tuples)); err == nil {
		return true
	}
	return false
}

// session runs one connection lifecycle: handshake, optional snapshot
// bootstrap, then the frame stream until an error or ctx.
func (f *Follower) session(ctx context.Context) error {
	// Open (or reuse) the local engine before handshaking, so the
	// resume point reflects everything committed to the local log.
	f.mu.Lock()
	eng := f.eng
	f.mu.Unlock()
	if eng == nil && hasDataset(f.cfg.Dir) {
		var err error
		eng, err = engine.OpenDir(f.cfg.Dir, f.cfg.PoolPages, f.engineConfig())
		if err != nil {
			return fmt.Errorf("open %s: %w", f.cfg.Dir, err)
		}
		f.mu.Lock()
		f.eng = eng
		f.mu.Unlock()
	}
	var lastSeq uint64
	if eng != nil {
		lastSeq = eng.LastSeq()
		f.lastApplied.Store(lastSeq)
	}
	id, err := ReadDatasetID(f.cfg.Dir)
	if err != nil {
		return err
	}

	d := net.Dialer{Timeout: f.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", f.cfg.PrimaryAddr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.conn = conn
	f.mu.Unlock()
	// Sever the blocking read when ctx fires.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	defer func() {
		f.connected.Store(false)
		// Zero the staleness clocks on disconnect: a dead session's last
		// heartbeat must never make /readyz or the proxy's least-lagged
		// routing read a stale "recently heard from the primary".
		f.lastFrameNanos.Store(0)
		f.lastBeatNanos.Store(0)
		f.mu.Lock()
		if f.conn == conn {
			f.conn = nil
		}
		f.mu.Unlock()
		conn.Close()
	}()

	h := hello{Proto: ProtoVersion, DatasetID: id, LastSeq: lastSeq}
	if eng != nil {
		h.Epoch = eng.Epoch()
		h.LastEpoch = eng.EpochAt(lastSeq)
	}
	raw, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := writeMsg(conn, msgHello, raw); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, payload, err := readControlMsg(conn)
	if err != nil {
		return err
	}
	conn.SetReadDeadline(time.Time{})
	if kind == msgError {
		msg := string(payload)
		// A divergence refusal means the local log holds frames written
		// under a dead epoch; only a re-seed can rejoin. With
		// WipeOnDiverge the follower does it itself — the next session
		// handshakes as a fresh follower and bootstraps via snapshot.
		if f.cfg.WipeOnDiverge && strings.Contains(msg, "diverged history") {
			if werr := f.wipeForReseed(); werr != nil {
				return fmt.Errorf("primary refused: %s (wipe for re-seed failed: %v)", msg, werr)
			}
			return fmt.Errorf("primary refused: %s (local dataset wiped for re-seed)", msg)
		}
		return fmt.Errorf("primary refused: %s", msg)
	}
	if kind != msgWelcome {
		return fmt.Errorf("expected welcome, got %q", kind)
	}
	var w welcome
	if err := json.Unmarshal(payload, &w); err != nil {
		return err
	}
	if w.Proto != ProtoVersion {
		return fmt.Errorf("primary speaks protocol %d, want %d", w.Proto, ProtoVersion)
	}
	if id != "" && w.DatasetID != id {
		return fmt.Errorf("dataset id mismatch: local %s, primary %s", id, w.DatasetID)
	}
	// Fencing: never follow a primary whose epoch is below our own —
	// it was deposed and has not noticed yet. Following it (or worse,
	// letting a snapshot wipe our newer state) would resurrect a dead
	// history. Otherwise adopt its epoch and timeline: they are
	// authoritative for the history we mirror from here on.
	if eng != nil {
		if local := eng.Epoch(); w.Epoch < local {
			return fmt.Errorf("primary epoch %d is older than local epoch %d: refusing deposed primary", w.Epoch, local)
		}
		if err := eng.AdoptEpoch(w.Epoch, w.Epochs); err != nil {
			return fmt.Errorf("adopt epoch %d: %w", w.Epoch, err)
		}
	}
	f.primaryTail.Store(w.TailSeq)
	f.mu.Lock()
	f.primaryHTTP = primaryHTTPURL(f.cfg.PrimaryAddr, w.HTTPAddr)
	f.mu.Unlock()

	if w.Mode == ModeSnapshot {
		if err := f.loadSnapshot(conn, w.DatasetID); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	} else if f.Engine() == nil {
		return fmt.Errorf("primary offered %s but follower has no dataset", w.Mode)
	}

	f.lastBeatNanos.Store(time.Now().UnixNano())
	f.connected.Store(true)
	ackBuf := make([]byte, 8)
	for {
		kind, payload, err := readMsg(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		switch kind {
		case msgRecord:
			seq, ops, err := wal.DecodeRecord(payload)
			if err != nil {
				return fmt.Errorf("bad frame: %w", err)
			}
			eng := f.Engine()
			if eng == nil {
				return fmt.Errorf("frame before snapshot completed")
			}
			if _, err := eng.ApplyReplicated(seq, ops); err != nil {
				return fmt.Errorf("apply seq %d: %w", seq, err)
			}
			f.lastApplied.Store(seq)
			f.bytesReceived.Add(int64(len(payload)))
			f.lastFrameNanos.Store(time.Now().UnixNano())
			f.lastBeatNanos.Store(time.Now().UnixNano())
			if seq > f.primaryTail.Load() {
				f.primaryTail.Store(seq)
			}
			// The ack certifies the frame is fsynced into the local log
			// (ApplyReplicated appends under fsync-per-batch).
			binary.LittleEndian.PutUint64(ackBuf, seq)
			if err := writeMsg(conn, msgAck, ackBuf); err != nil {
				return err
			}
		case msgManifest:
			var man wal.Manifest
			if err := json.Unmarshal(payload, &man); err != nil {
				return fmt.Errorf("bad manifest: %w", err)
			}
			// Fold in lockstep: compact the local overlay + log now that
			// the primary has. Stream order guarantees every frame at or
			// below man.LastSeq was applied; guard anyway.
			if eng := f.Engine(); eng != nil && eng.LastSeq() >= man.LastSeq {
				if err := eng.Checkpoint(); err != nil {
					f.mu.Lock()
					f.lastErr = fmt.Sprintf("local checkpoint: %v", err)
					f.mu.Unlock()
				} else {
					f.folds.Add(1)
				}
			}
		case msgTail:
			f.lastBeatNanos.Store(time.Now().UnixNano())
			var t tail
			if err := json.Unmarshal(payload, &t); err == nil && t.TailSeq > f.primaryTail.Load() {
				f.primaryTail.Store(t.TailSeq)
			}
		case msgDeposed:
			// The primary learned it was fenced and is shutting down. Record
			// the newer epoch and re-point the write redirect at the
			// successor (when announced), then reconnect — the coordinator
			// or the next discovery round finds the new primary.
			var dep deposed
			if err := json.Unmarshal(payload, &dep); err != nil {
				return fmt.Errorf("bad deposed message: %w", err)
			}
			if eng := f.Engine(); eng != nil {
				eng.Fence(dep.Epoch)
			}
			if dep.HTTPAddr != "" {
				f.mu.Lock()
				f.primaryHTTP = primaryHTTPURL(f.cfg.PrimaryAddr, dep.HTTPAddr)
				f.mu.Unlock()
			}
			return fmt.Errorf("primary deposed by epoch %d", dep.Epoch)
		case msgError:
			return fmt.Errorf("primary: %s", payload)
		default:
			return fmt.Errorf("unexpected message %q mid-stream", kind)
		}
	}
}

// loadSnapshot re-seeds the local directory from a full transfer: the
// current engine (if any) is closed, the local dataset state wiped, the
// generation files and base manifest written durably, and a fresh
// engine opened at the manifest's sequence.
func (f *Follower) loadSnapshot(conn net.Conn, datasetID string) error {
	f.mu.Lock()
	eng := f.eng
	f.eng = nil
	f.mu.Unlock()
	if eng != nil {
		if err := eng.Close(); err != nil {
			return fmt.Errorf("close stale engine: %w", err)
		}
	}
	if err := wipeDataset(f.cfg.Dir); err != nil {
		return err
	}

	received := map[string]bool{}
	var man wal.Manifest
	for {
		kind, payload, err := readMsg(conn)
		if err != nil {
			return err
		}
		if kind == msgError {
			return fmt.Errorf("primary: %s", payload)
		}
		if kind == msgManifest {
			if err := json.Unmarshal(payload, &man); err != nil {
				return fmt.Errorf("bad manifest: %w", err)
			}
			break
		}
		if kind != msgFileBegin {
			return fmt.Errorf("unexpected message %q during snapshot", kind)
		}
		var fb fileBegin
		if err := json.Unmarshal(payload, &fb); err != nil {
			return fmt.Errorf("bad file header: %w", err)
		}
		if err := validSnapshotName(fb.Name); err != nil {
			return err
		}
		if err := f.receiveFile(conn, fb); err != nil {
			return fmt.Errorf("receive %s: %w", fb.Name, err)
		}
		received[fb.Name] = true
	}
	if !received[man.Tuples] || !received[man.Lists] {
		return fmt.Errorf("manifest names %s + %s but transfer delivered %v", man.Tuples, man.Lists, received)
	}
	if err := man.Save(f.cfg.Dir); err != nil {
		return err
	}
	if err := writeDatasetID(f.cfg.Dir, datasetID); err != nil {
		return err
	}
	eng, err := engine.OpenDir(f.cfg.Dir, f.cfg.PoolPages, f.engineConfig())
	if err != nil {
		return fmt.Errorf("open snapshot: %w", err)
	}
	f.mu.Lock()
	f.eng = eng
	f.mu.Unlock()
	f.lastApplied.Store(man.LastSeq)
	f.snapshots.Add(1)
	mSnapshotsLoaded.Inc()
	return nil
}

// receiveFile streams one snapshot file to disk, verifying size and —
// when the sender announced one — the whole-file CRC before the fsync,
// so a truncated or corrupted transfer is rejected before the manifest
// is saved and the re-seeded engine swapped in.
func (f *Follower) receiveFile(conn net.Conn, fb fileBegin) error {
	path := filepath.Join(f.cfg.Dir, fb.Name)
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	var got int64
	for got < fb.Size {
		kind, payload, err := readMsg(conn)
		if err != nil {
			out.Close()
			return err
		}
		if kind != msgFileChunk {
			out.Close()
			return fmt.Errorf("expected chunk, got %q", kind)
		}
		if _, err := out.Write(payload); err != nil {
			out.Close()
			return err
		}
		crc.Write(payload)
		got += int64(len(payload))
	}
	if got != fb.Size {
		out.Close()
		return fmt.Errorf("got %d bytes, want %d", got, fb.Size)
	}
	if fb.Crc32 != 0 && crc.Sum32() != fb.Crc32 {
		out.Close()
		return fmt.Errorf("crc mismatch: got %08x, want %08x (truncated or corrupted transfer)", crc.Sum32(), fb.Crc32)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// validSnapshotName confines transferred files to plain dataset file
// names inside the follower directory.
func validSnapshotName(name string) error {
	if name == "" || name != filepath.Base(name) || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("replication: illegal snapshot file name %q", name)
	}
	switch name {
	case wal.ManifestName, wal.LogName, wal.LockName, DatasetIDName:
		return fmt.Errorf("replication: snapshot may not overwrite %q", name)
	}
	return nil
}

// wipeForReseed closes the local engine (if any) and wipes the dataset
// state so the next session bootstraps as a fresh follower.
func (f *Follower) wipeForReseed() error {
	f.mu.Lock()
	eng := f.eng
	f.eng = nil
	f.mu.Unlock()
	if eng != nil {
		if err := eng.Close(); err != nil {
			return fmt.Errorf("close diverged engine: %w", err)
		}
	}
	if err := wipeDataset(f.cfg.Dir); err != nil {
		return err
	}
	f.lastApplied.Store(0)
	return nil
}

// wipeDataset removes every piece of dataset state from dir, keeping
// only the lock file (flock identity must survive).
func wipeDataset(dir string) error {
	def := wal.DefaultManifest()
	for _, name := range []string{wal.ManifestName, wal.LogName, DatasetIDName, def.Tuples, def.Lists} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	for _, pat := range []string{"tuples.g*.dat", "lists.g*.dat"} {
		matches, _ := filepath.Glob(filepath.Join(dir, pat))
		for _, p := range matches {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return wal.SyncDir(dir)
}

// primaryHTTPURL combines the replication address's host with the
// advertised HTTP address's port. A full URL (the coordinator
// advertises those — a successor primary may live on another host) is
// passed through verbatim.
func primaryHTTPURL(replAddr, httpAddr string) string {
	if httpAddr == "" {
		return ""
	}
	if strings.HasPrefix(httpAddr, "http://") || strings.HasPrefix(httpAddr, "https://") {
		return httpAddr
	}
	host, _, err := net.SplitHostPort(replAddr)
	if err != nil || host == "" {
		host = "localhost"
	}
	_, port, err := net.SplitHostPort(httpAddr)
	if err != nil || port == "" {
		return ""
	}
	return "http://" + net.JoinHostPort(host, port)
}

// FollowerStats is the standby's /stats replication block.
type FollowerStats struct {
	Role            string `json:"role"` // "follower"
	Primary         string `json:"primary"`
	PrimaryHTTP     string `json:"primary_http,omitempty"`
	Connected       bool   `json:"connected"`
	LastAppliedSeq  uint64 `json:"last_applied_seq"`
	PrimaryTailSeq  uint64 `json:"primary_tail_seq"`
	SeqDelta        uint64 `json:"seq_delta"`
	BytesReceived   int64  `json:"bytes_received"`
	LastFrameUnixNs int64  `json:"last_frame_unix_ns"`
	LastFrameAgeMs  int64  `json:"last_frame_age_ms"`
	SnapshotsLoaded int64  `json:"snapshots_loaded"`
	Reconnects      int64  `json:"reconnects"`
	LocalFolds      int64  `json:"local_folds"`
	Epoch           uint64 `json:"epoch"`
	LastError       string `json:"last_error,omitempty"`
}

// Stats snapshots the follower.
func (f *Follower) Stats() FollowerStats {
	applied := f.lastApplied.Load()
	tail := f.primaryTail.Load()
	var delta uint64
	if tail > applied {
		delta = tail - applied
	}
	st := FollowerStats{
		Role:            "follower",
		Primary:         f.cfg.PrimaryAddr,
		Connected:       f.connected.Load(),
		LastAppliedSeq:  applied,
		PrimaryTailSeq:  tail,
		SeqDelta:        delta,
		BytesReceived:   f.bytesReceived.Load(),
		LastFrameUnixNs: f.lastFrameNanos.Load(),
		SnapshotsLoaded: f.snapshots.Load(),
		Reconnects:      f.reconnects.Load(),
		LocalFolds:      f.folds.Load(),
	}
	if eng := f.Engine(); eng != nil {
		st.Epoch = eng.Epoch()
	}
	if st.LastFrameUnixNs != 0 {
		st.LastFrameAgeMs = time.Since(time.Unix(0, st.LastFrameUnixNs)).Milliseconds()
	}
	f.mu.Lock()
	st.PrimaryHTTP = f.primaryHTTP
	st.LastError = f.lastErr
	f.mu.Unlock()
	return st
}
