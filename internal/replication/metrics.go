// Observability: the replication layer's obs registrations. Counters
// increment at the exact sites the /stats atomics do, and the lag
// gauges read through the most recently started follower (processes
// host one follower outside of tests), so /stats and /metrics cannot
// drift apart.
package replication

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

var (
	mElections = obs.NewCounter("ir_repl_elections_total",
		"coordinator elections that reached a quorum verdict (whoever won)")
	mPromotions = obs.NewCounter("ir_repl_promotions_total",
		"follower-to-primary promotions completed by this process")
	mDemotions = obs.NewCounter("ir_repl_demotions_total",
		"primary-to-follower demotions (fenced or outbid) by this process")
	mQuorumSeconds = obs.NewHistogram("ir_repl_quorum_ack_seconds",
		"primary-side wait for the follower ack quorum of one Apply batch",
		obs.LatencyBuckets)
	mQuorumFailures = obs.NewCounter("ir_repl_quorum_failures_total",
		"quorum gates that timed out before a majority of followers acked")
	mSessionsReaped = obs.NewCounter("ir_repl_sessions_reaped_total",
		"streaming sessions killed for acking nothing through a whole quorum window")
	mSnapshotsServed = obs.NewCounter("ir_repl_snapshots_served_total",
		"full-dataset snapshot transfers served by this primary")
	mSnapshotBytes = obs.NewCounter("ir_repl_snapshot_bytes_total",
		"bytes of generation files shipped in snapshot transfers")
	mSnapshotsLoaded = obs.NewCounter("ir_repl_snapshots_loaded_total",
		"snapshot transfers this follower installed (stream resume was impossible)")
	mReconnects = obs.NewCounter("ir_repl_reconnects_total",
		"follower reconnect attempts to its primary")
)

// gaugeFollower is the follower whose lag the bridge gauges report:
// the most recently started one. A process hosts one follower outside
// of multi-node tests, where last-wins is an acceptable tiebreak (the
// per-node /stats remains exact either way).
var gaugeFollower atomic.Pointer[Follower]

// followerStat samples one field of the live follower's stats, zero
// when no follower runs in this process.
func followerStat(field func(FollowerStats) float64) func() float64 {
	return func() float64 {
		f := gaugeFollower.Load()
		if f == nil {
			return 0
		}
		return field(f.Stats())
	}
}

var (
	_ = obs.NewGaugeFunc("ir_repl_lag_seq",
		"follower replication lag in WAL sequence numbers (primary tail minus last applied)",
		followerStat(func(st FollowerStats) float64 { return float64(st.SeqDelta) }))
	_ = obs.NewGaugeFunc("ir_repl_lag_seconds",
		"age of the last frame the follower received from its primary",
		followerStat(func(st FollowerStats) float64 { return float64(st.LastFrameAgeMs) / 1000 }))
	_ = obs.NewGaugeFunc("ir_repl_bytes_received",
		"bytes of frames and snapshots this follower has received since start",
		followerStat(func(st FollowerStats) float64 { return float64(st.BytesReceived) }))
	_ = obs.NewGaugeFunc("ir_repl_connected",
		"1 when the follower's stream to its primary is up",
		followerStat(func(st FollowerStats) float64 {
			if st.Connected {
				return 1
			}
			return 0
		}))
	_ = obs.NewGaugeFunc("ir_repl_fencing_epoch",
		"the follower engine's fencing epoch (promotions advance it; a stale primary is fenced below it)",
		followerStat(func(st FollowerStats) float64 { return float64(st.Epoch) }))
)

// observeQuorum records one gate wait.
func observeQuorum(start time.Time) {
	mQuorumSeconds.Observe(time.Since(start).Seconds())
}
