// Package replication ships the write-ahead log of a durable engine
// (internal/wal) to warm read-only standbys over TCP, so a node loss
// does not lose acknowledged batches and followers can serve read
// traffic from their replayed overlays.
//
// # Model
//
// One primary (the directory's exclusive WAL writer) accepts follower
// connections on a listen address. Each follower maintains its own data
// directory — a full durable engine of its own — and replays the
// primary's frames through the identical Engine.ApplyReplicated path
// live Apply uses, including region-certified cache invalidation, so a
// standby that has applied sequence number S serves answers
// bit-identical to the primary at S (the WAL encoding and the mutation
// code are deterministic; see docs/replication.md for the full
// argument and the property tests that pin it).
//
// # Invariants
//
//   - Frames are shipped verbatim (the exact bytes appended to the
//     primary's log) in strictly increasing, gap-free sequence order;
//     the follower verifies each frame's CRC and sequence before
//     appending it to its own log.
//   - A follower ack for sequence S means the follower has fsynced its
//     log through S (followers always run fsync-per-batch), so in
//     quorum ack mode a successful Apply implies the batch is on stable
//     storage on at least max(1, ⌈n/2⌉) followers.
//   - The primary retains, in memory, every frame not yet folded into
//     its checkpointed dataset files (bounded by the engine's
//     checkpoint threshold). A follower whose resume point predates
//     that history — the primary's log was checkpoint-truncated past
//     the follower's sequence — is re-seeded with a full snapshot
//     transfer of the current generation files.
//   - Checkpoint manifests are forwarded in stream order; a follower
//     folds its own overlay (a local checkpoint) when it receives one,
//     keeping standby log growth in lockstep with the primary's.
//
// # Lock ordering
//
// engine.Engine.mu is always acquired before Primary.mu (the engine
// calls the sink under its write lock); Primary.mu is never held
// across a call into the engine or across network I/O. The follower
// holds no lock while calling into its engine.
//
// The wire protocol lives in this file; primary.go is the shipper,
// follower.go the standby loop. docs/replication.md is the normative
// spec.
package replication

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

// ProtoVersion is the handshake protocol version. A primary refuses
// hellos carrying any other value.
const ProtoVersion = 1

// DatasetIDName is the file naming a dataset's replication identity
// inside its data directory. The primary mints it on first use; a
// snapshot transfer copies it to the follower, and every reconnect
// handshake cross-checks it so a follower can never replay frames of a
// different dataset onto its state.
const DatasetIDName = "DATASET_ID"

// Message kinds. Every message on the wire is `kind byte | len uint32
// LE | payload`; see docs/replication.md for the per-kind payloads.
const (
	// follower → primary
	msgHello byte = 'h' // JSON hello
	msgAck   byte = 'a' // 8-byte LE sequence number fsynced through

	// primary → follower
	msgWelcome   byte = 'w' // JSON welcome
	msgFileBegin byte = 'f' // JSON {name, size}: a snapshot file follows
	msgFileChunk byte = 'd' // raw bytes of the current snapshot file
	msgManifest  byte = 'm' // JSON wal.Manifest: snapshot base / checkpoint event
	msgRecord    byte = 'r' // one verbatim WAL frame
	msgTail      byte = 't' // JSON heartbeat {tail_seq, unix_nanos}
	msgError     byte = 'e' // UTF-8 error text, then close
	msgDeposed   byte = 'x' // JSON deposed: this primary was fenced; reconnect elsewhere
)

// maxMessageBytes bounds one message's payload: the WAL's own record
// limit plus its frame header. Anything larger is a protocol violation.
const maxMessageBytes = 1<<30 + 64

// maxControlBytes bounds small control messages (hello, welcome, acks,
// manifests, heartbeats). The primary applies it to everything an
// unauthenticated peer can send — the payload length in the frame
// header is attacker-controlled, and readMsg allocates it up front, so
// pre-validation reads must never honor a gigabyte-sized claim.
const maxControlBytes = 64 << 10

// snapshotChunkBytes is the file-transfer chunk size.
const snapshotChunkBytes = 1 << 20

// hello is the follower's handshake: who it is and where to resume.
type hello struct {
	Proto     int    `json:"proto"`
	DatasetID string `json:"dataset_id"` // "" on a fresh (empty-dir) follower
	LastSeq   uint64 `json:"last_seq"`   // highest sequence committed to the follower's log
	// Epoch is the follower's current fencing epoch; a primary seeing a
	// HIGHER epoch than its own knows it has been deposed and fences
	// itself. LastEpoch is the epoch owning the follower's last frame
	// per its own timeline; the primary cross-checks it against its
	// timeline at LastSeq to detect a divergent branch (same sequence
	// numbers, different history).
	Epoch     uint64 `json:"epoch,omitempty"`
	LastEpoch uint64 `json:"last_epoch,omitempty"`
}

// Stream modes announced in the welcome.
const (
	ModeStream   = "stream"   // frames from LastSeq+1 follow directly
	ModeSnapshot = "snapshot" // full generation files + base manifest first
)

// welcome is the primary's handshake response.
type welcome struct {
	Proto     int    `json:"proto"`
	DatasetID string `json:"dataset_id"`
	Mode      string `json:"mode"` // ModeStream or ModeSnapshot
	// HTTPAddr is the primary's advertised HTTP listen address (its
	// -addr flag); followers combine it with the replication host to
	// build the write-redirect URL.
	HTTPAddr string `json:"http_addr,omitempty"`
	TailSeq  uint64 `json:"tail_seq"`
	// Epoch and Epochs carry the primary's fencing epoch and promotion
	// timeline; the follower adopts and persists them (they are
	// authoritative for the history it mirrors) and refuses a primary
	// whose epoch is below its own — that primary is deposed and has
	// not noticed yet.
	Epoch  uint64           `json:"epoch,omitempty"`
	Epochs []wal.EpochStart `json:"epochs,omitempty"`
}

// deposed is the fenced primary's goodbye: it learned of a newer epoch
// and is shutting its sessions down. Epoch is the fencing epoch it
// observed; HTTPAddr, when known, is the successor primary's advertised
// HTTP address so followers (and their coordinators) can re-point
// without a discovery round.
type deposed struct {
	Epoch    uint64 `json:"epoch"`
	HTTPAddr string `json:"http_addr,omitempty"`
}

// fileBegin announces one snapshot file. Crc32 (IEEE, whole file) lets
// the receiver detect a truncated or corrupted transfer before the
// re-seeded engine ever opens the data; zero means the sender did not
// compute one and the receiver verifies size only.
type fileBegin struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	Crc32 uint32 `json:"crc32,omitempty"`
}

// tail is the primary's heartbeat, letting followers measure lag even
// when no writes are flowing.
type tail struct {
	TailSeq   uint64 `json:"tail_seq"`
	UnixNanos int64  `json:"unix_nanos"`
}

// writeMsg frames and writes one message. Callers serialize access to
// w themselves (the primary's per-session write mutex; the follower is
// single-writer by construction).
func writeMsg(w io.Writer, kind byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONMsg marshals v and writes it as kind.
func writeJSONMsg(w io.Writer, kind byte, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeMsg(w, kind, raw)
}

// readMsg reads one framed message, allowing data-plane payloads up to
// the WAL record limit. Use readControlMsg on any connection whose
// peer is not yet expected to send bulk data.
func readMsg(r io.Reader) (kind byte, payload []byte, err error) {
	return readMsgLimit(r, maxMessageBytes)
}

// readControlMsg reads one framed message under the small control-
// message bound — the primary's read path (hellos and acks only), so a
// hostile dialer cannot make it allocate a gigabyte from a forged
// length header.
func readControlMsg(r io.Reader) (kind byte, payload []byte, err error) {
	return readMsgLimit(r, maxControlBytes)
}

func readMsgLimit(r io.Reader, limit uint32) (kind byte, payload []byte, err error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > limit {
		return 0, nil, fmt.Errorf("replication: message of %d bytes exceeds the %d-byte limit", n, limit)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// EnsureDatasetID returns dir's replication identity, minting and
// durably persisting a fresh one (16 random bytes, hex) if the
// directory has none yet.
func EnsureDatasetID(dir string) (string, error) {
	if id, err := ReadDatasetID(dir); err != nil || id != "" {
		return id, err
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	id := hex.EncodeToString(buf[:])
	if err := writeDatasetID(dir, id); err != nil {
		return "", err
	}
	return id, nil
}

// ReadDatasetID reads dir's replication identity; "" when the
// directory has none (a fresh follower).
func ReadDatasetID(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, DatasetIDName))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return string(trimSpace(raw)), nil
}

// writeDatasetID persists the identity durably (write + fsync + dir
// fsync): losing it after a snapshot would make the next handshake look
// like a fresh follower and force a needless re-transfer.
func writeDatasetID(dir, id string) error {
	path := filepath.Join(dir, DatasetIDName)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(id + "\n"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return wal.SyncDir(dir)
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r' || b[len(b)-1] == ' ') {
		b = b[:len(b)-1]
	}
	return b
}
