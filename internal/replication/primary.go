// The primary side: a Primary implements engine.ReplicationSink,
// buffering every committed WAL frame since the last checkpoint
// truncation (so its memory footprint is bounded by the engine's
// checkpoint threshold) and fanning the stream out to follower
// sessions. It also implements the quorum commit gate.
package replication

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wal"
)

// AckMode selects when Apply acknowledges a batch to its caller.
type AckMode int

const (
	// AckAsync (default): Apply returns once the batch is durable on
	// the primary; followers catch up in the background.
	AckAsync AckMode = iota
	// AckQuorum: Apply additionally blocks until max(1, ⌈n/2⌉) of the n
	// connected followers confirm an fsync of the batch's frame.
	AckQuorum
)

func (m AckMode) String() string {
	if m == AckQuorum {
		return "quorum"
	}
	return "async"
}

// ParseAckMode maps a flag value to an ack mode.
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "", "async":
		return AckAsync, nil
	case "quorum":
		return AckQuorum, nil
	}
	return 0, fmt.Errorf("replication: ack mode %q is not async or quorum", s)
}

// PrimaryConfig tunes a Primary.
type PrimaryConfig struct {
	// HTTPAddr is the primary's HTTP listen address, advertised to
	// followers so their write rejections can point clients here.
	HTTPAddr string
	// AckMode selects async (default) or quorum acknowledgement.
	AckMode AckMode
	// AckTimeout bounds how long a quorum-mode Apply waits for follower
	// acks before failing with engine.ErrQuorum semantics (default 5s).
	AckTimeout time.Duration
	// HeartbeatInterval is the per-session tail heartbeat period
	// (default 500ms), the resolution of follower lag measurement.
	HeartbeatInterval time.Duration
}

// event is one element of the primary's ordered commit history: a
// shipped frame, or a checkpoint manifest.
type event struct {
	seq   uint64
	frame []byte       // nil → checkpoint event
	man   wal.Manifest // valid when frame == nil
}

// Primary ships a durable engine's commit stream to followers.
type Primary struct {
	eng *engine.Engine
	dir string
	id  string
	cfg PrimaryConfig

	mu   sync.Mutex
	cond *sync.Cond // broadcast on new events, acks, session churn, close
	// events holds every frame with seq > minStreamSeq plus interleaved
	// checkpoint manifests; firstIdx is events[0]'s absolute index.
	events        []event
	firstIdx      int64
	minStreamSeq  uint64 // frames at or below this are gone: snapshot territory
	tailSeq       uint64
	bufferedBytes int64
	sessions      map[*session]struct{}
	ln            net.Listener
	closed        bool

	snapshots      atomic.Int64
	quorumFailures atomic.Int64
	sessionsReaped atomic.Int64
}

// NewPrimary builds the shipper for an already-opened durable engine on
// dir. It must be created — and attached via eng.SetReplicationSink —
// after engine.OpenDir and before the engine serves any traffic, so the
// in-memory history (seeded here from wal.log) stays contiguous with
// the live commit stream.
func NewPrimary(eng *engine.Engine, dir string, cfg PrimaryConfig) (*Primary, error) {
	if !eng.Durable() {
		return nil, fmt.Errorf("replication: primary requires a durable engine (-wal)")
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	id, err := EnsureDatasetID(dir)
	if err != nil {
		return nil, fmt.Errorf("replication: dataset id: %w", err)
	}
	man, ok, err := wal.LoadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("replication: %w", err)
	}
	if !ok {
		man = wal.DefaultManifest()
	}
	p := &Primary{
		eng:          eng,
		dir:          dir,
		id:           id,
		cfg:          cfg,
		minStreamSeq: man.LastSeq,
		tailSeq:      man.LastSeq,
		sessions:     make(map[*session]struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	// Seed the history with the log's un-checkpointed frames: a
	// follower resuming anywhere at or past the manifest can stream.
	res, err := wal.ReplayFrames(filepath.Join(dir, wal.LogName), man.LastSeq, func(seq uint64, frame []byte) error {
		p.events = append(p.events, event{seq: seq, frame: frame})
		p.bufferedBytes += int64(len(frame))
		p.tailSeq = seq
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("replication: seed from %s: %w", wal.LogName, err)
	}
	_ = res
	return p, nil
}

// DatasetID returns the directory's replication identity.
func (p *Primary) DatasetID() string { return p.id }

// CommitFrame implements engine.ReplicationSink: called under the
// engine's write lock with each committed frame, in sequence order.
func (p *Primary) CommitFrame(seq uint64, frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events = append(p.events, event{seq: seq, frame: frame})
	p.bufferedBytes += int64(len(frame))
	p.tailSeq = seq
	p.cond.Broadcast()
}

// CheckpointEvent implements engine.ReplicationSink. On a truncating
// checkpoint the shipped history before the event is dropped (those
// frames are folded into the generation files snapshot transfers now
// serve) and any session that had not yet sent them is killed — on
// reconnect its resume point predates minStreamSeq, which is exactly
// the snapshot-fallback condition.
func (p *Primary) CheckpointEvent(man wal.Manifest, logTruncated bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events = append(p.events, event{seq: man.LastSeq, man: man})
	if logTruncated {
		cut := int64(len(p.events)) - 1 // absolute: firstIdx + cut
		for s := range p.sessions {
			if s.streamIdx >= 0 && s.streamIdx < p.firstIdx+cut {
				s.kill()
			}
		}
		kept := make([]event, len(p.events)-int(cut))
		copy(kept, p.events[cut:])
		p.events = kept
		p.firstIdx += cut
		p.minStreamSeq = man.LastSeq
		p.bufferedBytes = 0
		for _, ev := range p.events {
			p.bufferedBytes += int64(len(ev.frame))
		}
	}
	p.cond.Broadcast()
}

// Gate is the quorum commit gate (engine.SetCommitGate): it blocks
// until max(1, ⌈n/2⌉) of the n streaming followers have acknowledged
// an fsync through seq, or AckTimeout passes. With no followers
// connected the quorum is unsatisfiable and the gate waits for one to
// arrive (up to the timeout) — a quorum-mode primary never silently
// degrades to async.
//
// When the gate times out, any streaming session whose ack did not
// advance during the whole window is reaped (killed and excluded from
// future quorum counts): a partitioned follower whose TCP connection
// is still nominally open would otherwise inflate n forever, turning
// every subsequent quorum-mode Apply into a guaranteed AckTimeout
// stall. A live-but-slow follower just reconnects and resumes.
func (p *Primary) Gate(seq uint64) error {
	defer observeQuorum(time.Now())
	deadline := time.Now().Add(p.cfg.AckTimeout)
	// The deadline broadcast must hold p.mu: an unlocked Broadcast can
	// fire in the window between the waiter's deadline check and its
	// cond.Wait, be lost, and leave the write blocked forever on a
	// quiet primary.
	timer := time.AfterFunc(p.cfg.AckTimeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	entryAcked := make(map[*session]uint64)
	for s := range p.sessions {
		if s.streaming && !s.killed {
			entryAcked[s] = s.acked
		}
	}
	for {
		if p.closed {
			return fmt.Errorf("replication: primary closed")
		}
		n, got := 0, 0
		for s := range p.sessions {
			if !s.streaming || s.killed {
				continue
			}
			n++
			if s.acked >= seq {
				got++
			}
		}
		need := (n + 1) / 2
		if need < 1 {
			need = 1
		}
		if n > 0 && got >= need {
			return nil
		}
		if !time.Now().Before(deadline) {
			p.quorumFailures.Add(1)
			mQuorumFailures.Inc()
			reaped := 0
			for s := range p.sessions {
				if !s.streaming || s.killed || s.acked >= seq {
					continue
				}
				if a0, ok := entryAcked[s]; ok && s.acked == a0 {
					s.kill()
					reaped++
				}
			}
			if reaped > 0 {
				p.sessionsReaped.Add(int64(reaped))
				mSessionsReaped.Add(int64(reaped))
				p.cond.Broadcast()
			}
			return fmt.Errorf("replication: %d of the required %d follower acks for seq %d within %v (%d connected, %d reaped as silent)",
				got, need, seq, p.cfg.AckTimeout, n, reaped)
		}
		p.cond.Wait()
	}
}

// Serve accepts follower connections on ln until Close. It blocks; run
// it in its own goroutine.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return fmt.Errorf("replication: primary closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go p.handle(conn)
	}
}

// Close stops accepting, severs every session and wakes any quorum
// waiter (which then fails).
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	for s := range p.sessions {
		s.kill()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// Depose announces this primary's fencing to every connected follower
// — msgDeposed carries the observed newer epoch and, when known, the
// successor's HTTP address so followers re-point without a discovery
// round — then shuts the shipper down. Called by the coordinator when
// the node demotes itself after observing a higher epoch.
func (p *Primary) Depose(epoch uint64, successorHTTP string) {
	raw, err := json.Marshal(deposed{Epoch: epoch, HTTPAddr: successorHTTP})
	if err == nil {
		p.mu.Lock()
		sessions := make([]*session, 0, len(p.sessions))
		for s := range p.sessions {
			sessions = append(sessions, s)
		}
		p.mu.Unlock()
		for _, s := range sessions {
			_ = s.send(msgDeposed, raw) // best effort: Close severs anyway
		}
	}
	p.Close()
}

// session is one connected follower.
type session struct {
	p      *Primary
	conn   net.Conn
	wmu    sync.Mutex // serializes event-loop and heartbeat writes
	remote string

	// guarded by p.mu
	streamIdx   int64 // next event to send; -1 while handshaking/snapshotting
	acked       uint64
	streaming   bool // past handshake+snapshot, counted toward quorums
	killed      bool
	connectedAt time.Time
}

// kill severs the session; p.mu must be held.
func (s *session) kill() {
	s.killed = true
	s.conn.Close()
}

func (s *session) send(kind byte, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeMsg(s.conn, kind, payload)
}

func (s *session) sendJSON(kind byte, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.send(kind, raw)
}

// fail reports a protocol error to the follower and gives up.
func (s *session) fail(msg string) {
	_ = s.send(msgError, []byte(msg))
	s.conn.Close()
}

// handle runs one follower session: handshake, optional snapshot,
// then the event stream. A reader goroutine consumes acks and a
// heartbeat goroutine reports the tail.
func (p *Primary) handle(conn net.Conn) {
	s := &session{p: p, conn: conn, remote: conn.RemoteAddr().String(), streamIdx: -1, connectedAt: time.Now()}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, payload, err := readControlMsg(conn)
	if err != nil || kind != msgHello {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	var h hello
	if err := json.Unmarshal(payload, &h); err != nil {
		s.fail("bad hello")
		return
	}
	if h.Proto != ProtoVersion {
		s.fail(fmt.Sprintf("protocol version %d not supported (want %d)", h.Proto, ProtoVersion))
		return
	}
	if h.DatasetID != "" && h.DatasetID != p.id {
		s.fail(fmt.Sprintf("dataset id mismatch: follower has %s, primary serves %s — wipe the follower directory to re-seed it", h.DatasetID, p.id))
		return
	}
	// Fencing: a dialer that knows a newer epoch proves this primary was
	// deposed while it wasn't looking. Record the fence — Apply starts
	// refusing client writes immediately — and refuse the session; the
	// coordinator (or operator) demotes this node to follower.
	if myEpoch := p.eng.Epoch(); h.Epoch > myEpoch {
		p.eng.Fence(h.Epoch)
		s.fail(fmt.Sprintf("primary epoch %d deposed by epoch %d", myEpoch, h.Epoch))
		return
	}

	// Register before deciding the mode, so a concurrent truncation
	// either sees this session (and leaves streamIdx=-1 alone) or
	// happened before and is reflected in minStreamSeq.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.sessions[s] = struct{}{}
	snapshot := h.DatasetID == "" || h.LastSeq < p.minStreamSeq
	diverged := h.LastSeq > p.tailSeq
	tailSeq := p.tailSeq
	p.mu.Unlock()
	defer p.drop(s)

	if diverged {
		s.fail(fmt.Sprintf("follower is ahead of the primary (follower seq %d, primary tail %d): diverged history, wipe the follower directory", h.LastSeq, tailSeq))
		return
	}
	// Epoch-timeline divergence: the follower's sequence numbers fit
	// inside our history, but if its last frame was written under a
	// different epoch than the one our timeline assigns that sequence,
	// its log is a branch minted by a deposed primary — streaming from
	// LastSeq+1 would graft our history onto frames we never had. Only a
	// re-seed can fix it.
	if h.DatasetID != "" && h.LastSeq > 0 {
		if want := p.eng.EpochAt(h.LastSeq); want != h.LastEpoch {
			s.fail(fmt.Sprintf("follower seq %d was committed under epoch %d but this primary's timeline assigns it epoch %d: diverged history, wipe the follower directory", h.LastSeq, h.LastEpoch, want))
			return
		}
	}

	mode := ModeStream
	if snapshot {
		mode = ModeSnapshot
	}
	w := welcome{Proto: ProtoVersion, DatasetID: p.id, Mode: mode, HTTPAddr: p.cfg.HTTPAddr,
		TailSeq: tailSeq, Epoch: p.eng.Epoch(), Epochs: p.eng.EpochTimeline()}
	if err := s.sendJSON(msgWelcome, w); err != nil {
		conn.Close()
		return
	}

	resumeSeq := h.LastSeq
	if snapshot {
		man, err := p.sendSnapshot(s)
		if err != nil {
			conn.Close()
			return
		}
		resumeSeq = man.LastSeq
		p.snapshots.Add(1)
		mSnapshotsServed.Inc()
	}

	// Position the stream: the first retained event past resumeSeq.
	p.mu.Lock()
	if resumeSeq < p.minStreamSeq {
		// A truncating checkpoint completed while the snapshot streamed
		// and the frames this follower now needs are gone. Re-seeding is
		// the follower's reconnect logic; tell it to come back.
		p.mu.Unlock()
		s.fail("snapshot superseded by a concurrent checkpoint, reconnect")
		return
	}
	idx := p.firstIdx
	for i, ev := range p.events {
		if ev.seq > resumeSeq {
			idx = p.firstIdx + int64(i)
			break
		}
		idx = p.firstIdx + int64(i) + 1
	}
	s.streamIdx = idx
	s.streaming = true
	p.cond.Broadcast()
	p.mu.Unlock()

	// Reader: acks only. A read error is how a dead follower is
	// detected even when no events are flowing, so it kills the
	// session (waking the event loop) and wakes quorum waiters.
	go func() {
		for {
			kind, payload, err := readControlMsg(conn)
			if err != nil {
				p.mu.Lock()
				s.kill()
				p.cond.Broadcast()
				p.mu.Unlock()
				return
			}
			if kind == msgAck && len(payload) == 8 {
				seq := binary.LittleEndian.Uint64(payload)
				p.mu.Lock()
				if seq > s.acked {
					s.acked = seq
					p.cond.Broadcast()
				}
				p.mu.Unlock()
			}
		}
	}()

	// Heartbeats.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(p.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case now := <-t.C:
				p.mu.Lock()
				ts := p.tailSeq
				p.mu.Unlock()
				if err := s.sendJSON(msgTail, tail{TailSeq: ts, UnixNanos: now.UnixNano()}); err != nil {
					conn.Close()
					return
				}
			}
		}
	}()

	// Event loop: ship history then follow the live tail.
	for {
		p.mu.Lock()
		for !p.closed && !s.killed && s.streamIdx >= p.firstIdx+int64(len(p.events)) {
			p.cond.Wait()
		}
		if p.closed || s.killed || s.streamIdx < p.firstIdx {
			p.mu.Unlock()
			conn.Close()
			return
		}
		ev := p.events[s.streamIdx-p.firstIdx]
		s.streamIdx++
		p.mu.Unlock()

		var err error
		if ev.frame != nil {
			err = s.send(msgRecord, ev.frame)
		} else {
			err = s.sendJSON(msgManifest, ev.man)
		}
		if err != nil {
			conn.Close()
			return
		}
	}
}

// sendSnapshot streams the live generation files and their manifest.
// The file handles are pinned by the engine (see OpenSnapshotFiles), so
// a checkpoint sweeping the generation mid-transfer cannot corrupt it.
// Each file header carries a whole-file CRC so the follower can reject
// a truncated or corrupted transfer before swapping engines.
func (p *Primary) sendSnapshot(s *session) (wal.Manifest, error) {
	man, tuples, lists, err := p.eng.OpenSnapshotFiles()
	if err != nil {
		return wal.Manifest{}, err
	}
	defer tuples.Close()
	defer lists.Close()
	if err := p.sendFile(s, man.Tuples, tuples); err != nil {
		return wal.Manifest{}, err
	}
	if err := p.sendFile(s, man.Lists, lists); err != nil {
		return wal.Manifest{}, err
	}
	if err := s.sendJSON(msgManifest, man); err != nil {
		return wal.Manifest{}, err
	}
	return man, nil
}

// sendFile ships one snapshot file. On mmap-capable builds the mapped
// bytes are chunked straight onto the wire, zero-copy; the fallback
// takes one extra pass over the file to compute the CRC announced in
// the header, then streams through a chunk buffer.
func (p *Primary) sendFile(s *session, name string, f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if data, release, ok := storage.MapForRead(f); ok {
		defer release()
		hdr := fileBegin{Name: name, Size: size, Crc32: crc32.ChecksumIEEE(data)}
		if err := s.sendJSON(msgFileBegin, hdr); err != nil {
			return err
		}
		for off := int64(0); off < size; off += snapshotChunkBytes {
			end := off + snapshotChunkBytes
			if end > size {
				end = size
			}
			if err := s.send(msgFileChunk, data[off:end]); err != nil {
				return err
			}
			mSnapshotBytes.Add(end - off)
		}
		return nil
	}
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, f); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := s.sendJSON(msgFileBegin, fileBegin{Name: name, Size: size, Crc32: crc.Sum32()}); err != nil {
		return err
	}
	buf := make([]byte, snapshotChunkBytes)
	var sent int64
	for sent < size {
		n := size - sent
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if _, err := io.ReadFull(f, buf[:n]); err != nil {
			return err
		}
		if err := s.send(msgFileChunk, buf[:n]); err != nil {
			return err
		}
		mSnapshotBytes.Add(n)
		sent += n
	}
	return nil
}

// drop deregisters a session.
func (p *Primary) drop(s *session) {
	p.mu.Lock()
	delete(p.sessions, s)
	p.cond.Broadcast()
	p.mu.Unlock()
	s.conn.Close()
}

// FollowerInfo describes one connected follower in PrimaryStats.
type FollowerInfo struct {
	Remote        string `json:"remote"`
	AckedSeq      uint64 `json:"acked_seq"`
	Streaming     bool   `json:"streaming"`
	ConnectedUnix int64  `json:"connected_unix"`
}

// PrimaryStats is the primary's /stats replication block.
type PrimaryStats struct {
	Role            string         `json:"role"` // "primary"
	AckMode         string         `json:"ack_mode"`
	DatasetID       string         `json:"dataset_id"`
	TailSeq         uint64         `json:"tail_seq"`
	MinStreamSeq    uint64         `json:"min_stream_seq"`
	BufferedRecords int            `json:"buffered_records"`
	BufferedBytes   int64          `json:"buffered_bytes"`
	Followers       []FollowerInfo `json:"followers"`
	SnapshotsServed int64          `json:"snapshots_served"`
	QuorumFailures  int64          `json:"quorum_failures"`
	Epoch           uint64         `json:"epoch"`
	SessionsReaped  int64          `json:"sessions_reaped"`
}

// Stats snapshots the shipper.
func (p *Primary) Stats() PrimaryStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PrimaryStats{
		Role:            "primary",
		AckMode:         p.cfg.AckMode.String(),
		DatasetID:       p.id,
		TailSeq:         p.tailSeq,
		MinStreamSeq:    p.minStreamSeq,
		BufferedBytes:   p.bufferedBytes,
		SnapshotsServed: p.snapshots.Load(),
		QuorumFailures:  p.quorumFailures.Load(),
		Epoch:           p.eng.Epoch(),
		SessionsReaped:  p.sessionsReaped.Load(),
	}
	for _, ev := range p.events {
		if ev.frame != nil {
			st.BufferedRecords++
		}
	}
	for s := range p.sessions {
		st.Followers = append(st.Followers, FollowerInfo{
			Remote:        s.remote,
			AckedSeq:      s.acked,
			Streaming:     s.streaming,
			ConnectedUnix: s.connectedAt.Unix(),
		})
	}
	return st
}
