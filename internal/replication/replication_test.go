package replication

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lists"
	"repro/internal/vec"
	"repro/internal/wal"
)

const testDims = 4

// genTuples builds a dense random dataset in [0,1]^testDims.
func genTuples(rng *rand.Rand, n int) []vec.Sparse {
	out := make([]vec.Sparse, n)
	for i := range out {
		entries := make([]vec.Entry, testDims)
		for d := 0; d < testDims; d++ {
			entries[d] = vec.Entry{Dim: d, Val: rng.Float64()}
		}
		out[i] = vec.MustSparse(entries...)
	}
	return out
}

func saveDataset(t testing.TB, dir string, tuples []vec.Sparse) {
	t.Helper()
	if err := lists.SaveDataset(filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat"), tuples, testDims); err != nil {
		t.Fatal(err)
	}
}

// primaryHarness is a live primary: durable engine + shipper + listener.
type primaryHarness struct {
	dir  string
	eng  *engine.Engine
	prim *Primary
	addr string
}

func startPrimary(t testing.TB, dir string, ack AckMode, ackTimeout time.Duration) *primaryHarness {
	t.Helper()
	eng, err := engine.OpenDir(dir, 64, engine.Config{WAL: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	prim, err := NewPrimary(eng, dir, PrimaryConfig{
		HTTPAddr:          ":8080",
		AckMode:           ack,
		AckTimeout:        ackTimeout,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	eng.SetReplicationSink(prim)
	if ack == AckQuorum {
		eng.SetCommitGate(prim.Gate)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve(ln)
	return &primaryHarness{dir: dir, eng: eng, prim: prim, addr: ln.Addr().String()}
}

func (p *primaryHarness) close(t testing.TB) {
	t.Helper()
	p.prim.Close()
	if err := p.eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// followerHarness is a running Follower with its lifecycle context.
type followerHarness struct {
	f      *Follower
	cancel context.CancelFunc
}

func startFollower(t testing.TB, dir, addr string) *followerHarness {
	t.Helper()
	f := NewFollower(FollowerConfig{
		Dir:           dir,
		PrimaryAddr:   addr,
		PoolPages:     64,
		RetryInterval: 25 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	return &followerHarness{f: f, cancel: cancel}
}

// stop kills the follower (connection severed, engine closed so the
// directory's flock frees for the next incarnation).
func (fh *followerHarness) stop(t testing.TB) {
	t.Helper()
	fh.cancel()
	select {
	case <-fh.f.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not stop")
	}
	if err := fh.f.Close(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t testing.TB, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}

// testQueries is a fixed probe set spanning subspaces and weights.
func testQueries(t testing.TB) []vec.Query {
	t.Helper()
	specs := []struct {
		dims    []int
		weights []float64
	}{
		{[]int{0, 1}, []float64{0.8, 0.4}},
		{[]int{1, 2}, []float64{0.3, 0.9}},
		{[]int{0, 2, 3}, []float64{0.5, 0.6, 0.7}},
		{[]int{0, 1, 2, 3}, []float64{0.9, 0.2, 0.5, 0.8}},
	}
	qs := make([]vec.Query, len(specs))
	for i, s := range specs {
		q, err := vec.NewQuery(s.dims, s.weights)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	return qs
}

// assertEnginesEqual proves a and b serve bit-identical /analyze and
// /topk answers for the probe set (cache bypassed: the comparison is
// about state, not cached artifacts).
func assertEnginesEqual(t testing.TB, a, b *engine.Engine) {
	t.Helper()
	opts := engine.Options{Options: core.Options{Method: core.MethodCPT}, NoCache: true}
	for qi, q := range testQueries(t) {
		aa, err := a.Analyze(context.Background(), q, 5, opts)
		if err != nil {
			t.Fatalf("query %d on a: %v", qi, err)
		}
		ba, err := b.Analyze(context.Background(), q, 5, opts)
		if err != nil {
			t.Fatalf("query %d on b: %v", qi, err)
		}
		if !reflect.DeepEqual(aa.Result, ba.Result) {
			t.Fatalf("query %d results diverged:\n  a %+v\n  b %+v", qi, aa.Result, ba.Result)
		}
		if !reflect.DeepEqual(aa.Regions, ba.Regions) {
			t.Fatalf("query %d regions diverged:\n  a %+v\n  b %+v", qi, aa.Regions, ba.Regions)
		}
	}
}

// randBatch builds 1..4 random ops against a dataset of n ids. Ops may
// fail (update/delete of a tombstoned id) — deterministically on both
// sides, which is part of what the property tests prove.
func randBatch(rng *rand.Rand, n int) []engine.Op {
	ops := make([]engine.Op, 1+rng.Intn(4))
	for i := range ops {
		switch rng.Intn(3) {
		case 0:
			entries := make([]vec.Entry, testDims)
			for d := 0; d < testDims; d++ {
				entries[d] = vec.Entry{Dim: d, Val: rng.Float64()}
			}
			ops[i] = engine.Op{Kind: engine.OpInsert, Tuple: vec.MustSparse(entries...)}
		case 1:
			ops[i] = engine.Op{Kind: engine.OpUpdate, ID: rng.Intn(n),
				Tuple: vec.MustSparse(vec.Entry{Dim: rng.Intn(testDims), Val: rng.Float64()})}
		default:
			ops[i] = engine.Op{Kind: engine.OpDelete, ID: rng.Intn(n)}
		}
	}
	return ops
}

func applyRandom(t testing.TB, eng *engine.Engine, rng *rand.Rand, batches int) {
	t.Helper()
	for i := 0; i < batches; i++ {
		if _, err := eng.Apply(randBatch(rng, eng.N())); err != nil {
			t.Fatal(err)
		}
	}
}

func caughtUp(p *primaryHarness, fh *followerHarness) func() bool {
	return func() bool {
		eng := fh.f.Engine()
		return eng != nil && eng.LastSeq() == p.eng.LastSeq()
	}
}

// TestFollowerBootstrapAndStream: an empty-directory follower seeds
// itself with a snapshot transfer, then applies the live stream, and
// its answers are bit-identical to the primary's.
func TestFollowerBootstrapAndStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pdir, fdir := t.TempDir(), t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 40))
	p := startPrimary(t, pdir, AckAsync, 0)
	defer p.close(t)

	applyRandom(t, p.eng, rng, 3)

	fh := startFollower(t, fdir, p.addr)
	defer fh.stop(t)
	waitFor(t, "bootstrap + catch-up", caughtUp(p, fh))
	st := fh.f.Stats()
	if st.SnapshotsLoaded != 1 {
		t.Fatalf("fresh follower loaded %d snapshots, want 1", st.SnapshotsLoaded)
	}
	assertEnginesEqual(t, p.eng, fh.f.Engine())

	// Live stream: new batches flow without re-seeding.
	applyRandom(t, p.eng, rng, 4)
	waitFor(t, "live catch-up", caughtUp(p, fh))
	assertEnginesEqual(t, p.eng, fh.f.Engine())
	st = fh.f.Stats()
	if st.SnapshotsLoaded != 1 || st.BytesReceived == 0 {
		t.Fatalf("stream stats %+v", st)
	}
	ps := p.prim.Stats()
	if len(ps.Followers) != 1 || !ps.Followers[0].Streaming {
		t.Fatalf("primary stats %+v", ps)
	}
	waitFor(t, "acks to reach the primary", func() bool {
		s := p.prim.Stats()
		return len(s.Followers) == 1 && s.Followers[0].AckedSeq == p.eng.LastSeq()
	})
}

// cutLogTail truncates the follower's closed WAL at a random committed
// record boundary, simulating a standby that lost its unsynced tail —
// the reconnect must resume from the earlier sequence and re-receive
// the difference.
func cutLogTail(t testing.TB, rng *rand.Rand, dir string) {
	t.Helper()
	path := filepath.Join(dir, wal.LogName)
	info, err := wal.Inspect(path)
	if err != nil || info.Records == 0 {
		return
	}
	keep := rng.Intn(info.Records + 1)
	cut := info.Size
	if keep < info.Records {
		cut = info.Offsets[keep]
	}
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerResumeProperty is the acceptance property test of the
// live-stream path: the follower is repeatedly killed at random frame
// boundaries (sometimes with its log tail cut back to an earlier
// committed record), reconnects with its resume sequence, and after
// every catch-up its /analyze answers are bit-identical to the
// primary's at the same sequence number.
func TestFollowerResumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pdir, fdir := t.TempDir(), t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 40))
	p := startPrimary(t, pdir, AckAsync, 0)
	defer p.close(t)

	fh := startFollower(t, fdir, p.addr)
	waitFor(t, "initial sync", caughtUp(p, fh))

	for round := 0; round < 8; round++ {
		// Kill between two frames (the follower applies frame-at-a-time,
		// so any stop is a frame boundary).
		fh.stop(t)
		if round%2 == 1 {
			cutLogTail(t, rng, fdir)
		}
		// The primary moves on while the standby is down.
		applyRandom(t, p.eng, rng, 1+rng.Intn(3))
		fh = startFollower(t, fdir, p.addr)
		waitFor(t, fmt.Sprintf("round %d catch-up", round), caughtUp(p, fh))
		assertEnginesEqual(t, p.eng, fh.f.Engine())
	}
	st := fh.f.Stats()
	if st.SnapshotsLoaded != 0 {
		t.Fatalf("resume rounds forced %d snapshots — resume path not exercised", st.SnapshotsLoaded)
	}
	fh.stop(t)
}

// TestSnapshotFallback is the acceptance test of the catch-up path: a
// checkpoint truncates the primary's log past the follower's sequence,
// so the reconnecting follower must be re-seeded by a full snapshot
// transfer — after which its answers are again bit-identical.
func TestSnapshotFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pdir, fdir := t.TempDir(), t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 40))
	p := startPrimary(t, pdir, AckAsync, 0)
	defer p.close(t)

	fh := startFollower(t, fdir, p.addr)
	waitFor(t, "initial sync", caughtUp(p, fh))
	fh.stop(t)

	// While the standby is down: more batches, then a checkpoint that
	// folds and truncates them all — the frames the standby needs are
	// gone from both the log and the shipper.
	applyRandom(t, p.eng, rng, 4)
	if err := p.eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ms := p.prim.Stats().MinStreamSeq; ms == 0 {
		t.Fatal("truncating checkpoint did not advance min_stream_seq")
	}
	applyRandom(t, p.eng, rng, 2) // post-checkpoint traffic streams normally

	fh = startFollower(t, fdir, p.addr)
	defer fh.stop(t)
	waitFor(t, "snapshot re-seed + catch-up", caughtUp(p, fh))
	if st := fh.f.Stats(); st.SnapshotsLoaded != 1 {
		t.Fatalf("follower loaded %d snapshots, want exactly 1 (fallback)", st.SnapshotsLoaded)
	}
	if ss := p.prim.Stats().SnapshotsServed; ss < 1 {
		t.Fatalf("primary served %d snapshots", ss)
	}
	assertEnginesEqual(t, p.eng, fh.f.Engine())
}

// TestCheckpointLockstepFold: a connected follower receives the
// checkpoint manifest and folds its own overlay in lockstep — its
// generation advances and its log empties — without disturbing
// equality.
func TestCheckpointLockstepFold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pdir, fdir := t.TempDir(), t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 40))
	p := startPrimary(t, pdir, AckAsync, 0)
	defer p.close(t)
	fh := startFollower(t, fdir, p.addr)
	defer fh.stop(t)
	waitFor(t, "initial sync", caughtUp(p, fh))

	applyRandom(t, p.eng, rng, 3)
	waitFor(t, "pre-checkpoint catch-up", caughtUp(p, fh))
	if err := p.eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lockstep fold", func() bool { return fh.f.Stats().LocalFolds >= 1 })
	waitFor(t, "follower generation advance", func() bool {
		eng := fh.f.Engine()
		return eng != nil && eng.DurabilityStats().Generation >= 1
	})
	applyRandom(t, p.eng, rng, 2)
	waitFor(t, "post-checkpoint catch-up", caughtUp(p, fh))
	assertEnginesEqual(t, p.eng, fh.f.Engine())
}

// TestQuorumAckDurability is the acceptance test of quorum mode: a
// write acknowledged under -ack=quorum is fsynced on a follower before
// Apply returns, so killing the primary process (its engine abandoned
// un-Closed, kill -9 semantics) loses nothing: the standby's reopened
// state is bit-identical to the primary's final state.
func TestQuorumAckDurability(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pdir, fdir := t.TempDir(), t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 40))
	p := startPrimary(t, pdir, AckQuorum, 400*time.Millisecond)

	// No followers: the quorum is unsatisfiable and the write must
	// report it (while still committing locally).
	if _, err := p.eng.Apply(randBatch(rng, p.eng.N())); err == nil {
		t.Fatal("quorum write with zero followers succeeded")
	} else if got := p.eng.LastSeq(); got != 1 {
		t.Fatalf("failed-quorum batch not committed locally (seq %d)", got)
	}
	if p.prim.Stats().QuorumFailures != 1 {
		t.Fatalf("quorum failures %d, want 1", p.prim.Stats().QuorumFailures)
	}

	fh := startFollower(t, fdir, p.addr)
	waitFor(t, "follower streaming", func() bool {
		s := p.prim.Stats()
		return len(s.Followers) == 1 && s.Followers[0].Streaming
	})
	for i := 0; i < 10; i++ {
		if _, err := p.eng.Apply(randBatch(rng, p.eng.N())); err != nil {
			t.Fatalf("quorum apply %d: %v", i, err)
		}
	}
	finalSeq := p.eng.LastSeq()

	// Kill the primary process: sever replication, abandon the engine
	// without Close (nothing is flushed beyond what each Apply already
	// fsynced — and every quorum ack implies the follower fsynced too).
	p.prim.Close()
	fh.stop(t)

	// The standby alone must hold every acknowledged batch.
	standby, err := engine.OpenDir(fdir, 64, engine.Config{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	if standby.LastSeq() != finalSeq {
		t.Fatalf("standby reopened at seq %d, primary acknowledged through %d", standby.LastSeq(), finalSeq)
	}
	assertEnginesEqual(t, p.eng, standby)
}

// TestDatasetIDMismatch: a follower directory seeded from a different
// dataset is refused instead of silently replaying foreign frames.
func TestDatasetIDMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pdir, fdir := t.TempDir(), t.TempDir()
	saveDataset(t, pdir, genTuples(rng, 20))
	p := startPrimary(t, pdir, AckAsync, 0)
	defer p.close(t)

	// Fake a foreign identity with a plausible local dataset.
	saveDataset(t, fdir, genTuples(rng, 20))
	if err := writeDatasetID(fdir, "deadbeefdeadbeefdeadbeefdeadbeef"); err != nil {
		t.Fatal(err)
	}
	fh := startFollower(t, fdir, p.addr)
	defer fh.stop(t)
	waitFor(t, "mismatch error", func() bool {
		st := fh.f.Stats()
		return st.LastError != "" && st.Reconnects > 0
	})
	if st := fh.f.Stats(); st.Connected {
		t.Fatalf("mismatched follower reports connected: %+v", st)
	}
}
