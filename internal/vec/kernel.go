//go:build !noasm

package vec

// Unrolled portable kernels — the default build. The 4-wide unrolling
// exists to amortize loop overhead and let the compiler elide bounds
// checks on the full-capacity subslices; every accumulation stays a
// single running sum in ascending index order, so the results are
// bit-identical to the scalar references in kernel_ref.go (asserted by
// property test). A SIMD-intrinsics backend can replace this file behind
// the same build-tag seam, gonum-style, as long as it preserves that
// bit-identity contract (i.e. no reassociating horizontal adds).

// KernelImpl names the active kernel backend, for diagnostics.
const KernelImpl = "unroll4"

func dotKernel(a, b []float64) float64 {
	s := 0.0
	i, n := 0, len(a)
	for ; i+4 <= n; i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s += aa[0] * bb[0]
		s += aa[1] * bb[1]
		s += aa[2] * bb[2]
		s += aa[3] * bb[3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func axpyKernel(alpha float64, x, y []float64) {
	i, n := 0, len(x)
	for ; i+4 <= n; i += 4 {
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		yy[0] += alpha * xx[0]
		yy[1] += alpha * xx[1]
		yy[2] += alpha * xx[2]
		yy[3] += alpha * xx[3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// dotBatchKernel processes four weight rows per pass so each loaded x[j]
// feeds four independent accumulators (one per output — accumulators are
// never split within an output, preserving bit-identity per member).
func dotBatchKernel(flatW, x, out []float64) {
	q := len(x)
	m, nm := 0, len(out)
	for ; m+4 <= nm; m += 4 {
		base := m * q
		w0 := flatW[base+0*q : base+1*q : base+1*q]
		w1 := flatW[base+1*q : base+2*q : base+2*q]
		w2 := flatW[base+2*q : base+3*q : base+3*q]
		w3 := flatW[base+3*q : base+4*q : base+4*q]
		var s0, s1, s2, s3 float64
		for j, xj := range x {
			s0 += w0[j] * xj
			s1 += w1[j] * xj
			s2 += w2[j] * xj
			s3 += w3[j] * xj
		}
		out[m+0] = s0
		out[m+1] = s1
		out[m+2] = s2
		out[m+3] = s3
	}
	for ; m < nm; m++ {
		out[m] = dotKernel(flatW[m*q:(m+1)*q], x)
	}
}

// gapMaxKernel unrolls the gap accumulation; the running max is updated
// strictly in ascending j order within each block, so it is the same
// sequence of comparisons as the scalar reference.
func gapMaxKernel(w, lo, hi, p, rp []float64) (gap, extra float64) {
	i, n := 0, len(p)
	for ; i+4 <= n; i += 4 {
		ww := w[i : i+4 : i+4]
		ll := lo[i : i+4 : i+4]
		hh := hi[i : i+4 : i+4]
		pp := p[i : i+4 : i+4]
		rr := rp[i : i+4 : i+4]
		for j := 0; j < 4; j++ {
			cj := pp[j] - rr[j]
			gap += ww[j] * cj
			if v := hh[j] * cj; v > extra {
				extra = v
			}
			if v := ll[j] * cj; v > extra {
				extra = v
			}
		}
	}
	for ; i < n; i++ {
		cj := p[i] - rp[i]
		gap += w[i] * cj
		if v := hi[i] * cj; v > extra {
			extra = v
		}
		if v := lo[i] * cj; v > extra {
			extra = v
		}
	}
	return gap, extra
}

// crossSafeKernel is branch-heavy (early unsafe exits), so unrolling
// buys nothing; the flat lo/hi layout is the optimization here.
func crossSafeKernel(lo, hi, devs []float64) bool {
	return scalarCrossSafe(lo, hi, devs)
}
