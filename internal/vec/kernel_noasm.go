//go:build noasm

package vec

// The noasm build routes every kernel to its scalar reference. It exists
// so CI can prove the references alone produce identical answers
// end-to-end (the fallback half of the kernel bit-identity guarantee)
// and as the safe harbor if an optimized backend misbehaves on some
// platform.

// KernelImpl names the active kernel backend, for diagnostics.
const KernelImpl = "scalar"

func dotKernel(a, b []float64) float64 { return scalarDot(a, b) }

func axpyKernel(alpha float64, x, y []float64) { scalarAxpy(alpha, x, y) }

func dotBatchKernel(flatW, x, out []float64) { scalarDotBatch(flatW, x, out) }

func gapMaxKernel(w, lo, hi, p, rp []float64) (gap, extra float64) {
	return scalarGapMax(w, lo, hi, p, rp)
}

func crossSafeKernel(lo, hi, devs []float64) bool { return scalarCrossSafe(lo, hi, devs) }
