package vec

// Scalar reference kernels. These are the semantic ground truth for the
// unrolled block kernels in kernel.go: every optimized variant must be
// bit-identical to its reference on all inputs, which the property tests
// in kernel_test.go assert by comparing float bits. The references are
// always compiled (in every build-tag configuration) so the comparison
// can run inside any build, including -tags=noasm where the active
// kernels ARE the references.
//
// Bit-identity discipline: all kernels keep a single accumulator per
// output and add terms in ascending index order. Unrolling is only
// allowed to eliminate bounds checks and loop overhead — never to split
// an accumulation into parallel partial sums, which would reassociate
// the floating-point additions and change result bits.

// scalarDot is the reference dot product over equal-length slices.
func scalarDot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// scalarAxpy is the reference y += alpha·x over equal-length slices.
func scalarAxpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// scalarDotBatch is the reference batched score kernel: flatW holds
// len(out) weight vectors of length len(x) back to back, and out[m]
// receives dot(flatW[m·q:(m+1)·q], x). Each output has its own
// accumulator, so every member score is bit-identical to scalarDot of
// its own weight row.
func scalarDotBatch(flatW, x, out []float64) {
	q := len(x)
	for m := range out {
		row := flatW[m*q : (m+1)*q]
		s := 0.0
		for j := range row {
			s += row[j] * x[j]
		}
		out[m] = s
	}
}

// scalarGapMax is the reference invalidation-gap kernel (engine cache
// certificate, see internal/engine/mutate.go): for c_j = p[j] − rp[j] it
// accumulates gap = Σ w[j]·c_j and extra = max(0, max_j hi[j]·c_j,
// lo[j]·c_j), with the max updated in ascending j order exactly as the
// original loop did.
func scalarGapMax(w, lo, hi, p, rp []float64) (gap, extra float64) {
	for j := range p {
		cj := p[j] - rp[j]
		gap += w[j] * cj
		if v := hi[j] * cj; v > extra {
			extra = v
		}
		if v := lo[j] * cj; v > extra {
			extra = v
		}
	}
	return gap, extra
}

// scalarCrossSafe is the reference cross-polytope vertex check
// (footnote 1, core.SafeConcurrent): the deviation vector is safe iff
// Σ_j |devs[j]| / extent_j ≤ 1, where extent is hi[j] for a positive
// component and |lo[j]| for a negative one; a zero extent against a
// non-zero component is unsafe.
func scalarCrossSafe(lo, hi, devs []float64) bool {
	sum := 0.0
	for j, d := range devs {
		switch {
		case d == 0:
			continue
		case d > 0:
			if hi[j] <= 0 {
				return false
			}
			sum += d / hi[j]
		default:
			if lo[j] >= 0 {
				return false
			}
			sum += d / lo[j] // both negative: positive ratio
		}
	}
	return sum <= 1
}
