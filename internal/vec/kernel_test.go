package vec

import (
	"math"
	"math/rand"
	"testing"
)

// randBlock fills a slice with values drawn from the domains the engine
// actually feeds the kernels: weights/coordinates in [0,1] plus the
// boundary values 0 and 1 (never NaN — query validation rejects them).
func randBlock(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(8) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = 1
		default:
			out[i] = rng.Float64()
		}
	}
	return out
}

// TestKernelBitIdentity proves the active kernel backend bit-identical
// to the scalar references across random blocks of every length around
// the unroll width, including boundary weights. Under -tags=noasm the
// active kernels ARE the references, so the test degenerates to a
// tautology there by design.
func TestKernelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(67) // covers 0, sub-unroll, and multi-block lengths
		a := randBlock(rng, n)
		b := randBlock(rng, n)

		if got, want := dotKernel(a, b), scalarDot(a, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("dot n=%d: kernel %v (%x) != scalar %v (%x)",
				n, got, math.Float64bits(got), want, math.Float64bits(want))
		}

		alpha := rng.Float64()*2 - 1
		y1 := randBlock(rng, n)
		y2 := append([]float64(nil), y1...)
		axpyKernel(alpha, a, y1)
		scalarAxpy(alpha, a, y2)
		for i := range y1 {
			if math.Float64bits(y1[i]) != math.Float64bits(y2[i]) {
				t.Fatalf("axpy n=%d i=%d: kernel %v != scalar %v", n, i, y1[i], y2[i])
			}
		}

		rows := rng.Intn(19)
		flatW := randBlock(rng, rows*n)
		got := make([]float64, rows)
		want := make([]float64, rows)
		dotBatchKernel(flatW, a, got)
		scalarDotBatch(flatW, a, want)
		for m := range got {
			if math.Float64bits(got[m]) != math.Float64bits(want[m]) {
				t.Fatalf("dotBatch n=%d rows=%d m=%d: kernel %v != scalar %v", n, rows, m, got[m], want[m])
			}
			// Every batch row must equal the member's independent dot.
			if solo := dotKernel(flatW[m*n:(m+1)*n], a); math.Float64bits(got[m]) != math.Float64bits(solo) {
				t.Fatalf("dotBatch row %d: batched %v != solo %v", m, got[m], solo)
			}
		}

		// Gap/cross kernels: lo ≤ 0 ≤ hi like real region extents.
		lo := randBlock(rng, n)
		hi := randBlock(rng, n)
		for i := range lo {
			lo[i] = -lo[i]
		}
		rp := randBlock(rng, n)
		g1, e1 := gapMaxKernel(a, lo, hi, b, rp)
		g2, e2 := scalarGapMax(a, lo, hi, b, rp)
		if math.Float64bits(g1) != math.Float64bits(g2) || math.Float64bits(e1) != math.Float64bits(e2) {
			t.Fatalf("gapMax n=%d: kernel (%v,%v) != scalar (%v,%v)", n, g1, e1, g2, e2)
		}

		devs := make([]float64, n)
		for i := range devs {
			switch rng.Intn(4) {
			case 0:
				devs[i] = 0
			case 1:
				devs[i] = hi[i] * rng.Float64() * 1.5 // sometimes outside
			case 2:
				devs[i] = lo[i] * rng.Float64() * 1.5
			default:
				devs[i] = rng.Float64()*0.2 - 0.1
			}
		}
		if got, want := crossSafeKernel(lo, hi, devs), scalarCrossSafe(lo, hi, devs); got != want {
			t.Fatalf("crossSafe n=%d: kernel %v != scalar %v (lo=%v hi=%v devs=%v)", n, got, want, lo, hi, devs)
		}
	}
}

// TestDotMatchesSparseScore pins the identity the TA hot loop relies on:
// scoring via the dense projection (Dot over proj) is bit-identical to
// the sparse merge Score, because the unmatched dimensions contribute
// exact +0.0 terms to a non-negative running sum.
func TestDotMatchesSparseScore(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 500; trial++ {
		m := 2 + rng.Intn(40)
		var entries []Entry
		for d := 0; d < m; d++ {
			if rng.Float64() < 0.5 {
				entries = append(entries, Entry{Dim: d, Val: rng.Float64() + 1e-9})
			}
		}
		sp, err := NewSparse(entries)
		if err != nil {
			t.Fatal(err)
		}
		qlen := 1 + rng.Intn(m)
		dims := rng.Perm(m)[:qlen]
		weights := make([]float64, qlen)
		for i := range weights {
			weights[i] = rng.Float64() // includes near-0; 0 itself is engine-legal
		}
		if rng.Intn(4) == 0 {
			weights[rng.Intn(qlen)] = 0
		}
		type qt struct {
			d int
			w float64
		}
		q := Query{Dims: make([]int, qlen), Weights: make([]float64, qlen)}
		pairs := make([]qt, qlen)
		for i := range dims {
			pairs[i] = qt{dims[i], weights[i]}
		}
		for i := range pairs {
			for j := i + 1; j < len(pairs); j++ {
				if pairs[j].d < pairs[i].d {
					pairs[i], pairs[j] = pairs[j], pairs[i]
				}
			}
		}
		for i, p := range pairs {
			q.Dims[i], q.Weights[i] = p.d, p.w
		}
		proj := q.Project(sp)
		merge := q.Score(sp)
		dense := Dot(q.Weights, proj)
		if math.Float64bits(merge) != math.Float64bits(dense) {
			t.Fatalf("score mismatch: merge %v (%x) dense %v (%x) q=%v t=%v",
				merge, math.Float64bits(merge), dense, math.Float64bits(dense), q, sp)
		}
	}
}

func TestKernelAPIPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on length mismatch", name)
			}
		}()
		f()
	}
	mustPanic("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	mustPanic("Axpy", func() { Axpy(1, []float64{1}, []float64{1, 2}) })
	mustPanic("DotBatch", func() { DotBatch([]float64{1, 2, 3}, []float64{1, 2}, make([]float64, 2)) })
	mustPanic("GapMax", func() { GapMax([]float64{1}, []float64{1}, []float64{1}, []float64{1, 2}, []float64{1, 2}) })
	mustPanic("CrossSafe", func() { CrossSafe([]float64{1}, []float64{1, 2}, []float64{1, 2}) })
}
