// Package vec provides the sparse and dense vector kernel used throughout
// the immutable-region reproduction. Tuples live in [0,1]^m for a
// potentially very large m (the WSJ corpus in the paper has m = 181,978
// dimensions), so the primary representation is a sparse coordinate list
// sorted by dimension. Queries touch only qlen ≪ m dimensions and are
// represented by parallel Dims/Weights slices.
package vec

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Entry is a single non-zero coordinate of a sparse vector.
type Entry struct {
	Dim int     // dimension index, 0-based
	Val float64 // coordinate value in [0,1]
}

// Sparse is a sparse vector: its entries are sorted by ascending Dim and
// carry strictly positive values. The zero value is the origin.
type Sparse []Entry

// NewSparse builds a Sparse from an unsorted list of entries. Zero-valued
// entries are dropped and duplicate dimensions are rejected.
func NewSparse(entries []Entry) (Sparse, error) {
	s := make(Sparse, 0, len(entries))
	for _, e := range entries {
		if e.Val != 0 {
			s = append(s, e)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Dim < s[j].Dim })
	for i := 1; i < len(s); i++ {
		if s[i].Dim == s[i-1].Dim {
			return nil, fmt.Errorf("vec: duplicate dimension %d", s[i].Dim)
		}
	}
	return s, nil
}

// MustSparse is NewSparse that panics on error; intended for literals in
// tests and examples.
func MustSparse(entries ...Entry) Sparse {
	s, err := NewSparse(entries)
	if err != nil {
		panic(err)
	}
	return s
}

// FromDense converts a dense coordinate slice to a Sparse vector.
func FromDense(coords []float64) Sparse {
	var s Sparse
	for d, v := range coords {
		if v != 0 {
			s = append(s, Entry{Dim: d, Val: v})
		}
	}
	return s
}

// Get returns the coordinate of s in dimension dim (0 when absent).
func (s Sparse) Get(dim int) float64 {
	i := sort.Search(len(s), func(i int) bool { return s[i].Dim >= dim })
	if i < len(s) && s[i].Dim == dim {
		return s[i].Val
	}
	return 0
}

// NNZ reports the number of non-zero coordinates.
func (s Sparse) NNZ() int { return len(s) }

// MaxDim returns the largest dimension index present, or -1 if s is empty.
func (s Sparse) MaxDim() int {
	if len(s) == 0 {
		return -1
	}
	return s[len(s)-1].Dim
}

// Dense materializes s into a dense slice of length m.
func (s Sparse) Dense(m int) []float64 {
	out := make([]float64, m)
	for _, e := range s {
		if e.Dim < m {
			out[e.Dim] = e.Val
		}
	}
	return out
}

// Clone returns a deep copy of s.
func (s Sparse) Clone() Sparse {
	out := make(Sparse, len(s))
	copy(out, s)
	return out
}

// Validate checks the Sparse invariants: sorted unique dims, values in
// (0,1]. It returns the first violation found.
func (s Sparse) Validate() error {
	for i, e := range s {
		if e.Val <= 0 || e.Val > 1 || math.IsNaN(e.Val) {
			return fmt.Errorf("vec: entry %d has value %v outside (0,1]", i, e.Val)
		}
		if e.Dim < 0 {
			return fmt.Errorf("vec: entry %d has negative dimension %d", i, e.Dim)
		}
		if i > 0 && s[i-1].Dim >= e.Dim {
			return fmt.Errorf("vec: entries %d,%d out of order (dims %d,%d)", i-1, i, s[i-1].Dim, e.Dim)
		}
	}
	return nil
}

// String renders the vector as {dim:val, ...} for debugging.
func (s Sparse) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.4g", e.Dim, e.Val)
	}
	b.WriteByte('}')
	return b.String()
}

// Query is a subspace top-k query: a weight vector with non-zero weights
// only in Dims. Dims are sorted ascending; Weights[i] is the weight of
// Dims[i] and lies in (0,1].
type Query struct {
	Dims    []int
	Weights []float64
}

// NewQuery validates and normalizes (sorts by dimension) a query.
func NewQuery(dims []int, weights []float64) (Query, error) {
	if len(dims) != len(weights) {
		return Query{}, fmt.Errorf("vec: %d dims but %d weights", len(dims), len(weights))
	}
	if len(dims) == 0 {
		return Query{}, fmt.Errorf("vec: empty query")
	}
	type dw struct {
		d int
		w float64
	}
	pairs := make([]dw, len(dims))
	for i := range dims {
		if weights[i] <= 0 || weights[i] > 1 || math.IsNaN(weights[i]) {
			return Query{}, fmt.Errorf("vec: weight %v for dim %d outside (0,1]", weights[i], dims[i])
		}
		pairs[i] = dw{dims[i], weights[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
	q := Query{Dims: make([]int, len(pairs)), Weights: make([]float64, len(pairs))}
	for i, p := range pairs {
		if i > 0 && q.Dims[i-1] == p.d {
			return Query{}, fmt.Errorf("vec: duplicate query dimension %d", p.d)
		}
		q.Dims[i] = p.d
		q.Weights[i] = p.w
	}
	return q, nil
}

// MustQuery is NewQuery that panics on error.
func MustQuery(dims []int, weights []float64) Query {
	q, err := NewQuery(dims, weights)
	if err != nil {
		panic(err)
	}
	return q
}

// Len returns qlen, the number of query dimensions.
func (q Query) Len() int { return len(q.Dims) }

// Weight returns the weight of dimension dim, or 0 if dim is not queried.
func (q Query) Weight(dim int) float64 {
	i := sort.SearchInts(q.Dims, dim)
	if i < len(q.Dims) && q.Dims[i] == dim {
		return q.Weights[i]
	}
	return 0
}

// Pos returns the index of dim within q.Dims, or -1.
func (q Query) Pos(dim int) int {
	i := sort.SearchInts(q.Dims, dim)
	if i < len(q.Dims) && q.Dims[i] == dim {
		return i
	}
	return -1
}

// Clone returns a deep copy of q.
func (q Query) Clone() Query {
	return Query{Dims: append([]int(nil), q.Dims...), Weights: append([]float64(nil), q.Weights...)}
}

// Adjust returns a copy of q with the weight of dim shifted by delta.
// The result is clamped to the weight domain [0,1]; callers asking for a
// deviation outside [-qj, 1-qj] get the clamped endpoint.
func (q Query) Adjust(dim int, delta float64) Query {
	out := q.Clone()
	i := out.Pos(dim)
	if i < 0 {
		return out
	}
	w := out.Weights[i] + delta
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	out.Weights[i] = w
	return out
}

// Score computes the dot product q · d. Both sides are sorted by
// dimension, so this is a linear merge over the shorter structure.
func (q Query) Score(d Sparse) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(q.Dims) && j < len(d) {
		switch {
		case q.Dims[i] == d[j].Dim:
			s += q.Weights[i] * d[j].Val
			i++
			j++
		case q.Dims[i] < d[j].Dim:
			i++
		default:
			j++
		}
	}
	return s
}

// Project returns d's coordinates on the query dimensions, as a dense
// slice parallel to q.Dims. This is the subspace view used by the
// geometry of immutable regions.
func (q Query) Project(d Sparse) []float64 {
	out := make([]float64, len(q.Dims))
	q.ProjectInto(d, out)
	return out
}

// ProjectInto writes d's coordinates on the query dimensions into dst,
// which must have length q.Len(). Hot paths use it with arena-allocated
// destinations to avoid one heap allocation per projected tuple. Each
// slot is written exactly once (the matched value or zero), so there is
// no separate zero-fill pass over dst.
func (q Query) ProjectInto(d Sparse, dst []float64) {
	j := 0
	for i, dim := range q.Dims {
		for j < len(d) && d[j].Dim < dim {
			j++
		}
		if j < len(d) && d[j].Dim == dim {
			dst[i] = d[j].Val
			j++
		} else {
			dst[i] = 0
		}
	}
}

// NonZeroQueryDims counts how many query dimensions of q have a non-zero
// coordinate in d. The candidate partition of Section 5.1 (C0/CH/CL) is
// driven by this count.
func (q Query) NonZeroQueryDims(d Sparse) int {
	n := 0
	i, j := 0, 0
	for i < len(q.Dims) && j < len(d) {
		switch {
		case q.Dims[i] == d[j].Dim:
			n++
			i++
			j++
		case q.Dims[i] < d[j].Dim:
			i++
		default:
			j++
		}
	}
	return n
}

// Dot computes the dot product of two dense vectors of equal length,
// through the active kernel backend (bit-identical to the naive loop in
// every backend; see kernel_ref.go).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return dotKernel(a, b)
}

// Axpy performs y += alpha·x over dense vectors of equal length.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	axpyKernel(alpha, x, y)
}

// DotBatch scores one dense vector x against many weight rows at once:
// flatW holds len(out) rows of length len(x) back to back, and out[m]
// receives the dot product of row m with x. Each out[m] is bit-identical
// to Dot(row m, x) — the fused batch scan relies on that to produce the
// same floats as Q independent scans.
func DotBatch(flatW, x, out []float64) {
	if len(flatW) != len(x)*len(out) {
		panic(fmt.Sprintf("vec: DotBatch flatW length %d != %d rows × %d", len(flatW), len(out), len(x)))
	}
	dotBatchKernel(flatW, x, out)
}

// GapMax evaluates the closed-form polytope gap maximum used by the
// cache-invalidation certificate: with c_j = p[j] − rp[j] it returns
// gap = Σ_j w[j]·c_j and extra = max(0, max_j hi[j]·c_j, lo[j]·c_j).
// All five slices must share one length.
func GapMax(w, lo, hi, p, rp []float64) (gap, extra float64) {
	if len(w) != len(p) || len(lo) != len(p) || len(hi) != len(p) || len(rp) != len(p) {
		panic("vec: GapMax length mismatch")
	}
	return gapMaxKernel(w, lo, hi, p, rp)
}

// CrossSafe is the cross-polytope vertex check over flat per-dimension
// extents: deviation vector devs is certified safe iff
// Σ_j |devs[j]| / extent_j ≤ 1 (extent hi[j] on the positive side,
// |lo[j]| on the negative; a zero extent against a non-zero component is
// unsafe). It is the flat-column twin of core.SafeConcurrent.
func CrossSafe(lo, hi, devs []float64) bool {
	if len(lo) != len(devs) || len(hi) != len(devs) {
		panic("vec: CrossSafe length mismatch")
	}
	return crossSafeKernel(lo, hi, devs)
}

// Norm computes the Euclidean norm of a dense vector.
func Norm(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sub returns a-b for dense vectors of equal length.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
