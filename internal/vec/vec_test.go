package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparse(t *testing.T) {
	s, err := NewSparse([]Entry{{Dim: 3, Val: 0.5}, {Dim: 1, Val: 0.2}, {Dim: 5, Val: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("zero entry not dropped: %v", s)
	}
	if s[0].Dim != 1 || s[1].Dim != 3 {
		t.Fatalf("not sorted: %v", s)
	}
	if _, err := NewSparse([]Entry{{Dim: 1, Val: 0.1}, {Dim: 1, Val: 0.2}}); err == nil {
		t.Fatal("duplicate dimension accepted")
	}
}

func TestSparseGet(t *testing.T) {
	s := MustSparse(Entry{Dim: 2, Val: 0.3}, Entry{Dim: 7, Val: 0.9})
	cases := []struct {
		dim  int
		want float64
	}{{0, 0}, {2, 0.3}, {3, 0}, {7, 0.9}, {8, 0}}
	for _, c := range cases {
		if got := s.Get(c.dim); got != c.want {
			t.Errorf("Get(%d) = %v, want %v", c.dim, got, c.want)
		}
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		m := len(raw)
		for i := range raw {
			raw[i] = math.Abs(raw[i])
			if raw[i] > 1 || math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0.5
			}
		}
		s := FromDense(raw)
		back := s.Dense(m)
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparseValidate(t *testing.T) {
	if err := MustSparse(Entry{Dim: 0, Val: 0.5}).Validate(); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	bad := Sparse{{Dim: 0, Val: 1.5}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range value accepted")
	}
	unsorted := Sparse{{Dim: 3, Val: 0.1}, {Dim: 1, Val: 0.1}}
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted entries accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	if _, err := NewQuery([]int{1, 2}, []float64{0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewQuery(nil, nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := NewQuery([]int{1}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewQuery([]int{1, 1}, []float64{0.5, 0.5}); err == nil {
		t.Error("duplicate dims accepted")
	}
	q, err := NewQuery([]int{5, 2}, []float64{0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if q.Dims[0] != 2 || q.Weights[0] != 0.7 {
		t.Errorf("not sorted by dim: %+v", q)
	}
}

// TestScoreMatchesDenseDot checks the sparse merge against the dense dot
// product on random vectors.
func TestScoreMatchesDenseDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(20)
		qlen := 1 + rng.Intn(m)
		dims := rng.Perm(m)[:qlen]
		w := make([]float64, qlen)
		for i := range w {
			w[i] = rng.Float64()*0.99 + 0.01
		}
		q := MustQuery(dims, w)

		dense := make([]float64, m)
		for d := 0; d < m; d++ {
			if rng.Float64() < 0.5 {
				dense[d] = rng.Float64()
			}
		}
		s := FromDense(dense)
		qDense := make([]float64, m)
		for i, d := range q.Dims {
			qDense[d] = q.Weights[i]
		}
		want := Dot(qDense, dense)
		if got := q.Score(s); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Score = %v, dense dot = %v", got, want)
		}
		proj := q.Project(s)
		nz := 0
		for i, d := range q.Dims {
			if proj[i] != dense[d] {
				t.Fatalf("Project[%d] = %v, want %v", i, proj[i], dense[d])
			}
			if proj[i] != 0 {
				nz++
			}
		}
		if got := q.NonZeroQueryDims(s); got != nz {
			t.Fatalf("NonZeroQueryDims = %d, want %d", got, nz)
		}
	}
}

func TestQueryAdjustClamps(t *testing.T) {
	q := MustQuery([]int{0, 1}, []float64{0.8, 0.5})
	if got := q.Adjust(0, 0.5).Weight(0); got != 1 {
		t.Errorf("Adjust above 1: weight = %v, want 1", got)
	}
	if got := q.Adjust(1, -0.7).Weight(1); got != 0 {
		t.Errorf("Adjust below 0: weight = %v, want 0", got)
	}
	if got := q.Adjust(0, -0.3).Weight(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Adjust(-0.3) = %v, want 0.5", got)
	}
	// Original must be untouched.
	if q.Weights[0] != 0.8 {
		t.Errorf("Adjust mutated the receiver: %v", q.Weights)
	}
}

func TestQueryWeightPos(t *testing.T) {
	q := MustQuery([]int{2, 9}, []float64{0.4, 0.6})
	if q.Weight(2) != 0.4 || q.Weight(9) != 0.6 || q.Weight(5) != 0 {
		t.Errorf("Weight lookups wrong")
	}
	if q.Pos(2) != 0 || q.Pos(9) != 1 || q.Pos(5) != -1 {
		t.Errorf("Pos lookups wrong")
	}
}

func TestNormSub(t *testing.T) {
	a := []float64{3, 4}
	if Norm(a) != 5 {
		t.Errorf("Norm = %v, want 5", Norm(a))
	}
	d := Sub([]float64{5, 7}, []float64{2, 3})
	if d[0] != 3 || d[1] != 4 {
		t.Errorf("Sub = %v", d)
	}
}
