package session

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

// analyzerFor builds an Analyzer over an in-memory index through the
// unified engine (cache off so the call counter counts computations,
// which is what these tests meter).
func analyzerFor(tuples []vec.Sparse, m int, calls *int) Analyzer {
	eng := engine.New(lists.NewMemIndex(tuples, m), engine.Config{MaxConcurrent: -1, CacheEntries: -1})
	return func(q vec.Query, k int, opts core.Options) (*core.Output, error) {
		if calls != nil {
			*calls++
		}
		a, err := eng.Analyze(context.Background(), q, k, engine.Options{Options: opts})
		if err != nil {
			return nil, err
		}
		return a.Output, nil
	}
}

func TestSessionSafeSkip(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	calls := 0
	s, err := New(analyzerFor(tuples, 2, &calls), q, k, core.Options{Method: core.MethodCPT, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("initial analysis ran %d times", calls)
	}
	// IR1 = (−16/35, +0.1): a +0.05 nudge is provably safe.
	changed, err := s.AdjustWeight(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("in-region adjustment reported a change")
	}
	if calls != 1 {
		t.Fatalf("safe adjustment triggered a recompute (%d calls)", calls)
	}
	st := s.Stats()
	if st.SafeSkips != 1 || st.Recomputes != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := s.Result(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("result %v", got)
	}
}

func TestSessionLocalHit(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	calls := 0
	s, err := New(analyzerFor(tuples, 2, &calls), q, k, core.Options{Method: core.MethodCPT, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	// +0.15 on dim 0 crosses the reorder at +0.1 (d1 overtakes d2); the
	// φ=1 schedule knows the outcome, so no recompute is needed.
	changed, err := s.AdjustWeight(0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("crossing a bound did not change the result")
	}
	if calls != 1 {
		t.Fatalf("local hit still recomputed (%d calls)", calls)
	}
	if got := s.Result(); got[0] != 0 || got[1] != 1 {
		t.Fatalf("result after crossing = %v, want [0 1]", got)
	}
	if st := s.Stats(); st.LocalHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSessionRecomputePastHorizon(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	calls := 0
	s, err := New(analyzerFor(tuples, 2, &calls), q, k, core.Options{Method: core.MethodCPT, Phi: 0})
	if err != nil {
		t.Fatal(err)
	}
	// With φ=0 the schedule has exactly one event per side; moving past
	// it leaves known territory and must recompute.
	changed, err := s.AdjustWeight(0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || calls != 2 {
		t.Fatalf("changed=%v calls=%d, want true/2", changed, calls)
	}
	if st := s.Stats(); st.Recomputes != 2 || st.LocalHits != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSessionMultiDimSafety(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	calls := 0
	s, err := New(analyzerFor(tuples, 2, &calls), q, k, core.Options{Method: core.MethodCPT, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Small moves on BOTH dims: safe only while the cross-polytope test
	// passes (footnote 1), then the second adjustment on a different
	// dimension cannot be served locally.
	if _, err := s.AdjustWeight(0, 0.03); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdjustWeight(1, 0.02); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("concurrent small moves recomputed (%d calls)", calls)
	}
	// A large move on dim 1 while dim 0 is already displaced cannot be a
	// local hit (not a pure single-dimension deviation) and the combined
	// deviation leaves the safe cross-polytope → recompute.
	if _, err := s.AdjustWeight(1, 0.45); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("mixed-dimension move did not recompute (calls=%d)", calls)
	}
}

// TestSessionAgainstRequery drives random adjustment sequences and
// verifies after every step that the session's claimed result equals a
// direct re-query — regardless of which mechanism served it.
func TestSessionAgainstRequery(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 10; trial++ {
		cs := fixture.RandCase(rng, 40+rng.Intn(40), 5, 3, 1+rng.Intn(4))
		s, err := New(analyzerFor(cs.Tuples, cs.M, nil), cs.Q, cs.K, core.Options{Method: core.MethodCPT, Phi: 2})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			jx := rng.Intn(cs.Q.Len())
			dim := s.Query().Dims[jx]
			cur := s.Query().Weights[jx]
			delta := (rng.Float64() - 0.5) * 0.2
			if cur+delta <= 0.01 || cur+delta >= 0.99 {
				continue
			}
			if _, err := s.AdjustWeight(dim, delta); err != nil {
				t.Fatal(err)
			}
			want := topk.TopKNaive(cs.Tuples, s.Query(), cs.K)
			got := s.Result()
			if len(got) != len(want) {
				t.Fatalf("trial %d step %d: %d results, want %d", trial, step, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i].ID {
					t.Fatalf("trial %d step %d: session result %v, requery %v (stats %+v)",
						trial, step, got, want, s.Stats())
				}
			}
		}
		st := s.Stats()
		if st.SafeSkips == 0 {
			t.Logf("trial %d: no safe skips (stats %+v)", trial, st)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	s, err := New(analyzerFor(tuples, 2, nil), q, k, core.Options{Method: core.MethodCPT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdjustWeight(99, 0.1); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := s.AdjustWeight(0, 0.9); err == nil {
		t.Error("weight above 1 accepted")
	}
	if _, err := s.AdjustWeight(0, -0.9); err == nil {
		t.Error("weight below 0 accepted")
	}
}

// TestSessionInvalidate: after a data update voids the client-side
// certificates, Invalidate must force the next adjustment to recompute
// even when it would otherwise be a safe skip or local hit, and the
// session must track the post-update dataset.
func TestSessionInvalidate(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	cp := make([]vec.Sparse, len(tuples))
	for i, tu := range tuples {
		cp[i] = tu.Clone()
	}
	ix := lists.NewMemIndex(cp, 2)
	eng := engine.New(ix, engine.Config{MaxConcurrent: -1, CacheEntries: -1})
	calls := 0
	analyze := func(q vec.Query, k int, opts core.Options) (*core.Output, error) {
		calls++
		a, err := eng.Analyze(context.Background(), q, k, engine.Options{Options: opts})
		if err != nil {
			return nil, err
		}
		return a.Output, nil
	}
	s, err := New(analyze, q, k, core.Options{Method: core.MethodCPT, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := s.Result()

	// An in-region nudge is a safe skip while the certificate holds...
	if _, err := s.AdjustWeight(0, 0.05); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || s.Stats().SafeSkips != 1 {
		t.Fatalf("calls %d stats %+v, want a safe skip", calls, s.Stats())
	}

	// ...then the server's dataset changes: a new dominant tuple takes
	// the lead, which the stale session cannot know.
	if _, err := eng.Apply([]engine.Op{{Kind: engine.OpInsert,
		Tuple: vec.MustSparse(vec.Entry{Dim: 0, Val: 0.95}, vec.Entry{Dim: 1, Val: 0.95})}}); err != nil {
		t.Fatal(err)
	}
	s.Invalidate()

	// The same nudge back would have been a safe skip; now it must
	// recompute and surface the new leader.
	changed, err := s.AdjustWeight(0, -0.05)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || s.Stats().Recomputes != 2 {
		t.Fatalf("calls %d stats %+v, want a forced recompute", calls, s.Stats())
	}
	if !changed {
		t.Fatal("post-update adjustment reported no change")
	}
	got := s.Result()
	if got[0] != 4 {
		t.Fatalf("post-update result %v (was %v), want new tuple 4 first", got, base)
	}

	// The session is live again: the next in-region nudge safe-skips.
	if _, err := s.AdjustWeight(0, 0.01); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("post-recompute nudge recomputed (calls %d)", calls)
	}
}
