// Package session implements the paper's §1 motivating workflow as a
// client-side component: an iterative query-refinement session that uses
// immutable regions the way moving-object systems use safe regions (§2)
// — as long as the weight vector stays inside a region known to preserve
// the result, no server-side recomputation is needed.
//
// Three outcomes are possible for a weight adjustment, from cheapest to
// most expensive:
//
//   - safe skip: the cumulative deviation since the last analysis stays
//     inside the concurrent-modification safe region (footnote 1's
//     cross-polytope) — the result provably cannot have changed.
//   - local hit: the adjustment moves a single weight past bounds whose
//     perturbations were precomputed (φ > 0 schedules) — the new result
//     is produced locally by replaying them, no query needed.
//   - recompute: anything else re-runs TA + region computation.
package session

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vec"
)

// Analyzer abstracts the query engine (repro.Engine satisfies it via a
// closure; tests inject fakes).
type Analyzer func(q vec.Query, k int, opts core.Options) (*core.Output, error)

// Stats counts how each adjustment was served.
type Stats struct {
	SafeSkips  int // proven unchanged without any work
	LocalHits  int // answered from the precomputed perturbation schedule
	Recomputes int // full analyses (including the initial one)
}

// Session is an interactive refinement session over one query.
type Session struct {
	analyze Analyzer
	k       int
	opts    core.Options

	q        vec.Query
	analysis *core.Output
	ranked   []int
	// cumDevs tracks the weight deviations accumulated since the last
	// full analysis, parallel to q.Dims.
	cumDevs []float64
	// stale is set by Invalidate: the dataset changed under the session,
	// so the cached analysis certifies nothing and the next adjustment
	// must recompute.
	stale bool
	stats Stats
}

// New starts a session: runs the initial analysis with the given method
// and perturbation budget φ (φ > 0 enables local hits).
func New(analyze Analyzer, q vec.Query, k int, opts core.Options) (*Session, error) {
	s := &Session{analyze: analyze, k: k, opts: opts, q: q.Clone()}
	if err := s.recompute(); err != nil {
		return nil, err
	}
	return s, nil
}

// recompute re-runs the full analysis at the current weights.
func (s *Session) recompute() error {
	out, err := s.analyze(s.q, s.k, s.opts)
	if err != nil {
		return err
	}
	s.analysis = out
	s.ranked = out.RankedIDs()
	s.cumDevs = make([]float64, s.q.Len())
	s.stats.Recomputes++
	return nil
}

// Query returns the current weight vector.
func (s *Session) Query() vec.Query { return s.q.Clone() }

// Result returns the current ranked result ids.
func (s *Session) Result() []int { return append([]int(nil), s.ranked...) }

// Regions returns the regions of the last full analysis. They are
// expressed relative to the weights at analysis time; AdjustWeight
// accounts for accumulated deviations internally.
func (s *Session) Regions() []core.Regions { return s.analysis.Regions }

// Stats returns the adjustment accounting.
func (s *Session) Stats() Stats { return s.stats }

// Invalidate marks the session's analysis stale — the client-side
// reaction to a server-side data update, which voids every safe-region
// and perturbation-schedule guarantee the session holds. Result and
// Regions keep reporting the stale state until the next AdjustWeight,
// which recomputes unconditionally.
func (s *Session) Invalidate() { s.stale = true }

// AdjustWeight shifts the weight of dim by delta and returns whether the
// ranked result changed. The session serves the adjustment by the
// cheapest sound mechanism available.
func (s *Session) AdjustWeight(dim int, delta float64) (changed bool, err error) {
	jx := s.q.Pos(dim)
	if jx < 0 {
		return false, fmt.Errorf("session: dimension %d is not a query dimension", dim)
	}
	w := s.q.Weights[jx] + delta
	if w < 0 || w > 1 {
		return false, fmt.Errorf("session: weight %v for dim %d outside [0,1]", w, dim)
	}

	// 0. Stale session (Invalidate was called): no cached guarantee
	// holds, recompute at the adjusted weights.
	if s.stale {
		before := s.ranked
		s.q.Weights[jx] = w
		if err := s.recompute(); err != nil {
			return false, err
		}
		s.stale = false
		return !equalIDs(before, s.ranked), nil
	}

	// 1. Safe skip: cumulative deviation still inside the concurrent
	// safe region of the last analysis. The guarantee is relative to the
	// analysis-time result — if a local hit had moved the session onto a
	// perturbed result, coming back into the safe region restores the
	// base result.
	tentative := append([]float64(nil), s.cumDevs...)
	tentative[jx] += delta
	if safe, err := core.SafeConcurrent(s.analysis.Regions, tentative); err == nil && safe {
		s.q.Weights[jx] = w
		s.cumDevs = tentative
		base := s.analysis.RankedIDs()
		changed = !equalIDs(base, s.ranked)
		s.ranked = base
		s.stats.SafeSkips++
		return changed, nil
	}

	// 2. Local hit: a pure single-dimension move whose crossing bounds
	// all carry precomputed perturbations.
	if pureSingle(s.cumDevs, jx) {
		if ranked, ok := s.replaySchedule(jx, s.cumDevs[jx]+delta); ok {
			s.q.Weights[jx] = w
			s.cumDevs[jx] += delta
			changed = !equalIDs(ranked, s.ranked)
			s.ranked = ranked
			s.stats.LocalHits++
			return changed, nil
		}
	}

	// 3. Recompute.
	before := s.ranked
	s.q.Weights[jx] = w
	if err := s.recompute(); err != nil {
		return false, err
	}
	return !equalIDs(before, s.ranked), nil
}

// replaySchedule derives the ranked result at total single-dimension
// deviation dev from the precomputed perturbations, if dev is covered by
// them. Covered means dev crosses only known bounds: if all φ+1 events
// of the side were found and dev runs past the last one, the state out
// there is unknown and a recompute is required. A side with fewer than
// φ+1 events is fully resolved — past its last event the result holds to
// the domain edge.
func (s *Session) replaySchedule(jx int, dev float64) ([]int, bool) {
	reg := s.analysis.Regions[jx]
	base := s.analysis.RankedIDs()
	perts := reg.Right
	right := true
	if dev < 0 {
		perts = reg.Left
		right = false
	}
	crossed := 0
	for _, p := range perts {
		if (right && dev > p.Delta) || (!right && dev < p.Delta) {
			crossed++
		}
	}
	if crossed == 0 {
		return base, true
	}
	if crossed == len(perts) && len(perts) == s.opts.Phi+1 {
		return nil, false // ran past the known horizon
	}
	out, err := reg.ResultAfter(base, right, crossed-1)
	if err != nil {
		return nil, false
	}
	return out, true
}

// pureSingle reports whether every accumulated deviation except jx is 0.
func pureSingle(devs []float64, jx int) bool {
	for i, d := range devs {
		if i != jx && d != 0 {
			return false
		}
	}
	return true
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
