package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/vec"
)

// TestOversizedQueryRejected is the crafted-request regression for the
// 64-dimension executor limit: 65 in-range dimensions used to panic in
// topk.New (killing the connection); now the server answers 400 and
// stays up.
func TestOversizedQueryRejected(t *testing.T) {
	var tuples []vec.Sparse
	for i := 0; i < 4; i++ {
		tuples = append(tuples, vec.MustSparse(vec.Entry{Dim: i, Val: 0.5}))
	}
	srv := New(lists.NewMemIndex(tuples, 70))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dims := make([]int, 65)
	weights := make([]float64, 65)
	for i := range dims {
		dims[i], weights[i] = i, 0.5
	}
	for _, path := range []string{"/topk", "/analyze"} {
		resp := post(t, ts.URL+path, QueryRequest{Dims: dims, Weights: weights, K: 2}, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with 65 dims: status %d, want 400", path, resp.StatusCode)
		}
	}
	// The server survived and still answers valid queries.
	var got []ResultEntry
	resp := post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.5, 0.5}, K: 2}, &got)
	if resp.StatusCode != http.StatusOK || len(got) != 2 {
		t.Fatalf("follow-up query: status %d result %v", resp.StatusCode, got)
	}
}

// TestUpdateDeleteEndpoints drives the write path over HTTP: inserts,
// updates and deletes through /update and /delete, certificate
// accounting in the responses, mutation counters in /stats, and answers
// that track the live dataset.
func TestUpdateDeleteEndpoints(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	cp := make([]vec.Sparse, len(tuples))
	for i, tu := range tuples {
		cp[i] = tu.Clone()
	}
	srv := New(lists.NewMemIndex(cp, 2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Prime the cache with the running example's analysis.
	q := QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}
	var an AnalyzeResponse
	if resp := post(t, ts.URL+"/analyze", q, &an); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}

	// A certified-surviving update: d4 stays far below the result.
	var mu MutateResponse
	id3 := 3
	resp := post(t, ts.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{ID: &id3, Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.1}, {Dim: 1, Val: 0.55}}},
	}}, &mu)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	if mu.Applied != 1 || mu.CacheChecked != 1 || mu.CacheEvicted != 0 || mu.CacheSurvived != 1 {
		t.Fatalf("update response %+v, want 1 applied / 1 survived", mu)
	}
	// The cached analysis still serves.
	var an2 AnalyzeResponse
	post(t, ts.URL+"/analyze", q, &an2)
	if an2.Cache != "hit" {
		t.Fatalf("post-update analyze cache %q, want hit", an2.Cache)
	}
	if !reflect.DeepEqual(an.Result, an2.Result) {
		t.Fatalf("surviving result changed: %v vs %v", an.Result, an2.Result)
	}

	// An insert that joins the result evicts and shows up in /topk.
	resp = post(t, ts.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.9}, {Dim: 1, Val: 0.9}}},
	}}, &mu)
	if resp.StatusCode != http.StatusOK || mu.Results[0].ID != 4 || mu.CacheEvicted != 1 {
		t.Fatalf("insert response %d %+v", resp.StatusCode, mu)
	}
	var top []ResultEntry
	post(t, ts.URL+"/topk", q, &top)
	if len(top) != 2 || top[0].ID != 4 {
		t.Fatalf("post-insert topk %v, want new tuple first", top)
	}

	// Delete the new leader; the old result returns.
	resp = post(t, ts.URL+"/delete", DeleteRequest{IDs: []int{4}}, &mu)
	if resp.StatusCode != http.StatusOK || mu.Applied != 1 {
		t.Fatalf("delete response %d %+v", resp.StatusCode, mu)
	}
	post(t, ts.URL+"/topk", q, &top)
	if !reflect.DeepEqual(top, an.Result) {
		t.Fatalf("post-delete topk %v, want original %v", top, an.Result)
	}

	// Per-op errors report in place without sinking the batch. An op
	// without coordinates must be rejected, not silently zero its
	// target.
	id0 := 0
	resp = post(t, ts.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{ID: &[]int{99}[0], Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.5}}},  // out of range
		{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.5}, {Dim: 0, Val: 0.6}}}, // duplicate dim
		{ID: &id0}, // empty tuple
		{Tuple: []TupleEntryJSON{{Dim: 1, Val: 0.2}}}, // fine
	}}, &mu)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status %d", resp.StatusCode)
	}
	if mu.Results[0].Error == "" || mu.Results[1].Error == "" || mu.Results[2].Error == "" || mu.Results[3].Error != "" {
		t.Fatalf("mixed batch results %+v", mu.Results)
	}
	if mu.Applied != 1 || mu.Results[3].ID != 5 {
		t.Fatalf("mixed batch accounting %+v", mu)
	}
	// The empty-tuple op must not have touched its target.
	post(t, ts.URL+"/topk", q, &top)
	if !reflect.DeepEqual(top, an.Result) {
		t.Fatalf("empty-tuple op destroyed tuple 0: %v vs %v", top, an.Result)
	}

	// Malformed shapes are 400s.
	if resp := post(t, ts.URL+"/update", UpdateRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty update batch status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/delete", DeleteRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty delete batch status %d", resp.StatusCode)
	}

	// /stats carries the mutation counters.
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mutations == nil {
		t.Fatal("stats missing mutations block")
	}
	if st.Mutations.Inserts != 2 || st.Mutations.Updates != 1 || st.Mutations.Deletes != 1 {
		t.Fatalf("mutation counters %+v", st.Mutations)
	}
	if st.Mutations.CacheSurvived < 1 || st.Mutations.CacheEvicted < 1 {
		t.Fatalf("invalidation counters %+v", st.Mutations)
	}
}

// TestUpdateReadOnly: a read-only server answers the write endpoints
// with 409 and keeps serving queries.
func TestUpdateReadOnly(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	srv := NewWithConfig(lists.NewMemIndex(tuples, 2), Config{ReadOnly: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.5}}},
	}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("read-only update status %d, want 409", resp.StatusCode)
	}
	resp = post(t, ts.URL+"/delete", DeleteRequest{IDs: []int{0}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("read-only delete status %d, want 409", resp.StatusCode)
	}
	// Even a batch whose ops all fail shape parsing reports read-only:
	// the status code must not depend on payload shape.
	resp = post(t, ts.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.5}, {Dim: 0, Val: 0.6}}},
	}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("read-only shape-failed update status %d, want 409", resp.StatusCode)
	}
	var got []ResultEntry
	resp = post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, &got)
	if resp.StatusCode != http.StatusOK || len(got) != 2 {
		t.Fatalf("read-only query status %d result %v", resp.StatusCode, got)
	}
}
