// Shard-side HTTP surface of the scatter-gather deployment: the two
// internal RPCs a coordinator (internal/shard) drives against each
// shard's primary. They expose the full Scored wire form — score AND
// subspace projections — because the coordinator's merge needs the
// exact floats the shard computed; JSON float64 round-trips are exact,
// so transport does not break the bit-identity contract.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/topk"
	"repro/internal/vec"
)

// ScoredJSON is the wire form of one scored tuple line: the id, the
// exact score, and the projections onto the query dimensions in query
// order. NZMask carries the candidate-class bitset of §5.1.
type ScoredJSON struct {
	ID     int       `json:"id"`
	Score  float64   `json:"score"`
	Proj   []float64 `json:"proj"`
	NZMask uint64    `json:"nzmask,omitempty"`
}

// ToScoredJSON converts scored lines to the wire form.
func ToScoredJSON(res []topk.Scored) []ScoredJSON {
	out := make([]ScoredJSON, len(res))
	for i, sc := range res {
		out[i] = ScoredJSON{ID: sc.ID, Score: sc.Score, Proj: sc.Proj, NZMask: sc.NZMask}
	}
	return out
}

// FromScoredJSON converts wire lines back to scored form.
func FromScoredJSON(res []ScoredJSON) []topk.Scored {
	out := make([]topk.Scored, len(res))
	for i, sc := range res {
		out[i] = topk.Scored{ID: sc.ID, Score: sc.Score, Proj: sc.Proj, NZMask: sc.NZMask}
	}
	return out
}

// ShardTopKResponse is the body of a successful /shard/topk.
type ShardTopKResponse struct {
	Result []ScoredJSON `json:"result"`
}

// ShardAnalyzeRequest is the body of /shard/analyze — round 2 of a
// distributed analysis. Base is this shard's id offset; Imposed is the
// coordinator-merged global result the shard computes constraints
// against. The option fields mirror core.Options; unlike the public
// /analyze they include the cross-validation toggles, because the
// coordinator must mirror whatever dispatch the caller asked for.
type ShardAnalyzeRequest struct {
	Dims            []int        `json:"dims"`
	Weights         []float64    `json:"weights"`
	K               int          `json:"k"`
	Base            int          `json:"base"`
	Imposed         []ScoredJSON `json:"imposed"`
	Phi             int          `json:"phi"`
	Method          string       `json:"method"`
	CompositionOnly bool         `json:"composition_only,omitempty"`
	ForceEnvelope   bool         `json:"force_envelope,omitempty"`
	Iterative       bool         `json:"iterative,omitempty"`
}

// ShardAnalyzeResponse is the body of a successful /shard/analyze: the
// constraint regions the shard's tuples impose on the imposed result
// (in query-dimension order, global ids), and every shard line the
// phases offered to the boundaries — the coordinator's φ > 0 replay
// input.
type ShardAnalyzeResponse struct {
	Regions []RegionJSON `json:"regions"`
	Lines   []ScoredJSON `json:"lines"`
	Metrics MetricsJSON  `json:"metrics"`
}

// handleShardTopK answers the coordinator's round-1 scatter: the local
// top-k with projections, under local ids.
func (s *Server) handleShardTopK(w http.ResponseWriter, r *http.Request) {
	req, q, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	eng, ok := s.engine(w)
	if !ok {
		return
	}
	res, err := eng.TopKScored(r.Context(), q, req.K)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ShardTopKResponse{Result: ToScoredJSON(res)})
}

// handleShardAnalyze answers the coordinator's round-2 scatter: the
// imposed-result region computation over this shard's tuples.
func (s *Server) handleShardAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req ShardAnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	q, err := vec.NewQuery(req.Dims, req.Weights)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts := engine.Options{Options: core.Options{
		Method:          method,
		Phi:             req.Phi,
		CompositionOnly: req.CompositionOnly,
		ForceEnvelope:   req.ForceEnvelope,
		Iterative:       req.Iterative,
	}}
	eng, ok := s.engine(w)
	if !ok {
		return
	}
	out, lines, err := eng.AnalyzeImposed(r.Context(), q, req.K, req.Base, FromScoredJSON(req.Imposed), opts)
	if err != nil {
		engineError(w, err)
		return
	}
	resp := ShardAnalyzeResponse{
		Lines: ToScoredJSON(lines),
		Metrics: MetricsJSON{
			Evaluated:    out.Metrics.Evaluated,
			EvaluatedAvg: out.Metrics.EvaluatedPerDimAvg(),
			SeqPages:     out.Metrics.SeqPages,
			RandReads:    out.Metrics.RandReads,
			CPUMicros:    out.Metrics.CPU().Microseconds(),
			MemBytes:     out.Metrics.MemBytes,
		},
	}
	for _, reg := range out.Regions {
		rj := RegionJSON{Dim: reg.Dim, Lo: reg.Lo, Hi: reg.Hi}
		for _, p := range reg.Left {
			rj.Left = append(rj.Left, PerturbationJSON(p))
		}
		for _, p := range reg.Right {
			rj.Right = append(rj.Right, PerturbationJSON(p))
		}
		resp.Regions = append(resp.Regions, rj)
	}
	writeJSON(w, http.StatusOK, resp)
}
