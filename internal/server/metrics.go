// Observability: the HTTP layer's obs registrations, the per-endpoint
// instrumentation wrapper, the engine-state gauge bridges, and the
// slow-query log plumbing.
//
// The bridges read the exact snapshot functions /stats renders
// (engine.Stats, CacheStats, DurabilityStats, OverlayStats,
// MutationStats) through the most recently built server's engine
// provider, so GET /stats and GET /metrics cannot drift apart. A
// process hosts one server outside of tests; where several share a
// process the bridge follows the last Handler() built, and each
// server's /stats stays exact regardless.
package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

var (
	mRequests = obs.NewCounterVec("ir_http_requests_total",
		"HTTP requests served, by endpoint", "endpoint")
	mErrors = obs.NewCounterVec("ir_http_errors_total",
		"HTTP responses with a 4xx/5xx status, by endpoint", "endpoint")
	mLatencySeconds = obs.NewHistogramVec("ir_http_request_seconds",
		"request latency by endpoint", "endpoint", obs.LatencyBuckets)
	mInFlight = obs.NewGauge("ir_http_in_flight",
		"requests currently being handled")
	mDisposition = obs.NewCounterVec("ir_http_cache_disposition_total",
		"query answers by cache disposition (miss, hit, hit-region, bypass, dedup)",
		"disposition")
	mValidationFailures = obs.NewCounter("ir_http_validation_failures_total",
		"requests rejected by query validation (bad k, dimension range, weights, phi)")
	mSlowQueries = obs.NewCounter("ir_http_slow_queries_total",
		"queries recorded in the slow-query ring (over the -slow-query threshold)")
)

// liveServer is the server whose engine the bridge gauges sample; the
// most recent Handler() call wins.
var liveServer atomic.Pointer[Server]

// engineStat adapts a per-engine sampler into a scrape callback that
// is nil-safe across server construction and standby re-seeds.
func engineStat(f func(*engine.Engine) float64) func() float64 {
	return func() float64 {
		srv := liveServer.Load()
		if srv == nil {
			return 0
		}
		eng := srv.get()
		if eng == nil {
			return 0
		}
		return f(eng)
	}
}

// The /stats bridge gauges. Counters underneath only go up, but they
// are exposed as gauges: a standby re-seed swaps the engine and its
// counters restart, which a Prometheus counter contract would forbid.
var (
	_ = obs.NewGaugeFunc("ir_io_seq_pages",
		"index-wide sequential page reads (storage.IOStats)",
		engineStat(func(e *engine.Engine) float64 { seq, _, _ := e.Stats().Snapshot(); return float64(seq) }))
	_ = obs.NewGaugeFunc("ir_io_rand_reads",
		"index-wide random tuple reads (storage.IOStats)",
		engineStat(func(e *engine.Engine) float64 { _, rr, _ := e.Stats().Snapshot(); return float64(rr) }))
	_ = obs.NewGaugeFunc("ir_io_bytes_read",
		"index-wide bytes read (storage.IOStats)",
		engineStat(func(e *engine.Engine) float64 { _, _, b := e.Stats().Snapshot(); return float64(b) }))
	_ = obs.NewGaugeFunc("ir_io_pool_bypass",
		"page-equivalent accesses served straight from the mmap region, bypassing the buffer pool",
		engineStat(func(e *engine.Engine) float64 { return float64(e.Stats().Bypasses()) }))

	_ = obs.NewGaugeFunc("ir_cache_entries",
		"answer-cache entries resident",
		engineStat(func(e *engine.Engine) float64 { return float64(e.CacheStats().Entries) }))
	_ = obs.NewGaugeFunc("ir_cache_bytes",
		"answer-cache estimated resident bytes",
		engineStat(func(e *engine.Engine) float64 { return float64(e.CacheStats().Bytes) }))
	_ = obs.NewGaugeFunc("ir_cache_hits",
		"exact-weight analysis cache hits since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.CacheStats().Hits) }))
	_ = obs.NewGaugeFunc("ir_cache_region_hits",
		"region-certified top-k cache hits since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.CacheStats().RegionHits) }))
	_ = obs.NewGaugeFunc("ir_cache_misses",
		"answer-cache misses since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.CacheStats().Misses) }))
	_ = obs.NewGaugeFunc("ir_cache_bypasses",
		"lookups skipped by request (no_cache) since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.CacheStats().Bypasses) }))
	_ = obs.NewGaugeFunc("ir_cache_evictions",
		"answer-cache LRU evictions since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.CacheStats().Evictions) }))

	_ = obs.NewGaugeFunc("ir_wal_generation",
		"live checkpoint generation of the durable engine (0 = original files)",
		engineStat(func(e *engine.Engine) float64 { return float64(e.DurabilityStats().Generation) }))
	_ = obs.NewGaugeFunc("ir_wal_next_seq",
		"sequence number the next Apply batch will get",
		engineStat(func(e *engine.Engine) float64 { return float64(e.DurabilityStats().NextSeq) }))
	_ = obs.NewGaugeFunc("ir_wal_log_bytes",
		"current write-ahead-log length in bytes",
		engineStat(func(e *engine.Engine) float64 { return float64(e.DurabilityStats().LogBytes) }))
	_ = obs.NewGaugeFunc("ir_wal_appends",
		"WAL record appends since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.DurabilityStats().Appends) }))
	_ = obs.NewGaugeFunc("ir_wal_syncs",
		"WAL fsyncs since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.DurabilityStats().Syncs) }))
	_ = obs.NewGaugeFunc("ir_wal_checkpoints",
		"checkpoint compactions completed since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.DurabilityStats().Checkpoints) }))

	_ = obs.NewGaugeFunc("ir_overlay_delta_bytes",
		"write overlay in-memory delta size (what checkpointing bounds)",
		engineStat(func(e *engine.Engine) float64 {
			ov, ok := e.OverlayStats()
			if !ok {
				return 0
			}
			return float64(ov.Bytes)
		}))

	_ = obs.NewGaugeFunc("ir_mutation_ops",
		"mutation ops applied (inserts + updates + deletes) since this engine opened",
		engineStat(func(e *engine.Engine) float64 {
			ms := e.MutationStats()
			return float64(ms.Inserts + ms.Updates + ms.Deletes)
		}))
	_ = obs.NewGaugeFunc("ir_mutation_batches",
		"Apply batches since this engine opened",
		engineStat(func(e *engine.Engine) float64 { return float64(e.MutationStats().Batches) }))
)

// DefaultSlowQuery is the slow-query threshold applied when no
// -slow-query flag (or SetSlowQuery call) overrides it.
const DefaultSlowQuery = 500 * time.Millisecond

// slowLogCapacity is the ring size of the slow-query log.
const slowLogCapacity = 128

// instrument wraps one endpoint handler with the request counter, the
// error counter, the latency histogram and the in-flight gauge. The
// endpoint label is the route literal from Handler(), never the
// request path.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mInFlight.Add(1)
		defer mInFlight.Add(-1)
		t0 := time.Now()
		rec := obs.NewStatusRecorder(w)
		h(rec, r)
		//lint:allow obsreg endpoint is the route literal passed by Handler, a closed set
		mRequests.Inc(endpoint)
		if rec.Code >= 400 {
			//lint:allow obsreg endpoint is the route literal passed by Handler, a closed set
			mErrors.Inc(endpoint)
		}
		//lint:allow obsreg endpoint is the route literal passed by Handler, a closed set
		mLatencySeconds.Observe(endpoint, time.Since(t0).Seconds())
	}
}

// observeDisposition counts one answered query's cache disposition.
func observeDisposition(src engine.Source) {
	//lint:allow obsreg Source.String renders the closed engine.Source enum, not request data
	mDisposition.Inc(src.String())
}

// recordSlow feeds one answered single-query request into the slow
// log. The under-threshold exit happens before any allocation so the
// hot path stays allocation-free.
func (s *Server) recordSlow(r *http.Request, endpoint string, req QueryRequest,
	src engine.Source, total time.Duration, tm engine.Timings,
	scan, region time.Duration, seqPages, randReads int64) {
	sl := s.slow
	if sl == nil || sl.Threshold() <= 0 || total < sl.Threshold() {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	entry := obs.SlowEntry{
		Time:       time.Now(),
		RequestID:  obs.RequestIDFrom(r.Context()),
		Endpoint:   endpoint,
		Dims:       req.Dims,
		K:          req.K,
		Method:     req.Method,
		Cache:      src.String(),
		DurationMs: ms(total),
		PhaseMs: obs.PhaseMillis{
			Validate: ms(tm.Validate),
			Queue:    ms(tm.Queue),
			Cache:    ms(tm.Cache),
			Scan:     ms(scan),
			Region:   ms(region),
			Admit:    ms(tm.Admit),
		},
		SeqPages:  seqPages,
		RandReads: randReads,
	}
	if sl.Record(entry) {
		mSlowQueries.Inc()
		obs.LogWith(r.Context()).Warn("slow_query",
			"endpoint", endpoint,
			"duration_ms", entry.DurationMs,
			"k", req.K,
			"cache", entry.Cache,
			"seq_pages", seqPages,
			"rand_reads", randReads,
		)
	}
}

// handleSlowlog serves GET /debug/slowlog: the retained over-threshold
// queries (newest first) with the recording threshold and the all-time
// count.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries, total := s.slow.Snapshot()
	writeJSON(w, http.StatusOK, SlowlogResponse{
		ThresholdMs: float64(s.slow.Threshold().Microseconds()) / 1000,
		Recorded:    total,
		Entries:     entries,
	})
}

// SlowlogResponse is the body of GET /debug/slowlog.
type SlowlogResponse struct {
	// ThresholdMs is the recording threshold (<= 0: recording disabled).
	ThresholdMs float64 `json:"threshold_ms"`
	// Recorded counts every query that crossed the threshold since
	// start; the ring retains only the most recent of them.
	Recorded int64           `json:"recorded"`
	Entries  []obs.SlowEntry `json:"entries"`
}
