package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/lists"
)

// TestStatsDurableBlocks: a durable engine's /stats reports the WAL and
// overlay-delta counters, they track writes, and a server restart on
// the same directory shows the replay in the reopened engine's stats.
func TestStatsDurableBlocks(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	dir := t.TempDir()
	if err := lists.SaveDataset(filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat"), tuples, 2); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.OpenDir(dir, 64, engine.Config{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := FromEngine(eng)
	ts := httptest.NewServer(srv.Handler())

	getStats := func(url string) StatsResponse {
		t.Helper()
		resp, err := http.Get(url + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := getStats(ts.URL)
	if st.WAL == nil || st.Overlay == nil {
		t.Fatalf("durable /stats missing wal/overlay blocks: %+v", st)
	}
	if st.WAL.SyncPolicy != "batch" || st.WAL.NextSeq != 1 {
		t.Fatalf("fresh wal stats %+v", st.WAL)
	}

	var mr MutateResponse
	resp := post(t, ts.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.42}}},
	}}, &mr)
	if resp.StatusCode != http.StatusOK || mr.Applied != 1 {
		t.Fatalf("update status %d resp %+v", resp.StatusCode, mr)
	}
	st = getStats(ts.URL)
	if st.WAL.Appends != 1 || st.WAL.NextSeq != 2 || st.WAL.LogBytes <= 8 {
		t.Fatalf("post-write wal stats %+v", st.WAL)
	}
	if st.Overlay.Added != 1 || st.Overlay.DeltaPostings != 1 {
		t.Fatalf("post-write overlay stats %+v", st.Overlay)
	}

	// Restart the server on the same directory: the write is replayed.
	ts.Close()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := engine.OpenDir(dir, 64, engine.Config{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	ts2 := httptest.NewServer(FromEngine(eng2).Handler())
	defer ts2.Close()
	st = getStats(ts2.URL)
	if st.WAL.ReplayedRecords != 1 || st.WAL.ReplayedOps != 1 {
		t.Fatalf("post-restart wal stats %+v", st.WAL)
	}
	if st.Overlay.Added != 1 {
		t.Fatalf("post-restart overlay stats %+v", st.Overlay)
	}

	// A non-durable engine reports neither block.
	mem := httptest.NewServer(New(lists.NewMemIndex(tuples, 2)).Handler())
	defer mem.Close()
	if st := getStats(mem.URL); st.WAL != nil || st.Overlay != nil {
		t.Fatalf("non-durable /stats has durable blocks: %+v", st)
	}
}
