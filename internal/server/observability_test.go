package server

import (
	"bufio"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	// Registers the client/proxy metric families so the golden
	// metric-name snapshot covers every layer linked into a deployment.
	_ "repro/internal/client"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String()
}

// lintMetrics scrapes /metrics and fails on any exposition-format
// violation (missing HELP/TYPE, bad names, non-cumulative buckets,
// duplicate series).
func lintMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	body := scrape(t, baseURL+"/metrics")
	if problems := obs.LintExposition(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("exposition not conformant:\n  %s", strings.Join(problems, "\n  "))
	}
	return body
}

// TestMetricsConformance drives traffic through every endpoint kind and
// then checks the exposition is format-clean and carries the expected
// per-endpoint series.
func TestMetricsConformance(t *testing.T) {
	ts := testServer(t)
	post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, nil)
	post(t, ts.URL+"/analyze", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Phi: 1}, nil)
	// One validation failure, for the failure counter.
	post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 0}, nil)
	if _, err := http.Get(ts.URL + "/stats"); err != nil {
		t.Fatal(err)
	}

	body := lintMetrics(t, ts.URL)
	for _, want := range []string{
		`ir_http_requests_total{endpoint="topk"}`,
		`ir_http_requests_total{endpoint="analyze"}`,
		`ir_http_request_seconds_bucket{endpoint="topk",le="+Inf"}`,
		"ir_http_validation_failures_total",
		`ir_engine_queries_total{kind="topk"}`,
		`ir_http_cache_disposition_total{disposition=`,
		"ir_build_info{",
		"ir_io_seq_pages",
		"ir_cache_entries",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

// TestMetricsConformanceStandby covers the other server postures: a
// write-gated standby and a mid-re-seed server with no engine at all.
func TestMetricsConformanceStandby(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	srv := New(lists.NewMemIndex(tuples, 2))
	srv.SetWriteRedirect("http://primary.example:8080")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post(t, ts.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.5}}}}}, nil)
	lintMetrics(t, ts.URL)

	nilSrv := FromEngineFunc(func() *engine.Engine { return nil })
	ns := httptest.NewServer(nilSrv.Handler())
	defer ns.Close()
	post(t, ns.URL+"/topk", QueryRequest{Dims: []int{0}, Weights: []float64{1}, K: 1}, nil)
	lintMetrics(t, ns.URL)
}

// TestMetricsGoldenNames pins the full registered metric-name set.
// A new metric (or a renamed one) must update the snapshot — and the
// docs/observability.md catalogue, which cmd/docscheck cross-checks.
func TestMetricsGoldenNames(t *testing.T) {
	names := obs.Default.Names()
	got := strings.Join(names, "\n") + "\n"
	golden := filepath.Join("testdata", "metric_names.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/server -run GoldenNames -update-golden)", err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("registered metric names drifted from testdata/metric_names.golden:\ngot:\n%s\nwant:\n%s\n(run go test ./internal/server -run GoldenNames -update-golden and update docs/observability.md)",
			strings.Join(names, "\n"), strings.Join(want, "\n"))
	}
}

// TestRequestIDEchoAndAdopt: every response carries an X-Request-ID;
// a valid inbound ID is adopted verbatim, garbage is replaced.
func TestRequestIDEchoAndAdopt(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(obs.RequestIDHeader); len(id) != 16 {
		t.Fatalf("minted ID %q, want 16 hex chars", id)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-me-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(obs.RequestIDHeader); id != "trace-me-42" {
		t.Fatalf("inbound ID not adopted: got %q", id)
	}
}

// TestSlowlogEndpoint: with a 1ns threshold every query is slow; the
// ring must retain the request ID, the per-phase breakdown and the I/O
// counts, newest first.
func TestSlowlogEndpoint(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	srv := New(lists.NewMemIndex(tuples, 2))
	srv.SetSlowQuery(time.Nanosecond)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/topk",
		strings.NewReader(`{"dims":[0,1],"weights":[0.8,0.5],"k":2}`))
	req.Header.Set(obs.RequestIDHeader, "slow-topk-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	post(t, ts.URL+"/analyze", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Phi: 1, NoCache: true}, nil)

	var sl SlowlogResponse
	sresp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	if sl.Recorded != 2 || len(sl.Entries) != 2 {
		t.Fatalf("recorded=%d entries=%d, want 2/2", sl.Recorded, len(sl.Entries))
	}
	// Newest first: the analyze, then the topk.
	an, tk := sl.Entries[0], sl.Entries[1]
	if an.Endpoint != "analyze" || tk.Endpoint != "topk" {
		t.Fatalf("order: got %s,%s want analyze,topk", an.Endpoint, tk.Endpoint)
	}
	if tk.RequestID != "slow-topk-1" {
		t.Fatalf("topk entry request id %q", tk.RequestID)
	}
	if tk.K != 2 || len(tk.Dims) != 2 {
		t.Fatalf("topk entry k=%d dims=%v", tk.K, tk.Dims)
	}
	if an.Cache != "bypass" {
		t.Fatalf("analyze disposition %q, want bypass", an.Cache)
	}
	if an.DurationMs <= 0 {
		t.Fatalf("analyze duration %v", an.DurationMs)
	}
	if an.PhaseMs.Scan < 0 || an.PhaseMs.Region < 0 {
		t.Fatalf("negative phases: %+v", an.PhaseMs)
	}
}

// TestSlowlogDisabled: a zero threshold records nothing.
func TestSlowlogDisabled(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	srv := New(lists.NewMemIndex(tuples, 2))
	srv.SetSlowQuery(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, nil)
	var sl SlowlogResponse
	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	if sl.ThresholdMs != 0 || sl.Recorded != 0 || len(sl.Entries) != 0 {
		t.Fatalf("disabled slowlog recorded: %+v", sl)
	}
}

// TestStatsBuildBlock: /stats carries the binary identity.
func TestStatsBuildBlock(t *testing.T) {
	ts := testServer(t)
	var stats StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Build.Version == "" || stats.Build.Commit == "" {
		t.Fatalf("empty build identity: %+v", stats.Build)
	}
	if stats.Build.StartTimeUnix <= 0 || stats.Build.UptimeSeconds < 0 {
		t.Fatalf("implausible build clock: %+v", stats.Build)
	}
}
