package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
)

// analyzeOnce posts one /analyze request and decodes the response with
// the wall-clock metric zeroed (everything else must be deterministic).
// It returns an error instead of failing the test so worker goroutines
// can call it (t.Fatal is only legal on the test goroutine).
func analyzeOnce(url string, req QueryRequest) (AnalyzeResponse, error) {
	var out AnalyzeResponse
	raw, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(raw))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	out.Metrics.CPUMicros = 0
	return out, nil
}

// TestConcurrentAnalyzeMatchesSequential fires many /analyze requests in
// parallel against one server and requires every response — results,
// regions, and the per-query I/O metering — to be identical to the
// answer the same query gets when it runs alone. This is the end-to-end
// check that dropping the server-wide mutex did not let queries bleed
// state (cursors, candidate lists, meters) into each other.
func TestConcurrentAnalyzeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	cs := fixture.RandCase(rng, 300, 8, 3, 5)
	ix := lists.NewMemIndex(cs.Tuples, cs.M)
	// Cache off: this test compares repeat responses (metrics included)
	// against their solo execution, which a cache hit's zero-work
	// metering would legitimately break.
	srv := NewWithConfig(ix, Config{MaxConcurrent: 4, CacheEntries: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A mixed workload: different subspaces, methods, and φ.
	var reqs []QueryRequest
	methods := []string{"scan", "prune", "thres", "cpt"}
	for i := 0; i < 12; i++ {
		q := cs.Q
		reqs = append(reqs, QueryRequest{
			Dims:    q.Dims,
			Weights: q.Weights,
			K:       1 + i%5,
			Phi:     i % 3,
			Method:  methods[i%len(methods)],
		})
	}

	// Sequential ground truth, one request at a time.
	want := make([]AnalyzeResponse, len(reqs))
	for i, req := range reqs {
		var err error
		if want[i], err = analyzeOnce(ts.URL, req); err != nil {
			t.Fatal(err)
		}
	}

	// The same workload, every request repeated from several goroutines
	// at once.
	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(reqs))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range reqs {
					// Stagger the order per goroutine to mix in-flight queries.
					idx := (i + g + r) % len(reqs)
					got, err := analyzeOnce(ts.URL, reqs[idx])
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, want[idx]) {
						errs <- fmt.Errorf("request %d diverged from sequential execution", idx)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared meter aggregated every query's charges.
	seq, rnd, _ := ix.Stats().Snapshot()
	if seq == 0 || rnd == 0 {
		t.Fatalf("shared stats not aggregated: seq=%d rand=%d", seq, rnd)
	}
}

// TestConcurrentTopK hammers /topk from many goroutines; every response
// must equal the sequential answer.
func TestConcurrentTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	cs := fixture.RandCase(rng, 200, 6, 3, 10)
	ix := lists.NewMemIndex(cs.Tuples, cs.M)
	srv := NewWithConfig(ix, Config{MaxConcurrent: 3, CacheEntries: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := QueryRequest{Dims: cs.Q.Dims, Weights: cs.Q.Weights, K: 10}
	raw, _ := json.Marshal(req)
	fetch := func() []ResultEntry {
		resp, err := http.Post(ts.URL+"/topk", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Error(err)
			return nil
		}
		defer resp.Body.Close()
		var out []ResultEntry
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Error(err)
			return nil
		}
		return out
	}
	want := fetch()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				if got := fetch(); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent /topk diverged: %v vs %v", got, want)
				}
			}
		}()
	}
	wg.Wait()
}
