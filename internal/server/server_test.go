package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	tuples, _, _ := fixture.RunningExample()
	srv := New(lists.NewMemIndex(tuples, 2))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestTopKEndpoint(t *testing.T) {
	ts := testServer(t)
	var got []ResultEntry
	resp := post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 0 {
		t.Fatalf("result %+v, want d2,d1", got)
	}
	if math.Abs(got[0].Score-0.81) > 1e-12 {
		t.Fatalf("score %v", got[0].Score)
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	ts := testServer(t)
	var got AnalyzeResponse
	resp := post(t, ts.URL+"/analyze", QueryRequest{
		Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Phi: 1, Method: "cpt",
	}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Regions) != 2 {
		t.Fatalf("%d regions", len(got.Regions))
	}
	r1 := got.Regions[0]
	if math.Abs(r1.Lo-(-16.0/35)) > 1e-12 || math.Abs(r1.Hi-0.1) > 1e-12 {
		t.Fatalf("IR1 = (%v, %v)", r1.Lo, r1.Hi)
	}
	if len(r1.Left) != 2 || !r1.Left[0].Entry {
		t.Fatalf("left schedule %+v", r1.Left)
	}
	if got.Metrics.Evaluated == 0 || got.Metrics.RandReads == 0 {
		t.Fatalf("metrics empty: %+v", got.Metrics)
	}
}

func TestAnalyzeMethodSelection(t *testing.T) {
	ts := testServer(t)
	for _, m := range []string{"", "scan", "prune", "thres", "cpt"} {
		var got AnalyzeResponse
		resp := post(t, ts.URL+"/analyze", QueryRequest{
			Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Method: m,
		}, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("method %q: status %d", m, resp.StatusCode)
		}
		if math.Abs(got.Regions[0].Hi-0.1) > 1e-12 {
			t.Fatalf("method %q: IR1 upper %v", m, got.Regions[0].Hi)
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"zero k", QueryRequest{Dims: []int{0}, Weights: []float64{0.5}}},
		{"bad weights", QueryRequest{Dims: []int{0}, Weights: []float64{2}, K: 1}},
		{"length mismatch", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.5}, K: 1}},
		{"dim out of range", QueryRequest{Dims: []int{9}, Weights: []float64{0.5}, K: 1}},
		{"negative phi", QueryRequest{Dims: []int{0}, Weights: []float64{0.5}, K: 1, Phi: -1}},
		{"unknown method", QueryRequest{Dims: []int{0}, Weights: []float64{0.5}, K: 1, Method: "nope"}},
	}
	for _, c := range cases {
		resp := post(t, ts.URL+"/analyze", c.req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// Garbage body.
	resp, err := http.Post(ts.URL+"/topk", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
	// Wrong verb.
	get, err := http.Get(ts.URL + "/topk")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /topk: status %d", get.StatusCode)
	}
}

// TestAnalyzeCacheDisposition drives the answer cache through the HTTP
// surface: first /analyze computes ("miss"), the identical repeat is
// served ("hit") with zero-I/O metrics and the same result and regions,
// no_cache bypasses, and /stats reports the counters.
func TestAnalyzeCacheDisposition(t *testing.T) {
	ts := testServer(t)
	req := QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Phi: 1}
	var first, second, third AnalyzeResponse
	post(t, ts.URL+"/analyze", req, &first)
	post(t, ts.URL+"/analyze", req, &second)
	req.NoCache = true
	post(t, ts.URL+"/analyze", req, &third)

	if first.Cache != "miss" || second.Cache != "hit" || third.Cache != "bypass" {
		t.Fatalf("dispositions %q/%q/%q, want miss/hit/bypass", first.Cache, second.Cache, third.Cache)
	}
	if second.Metrics.RandReads != 0 || second.Metrics.SeqPages != 0 || second.Metrics.Evaluated != 0 {
		t.Fatalf("cache hit reported work: %+v", second.Metrics)
	}
	second.Metrics, first.Metrics, third.Metrics = MetricsJSON{}, MetricsJSON{}, MetricsJSON{}
	second.Cache, first.Cache, third.Cache = "", "", ""
	if !reflect.DeepEqual(first, second) || !reflect.DeepEqual(first, third) {
		t.Fatalf("cached/bypass responses diverge:\n%+v\n%+v\n%+v", first, second, third)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil || st.Cache.Hits != 1 || st.Cache.Bypasses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache stats %+v", st.Cache)
	}
}

// TestTopKRegionServed: after an /analyze, an in-region /topk is
// certified by the cached regions (X-Cache: hit-region), an
// out-of-region one recomputes.
func TestTopKRegionServed(t *testing.T) {
	ts := testServer(t)
	post(t, ts.URL+"/analyze", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, nil)

	fetch := func(w0 float64) (string, []ResultEntry) {
		raw, _ := json.Marshal(QueryRequest{Dims: []int{0, 1}, Weights: []float64{w0, 0.5}, K: 2})
		resp, err := http.Post(ts.URL+"/topk", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []ResultEntry
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("X-Cache"), out
	}
	// IR1 = (−16/35, +0.1) around 0.8: 0.85 is inside, 0.95 is past it.
	if src, res := fetch(0.85); src != "hit-region" || res[0].ID != 1 {
		t.Fatalf("in-region: X-Cache=%q result=%v", src, res)
	}
	if src, res := fetch(0.95); src != "miss" || res[0].ID != 0 {
		t.Fatalf("out-of-region: X-Cache=%q result=%v", src, res)
	}
}

// TestBatchAnalyzeEndpoint exercises /batchanalyze: aligned responses,
// in-batch de-duplication, per-item errors, and cache hits on repeat
// batches.
func TestBatchAnalyzeEndpoint(t *testing.T) {
	ts := testServer(t)
	q := QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Phi: 1}
	bad := QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}} // k=0
	batch := BatchAnalyzeRequest{Queries: []QueryRequest{q, q, bad}}

	var resp BatchAnalyzeResponse
	post(t, ts.URL+"/batchanalyze", batch, &resp)
	if len(resp.Responses) != 3 {
		t.Fatalf("%d responses", len(resp.Responses))
	}
	r0, r1, r2 := resp.Responses[0], resp.Responses[1], resp.Responses[2]
	if r0.Error != "" || r0.Cache != "miss" {
		t.Fatalf("item 0: %+v", r0)
	}
	if r1.Error != "" || r1.Cache != "dedup" {
		t.Fatalf("item 1 cache %q, want dedup", r1.Cache)
	}
	if r2.Error == "" {
		t.Fatal("invalid item accepted")
	}
	if !reflect.DeepEqual(r0.Result, r1.Result) || !reflect.DeepEqual(r0.Regions, r1.Regions) {
		t.Fatal("deduped answers diverge")
	}
	// The same analysis through /analyze must agree.
	var single AnalyzeResponse
	post(t, ts.URL+"/analyze", q, &single)
	if !reflect.DeepEqual(single.Result, r0.Result) || !reflect.DeepEqual(single.Regions, r0.Regions) {
		t.Fatal("batch and single answers diverge")
	}

	var again BatchAnalyzeResponse
	post(t, ts.URL+"/batchanalyze", BatchAnalyzeRequest{Queries: []QueryRequest{q}}, &again)
	if again.Responses[0].Cache != "hit" {
		t.Fatalf("repeat batch cache %q, want hit", again.Responses[0].Cache)
	}

	// Malformed envelopes are 400s.
	for _, body := range []string{`{`, `{"queries":[]}`} {
		resp, err := http.Post(ts.URL+"/batchanalyze", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", body, resp.StatusCode)
		}
	}
}

// TestBatchTopKEndpoint: a fused batch of same-subspace ranked queries
// answers identically to /topk per query, per-item errors are reported
// in place, and a region-certified repeat is a cache hit.
func TestBatchTopKEndpoint(t *testing.T) {
	ts := testServer(t)
	q1 := QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}
	q2 := QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.3, 0.9}, K: 2}
	bad := QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}} // k=0

	var resp BatchTopKResponse
	post(t, ts.URL+"/batchtopk", BatchTopKRequest{Queries: []QueryRequest{q1, q2, bad}}, &resp)
	if len(resp.Responses) != 3 {
		t.Fatalf("%d responses", len(resp.Responses))
	}
	for i, qr := range []QueryRequest{q1, q2} {
		r := resp.Responses[i]
		if r.Error != "" || r.Cache != "miss" {
			t.Fatalf("item %d: %+v", i, r)
		}
		var single []ResultEntry
		post(t, ts.URL+"/topk", qr, &single)
		if !reflect.DeepEqual(r.Result, single) {
			t.Fatalf("item %d: batch %+v, /topk %+v", i, r.Result, single)
		}
	}
	if resp.Responses[2].Error == "" {
		t.Fatal("invalid item accepted")
	}

	// An analysis at q1's weights certifies the repeat via its regions.
	post(t, ts.URL+"/analyze", q1, nil)
	var again BatchTopKResponse
	post(t, ts.URL+"/batchtopk", BatchTopKRequest{Queries: []QueryRequest{q1}}, &again)
	if again.Responses[0].Cache != "hit-region" {
		t.Fatalf("repeat cache %q, want hit-region", again.Responses[0].Cache)
	}

	for _, body := range []string{`{`, `{"queries":[]}`} {
		resp, err := http.Post(ts.URL+"/batchtopk", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", body, resp.StatusCode)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	ts := testServer(t)
	post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, nil)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RandReads == 0 || st.SeqPages == 0 {
		t.Fatalf("stats %+v, want non-zero after a query", st)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}
