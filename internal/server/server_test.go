package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	tuples, _, _ := fixture.RunningExample()
	srv := New(lists.NewMemIndex(tuples, 2))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestTopKEndpoint(t *testing.T) {
	ts := testServer(t)
	var got []ResultEntry
	resp := post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 0 {
		t.Fatalf("result %+v, want d2,d1", got)
	}
	if math.Abs(got[0].Score-0.81) > 1e-12 {
		t.Fatalf("score %v", got[0].Score)
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	ts := testServer(t)
	var got AnalyzeResponse
	resp := post(t, ts.URL+"/analyze", QueryRequest{
		Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Phi: 1, Method: "cpt",
	}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Regions) != 2 {
		t.Fatalf("%d regions", len(got.Regions))
	}
	r1 := got.Regions[0]
	if math.Abs(r1.Lo-(-16.0/35)) > 1e-12 || math.Abs(r1.Hi-0.1) > 1e-12 {
		t.Fatalf("IR1 = (%v, %v)", r1.Lo, r1.Hi)
	}
	if len(r1.Left) != 2 || !r1.Left[0].Entry {
		t.Fatalf("left schedule %+v", r1.Left)
	}
	if got.Metrics.Evaluated == 0 || got.Metrics.RandReads == 0 {
		t.Fatalf("metrics empty: %+v", got.Metrics)
	}
}

func TestAnalyzeMethodSelection(t *testing.T) {
	ts := testServer(t)
	for _, m := range []string{"", "scan", "prune", "thres", "cpt"} {
		var got AnalyzeResponse
		resp := post(t, ts.URL+"/analyze", QueryRequest{
			Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2, Method: m,
		}, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("method %q: status %d", m, resp.StatusCode)
		}
		if math.Abs(got.Regions[0].Hi-0.1) > 1e-12 {
			t.Fatalf("method %q: IR1 upper %v", m, got.Regions[0].Hi)
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"zero k", QueryRequest{Dims: []int{0}, Weights: []float64{0.5}}},
		{"bad weights", QueryRequest{Dims: []int{0}, Weights: []float64{2}, K: 1}},
		{"length mismatch", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.5}, K: 1}},
		{"dim out of range", QueryRequest{Dims: []int{9}, Weights: []float64{0.5}, K: 1}},
		{"negative phi", QueryRequest{Dims: []int{0}, Weights: []float64{0.5}, K: 1, Phi: -1}},
		{"unknown method", QueryRequest{Dims: []int{0}, Weights: []float64{0.5}, K: 1, Method: "nope"}},
	}
	for _, c := range cases {
		resp := post(t, ts.URL+"/analyze", c.req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// Garbage body.
	resp, err := http.Post(ts.URL+"/topk", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
	// Wrong verb.
	get, err := http.Get(ts.URL + "/topk")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /topk: status %d", get.StatusCode)
	}
}

func TestStatsAndHealth(t *testing.T) {
	ts := testServer(t)
	post(t, ts.URL+"/topk", QueryRequest{Dims: []int{0, 1}, Weights: []float64{0.8, 0.5}, K: 2}, nil)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RandReads == 0 || st.SeqPages == 0 {
		t.Fatalf("stats %+v, want non-zero after a query", st)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}
