// Package server exposes the query engine over HTTP with a small JSON
// API, turning the library into the system-model deployment of §3: a
// server holding the inverted lists and tuple file, answering subspace
// top-k queries and immutable-region analyses for remote clients. The
// server is a thin transport: all execution — validation, admission,
// caching, metering, cancellation — lives in internal/engine, which the
// handlers call with the request's context so a disconnected client
// aborts its query mid-run, not just while queued.
//
// Endpoints:
//
//	POST /topk          {dims, weights, k}           → ranked result
//	                    (X-Cache: hit-region when a cached analysis'
//	                    immutable regions certify the answer)
//	POST /analyze       {dims, weights, k, phi, method, composition_only,
//	                    no_cache} → result + per-dimension regions +
//	                    metering + cache disposition
//	POST /batchanalyze  {queries: [analyze bodies]}  → per-query
//	                    responses; duplicates are de-duplicated and
//	                    repeats served from the answer cache
//	POST /batchtopk     {queries: [{dims, weights, k}]} → per-query
//	                    ranked results; queries sharing a dimension set
//	                    and k are answered by one fused scan, and
//	                    region-certified repeats come from the cache
//	POST /update        {ops: [{id?, tuple: [{dim, val}]}]} → per-op
//	                    results; an op without id inserts, with id
//	                    updates. Cached analyses survive whenever the
//	                    region certificate proves them unaffected.
//	POST /delete        {ids: [...]}                 → per-op results
//	GET  /stats         → cumulative I/O counters + cache counters +
//	                    mutation counters (mutable engines) + WAL and
//	                    overlay-delta counters (durable engines) +
//	                    replication lag (primaries and standbys)
//	GET  /healthz       → 200 ok (liveness: the process is up)
//	GET  /readyz        → 200 when safe to route traffic here; 503
//	                    with the reason otherwise (engine closed,
//	                    replication lagging, leadership unconfirmed)
//	GET  /cluster       → this node's topology beacon (cluster members
//	                    only; 404 otherwise)
//	POST /promote       → force this node to promote itself to primary
//	                    (cluster members only; operator override)
//
// A replication standby (irserver -follow) serves the same read
// endpoints over its replayed state but rejects /update and /delete
// with 409 plus a Location header pointing at the primary; see
// docs/replication.md.
//
// # Concurrency model
//
// Queries run concurrently with no server-wide lock; the engine's
// worker pool (Config.MaxConcurrent) is the only throttle, and excess
// requests queue rather than fail. Per-query I/O is metered on a child
// of the index-wide meter, so /analyze responses count exactly their
// own accesses while /stats keeps the exact aggregate. Answers served
// from the immutable-region cache perform zero index I/O and bypass the
// worker pool entirely.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lists"
	"repro/internal/obs"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Config tunes the server's engine. The zero value picks the defaults
// of engine.Config: a 4×GOMAXPROCS worker pool, sequential per-query
// dimension processing, and the answer cache at its default bounds.
type Config struct {
	// MaxConcurrent caps the number of queries executing at once
	// (0 = default 4×GOMAXPROCS, negative = unlimited).
	MaxConcurrent int
	// Parallelism fans one query's per-dimension region work over up to
	// n goroutines (0 = paper-literal sequential).
	Parallelism int
	// CacheEntries bounds the answer cache (0 = default, negative =
	// cache disabled).
	CacheEntries int
	// CacheBytes bounds the cache's estimated footprint (0 = default).
	CacheBytes int64
	// ReadOnly disables the write endpoints (/update, /delete answer
	// 409) even when the index itself could accept writes.
	ReadOnly bool
}

// Server handles the HTTP API over one engine. The engine is reached
// through a provider func so a replication follower can atomically
// swap its engine (a snapshot re-seed replaces it) under a live server.
type Server struct {
	get func() *engine.Engine
	// writeGate, when set, is consulted per write request: allow==false
	// turns the request into a 409 with a Location header pointing at
	// redirect (or a 503 when redirect is ""). A static standby sets a
	// constant gate via SetWriteRedirect; a failover coordinator sets a
	// dynamic one that flips with the node's role. Set once before
	// serving.
	writeGate func() (allow bool, redirect string)
	// replStats, when set, contributes the /stats "replication" block
	// (a replication.PrimaryStats, FollowerStats or NodeStats). Set
	// once before serving.
	replStats func() any
	// readiness, when set, backs GET /readyz: nil means ready. Unset,
	// /readyz reports ready whenever the engine is open.
	readiness func() error
	// clusterInfo, when set, backs GET /cluster (404 when unset — the
	// node is not a cluster member).
	clusterInfo func() any
	// promote, when set, backs POST /promote (404 when unset).
	promote func() (epoch uint64, err error)
	// slow is the slow-query ring behind GET /debug/slowlog. Handler()
	// installs the default (DefaultSlowQuery, 128 entries) unless
	// SetSlowQuery configured it first.
	slow *obs.SlowLog
}

// New builds a Server over an index with default engine settings.
func New(ix lists.Index) *Server { return NewWithConfig(ix, Config{}) }

// NewWithConfig builds a Server over an index with explicit settings.
func NewWithConfig(ix lists.Index, cfg Config) *Server {
	return FromEngine(engine.New(ix, engine.Config{
		MaxConcurrent: cfg.MaxConcurrent,
		Parallelism:   cfg.Parallelism,
		CacheEntries:  cfg.CacheEntries,
		CacheBytes:    cfg.CacheBytes,
		ReadOnly:      cfg.ReadOnly,
	}))
}

// FromEngine builds a Server over an existing engine (the path
// cmd/irserver uses, so open-time options like checksum verification
// stay with the engine).
func FromEngine(eng *engine.Engine) *Server {
	return FromEngineFunc(func() *engine.Engine { return eng })
}

// FromEngineFunc builds a Server whose engine is resolved per request.
// A replication follower passes its Follower.Engine accessor here: the
// served engine changes identity when a snapshot transfer re-seeds the
// standby, and may briefly be nil mid-swap (requests then answer 503).
func FromEngineFunc(get func() *engine.Engine) *Server { return &Server{get: get} }

// SetWriteRedirect makes the write endpoints (/update, /delete) answer
// 409 with a Location header pointing at primaryURL — the static
// read-only standby posture. Must be called before the server handles
// traffic.
func (s *Server) SetWriteRedirect(primaryURL string) {
	s.SetWriteGate(func() (bool, string) { return false, primaryURL })
}

// SetWriteGate installs a dynamic write admission check, consulted on
// every /update and /delete. A failover coordinator's node passes its
// role-dependent gate here (replication.Node.WriteGate). Must be called
// before the server handles traffic.
func (s *Server) SetWriteGate(fn func() (allow bool, redirect string)) { s.writeGate = fn }

// SetReadiness backs GET /readyz with fn (nil error = ready). Must be
// called before the server handles traffic.
func (s *Server) SetReadiness(fn func() error) { s.readiness = fn }

// SetClusterInfo backs GET /cluster with fn's value (a
// replication.ClusterInfo). Must be called before the server handles
// traffic.
func (s *Server) SetClusterInfo(fn func() any) { s.clusterInfo = fn }

// SetPromote backs POST /promote with fn — the operator's forced
// promotion override. Must be called before the server handles traffic.
func (s *Server) SetPromote(fn func() (epoch uint64, err error)) { s.promote = fn }

// SetReplicationStats contributes fn's value as the /stats
// "replication" block. Must be called before the server handles
// traffic.
func (s *Server) SetReplicationStats(fn func() any) { s.replStats = fn }

// SetSlowQuery configures the slow-query log: single queries slower
// than threshold are retained in GET /debug/slowlog with per-phase
// timings and I/O counts (threshold <= 0 disables recording). Must be
// called before the server handles traffic; cmd/irserver maps the
// -slow-query flag here.
func (s *Server) SetSlowQuery(threshold time.Duration) {
	s.slow = obs.NewSlowLog(threshold, slowLogCapacity)
}

// Engine exposes the underlying engine (nil while a standby re-seeds).
func (s *Server) Engine() *engine.Engine { return s.get() }

// engine resolves the live engine for one request, answering 503 when
// a standby is mid-re-seed.
func (s *Server) engine(w http.ResponseWriter) (*engine.Engine, bool) {
	eng := s.get()
	if eng == nil {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("standby is re-seeding from the primary"))
		return nil, false
	}
	return eng, true
}

// Handler returns the routed http.Handler. Every endpoint runs inside
// the instrumentation wrapper (request/error counters, latency
// histogram, in-flight gauge) and the whole mux behind the request-ID
// middleware, so each response carries an X-Request-ID that the
// structured logs and the slow-query log share.
func (s *Server) Handler() http.Handler {
	if s.slow == nil {
		s.slow = obs.NewSlowLog(DefaultSlowQuery, slowLogCapacity)
	}
	liveServer.Store(s)
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", s.instrument("topk", s.handleTopK))
	mux.HandleFunc("/analyze", s.instrument("analyze", s.handleAnalyze))
	mux.HandleFunc("/batchanalyze", s.instrument("batchanalyze", s.handleBatchAnalyze))
	mux.HandleFunc("/batchtopk", s.instrument("batchtopk", s.handleBatchTopK))
	mux.HandleFunc("/shard/topk", s.instrument("shard-topk", s.handleShardTopK))
	mux.HandleFunc("/shard/analyze", s.instrument("shard-analyze", s.handleShardAnalyze))
	mux.HandleFunc("/update", s.instrument("update", s.handleUpdate))
	mux.HandleFunc("/delete", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and serving. Routing and
		// restart decisions belong to /readyz. Deliberately outside the
		// instrumentation wrapper — a liveness probe that allocates
		// metrics labels under memory pressure defeats its purpose.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("/cluster", s.instrument("cluster", s.handleCluster))
	mux.HandleFunc("/promote", s.instrument("promote", s.handlePromote))
	mux.Handle("/metrics", obs.Handler())
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	return obs.RequestID(mux)
}

// handleReadyz reports whether this node should receive traffic: 200
// when ready, 503 with the reason otherwise. Without an installed
// readiness check, ready means the engine is open (not mid-re-seed).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.readiness != nil {
		if err := s.readiness(); err != nil {
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("not ready: %v", err))
			return
		}
	} else if s.get() == nil {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("not ready: engine not open"))
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// handleCluster serves the node's topology beacon; 404 on nodes that
// are not cluster members.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.clusterInfo == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("not a cluster member"))
		return
	}
	writeJSON(w, http.StatusOK, s.clusterInfo())
}

// handlePromote forces this node to promote itself to primary — the
// operator override documented in docs/operations.md.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.promote == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("not a cluster member"))
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	epoch, err := s.promote()
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"epoch": epoch})
}

// QueryRequest is the body of /topk and /analyze, and one element of
// /batchanalyze's queries.
type QueryRequest struct {
	Dims    []int     `json:"dims"`
	Weights []float64 `json:"weights"`
	K       int       `json:"k"`
	// analyze-only fields
	Phi             int    `json:"phi"`
	Method          string `json:"method"` // scan|prune|thres|cpt (default cpt)
	CompositionOnly bool   `json:"composition_only"`
	// NoCache bypasses the answer cache for this query (no lookup, no
	// admission).
	NoCache bool `json:"no_cache"`
}

// ResultEntry is one ranked answer.
type ResultEntry struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// PerturbationJSON mirrors core.Perturbation.
type PerturbationJSON struct {
	Delta float64 `json:"delta"`
	Above int     `json:"above"`
	Below int     `json:"below"`
	Entry bool    `json:"entry"`
}

// RegionJSON is one dimension's immutable regions.
type RegionJSON struct {
	Dim   int                `json:"dim"`
	Lo    float64            `json:"lo"`
	Hi    float64            `json:"hi"`
	Left  []PerturbationJSON `json:"left,omitempty"`
	Right []PerturbationJSON `json:"right,omitempty"`
}

// AnalyzeResponse is the body of a successful /analyze. Cache reports
// the disposition: "miss" (computed and admitted), "hit" (served from
// a cached analysis, zero index I/O), "bypass" (no_cache requested) or
// "dedup" (shared with an identical query in the same batch).
type AnalyzeResponse struct {
	Result  []ResultEntry `json:"result"`
	Regions []RegionJSON  `json:"regions"`
	Metrics MetricsJSON   `json:"metrics"`
	Cache   string        `json:"cache,omitempty"`
	// Partial marks a degraded scatter-gather answer merged without
	// every shard (coordinator deployments with -allow-partial only).
	// A partial region is NOT a certificate — the missing shards'
	// constraints are absent.
	Partial bool `json:"partial,omitempty"`
}

// MetricsJSON carries the metering of one analysis.
type MetricsJSON struct {
	Evaluated    int     `json:"evaluated"`
	EvaluatedAvg float64 `json:"evaluated_per_dim"`
	SeqPages     int64   `json:"seq_pages"`
	RandReads    int64   `json:"rand_reads"`
	CPUMicros    int64   `json:"cpu_us"`
	MemBytes     int64   `json:"mem_bytes"`
}

// BatchAnalyzeRequest is the body of /batchanalyze.
type BatchAnalyzeRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchEntryResponse is one element of a /batchanalyze response: an
// AnalyzeResponse on success, or Error with the other fields empty.
type BatchEntryResponse struct {
	AnalyzeResponse
	Error string `json:"error,omitempty"`
}

// BatchAnalyzeResponse is the body of a successful /batchanalyze;
// Responses is parallel to the request's Queries.
type BatchAnalyzeResponse struct {
	Responses []BatchEntryResponse `json:"responses"`
}

// BatchTopKRequest is the body of /batchtopk; only dims, weights and k
// of each query are consulted.
type BatchTopKRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// TopKEntryResponse is one element of a /batchtopk response: the ranked
// result and its cache disposition, or Error with the rest empty.
type TopKEntryResponse struct {
	Result []ResultEntry `json:"result,omitempty"`
	Cache  string        `json:"cache,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// BatchTopKResponse is the body of a successful /batchtopk; Responses
// is parallel to the request's Queries.
type BatchTopKResponse struct {
	Responses []TopKEntryResponse `json:"responses"`
}

// TupleEntryJSON is one non-zero coordinate of a tuple payload.
type TupleEntryJSON struct {
	Dim int     `json:"dim"`
	Val float64 `json:"val"`
}

// UpdateOpJSON is one element of /update's ops: without an id the tuple
// is inserted, with an id it replaces that tuple.
type UpdateOpJSON struct {
	ID    *int             `json:"id,omitempty"`
	Tuple []TupleEntryJSON `json:"tuple"`
}

// UpdateRequest is the body of /update.
type UpdateRequest struct {
	Ops []UpdateOpJSON `json:"ops"`
}

// DeleteRequest is the body of /delete.
type DeleteRequest struct {
	IDs []int `json:"ids"`
}

// OpResultJSON is one per-op outcome of /update or /delete: the
// assigned (insert) or targeted id, or the op's error.
type OpResultJSON struct {
	ID    int    `json:"id"`
	Error string `json:"error,omitempty"`
}

// MutateResponse is the body of a successful /update or /delete:
// per-op results plus the cache-invalidation accounting — how many
// cached analyses were checked against the region certificate, how many
// were evicted, and how many provably survived the batch.
type MutateResponse struct {
	Results       []OpResultJSON `json:"results"`
	Applied       int            `json:"applied"`
	CacheChecked  int            `json:"cache_checked"`
	CacheEvicted  int            `json:"cache_evicted"`
	CacheSurvived int            `json:"cache_survived"`
}

// MutationStatsJSON mirrors engine.MutationStats.
type MutationStatsJSON struct {
	Inserts       int64 `json:"inserts"`
	Updates       int64 `json:"updates"`
	Deletes       int64 `json:"deletes"`
	Batches       int64 `json:"batches"`
	CacheChecked  int64 `json:"cache_checked"`
	CacheEvicted  int64 `json:"cache_evicted"`
	CacheSurvived int64 `json:"cache_survived"`
}

// CacheStatsJSON mirrors engine.CacheStats.
type CacheStatsJSON struct {
	Hits       int64 `json:"hits"`
	RegionHits int64 `json:"region_hits"`
	Misses     int64 `json:"misses"`
	Bypasses   int64 `json:"bypasses"`
	Evictions  int64 `json:"evictions"`
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
}

// WALStatsJSON mirrors engine.DurabilityStats.
type WALStatsJSON struct {
	Generation          uint64 `json:"generation"`
	SyncPolicy          string `json:"sync_policy"`
	NextSeq             uint64 `json:"next_seq"`
	LogBytes            int64  `json:"log_bytes"`
	Appends             int64  `json:"appends"`
	Syncs               int64  `json:"syncs"`
	ReplayedRecords     int    `json:"replayed_records"`
	ReplayedOps         int    `json:"replayed_ops"`
	TruncatedBytes      int64  `json:"truncated_bytes"`
	Checkpoints         int64  `json:"checkpoints"`
	CheckpointBytes     int64  `json:"checkpoint_bytes"`
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
}

// OverlayStatsJSON mirrors lists.DeltaStats: the write overlay's
// in-memory delta, the quantity checkpointing bounds.
type OverlayStatsJSON struct {
	Added         int   `json:"added"`
	Overridden    int   `json:"overridden"`
	Tombstoned    int   `json:"tombstoned"`
	DeltaPostings int   `json:"delta_postings"`
	Bytes         int64 `json:"bytes"`
}

// BuildJSON identifies the running binary: the -ldflags-injected
// version and commit plus process start time and uptime.
type BuildJSON struct {
	Version       string  `json:"version"`
	Commit        string  `json:"commit"`
	StartTimeUnix int64   `json:"start_time_unix"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// StatsResponse is the body of /stats. Replication carries a
// replication.PrimaryStats or replication.FollowerStats when this
// server is part of a replication pair (see docs/operations.md for the
// field glossary).
type StatsResponse struct {
	Build     BuildJSON `json:"build"`
	SeqPages  int64     `json:"seq_pages"`
	RandReads int64     `json:"rand_reads"`
	BytesRead int64     `json:"bytes_read"`
	// PoolBypass counts page-equivalent accesses served straight from
	// the mmap'd region, bypassing the buffer pool (always 0 on nommap
	// builds or pread-backed stores).
	PoolBypass  int64              `json:"pool_bypass"`
	Cache       *CacheStatsJSON    `json:"cache,omitempty"`
	Mutations   *MutationStatsJSON `json:"mutations,omitempty"`
	WAL         *WALStatsJSON      `json:"wal,omitempty"`
	Overlay     *OverlayStatsJSON  `json:"overlay,omitempty"`
	Replication any                `json:"replication,omitempty"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	req, q, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	eng, ok := s.engine(w)
	if !ok {
		return
	}
	t0 := time.Now()
	res, info, err := eng.TopKMetered(r.Context(), q, req.K)
	if err != nil {
		engineError(w, err)
		return
	}
	total := time.Since(t0)
	observeDisposition(info.Source)
	// TopK has no region phase; the scan phase is what remains of the
	// total once the envelope (validate, cache probe, queue wait) is
	// taken out.
	scan := total - info.Timings.Validate - info.Timings.Cache - info.Timings.Queue
	if scan < 0 {
		scan = 0
	}
	s.recordSlow(r, "topk", req, info.Source, total, info.Timings,
		scan, 0, info.SeqPages, info.RandReads)
	w.Header().Set("X-Cache", info.Source.String())
	writeJSON(w, http.StatusOK, toEntries(res))
}

// buildOptions maps a request to engine options; the method string is
// the only field needing parsing.
func buildOptions(req QueryRequest) (engine.Options, error) {
	method, err := parseMethod(req.Method)
	if err != nil {
		return engine.Options{}, fmt.Errorf("%w: %v", engine.ErrInvalid, err)
	}
	return engine.Options{
		Options: core.Options{
			Method:          method,
			Phi:             req.Phi,
			CompositionOnly: req.CompositionOnly,
		},
		NoCache: req.NoCache,
	}, nil
}

// toAnalyzeResponse renders one completed analysis.
func toAnalyzeResponse(a *engine.Analysis) AnalyzeResponse {
	resp := AnalyzeResponse{
		Result: toEntries(a.Result),
		Cache:  a.Source.String(),
		Metrics: MetricsJSON{
			Evaluated:    a.Metrics.Evaluated,
			EvaluatedAvg: a.Metrics.EvaluatedPerDimAvg(),
			SeqPages:     a.Metrics.SeqPages,
			RandReads:    a.Metrics.RandReads,
			CPUMicros:    a.Metrics.CPU().Microseconds(),
			MemBytes:     a.Metrics.MemBytes,
		},
	}
	for _, reg := range a.Regions {
		rj := RegionJSON{Dim: reg.Dim, Lo: reg.Lo, Hi: reg.Hi}
		for _, p := range reg.Left {
			rj.Left = append(rj.Left, PerturbationJSON(p))
		}
		for _, p := range reg.Right {
			rj.Right = append(rj.Right, PerturbationJSON(p))
		}
		resp.Regions = append(resp.Regions, rj)
	}
	return resp
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, q, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	opts, err := buildOptions(req)
	if err != nil {
		engineError(w, err)
		return
	}
	eng, ok := s.engine(w)
	if !ok {
		return
	}
	t0 := time.Now()
	a, err := eng.Analyze(r.Context(), q, req.K, opts)
	if err != nil {
		engineError(w, err)
		return
	}
	total := time.Since(t0)
	observeDisposition(a.Source)
	// Scan is the TA phase-1 walk; region is the perturbation sweep
	// (phases 2 and 3 of §5). Both are zero on cache hits.
	s.recordSlow(r, "analyze", req, a.Source, total, a.Timings,
		a.Metrics.Phase1, a.Metrics.Phase2+a.Metrics.Phase3,
		a.Metrics.SeqPages, a.Metrics.RandReads)
	writeJSON(w, http.StatusOK, toAnalyzeResponse(a))
}

func (s *Server) handleBatchAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req BatchAnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	// Per-item shape errors are reported in place; valid items still
	// run, so one malformed query cannot sink a fleet batch.
	items := make([]engine.BatchItem, 0, len(req.Queries))
	itemIdx := make([]int, 0, len(req.Queries))
	resp := BatchAnalyzeResponse{Responses: make([]BatchEntryResponse, len(req.Queries))}
	for i, qr := range req.Queries {
		q, err := vec.NewQuery(qr.Dims, qr.Weights)
		if err == nil {
			var opts engine.Options
			if opts, err = buildOptions(qr); err == nil {
				items = append(items, engine.BatchItem{Q: q, K: qr.K, Opts: opts})
				itemIdx = append(itemIdx, i)
				continue
			}
		}
		resp.Responses[i] = BatchEntryResponse{Error: err.Error()}
	}
	eng, ok := s.engine(w)
	if !ok {
		return
	}
	for j, res := range eng.AnalyzeBatch(r.Context(), items) {
		i := itemIdx[j]
		if res.Err != nil {
			resp.Responses[i] = BatchEntryResponse{Error: res.Err.Error()}
			continue
		}
		resp.Responses[i] = BatchEntryResponse{AnalyzeResponse: toAnalyzeResponse(res.Analysis)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatchTopK answers a batch of ranked queries through the
// engine's fused scan path: queries sharing a dimension set and k cost
// roughly one scan for the whole group.
func (s *Server) handleBatchTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req BatchTopKRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	// Per-item shape errors are reported in place, like /batchanalyze.
	items := make([]engine.TopKItem, 0, len(req.Queries))
	itemIdx := make([]int, 0, len(req.Queries))
	resp := BatchTopKResponse{Responses: make([]TopKEntryResponse, len(req.Queries))}
	for i, qr := range req.Queries {
		q, err := vec.NewQuery(qr.Dims, qr.Weights)
		if err != nil {
			resp.Responses[i] = TopKEntryResponse{Error: err.Error()}
			continue
		}
		items = append(items, engine.TopKItem{Q: q, K: qr.K})
		itemIdx = append(itemIdx, i)
	}
	eng, ok := s.engine(w)
	if !ok {
		return
	}
	for j, res := range eng.TopKBatch(r.Context(), items) {
		i := itemIdx[j]
		if res.Err != nil {
			resp.Responses[i] = TopKEntryResponse{Error: res.Err.Error()}
			continue
		}
		resp.Responses[i] = TopKEntryResponse{Result: toEntries(res.Result), Cache: res.Source.String()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleUpdate applies a batch of inserts and in-place updates through
// the engine's write path.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	if len(req.Ops) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty op batch"))
		return
	}
	// Tuple-shape errors (duplicate dims, bad values) are reported in
	// place; well-formed ops still run, like /batchanalyze's per-item
	// errors.
	results := make([]OpResultJSON, len(req.Ops))
	ops := make([]engine.Op, 0, len(req.Ops))
	opIdx := make([]int, 0, len(req.Ops))
	for i, op := range req.Ops {
		entries := make([]vec.Entry, len(op.Tuple))
		for j, e := range op.Tuple {
			entries[j] = vec.Entry{Dim: e.Dim, Val: e.Val}
		}
		t, err := vec.NewSparse(entries)
		if err == nil && t.NNZ() == 0 {
			// An op without coordinates is almost always a malformed
			// request (a typoed field, or delete intent aimed at the
			// wrong endpoint); silently zeroing the target would destroy
			// it with a 200.
			err = fmt.Errorf("empty tuple (use /delete to remove a tuple)")
		}
		if err != nil {
			id := -1
			if op.ID != nil {
				id = *op.ID
			}
			results[i] = OpResultJSON{ID: id, Error: err.Error()}
			continue
		}
		if op.ID != nil {
			ops = append(ops, engine.Op{Kind: engine.OpUpdate, ID: *op.ID, Tuple: t})
		} else {
			ops = append(ops, engine.Op{Kind: engine.OpInsert, Tuple: t})
		}
		opIdx = append(opIdx, i)
	}
	s.applyOps(w, r, ops, opIdx, results)
}

// handleDelete removes tuples by id through the engine's write path.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty id list"))
		return
	}
	ops := make([]engine.Op, len(req.IDs))
	opIdx := make([]int, len(req.IDs))
	for i, id := range req.IDs {
		ops[i] = engine.Op{Kind: engine.OpDelete, ID: id}
		opIdx[i] = i
	}
	s.applyOps(w, r, ops, opIdx, make([]OpResultJSON, len(req.IDs)))
}

// applyOps runs the batch and renders the shared mutation response.
// results arrives pre-filled with any per-op shape errors; opIdx maps
// each engine op back to its response slot.
func (s *Server) applyOps(w http.ResponseWriter, r *http.Request, ops []engine.Op, opIdx []int, results []OpResultJSON) {
	if s.writeGate != nil {
		if allow, redirect := s.writeGate(); !allow {
			// This node must not take the write — it is a standby, a
			// deposed primary, or an unconfirmed one. With a known
			// primary the client gets a 409 plus Location; without one,
			// a retryable 503.
			if redirect == "" {
				httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no confirmed primary known; retry shortly"))
				return
			}
			w.Header().Set("Location", redirect+r.URL.Path)
			httpError(w, http.StatusConflict, fmt.Errorf("not the primary: writes go to %s", redirect))
			return
		}
	}
	eng, ok := s.engine(w)
	if !ok {
		return
	}
	if !eng.Mutable() {
		// Report read-only consistently (409) no matter the payload
		// shape — even when every op already failed parsing.
		engineError(w, fmt.Errorf("server: %w", engine.ErrImmutable))
		return
	}
	resp := MutateResponse{Results: results}
	if len(ops) > 0 {
		res, err := eng.Apply(ops)
		if err != nil {
			engineError(w, err)
			return
		}
		for j, or := range res.Results {
			results[opIdx[j]] = OpResultJSON{ID: or.ID}
			if or.Err != nil {
				results[opIdx[j]].Error = or.Err.Error()
			}
		}
		resp.Applied = res.Applied
		resp.CacheChecked = res.CacheChecked
		resp.CacheEvicted = res.CacheEvicted
		resp.CacheSurvived = res.CacheSurvived
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	resp.Build = BuildJSON{
		Version:       obs.Version,
		Commit:        obs.Commit,
		StartTimeUnix: obs.StartTime().Unix(),
		UptimeSeconds: obs.Uptime().Seconds(),
	}
	if s.replStats != nil {
		resp.Replication = s.replStats()
	}
	eng := s.get()
	if eng == nil {
		// A standby mid-re-seed has no engine, but its replication
		// block (connected, snapshots_loaded, last_error) is exactly
		// what an operator watching the re-seed needs — serve it with
		// the engine-derived blocks absent instead of a blanket 503.
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.SeqPages, resp.RandReads, resp.BytesRead = eng.Stats().Snapshot()
	resp.PoolBypass = eng.Stats().Bypasses()
	if eng.Mutable() {
		ms := eng.MutationStats()
		resp.Mutations = &MutationStatsJSON{
			Inserts:       ms.Inserts,
			Updates:       ms.Updates,
			Deletes:       ms.Deletes,
			Batches:       ms.Batches,
			CacheChecked:  ms.CacheChecked,
			CacheEvicted:  ms.CacheEvicted,
			CacheSurvived: ms.CacheSurvived,
		}
	}
	if eng.Durable() {
		ds := eng.DurabilityStats()
		resp.WAL = &WALStatsJSON{
			Generation:          ds.Generation,
			SyncPolicy:          ds.SyncPolicy,
			NextSeq:             ds.NextSeq,
			LogBytes:            ds.LogBytes,
			Appends:             ds.Appends,
			Syncs:               ds.Syncs,
			ReplayedRecords:     ds.ReplayedRecords,
			ReplayedOps:         ds.ReplayedOps,
			TruncatedBytes:      ds.TruncatedBytes,
			Checkpoints:         ds.Checkpoints,
			CheckpointBytes:     ds.CheckpointBytes,
			LastCheckpointError: ds.LastCheckpointError,
		}
	}
	if ov, ok := eng.OverlayStats(); ok {
		resp.Overlay = &OverlayStatsJSON{
			Added:         ov.Added,
			Overridden:    ov.Overridden,
			Tombstoned:    ov.Tombstoned,
			DeltaPostings: ov.DeltaPostings,
			Bytes:         ov.Bytes,
		}
	}
	if eng.CacheEnabled() {
		cs := eng.CacheStats()
		resp.Cache = &CacheStatsJSON{
			Hits:       cs.Hits,
			RegionHits: cs.RegionHits,
			Misses:     cs.Misses,
			Bypasses:   cs.Bypasses,
			Evictions:  cs.Evictions,
			Entries:    cs.Entries,
			Bytes:      cs.Bytes,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func toEntries(res []topk.Scored) []ResultEntry {
	out := make([]ResultEntry, len(res))
	for i, sc := range res {
		out[i] = ResultEntry{ID: sc.ID, Score: sc.Score}
	}
	return out
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case "", "cpt":
		return core.MethodCPT, nil
	case "scan":
		return core.MethodScan, nil
	case "prune":
		return core.MethodPrune, nil
	case "thres":
		return core.MethodThres, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

// decodeQuery parses and validates the request body common to /topk and
// /analyze; structural validation beyond the query shape (k, dimension
// range, φ) is the engine's job.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (QueryRequest, vec.Query, bool) {
	var req QueryRequest
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return req, vec.Query{}, false
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return req, vec.Query{}, false
	}
	q, err := vec.NewQuery(req.Dims, req.Weights)
	if err != nil {
		mValidationFailures.Inc()
		httpError(w, http.StatusBadRequest, err)
		return req, vec.Query{}, false
	}
	return req, q, true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing sensible left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// engineError maps an engine failure to an HTTP status: validation
// faults are the client's, cancellations mean the client is gone, a
// missed replication quorum is a (dependency-)unavailability the client
// must treat as indeterminate — the batch is committed locally but not
// replication-durable — and the rest are ours.
func engineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrInvalid):
		mValidationFailures.Inc()
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, engine.ErrImmutable):
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, engine.ErrFenced):
		// A deposed primary: the write was refused before any local
		// effect; clients should rediscover the primary and retry there.
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, engine.ErrQuorum):
		// The batch is committed locally but its replication durability
		// is unknown — mark the failure indeterminate so well-behaved
		// clients (internal/client) do not blindly retry and double-
		// apply it.
		w.Header().Set("X-Indeterminate", "true")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}
