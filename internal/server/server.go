// Package server exposes the query engine over HTTP with a small JSON
// API, turning the library into the system-model deployment of §3: a
// server holding the inverted lists and tuple file, answering subspace
// top-k queries and immutable-region analyses for remote clients.
//
// Endpoints:
//
//	POST /topk     {dims, weights, k}                        → ranked result
//	POST /analyze  {dims, weights, k, phi, method, composition_only}
//	               → result + per-dimension regions + metering
//	GET  /stats    → cumulative I/O counters
//	GET  /healthz  → 200 ok
//
// # Concurrency model
//
// Queries run concurrently with no server-wide lock. The index is
// immutable and shared; per-query state (TA cursors, candidate lists,
// region computation) is private to the request goroutine. I/O metering
// uses one atomic meter per query — a Child of the index-wide meter —
// so the metrics reported in an /analyze response count exactly that
// query's accesses while /stats keeps the exact aggregate across all
// in-flight queries. Config.MaxConcurrent bounds the number of queries
// executing at once (a semaphore; excess requests queue rather than
// fail), and Config.Parallelism is forwarded to core.Options to fan one
// query's per-dimension work across goroutines as well.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"

	"repro/internal/core"
	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Config tunes the server's concurrency.
type Config struct {
	// MaxConcurrent caps the number of queries executing at once. Each
	// in-flight query holds O(n) working state, so the cap is the
	// server's memory backpressure. 0 picks the default of
	// 4×GOMAXPROCS; a negative value disables the cap entirely.
	MaxConcurrent int
	// Parallelism is forwarded to core.Options.Parallelism for /analyze:
	// 0 keeps the paper-literal sequential per-dimension pipeline, n ≥ 1
	// runs each query's dimensions on up to n goroutines.
	Parallelism int
}

// Server handles the HTTP API over one index.
type Server struct {
	ix  lists.Index
	cfg Config
	sem chan struct{} // nil when unlimited
}

// New builds a Server over an index with the default concurrency cap.
func New(ix lists.Index) *Server { return NewWithConfig(ix, Config{}) }

// NewWithConfig builds a Server with explicit concurrency settings.
func NewWithConfig(ix lists.Index, cfg Config) *Server {
	s := &Server{ix: ix, cfg: cfg}
	limit := cfg.MaxConcurrent
	if limit == 0 {
		limit = 4 * runtime.GOMAXPROCS(0)
	}
	if limit > 0 {
		s.sem = make(chan struct{}, limit)
	}
	return s
}

// acquire blocks until a query slot is free (no-op when unlimited) or
// the request is abandoned — a client that gave up while queued must not
// trigger a full query execution against a dead connection.
func (s *Server) acquire(ctx context.Context) (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-ctx.Done():
		return nil, false
	}
}

// queryIndex returns a per-request view of the index charging a fresh
// child meter, so this query's I/O is metered in isolation while still
// aggregating into the shared /stats counters.
func (s *Server) queryIndex() lists.Index {
	return s.ix.WithStats(s.ix.Stats().Child())
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// QueryRequest is the body of /topk and /analyze.
type QueryRequest struct {
	Dims    []int     `json:"dims"`
	Weights []float64 `json:"weights"`
	K       int       `json:"k"`
	// analyze-only fields
	Phi             int    `json:"phi"`
	Method          string `json:"method"` // scan|prune|thres|cpt (default cpt)
	CompositionOnly bool   `json:"composition_only"`
}

// ResultEntry is one ranked answer.
type ResultEntry struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// PerturbationJSON mirrors core.Perturbation.
type PerturbationJSON struct {
	Delta float64 `json:"delta"`
	Above int     `json:"above"`
	Below int     `json:"below"`
	Entry bool    `json:"entry"`
}

// RegionJSON is one dimension's immutable regions.
type RegionJSON struct {
	Dim   int                `json:"dim"`
	Lo    float64            `json:"lo"`
	Hi    float64            `json:"hi"`
	Left  []PerturbationJSON `json:"left,omitempty"`
	Right []PerturbationJSON `json:"right,omitempty"`
}

// AnalyzeResponse is the body of a successful /analyze.
type AnalyzeResponse struct {
	Result  []ResultEntry `json:"result"`
	Regions []RegionJSON  `json:"regions"`
	Metrics MetricsJSON   `json:"metrics"`
}

// MetricsJSON carries the metering of one analysis.
type MetricsJSON struct {
	Evaluated    int     `json:"evaluated"`
	EvaluatedAvg float64 `json:"evaluated_per_dim"`
	SeqPages     int64   `json:"seq_pages"`
	RandReads    int64   `json:"rand_reads"`
	CPUMicros    int64   `json:"cpu_us"`
	MemBytes     int64   `json:"mem_bytes"`
}

// StatsResponse is the body of /stats.
type StatsResponse struct {
	SeqPages  int64 `json:"seq_pages"`
	RandReads int64 `json:"rand_reads"`
	BytesRead int64 `json:"bytes_read"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	req, q, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	release, ok := s.acquire(r.Context())
	if !ok {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("request canceled while queued"))
		return
	}
	defer release()
	ta := topk.New(s.queryIndex(), q, req.K, topk.BestList)
	ta.Run()
	res := ta.Result()
	writeJSON(w, http.StatusOK, toEntries(res))
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, q, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Phi < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("negative phi"))
		return
	}
	release, ok := s.acquire(r.Context())
	if !ok {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("request canceled while queued"))
		return
	}
	defer release()
	ta := topk.New(s.queryIndex(), q, req.K, topk.BestList)
	out, err := core.Compute(ta, core.Options{
		Method:          method,
		Phi:             req.Phi,
		CompositionOnly: req.CompositionOnly,
		Parallelism:     s.cfg.Parallelism,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := AnalyzeResponse{
		Result: toEntries(out.Result),
		Metrics: MetricsJSON{
			Evaluated:    out.Metrics.Evaluated,
			EvaluatedAvg: out.Metrics.EvaluatedPerDimAvg(),
			SeqPages:     out.Metrics.SeqPages,
			RandReads:    out.Metrics.RandReads,
			CPUMicros:    out.Metrics.CPU().Microseconds(),
			MemBytes:     out.Metrics.MemBytes,
		},
	}
	for _, reg := range out.Regions {
		rj := RegionJSON{Dim: reg.Dim, Lo: reg.Lo, Hi: reg.Hi}
		for _, p := range reg.Left {
			rj.Left = append(rj.Left, PerturbationJSON(p))
		}
		for _, p := range reg.Right {
			rj.Right = append(rj.Right, PerturbationJSON(p))
		}
		resp.Regions = append(resp.Regions, rj)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	seq, rnd, bytes := s.ix.Stats().Snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{SeqPages: seq, RandReads: rnd, BytesRead: bytes})
}

// decodeQuery parses and validates the request body common to /topk and
// /analyze.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (QueryRequest, vec.Query, bool) {
	var req QueryRequest
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return req, vec.Query{}, false
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return req, vec.Query{}, false
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be positive"))
		return req, vec.Query{}, false
	}
	q, err := vec.NewQuery(req.Dims, req.Weights)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return req, vec.Query{}, false
	}
	for _, d := range q.Dims {
		if d >= s.ix.Dim() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("dimension %d out of range [0,%d)", d, s.ix.Dim()))
			return req, vec.Query{}, false
		}
	}
	return req, q, true
}

func toEntries(res []topk.Scored) []ResultEntry {
	out := make([]ResultEntry, len(res))
	for i, sc := range res {
		out[i] = ResultEntry{ID: sc.ID, Score: sc.Score}
	}
	return out
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case "", "cpt":
		return core.MethodCPT, nil
	case "scan":
		return core.MethodScan, nil
	case "prune":
		return core.MethodPrune, nil
	case "thres":
		return core.MethodThres, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing sensible left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
