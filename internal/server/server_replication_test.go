package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/lists"
	"repro/internal/replication"
	"repro/internal/vec"
)

// replPair is a primary HTTP server and a standby HTTP server joined by
// a live replication stream.
type replPair struct {
	primEng *engine.Engine
	prim    *replication.Primary
	fol     *replication.Follower
	cancel  context.CancelFunc
	primTS  *httptest.Server
	folTS   *httptest.Server
}

func startReplPair(t *testing.T) *replPair {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	pdir, fdir := t.TempDir(), t.TempDir()
	var tuples []vec.Sparse
	for i := 0; i < 30; i++ {
		tuples = append(tuples, vec.MustSparse(
			vec.Entry{Dim: 0, Val: rng.Float64()},
			vec.Entry{Dim: 1, Val: rng.Float64()},
			vec.Entry{Dim: 2, Val: rng.Float64()},
		))
	}
	if err := lists.SaveDataset(filepath.Join(pdir, "tuples.dat"), filepath.Join(pdir, "lists.dat"), tuples, 3); err != nil {
		t.Fatal(err)
	}

	eng, err := engine.OpenDir(pdir, 64, engine.Config{WAL: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	prim, err := replication.NewPrimary(eng, pdir, replication.PrimaryConfig{
		HTTPAddr:          ":8080",
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetReplicationSink(prim)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve(ln)

	primSrv := FromEngine(eng)
	primSrv.SetReplicationStats(func() any { return prim.Stats() })
	primTS := httptest.NewServer(primSrv.Handler())

	fol := replication.NewFollower(replication.FollowerConfig{
		Dir:           fdir,
		PrimaryAddr:   ln.Addr().String(),
		PoolPages:     64,
		RetryInterval: 25 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go fol.Run(ctx)
	readyCtx, rcancel := context.WithTimeout(ctx, 15*time.Second)
	defer rcancel()
	if _, err := fol.WaitReady(readyCtx); err != nil {
		t.Fatal(err)
	}
	folSrv := FromEngineFunc(fol.Engine)
	folSrv.SetWriteRedirect(primTS.URL)
	folSrv.SetReplicationStats(func() any { return fol.Stats() })
	folTS := httptest.NewServer(folSrv.Handler())

	return &replPair{primEng: eng, prim: prim, fol: fol, cancel: cancel, primTS: primTS, folTS: folTS}
}

func (rp *replPair) close(t *testing.T) {
	t.Helper()
	rp.folTS.Close()
	rp.primTS.Close()
	rp.cancel()
	select {
	case <-rp.fol.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not stop")
	}
	rp.fol.Close()
	rp.prim.Close()
	rp.primEng.Close()
}

func (rp *replPair) waitCaughtUp(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if eng := rp.fol.Engine(); eng != nil && eng.LastSeq() == rp.primEng.LastSeq() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("standby never caught up")
}

// TestStandbyHTTP drives the replication pair over HTTP: writes land on
// the primary and are rejected by the standby with 409 + Location,
// reads on the standby are bit-identical to the primary's, and both
// /stats expose their replication block.
func TestStandbyHTTP(t *testing.T) {
	rp := startReplPair(t)
	defer rp.close(t)

	// Write through the primary's HTTP API.
	var mu MutateResponse
	resp := post(t, rp.primTS.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.95}, {Dim: 2, Val: 0.1}}},
	}}, &mu)
	if resp.StatusCode != http.StatusOK || mu.Applied != 1 {
		t.Fatalf("primary update: status %d %+v", resp.StatusCode, mu)
	}

	// The standby rejects the same write with a pointer home.
	resp = post(t, rp.folTS.URL+"/update", UpdateRequest{Ops: []UpdateOpJSON{
		{Tuple: []TupleEntryJSON{{Dim: 0, Val: 0.5}}},
	}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("standby update: status %d, want 409", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != rp.primTS.URL+"/update" {
		t.Fatalf("standby Location %q, want %q", loc, rp.primTS.URL+"/update")
	}
	resp = post(t, rp.folTS.URL+"/delete", DeleteRequest{IDs: []int{0}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("standby delete: status %d, want 409", resp.StatusCode)
	}

	rp.waitCaughtUp(t)

	// Reads: /analyze on the standby is bit-identical to the primary.
	for _, q := range []QueryRequest{
		{Dims: []int{0, 1}, Weights: []float64{0.8, 0.4}, K: 5, NoCache: true},
		{Dims: []int{0, 1, 2}, Weights: []float64{0.5, 0.9, 0.3}, K: 4, NoCache: true},
	} {
		var pa, fa AnalyzeResponse
		if resp := post(t, rp.primTS.URL+"/analyze", q, &pa); resp.StatusCode != http.StatusOK {
			t.Fatalf("primary analyze status %d", resp.StatusCode)
		}
		if resp := post(t, rp.folTS.URL+"/analyze", q, &fa); resp.StatusCode != http.StatusOK {
			t.Fatalf("standby analyze status %d", resp.StatusCode)
		}
		if !reflect.DeepEqual(pa.Result, fa.Result) || !reflect.DeepEqual(pa.Regions, fa.Regions) {
			t.Fatalf("standby diverged for %+v:\n  primary %+v\n  standby %+v", q, pa, fa)
		}
	}

	// /stats: both sides expose their replication role and lag fields.
	role := func(url string) (string, map[string]any) {
		t.Helper()
		httpResp, err := http.Get(url + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		var raw struct {
			Replication map[string]any `json:"replication"`
		}
		if err := json.NewDecoder(httpResp.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		r, _ := raw.Replication["role"].(string)
		return r, raw.Replication
	}
	if r, blk := role(rp.primTS.URL); r != "primary" || blk["tail_seq"] == nil {
		t.Fatalf("primary replication block %v", blk)
	}
	r, blk := role(rp.folTS.URL)
	if r != "follower" || blk["last_applied_seq"] == nil || blk["seq_delta"] == nil {
		t.Fatalf("standby replication block %v", blk)
	}
	if conn, _ := blk["connected"].(bool); !conn {
		t.Fatalf("standby not connected: %v", blk)
	}

	// /metrics on both roles stays exposition-conformant with the
	// replication families (lag gauges, quorum counters) registered.
	lintMetrics(t, rp.primTS.URL)
	lintMetrics(t, rp.folTS.URL)
}

// TestNilEngine503: a server whose engine provider yields nil (a
// standby mid-re-seed) answers queries with 503 instead of panicking,
// while /stats keeps serving the replication block — that is what an
// operator watches during the re-seed.
func TestNilEngine503(t *testing.T) {
	srv := FromEngineFunc(func() *engine.Engine { return nil })
	srv.SetReplicationStats(func() any { return map[string]string{"role": "follower"} })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/topk", "/analyze"} {
		resp := post(t, ts.URL+path, QueryRequest{Dims: []int{0}, Weights: []float64{1}, K: 1}, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s on nil engine: status %d, want 503", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats on nil engine: status %d, want 200", resp.StatusCode)
	}
	var body StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	blk, _ := body.Replication.(map[string]any)
	if blk["role"] != "follower" {
		t.Fatalf("replication block missing mid-re-seed: %+v", body)
	}
}
