package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// kthHighestAt computes the rank-k value among lines at x by sorting.
func kthHighestAt(lines []Line, k int, x float64) float64 {
	vals := make([]float64, len(lines))
	for i, l := range lines {
		vals[i] = l.Eval(x)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return vals[k-1]
}

// TestKthEnvelopeMatchesPointwise samples the envelope across its domain
// and compares with direct rank computation.
func TestKthEnvelopeMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(n)
		lines := randLines(rng, n)
		xmax := 0.5 + rng.Float64()
		env := KthEnvelope(lines, k, 0, xmax)
		if err := env.validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lo, hi := env.Domain(); lo != 0 || hi != xmax {
			t.Fatalf("trial %d: domain (%v,%v), want (0,%v)", trial, lo, hi, xmax)
		}
		for s := 0; s <= 40; s++ {
			x := xmax * float64(s) / 40
			want := kthHighestAt(lines, k, x)
			if got := env.Eval(x); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d k=%d: env(%v)=%v, want %v", trial, k, x, got, want)
			}
		}
	}
}

func TestLowerUpperEnvelope(t *testing.T) {
	lines := []Line{{A: 0, B: 2, ID: 0}, {A: 1, B: 0, ID: 1}}
	lower := LowerEnvelope(lines, 0, 2)
	upper := UpperEnvelope(lines, 0, 2)
	// cross at x=0.5: below it line0 is lower, above it line1.
	if lower.SegmentIDAt(0.25) != 0 || lower.SegmentIDAt(1.0) != 1 {
		t.Fatalf("lower envelope segments wrong: %v", lower)
	}
	if upper.SegmentIDAt(0.25) != 1 || upper.SegmentIDAt(1.0) != 0 {
		t.Fatalf("upper envelope segments wrong: %v", upper)
	}
}

// TestFirstCrossingAbove compares against dense sampling.
func TestFirstCrossingAbove(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		lines := randLines(rng, n)
		k := 1 + rng.Intn(n)
		env := KthEnvelope(lines, k, 0, 1)
		probe := Line{A: rng.Float64() - 0.5, B: 2 * (rng.Float64() - 0.25)}
		x, ok := env.FirstCrossingAbove(probe)
		// sample
		firstSample, found := 0.0, false
		for s := 0; s <= 2000; s++ {
			xx := float64(s) / 2000
			if probe.Eval(xx) > env.Eval(xx)+1e-12 {
				firstSample, found = xx, true
				break
			}
		}
		if ok != found {
			// Tolerate a hairline disagreement only when the crossing
			// grazes the domain edge.
			if found && firstSample > 0.999 {
				continue
			}
			t.Fatalf("trial %d: ok=%v but sampling found=%v (first=%v)", trial, ok, found, firstSample)
		}
		if ok && math.Abs(x-firstSample) > 1e-3+1e-9 {
			t.Fatalf("trial %d: crossing at %v, sampling says ~%v", trial, x, firstSample)
		}
	}
}

func TestAboveLineAndMinDiff(t *testing.T) {
	env := KthEnvelope([]Line{{A: 1, B: 1, ID: 0}}, 1, 0, 1)
	if !env.AboveLine(Line{A: 0.5, B: 1}) {
		t.Fatal("parallel lower line should be below")
	}
	if env.AboveLine(Line{A: 0.5, B: 2}) {
		t.Fatal("steeper line crosses inside the domain")
	}
	if d := env.MinDiff(Line{A: 0.5, B: 1}); math.Abs(d-0.5) > 1e-15 {
		t.Fatalf("MinDiff = %v, want 0.5", d)
	}
}

func TestTruncate(t *testing.T) {
	lines := []Line{{A: 0, B: 2, ID: 0}, {A: 1, B: 0, ID: 1}}
	env := LowerEnvelope(lines, 0, 2) // break at 0.5
	tr := env.Truncate(0.25, 0.75)
	if lo, hi := tr.Domain(); lo != 0.25 || hi != 0.75 {
		t.Fatalf("Truncate domain (%v,%v)", lo, hi)
	}
	for s := 0; s <= 10; s++ {
		x := 0.25 + 0.5*float64(s)/10
		if math.Abs(tr.Eval(x)-env.Eval(x)) > 1e-15 {
			t.Fatalf("Truncate changed values at %v", x)
		}
	}
	// Truncating to a degenerate window still yields a usable function.
	point := env.Truncate(0.5, 0.5)
	if err := point.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKthEnvelopePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rank out of range")
		}
	}()
	KthEnvelope([]Line{{A: 1, B: 1}}, 2, 0, 1)
}
