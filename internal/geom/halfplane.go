package geom

import "math"

// Halfplane is {(x,y) : A·x + B·y ≤ C}.
type Halfplane struct {
	A, B, C float64
}

// Contains reports whether p satisfies the halfplane (with tolerance).
func (h Halfplane) Contains(p Point) bool {
	return h.A*p.X+h.B*p.Y <= h.C+1e-12
}

// ClipPolygon intersects a convex polygon (counter-clockwise vertex
// list) with a halfplane using the Sutherland–Hodgman rule. The result
// is again convex and counter-clockwise; it may be empty.
func ClipPolygon(poly []Point, h Halfplane) []Point {
	if len(poly) == 0 {
		return nil
	}
	side := func(p Point) float64 { return h.A*p.X + h.B*p.Y - h.C }
	var out []Point
	for i := range poly {
		cur, nxt := poly[i], poly[(i+1)%len(poly)]
		sc, sn := side(cur), side(nxt)
		if sc <= 0 {
			out = append(out, cur)
		}
		if (sc < 0 && sn > 0) || (sc > 0 && sn < 0) {
			// edge crosses the boundary: add the intersection point
			t := sc / (sc - sn)
			out = append(out, Point{
				X: cur.X + t*(nxt.X-cur.X),
				Y: cur.Y + t*(nxt.Y-cur.Y),
			})
		}
	}
	return dedupePoints(out)
}

// IntersectHalfplanes clips the axis-aligned box [x0,x1]×[y0,y1] by every
// halfplane, yielding the (possibly empty) convex intersection polygon in
// counter-clockwise order. This is the 2-D validity-polygon construction
// the paper's Fig. 3 depicts — feasible exactly because qlen = 2 (§2
// notes the polyhedron complexity explodes with dimensionality).
func IntersectHalfplanes(hs []Halfplane, x0, y0, x1, y1 float64) []Point {
	poly := []Point{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
	for _, h := range hs {
		poly = ClipPolygon(poly, h)
		if len(poly) == 0 {
			return nil
		}
	}
	return poly
}

// dedupePoints removes consecutive (near-)duplicate vertices produced by
// clipping through a vertex.
func dedupePoints(poly []Point) []Point {
	if len(poly) < 2 {
		return poly
	}
	const eps = 1e-12
	var out []Point
	for _, p := range poly {
		if len(out) > 0 {
			q := out[len(out)-1]
			if math.Abs(p.X-q.X) < eps && math.Abs(p.Y-q.Y) < eps {
				continue
			}
		}
		out = append(out, p)
	}
	if len(out) > 1 {
		f, l := out[0], out[len(out)-1]
		if math.Abs(f.X-l.X) < eps && math.Abs(f.Y-l.Y) < eps {
			out = out[:len(out)-1]
		}
	}
	return out
}

// PolygonArea returns the signed area of a polygon (positive for
// counter-clockwise orientation).
func PolygonArea(poly []Point) float64 {
	s := 0.0
	for i := range poly {
		a, b := poly[i], poly[(i+1)%len(poly)]
		s += a.X*b.Y - b.X*a.Y
	}
	return s / 2
}

// DistanceToBoundary returns the minimum distance from an interior point
// p to the polygon's edges (0 if the polygon is degenerate).
func DistanceToBoundary(p Point, poly []Point) float64 {
	min := math.Inf(1)
	for i := range poly {
		a, b := poly[i], poly[(i+1)%len(poly)]
		if d := pointSegmentDistance(p, a, b); d < min {
			min = d
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

func pointSegmentDistance(p, a, b Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(p.X-a.X, p.Y-a.Y)
	}
	t := ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / l2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return math.Hypot(p.X-(a.X+t*dx), p.Y-(a.Y+t*dy))
}
