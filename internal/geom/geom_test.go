package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLineIntersectX(t *testing.T) {
	a := Line{A: 0, B: 1}
	b := Line{A: 1, B: 0}
	x, ok := a.IntersectX(b)
	if !ok || x != 1 {
		t.Fatalf("IntersectX = %v,%v, want 1,true", x, ok)
	}
	if _, ok := a.IntersectX(Line{A: 5, B: 1}); ok {
		t.Fatal("parallel lines reported as crossing")
	}
}

func TestIntervalOps(t *testing.T) {
	iv := Interval{0, 2}.Intersect(Interval{1, 3})
	if iv.Lo != 1 || iv.Hi != 2 {
		t.Fatalf("Intersect = %+v", iv)
	}
	if !iv.Contains(1.5) || iv.Contains(2.5) {
		t.Fatal("Contains wrong")
	}
	empty := Interval{2, 1}
	if !empty.Empty() || empty.Width() != 0 {
		t.Fatal("empty interval handling wrong")
	}
	if (Interval{1, 4}).Width() != 3 {
		t.Fatal("Width wrong")
	}
}

func randLines(rng *rand.Rand, n int) []Line {
	lines := make([]Line, n)
	for i := range lines {
		lines[i] = Line{A: rng.Float64(), B: rng.Float64(), ID: i}
	}
	return lines
}

// TestSweepMatchesAllPairs: the event-queue sweep must produce exactly
// the crossings the quadratic enumeration finds, in the same order.
func TestSweepMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		lines := randLines(rng, n)
		xmin, xmax := 0.0, 1+rng.Float64()
		want := CrossingsAllPairs(lines, xmin, xmax)
		sw := NewSweep(lines, xmin, xmax)
		var got []Crossing
		for {
			c, ok := sw.Next()
			if !ok {
				break
			}
			got = append(got, c)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d crossings, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].X-want[i].X) > 1e-12 {
				t.Fatalf("trial %d crossing %d: x=%v, want %v", trial, i, got[i].X, want[i].X)
			}
			if got[i].I != want[i].I || got[i].J != want[i].J {
				t.Fatalf("trial %d crossing %d: pair (%d,%d), want (%d,%d)",
					trial, i, got[i].I, got[i].J, want[i].I, want[i].J)
			}
		}
	}
}

// TestSweepRanks: at every crossing, RankAbove must equal the true rank
// of line I just before the event.
func TestSweepRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		lines := randLines(rng, 2+rng.Intn(10))
		sw := NewSweep(lines, 0, 2)
		for {
			c, ok := sw.Next()
			if !ok {
				break
			}
			x := c.X - 1e-9
			higher := 0
			vi := lines[c.I].Eval(x)
			for k, l := range lines {
				if k != c.I && l.Eval(x) > vi {
					higher++
				}
			}
			if higher != c.RankAbove {
				t.Fatalf("trial %d: RankAbove=%d, true rank %d", trial, c.RankAbove, higher)
			}
		}
	}
}

func TestFirstCrossings(t *testing.T) {
	lines := []Line{{A: 0, B: 3, ID: 0}, {A: 1, B: 1, ID: 1}, {A: 2, B: 0, ID: 2}}
	// crossings: 0-1 at 0.5, 1-2 at 1.0, 0-2 at 2/3
	cs := FirstCrossings(lines, 0, 10, 2)
	if len(cs) != 2 {
		t.Fatalf("got %d crossings", len(cs))
	}
	if math.Abs(cs[0].X-0.5) > 1e-15 || math.Abs(cs[1].X-2.0/3) > 1e-12 {
		t.Fatalf("crossings at %v, %v; want 0.5, 2/3", cs[0].X, cs[1].X)
	}
}

func TestHyperplaneDistance(t *testing.T) {
	h := Hyperplane{N: []float64{1, 0}, C: 2}
	if d := h.Distance([]float64{5, 7}); d != 3 {
		t.Fatalf("Distance = %v, want 3", d)
	}
	degenerate := Hyperplane{N: []float64{0, 0}, C: 0}
	if !math.IsInf(degenerate.Distance([]float64{1, 1}), 1) {
		t.Fatal("degenerate hyperplane should be at infinite distance")
	}
}

// TestConvexHullContainsAll: every input point must be inside (or on) the
// hull, and the hull must be convex (all turns counter-clockwise).
func TestConvexHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			t.Fatalf("trial %d: hull of %d random points has %d vertices", trial, n, len(hull))
		}
		for i := range hull {
			o, a, b := hull[i], hull[(i+1)%len(hull)], hull[(i+2)%len(hull)]
			cross := (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
			if cross <= 0 {
				t.Fatalf("trial %d: hull not strictly convex/ccw at %d", trial, i)
			}
		}
		for _, p := range pts {
			if !InConvexPolygon(p, hull) {
				t.Fatalf("trial %d: point %v outside hull", trial, p)
			}
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull([]Point{{1, 2}}); len(got) != 1 {
		t.Fatalf("hull of single point: %v", got)
	}
	two := ConvexHull([]Point{{0, 0}, {1, 1}})
	if len(two) != 2 {
		t.Fatalf("hull of two points: %v", two)
	}
}

func TestClipPolygon(t *testing.T) {
	box := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	// x ≤ 0.5 halves the box.
	clipped := ClipPolygon(box, Halfplane{A: 1, B: 0, C: 0.5})
	if a := PolygonArea(clipped); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("area %v after x<=0.5 clip, want 0.5", a)
	}
	// A halfplane containing the whole box leaves it unchanged.
	same := ClipPolygon(box, Halfplane{A: 1, B: 1, C: 10})
	if a := PolygonArea(same); math.Abs(a-1) > 1e-12 {
		t.Fatalf("area %v after no-op clip, want 1", a)
	}
	// A halfplane excluding everything empties it.
	if got := ClipPolygon(box, Halfplane{A: 1, B: 0, C: -1}); len(got) != 0 {
		t.Fatalf("expected empty polygon, got %v", got)
	}
	// Clipping an empty polygon stays empty.
	if got := ClipPolygon(nil, Halfplane{A: 1, B: 0, C: 0}); got != nil {
		t.Fatalf("clip of empty = %v", got)
	}
}

func TestIntersectHalfplanes(t *testing.T) {
	// x+y ≤ 1 over the unit box: a triangle of area 1/2.
	tri := IntersectHalfplanes([]Halfplane{{A: 1, B: 1, C: 1}}, 0, 0, 1, 1)
	if a := PolygonArea(tri); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("triangle area %v", a)
	}
	// Infeasible system.
	if got := IntersectHalfplanes([]Halfplane{{A: 1, B: 0, C: 0.2}, {A: -1, B: 0, C: -0.8}}, 0, 0, 1, 1); got != nil {
		t.Fatalf("infeasible system returned %v", got)
	}
	// Orientation: results must be counter-clockwise (positive area).
	sq := IntersectHalfplanes([]Halfplane{{A: 1, B: 0, C: 0.7}, {A: 0, B: 1, C: 0.4}}, 0, 0, 1, 1)
	if a := PolygonArea(sq); math.Abs(a-0.28) > 1e-12 {
		t.Fatalf("clipped rectangle area %v, want 0.28", a)
	}
}

func TestDistanceToBoundary(t *testing.T) {
	box := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if d := DistanceToBoundary(Point{0.5, 0.5}, box); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("center distance %v, want 0.5", d)
	}
	if d := DistanceToBoundary(Point{0.1, 0.5}, box); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("off-center distance %v, want 0.1", d)
	}
	if d := DistanceToBoundary(Point{0, 0}, box); d != 0 {
		t.Fatalf("corner distance %v, want 0", d)
	}
}

func TestHalfplaneContains(t *testing.T) {
	h := Halfplane{A: 1, B: -1, C: 0} // x ≤ y
	if !h.Contains(Point{0.2, 0.5}) || h.Contains(Point{0.5, 0.2}) {
		t.Fatal("Contains wrong")
	}
}

func TestSortPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64()}
	}
	sortPoints(pts)
	if !sort.SliceIsSorted(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	}) {
		t.Fatal("sortPoints did not sort")
	}
}
