package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// lineSet is a quick.Generator producing 2–10 random lines in general
// position.
type lineSet []Line

func (lineSet) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 2 + rng.Intn(9)
	ls := make(lineSet, n)
	for i := range ls {
		ls[i] = Line{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1, ID: i}
	}
	return reflect.ValueOf(ls)
}

// TestQuickSweepCompleteness: the sweep finds exactly the crossings the
// quadratic enumeration finds, for arbitrary line sets.
func TestQuickSweepCompleteness(t *testing.T) {
	f := func(ls lineSet) bool {
		want := CrossingsAllPairs(ls, 0, 1)
		sw := NewSweep(ls, 0, 1)
		count := 0
		lastX := 0.0
		for {
			c, ok := sw.Next()
			if !ok {
				break
			}
			if c.X < lastX {
				return false // must be emitted in ascending order
			}
			lastX = c.X
			count++
		}
		return count == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnvelopeIsKthStatistic: for every rank k and random sample
// points, the envelope value equals the directly computed k-th highest.
func TestQuickEnvelopeIsKthStatistic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(ls lineSet) bool {
		k := 1 + rng.Intn(len(ls))
		env := KthEnvelope(ls, k, 0, 1)
		for s := 0; s < 12; s++ {
			x := rng.Float64()
			if math.Abs(env.Eval(x)-kthHighestAt(ls, k, x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnvelopeMonotoneInSet: adding a line never lowers the k-th
// envelope — the property candidate rejection in §6 relies on.
func TestQuickEnvelopeMonotoneInSet(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	f := func(ls lineSet) bool {
		k := 1 + rng.Intn(len(ls))
		env := KthEnvelope(ls, k, 0, 1)
		extra := Line{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1, ID: len(ls)}
		env2 := KthEnvelope(append(append([]Line{}, ls...), extra), k, 0, 1)
		for s := 0; s <= 20; s++ {
			x := float64(s) / 20
			if env2.Eval(x) < env.Eval(x)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFirstCrossingAboveConsistent: wherever FirstCrossingAbove
// reports x*, the line is never strictly above the envelope before x*,
// and AboveLine agrees with the crossing's existence.
func TestQuickFirstCrossingAboveConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func(ls lineSet) bool {
		k := 1 + rng.Intn(len(ls))
		env := KthEnvelope(ls, k, 0, 1)
		probe := Line{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1}
		x, ok := env.FirstCrossingAbove(probe)
		if !ok {
			// Never above ⇒ envelope is ≥ probe throughout (within fp).
			return env.MinDiff(probe) >= -1e-9
		}
		// Strictly before the reported first crossing the probe must not
		// exceed the envelope. (x may be 0 when the probe starts above —
		// then there is no "before" to sample.)
		for s := 0; s < 10; s++ {
			before := x * float64(s) / 10
			if before >= x {
				continue
			}
			if probe.Eval(before) > env.Eval(before)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntervalIntersection: intersection is commutative, contained
// in both operands, and idempotent.
func TestQuickIntervalIntersection(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		if math.IsNaN(a0) || math.IsNaN(a1) || math.IsNaN(b0) || math.IsNaN(b1) {
			return true
		}
		a := Interval{math.Min(a0, a1), math.Max(a0, a1)}
		b := Interval{math.Min(b0, b1), math.Max(b0, b1)}
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab != ba {
			return false
		}
		if !ab.Empty() {
			if !a.Contains(ab.Lo) || !a.Contains(ab.Hi) || !b.Contains(ab.Lo) || !b.Contains(ab.Hi) {
				return false
			}
		}
		return ab.Intersect(ab) == ab
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHullIdempotent: the hull of a hull is itself.
func TestQuickHullIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	f := func() bool {
		n := 3 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		h1 := ConvexHull(pts)
		h2 := ConvexHull(h1)
		if len(h1) != len(h2) {
			return false
		}
		set := map[Point]bool{}
		for _, p := range h1 {
			set[p] = true
		}
		for _, p := range h2 {
			if !set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
