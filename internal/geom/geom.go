// Package geom provides the computational-geometry substrate for
// immutable-region computation: lines in score–deviation space, pairwise
// crossings via an arrangement sweep, k-th–rank envelopes, 2-D convex
// hulls and hyperplane distances. Everything is hand-rolled on float64;
// the algorithms assume general position (no three lines concurrent, no
// two parallel lines among those compared), which holds almost surely for
// the real-valued data the paper targets. Degeneracies are handled
// deterministically (ties broken by slope, then by index) rather than
// rejected.
package geom

import (
	"fmt"
	"math"
)

// Line is y = A + B*x: A is the value at x = 0 (a tuple's current score),
// B is the slope (the tuple's coordinate in the dimension being varied).
// ID carries the owning tuple's identity through geometric computations.
type Line struct {
	A  float64
	B  float64
	ID int
}

// Eval returns the line's value at x.
func (l Line) Eval(x float64) float64 { return l.A + l.B*x }

// IntersectX returns the x-coordinate where l and o cross. ok is false
// for parallel lines (including identical ones).
func (l Line) IntersectX(o Line) (x float64, ok bool) {
	db := l.B - o.B
	if db == 0 {
		return 0, false
	}
	return (o.A - l.A) / db, true
}

func (l Line) String() string { return fmt.Sprintf("y=%.6g%+.6gx (id=%d)", l.A, l.B, l.ID) }

// Interval is a range of weight deviations [Lo, Hi]. The immutable-region
// semantics make bounds open where a strict overtake occurs, but interval
// arithmetic only needs the endpoints; openness is tracked by callers.
type Interval struct {
	Lo, Hi float64
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, o.Lo), Hi: math.Min(iv.Hi, o.Hi)}
}

// Contains reports whether x lies inside the closed interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Empty reports whether the interval contains no point.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Width returns Hi-Lo, or 0 for empty intervals.
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Crossing is a pairwise intersection of two lines at X. I and J are
// indices into the slice the sweep was run on, with I ranked above J
// (higher value) immediately before X. RankAbove is I's 0-based rank
// (0 = highest line) just before the crossing when produced by Sweep,
// and -1 when produced by CrossingsAllPairs (which does not track ranks).
type Crossing struct {
	X         float64
	I, J      int
	RankAbove int
}

// CrossingsAllPairs enumerates every pairwise crossing of lines with
// x strictly inside (xmin, xmax), sorted by ascending X. It is the O(n²)
// reference used for testing and for small inputs.
func CrossingsAllPairs(lines []Line, xmin, xmax float64) []Crossing {
	var out []Crossing
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			x, ok := lines[i].IntersectX(lines[j])
			if !ok || x <= xmin || x >= xmax {
				continue
			}
			hi, lo := i, j
			// Rank just before the crossing: the line with the smaller
			// slope is above (it is overtaken at x).
			if lines[i].B > lines[j].B {
				hi, lo = j, i
			}
			out = append(out, Crossing{X: x, I: hi, J: lo, RankAbove: -1})
		}
	}
	sortCrossings(out)
	return out
}

func sortCrossings(cs []Crossing) {
	// insertion-friendly sizes dominate here; use a simple sort to keep
	// ties (equal X) ordered deterministically by (I, J).
	lessThan := func(a, b Crossing) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		if a.I != b.I {
			return a.I < b.I
		}
		return a.J < b.J
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lessThan(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// Hyperplane is {x : N·x = C} in the query-vector space; it bounds the
// half-space where one tuple outscores another. Used by the STB
// sensitivity-radius comparator (Soliman et al., described in §2).
type Hyperplane struct {
	N []float64
	C float64
}

// Distance returns the Euclidean distance from point p to the hyperplane.
// It returns +Inf for a degenerate (zero-normal) hyperplane, which arises
// when two tuples coincide on the query dimensions and therefore never
// swap order.
func (h Hyperplane) Distance(p []float64) float64 {
	n := 0.0
	dot := 0.0
	for i, v := range h.N {
		n += v * v
		dot += v * p[i]
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Abs(dot-h.C) / math.Sqrt(n)
}

// Point is a 2-D point.
type Point struct{ X, Y float64 }

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone chain. Collinear points on the hull boundary
// are dropped. The input is not modified.
func ConvexHull(pts []Point) []Point {
	if len(pts) <= 2 {
		out := make([]Point, len(pts))
		copy(out, pts)
		return out
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sortPoints(sorted)

	cross := func(o, a, b Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var hull []Point
	// lower chain
	for _, p := range sorted {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// upper chain
	lower := len(hull) + 1
	for i := len(sorted) - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// InConvexPolygon reports whether p lies inside or on the boundary of the
// counter-clockwise convex polygon poly.
func InConvexPolygon(p Point, poly []Point) bool {
	if len(poly) == 0 {
		return false
	}
	if len(poly) == 1 {
		return poly[0] == p
	}
	const eps = 1e-12
	for i := range poly {
		a, b := poly[i], poly[(i+1)%len(poly)]
		crossv := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
		if crossv < -eps {
			return false
		}
	}
	return true
}

func sortPoints(pts []Point) {
	less := func(a, b Point) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	}
	// Shell sort keeps this dependency-free of sort.Slice's reflection at
	// geometry inner-loop call sites; inputs are modest (k + candidates).
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(pts); i++ {
			tmp := pts[i]
			j := i
			for ; j >= gap && less(tmp, pts[j-gap]); j -= gap {
				pts[j] = pts[j-gap]
			}
			pts[j] = tmp
		}
	}
}
