package geom

import (
	"fmt"
	"math"
	"sort"
)

// PiecewiseLinear is a continuous piecewise-linear function over a closed
// domain [Breaks[0], Breaks[len-1]]. Segment i covers
// [Breaks[i], Breaks[i+1]] and evaluates Lines[i]. The φ>0 machinery uses
// it to represent the score of the k-th ranked tuple as the weight
// deviation x varies (the "lower envelope" of §6, Fig. 9).
type PiecewiseLinear struct {
	Breaks []float64
	Lines  []Line
}

// Domain returns the function's domain endpoints.
func (p PiecewiseLinear) Domain() (lo, hi float64) {
	return p.Breaks[0], p.Breaks[len(p.Breaks)-1]
}

// Eval evaluates the function at x, clamped to the domain.
func (p PiecewiseLinear) Eval(x float64) float64 {
	return p.segmentAt(x).Eval(x)
}

// segmentAt returns the line active at x (clamped to the domain).
func (p PiecewiseLinear) segmentAt(x float64) Line {
	n := len(p.Lines)
	if n == 0 {
		panic("geom: empty PiecewiseLinear")
	}
	i := sort.SearchFloat64s(p.Breaks, x) // first break >= x
	switch {
	case i <= 0:
		return p.Lines[0]
	case i >= len(p.Breaks):
		return p.Lines[n-1]
	default:
		return p.Lines[i-1]
	}
}

// SegmentIDAt returns the ID of the line active at x — for the envelope,
// the identity of the k-th ranked tuple at deviation x.
func (p PiecewiseLinear) SegmentIDAt(x float64) int { return p.segmentAt(x).ID }

// Truncate restricts the domain to [lo, hi] ⊆ current domain.
func (p PiecewiseLinear) Truncate(lo, hi float64) PiecewiseLinear {
	curLo, curHi := p.Domain()
	lo = math.Max(lo, curLo)
	hi = math.Min(hi, curHi)
	if lo > hi {
		lo = hi
	}
	var breaks []float64
	var lines []Line
	breaks = append(breaks, lo)
	for i := 0; i < len(p.Lines); i++ {
		segLo, segHi := p.Breaks[i], p.Breaks[i+1]
		if segHi <= lo || segLo >= hi {
			continue
		}
		lines = append(lines, p.Lines[i])
		breaks = append(breaks, math.Min(segHi, hi))
	}
	if len(lines) == 0 {
		lines = []Line{p.segmentAt(lo)}
		breaks = []float64{lo, hi}
	}
	breaks[len(breaks)-1] = hi
	return PiecewiseLinear{Breaks: breaks, Lines: lines}
}

// MinDiff returns the minimum of p(x) - l(x) over the domain. Because
// both functions are piecewise linear, the minimum is attained at a
// breakpoint or a domain endpoint.
func (p PiecewiseLinear) MinDiff(l Line) float64 {
	min := math.Inf(1)
	for _, x := range p.Breaks {
		if d := p.Eval(x) - l.Eval(x); d < min {
			min = d
		}
	}
	return min
}

// AboveLine reports whether p(x) >= l(x) over the entire domain; the
// termination test "threshold line does not intersect the lower
// envelope" of §6.
func (p PiecewiseLinear) AboveLine(l Line) bool { return p.MinDiff(l) >= 0 }

// FirstCrossingAbove returns the smallest x in the domain where
// l(x) > p(x), i.e. where the line climbs strictly above the envelope,
// and ok=false if it never does. This is the entry point of a candidate
// into the top-k result.
func (p PiecewiseLinear) FirstCrossingAbove(l Line) (float64, bool) {
	for i := 0; i < len(p.Lines); i++ {
		lo, hi := p.Breaks[i], p.Breaks[i+1]
		seg := p.Lines[i]
		dLo := l.Eval(lo) - seg.Eval(lo)
		dHi := l.Eval(hi) - seg.Eval(hi)
		if dLo > 0 {
			return lo, true
		}
		if dHi <= 0 {
			continue
		}
		// crosses inside (lo, hi]
		x, ok := l.IntersectX(seg)
		if !ok {
			continue
		}
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		return x, true
	}
	return 0, false
}

func (p PiecewiseLinear) String() string {
	return fmt.Sprintf("pwl{breaks=%v}", p.Breaks)
}

// validate checks structural invariants; used by tests.
func (p PiecewiseLinear) validate() error {
	if len(p.Breaks) != len(p.Lines)+1 {
		return fmt.Errorf("geom: %d breaks for %d lines", len(p.Breaks), len(p.Lines))
	}
	for i := 1; i < len(p.Breaks); i++ {
		if p.Breaks[i] < p.Breaks[i-1] {
			return fmt.Errorf("geom: breaks out of order at %d", i)
		}
	}
	return nil
}

// LowerEnvelope computes the pointwise minimum of lines over [xmin, xmax].
// With exactly k result tuples this is the score of the k-th ranked one —
// the initial result boundary of §6.
func LowerEnvelope(lines []Line, xmin, xmax float64) PiecewiseLinear {
	return KthEnvelope(lines, len(lines), xmin, xmax)
}

// UpperEnvelope computes the pointwise maximum of lines over [xmin, xmax].
func UpperEnvelope(lines []Line, xmin, xmax float64) PiecewiseLinear {
	return KthEnvelope(lines, 1, xmin, xmax)
}

// KthEnvelope computes the piecewise-linear function giving the k-th
// highest of lines (k=1 is the upper envelope, k=len(lines) the lower).
// It runs the arrangement sweep and records every x where the identity of
// the rank-k line changes. Complexity O((n + I) log n) with I the number
// of crossings in the window — ample for the k + O(φ) lines the
// immutable-region boundary tracks.
func KthEnvelope(lines []Line, k int, xmin, xmax float64) PiecewiseLinear {
	if len(lines) == 0 {
		panic("geom: KthEnvelope of no lines")
	}
	if k < 1 || k > len(lines) {
		panic(fmt.Sprintf("geom: rank %d out of range [1,%d]", k, len(lines)))
	}
	sw := NewSweep(lines, xmin, xmax)
	cur := lines[sw.Order()[k-1]]
	breaks := []float64{xmin}
	var segs []Line
	for {
		c, ok := sw.Next()
		if !ok {
			break
		}
		next := lines[sw.Order()[k-1]]
		if next != cur {
			breaks = append(breaks, c.X)
			segs = append(segs, cur)
			cur = next
		}
	}
	breaks = append(breaks, xmax)
	segs = append(segs, cur)
	return PiecewiseLinear{Breaks: breaks, Lines: segs}
}
