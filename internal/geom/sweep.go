package geom

import (
	"container/heap"
	"sort"
)

// Sweep enumerates the pairwise crossings of a set of lines in ascending
// x order without materializing all O(n²) intersections up front. It is
// the plane-sweep of §6 Phase 1: the caller stops after the first φ+1
// events. The implementation is the standard arrangement sweep: order the
// lines by value at the left end of the window, keep a priority queue of
// crossing events between lines adjacent in that order, and on each
// popped event swap the pair and schedule the new adjacencies.
type Sweep struct {
	lines []Line
	xmax  float64
	// order[r] is the index (into lines) of the line currently at rank r,
	// rank 0 being the highest value.
	order []int
	rank  []int // inverse of order
	ev    eventQueue
	lastX float64
}

// NewSweep prepares a sweep over (xmin, xmax). Lines are ranked at xmin;
// ties in value are broken by slope so that the order is correct
// immediately to the right of xmin (the overtaking line already counts as
// being above).
func NewSweep(lines []Line, xmin, xmax float64) *Sweep {
	s := &Sweep{lines: lines, xmax: xmax, lastX: xmin}
	n := len(lines)
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		la, lb := lines[s.order[a]], lines[s.order[b]]
		ya, yb := la.Eval(xmin), lb.Eval(xmin)
		if ya != yb {
			return ya > yb
		}
		return la.B > lb.B
	})
	s.rank = make([]int, n)
	for r, i := range s.order {
		s.rank[i] = r
	}
	heap.Init(&s.ev)
	for r := 0; r+1 < n; r++ {
		s.schedule(r)
	}
	return s
}

// schedule enqueues the crossing between ranks r and r+1, if it happens
// strictly after the current sweep position and before xmax.
func (s *Sweep) schedule(r int) {
	i, j := s.order[r], s.order[r+1]
	x, ok := s.lines[i].IntersectX(s.lines[j])
	if !ok || x <= s.lastX || x >= s.xmax {
		return
	}
	heap.Push(&s.ev, event{x: x, i: i, j: j})
}

// Next returns the next crossing in x order, or ok=false when the window
// is exhausted. The returned Crossing has I above J just before the
// crossing (I is overtaken by J at X).
func (s *Sweep) Next() (Crossing, bool) {
	for len(s.ev) > 0 {
		e := heap.Pop(&s.ev).(event)
		ri, rj := s.rank[e.i], s.rank[e.j]
		if rj != ri+1 {
			continue // stale event: the pair is no longer adjacent
		}
		s.lastX = e.x
		// swap ranks
		s.order[ri], s.order[rj] = e.j, e.i
		s.rank[e.i], s.rank[e.j] = rj, ri
		if ri > 0 {
			s.schedule(ri - 1)
		}
		if rj+1 < len(s.order) {
			s.schedule(rj)
		}
		return Crossing{X: e.x, I: e.i, J: e.j, RankAbove: ri}, true
	}
	return Crossing{}, false
}

// Order returns the current top-to-bottom ordering of line indices at the
// sweep position (immediately after the last returned crossing).
func (s *Sweep) Order() []int {
	out := make([]int, len(s.order))
	copy(out, s.order)
	return out
}

// FirstCrossings returns up to n pairwise crossings of lines within
// (xmin, xmax) in ascending x order. It is the "stop after the first φ+1
// intersections" primitive of §6 Phase 1.
func FirstCrossings(lines []Line, xmin, xmax float64, n int) []Crossing {
	sw := NewSweep(lines, xmin, xmax)
	var out []Crossing
	for len(out) < n {
		c, ok := sw.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out
}

type event struct {
	x    float64
	i, j int
}

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(a, b int) bool  { return q[a].x < q[b].x }
func (q eventQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
