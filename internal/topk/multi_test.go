package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/vec"
)

// weightVariants derives nq same-subspace weight variants of base.
func weightVariants(rng *rand.Rand, base vec.Query, nq int) []vec.Query {
	out := make([]vec.Query, nq)
	for i := range out {
		q := base.Clone()
		for j := range q.Weights {
			q.Weights[j] = 0.05 + 0.95*rng.Float64()
		}
		out[i] = q
	}
	return out
}

// TestMultiMatchesSolo: every member of a fused run gets exactly the
// ranked result a solo TA over the same index would produce — same ids,
// bit-identical scores — across random group sizes, subspaces and both
// probe policies. The solo runs double-check against the naive oracle.
func TestMultiMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 40; trial++ {
		cs := fixture.RandCase(rng, 30+rng.Intn(120), 3+rng.Intn(8), 2+rng.Intn(3), 1+rng.Intn(8))
		queries := weightVariants(rng, cs.Q, 1+rng.Intn(7))
		for _, policy := range []ProbePolicy{RoundRobin, BestList} {
			ix := lists.NewMemIndex(cs.Tuples, cs.M)
			multi := NewMulti(ix, queries, cs.K, policy)
			multi.Run()
			for mi, q := range queries {
				solo := New(lists.NewMemIndex(cs.Tuples, cs.M), q, cs.K, policy)
				solo.Run()
				want := solo.Result()
				got := multi.Result(mi)
				if len(got) != len(want) {
					t.Fatalf("trial %d %v member %d: %d results, want %d", trial, policy, mi, len(got), len(want))
				}
				for r := range want {
					if got[r].ID != want[r].ID || got[r].Score != want[r].Score {
						t.Fatalf("trial %d %v member %d rank %d: got (%d, %v), solo (%d, %v)",
							trial, policy, mi, r, got[r].ID, got[r].Score, want[r].ID, want[r].Score)
					}
					if got[r].NZMask != want[r].NZMask {
						t.Fatalf("trial %d member %d rank %d: NZMask %b vs %b", trial, mi, r, got[r].NZMask, want[r].NZMask)
					}
				}
				naive := TopKNaive(cs.Tuples, q, cs.K)
				for r := range naive {
					if got[r].ID != naive[r].ID || math.Abs(got[r].Score-naive[r].Score) > 1e-12 {
						t.Fatalf("trial %d member %d rank %d: diverges from naive oracle", trial, mi, r)
					}
				}
			}
		}
	}
}

// TestMultiMemberViewValid: each member view is a valid terminated TA
// state for its query — result ∪ candidates is exactly the shared
// scan's encounter set, every entry scored bit-exactly with the
// member's own weights, candidates ranked, and the k-th result score at
// or above the member's threshold at the final scan position (the TA
// termination certificate region computation relies on).
func TestMultiMemberViewValid(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 25; trial++ {
		cs := fixture.RandCase(rng, 40+rng.Intn(80), 4+rng.Intn(6), 2+rng.Intn(3), 2+rng.Intn(5))
		queries := weightVariants(rng, cs.Q, 2+rng.Intn(5))
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		multi := NewMulti(ix, queries, cs.K, BestList)
		multi.Run()
		encIDs := map[int]bool{}
		for _, sc := range multi.encountered {
			encIDs[sc.ID] = true
		}
		for mi, q := range queries {
			mr := multi.Member(mi)
			all := append(append([]Scored(nil), mr.Result()...), mr.Candidates()...)
			if len(all) != len(encIDs) {
				t.Fatalf("trial %d member %d: view holds %d tuples, scan encountered %d", trial, mi, len(all), len(encIDs))
			}
			for _, sc := range all {
				if !encIDs[sc.ID] {
					t.Fatalf("trial %d member %d: tuple %d not in the shared encounter set", trial, mi, sc.ID)
				}
				if want := vec.Dot(q.Weights, sc.Proj); sc.Score != want {
					t.Fatalf("trial %d member %d tuple %d: score %v, want member-weight %v", trial, mi, sc.ID, sc.Score, want)
				}
			}
			cands := mr.Candidates()
			for i := 1; i < len(cands); i++ {
				if cands[i].Score > cands[i-1].Score {
					t.Fatalf("trial %d member %d: candidates not ranked at %d", trial, mi, i)
				}
			}
			if res := mr.Result(); len(res) == cs.K {
				if thr := mr.ThresholdScore(); res[cs.K-1].Score < thr {
					t.Fatalf("trial %d member %d: kth score %v below final threshold %v", trial, mi, res[cs.K-1].Score, thr)
				}
			}
		}
	}
}

// TestMultiMemberResume: a member view's Resume pulls score with the
// member's weights and extend only that view — siblings and the shared
// run stay untouched.
func TestMultiMemberResume(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	cs := fixture.RandCase(rng, 200, 6, 3, 3)
	queries := weightVariants(rng, cs.Q, 3)
	ix := lists.NewMemIndex(cs.Tuples, cs.M)
	multi := NewMulti(ix, queries, cs.K, BestList)
	multi.Run()

	a, b := multi.Member(0), multi.Member(1)
	lenB := len(b.Candidates())
	for i := 0; i < 5; i++ {
		sc, ok := a.Resume()
		if !ok {
			break
		}
		if want := vec.Dot(queries[0].Weights, sc.Proj); sc.Score != want {
			t.Fatalf("resume pull %d scored %v, want member-weight score %v", i, sc.Score, want)
		}
	}
	if len(b.Candidates()) != lenB {
		t.Fatal("resuming member 0 grew member 1's candidate list")
	}
	// A fork of a member view resumes independently of its parent.
	f := a.ForkView()
	lenA := len(a.Candidates())
	if _, ok := f.Resume(); ok && len(a.Candidates()) != lenA {
		t.Fatal("forked view's resume mutated the member view")
	}
}

// TestMultiPanics pins the constructor's contract violations.
func TestMultiPanics(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty group", func() { NewMulti(ix, nil, k, BestList) })
	expectPanic("k<1", func() { NewMulti(ix, []vec.Query{q}, 0, BestList) })
	other := vec.MustQuery([]int{0}, []float64{0.5})
	expectPanic("dims mismatch", func() { NewMulti(ix, []vec.Query{q, other}, k, BestList) })
	expectPanic("Member before Run", func() { NewMulti(ix, []vec.Query{q}, k, BestList).Member(0) })
}
