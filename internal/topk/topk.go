// Package topk implements the random-access Threshold Algorithm (TA) of
// Fagin et al. as used by the paper (§2, Fig. 2): inverted lists are
// probed by sorted access; every newly encountered tuple is fetched in
// full by random access to compute its score; the search stops when the
// k-th best score reaches the threshold S(t,q) of the fictitious tuple
// t = 〈t1,…,tm〉. Unlike textbook TA, the run retains every encountered
// non-result tuple in the candidate list C(q) (decreasing score order),
// which is the raw material of immutable-region computation, and the
// state is resumable — Phase 3 of Scan/CPT continues the very same scan.
//
// A completed run can also be forked (Fork): each fork carries its own
// cursor clones and encountered-set copy, so several region computations
// (one per query dimension) can resume the scan independently and
// concurrently without observing each other's pulls. The View interface
// abstracts over the shared TA and its forks for that purpose.
package topk

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/vec"
)

// ProbePolicy selects which inverted list the next sorted access goes to.
type ProbePolicy int

const (
	// RoundRobin cycles through the query lists, the textbook strategy.
	RoundRobin ProbePolicy = iota
	// BestList probes the list with the largest qj·(next key) — the
	// Persin heuristic the paper's experiments use (§7.1).
	BestList
)

func (p ProbePolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case BestList:
		return "best-list"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Scored is an encountered tuple with its materialized query-subspace
// view: Score = S(d,q), Proj[i] = coordinate on q.Dims[i], and NZMask bit
// i set when Proj[i] > 0. The mask drives the C0/CH/CL partition of §5.1.
type Scored struct {
	ID     int
	Score  float64
	Proj   []float64
	NZMask uint64
}

// NonZero reports how many query dimensions the tuple is non-zero on.
func (s Scored) NonZero() int {
	n := 0
	for m := s.NZMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// View is the read/resume surface region computation needs from a TA
// run: the ranked result, the candidate list, and a resumable scan. It
// is implemented by *TA itself (the paper-literal shared scan, where
// later dimensions observe earlier dimensions' Phase-3 pulls) and by
// *Fork (an isolated per-dimension scan for deterministic parallel
// execution).
type View interface {
	Query() vec.Query
	K() int
	Index() lists.Index
	Result() []Scored
	Candidates() []Scored
	Resume() (Scored, bool)
	Thresholds() []float64
	ThresholdsInto(dst []float64)
	WasSortedAccessed(i, id int, val float64) bool
}

// scanState is the resumable position of a TA scan over the inverted
// lists: cursor positions, per-list consumption bookkeeping and the
// encountered-tuple set. It is the part of a run that Fork duplicates.
type scanState struct {
	ix     lists.Index
	q      vec.Query
	k      int
	policy ProbePolicy

	cursors  []lists.Cursor
	last     []storage.Posting // last consumed posting per query dim
	consumed []int
	rr       int // round-robin position

	seen           bitset // tuple id → already encountered
	sortedAccesses int

	// ctx, when non-nil, is polled every ctxCheckStride sorted accesses;
	// once it is cancelled the scan refuses further work (rawStep reports
	// exhaustion) and ctxErr records why. Forks inherit both fields, so
	// cancelling the query stops every per-dimension continuation too.
	ctx    context.Context
	ctxErr error
}

// ctxCheckStride is how often (in sorted accesses) the scan polls its
// context: ctx.Err may take a lock, while one sorted access is a few
// nanoseconds, so polling each step would dominate the hot loop.
const ctxCheckStride = 256

// bitset is a fixed-size bit array over tuple ids. One bit per tuple
// keeps the per-query footprint at n/8 bytes — the encountered set is
// cloned per Fork, so compactness matters at large n.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// clone deep-copies the scan position; cursors are cloned so the copy
// advances independently.
func (s *scanState) clone() scanState {
	cp := *s
	cp.cursors = make([]lists.Cursor, len(s.cursors))
	for i, c := range s.cursors {
		cp.cursors[i] = c.Clone()
	}
	cp.last = slices.Clone(s.last)
	cp.consumed = slices.Clone(s.consumed)
	cp.seen = slices.Clone(s.seen)
	return cp
}

// Query returns the query this scan answers.
func (s *scanState) Query() vec.Query { return s.q }

// K returns the requested result size.
func (s *scanState) K() int { return s.k }

// Index returns the underlying index.
func (s *scanState) Index() lists.Index { return s.ix }

// Thresholds returns the current per-query-dimension sorting keys tj (the
// key of the next unconsumed posting; 0 for an exhausted list), as a
// slice parallel to Query().Dims.
func (s *scanState) Thresholds() []float64 {
	t := make([]float64, len(s.cursors))
	s.ThresholdsInto(t)
	return t
}

// ThresholdsInto writes the current thresholds into dst (length qlen);
// the allocation-free variant Phase-3 loops call once per resume check.
func (s *scanState) ThresholdsInto(dst []float64) {
	for i, c := range s.cursors {
		dst[i] = 0
		if p, ok := c.Peek(); ok {
			dst[i] = p.Val
		}
	}
}

// ThresholdScore returns S(t,q) = Σ qj·tj for the current thresholds.
func (s *scanState) ThresholdScore() float64 {
	sum := 0.0
	for i, c := range s.cursors {
		if p, ok := c.Peek(); ok {
			sum += s.q.Weights[i] * p.Val
		}
	}
	return sum
}

// SortedAccesses reports how many sorted accesses have been performed.
func (s *scanState) SortedAccesses() int { return s.sortedAccesses }

// Err reports why the scan refuses to advance — the context-cancellation
// error observed by a sorted access — or nil while the scan is live.
func (s *scanState) Err() error { return s.ctxErr }

// Depth reports how many postings have been consumed from the i-th query
// list.
func (s *scanState) Depth(i int) int { return s.consumed[i] }

// pick selects the next list to probe, or -1 when all are exhausted.
func (s *scanState) pick() int {
	switch s.policy {
	case BestList:
		best, bestVal := -1, -1.0
		for i, c := range s.cursors {
			if p, ok := c.Peek(); ok {
				if v := s.q.Weights[i] * p.Val; v > bestVal {
					best, bestVal = i, v
				}
			}
		}
		return best
	default:
		for range s.cursors {
			i := s.rr
			s.rr = (s.rr + 1) % len(s.cursors)
			if _, ok := s.cursors[i].Peek(); ok {
				return i
			}
		}
		return -1
	}
}

// rawStep performs one sorted access. It returns the consumed posting,
// the probed list index, whether the tuple is newly encountered, and
// ok=false when every list is exhausted.
func (s *scanState) rawStep() (p storage.Posting, list int, isNew, ok bool) {
	if s.ctxErr != nil {
		return storage.Posting{}, -1, false, false
	}
	if s.ctx != nil && s.sortedAccesses%ctxCheckStride == 0 {
		if err := s.ctx.Err(); err != nil {
			s.ctxErr = err
			return storage.Posting{}, -1, false, false
		}
	}
	i := s.pick()
	if i < 0 {
		return storage.Posting{}, -1, false, false
	}
	p, _ = s.cursors[i].Next()
	s.sortedAccesses++
	s.last[i] = p
	s.consumed[i]++
	if p.ID < 0 || p.ID>>6 >= len(s.seen) {
		// Keep a descriptive failure for corrupt list files; the bitset
		// would otherwise die with an anonymous bounds panic.
		panic(fmt.Sprintf("topk: posting id %d out of range [0,%d) (corrupt list?)", p.ID, len(s.seen)*64))
	}
	if s.seen.test(p.ID) {
		return p, i, false, true
	}
	s.seen.set(p.ID)
	return p, i, true, true
}

// WasSortedAccessed reports whether tuple id's entry in the i-th query
// list was consumed by sorted access — the Phase-3 test that decides
// whether the upper bound needs list resumption at all (§4). val must be
// the tuple's coordinate on that dimension.
func (s *scanState) WasSortedAccessed(i int, id int, val float64) bool {
	if val <= 0 {
		return false // zero coordinates have no posting
	}
	if s.consumed[i] == 0 {
		return false
	}
	if s.consumed[i] >= s.ix.ListLen(s.q.Dims[i]) {
		return true
	}
	last := s.last[i]
	if val != last.Val {
		return val > last.Val
	}
	return id <= last.ID // lists break value ties by ascending id
}

// score materializes the Scored view of a newly encountered tuple,
// carving its projection out of the arena. The score is computed from
// the dense projection through the unrolled dot kernel rather than the
// sparse merge; the two are bit-identical (vec.TestDotMatchesSparseScore
// pins it) because the unmatched dimensions contribute exact +0.0 terms
// to a running sum that never goes negative.
func (s *scanState) score(id int, arena *ProjArena) Scored {
	d := s.ix.Tuple(id)
	sc := Scored{ID: id, Proj: arena.Alloc()}
	s.q.ProjectInto(d, sc.Proj)
	sc.Score = vec.Dot(s.q.Weights, sc.Proj)
	for b, v := range sc.Proj {
		if v > 0 {
			sc.NZMask |= 1 << uint(b)
		}
	}
	return sc
}

// ProjArena hands out qlen-sized projection slices carved from larger
// chunks, replacing one heap allocation per projected tuple with one
// per arenaChunkTuples tuples. Slices remain valid after further allocs
// (chunks are never reallocated, only replaced). The zero value with
// Qlen set is ready to use; core shares this type for its Phase-2
// evaluation projections.
type ProjArena struct {
	Qlen  int
	chunk []float64
}

const arenaChunkTuples = 128

// Alloc carves out one zeroed qlen-sized slice.
func (a *ProjArena) Alloc() []float64 {
	if a.Qlen == 0 {
		return nil
	}
	if len(a.chunk)+a.Qlen > cap(a.chunk) {
		a.chunk = make([]float64, 0, arenaChunkTuples*a.Qlen)
	}
	n := len(a.chunk)
	a.chunk = a.chunk[:n+a.Qlen]
	return a.chunk[n : n+a.Qlen : n+a.Qlen]
}

// TA is a resumable threshold-algorithm run.
type TA struct {
	scanState
	arena ProjArena

	encountered []Scored
	topScores   []float64 // min-heap of the k best scores seen so far

	result []Scored
	cands  []Scored
	done   bool

	trace func(TraceStep)
}

// TraceStep is one sorted access in a TA execution — the rows of the
// paper's Fig. 2 trace. Snapshot fields are only filled when the access
// encountered a new tuple.
type TraceStep struct {
	Step           int
	QPos           int // index into Query().Dims of the probed list
	Dim            int // the probed dimension
	Tuple          int // tuple id encountered; -1 for an already-seen posting
	Score          float64
	Thresholds     []float64
	ThresholdScore float64
	ResultIDs      []int // tentative top-k, ranked
	CandidateIDs   []int // tentative candidates, by decreasing score
}

// SetTrace installs a per-sorted-access callback. Tracing materializes a
// ranked snapshot on every new tuple, so it is meant for demonstrations
// and tests, not benchmarks. Must be called before Run.
func (ta *TA) SetTrace(fn func(TraceStep)) { ta.trace = fn }

// emitTrace builds and delivers the snapshot after a sorted access.
func (ta *TA) emitTrace(qpos, tuple int, score float64) {
	ts := TraceStep{
		Step:           ta.sortedAccesses,
		QPos:           qpos,
		Dim:            ta.q.Dims[qpos],
		Tuple:          tuple,
		Score:          score,
		Thresholds:     ta.Thresholds(),
		ThresholdScore: ta.ThresholdScore(),
	}
	if tuple >= 0 {
		ranked := make([]Scored, len(ta.encountered))
		copy(ranked, ta.encountered)
		sortScored(ranked)
		cut := ta.k
		if cut > len(ranked) {
			cut = len(ranked)
		}
		for _, r := range ranked[:cut] {
			ts.ResultIDs = append(ts.ResultIDs, r.ID)
		}
		for _, r := range ranked[cut:] {
			ts.CandidateIDs = append(ts.CandidateIDs, r.ID)
		}
	}
	ta.trace(ts)
}

// New prepares a TA run of query q over ix for the top-k result. qlen
// must not exceed 64 (the partition mask is a uint64).
func New(ix lists.Index, q vec.Query, k int, policy ProbePolicy) *TA {
	if q.Len() > 64 {
		panic(fmt.Sprintf("topk: qlen %d exceeds 64", q.Len()))
	}
	if k < 1 {
		panic(fmt.Sprintf("topk: k=%d", k))
	}
	ta := &TA{
		scanState: scanState{
			ix:       ix,
			q:        q,
			k:        k,
			policy:   policy,
			cursors:  make([]lists.Cursor, q.Len()),
			last:     make([]storage.Posting, q.Len()),
			consumed: make([]int, q.Len()),
			seen:     newBitset(ix.NumTuples()),
		},
		arena: ProjArena{Qlen: q.Len()},
	}
	for i, dim := range q.Dims {
		ta.cursors[i] = ix.Cursor(dim)
	}
	return ta
}

// step performs one sorted access and, if it encounters a new tuple, the
// corresponding random access. It returns the new Scored tuple (nil if
// the tuple was already seen) and ok=false when every list is exhausted.
func (ta *TA) step() (*Scored, bool) {
	p, i, isNew, ok := ta.rawStep()
	if !ok {
		return nil, false
	}
	if !isNew {
		if ta.trace != nil {
			ta.emitTrace(i, -1, 0)
		}
		return nil, true
	}
	sc := ta.score(p.ID, &ta.arena)
	ta.encountered = append(ta.encountered, sc)
	ta.offerScore(sc.Score)
	if ta.trace != nil {
		ta.emitTrace(i, sc.ID, sc.Score)
	}
	return &ta.encountered[len(ta.encountered)-1], true
}

// offerScore maintains the min-heap of the k highest scores seen.
func (ta *TA) offerScore(s float64) {
	ta.topScores = offerHeap(ta.topScores, ta.k, s)
}

// offerHeap pushes s into the k-bounded min-heap h of the highest
// scores seen and returns the updated heap. Shared by TA and the fused
// Multi scan (one heap per member there).
func offerHeap(h []float64, k int, s float64) []float64 {
	if len(h) < k {
		h = append(h, s)
		// sift up
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p] <= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return h
	}
	if s <= h[0] {
		return h
	}
	h[0] = s
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l] < h[min] {
			min = l
		}
		if r < len(h) && h[r] < h[min] {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return h
}

// RunContext executes TA to termination under a context. A nil ctx (or
// context.Background()) is never cancelled and behaves exactly like Run.
// When the context is cancelled mid-scan the run stops within
// ctxCheckStride sorted accesses and the returned error is non-nil; the
// TA's result and candidate accessors then hold a truncated, meaningless
// snapshot and must not be consulted.
func (ta *TA) RunContext(ctx context.Context) error {
	if ctx != nil && ta.ctx == nil {
		ta.ctx = ctx
	}
	ta.Run()
	return ta.ctxErr
}

// Run executes TA to termination and materializes the ranked result R(q)
// and candidate list C(q).
func (ta *TA) Run() {
	if ta.done {
		return
	}
	for {
		// Termination: k-th tentative score ≥ threshold.
		if len(ta.encountered) >= ta.k {
			kth := ta.kthBest()
			if kth >= ta.ThresholdScore() {
				break
			}
		}
		if _, ok := ta.step(); !ok {
			break // dataset exhausted
		}
	}
	ranked := make([]Scored, len(ta.encountered))
	copy(ranked, ta.encountered)
	sortScored(ranked)
	cut := ta.k
	if cut > len(ranked) {
		cut = len(ranked)
	}
	ta.result = ranked[:cut]
	ta.cands = ranked[cut:]
	ta.done = true
}

// kthBest returns the k-th highest score among encountered tuples,
// maintained incrementally in the topScores min-heap.
func (ta *TA) kthBest() float64 { return ta.topScores[0] }

// Result returns the ranked top-k list R(q). Run must have completed.
func (ta *TA) Result() []Scored {
	ta.mustBeDone("Result")
	return ta.result
}

// Candidates returns C(q), every encountered non-result tuple in
// decreasing score order.
func (ta *TA) Candidates() []Scored {
	ta.mustBeDone("Candidates")
	return ta.cands
}

// Resume continues the terminated scan until it encounters one new
// (previously unseen) tuple, which Phase 3 of the region algorithms
// evaluates and appends to C(q). ok=false when the lists are exhausted.
func (ta *TA) Resume() (Scored, bool) {
	ta.mustBeDone("Resume")
	for {
		sc, ok := ta.step()
		if !ok {
			return Scored{}, false
		}
		if sc != nil {
			ta.cands = append(ta.cands, *sc)
			return *sc, true
		}
	}
}

// Fork returns an independent resumable view of the completed run: its
// own cursor clones, encountered set, and candidate-list copy. Resuming
// a fork never mutates the parent TA or any sibling fork, so one fork
// per query dimension lets Phase 3 of each dimension pull down its lists
// concurrently and deterministically (every fork sees exactly the
// post-Run state, regardless of scheduling). Forked sorted accesses are
// NOT reported to a SetTrace callback — the callback is not safe for
// concurrent forks — so Fig. 2 traces only cover the shared scan.
func (ta *TA) Fork() *Fork {
	ta.mustBeDone("Fork")
	return &Fork{
		scanState: ta.scanState.clone(),
		arena:     ProjArena{Qlen: ta.q.Len()},
		result:    ta.result,
		cands:     slices.Clone(ta.cands),
	}
}

// ForkView is Fork behind the View interface — the shape region
// computation (core.Runner) consumes for its per-dimension isolation.
func (ta *TA) ForkView() View { return ta.Fork() }

// Fork is an isolated resumable continuation of a completed TA run; see
// TA.Fork. It implements View.
type Fork struct {
	scanState
	arena  ProjArena
	result []Scored
	cands  []Scored
}

// Result returns the ranked top-k of the parent run (shared, read-only).
func (f *Fork) Result() []Scored { return f.result }

// Candidates returns this fork's view of C(q): the parent's candidates
// at fork time plus this fork's own Resume pulls.
func (f *Fork) Candidates() []Scored { return f.cands }

// Resume continues this fork's scan until one new tuple is encountered,
// appending it to the fork's candidate list. ok=false at exhaustion.
func (f *Fork) Resume() (Scored, bool) {
	for {
		p, _, isNew, ok := f.rawStep()
		if !ok {
			return Scored{}, false
		}
		if isNew {
			sc := f.score(p.ID, &f.arena)
			f.cands = append(f.cands, sc)
			return sc, true
		}
	}
}

func (ta *TA) mustBeDone(op string) {
	if !ta.done {
		panic("topk: " + op + " before Run")
	}
}

// sortScored orders by descending score, ties by ascending id, giving
// deterministic ranked lists.
func sortScored(s []Scored) {
	slices.SortFunc(s, func(a, b Scored) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
}

// TopKNaive computes the exact ranked top-k by scoring every tuple — the
// correctness oracle for TA and the reference the brute-force region
// oracle builds on.
func TopKNaive(tuples []vec.Sparse, q vec.Query, k int) []Scored {
	all := make([]Scored, 0, len(tuples))
	for id, d := range tuples {
		sc := Scored{ID: id, Score: q.Score(d), Proj: q.Project(d)}
		for b, v := range sc.Proj {
			if v > 0 {
				sc.NZMask |= 1 << uint(b)
			}
		}
		all = append(all, sc)
	}
	sortScored(all)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
