// Package topk implements the random-access Threshold Algorithm (TA) of
// Fagin et al. as used by the paper (§2, Fig. 2): inverted lists are
// probed by sorted access; every newly encountered tuple is fetched in
// full by random access to compute its score; the search stops when the
// k-th best score reaches the threshold S(t,q) of the fictitious tuple
// t = 〈t1,…,tm〉. Unlike textbook TA, the run retains every encountered
// non-result tuple in the candidate list C(q) (decreasing score order),
// which is the raw material of immutable-region computation, and the
// state is resumable — Phase 3 of Scan/CPT continues the very same scan.
package topk

import (
	"fmt"
	"sort"

	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/vec"
)

// ProbePolicy selects which inverted list the next sorted access goes to.
type ProbePolicy int

const (
	// RoundRobin cycles through the query lists, the textbook strategy.
	RoundRobin ProbePolicy = iota
	// BestList probes the list with the largest qj·(next key) — the
	// Persin heuristic the paper's experiments use (§7.1).
	BestList
)

func (p ProbePolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case BestList:
		return "best-list"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Scored is an encountered tuple with its materialized query-subspace
// view: Score = S(d,q), Proj[i] = coordinate on q.Dims[i], and NZMask bit
// i set when Proj[i] > 0. The mask drives the C0/CH/CL partition of §5.1.
type Scored struct {
	ID     int
	Score  float64
	Proj   []float64
	NZMask uint64
}

// NonZero reports how many query dimensions the tuple is non-zero on.
func (s Scored) NonZero() int {
	n := 0
	for m := s.NZMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// TA is a resumable threshold-algorithm run.
type TA struct {
	ix     lists.Index
	q      vec.Query
	k      int
	policy ProbePolicy

	cursors   []lists.Cursor
	last      []storage.Posting // last consumed posting per query dim
	consumed  []int
	exhausted []bool
	rr        int // round-robin position

	seen        map[int]struct{}
	encountered []Scored
	topScores   []float64 // min-heap of the k best scores seen so far

	result []Scored
	cands  []Scored
	done   bool

	sortedAccesses int
	trace          func(TraceStep)
}

// TraceStep is one sorted access in a TA execution — the rows of the
// paper's Fig. 2 trace. Snapshot fields are only filled when the access
// encountered a new tuple.
type TraceStep struct {
	Step           int
	QPos           int // index into Query().Dims of the probed list
	Dim            int // the probed dimension
	Tuple          int // tuple id encountered; -1 for an already-seen posting
	Score          float64
	Thresholds     []float64
	ThresholdScore float64
	ResultIDs      []int // tentative top-k, ranked
	CandidateIDs   []int // tentative candidates, by decreasing score
}

// SetTrace installs a per-sorted-access callback. Tracing materializes a
// ranked snapshot on every new tuple, so it is meant for demonstrations
// and tests, not benchmarks. Must be called before Run.
func (ta *TA) SetTrace(fn func(TraceStep)) { ta.trace = fn }

// emitTrace builds and delivers the snapshot after a sorted access.
func (ta *TA) emitTrace(qpos, tuple int, score float64) {
	ts := TraceStep{
		Step:           ta.sortedAccesses,
		QPos:           qpos,
		Dim:            ta.q.Dims[qpos],
		Tuple:          tuple,
		Score:          score,
		Thresholds:     ta.Thresholds(),
		ThresholdScore: ta.ThresholdScore(),
	}
	if tuple >= 0 {
		ranked := make([]Scored, len(ta.encountered))
		copy(ranked, ta.encountered)
		sortScored(ranked)
		cut := ta.k
		if cut > len(ranked) {
			cut = len(ranked)
		}
		for _, r := range ranked[:cut] {
			ts.ResultIDs = append(ts.ResultIDs, r.ID)
		}
		for _, r := range ranked[cut:] {
			ts.CandidateIDs = append(ts.CandidateIDs, r.ID)
		}
	}
	ta.trace(ts)
}

// New prepares a TA run of query q over ix for the top-k result. qlen
// must not exceed 64 (the partition mask is a uint64).
func New(ix lists.Index, q vec.Query, k int, policy ProbePolicy) *TA {
	if q.Len() > 64 {
		panic(fmt.Sprintf("topk: qlen %d exceeds 64", q.Len()))
	}
	if k < 1 {
		panic(fmt.Sprintf("topk: k=%d", k))
	}
	ta := &TA{
		ix:        ix,
		q:         q,
		k:         k,
		policy:    policy,
		cursors:   make([]lists.Cursor, q.Len()),
		last:      make([]storage.Posting, q.Len()),
		consumed:  make([]int, q.Len()),
		exhausted: make([]bool, q.Len()),
		seen:      make(map[int]struct{}),
	}
	for i, dim := range q.Dims {
		ta.cursors[i] = ix.Cursor(dim)
	}
	return ta
}

// Query returns the query this run answers.
func (ta *TA) Query() vec.Query { return ta.q }

// K returns the requested result size.
func (ta *TA) K() int { return ta.k }

// Index returns the underlying index.
func (ta *TA) Index() lists.Index { return ta.ix }

// Thresholds returns the current per-query-dimension sorting keys tj (the
// key of the next unconsumed posting; 0 for an exhausted list), as a
// slice parallel to Query().Dims.
func (ta *TA) Thresholds() []float64 {
	t := make([]float64, len(ta.cursors))
	for i, c := range ta.cursors {
		if p, ok := c.Peek(); ok {
			t[i] = p.Val
		}
	}
	return t
}

// ThresholdScore returns S(t,q) = Σ qj·tj for the current thresholds.
func (ta *TA) ThresholdScore() float64 {
	s := 0.0
	for i, c := range ta.cursors {
		if p, ok := c.Peek(); ok {
			s += ta.q.Weights[i] * p.Val
		}
	}
	return s
}

// SortedAccesses reports how many sorted accesses have been performed.
func (ta *TA) SortedAccesses() int { return ta.sortedAccesses }

// Depth reports how many postings have been consumed from the i-th query
// list.
func (ta *TA) Depth(i int) int { return ta.consumed[i] }

// pick selects the next list to probe, or -1 when all are exhausted.
func (ta *TA) pick() int {
	switch ta.policy {
	case BestList:
		best, bestVal := -1, -1.0
		for i, c := range ta.cursors {
			if p, ok := c.Peek(); ok {
				if v := ta.q.Weights[i] * p.Val; v > bestVal {
					best, bestVal = i, v
				}
			}
		}
		return best
	default:
		for range ta.cursors {
			i := ta.rr
			ta.rr = (ta.rr + 1) % len(ta.cursors)
			if _, ok := ta.cursors[i].Peek(); ok {
				return i
			}
		}
		return -1
	}
}

// step performs one sorted access and, if it encounters a new tuple, the
// corresponding random access. It returns the new Scored tuple (nil if
// the tuple was already seen) and ok=false when every list is exhausted.
func (ta *TA) step() (*Scored, bool) {
	i := ta.pick()
	if i < 0 {
		return nil, false
	}
	p, _ := ta.cursors[i].Next()
	ta.sortedAccesses++
	ta.last[i] = p
	ta.consumed[i]++
	if _, dup := ta.seen[p.ID]; dup {
		if ta.trace != nil {
			ta.emitTrace(i, -1, 0)
		}
		return nil, true
	}
	ta.seen[p.ID] = struct{}{}
	d := ta.ix.Tuple(p.ID)
	sc := Scored{ID: p.ID, Score: ta.q.Score(d), Proj: ta.q.Project(d)}
	for b, v := range sc.Proj {
		if v > 0 {
			sc.NZMask |= 1 << uint(b)
		}
	}
	ta.encountered = append(ta.encountered, sc)
	ta.offerScore(sc.Score)
	if ta.trace != nil {
		ta.emitTrace(i, sc.ID, sc.Score)
	}
	return &ta.encountered[len(ta.encountered)-1], true
}

// offerScore maintains the min-heap of the k highest scores seen.
func (ta *TA) offerScore(s float64) {
	h := ta.topScores
	if len(h) < ta.k {
		h = append(h, s)
		// sift up
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p] <= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		ta.topScores = h
		return
	}
	if s <= h[0] {
		return
	}
	h[0] = s
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l] < h[min] {
			min = l
		}
		if r < len(h) && h[r] < h[min] {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Run executes TA to termination and materializes the ranked result R(q)
// and candidate list C(q).
func (ta *TA) Run() {
	if ta.done {
		return
	}
	for {
		// Termination: k-th tentative score ≥ threshold.
		if len(ta.encountered) >= ta.k {
			kth := ta.kthBest()
			if kth >= ta.ThresholdScore() {
				break
			}
		}
		if _, ok := ta.step(); !ok {
			break // dataset exhausted
		}
	}
	ranked := make([]Scored, len(ta.encountered))
	copy(ranked, ta.encountered)
	sortScored(ranked)
	cut := ta.k
	if cut > len(ranked) {
		cut = len(ranked)
	}
	ta.result = ranked[:cut]
	ta.cands = ranked[cut:]
	ta.done = true
}

// kthBest returns the k-th highest score among encountered tuples,
// maintained incrementally in the topScores min-heap.
func (ta *TA) kthBest() float64 { return ta.topScores[0] }

// Result returns the ranked top-k list R(q). Run must have completed.
func (ta *TA) Result() []Scored {
	ta.mustBeDone("Result")
	return ta.result
}

// Candidates returns C(q), every encountered non-result tuple in
// decreasing score order.
func (ta *TA) Candidates() []Scored {
	ta.mustBeDone("Candidates")
	return ta.cands
}

// Resume continues the terminated scan until it encounters one new
// (previously unseen) tuple, which Phase 3 of the region algorithms
// evaluates and appends to C(q). ok=false when the lists are exhausted.
func (ta *TA) Resume() (Scored, bool) {
	ta.mustBeDone("Resume")
	for {
		sc, ok := ta.step()
		if !ok {
			return Scored{}, false
		}
		if sc != nil {
			ta.cands = append(ta.cands, *sc)
			return *sc, true
		}
	}
}

// WasSortedAccessed reports whether tuple id's entry in the i-th query
// list was consumed by sorted access — the Phase-3 test that decides
// whether the upper bound needs list resumption at all (§4). val must be
// the tuple's coordinate on that dimension.
func (ta *TA) WasSortedAccessed(i int, id int, val float64) bool {
	if val <= 0 {
		return false // zero coordinates have no posting
	}
	if ta.consumed[i] == 0 {
		return false
	}
	if ta.consumed[i] >= ta.ix.ListLen(ta.q.Dims[i]) {
		return true
	}
	last := ta.last[i]
	if val != last.Val {
		return val > last.Val
	}
	return id <= last.ID // lists break value ties by ascending id
}

func (ta *TA) mustBeDone(op string) {
	if !ta.done {
		panic("topk: " + op + " before Run")
	}
}

// sortScored orders by descending score, ties by ascending id, giving
// deterministic ranked lists.
func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
}

// TopKNaive computes the exact ranked top-k by scoring every tuple — the
// correctness oracle for TA and the reference the brute-force region
// oracle builds on.
func TopKNaive(tuples []vec.Sparse, q vec.Query, k int) []Scored {
	all := make([]Scored, 0, len(tuples))
	for id, d := range tuples {
		sc := Scored{ID: id, Score: q.Score(d), Proj: q.Project(d)}
		for b, v := range sc.Proj {
			if v > 0 {
				sc.NZMask |= 1 << uint(b)
			}
		}
		all = append(all, sc)
	}
	sortScored(all)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
