// Fused multi-query TA: several queries over the SAME subspace (equal
// Dims) and the same k share one scan. Sorted accesses, the
// encountered-tuple bitset and the random-access tuple fetches are paid
// once for the whole group; only the scoring fans out, as one batched
// dot product (vec.DotBatch) over the flat member-weight matrix per
// encountered tuple. The scan is steered by the per-dimension MAXIMUM
// member weight and runs until every member's individual termination
// test (k-th tentative score ≥ that member's threshold S(t,q_m))
// passes, so each member's top-k carries the full TA guarantee.
//
// A member's view of the run is a valid terminated TA state for its
// query: the ranked result carries the full TA guarantee (tuples
// encountered after the member's own termination point were bounded by
// its threshold, so they rank below its k-th score), and the candidate
// list is exactly the shared scan's encounter set outside the top-k,
// scored with the member's weights. The encounter set follows the
// GROUP's probe trajectory, so it generally differs from what the
// member's solo scan would have collected — the same freedom the
// round-robin/best-list policy knob already exercises — and region
// computation, which is exact for any valid terminated state, produces
// identical regions either way (the engine's batch-vs-singles property
// test pins this end to end).
package topk

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/vec"
)

// Multi is a fused TA run over a group of same-subspace, same-k
// queries. Run/RunContext executes the shared scan; Member then hands
// out per-member resumable views for region computation.
type Multi struct {
	scan    scanState // q = {Dims, per-dim max weight}: probe steering only
	arena   ProjArena
	queries []vec.Query
	flatW   []float64 // len(queries)×qlen member weight rows

	encountered []Scored  // shared: ID/Proj/NZMask; Score is per-member
	scores      []float64 // encounter-major: scores[e*len(queries)+m]
	heaps       [][]float64
	memDone     []bool

	results [][]Scored
	cands   [][]Scored
	done    bool
}

// NewMulti prepares a fused run. All queries must share the identical
// (sorted) dimension set; weights may differ freely. Panics mirror New:
// empty group, qlen > 64, k < 1, or a dimension-set mismatch.
func NewMulti(ix lists.Index, queries []vec.Query, k int, policy ProbePolicy) *Multi {
	if len(queries) == 0 {
		panic("topk: empty fused group")
	}
	base := queries[0]
	if base.Len() > 64 {
		panic(fmt.Sprintf("topk: qlen %d exceeds 64", base.Len()))
	}
	if k < 1 {
		panic(fmt.Sprintf("topk: k=%d", k))
	}
	qlen := base.Len()
	wmax := make([]float64, qlen)
	flatW := make([]float64, 0, len(queries)*qlen)
	for _, q := range queries {
		if !slices.Equal(q.Dims, base.Dims) {
			panic("topk: fused queries must share the dimension set")
		}
		for j, w := range q.Weights {
			if w > wmax[j] {
				wmax[j] = w
			}
		}
		flatW = append(flatW, q.Weights...)
	}
	m := &Multi{
		scan: scanState{
			ix: ix,
			// Steering weights: probing the list maximizing wmax_j·t_j
			// drains every member's threshold fastest; the scan's q is
			// never used for scoring or projection beyond its Dims.
			q:        vec.Query{Dims: base.Dims, Weights: wmax},
			k:        k,
			policy:   policy,
			cursors:  make([]lists.Cursor, qlen),
			last:     make([]storage.Posting, qlen),
			consumed: make([]int, qlen),
			seen:     newBitset(ix.NumTuples()),
		},
		arena:   ProjArena{Qlen: qlen},
		queries: queries,
		flatW:   flatW,
		heaps:   make([][]float64, len(queries)),
		memDone: make([]bool, len(queries)),
	}
	for i, dim := range base.Dims {
		m.scan.cursors[i] = ix.Cursor(dim)
	}
	return m
}

// termCheckStride is how often (in sorted accesses) the fused scan runs
// the whole group's termination test; see Run.
const termCheckStride = 16

// RunContext executes the fused scan to termination under a context,
// with the same cancellation contract as TA.RunContext.
func (m *Multi) RunContext(ctx context.Context) error {
	if ctx != nil && m.scan.ctx == nil {
		m.scan.ctx = ctx
	}
	m.Run()
	return m.scan.ctxErr
}

// Run executes the fused scan until every member has individually
// terminated (or the lists are exhausted) and materializes each
// member's ranked result and candidate list.
func (m *Multi) Run() {
	if m.done {
		return
	}
	nq := len(m.queries)
	qlen := m.scan.q.Len()
	thrVec := make([]float64, qlen)
	memThr := make([]float64, nq)
	scoreBuf := make([]float64, nq)
	for step := 0; ; step++ {
		// The group termination test costs nq×qlen flops (one batched
		// dot over the threshold vector), against a solo TA's qlen — so
		// it runs every termCheckStride accesses instead of every one.
		// The scan may overshoot by up to stride-1 accesses, which only
		// deepens the (still valid) terminated state; thresholds fall
		// and k-th scores rise monotonically, so no satisfaction is lost.
		if step%termCheckStride == 0 && m.allSatisfied(thrVec, memThr) {
			break
		}
		p, _, isNew, ok := m.scan.rawStep()
		if !ok {
			break // dataset exhausted (or context canceled)
		}
		if !isNew {
			continue
		}
		// One random access and one projection serve every member; only
		// the scores fan out, through the batched kernel. Each DotBatch
		// row is bit-identical to the member's solo vec.Dot (the batch
		// kernel gives every output its own accumulator).
		d := m.scan.ix.Tuple(p.ID)
		sc := Scored{ID: p.ID, Proj: m.arena.Alloc()}
		m.scan.q.ProjectInto(d, sc.Proj)
		for b, v := range sc.Proj {
			if v > 0 {
				sc.NZMask |= 1 << uint(b)
			}
		}
		vec.DotBatch(m.flatW, sc.Proj, scoreBuf)
		m.encountered = append(m.encountered, sc)
		m.scores = append(m.scores, scoreBuf...)
		for mi := 0; mi < nq; mi++ {
			if !m.memDone[mi] {
				m.heaps[mi] = offerHeap(m.heaps[mi], m.scan.k, scoreBuf[mi])
			}
		}
	}
	// Materialization is lazy and per member: Result needs only a
	// k-selection over the encounter set (O(E), the common case for
	// fused ranked queries), while Member — the region-computation
	// entry — additionally ranks the full candidate tail.
	m.results = make([][]Scored, nq)
	m.cands = make([][]Scored, nq)
	m.done = true
}

// selectTopK extracts member mi's ranked top-k from the encounter set
// by bounded insertion — one comparison per encounter in the common
// case — instead of sorting all E entries per member.
func (m *Multi) selectTopK(mi int) []Scored {
	nq := len(m.queries)
	k := m.scan.k
	best := make([]Scored, 0, k+1)
	for e, sc := range m.encountered {
		sc.Score = m.scores[e*nq+mi]
		if len(best) == k {
			last := best[k-1]
			if sc.Score < last.Score || (sc.Score == last.Score && sc.ID > last.ID) {
				continue
			}
		}
		lo, hi := 0, len(best)
		for lo < hi {
			mid := (lo + hi) / 2
			if best[mid].Score > sc.Score || (best[mid].Score == sc.Score && best[mid].ID < sc.ID) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		best = append(best, Scored{})
		copy(best[lo+1:], best[lo:])
		best[lo] = sc
		if len(best) > k {
			best = best[:k]
		}
	}
	return best
}

// rank fully materializes member mi: the ranked top-k plus the scored,
// descending candidate tail (what region computation consumes).
func (m *Multi) rank(mi int) {
	if m.cands[mi] != nil {
		return
	}
	nq := len(m.queries)
	ranked := make([]Scored, len(m.encountered))
	for e, sc := range m.encountered {
		sc.Score = m.scores[e*nq+mi]
		ranked[e] = sc
	}
	sortScored(ranked)
	cut := m.scan.k
	if cut > len(ranked) {
		cut = len(ranked)
	}
	m.results[mi] = ranked[:cut]
	m.cands[mi] = ranked[cut:]
}

// allSatisfied runs every live member's termination test against the
// current thresholds and reports whether the whole group is done.
// Member thresholds are one batched dot product over the threshold
// vector — bit-identical to each member's solo ThresholdScore, since an
// exhausted list contributes an exact +0.0 term to a non-negative sum.
// Satisfaction is sticky: thresholds only fall and the k-th best only
// rises as the scan advances.
func (m *Multi) allSatisfied(thrVec, memThr []float64) bool {
	if len(m.encountered) < m.scan.k {
		return false
	}
	m.scan.ThresholdsInto(thrVec)
	vec.DotBatch(m.flatW, thrVec, memThr)
	all := true
	for mi, done := range m.memDone {
		if done {
			continue
		}
		if len(m.heaps[mi]) >= m.scan.k && m.heaps[mi][0] >= memThr[mi] {
			m.memDone[mi] = true
			continue
		}
		all = false
	}
	return all
}

// SortedAccesses reports the shared scan's sorted-access count — the
// whole group's, paid once.
func (m *Multi) SortedAccesses() int { return m.scan.sortedAccesses }

// Result returns member i's ranked top-k. Run must have completed.
// Like TA, a Multi is not safe for concurrent use: materialization is
// lazy and memoized.
func (m *Multi) Result(i int) []Scored {
	m.mustBeDone("Result")
	if m.results[i] == nil {
		m.results[i] = m.selectTopK(i)
	}
	return m.results[i]
}

// Member returns member i's resumable view of the completed run,
// suitable for region computation (core.ComputeView): its own clone of
// the shared scan position with the member's query substituted, so
// Resume pulls score with the member's weights and never disturb the
// shared state or any sibling view. See the package comment for why
// the view's candidate set legitimately differs from a solo scan's.
func (m *Multi) Member(i int) *MemberRun {
	m.mustBeDone("Member")
	m.rank(i)
	r := &MemberRun{
		scanState: m.scan.clone(),
		arena:     ProjArena{Qlen: m.scan.q.Len()},
		result:    m.results[i],
		cands:     slices.Clone(m.cands[i]),
	}
	r.q = m.queries[i]
	return r
}

func (m *Multi) mustBeDone(op string) {
	if !m.done {
		panic("topk: " + op + " before Run")
	}
}

// MemberRun is one member's view of a completed fused run. It
// implements View (and core.Runner): the scan is already terminated, so
// RunContext only arms the context and reports any cancellation.
type MemberRun struct {
	scanState
	arena  ProjArena
	result []Scored
	cands  []Scored
}

// RunContext arms ctx on the (already completed) member scan so that
// later Resume pulls observe cancellation, and reports the scan error.
func (r *MemberRun) RunContext(ctx context.Context) error {
	if ctx != nil && r.ctx == nil {
		r.ctx = ctx
	}
	return r.ctxErr
}

// Result returns the member's ranked top-k (shared, read-only).
func (r *MemberRun) Result() []Scored { return r.result }

// Candidates returns the member's candidate list: every shared-scan
// encounter outside its top-k, plus this view's own Resume pulls.
func (r *MemberRun) Candidates() []Scored { return r.cands }

// Resume continues the member's private scan continuation until one new
// tuple is encountered, scored with the member's weights.
func (r *MemberRun) Resume() (Scored, bool) {
	for {
		p, _, isNew, ok := r.rawStep()
		if !ok {
			return Scored{}, false
		}
		if isNew {
			sc := r.score(p.ID, &r.arena)
			r.cands = append(r.cands, sc)
			return sc, true
		}
	}
}

// ForkView returns an isolated resumable copy for one dimension of a
// parallel region computation, mirroring TA.Fork.
func (r *MemberRun) ForkView() View {
	return &Fork{
		scanState: r.scanState.clone(),
		arena:     ProjArena{Qlen: r.q.Len()},
		result:    r.result,
		cands:     slices.Clone(r.cands),
	}
}
