package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
)

// TestRunningExampleTrace reproduces the TA execution of Fig. 2: three
// sorted accesses (d1 on L1, d3 on L2, d2 on L1), result [d2, d1],
// candidates [d3], final threshold 0.38.
func TestRunningExampleTrace(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	ta := New(ix, q, k, RoundRobin)
	ta.Run()

	if got := ta.SortedAccesses(); got != 3 {
		t.Errorf("sorted accesses = %d, want 3", got)
	}
	res := ta.Result()
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 0 {
		t.Fatalf("result = %+v, want [d2 d1]", res)
	}
	if math.Abs(res[0].Score-0.81) > 1e-12 || math.Abs(res[1].Score-0.8) > 1e-12 {
		t.Errorf("scores = %v, %v; want 0.81, 0.8", res[0].Score, res[1].Score)
	}
	cands := ta.Candidates()
	if len(cands) != 1 || cands[0].ID != 2 {
		t.Fatalf("candidates = %+v, want [d3]", cands)
	}
	if math.Abs(cands[0].Score-0.48) > 1e-12 {
		t.Errorf("candidate score = %v, want 0.48", cands[0].Score)
	}
	if got := ta.ThresholdScore(); math.Abs(got-0.38) > 1e-12 {
		t.Errorf("threshold = %v, want 0.38", got)
	}
	th := ta.Thresholds()
	if math.Abs(th[0]-0.1) > 1e-12 || math.Abs(th[1]-0.6) > 1e-12 {
		t.Errorf("thresholds = %v, want [0.1 0.6]", th)
	}
}

// TestTAMatchesNaive cross-checks TA against exhaustive scoring for both
// probing policies across random scenarios.
func TestTAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		cs := fixture.RandCase(rng, 20+rng.Intn(100), 3+rng.Intn(8), 2+rng.Intn(3), 1+rng.Intn(10))
		want := TopKNaive(cs.Tuples, cs.Q, cs.K)
		for _, policy := range []ProbePolicy{RoundRobin, BestList} {
			ix := lists.NewMemIndex(cs.Tuples, cs.M)
			ta := New(ix, cs.Q, cs.K, policy)
			ta.Run()
			got := ta.Result()
			if len(got) != len(want) {
				t.Fatalf("trial %d %v: %d results, want %d", trial, policy, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("trial %d %v rank %d: id %d, want %d", trial, policy, i, got[i].ID, want[i].ID)
				}
				if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
					t.Fatalf("trial %d %v rank %d: score %v, want %v", trial, policy, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

// TestCandidatesSortedAndBelowResult: C(q) must be in decreasing score
// order and entirely below the k-th result score.
func TestCandidatesSortedAndBelowResult(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		cs := fixture.RandCase(rng, 80, 6, 3, 5)
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := New(ix, cs.Q, cs.K, BestList)
		ta.Run()
		kth := ta.Result()[len(ta.Result())-1].Score
		prev := math.Inf(1)
		for _, c := range ta.Candidates() {
			if c.Score > kth {
				t.Fatalf("trial %d: candidate %d above k-th score", trial, c.ID)
			}
			if c.Score > prev {
				t.Fatalf("trial %d: candidates not sorted", trial)
			}
			prev = c.Score
		}
	}
}

// TestResumeEnumeratesRemaining: resuming after termination must surface
// every remaining list-reachable tuple exactly once.
func TestResumeEnumeratesRemaining(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cs := fixture.RandCase(rng, 60, 5, 3, 4)
	ix := lists.NewMemIndex(cs.Tuples, cs.M)
	ta := New(ix, cs.Q, cs.K, RoundRobin)
	ta.Run()

	seen := map[int]bool{}
	for _, r := range ta.Result() {
		seen[r.ID] = true
	}
	for _, c := range ta.Candidates() {
		if seen[c.ID] {
			t.Fatalf("duplicate %d between result and candidates", c.ID)
		}
		seen[c.ID] = true
	}
	for {
		sc, ok := ta.Resume()
		if !ok {
			break
		}
		if seen[sc.ID] {
			t.Fatalf("Resume returned duplicate %d", sc.ID)
		}
		seen[sc.ID] = true
	}
	if len(seen) != len(cs.Tuples) {
		t.Fatalf("saw %d tuples, want %d", len(seen), len(cs.Tuples))
	}
	if len(ta.Candidates()) != len(cs.Tuples)-cs.K {
		t.Fatalf("candidate list has %d entries, want %d", len(ta.Candidates()), len(cs.Tuples)-cs.K)
	}
}

// TestWasSortedAccessed validates the Phase-3 shortcut test against an
// independent reconstruction of the consumed prefixes.
func TestWasSortedAccessed(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 20; trial++ {
		cs := fixture.RandCase(rng, 50, 5, 3, 3)
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := New(ix, cs.Q, cs.K, BestList)
		ta.Run()
		for i, dim := range cs.Q.Dims {
			consumed := ta.Depth(i)
			postings := ix.Postings(dim)
			inPrefix := map[int]bool{}
			for _, p := range postings[:consumed] {
				inPrefix[p.ID] = true
			}
			for id, tp := range cs.Tuples {
				val := tp.Get(dim)
				if got := ta.WasSortedAccessed(i, id, val); got != inPrefix[id] {
					t.Fatalf("trial %d dim %d tuple %d (val %v): WasSortedAccessed=%v, prefix says %v",
						trial, dim, id, val, got, inPrefix[id])
				}
			}
		}
	}
}

func TestScoredNonZero(t *testing.T) {
	s := Scored{NZMask: 0b1011}
	if s.NonZero() != 3 {
		t.Fatalf("NonZero = %d", s.NonZero())
	}
	if (Scored{}).NonZero() != 0 {
		t.Fatal("empty mask")
	}
}

func TestNewPanics(t *testing.T) {
	tuples, q, _ := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	assertPanic(t, "k=0", func() { New(ix, q, 0, RoundRobin) })
	ta := New(ix, q, 1, RoundRobin)
	assertPanic(t, "Result before Run", func() { ta.Result() })
	assertPanic(t, "Resume before Run", func() { ta.Resume() })
}

func assertPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || BestList.String() != "best-list" {
		t.Fatal("policy names wrong")
	}
}

// TestTraceMatchesFig2 pins the full execution trace of the running
// example against the paper's Fig. 2 table: thresholds 0.96, 0.86, 0.38
// and the evolving R(q)/C(q) snapshots.
func TestTraceMatchesFig2(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	ta := New(ix, q, k, RoundRobin)
	var steps []TraceStep
	ta.SetTrace(func(ts TraceStep) { steps = append(steps, ts) })
	ta.Run()

	if len(steps) != 3 {
		t.Fatalf("%d trace steps, want 3", len(steps))
	}
	wantThresh := []float64{0.96, 0.86, 0.38}
	wantTuple := []int{0, 2, 1}
	wantScore := []float64{0.8, 0.48, 0.81}
	for i, ts := range steps {
		if ts.Tuple != wantTuple[i] {
			t.Errorf("step %d: tuple %d, want %d", i+1, ts.Tuple, wantTuple[i])
		}
		if math.Abs(ts.Score-wantScore[i]) > 1e-12 {
			t.Errorf("step %d: score %v, want %v", i+1, ts.Score, wantScore[i])
		}
		if math.Abs(ts.ThresholdScore-wantThresh[i]) > 1e-12 {
			t.Errorf("step %d: threshold %v, want %v", i+1, ts.ThresholdScore, wantThresh[i])
		}
	}
	// Fig. 2 snapshots: after step 2, R=[d1,d3]; after step 3, R=[d2,d1],
	// C=[d3].
	if got := steps[1].ResultIDs; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("step 2 R(q) = %v, want [0 2]", got)
	}
	if got := steps[2].ResultIDs; len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("step 3 R(q) = %v, want [1 0]", got)
	}
	if got := steps[2].CandidateIDs; len(got) != 1 || got[0] != 2 {
		t.Errorf("step 3 C(q) = %v, want [2]", got)
	}
}
