package topk

import (
	"sort"

	"repro/internal/lists"
	"repro/internal/vec"
)

// NRA is the no-random-access variant of the threshold algorithm (Fagin
// et al.). It consumes the inverted lists by sorted access only and
// maintains per-tuple score bounds: the lower bound sums the coordinates
// seen so far, the upper bound fills every unseen dimension with that
// list's current threshold. The paper's system model uses the
// random-access variant "due to its superior performance" (§2); NRA is
// implemented as the comparator that justifies the choice — on sparse
// data its upper bounds deflate only as slowly as the list thresholds
// do, so it reads far deeper before it can stop.
//
// This implementation runs until the ranked order is certain: the k-th
// lower bound must dominate every outsider's upper bound, and inside the
// top-k each adjacent pair must be order-certain. Exhausted lists make
// all bounds exact, so termination is guaranteed.
type NRA struct {
	weights []float64
	k       int
	cursors []lists.Cursor

	entries map[int]*nraEntry
	done    bool
	result  []NRAResult

	sortedAccesses int
}

// NRAResult is one ranked answer with its certainty interval. For fully
// resolved tuples Lower == Upper == the exact score.
type NRAResult struct {
	ID           int
	Lower, Upper float64
}

type nraEntry struct {
	id    int
	mask  uint64
	lower float64
}

// NRAIndex is the sorted-access-only slice of lists.Index that NRA
// needs — crucially, no Tuple method.
type NRAIndex interface {
	Cursor(dim int) lists.Cursor
}

// NewNRA prepares an NRA run over the same index TA uses, but through
// the sorted-access-only interface.
func NewNRA(ix NRAIndex, q vec.Query, k int) *NRA {
	n := &NRA{
		weights: q.Weights,
		k:       k,
		entries: make(map[int]*nraEntry),
	}
	for _, dim := range q.Dims {
		n.cursors = append(n.cursors, ix.Cursor(dim))
	}
	return n
}

// SortedAccesses reports the number of postings consumed.
func (n *NRA) SortedAccesses() int { return n.sortedAccesses }

// Run executes NRA to full order certainty.
func (n *NRA) Run() {
	if n.done {
		return
	}
	for {
		progressed := false
		for i, cur := range n.cursors {
			p, ok := cur.Next()
			if !ok {
				continue
			}
			progressed = true
			n.sortedAccesses++
			e := n.entries[p.ID]
			if e == nil {
				e = &nraEntry{id: p.ID}
				n.entries[p.ID] = e
			}
			e.mask |= 1 << uint(i)
			e.lower += n.weights[i] * p.Val
		}
		if n.tryFinish(!progressed) {
			return
		}
		if !progressed {
			// All lists exhausted yet order not certain: true ties.
			// Resolve deterministically by id, like TA's tiebreak.
			n.finishExhausted()
			return
		}
	}
}

// thresholds returns the per-list next keys (0 when exhausted).
func (n *NRA) thresholds() []float64 {
	t := make([]float64, len(n.cursors))
	for i, cur := range n.cursors {
		if p, ok := cur.Peek(); ok {
			t[i] = p.Val
		}
	}
	return t
}

// upper computes an entry's upper bound under thresholds t.
func (n *NRA) upper(e *nraEntry, t []float64) float64 {
	u := e.lower
	for i := range n.cursors {
		if e.mask&(1<<uint(i)) == 0 {
			u += n.weights[i] * t[i]
		}
	}
	return u
}

// tryFinish checks the dual certainty condition and materializes the
// result when it holds. exhausted skips the unseen-tuple bound.
func (n *NRA) tryFinish(exhausted bool) bool {
	if len(n.entries) < n.k {
		return false
	}
	t := n.thresholds()
	ranked := n.rankedByLower()
	top := ranked[:n.k]

	// Condition 1: no outsider (or unseen tuple) can beat the k-th.
	kth := top[n.k-1].lower
	unseen := 0.0
	for i, w := range n.weights {
		unseen += w * t[i]
	}
	if !exhausted && unseen > kth {
		return false
	}
	for _, e := range ranked[n.k:] {
		if n.upper(e, t) > kth {
			return false
		}
	}
	// Condition 2: the order within the top-k is certain.
	for i := 0; i+1 < n.k; i++ {
		if n.upper(top[i+1], t) > top[i].lower {
			return false
		}
	}
	n.materialize(top, t)
	return true
}

// finishExhausted resolves after full consumption: bounds are exact.
func (n *NRA) finishExhausted() {
	ranked := n.rankedByLower()
	if len(ranked) > n.k {
		ranked = ranked[:n.k]
	}
	n.materialize(ranked, n.thresholds())
}

func (n *NRA) rankedByLower() []*nraEntry {
	ranked := make([]*nraEntry, 0, len(n.entries))
	//lint:allow detcore collection order is irrelevant: the slice is fully re-sorted below with an id tiebreak (total order)
	for _, e := range n.entries {
		ranked = append(ranked, e)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].lower != ranked[j].lower {
			return ranked[i].lower > ranked[j].lower
		}
		return ranked[i].id < ranked[j].id
	})
	return ranked
}

func (n *NRA) materialize(top []*nraEntry, t []float64) {
	n.result = make([]NRAResult, len(top))
	for i, e := range top {
		n.result[i] = NRAResult{ID: e.id, Lower: e.lower, Upper: n.upper(e, t)}
	}
	n.done = true
}

// Result returns the ranked top-k with certainty intervals.
func (n *NRA) Result() []NRAResult {
	if !n.done {
		panic("topk: NRA Result before Run")
	}
	return n.result
}
