package topk

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/vec"
)

// TestNRAMatchesNaive: NRA must return the exact ranked top-k (ids in
// order) on random general-position data.
func TestNRAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		cs := fixture.RandCase(rng, 20+rng.Intn(80), 3+rng.Intn(6), 2+rng.Intn(3), 1+rng.Intn(8))
		want := TopKNaive(cs.Tuples, cs.Q, cs.K)
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		nra := NewNRA(ix, cs.Q, cs.K)
		nra.Run()
		got := nra.Result()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d rank %d: id %d, want %d", trial, i, got[i].ID, want[i].ID)
			}
			// The certainty interval must bracket the true score.
			if want[i].Score < got[i].Lower-1e-9 || want[i].Score > got[i].Upper+1e-9 {
				t.Fatalf("trial %d rank %d: true score %v outside [%v, %v]",
					trial, i, want[i].Score, got[i].Lower, got[i].Upper)
			}
		}
	}
}

// TestNRARunningExample: on Fig. 1, NRA finds [d2, d1] like TA.
func TestNRARunningExample(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	nra := NewNRA(ix, q, k)
	nra.Run()
	got := nra.Result()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 0 {
		t.Fatalf("NRA result %+v, want [d2 d1]", got)
	}
}

// TestNRANoRandomAccess: the defining property — NRA must not fetch a
// single tuple by random access.
func TestNRANoRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	cs := fixture.RandCase(rng, 100, 5, 3, 5)
	ix := lists.NewMemIndex(cs.Tuples, cs.M)
	nra := NewNRA(ix, cs.Q, cs.K)
	nra.Run()
	if _, rnd, _ := ix.Stats().Snapshot(); rnd != 0 {
		t.Fatalf("NRA performed %d random reads", rnd)
	}
	if nra.SortedAccesses() == 0 {
		t.Fatal("no sorted accesses recorded")
	}
}

// TestNRAReadsDeeperThanTA quantifies why the paper prefers random-access
// TA: on sparse text-like data NRA's sorted-access depth must be at
// least TA's (usually far more), since its upper bounds deflate slowly.
func TestNRAReadsDeeperThanTA(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	deeper := 0
	for trial := 0; trial < 10; trial++ {
		cs := fixture.RandCase(rng, 150, 6, 3, 5)
		ixTA := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := New(ixTA, cs.Q, cs.K, RoundRobin)
		ta.Run()

		ixNRA := lists.NewMemIndex(cs.Tuples, cs.M)
		nra := NewNRA(ixNRA, cs.Q, cs.K)
		nra.Run()

		if nra.SortedAccesses() < ta.SortedAccesses() {
			t.Errorf("trial %d: NRA read %d postings, TA %d — NRA cannot stop earlier than TA",
				trial, nra.SortedAccesses(), ta.SortedAccesses())
		}
		if nra.SortedAccesses() > ta.SortedAccesses() {
			deeper++
		}
	}
	if deeper == 0 {
		t.Error("NRA never read deeper than TA across 10 sparse workloads; comparator not meaningful")
	}
}

// TestNRAExhaustion: k equal to the dataset size forces full consumption
// and exact bounds.
func TestNRAExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	cs := fixture.RandCase(rng, 25, 4, 2, 25)
	want := TopKNaive(cs.Tuples, cs.Q, 25)
	ix := lists.NewMemIndex(cs.Tuples, cs.M)
	nra := NewNRA(ix, cs.Q, 25)
	nra.Run()
	got := nra.Result()
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d: id %d, want %d", i, got[i].ID, want[i].ID)
		}
		if math.Abs(got[i].Lower-want[i].Score) > 1e-9 || math.Abs(got[i].Upper-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d: bounds [%v,%v] not exact (%v)", i, got[i].Lower, got[i].Upper, want[i].Score)
		}
	}
}

// TestNRAResultBeforeRun covers the guard.
func TestNRAResultBeforeRun(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	nra := NewNRA(ix, q, k)
	defer func() {
		if recover() == nil {
			t.Fatal("Result before Run did not panic")
		}
	}()
	nra.Result()
}

// TestNRAExactTiesTermination pins the tie-handling semantics: with
// scores that are exactly equal (binary fractions, no float slack) the
// certainty conditions — all strict inequalities — must still
// terminate, and the outcome must be deterministic.
//
// The dataset scores d0 = d1 = d2 = 0.5 exactly and d3 = 0.0625:
//
//	L0: d0(0.75) d2(0.5) d1(0.25) d3(0.125)    L1: d1(0.75) d2(0.5) d0(0.25)
//
// Two behaviors are pinned. (1) A fully-resolved tuple may win rank k
// over tied outsiders whose upper bound merely EQUALS the k-th lower
// bound: at k=1, d2 resolves to exactly 0.5 while d0/d1 can no longer
// exceed it, so NRA certifies [d2] without exhausting the lists — the
// deterministic greedy outcome of strict-inequality certainty. (2) Ties
// that survive into the ranking break by ascending id, like TA: k=2
// returns [d0 d1], k=3 [d0 d1 d2], and k=4 — which forces full
// exhaustion, collapsing every bound to its exact score — [d0 d1 d2 d3].
func TestNRAExactTiesTermination(t *testing.T) {
	tuples := []vec.Sparse{
		vec.MustSparse(vec.Entry{Dim: 0, Val: 0.75}, vec.Entry{Dim: 1, Val: 0.25}),
		vec.MustSparse(vec.Entry{Dim: 0, Val: 0.25}, vec.Entry{Dim: 1, Val: 0.75}),
		vec.MustSparse(vec.Entry{Dim: 0, Val: 0.5}, vec.Entry{Dim: 1, Val: 0.5}),
		vec.MustSparse(vec.Entry{Dim: 0, Val: 0.125}),
	}
	q := vec.MustQuery([]int{0, 1}, []float64{0.5, 0.5})
	cases := []struct {
		k        int
		wantIDs  []int
		accesses int // pinned sorted-access count at termination
	}{
		{1, []int{2}, 4},
		{2, []int{0, 1}, 6},
		{3, []int{0, 1, 2}, 6},
		{4, []int{0, 1, 2, 3}, 7}, // exhausted lists: all bounds exact
	}
	for _, tc := range cases {
		// Two runs: the result must be deterministic despite the internal
		// map iteration.
		var prev []NRAResult
		for run := 0; run < 2; run++ {
			nra := NewNRA(lists.NewMemIndex(tuples, 2), q, tc.k)
			done := make(chan struct{})
			go func() { nra.Run(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatalf("k=%d: NRA did not terminate on exact ties", tc.k)
			}
			got := nra.Result()
			if len(got) != len(tc.wantIDs) {
				t.Fatalf("k=%d: %d results, want %d", tc.k, len(got), len(tc.wantIDs))
			}
			for i, r := range got {
				if r.ID != tc.wantIDs[i] {
					t.Fatalf("k=%d rank %d: id %d, want %d", tc.k, i, r.ID, tc.wantIDs[i])
				}
			}
			if n := nra.SortedAccesses(); n != tc.accesses {
				t.Fatalf("k=%d: %d sorted accesses, want %d", tc.k, n, tc.accesses)
			}
			if run == 1 {
				for i := range got {
					if got[i] != prev[i] {
						t.Fatalf("k=%d rank %d: nondeterministic result %+v vs %+v", tc.k, i, got[i], prev[i])
					}
				}
			}
			prev = got
		}
		// Tied members that made the ranking carry exact, equal bounds.
		nra := NewNRA(lists.NewMemIndex(tuples, 2), q, tc.k)
		nra.Run()
		for i, r := range nra.Result() {
			want := 0.5
			if r.ID == 3 {
				want = 0.0625
			}
			if r.Lower != want || r.Upper != want {
				t.Fatalf("k=%d rank %d (id %d): bounds [%v, %v], want exact %v", tc.k, i, r.ID, r.Lower, r.Upper, want)
			}
		}
	}
}
