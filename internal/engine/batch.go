// Batch execution: AnalyzeBatch answers a slice of analysis requests by
// fanning the distinct queries over the engine's worker pool. The
// paper's §1 refinement scenario at fleet scale produces heavily
// repeated weight vectors — many clients exploring the same rankings —
// so the batch path is cache-aware twice over: identical requests
// within one batch are de-duplicated before any work is scheduled
// (computed once, shared as SourceDeduped), and each distinct request
// still goes through Analyze's cache lookup, so repeats across batches
// are served at cache speed too.
package engine

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/vec"
)

// BatchItem is one analysis request of a batch.
type BatchItem struct {
	Q    vec.Query
	K    int
	Opts Options
}

// BatchResult is the per-item outcome; exactly one of Analysis and Err
// is set. One invalid or failed item does not fail its batch.
type BatchResult struct {
	Analysis *Analysis
	Err      error
}

// itemKey is the full identity of a request: subspace+k, options
// signature and the exact weight bits.
func itemKey(it BatchItem) string {
	buf := []byte(keyOf(it.Q, it.K))
	buf = binary.AppendVarint(buf, int64(it.Opts.Phi))
	var flags int64
	if it.Opts.CompositionOnly {
		flags |= 1
	}
	if it.Opts.NoCache {
		flags |= 2
	}
	buf = binary.AppendVarint(buf, flags)
	for _, w := range it.Q.Weights {
		buf = binary.AppendUvarint(buf, math.Float64bits(w))
	}
	return string(buf)
}

// AnalyzeBatch answers every item and returns results aligned with the
// input slice. Distinct queries run concurrently, up to the engine's
// worker-pool width; duplicates of an item share its answer. ctx
// cancels the whole batch: items not yet finished report the context's
// error.
func (e *Engine) AnalyzeBatch(ctx context.Context, items []BatchItem) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]BatchResult, len(items))

	// De-duplicate: the first occurrence of each identity computes, the
	// rest alias it.
	type cell struct {
		item  BatchItem
		first int   // index of the computing occurrence
		dups  []int // indexes sharing the answer
	}
	order := make([]*cell, 0, len(items))
	byKey := make(map[string]*cell, len(items))
	for i, it := range items {
		k := itemKey(it)
		if c, ok := byKey[k]; ok {
			c.dups = append(c.dups, i)
			continue
		}
		c := &cell{item: it, first: i}
		byKey[k] = c
		order = append(order, c)
	}

	workers := e.workers()
	if workers > len(order) {
		workers = len(order)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(order) {
					return
				}
				c := order[i]
				a, err := e.Analyze(ctx, c.item.Q, c.item.K, c.item.Opts)
				results[c.first] = BatchResult{Analysis: a, Err: err}
			}
		}()
	}
	wg.Wait()

	for _, c := range order {
		r := results[c.first]
		for _, i := range c.dups {
			if r.Err != nil {
				results[i] = r
				continue
			}
			// Share the answer but zero the metrics, matching cache hits:
			// summing per-item I/O over a batch must not double-count the
			// one computation.
			dedup := &core.Output{
				Query:   r.Analysis.Query,
				K:       r.Analysis.K,
				Result:  r.Analysis.Result,
				Regions: r.Analysis.Regions,
			}
			results[i] = BatchResult{Analysis: &Analysis{Output: dedup, Source: SourceDeduped}}
		}
	}
	return results
}
