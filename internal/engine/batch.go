// Batch execution: AnalyzeBatch and TopKBatch answer a slice of
// requests by fanning work over the engine's worker pool. The paper's
// §1 refinement scenario at fleet scale produces heavily repeated
// weight vectors — many clients exploring the same rankings — so the
// batch path is cache-aware twice over: identical requests within one
// batch are de-duplicated before any work is scheduled (computed once,
// shared as SourceDeduped), and each distinct request still goes
// through the cache lookup, so repeats across batches are served at
// cache speed too.
//
// Requests that share a subspace (identical dimension set) and k are
// additionally FUSED: the group runs one shared TA scan (topk.Multi)
// that pays the sorted accesses, the random-access tuple fetches and
// the projections once, scoring every member's weight vector per
// encountered tuple through the batched dot kernel. Each member's
// answer is exactly what its solo execution would produce; for Analyze
// requests, region computation proceeds per member on an isolated view
// of the shared scan (core.ComputeView).
package engine

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/topk"
	"repro/internal/vec"
)

// BatchItem is one analysis request of a batch.
type BatchItem struct {
	Q    vec.Query
	K    int
	Opts Options
}

// BatchResult is the per-item outcome; exactly one of Analysis and Err
// is set. One invalid or failed item does not fail its batch.
type BatchResult struct {
	Analysis *Analysis
	Err      error
}

// itemKey is the full identity of a request: subspace+k, options
// signature and the exact weight bits.
func itemKey(it BatchItem) string {
	buf := []byte(keyOf(it.Q, it.K))
	buf = binary.AppendVarint(buf, int64(it.Opts.Phi))
	var flags int64
	if it.Opts.CompositionOnly {
		flags |= 1
	}
	if it.Opts.NoCache {
		flags |= 2
	}
	buf = binary.AppendVarint(buf, flags)
	for _, w := range it.Q.Weights {
		buf = binary.AppendUvarint(buf, math.Float64bits(w))
	}
	return string(buf)
}

// cell is one distinct request of a batch: the first occurrence
// computes, dups alias its answer.
type cell struct {
	item  BatchItem
	first int   // index of the computing occurrence
	dups  []int // indexes sharing the answer
}

// AnalyzeBatch answers every item and returns results aligned with the
// input slice. Distinct queries run concurrently, up to the engine's
// worker-pool width; duplicates of an item share its answer, and items
// sharing a subspace and k share one fused scan. ctx cancels the whole
// batch: items not yet finished report the context's error.
func (e *Engine) AnalyzeBatch(ctx context.Context, items []BatchItem) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]BatchResult, len(items))

	// De-duplicate: the first occurrence of each identity computes, the
	// rest alias it.
	order := make([]*cell, 0, len(items))
	byKey := make(map[string]*cell, len(items))
	for i, it := range items {
		k := itemKey(it)
		if c, ok := byKey[k]; ok {
			c.dups = append(c.dups, i)
			continue
		}
		c := &cell{item: it, first: i}
		byKey[k] = c
		order = append(order, c)
	}

	// Fusion grouping: validated cells sharing (Dims, k) form one unit
	// answered by a single shared scan. Invalid cells fail in place and
	// never join a group.
	units := make([][]*cell, 0, len(order))
	groups := make(map[bucketKey]int, len(order))
	for _, c := range order {
		if err := e.validate(c.item.Q, c.item.K, c.item.Opts.Phi); err != nil {
			results[c.first] = BatchResult{Err: err}
			continue
		}
		gk := keyOf(c.item.Q, c.item.K)
		if u, ok := groups[gk]; ok {
			units[u] = append(units[u], c)
			continue
		}
		groups[gk] = len(units)
		units = append(units, []*cell{c})
	}

	workers := e.workers()
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				e.analyzeUnit(ctx, units[i], results)
			}
		}()
	}
	wg.Wait()

	for _, c := range order {
		r := results[c.first]
		for _, i := range c.dups {
			if r.Err != nil {
				results[i] = r
				continue
			}
			// Share the answer but zero the metrics, matching cache hits:
			// summing per-item I/O over a batch must not double-count the
			// one computation.
			dedup := &core.Output{
				Query:   r.Analysis.Query,
				K:       r.Analysis.K,
				Result:  r.Analysis.Result,
				Regions: r.Analysis.Regions,
			}
			results[i] = BatchResult{Analysis: &Analysis{Output: dedup, Source: SourceDeduped}}
		}
	}
	return results
}

// analyzeUnit answers one fusion group. Cells served by the cache drop
// out first; a single survivor runs the plain pipeline, several share a
// fused scan.
func (e *Engine) analyzeUnit(ctx context.Context, cells []*cell, results []BatchResult) {
	pending := make([]*cell, 0, len(cells))
	for _, c := range cells {
		useCache := e.cache != nil && !c.item.Opts.NoCache
		if useCache {
			if out, ok := e.cache.lookupAnalyze(c.item.Q, c.item.K, c.item.Opts.Options); ok {
				results[c.first] = BatchResult{Analysis: &Analysis{Output: out, Source: SourceCache}}
				continue
			}
		} else if e.cache != nil {
			e.cache.bypasses.Add(1)
		}
		pending = append(pending, c)
	}
	if len(pending) == 0 {
		return
	}

	fail := func(err error) {
		for _, c := range pending {
			if results[c.first].Analysis == nil && results[c.first].Err == nil {
				results[c.first] = BatchResult{Err: err}
			}
		}
	}
	// One worker slot covers the whole group: the shared scan is one
	// query execution's worth of scan state.
	release, err := e.acquire(ctx)
	if err != nil {
		fail(err)
		return
	}
	defer release()
	e.mu.RLock()
	defer e.mu.RUnlock()

	if len(pending) == 1 {
		c := pending[0]
		out, err := e.compute(ctx, c.item.Q, c.item.K, c.item.Opts)
		if err != nil {
			results[c.first] = BatchResult{Err: err}
			return
		}
		results[c.first] = BatchResult{Analysis: e.admitLocked(c.item, out)}
		return
	}

	queries := make([]vec.Query, len(pending))
	for i, c := range pending {
		queries[i] = c.item.Q
	}
	qix := e.queryIndex()
	// The group shares one probe policy (the first member's): probing
	// order is a heuristic that never changes answers.
	multi := topk.NewMulti(qix, queries, pending[0].item.K, pending[0].item.Opts.policy())
	seq0, rnd0, _ := qix.Stats().Snapshot()
	if err := multi.RunContext(ctx); err != nil {
		fail(fmt.Errorf("engine: query canceled: %w", err))
		return
	}
	seqScan, rndScan, _ := qix.Stats().Snapshot()
	seqScan -= seq0
	rndScan -= rnd0
	for i, c := range pending {
		copts := c.item.Opts.Options
		if copts.Parallelism == 0 {
			copts.Parallelism = e.cfg.Parallelism
		}
		out, err := core.ComputeView(ctx, multi.Member(i), copts)
		if err != nil {
			results[c.first] = BatchResult{Err: err}
			continue
		}
		// Each member reports the shared scan's I/O on top of its own
		// region-phase charges, mirroring the solo path where every
		// analysis pays its own scan. The engine-wide meter counted the
		// scan once, as it should.
		out.Metrics.SeqPages += seqScan
		out.Metrics.RandReads += rndScan
		results[c.first] = BatchResult{Analysis: e.admitLocked(c.item, out)}
	}
}

// admitLocked finishes a computed analysis under the read lock the
// caller already holds: cache admission when eligible, source tagging.
func (e *Engine) admitLocked(it BatchItem, out *core.Output) *Analysis {
	if e.cache != nil && !it.Opts.NoCache {
		e.cache.admit(it.Q, it.K, it.Opts.Options, out)
		return &Analysis{Output: out, Source: SourceComputed}
	}
	return &Analysis{Output: out, Source: SourceBypass}
}

// TopKItem is one ranked-query request of a TopKBatch.
type TopKItem struct {
	Q vec.Query
	K int
}

// TopKResult is the per-item outcome of a TopKBatch; Err is non-nil
// when the item failed (the other fields are then zero).
type TopKResult struct {
	Result []topk.Scored
	Source Source
	Err    error
}

// TopKBatch answers a slice of ranked queries. Items whose weights fall
// inside a cached analysis' immutable regions are served from the cache
// (SourceCacheRegion, zero index I/O); the rest are grouped by subspace
// and k, each group answered by one fused scan, groups running
// concurrently up to the worker-pool width. A 16-member shared-subspace
// batch therefore costs roughly one scan instead of sixteen.
func (e *Engine) TopKBatch(ctx context.Context, items []TopKItem) []TopKResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]TopKResult, len(items))
	var order [][]int
	groups := make(map[bucketKey]int, len(items))
	for i, it := range items {
		if err := e.validate(it.Q, it.K, 0); err != nil {
			results[i].Err = err
			continue
		}
		if e.cache != nil {
			if res, ok := e.cache.lookupTopK(it.Q, it.K); ok {
				results[i] = TopKResult{Result: res, Source: SourceCacheRegion}
				continue
			}
		}
		gk := keyOf(it.Q, it.K)
		if u, ok := groups[gk]; ok {
			order[u] = append(order[u], i)
			continue
		}
		groups[gk] = len(order)
		order = append(order, []int{i})
	}

	workers := e.workers()
	if workers > len(order) {
		workers = len(order)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(order) {
					return
				}
				e.topkGroup(ctx, order[i], items, results)
			}
		}()
	}
	wg.Wait()
	return results
}

// topkGroup runs one subspace+k group under a single worker slot.
func (e *Engine) topkGroup(ctx context.Context, idx []int, items []TopKItem, results []TopKResult) {
	fail := func(err error) {
		for _, i := range idx {
			results[i].Err = err
		}
	}
	release, err := e.acquire(ctx)
	if err != nil {
		fail(err)
		return
	}
	defer release()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(idx) == 1 {
		i := idx[0]
		ta := topk.New(e.queryIndex(), items[i].Q, items[i].K, topk.BestList)
		if err := ta.RunContext(ctx); err != nil {
			results[i].Err = fmt.Errorf("engine: query canceled: %w", err)
			return
		}
		results[i] = TopKResult{Result: ta.Result(), Source: SourceComputed}
		return
	}
	queries := make([]vec.Query, len(idx))
	for j, i := range idx {
		queries[j] = items[i].Q
	}
	multi := topk.NewMulti(e.queryIndex(), queries, items[idx[0]].K, topk.BestList)
	if err := multi.RunContext(ctx); err != nil {
		fail(fmt.Errorf("engine: query canceled: %w", err))
		return
	}
	for j, i := range idx {
		results[i] = TopKResult{Result: multi.Result(j), Source: SourceComputed}
	}
}
