package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/vec"
)

func memEngine(tuples []vec.Sparse, m int, cfg Config) *Engine {
	return New(lists.NewMemIndex(tuples, m), cfg)
}

// TestCacheHitEqualsRecompute is the cache's property test: across
// random scenarios, methods and φ budgets, a cache-served analysis must
// be bit-identical — result ids, scores, projections, regions and
// perturbation schedules — to recomputing the same query with the cache
// bypassed, and it must touch the index zero times.
func TestCacheHitEqualsRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	for trial := 0; trial < 10; trial++ {
		cs := fixture.RandCase(rng, 60+rng.Intn(60), 6, 3, 1+rng.Intn(5))
		eng := memEngine(cs.Tuples, cs.M, Config{})
		for _, method := range core.Methods {
			for _, phi := range []int{0, 2} {
				opts := Options{Options: core.Options{Method: method, Phi: phi}}
				if _, err := eng.Analyze(context.Background(), cs.Q, cs.K, opts); err != nil {
					t.Fatal(err)
				}
				seq0, rnd0, by0 := eng.Stats().Snapshot()
				hit, err := eng.Analyze(context.Background(), cs.Q, cs.K, opts)
				if err != nil {
					t.Fatal(err)
				}
				if seq1, rnd1, by1 := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 || by1 != by0 {
					t.Fatalf("cache hit touched the index: seq %d→%d rand %d→%d", seq0, seq1, rnd0, rnd1)
				}
				if hit.Source != SourceCache {
					t.Fatalf("trial %d %v phi=%d: source %v, want cache hit", trial, method, phi, hit.Source)
				}
				opts.NoCache = true
				re, err := eng.Analyze(context.Background(), cs.Q, cs.K, opts)
				if err != nil {
					t.Fatal(err)
				}
				if re.Source != SourceBypass {
					t.Fatalf("bypass source %v", re.Source)
				}
				if !reflect.DeepEqual(hit.Result, re.Result) {
					t.Fatalf("trial %d %v phi=%d: cached result differs from recompute:\n%v\n%v",
						trial, method, phi, hit.Result, re.Result)
				}
				if !reflect.DeepEqual(hit.Regions, re.Regions) {
					t.Fatalf("trial %d %v phi=%d: cached regions differ from recompute:\n%v\n%v",
						trial, method, phi, hit.Regions, re.Regions)
				}
			}
		}
	}
}

// TestTopKRegionHitAndMiss pins the containment semantics on the
// paper's running example: IR1 = (−16/35, +0.1) around q1 = 0.8, so a
// nudge inside serves from the cache with the identical ranked result,
// while a nudge past the bound misses and recomputes — and indeed
// yields the perturbed ranking.
func TestTopKRegionHitAndMiss(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{})
	if _, err := eng.Analyze(context.Background(), q, k, Options{Options: core.Options{Method: core.MethodCPT}}); err != nil {
		t.Fatal(err)
	}

	inRegion := vec.MustQuery([]int{0, 1}, []float64{0.85, 0.5})
	seq0, rnd0, _ := eng.Stats().Snapshot()
	res, src, err := eng.TopK(context.Background(), inRegion, k)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceCacheRegion {
		t.Fatalf("in-region source %v, want region hit", src)
	}
	if seq1, rnd1, _ := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 {
		t.Fatal("region hit touched the index")
	}
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 0 {
		t.Fatalf("in-region result %v, want [d2 d1]", res)
	}
	// Scores must be bit-identical to a live TA at the nudged weights.
	fresh := memEngine(tuples, 2, Config{CacheEntries: -1})
	want, _, err := fresh.TopK(context.Background(), inRegion, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(res[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("rescored score %v != computed %v", res[i].Score, want[i].Score)
		}
	}

	// Both weights nudged: the cross-polytope test, not a 1-D interval.
	multi := vec.MustQuery([]int{0, 1}, []float64{0.78, 0.52})
	if _, src, err = eng.TopK(context.Background(), multi, k); err != nil || src != SourceCacheRegion {
		t.Fatalf("multi-dim in-region: src=%v err=%v", src, err)
	}

	// Past the +0.1 bound: must miss, and the recomputed ranking flips.
	outRegion := vec.MustQuery([]int{0, 1}, []float64{0.95, 0.5})
	res, src, err = eng.TopK(context.Background(), outRegion, k)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed {
		t.Fatalf("out-of-region source %v, want computed", src)
	}
	if res[0].ID != 0 || res[1].ID != 1 {
		t.Fatalf("out-of-region result %v, want [d1 d2]", res)
	}
}

// TestTopKRegionHitRandom cross-validates region-served top-k answers
// against direct computation over random scenarios and random in-region
// nudges.
func TestTopKRegionHitRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7002))
	for trial := 0; trial < 15; trial++ {
		cs := fixture.RandCase(rng, 50+rng.Intn(80), 6, 3, 1+rng.Intn(4))
		eng := memEngine(cs.Tuples, cs.M, Config{})
		a, err := eng.Analyze(context.Background(), cs.Q, cs.K, Options{Options: core.Options{Method: core.MethodCPT}})
		if err != nil {
			t.Fatal(err)
		}
		fresh := memEngine(cs.Tuples, cs.M, Config{CacheEntries: -1})
		for step := 0; step < 10; step++ {
			q2 := cs.Q.Clone()
			for jx := range q2.Weights {
				reg := a.Regions[jx]
				span := (reg.Hi - reg.Lo) / float64(2*q2.Len())
				d := (rng.Float64() - 0.5) * span
				w := q2.Weights[jx] + d
				if w <= 0 || w > 1 {
					continue
				}
				q2.Weights[jx] = w
			}
			got, src, err := eng.TopK(context.Background(), q2, cs.K)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := fresh.TopK(context.Background(), q2, cs.K)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("trial %d step %d (src %v): got %v want %v", trial, step, src, got, want)
				}
			}
		}
	}
}

// TestValidation checks that malformed requests are rejected with
// ErrInvalid before any execution.
func TestValidation(t *testing.T) {
	tuples, q, _ := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{})
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero k", func() error { _, err := eng.Analyze(nil, q, 0, Options{}); return err }},
		{"negative phi", func() error {
			_, err := eng.Analyze(nil, q, 1, Options{Options: core.Options{Phi: -1}})
			return err
		}},
		{"dim out of range", func() error {
			bad := vec.MustQuery([]int{0, 9}, []float64{0.5, 0.5})
			_, err := eng.Analyze(nil, bad, 1, Options{})
			return err
		}},
		{"topk zero k", func() error { _, _, err := eng.TopK(nil, q, 0); return err }},
	}
	for _, c := range cases {
		if err := c.run(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err=%v, want ErrInvalid", c.name, err)
		}
	}
}

// cancelIndex cancels a context after a fixed number of tuple fetches —
// a deterministic stand-in for a client disconnecting mid-query.
type cancelIndex struct {
	lists.Index
	cancel func()
	left   *atomic.Int64
}

func (c *cancelIndex) Tuple(id int) vec.Sparse {
	if c.left.Add(-1) == 0 {
		c.cancel()
	}
	return c.Index.Tuple(id)
}

func (c *cancelIndex) WithStats(st *storage.IOStats) lists.Index {
	return &cancelIndex{Index: c.Index.WithStats(st), cancel: c.cancel, left: c.left}
}

// TestAnalyzeCancelMidQuery proves the context threads all the way into
// the pipeline: when the client disconnects partway through (here:
// after the 5th tuple fetch), Analyze aborts with the context's error
// instead of completing — and certainly instead of returning a result.
func TestAnalyzeCancelMidQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7003))
	cs := fixture.RandCase(rng, 400, 8, 4, 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var left atomic.Int64
	left.Store(5)
	ix := &cancelIndex{Index: lists.NewMemIndex(cs.Tuples, cs.M), cancel: cancel, left: &left}
	eng := New(ix, Config{CacheEntries: -1})
	a, err := eng.Analyze(ctx, cs.Q, cs.K, Options{Options: core.Options{Method: core.MethodScan, Phi: 2}})
	if err == nil {
		t.Fatalf("canceled query completed: %+v", a.Metrics)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Pre-canceled contexts must fail too, for TopK as well.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := eng.Analyze(done, cs.Q, cs.K, Options{}); err == nil {
		t.Fatal("pre-canceled Analyze succeeded")
	}
	if _, _, err := eng.TopK(done, cs.Q, cs.K); err == nil {
		t.Fatal("pre-canceled TopK succeeded")
	}
}

// TestOpenVerifyChecksums exercises the checksum option folded into
// Open: intact files open, a corrupted byte is caught before serving.
func TestOpenVerifyChecksums(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat")
	if err := lists.SaveDataset(tp, lp, tuples, 2); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(tp, lp, 8, Config{VerifyChecksums: true})
	if err != nil {
		t.Fatalf("verified open of intact files: %v", err)
	}
	if _, err := eng.Analyze(context.Background(), q, k, Options{Options: core.Options{Method: core.MethodCPT}}); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	corruptFile(t, tp)
	if _, err := Open(tp, lp, 8, Config{VerifyChecksums: true}); err == nil {
		t.Fatal("verified open accepted a corrupted tuple file")
	}
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
