package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/vec"
	"repro/internal/wal"
)

// saveDir persists tuples as a fresh dataset directory.
func saveDir(t testing.TB, dir string, tuples []vec.Sparse, m int) {
	t.Helper()
	if err := lists.SaveDataset(filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat"), tuples, m); err != nil {
		t.Fatal(err)
	}
}

// copyDir clones a dataset directory file by file (the "crashed
// machine" whose state a recovery test reopens).
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func openDurable(t testing.TB, dir string, cfg Config) *Engine {
	t.Helper()
	cfg.WAL = true
	eng, err := OpenDir(dir, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestDurableOpenReplayStats: batches applied through a durable engine
// survive a reopen (the overlay is rebuilt from the log), and the
// recovery counters report exactly what replay did.
func TestDurableOpenReplayStats(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	saveDir(t, dir, tuples, 2)

	eng := openDurable(t, dir, Config{})
	if !eng.Durable() || !eng.Mutable() {
		t.Fatalf("durable=%v mutable=%v", eng.Durable(), eng.Mutable())
	}
	if st := eng.DurabilityStats(); !st.Enabled || st.ReplayedOps != 0 || st.NextSeq != 1 {
		t.Fatalf("fresh durability stats %+v", st)
	}
	shadow := cloneTuples(tuples)
	nudged := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.1}, vec.Entry{Dim: 1, Val: 0.55})
	mustApply(t, eng, Op{Kind: OpUpdate, ID: 3, Tuple: nudged})
	shadow[3] = nudged
	added := vec.MustSparse(vec.Entry{Dim: 1, Val: 0.95})
	mustApply(t, eng,
		Op{Kind: OpInsert, Tuple: added},
		Op{Kind: OpDelete, ID: 0},
	)
	shadow = append(shadow, added)
	shadow[0] = nil
	if st := eng.DurabilityStats(); st.Appends != 2 || st.Syncs < 2 || st.NextSeq != 3 {
		t.Fatalf("post-apply durability stats %+v", st)
	}
	ds, ok := eng.OverlayStats()
	if !ok || ds.Added != 1 || ds.Overridden != 1 || ds.Tombstoned != 1 {
		t.Fatalf("overlay stats %+v ok=%v", ds, ok)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log replays into a fresh overlay.
	re := openDurable(t, dir, Config{})
	defer re.Close()
	// The writer role is exclusive: a second durable open on the same
	// directory must be refused while re holds the lock.
	if _, err := OpenDir(dir, 64, Config{WAL: true}); err == nil {
		t.Fatal("second durable writer acquired the same directory")
	}
	st := re.DurabilityStats()
	if st.ReplayedRecords != 2 || st.ReplayedOps != 3 || st.TruncatedBytes != 0 || st.NextSeq != 3 {
		t.Fatalf("recovery stats %+v", st)
	}
	fresh := memEngine(cloneTuples(shadow), 2, Config{CacheEntries: -1})
	opts := Options{Options: core.Options{Method: core.MethodCPT}}
	assertSameAnswers(t, re, fresh, q, k, opts)

	// A read-only open of the same directory serves the replayed state
	// too (stale reads would defeat the log), but refuses writes.
	ro, err := OpenDir(dir, 64, Config{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Mutable() || ro.Durable() {
		t.Fatalf("read-only open: mutable=%v durable=%v", ro.Mutable(), ro.Durable())
	}
	assertSameAnswers(t, ro, fresh, q, k, opts)
}

// TestDurableRecoveryPropertyTruncation is the acceptance property
// test: after N applied batches, the log hard-cut at EVERY byte
// boundary of the final record reopens to an engine whose answers are
// bit-identical to a fresh engine built on the prefix of fully
// committed batches — the final batch is lost (and only it) unless the
// cut preserves its whole frame.
func TestDurableRecoveryPropertyTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	const nBatches = 4
	cs := fixture.RandCase(rng, 40, 5, 3, 2)
	dir := t.TempDir()
	saveDir(t, dir, cs.Tuples, cs.M)

	eng := openDurable(t, dir, Config{})
	opts := Options{Options: core.Options{Method: core.MethodCPT}}
	queries := []vec.Query{cs.Q, randSubspaceQuery(rng, cs.M, 2), randSubspaceQuery(rng, cs.M, 3)}
	analyzeMust(t, eng, cs.Q, cs.K, opts)

	// shadows[i] is the dataset after i committed batches.
	shadows := [][]vec.Sparse{cloneTuples(cs.Tuples)}
	shadow := cloneTuples(cs.Tuples)
	for b := 0; b < nBatches; b++ {
		var ops []Op
		for len(ops) < 3 {
			switch rng.Intn(3) {
			case 0:
				tu := randOpTuple(rng, cs.M)
				ops = append(ops, Op{Kind: OpInsert, Tuple: tu})
				shadow = append(shadow, tu)
			case 1:
				id := rng.Intn(len(cs.Tuples))
				if shadow[id] == nil {
					continue
				}
				tu := randOpTuple(rng, cs.M)
				ops = append(ops, Op{Kind: OpUpdate, ID: id, Tuple: tu})
				shadow[id] = tu
			default:
				id := rng.Intn(len(cs.Tuples))
				if shadow[id] == nil {
					continue
				}
				ops = append(ops, Op{Kind: OpDelete, ID: id})
				shadow[id] = nil
			}
		}
		mustApply(t, eng, ops...)
		shadows = append(shadows, cloneTuples(shadow))
	}
	// Abandon eng without Close: a kill -9 never flushes anything — the
	// fsync-per-batch policy alone must have made the log durable.
	logPath := filepath.Join(dir, wal.LogName)
	info, err := wal.Inspect(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != nBatches {
		t.Fatalf("log holds %d records, want %d", info.Records, nBatches)
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := info.Offsets[nBatches-1]

	scratch := t.TempDir()
	freshAt := map[int]*Engine{
		nBatches - 1: memEngine(cloneTuples(shadows[nBatches-1]), cs.M, Config{CacheEntries: -1}),
		nBatches:     memEngine(cloneTuples(shadows[nBatches]), cs.M, Config{CacheEntries: -1}),
	}
	for cut := lastStart; cut <= info.Size; cut++ {
		caseDir := filepath.Join(scratch, fmt.Sprintf("cut%d", cut))
		if err := os.Mkdir(caseDir, 0o755); err != nil {
			t.Fatal(err)
		}
		copyDir(t, dir, caseDir)
		if err := os.WriteFile(filepath.Join(caseDir, wal.LogName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re := openDurable(t, caseDir, Config{})
		committed := nBatches - 1
		if cut == info.Size {
			committed = nBatches
		}
		if st := re.DurabilityStats(); st.ReplayedRecords != committed {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, st.ReplayedRecords, committed)
		}
		for _, q := range queries {
			assertSameAnswers(t, re, freshAt[committed], q, cs.K, opts)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.RemoveAll(caseDir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointEquivalence: compaction folds the live view into a new
// file generation that (a) answers identically, (b) passes full
// checksum verification, (c) truncates the log, and (d) reopens — both
// writable and read-only — to the same answers with nothing to replay.
func TestCheckpointEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	cs := fixture.RandCase(rng, 50, 5, 3, 2)
	dir := t.TempDir()
	saveDir(t, dir, cs.Tuples, cs.M)

	// CheckpointBytes: -1 disables auto-compaction so the test controls
	// when it happens.
	eng := openDurable(t, dir, Config{CheckpointBytes: -1})
	opts := Options{Options: core.Options{Method: core.MethodCPT}}
	analyzeMust(t, eng, cs.Q, cs.K, opts)

	shadow := cloneTuples(cs.Tuples)
	for b := 0; b < 3; b++ {
		var ops []Op
		for j := 0; j < 4; j++ {
			tu := randOpTuple(rng, cs.M)
			if rng.Intn(2) == 0 && shadow[j] != nil {
				ops = append(ops, Op{Kind: OpUpdate, ID: j, Tuple: tu})
				shadow[j] = tu
			} else {
				ops = append(ops, Op{Kind: OpInsert, Tuple: tu})
				shadow = append(shadow, tu)
			}
		}
		mustApply(t, eng, ops...)
	}
	seqBefore := eng.DurabilityStats().NextSeq

	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := eng.DurabilityStats()
	if st.Checkpoints != 1 || st.Generation != 1 {
		t.Fatalf("post-checkpoint stats %+v", st)
	}
	if st.NextSeq != seqBefore {
		t.Fatalf("checkpoint moved the sequence: %d → %d", seqBefore, st.NextSeq)
	}
	if ds, ok := eng.OverlayStats(); !ok || ds.Added != 0 || ds.Overridden != 0 || ds.Tombstoned != 0 {
		t.Fatalf("overlay not reset after checkpoint: %+v", ds)
	}

	// The manifest names the new generation; its files verify in full.
	man, ok, err := wal.LoadManifest(dir)
	if err != nil || !ok || man.Gen != 1 {
		t.Fatalf("manifest %+v ok=%v err=%v", man, ok, err)
	}
	for _, name := range []string{man.Tuples, man.Lists} {
		if err := storage.VerifyChecksum(filepath.Join(dir, name)); err != nil {
			t.Fatalf("checkpointed file %s: %v", name, err)
		}
	}
	if info, err := wal.Inspect(filepath.Join(dir, wal.LogName)); err != nil || info.Records != 0 {
		t.Fatalf("log after checkpoint: %+v err=%v", info, err)
	}

	// The live engine keeps answering identically across the swap, and
	// writes keep working on the new generation.
	fresh := memEngine(cloneTuples(shadow), cs.M, Config{CacheEntries: -1})
	assertSameAnswers(t, eng, fresh, cs.Q, cs.K, opts)
	post := randOpTuple(rng, cs.M)
	mustApply(t, eng, Op{Kind: OpInsert, Tuple: post})
	shadow = append(shadow, post)
	fresh = memEngine(cloneTuples(shadow), cs.M, Config{CacheEntries: -1})
	assertSameAnswers(t, eng, fresh, cs.Q, cs.K, opts)

	// Reopens follow the manifest: writable replays only the post-
	// checkpoint record; read-only opens the new generation directly.
	// (The writer lock is exclusive, so the first engine closes first.)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir, Config{CheckpointBytes: -1})
	defer re.Close()
	if st := re.DurabilityStats(); st.ReplayedRecords != 1 || st.Generation != 1 {
		t.Fatalf("reopen stats %+v", st)
	}
	assertSameAnswers(t, re, fresh, cs.Q, cs.K, opts)
	ro, err := OpenDir(dir, 64, Config{ReadOnly: true, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	assertSameAnswers(t, ro, fresh, cs.Q, cs.K, opts)

	// A second checkpoint supersedes the first: generation 1's files are
	// removed, generation 2's serve.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g1t, g1l := wal.GenFileNames(1)
	for _, name := range []string{g1t, g1l} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("superseded file %s still present (err %v)", name, err)
		}
	}
	if man, _, _ := wal.LoadManifest(dir); man.Gen != 2 {
		t.Fatalf("manifest gen %d, want 2", man.Gen)
	}
	assertSameAnswers(t, re, fresh, cs.Q, cs.K, opts)
}

// TestCheckpointDeletedIDStaysDeleted: compaction persists tombstones
// as empty records, and the reopened overlay must keep treating them as
// deleted — an Update or Delete on a dead id fails identically before
// and after a checkpoint (and after a restart), instead of silently
// resurrecting the id.
func TestCheckpointDeletedIDStaysDeleted(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	saveDir(t, dir, tuples, 2)
	eng := openDurable(t, dir, Config{CheckpointBytes: -1})

	mustApply(t, eng, Op{Kind: OpDelete, ID: 2})
	probe := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.3})
	wantDead := func(stage string, e *Engine) {
		t.Helper()
		res, err := e.Apply([]Op{
			{Kind: OpUpdate, ID: 2, Tuple: probe},
			{Kind: OpDelete, ID: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Results[0].Err == nil || res.Results[1].Err == nil {
			t.Fatalf("%s: mutation of deleted id 2 succeeded: %+v", stage, res.Results)
		}
		if n := e.N(); n != 4 {
			t.Fatalf("%s: N=%d, want 4 (stable ids)", stage, n)
		}
	}
	wantDead("pre-checkpoint", eng)

	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantDead("post-checkpoint", eng)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, Config{CheckpointBytes: -1})
	defer re.Close()
	wantDead("post-restart", re)
	shadow := cloneTuples(tuples)
	shadow[2] = nil
	fresh := memEngine(cloneTuples(shadow), 2, Config{CacheEntries: -1})
	assertSameAnswers(t, re, fresh, q, k, Options{Options: core.Options{Method: core.MethodCPT}})
}

// TestCheckpointCrashSteps injects a crash after each step of the
// compaction ordering and reopens the directory as a fresh process
// would: every crash point must recover to the same live view.
func TestCheckpointCrashSteps(t *testing.T) {
	for _, step := range []string{"files", "manifest", "truncate"} {
		t.Run(step, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			cs := fixture.RandCase(rng, 40, 4, 3, 2)
			dir := t.TempDir()
			saveDir(t, dir, cs.Tuples, cs.M)
			eng := openDurable(t, dir, Config{CheckpointBytes: -1})

			shadow := cloneTuples(cs.Tuples)
			var ops []Op
			for j := 0; j < 5; j++ {
				tu := randOpTuple(rng, cs.M)
				ops = append(ops, Op{Kind: OpInsert, Tuple: tu})
				shadow = append(shadow, tu)
			}
			ops = append(ops, Op{Kind: OpDelete, ID: 0})
			shadow[0] = nil
			mustApply(t, eng, ops...)

			crash := fmt.Errorf("injected crash after %s", step)
			eng.dur.ckptHook = func(s string) error {
				if s == step {
					return crash
				}
				return nil
			}
			if err := eng.Checkpoint(); err != crash {
				t.Fatalf("checkpoint err %v, want injected crash", err)
			}
			// The machine died here: the engine is abandoned un-Closed.
			// A real crash drops the flock with the process; in-process
			// we release it by hand so the "new process" can take over.
			eng.dur.lock.Release()

			re := openDurable(t, dir, Config{CheckpointBytes: -1})
			defer re.Close()
			fresh := memEngine(cloneTuples(shadow), cs.M, Config{CacheEntries: -1})
			opts := Options{Options: core.Options{Method: core.MethodCPT}}
			assertSameAnswers(t, re, fresh, cs.Q, cs.K, opts)
			assertSameAnswers(t, re, fresh, randSubspaceQuery(rng, cs.M, 2), cs.K, opts)

			// Recovery semantics per crash point: before the manifest
			// rename the old generation + full log is the truth; after it
			// the new generation serves and the log's records are skipped
			// (manifest) or gone (truncate).
			man, ok, err := wal.LoadManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			st := re.DurabilityStats()
			switch step {
			case "files":
				if ok {
					t.Fatal("manifest exists before the rename step")
				}
				if st.ReplayedRecords != 1 {
					t.Fatalf("replayed %d, want the full log", st.ReplayedRecords)
				}
			case "manifest", "truncate":
				if !ok || man.Gen != 1 {
					t.Fatalf("manifest %+v ok=%v", man, ok)
				}
				if st.ReplayedRecords != 0 {
					t.Fatalf("replayed %d records already folded into the checkpoint", st.ReplayedRecords)
				}
				if st.Generation != 1 {
					t.Fatalf("generation %d, want 1", st.Generation)
				}
			}

			// And the recovered engine can itself checkpoint cleanly.
			if err := re.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			assertSameAnswers(t, re, fresh, cs.Q, cs.K, opts)
		})
	}
}

// TestCheckpointConcurrentApply: a batch landing during the (unlocked)
// dataset rewrite must not be lost — the checkpoint publishes the new
// generation but keeps the log and overlay (truncating would drop the
// batch's only durable copy), and the next checkpoint folds it.
func TestCheckpointConcurrentApply(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cs := fixture.RandCase(rng, 30, 4, 2, 2)
	dir := t.TempDir()
	saveDir(t, dir, cs.Tuples, cs.M)
	eng := openDurable(t, dir, Config{CheckpointBytes: -1})
	defer eng.Close()

	shadow := cloneTuples(cs.Tuples)
	first := randOpTuple(rng, cs.M)
	mustApply(t, eng, Op{Kind: OpInsert, Tuple: first})
	shadow = append(shadow, first)

	// The hook fires between the rewrite and the publish phase — the
	// window where a concurrent writer can slip a batch in.
	mid := randOpTuple(rng, cs.M)
	eng.dur.ckptHook = func(step string) error {
		if step == "files" {
			eng.dur.ckptHook = nil
			res, err := eng.Apply([]Op{{Kind: OpInsert, Tuple: mid}})
			if err != nil || res.Applied != 1 {
				t.Errorf("mid-rewrite apply: %+v %v", res, err)
			}
			shadow = append(shadow, mid)
		}
		return nil
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := eng.DurabilityStats()
	if st.Generation != 1 {
		t.Fatalf("generation %d, want 1 (manifest published)", st.Generation)
	}
	if st.Checkpoints != 0 {
		t.Fatalf("checkpoints %d, want 0 (swap skipped: the log still owns a batch)", st.Checkpoints)
	}
	if info, err := wal.Inspect(filepath.Join(dir, wal.LogName)); err != nil || info.Records != 2 {
		t.Fatalf("log records %+v err=%v, want both batches kept", info, err)
	}
	opts := Options{Options: core.Options{Method: core.MethodCPT}}
	fresh := memEngine(cloneTuples(shadow), cs.M, Config{CacheEntries: -1})
	assertSameAnswers(t, eng, fresh, cs.Q, cs.K, opts)

	// Quiescent retry completes: gen 2, log truncated, state unchanged.
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = eng.DurabilityStats()
	if st.Generation != 2 || st.Checkpoints != 1 {
		t.Fatalf("post-retry stats %+v", st)
	}
	if info, _ := wal.Inspect(filepath.Join(dir, wal.LogName)); info.Records != 0 {
		t.Fatalf("log not truncated after quiescent checkpoint: %+v", info)
	}
	assertSameAnswers(t, eng, fresh, cs.Q, cs.K, opts)
}

// TestCheckpointAutoTrigger: a tiny threshold makes Apply compact on
// its own, and the failure of an auto-compaction is reported in
// DurabilityStats, not as an Apply error.
func TestCheckpointAutoTrigger(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	saveDir(t, dir, tuples, 2)
	eng := openDurable(t, dir, Config{CheckpointBytes: 1})
	defer eng.Close()

	shadow := cloneTuples(tuples)
	added := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.42})
	mustApply(t, eng, Op{Kind: OpInsert, Tuple: added})
	shadow = append(shadow, added)
	st := eng.DurabilityStats()
	if st.Checkpoints != 1 || st.LastCheckpointError != "" {
		t.Fatalf("auto-checkpoint stats %+v", st)
	}
	if info, err := wal.Inspect(filepath.Join(dir, wal.LogName)); err != nil || info.Records != 0 {
		t.Fatalf("log not compacted: %+v err=%v", info, err)
	}
	fresh := memEngine(cloneTuples(shadow), 2, Config{CacheEntries: -1})
	assertSameAnswers(t, eng, fresh, q, k, Options{Options: core.Options{Method: core.MethodCPT}})

	// Injected step failure: Apply still succeeds, the error surfaces in
	// the stats, and the next Apply retries and clears it.
	eng.dur.ckptHook = func(s string) error {
		if s == "files" {
			return fmt.Errorf("disk full")
		}
		return nil
	}
	mustApply(t, eng, Op{Kind: OpInsert, Tuple: added})
	shadow = append(shadow, added)
	if st := eng.DurabilityStats(); !strings.Contains(st.LastCheckpointError, "disk full") {
		t.Fatalf("checkpoint failure not surfaced: %+v", st)
	}
	eng.dur.ckptHook = nil
	mustApply(t, eng, Op{Kind: OpInsert, Tuple: added})
	shadow = append(shadow, added)
	st = eng.DurabilityStats()
	if st.LastCheckpointError != "" || st.Checkpoints < 2 {
		t.Fatalf("checkpoint retry did not recover: %+v", st)
	}
	fresh = memEngine(cloneTuples(shadow), 2, Config{CacheEntries: -1})
	assertSameAnswers(t, eng, fresh, q, k, Options{Options: core.Options{Method: core.MethodCPT}})
}

// BenchmarkApplyWAL measures the durability overhead of the write path:
// the same small Apply batch against a non-durable engine, a durable
// one that fsyncs per batch, and a durable one that never fsyncs.
func BenchmarkApplyWAL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cs := fixture.RandCase(rng, 200, 6, 3, 2)
	for _, mode := range []string{"nowal", "sync=batch", "sync=none"} {
		b.Run(mode, func(b *testing.B) {
			dir := b.TempDir()
			saveDir(b, dir, cs.Tuples, cs.M)
			cfg := Config{CheckpointBytes: -1, CacheEntries: -1}
			var eng *Engine
			var err error
			switch mode {
			case "nowal":
				eng, err = OpenDir(dir, 64, cfg)
			case "sync=batch":
				cfg.WAL = true
				eng, err = OpenDir(dir, 64, cfg)
			case "sync=none":
				cfg.WAL = true
				cfg.WALSync = wal.SyncPolicy{Mode: wal.SyncNone}
				eng, err = OpenDir(dir, 64, cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			tu := randOpTuple(rng, cs.M)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Apply([]Op{
					{Kind: OpUpdate, ID: i % len(cs.Tuples), Tuple: tu},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
