package engine

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/vec"
)

// wideEngine builds an engine over a 70-dimension dataset, enough to
// form in-range queries beyond the 64-dimension executor limit.
func wideEngine() *Engine {
	var tuples []vec.Sparse
	for i := 0; i < 4; i++ {
		tuples = append(tuples, vec.MustSparse(vec.Entry{Dim: i, Val: 0.5}, vec.Entry{Dim: 65 + i, Val: 0.25}))
	}
	return memEngine(tuples, 70, Config{})
}

func seq(n int) ([]int, []float64) {
	dims := make([]int, n)
	weights := make([]float64, n)
	for i := range dims {
		dims[i], weights[i] = i, 0.5
	}
	return dims, weights
}

// TestValidateRejectsOversizedQuery: a query with more dimensions than
// the executor's 64-bit partition masks can carry must be rejected as a
// client fault (ErrInvalid), not reach the panic in topk.New.
func TestValidateRejectsOversizedQuery(t *testing.T) {
	eng := wideEngine()
	dims, weights := seq(65)
	q := vec.Query{Dims: dims, Weights: weights}

	if _, err := eng.Analyze(context.Background(), q, 2, Options{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Analyze(65 dims) err %v, want ErrInvalid", err)
	}
	if _, _, err := eng.TopK(context.Background(), q, 2); !errors.Is(err, ErrInvalid) {
		t.Fatalf("TopK(65 dims) err %v, want ErrInvalid", err)
	}
	if _, _, err := eng.TopKTrace(context.Background(), q, 2); !errors.Is(err, ErrInvalid) {
		t.Fatalf("TopKTrace(65 dims) err %v, want ErrInvalid", err)
	}

	// Exactly 64 dimensions is the boundary and must execute fine.
	dims, weights = seq(64)
	if _, _, err := eng.TopK(context.Background(), vec.Query{Dims: dims, Weights: weights}, 2); err != nil {
		t.Fatalf("TopK(64 dims): %v", err)
	}
}

// TestValidateRejectsMalformedQueries: hand-built queries that bypass
// vec.NewQuery must still be rejected before they can corrupt the
// executor's mask accounting.
func TestValidateRejectsMalformedQueries(t *testing.T) {
	eng := wideEngine()
	cases := []struct {
		name string
		q    vec.Query
	}{
		{"duplicate dims", vec.Query{Dims: []int{1, 1}, Weights: []float64{0.5, 0.5}}},
		{"unsorted dims", vec.Query{Dims: []int{3, 1}, Weights: []float64{0.5, 0.5}}},
		{"weight count mismatch", vec.Query{Dims: []int{1, 2}, Weights: []float64{0.5}}},
		{"negative weight", vec.Query{Dims: []int{1}, Weights: []float64{-0.5}}},
		{"weight above one", vec.Query{Dims: []int{1}, Weights: []float64{1.5}}},
		{"NaN weight", vec.Query{Dims: []int{1}, Weights: []float64{math.NaN()}}},
	}
	for _, tc := range cases {
		if _, err := eng.Analyze(context.Background(), tc.q, 2, Options{Options: core.Options{Method: core.MethodCPT}}); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err %v, want ErrInvalid", tc.name, err)
		}
		if _, _, err := eng.TopK(context.Background(), tc.q, 2); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: TopK err %v, want ErrInvalid", tc.name, err)
		}
	}
}
