// Durability: the engine side of the write-ahead-log subsystem
// (internal/wal). A durable engine opens a data *directory* instead of
// two file paths, because the set of live files is itself mutable state:
// the manifest names the current tuple/list generation, wal.log holds
// every Apply batch since that generation was cut, and checkpoint
// compaction atomically advances both.
//
// # Recovery (OpenDir)
//
// OpenDir resolves the manifest, opens the named tuple/list files,
// wraps them in the write overlay and replays wal.log into it — records
// at or below the manifest's LastSeq are already folded into the files
// and are skipped, a torn final record is truncated away, and anything
// worse is refused as corruption. After replay the engine serves
// exactly the state of the last acknowledged batch (minus whatever the
// sync policy had not yet pushed to stable storage).
//
// # Checkpoint compaction
//
// When the log or the overlay delta crosses Config.CheckpointBytes, the
// engine folds the live view into fresh dataset files. The ordering is
// crash-safe; a crash between any two steps recovers to a consistent
// state:
//
//  1. write tuples.gNNNNNN.dat / lists.gNNNNNN.dat from the overlay's
//     materialized view and fsync them (crash here: manifest still
//     names the old generation, the full log replays — the orphan files
//     are ignored and overwritten by the next attempt);
//  2. atomically replace MANIFEST naming the new files and the last
//     sequence they contain (crash here: the new generation serves, and
//     replay skips every record at or below LastSeq instead of
//     double-applying);
//  3. truncate the log (crash here: the log is already empty — nothing
//     to replay);
//  4. swap the live index to the new generation and drop the previous
//     checkpoint's files (in-memory only; a crash just reopens).
//
// The expensive rewrite runs off the engine's write lock (queries keep
// flowing; only the publish steps drain them briefly); see checkpoint()
// for the phase structure. The cached analyses survive: the logical
// dataset is unchanged, only its physical layout moved.
package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrManifestMoved tags a snapshot (lock-free) OpenDir that kept racing
// a concurrent writer's checkpoints: every one of its
// SnapshotOpenAttempts attempts found the manifest replaced (or the
// generation files swept) mid-open. Callers can retry later or back
// off; the directory itself is healthy — it is just being compacted
// faster than the open can complete.
var ErrManifestMoved = errors.New("manifest moved by a concurrent checkpoint")

// SnapshotOpenAttempts is how many times a lock-free snapshot open
// retries when a concurrent checkpoint publication moves the manifest
// under it before giving up with ErrManifestMoved.
const SnapshotOpenAttempts = 4

// DefaultCheckpointBytes is the compaction threshold applied when
// Config.CheckpointBytes is zero: the log or overlay delta crossing it
// triggers a checkpoint.
const DefaultCheckpointBytes = 64 << 20

// durable bundles the engine's WAL state; nil on non-durable engines.
type durable struct {
	log       *wal.Writer
	lock      *wal.DirLock // the directory's exclusive writer role
	dir       string
	gen       uint64
	poolPages int

	replayedRecords int
	replayedOps     int
	tornBytes       int64

	// ckptMu serializes checkpoints against each other (they span lock
	// regions, so the engine's RWMutex alone cannot).
	ckptMu          sync.Mutex
	checkpoints     atomic.Int64
	checkpointBytes int64        // resolved threshold; <= 0 disables auto-compaction
	lastCkptErr     atomic.Value // string: last auto-checkpoint failure

	// ckptHook, when non-nil, is called after each named checkpoint step
	// ("files", "manifest", "truncate"); returning an error aborts the
	// checkpoint there. Crash-injection tests use it to stop the
	// sequence mid-flight and reopen the directory as a fresh process
	// would.
	ckptHook func(step string) error
}

// DurabilityStats is a point-in-time snapshot of the WAL subsystem.
type DurabilityStats struct {
	// Enabled reports whether this engine has a write-ahead log.
	Enabled bool
	// Dir is the data directory; Generation the live checkpoint
	// generation (0 = original files).
	Dir        string
	Generation uint64
	// SyncPolicy renders the writer's fsync policy.
	SyncPolicy string
	// NextSeq is the sequence number the next batch will get; LogBytes
	// the current log length; Appends/Syncs the writer's counters.
	NextSeq  uint64
	LogBytes int64
	Appends  int64
	Syncs    int64
	// ReplayedRecords/ReplayedOps count what recovery applied at open;
	// TruncatedBytes is the torn tail repaired then.
	ReplayedRecords int
	ReplayedOps     int
	TruncatedBytes  int64
	// Checkpoints counts completed compactions; CheckpointBytes is the
	// auto-compaction threshold (<= 0 disabled); LastCheckpointError is
	// the most recent auto-compaction failure ("" when none).
	Checkpoints         int64
	CheckpointBytes     int64
	LastCheckpointError string
}

// Durable reports whether the engine has a write-ahead log.
func (e *Engine) Durable() bool { return e.dur != nil }

// DurabilityStats snapshots the WAL subsystem (zero value when the
// engine is not durable).
func (e *Engine) DurabilityStats() DurabilityStats {
	if e.dur == nil {
		return DurabilityStats{}
	}
	d := e.dur
	st := DurabilityStats{
		Enabled:         true,
		Dir:             d.dir,
		SyncPolicy:      d.log.Policy().String(),
		NextSeq:         d.log.NextSeq(),
		LogBytes:        d.log.Size(),
		Appends:         d.log.Appends(),
		Syncs:           d.log.Syncs(),
		ReplayedRecords: d.replayedRecords,
		ReplayedOps:     d.replayedOps,
		TruncatedBytes:  d.tornBytes,
		Checkpoints:     d.checkpoints.Load(),
		CheckpointBytes: d.checkpointBytes,
	}
	e.mu.RLock()
	st.Generation = d.gen
	e.mu.RUnlock()
	if s, _ := d.lastCkptErr.Load().(string); s != "" {
		st.LastCheckpointError = s
	}
	return st
}

// OverlayStats measures the write overlay's in-memory delta; ok is
// false when the index is not overlay-backed (MemIndex engines).
func (e *Engine) OverlayStats() (lists.DeltaStats, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ov, ok := e.ix.(*lists.Overlay)
	if !ok {
		return lists.DeltaStats{}, false
	}
	return ov.DeltaStats(), true
}

// OpenDir opens a persisted dataset directory, following its manifest
// to the live tuple/list generation. With Config.WAL set (and not
// ReadOnly) the engine takes the directory's writer lock (one durable
// writer per directory — a second one would interleave log frames and
// corrupt it), appends every Apply batch to wal.log and compacts past
// Config.CheckpointBytes; recovery replays the log before serving.
// Without WAL the directory is still opened manifest-aware and an
// existing log is replayed read-only, so neither a -wal=false restart
// nor a side-car tool ever serves state missing acknowledged batches;
// these snapshot opens retry when a concurrent writer's checkpoint
// moves the manifest mid-open.
func OpenDir(dir string, poolPages int, cfg Config) (*Engine, error) {
	if cfg.WAL && !cfg.ReadOnly {
		return openDurableDir(dir, poolPages, cfg)
	}
	// Snapshot open: no lock is held, so a live writer can publish a
	// checkpoint (new manifest, truncated log, removed old generation)
	// at any point while we read. Detect it — the manifest differing
	// after the open, or the open tripping over vanishing files — and
	// start over against the new generation. After SnapshotOpenAttempts
	// consecutive races the open gives up with the typed
	// ErrManifestMoved (never the last raw I/O error, which would
	// misread checkpoint churn as corruption).
	var lastErr error
	for attempt := 0; attempt < SnapshotOpenAttempts; attempt++ {
		before, e, err := openSnapshot(dir, poolPages, cfg)
		if err == nil {
			after, aerr := currentManifest(dir)
			if aerr == nil && sameGeneration(after, before) {
				return e, nil
			}
			e.Close()
			lastErr = fmt.Errorf("checkpoint published during open")
			continue
		}
		lastErr = err
		if after, aerr := currentManifest(dir); aerr != nil || sameGeneration(after, before) {
			return nil, err // a real failure, not checkpoint churn
		}
	}
	return nil, fmt.Errorf("engine: %s: open raced concurrent checkpoints %d times (last: %v): %w",
		dir, SnapshotOpenAttempts, lastErr, ErrManifestMoved)
}

// sameGeneration reports whether two manifests name the same dataset
// generation — the snapshot open's moved-under-us check. Epoch-only
// manifest rewrites (a fencing promotion) do not move any files, so
// they are not a reason to restart an open.
func sameGeneration(a, b wal.Manifest) bool {
	return a.Gen == b.Gen && a.Tuples == b.Tuples && a.Lists == b.Lists && a.LastSeq == b.LastSeq
}

// currentManifest reads dir's manifest (the implied default when none
// exists) for the snapshot open's moved-under-us check.
func currentManifest(dir string) (wal.Manifest, error) {
	m, ok, err := wal.LoadManifest(dir)
	if err != nil {
		return wal.Manifest{}, err
	}
	if !ok {
		m = wal.DefaultManifest()
	}
	return m, nil
}

// openSnapshotRaceHook, when non-nil, runs right after the manifest is
// resolved — the window a concurrent checkpoint publication races.
// Tests use it to move the manifest deterministically.
var openSnapshotRaceHook func()

// openSnapshot performs one manifest-resolved, log-replaying open
// without taking the writer lock, returning the manifest it started
// from so the caller can detect a concurrent checkpoint.
func openSnapshot(dir string, poolPages int, cfg Config) (wal.Manifest, *Engine, error) {
	tuplePath, listPath, man, err := wal.ResolveDataset(dir)
	if err != nil {
		return man, nil, fmt.Errorf("engine: %w", err)
	}
	if openSnapshotRaceHook != nil {
		openSnapshotRaceHook()
	}
	if cfg.VerifyChecksums {
		for _, p := range []string{tuplePath, listPath} {
			if err := storage.VerifyChecksum(p); err != nil {
				return man, nil, fmt.Errorf("engine: verify %s: %w", p, err)
			}
		}
	}
	ix, err := lists.OpenDiskIndex(tuplePath, listPath, poolPages)
	if err != nil {
		return man, nil, err
	}
	// An existing log holds committed batches the dataset files lack;
	// serve them even though this open will not write.
	ov := lists.NewOverlay(ix)
	replayedOps := 0
	res, err := wal.Replay(filepath.Join(dir, wal.LogName), man.LastSeq, replayInto(ov, &replayedOps))
	if err != nil {
		ix.Close()
		return man, nil, fmt.Errorf("engine: replay %s: %w", wal.LogName, err)
	}
	var top lists.Index = ov
	if cfg.ReadOnly && res.Records == 0 {
		top = ix // nothing replayed: serve the raw files
	}
	e := New(top, cfg)
	e.closer = ix.Close
	e.epoch.Store(man.Epoch)
	e.epochs = append([]wal.EpochStart(nil), man.Epochs...)
	return man, e, nil
}

// openDurableDir is the writer-role open: lock, resolve, replay, attach
// the log.
func openDurableDir(dir string, poolPages int, cfg Config) (*Engine, error) {
	// The lock comes first: once held, no other writer can move the
	// manifest or the log underneath the steps below.
	lock, err := wal.AcquireDirLock(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	fail := func(err error) (*Engine, error) {
		lock.Release()
		return nil, err
	}
	tuplePath, listPath, man, err := wal.ResolveDataset(dir)
	if err != nil {
		return fail(fmt.Errorf("engine: %w", err))
	}
	// With the writer role secured, garbage from interrupted checkpoints
	// (generation files no manifest references) can be swept.
	wal.RemoveStaleGenerations(dir, man.Gen)
	if cfg.VerifyChecksums {
		for _, p := range []string{tuplePath, listPath} {
			if err := storage.VerifyChecksum(p); err != nil {
				return fail(fmt.Errorf("engine: verify %s: %w", p, err))
			}
		}
	}
	ix, err := lists.OpenDiskIndex(tuplePath, listPath, poolPages)
	if err != nil {
		return fail(err)
	}
	ov := lists.NewOverlay(ix)
	replayedOps := 0
	w, res, err := wal.Open(filepath.Join(dir, wal.LogName), cfg.WALSync, man.LastSeq, replayInto(ov, &replayedOps))
	if err != nil {
		ix.Close()
		return fail(fmt.Errorf("engine: open wal: %w", err))
	}
	e := New(ov, cfg)
	e.closer = ix.Close
	threshold := cfg.CheckpointBytes
	if threshold == 0 {
		threshold = DefaultCheckpointBytes
	}
	e.dur = &durable{
		log:             w,
		lock:            lock,
		dir:             dir,
		gen:             man.Gen,
		poolPages:       poolPages,
		replayedRecords: res.Records,
		replayedOps:     replayedOps,
		tornBytes:       res.TruncatedBytes,
		checkpointBytes: threshold,
	}
	// Fencing state survives restarts through the manifest: a deposed
	// primary that crashed and came back still knows its epoch (and its
	// promotion timeline) before serving a single request.
	e.epoch.Store(man.Epoch)
	e.epochs = append([]wal.EpochStart(nil), man.Epochs...)
	return e, nil
}

// replayInto adapts a logged batch back onto the overlay through the
// same mutation entry points live Apply uses. Per-op failures are
// skipped, not fatal: they failed identically when first applied (the
// mutation code is deterministic), so skipping reproduces the committed
// state exactly — including insert-id assignment, which only advances
// on success.
func replayInto(ov *lists.Overlay, applied *int) func(seq uint64, ops []wal.Op) error {
	return func(seq uint64, ops []wal.Op) error {
		for _, op := range ops {
			var err error
			switch op.Kind {
			case wal.OpInsert:
				_, err = ov.Insert(op.Tuple)
			case wal.OpUpdate:
				_, err = ov.Update(int(op.ID), op.Tuple)
			case wal.OpDelete:
				_, err = ov.Delete(int(op.ID))
			}
			if err == nil {
				*applied++
			}
		}
		return nil
	}
}

// walOps converts a batch for logging. Ops the engine will reject
// outright (unknown kinds) are dropped: they cannot mutate, so the log
// stays a record of effective mutations only.
func walOps(ops []Op) []wal.Op {
	out := make([]wal.Op, 0, len(ops))
	for _, op := range ops {
		var k wal.OpKind
		switch op.Kind {
		case OpInsert:
			k = wal.OpInsert
		case OpUpdate:
			k = wal.OpUpdate
		case OpDelete:
			k = wal.OpDelete
		default:
			continue
		}
		out = append(out, wal.Op{Kind: k, ID: int64(op.ID), Tuple: op.Tuple})
	}
	return out
}

// Checkpoint forces a compaction now, regardless of thresholds.
func (e *Engine) Checkpoint() error {
	if e.dur == nil {
		return fmt.Errorf("engine: checkpoint requires a durable engine (OpenDir with Config.WAL)")
	}
	return e.checkpoint(true)
}

// maybeCheckpoint runs a compaction when the log or the overlay delta
// has outgrown the threshold. Called by Apply AFTER it releases the
// write lock, so queries keep flowing during the dataset rewrite. A
// failure is recorded in DurabilityStats rather than failing the Apply:
// the batch itself is already durable in the log, and the next batch
// retries the compaction.
func (e *Engine) maybeCheckpoint() {
	d := e.dur
	if d == nil || d.checkpointBytes <= 0 || !e.checkpointDue() {
		return
	}
	if err := e.checkpoint(false); err != nil {
		d.lastCkptErr.Store(err.Error())
	} else {
		d.lastCkptErr.Store("")
	}
}

// checkpointDue reports whether the log or overlay delta crossed the
// compaction threshold.
func (e *Engine) checkpointDue() bool {
	d := e.dur
	e.mu.RLock()
	defer e.mu.RUnlock()
	ov, ok := e.ix.(*lists.Overlay)
	if !ok {
		return false
	}
	return d.log.Size() >= d.checkpointBytes || ov.DeltaStats().Bytes >= d.checkpointBytes
}

// checkpoint performs the compaction sequence of the package comment in
// three phases, keeping the expensive dataset rewrite off the engine's
// write lock:
//
//   - snapshot (read lock): materialize the live view and pin the log
//     position — queries run concurrently, mutations are excluded;
//   - rewrite (no lock): write and fsync the new generation's files;
//   - publish (write lock): manifest rename, log truncation, live-index
//     swap, stale-generation sweep.
//
// If a batch lands between snapshot and publish, the new files are
// missing it: the manifest is still published (the files plus the
// intact log are consistent — replay skips only what they fold), but
// the truncation and swap are skipped and the next trigger retries.
// force skips the threshold re-check.
func (e *Engine) checkpoint(force bool) error {
	d := e.dur
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if !force && !e.checkpointDue() {
		return nil // another trigger compacted while we queued
	}
	ckptStart := time.Now()
	defer func() { mCheckpointSeconds.Observe(time.Since(ckptStart).Seconds()) }()
	hook := func(step string) error {
		if d.ckptHook != nil {
			return d.ckptHook(step)
		}
		return nil
	}

	// Phase 1: snapshot. ckptMu is held, so d.gen cannot move under us.
	e.mu.RLock()
	ov, ok := e.ix.(*lists.Overlay)
	if !ok {
		e.mu.RUnlock()
		return fmt.Errorf("engine: checkpoint needs an overlay-backed index")
	}
	snap := ov.Materialize()
	seq := d.log.LastSeq()
	dim := e.ix.Dim()
	e.mu.RUnlock()

	// Phase 2: write and fsync the new generation's files.
	gen := d.gen + 1
	tn, ln := wal.GenFileNames(gen)
	tuplePath, listPath := filepath.Join(d.dir, tn), filepath.Join(d.dir, ln)
	if err := lists.SaveDataset(tuplePath, listPath, snap, dim); err != nil {
		return fmt.Errorf("engine: checkpoint write: %w", err)
	}
	for _, p := range []string{tuplePath, listPath} {
		if err := wal.SyncFile(p); err != nil {
			return fmt.Errorf("engine: checkpoint sync %s: %w", p, err)
		}
	}
	if err := wal.SyncDir(d.dir); err != nil {
		return fmt.Errorf("engine: checkpoint sync dir: %w", err)
	}
	if err := hook("files"); err != nil {
		return err
	}

	// Phase 3: publish. The write lock drains in-flight queries for the
	// cheap steps only.
	e.mu.Lock()
	defer e.mu.Unlock()

	// The manifest names the snapshot's log position: replay skips
	// exactly what the files fold, so publishing is safe even if more
	// batches have landed since. The in-memory generation advances with
	// the manifest: if any later step fails, a retry must mint a FRESH
	// generation rather than rewrite files the published manifest
	// already names (an in-place rewrite is not atomic — a crash
	// mid-rewrite would leave the manifest pointing at half-written
	// files).
	man := wal.Manifest{Gen: gen, Tuples: tn, Lists: ln, LastSeq: seq,
		Epoch: e.epoch.Load(), Epochs: e.EpochTimeline()}
	if err := man.Save(d.dir); err != nil {
		return fmt.Errorf("engine: checkpoint manifest: %w", err)
	}
	d.gen = gen
	if err := hook("manifest"); err != nil {
		return err
	}

	if d.log.LastSeq() != seq {
		// Batches landed during the rewrite; the new files miss them, so
		// the log must keep its records and the served overlay its
		// delta. Everything is still consistent — the next trigger
		// compacts the remainder onto this generation. Followers still
		// learn the manifest (they may fold their own overlays), but the
		// shipper must keep its frame history: the log was not emptied.
		if e.replSink != nil {
			e.replSink.CheckpointEvent(man, false)
		}
		return nil
	}

	// The log's records are all folded in; drop them.
	if err := d.log.Truncate(); err != nil {
		return fmt.Errorf("engine: checkpoint truncate wal: %w", err)
	}
	if err := hook("truncate"); err != nil {
		return err
	}
	// The shipper can now drop frames at or below the folded sequence;
	// a follower behind them resyncs via snapshot transfer. Delivered
	// under the write lock, so the event is ordered against CommitFrame.
	if e.replSink != nil {
		e.replSink.CheckpointEvent(man, true)
	}

	// Swap the live index to the new generation. The engine-wide I/O
	// meter carries over, so /stats stays cumulative across compactions.
	// Failing here is recoverable: the old index keeps serving the same
	// logical data, and the next open follows the manifest.
	disk, err := lists.OpenDiskIndex(tuplePath, listPath, d.poolPages)
	if err != nil {
		return fmt.Errorf("engine: checkpoint reopen: %w", err)
	}
	newOv := lists.NewOverlay(disk.WithStats(e.ix.Stats()))
	oldClose := e.closer
	e.ix = newOv
	e.mut = newOv
	e.closer = disk.Close
	if oldClose != nil {
		oldClose() // release the previous generation's files
	}
	// Sweep every generation but the live one: the superseded
	// generation plus any orphans earlier failed checkpoints left. The
	// original irgen files (generation 0) never match the pattern.
	wal.RemoveStaleGenerations(d.dir, gen)
	d.checkpoints.Add(1)
	return nil
}
