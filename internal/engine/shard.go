// Shard-side execution surface of the scatter-gather deployment
// (internal/shard, docs/sharding.md). A shard engine is an ordinary
// Engine over the shard's own id-renumbered dataset; what this file
// adds is the second round of a distributed analysis — computing the
// region constraints this shard's tuples impose on a coordinator-merged
// global result — plus the openers for range-partitioned datasets.
package engine

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

// lineContributor is the accessor core.WithImposed's runner exposes for
// the lines the computation offered to the result boundaries.
type lineContributor interface {
	ContributedLines() []topk.Scored
}

// AnalyzeImposed computes the immutable-region constraints this
// engine's tuples impose on an externally merged global result. base is
// this shard's id offset (global id = base + local id); imposed is the
// coordinator's merged top-k under global ids, whose lines stand in for
// the local result throughout the region phases. The returned Output
// carries the shard's constraint regions (global ids everywhere) and
// lines is every shard tuple line the phases offered to the result
// boundaries — the raw material of the coordinator's φ > 0 replay
// merge.
//
// Imposed analyses bypass the answer cache in both directions: the
// output certifies the imposed result, not a local answer, so it can
// neither be served from nor admitted to the cache. The computation is
// forced sequential (core Parallelism ≤ 0) so every Phase-3 pull lands
// in the shared candidate list the contributed-line report reads.
func (e *Engine) AnalyzeImposed(ctx context.Context, q vec.Query, k, base int, imposed []topk.Scored, opts Options) (*core.Output, []topk.Scored, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mQueries.Inc("analyze-imposed")
	if err := e.validate(q, k, opts.Phi); err != nil {
		return nil, nil, err
	}
	if len(imposed) > k {
		return nil, nil, fmt.Errorf("engine: imposed result has %d entries for k=%d: %w", len(imposed), k, ErrInvalid)
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	e.mu.RLock()
	defer e.mu.RUnlock()
	copts := opts.Options
	copts.Parallelism = -1
	ta := topk.New(e.queryIndex(), q, k, opts.policy())
	runner := core.WithImposed(ta, base, imposed)
	out, err := core.ComputeView(ctx, runner, copts)
	if err != nil {
		return nil, nil, err
	}
	observeCompute(out.Metrics.Phase1, out.Metrics.Phase2, out.Metrics.Phase3, ta.SortedAccesses())
	return out, runner.(lineContributor).ContributedLines(), nil
}

// TopKScored answers the query with the full Scored view — ids, exact
// scores AND query-subspace projections — the coordinator needs to
// merge per-shard lists and build the imposed result. Same execution
// path as TopKMetered.
func (e *Engine) TopKScored(ctx context.Context, q vec.Query, k int) ([]topk.Scored, error) {
	res, _, err := e.TopKMetered(ctx, q, k)
	return res, err
}

// ShardDirName returns the conventional subdirectory of shard i inside
// a range-partitioned dataset directory (cmd/irgen -shards).
func ShardDirName(i int) string { return fmt.Sprintf("shard-%d", i) }

// OpenShard opens shard i of a range-partitioned dataset directory —
// the layout cmd/irgen -shards writes: <dir>/shard-<i>/tuples.dat and
// lists.dat. Every shard gets its own buffer pool of poolPages pages.
func OpenShard(dir string, i, poolPages int, cfg Config) (*Engine, error) {
	sd := filepath.Join(dir, ShardDirName(i))
	return Open(filepath.Join(sd, "tuples.dat"), filepath.Join(sd, "lists.dat"), poolPages, cfg)
}

// NewLocalShards partitions a dataset by id range and builds one
// in-memory engine per shard — the local multi-shard mode the property
// suite runs the coordinator against. bases are the ascending partition
// starts (bases[0] must be 0); shard i owns global ids
// [bases[i], bases[i+1]) and renumbers them from 0, with the last shard
// extending to len(tuples). m is the dataset dimensionality.
func NewLocalShards(tuples []vec.Sparse, m int, bases []int, cfg Config) ([]*Engine, error) {
	if len(bases) == 0 || bases[0] != 0 {
		return nil, fmt.Errorf("engine: shard bases must start at 0, have %v", bases)
	}
	engines := make([]*Engine, len(bases))
	for i := range bases {
		lo := bases[i]
		hi := len(tuples)
		if i+1 < len(bases) {
			hi = bases[i+1]
		}
		if lo > hi || hi > len(tuples) {
			return nil, fmt.Errorf("engine: shard %d range [%d,%d) outside dataset of %d", i, lo, hi, len(tuples))
		}
		part := make([]vec.Sparse, hi-lo)
		copy(part, tuples[lo:hi])
		engines[i] = New(lists.NewMemIndex(part, m), cfg)
	}
	return engines, nil
}
