package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fixture"
	"repro/internal/vec"
	"repro/internal/wal"
)

// recordingSink captures the commit stream a primary shipper would see.
type recordingSink struct {
	seqs   []uint64
	frames [][]byte
	ckpts  []wal.Manifest
	truncs []bool
}

func (r *recordingSink) CommitFrame(seq uint64, frame []byte) {
	r.seqs = append(r.seqs, seq)
	r.frames = append(r.frames, frame)
}

func (r *recordingSink) CheckpointEvent(man wal.Manifest, truncated bool) {
	r.ckpts = append(r.ckpts, man)
	r.truncs = append(r.truncs, truncated)
}

// TestCommitSinkStream: every Apply batch reaches the sink as a
// decodable frame with contiguous sequence numbers, in commit order.
func TestCommitSinkStream(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	dir := t.TempDir()
	saveDir(t, dir, tuples, 2)
	eng := openDurable(t, dir, Config{})
	defer eng.Close()
	sink := &recordingSink{}
	eng.SetReplicationSink(sink)

	mustApply(t, eng, Op{Kind: OpInsert, Tuple: vec.MustSparse(vec.Entry{Dim: 0, Val: 0.5})})
	mustApply(t, eng,
		Op{Kind: OpUpdate, ID: 1, Tuple: vec.MustSparse(vec.Entry{Dim: 1, Val: 0.7})},
		Op{Kind: OpDelete, ID: 2},
	)
	if len(sink.seqs) != 2 || sink.seqs[0] != 1 || sink.seqs[1] != 2 {
		t.Fatalf("sink saw seqs %v", sink.seqs)
	}
	seq, ops, err := wal.DecodeRecord(sink.frames[1])
	if err != nil || seq != 2 || len(ops) != 2 {
		t.Fatalf("frame 2 decodes to seq=%d ops=%d err=%v", seq, len(ops), err)
	}
	if ops[0].Kind != wal.OpUpdate || ops[0].ID != 1 || ops[1].Kind != wal.OpDelete || ops[1].ID != 2 {
		t.Fatalf("frame 2 ops %+v", ops)
	}
}

// TestApplyReplicatedSequenceDiscipline: a standby accepts exactly the
// next sequence number, skips duplicates without effect, and refuses
// gaps.
func TestApplyReplicatedSequenceDiscipline(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	dir := t.TempDir()
	saveDir(t, dir, tuples, 2)
	eng := openDurable(t, dir, Config{})
	defer eng.Close()

	ins := []wal.Op{{Kind: wal.OpInsert, Tuple: vec.MustSparse(vec.Entry{Dim: 0, Val: 0.9})}}
	if _, err := eng.ApplyReplicated(2, ins); err == nil {
		t.Fatal("gap (seq 2 before 1) accepted")
	}
	res, err := eng.ApplyReplicated(1, ins)
	if err != nil || res.Applied != 1 {
		t.Fatalf("seq 1: applied=%d err=%v", res.Applied, err)
	}
	n := eng.N()
	// Duplicate delivery: no error, no effect.
	res, err = eng.ApplyReplicated(1, ins)
	if err != nil || res.Applied != 0 || eng.N() != n {
		t.Fatalf("duplicate seq 1: applied=%d n=%d (want %d) err=%v", res.Applied, eng.N(), n, err)
	}
	if eng.LastSeq() != 1 {
		t.Fatalf("LastSeq %d after one replicated batch", eng.LastSeq())
	}
	// Replicated batches survive a reopen like any logged batch.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir, Config{})
	defer re.Close()
	if re.LastSeq() != 1 || re.N() != n {
		t.Fatalf("reopen: seq=%d n=%d (want 1, %d)", re.LastSeq(), re.N(), n)
	}
}

// TestCommitGateQuorumError: a failing commit gate surfaces as
// ErrQuorum while the batch itself stays applied and durable.
func TestCommitGateQuorumError(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	dir := t.TempDir()
	saveDir(t, dir, tuples, 2)
	eng := openDurable(t, dir, Config{})
	defer eng.Close()
	eng.SetCommitGate(func(seq uint64) error { return fmt.Errorf("no followers") })

	n := eng.N()
	res, err := eng.Apply([]Op{{Kind: OpInsert, Tuple: vec.MustSparse(vec.Entry{Dim: 1, Val: 0.4})}})
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("gate failure yielded %v, want ErrQuorum", err)
	}
	if res.Applied != 1 || eng.N() != n+1 || eng.LastSeq() != 1 {
		t.Fatalf("batch not applied despite quorum failure: %+v n=%d seq=%d", res, eng.N(), eng.LastSeq())
	}
}

// TestCheckpointEventSink: a truncating checkpoint reaches the sink
// with its manifest, after the frames it folds.
func TestCheckpointEventSink(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	dir := t.TempDir()
	saveDir(t, dir, tuples, 2)
	eng := openDurable(t, dir, Config{CheckpointBytes: -1})
	defer eng.Close()
	sink := &recordingSink{}
	eng.SetReplicationSink(sink)

	mustApply(t, eng, Op{Kind: OpInsert, Tuple: vec.MustSparse(vec.Entry{Dim: 0, Val: 0.3})})
	mustApply(t, eng, Op{Kind: OpDelete, ID: 0})
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(sink.ckpts) != 1 || !sink.truncs[0] {
		t.Fatalf("sink checkpoints %v truncated %v", sink.ckpts, sink.truncs)
	}
	if got := sink.ckpts[0].LastSeq; got != 2 {
		t.Fatalf("checkpoint folded through seq %d, want 2", got)
	}
}

// TestOpenDirManifestMovedTyped: a snapshot open that loses the race
// against checkpoint publication on every attempt fails with the typed
// ErrManifestMoved, not the last raw I/O error. The race hook moves the
// manifest deterministically in the race window.
func TestOpenDirManifestMovedTyped(t *testing.T) {
	dir := t.TempDir()
	// Seed a manifest naming files that do not exist, as if the named
	// generation were swept by the writer right after publication.
	gen := uint64(1)
	writeMan := func() {
		tn, ln := wal.GenFileNames(gen)
		if err := (wal.Manifest{Gen: gen, Tuples: tn, Lists: ln, LastSeq: gen}).Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	writeMan()
	calls := 0
	openSnapshotRaceHook = func() {
		calls++
		gen++ // every attempt sees the manifest move under it
		writeMan()
	}
	defer func() { openSnapshotRaceHook = nil }()

	_, err := OpenDir(dir, 16, Config{ReadOnly: true})
	if !errors.Is(err, ErrManifestMoved) {
		t.Fatalf("raced open returned %v, want ErrManifestMoved", err)
	}
	if calls != SnapshotOpenAttempts {
		t.Fatalf("open made %d attempts, want %d", calls, SnapshotOpenAttempts)
	}
	// Sanity: without the race the same directory still fails, but with
	// the raw cause (the files really are missing), not the typed race
	// error.
	openSnapshotRaceHook = nil
	if _, err := OpenDir(dir, 16, Config{ReadOnly: true}); err == nil || errors.Is(err, ErrManifestMoved) {
		t.Fatalf("quiescent open returned %v, want a raw open failure", err)
	}
	_ = os.Remove(filepath.Join(dir, wal.ManifestName))
}
