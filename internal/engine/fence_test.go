package engine

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/lists"
	"repro/internal/vec"
	"repro/internal/wal"
)

func fenceTestEngine(t *testing.T) (*Engine, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	tuples := make([]vec.Sparse, 20)
	for i := range tuples {
		tuples[i] = vec.MustSparse(vec.Entry{Dim: 0, Val: rng.Float64()}, vec.Entry{Dim: 1, Val: rng.Float64()})
	}
	if err := lists.SaveDataset(filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat"), tuples, 2); err != nil {
		t.Fatal(err)
	}
	eng, err := OpenDir(dir, 64, Config{WAL: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	return eng, dir
}

func fenceTestOp(rng *rand.Rand) []Op {
	return []Op{{Kind: OpInsert, Tuple: vec.MustSparse(
		vec.Entry{Dim: 0, Val: rng.Float64()}, vec.Entry{Dim: 1, Val: rng.Float64()})}}
}

// TestFenceBlocksApply: a fenced engine refuses local writes with
// ErrFenced but still accepts replicated frames (the rejoin path), and
// the fence lifts when the epoch catches up.
func TestFenceBlocksApply(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	eng, _ := fenceTestEngine(t)
	defer eng.Close()

	if _, err := eng.Apply(fenceTestOp(rng)); err != nil {
		t.Fatal(err)
	}
	eng.Fence(3)
	if !eng.Fenced() {
		t.Fatal("Fence(3) did not fence an epoch-0 engine")
	}
	if _, err := eng.Apply(fenceTestOp(rng)); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced Apply returned %v, want ErrFenced", err)
	}
	// Fencing is monotone: a lower epoch cannot unfence.
	eng.Fence(1)
	if eng.FencedBy() != 3 {
		t.Fatalf("Fence(1) lowered the fence to %d", eng.FencedBy())
	}
	// Advancing past the fencing epoch lifts the fence (the node was
	// re-elected or the operator forced it).
	if err := eng.AdvanceEpoch(4); err != nil {
		t.Fatal(err)
	}
	if eng.Fenced() {
		t.Fatal("epoch 4 > fence 3, but still fenced")
	}
	if _, err := eng.Apply(fenceTestOp(rng)); err != nil {
		t.Fatalf("unfenced Apply failed: %v", err)
	}
}

// TestAdvanceEpochPersists: the fencing epoch and its timeline survive
// close/reopen via the MANIFEST — a restarted deposed primary must not
// boot believing it is current.
func TestAdvanceEpochPersists(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	eng, dir := fenceTestEngine(t)
	if _, err := eng.Apply(fenceTestOp(rng)); err != nil {
		t.Fatal(err)
	}
	seqAtPromotion := eng.LastSeq()
	if err := eng.AdvanceEpoch(2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(fenceTestOp(rng)); err != nil {
		t.Fatal(err)
	}
	// Refusing non-monotone advances.
	if err := eng.AdvanceEpoch(2); err == nil {
		t.Fatal("AdvanceEpoch(2) twice succeeded")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenDir(dir, 64, Config{WAL: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Epoch(); got != 2 {
		t.Fatalf("reopened epoch %d, want 2", got)
	}
	// The timeline maps pre-promotion sequences to epoch 0 and
	// post-promotion ones to epoch 2.
	if got := reopened.EpochAt(seqAtPromotion); got != 0 {
		t.Fatalf("EpochAt(%d) = %d, want 0", seqAtPromotion, got)
	}
	if got := reopened.EpochAt(seqAtPromotion + 1); got != 2 {
		t.Fatalf("EpochAt(%d) = %d, want 2", seqAtPromotion+1, got)
	}
}

// TestAdoptEpoch: a follower adopts the primary's timeline wholesale
// and refuses to adopt backwards.
func TestAdoptEpoch(t *testing.T) {
	eng, _ := fenceTestEngine(t)
	defer eng.Close()

	timeline := []wal.EpochStart{{Epoch: 2, StartSeq: 5}, {Epoch: 4, StartSeq: 9}}
	if err := eng.AdoptEpoch(4, timeline); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 4 {
		t.Fatalf("epoch %d after adopt, want 4", eng.Epoch())
	}
	if got := eng.EpochAt(7); got != 2 {
		t.Fatalf("EpochAt(7) = %d, want 2", got)
	}
	if err := eng.AdoptEpoch(3, nil); err == nil {
		t.Fatal("adopted a lower epoch")
	}
	// Re-adopting the identical state is a no-op, not an error — every
	// reconnect handshake does it.
	if err := eng.AdoptEpoch(4, timeline); err != nil {
		t.Fatalf("idempotent adopt failed: %v", err)
	}
}
