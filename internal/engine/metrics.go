// Observability: the engine's obs registrations and the per-query
// timing envelope. Metrics are package-level vars (registered once at
// init — the obsreg analyzer enforces it) and process-wide: several
// engines in one process (tests, a demoted-then-promoted node) share
// them, which is the Prometheus-normal aggregation.
//
// The deterministic core stays clock-free: everything here is timed in
// the engine envelope (time.Now is legal in this package) or read back
// from core.Metrics, whose phases the core filled through its single
// stopwatch seam.
package engine

import (
	"time"

	"repro/internal/obs"
)

var (
	mQueries = obs.NewCounterVec("ir_engine_queries_total",
		"queries answered by the engine, by kind", "kind")
	mSortedAccesses = obs.NewHistogram("ir_engine_ta_sorted_accesses",
		"TA sorted accesses per computed query (the paper's stopping depth)",
		obs.CountBuckets)
	mPhaseSeconds = obs.NewHistogramVec("ir_engine_phase_seconds",
		"per-phase computation time of one analysis: scan is the TA phase, evaluate the must-appear region pass, pulls the best-k-bounds deepening",
		"phase", obs.LatencyBuckets)
	mApplySeconds = obs.NewHistogram("ir_engine_apply_seconds",
		"wall time of one Apply mutation batch (WAL append + replication gate + index mutation + invalidation)",
		obs.LatencyBuckets)
	mCheckpointSeconds = obs.NewHistogram("ir_engine_checkpoint_seconds",
		"wall time of one durable checkpoint (snapshot, rewrite, publish)",
		obs.LatencyBuckets)
	mCacheEvents = obs.NewCounterVec("ir_engine_cache_events_total",
		"answer-cache outcomes: hit (exact-weight analysis), hit-region (region-certified top-k), miss, bypass (NoCache request), evict",
		"event")
)

// Timings is the engine envelope around one query, complementing the
// core's own phase metering: how long validation, the cache probe, the
// worker-pool queue and cache admission took. Scan/region time lives
// in core.Metrics (Phase1 vs Phase2+Phase3); I/O counts in
// Metrics.SeqPages/RandReads. All fields are wall-clock durations.
type Timings struct {
	Validate time.Duration
	Cache    time.Duration
	Queue    time.Duration
	Admit    time.Duration
}

// observeCompute records the per-phase histograms and the stopping
// depth of one full computation.
func observeCompute(phase1, phase2, phase3 time.Duration, sortedAccesses int) {
	mPhaseSeconds.Observe("scan", phase1.Seconds())
	mPhaseSeconds.Observe("evaluate", phase2.Seconds())
	mPhaseSeconds.Observe("pulls", phase3.Seconds())
	mSortedAccesses.Observe(float64(sortedAccesses))
}
