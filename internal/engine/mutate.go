// The write path: Engine.Apply feeds tuple inserts, updates and deletes
// to a mutable index and decides — per cached analysis — whether the
// cached certificate survives the change.
//
// # Region-certified invalidation
//
// A cached entry certifies that every weight vector w' inside its
// cross-polytope P (anchor w, semi-axes per dimension j of [Lo_j, Hi_j])
// has the cached ranked result R. Within P no perturbation occurs, so
// the k-th line is the cached d_k everywhere in P and every result line
// stays above it. A changed tuple t with subspace projection p can break
// the certificate only if its score line can reach some cached result
// line inside P, i.e. if for some result member r
//
//	max_{w' ∈ P}  w'·(p − r.Proj)  ≥  0.
//
// The gap is linear in w' and P is the convex hull of the 2·qlen axis
// vertices w + Hi_j·e_j and w + Lo_j·e_j, so the maximum has the closed
// form
//
//	w·c + max_j max(Hi_j·c_j, Lo_j·c_j),   c = p − r.Proj
//
// — O(k·qlen) arithmetic over the cached projections, no index I/O. If
// the maximum is negative for every result line (checking d_k first: it
// is the tightest), the change provably cannot alter the ranked result,
// the region bounds, or the boundary perturbation anywhere in P, and the
// entry keeps serving. Checking all result lines (not just d_k) also
// covers CompositionOnly entries, whose members may reorder inside P.
//
// Conservative short-cuts, in order:
//
//   - a change whose old and new projections onto the entry's subspace
//     are identical cannot affect the entry at all (survive);
//   - a changed tuple that IS a cached result member invalidates the
//     entry (its cached projection and scores are stale);
//   - an entry whose result holds fewer than k tuples is invalidated by
//     any subspace-touching change (anything can join an under-full
//     result);
//   - entries computed with φ > 0 are invalidated by any
//     subspace-touching change: their perturbation schedules describe
//     the ranking beyond P, where the vertex check certifies nothing.
package engine

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/vec"
)

// ErrImmutable tags Apply calls on an engine whose index cannot change
// (a read-only configuration, or an index without a write path).
var ErrImmutable = errors.New("index is immutable")

// OpKind selects a mutation.
type OpKind int

const (
	// OpInsert adds Op.Tuple as a new tuple.
	OpInsert OpKind = iota
	// OpUpdate replaces tuple Op.ID with Op.Tuple.
	OpUpdate
	// OpDelete removes tuple Op.ID.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one mutation of a batch.
type Op struct {
	Kind  OpKind
	ID    int        // Update/Delete target
	Tuple vec.Sparse // Insert/Update payload
}

// OpResult is the per-op outcome: the assigned (insert) or targeted id,
// or the op's error. Ops apply independently, in order; one failed op
// does not roll back its batch.
type OpResult struct {
	ID  int
	Err error
}

// ApplyResult summarizes one Apply batch.
type ApplyResult struct {
	// Results is parallel to the op slice.
	Results []OpResult
	// Applied counts ops that mutated the index.
	Applied int
	// CacheChecked / CacheEvicted / CacheSurvived count cached entries
	// examined by the invalidation certificate and its verdicts.
	CacheChecked  int
	CacheEvicted  int
	CacheSurvived int
}

// MutationStats is a point-in-time snapshot of the engine's write-path
// counters.
type MutationStats struct {
	Inserts, Updates, Deletes int64
	Batches                   int64
	CacheChecked              int64
	CacheEvicted              int64
	CacheSurvived             int64
}

// Mutable reports whether Apply is enabled.
func (e *Engine) Mutable() bool { return e.mut != nil }

// MutationStats snapshots the write-path counters.
func (e *Engine) MutationStats() MutationStats {
	return MutationStats{
		Inserts:       e.mutInserts.Load(),
		Updates:       e.mutUpdates.Load(),
		Deletes:       e.mutDeletes.Load(),
		Batches:       e.mutBatches.Load(),
		CacheChecked:  e.invChecked.Load(),
		CacheEvicted:  e.invEvicted.Load(),
		CacheSurvived: e.invSurvived.Load(),
	}
}

// tupleChange records one applied mutation for the invalidation pass.
// hasOld/hasNew distinguish absence from an empty tuple.
type tupleChange struct {
	id       int
	old, new vec.Sparse
	hasOld   bool
	hasNew   bool
}

// Apply executes a batch of mutations and invalidates exactly the
// cached analyses the changes can affect (see the package comment for
// the certificate). The batch is applied under the engine's write lock:
// it waits for in-flight queries to drain, and once Apply returns every
// answer — cached or computed — reflects the post-batch dataset. Ops
// apply independently in order; per-op failures are reported in
// Results and do not fail the batch. On a durable engine the batch is
// appended to the write-ahead log before any mutation, and an outgrown
// log or overlay triggers checkpoint compaction before Apply returns
// (see durable.go).
func (e *Engine) Apply(ops []Op) (ApplyResult, error) {
	if e.mut == nil {
		return ApplyResult{}, fmt.Errorf("engine: %w", ErrImmutable)
	}
	if len(ops) == 0 {
		return ApplyResult{}, fmt.Errorf("engine: empty op batch: %w", ErrInvalid)
	}
	applyStart := time.Now()
	defer func() { mApplySeconds.Observe(time.Since(applyStart).Seconds()) }()
	res, seq, gate, err := e.lockAndApply(ops)
	if err != nil {
		return res, err
	}
	// Quorum gate: with the write lock released (queries keep flowing),
	// wait for followers to confirm fsync of the batch's frame. A gate
	// failure does not undo the batch — it is committed locally and
	// will replicate eventually — but the caller is told its
	// replication-durability guarantee was not met (ErrQuorum). The gate
	// was captured under the write lock: promotion attaches it before
	// the role flip, so no batch can slip between sink and gate.
	var gateErr error
	if gate != nil && seq != 0 {
		if gerr := gate(seq); gerr != nil {
			gateErr = fmt.Errorf("engine: batch %d applied locally but %w: %v", seq, ErrQuorum, gerr)
		}
	}
	// Compaction happens after the write lock is released, so queries
	// are not stalled behind the dataset rewrite. It must run even when
	// the quorum gate failed: during a follower outage the batches keep
	// committing locally, and skipping compaction would let the log,
	// overlay and the shipper's frame buffer grow without bound.
	e.maybeCheckpoint()
	return res, gateErr
}

// lockAndApply is Apply's critical section: it takes the write lock
// itself (hence the name — a *Locked suffix would claim the caller
// holds it), then fence check, log, ship, mutate, invalidate. It
// returns the batch's WAL sequence number (0 when the engine is not
// durable or nothing was logged) and the commit gate captured under
// the lock.
func (e *Engine) lockAndApply(ops []Op) (ApplyResult, uint64, func(seq uint64) error, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Fencing: once a newer primary epoch has been observed, this node
	// must not commit client writes — they would branch the history a
	// live primary is extending under the new epoch.
	if fb := e.fencedBy.Load(); fb > e.epoch.Load() {
		return ApplyResult{}, 0, nil, fmt.Errorf("engine: epoch %d %w (observed epoch %d)", e.epoch.Load(), ErrFenced, fb)
	}
	var seq uint64
	// Write-ahead: the batch reaches the log (and, under the fsync-
	// per-batch policy, stable storage) before any overlay state
	// changes, so an acknowledged batch can always be replayed. A log
	// failure aborts the batch untouched.
	if e.dur != nil {
		if wops := walOps(ops); len(wops) > 0 {
			s, frame, err := e.dur.log.AppendFrame(wops)
			if err != nil {
				return ApplyResult{}, 0, nil, fmt.Errorf("engine: wal append: %w", err)
			}
			seq = s
			// Ship the committed frame while still under the write lock:
			// the sink's event order must be the log's sequence order,
			// and the bytes are exactly what the log holds (no second
			// serialization, no way to skip a frame and tear a gap into
			// the stream).
			if e.replSink != nil {
				e.replSink.CommitFrame(seq, frame)
			}
		}
	}
	return e.runOpsLocked(ops), seq, e.commitGate, nil
}

// runOpsLocked applies a batch's ops to the index and runs the
// region-certified cache invalidation. Callers hold the write lock and
// have already committed the batch to the WAL (durable engines);
// Apply and ApplyReplicated share this path, which is what makes a
// standby's replay behaviorally identical to the primary's original
// execution.
func (e *Engine) runOpsLocked(ops []Op) ApplyResult {
	res := ApplyResult{Results: make([]OpResult, len(ops))}
	changes := make([]tupleChange, 0, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			id, err := e.mut.Insert(op.Tuple)
			res.Results[i] = OpResult{ID: id, Err: err}
			if err == nil {
				changes = append(changes, tupleChange{id: id, new: op.Tuple, hasNew: true})
				e.mutInserts.Add(1)
			}
		case OpUpdate:
			old, err := e.mut.Update(op.ID, op.Tuple)
			res.Results[i] = OpResult{ID: op.ID, Err: err}
			if err == nil {
				changes = append(changes, tupleChange{id: op.ID, old: old, new: op.Tuple, hasOld: true, hasNew: true})
				e.mutUpdates.Add(1)
			}
		case OpDelete:
			old, err := e.mut.Delete(op.ID)
			res.Results[i] = OpResult{ID: op.ID, Err: err}
			if err == nil {
				changes = append(changes, tupleChange{id: op.ID, old: old, hasOld: true})
				e.mutDeletes.Add(1)
			}
		default:
			res.Results[i] = OpResult{ID: -1, Err: fmt.Errorf("engine: unknown op kind %d: %w", int(op.Kind), ErrInvalid)}
		}
		if res.Results[i].Err == nil {
			res.Applied++
		}
	}
	e.mutBatches.Add(1)

	if e.cache != nil && len(changes) > 0 {
		checked, evicted := e.cache.invalidateCertified(changes)
		res.CacheChecked, res.CacheEvicted, res.CacheSurvived = checked, evicted, checked-evicted
		e.invChecked.Add(int64(checked))
		e.invEvicted.Add(int64(evicted))
		e.invSurvived.Add(int64(checked - evicted))
	}
	return res
}

// invalidateCertified drops every cached entry whose certificate does
// not survive the changes, keeping the rest serving. Returns how many
// entries were checked and how many evicted.
func (c *cache) invalidateCertified(changes []tupleChange) (checked, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*entry
	for _, bucket := range c.buckets {
		for _, en := range bucket {
			checked++
			if !entrySurvives(en, changes) {
				doomed = append(doomed, en)
			}
		}
	}
	for _, en := range doomed {
		c.remove(en)
	}
	c.publishGauges()
	return checked, len(doomed)
}

// entrySurvives applies the invalidation certificate of the package
// comment to one entry against a batch of changes.
func entrySurvives(en *entry, changes []tupleChange) bool {
	q := en.out.Query
	oldP := make([]float64, q.Len())
	newP := make([]float64, q.Len())
	for _, ch := range changes {
		q.ProjectInto(ch.old, oldP)
		q.ProjectInto(ch.new, newP)
		if slices.Equal(oldP, newP) {
			// The change is invisible on this subspace (this also covers
			// inserts/deletes of tuples that are zero on all its
			// dimensions): scores and regions are untouched.
			continue
		}
		if resultMember(en, ch.id) {
			return false // cached projections/scores of the member are stale
		}
		if len(en.out.Result) < en.out.K {
			return false // under-full result: any new mass can join it
		}
		if en.sig.phi > 0 {
			return false // perturbation schedules reach beyond the polytope
		}
		if ch.hasOld && canCrossResult(en, oldP) {
			return false
		}
		if ch.hasNew && canCrossResult(en, newP) {
			return false
		}
	}
	return true
}

func resultMember(en *entry, id int) bool {
	for _, r := range en.out.Result {
		if r.ID == id {
			return true
		}
	}
	return false
}

// crossingSlack absorbs the float asymmetry between this check and the
// region computation: a candidate that defines a region bound touches
// the k-th line exactly AT a polytope vertex (real-arithmetic gap 0),
// but the gap recomputed here from the stored Lo/Hi can round to ±1
// ulp-scale noise (~1e-16 for the O(1) quantities involved). Treating
// anything above −crossingSlack as a crossing keeps such candidates
// firmly on the evict side; a genuine survivor's margin is orders of
// magnitude larger, so the slack costs only pathological near-ties —
// which eviction handles correctly anyway.
const crossingSlack = 1e-9

// canCrossResult reports whether a tuple with subspace projection p can
// reach any cached result line anywhere in the entry's cross-polytope:
// the maximum of the linear gap w'·(p − r.Proj) over the polytope is
// attained at an axis vertex and evaluated in closed form. Anything
// not safely negative is a crossing (ties included — equality would
// hand the ranking to the id tiebreak, which the certificate does not
// model).
func canCrossResult(en *entry, p []float64) bool {
	// vec.GapMax is the kernelized form of the original inline loop: it
	// accumulates the gap and updates the running max in the same
	// ascending-j order over the entry's flattened extents, so the floats
	// (and the slack comparison) are bit-identical.
	for i := len(en.out.Result) - 1; i >= 0; i-- { // d_k first: the tightest line
		r := en.out.Result[i]
		gap, extra := vec.GapMax(en.weights, en.lo, en.hi, p, r.Proj)
		if gap+extra >= -crossingSlack {
			return true
		}
	}
	return false
}
