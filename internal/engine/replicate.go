// Replication hooks: the engine ends of the log-shipping subsystem
// (internal/replication). The engine itself stays transport-agnostic —
// it only exposes the commit stream and accepts a replicated apply
// path:
//
//   - On a primary, a ReplicationSink observes every committed batch
//     (the exact WAL frame, in sequence order) and every checkpoint
//     publication, both delivered under the engine's write lock so the
//     event order a shipper sees IS the log order. A commit gate, when
//     set, lets the shipper block Apply until followers have
//     acknowledged the batch (quorum ack mode).
//   - On a standby, ApplyReplicated replays a received frame through
//     the same WAL-append + overlay-mutation + region-certified
//     cache-invalidation path live Apply uses, asserting sequence
//     contiguity, so the standby's log and served state are
//     bit-identical to the primary's at every acknowledged sequence
//     number.
//
// Lock ordering: the engine's mu is always taken BEFORE any replication
// lock (sink callbacks run under mu; the shipper must not call back
// into the engine while holding its own lock, except read-only
// accessors documented as lock-free). The commit gate runs with mu
// RELEASED, so a primary waiting for follower acks never stalls
// concurrent queries.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

// ErrQuorum tags Apply failures in quorum ack mode: the batch is
// committed to the primary's log and overlay (and will reach followers
// when they catch up), but the configured number of followers did not
// confirm an fsync in time, so the caller must NOT treat the write as
// replication-durable. The mutation itself is not rolled back —
// retrying the batch would double-apply it.
var ErrQuorum = errors.New("replication quorum not reached")

// ReplicationSink observes a durable engine's commit stream. Both
// methods are invoked under the engine's write lock, in commit order;
// implementations must be fast and must not call back into the engine.
type ReplicationSink interface {
	// CommitFrame delivers one committed batch as the exact frame
	// appended to the WAL (wal.EncodeRecord encoding). Frames arrive in
	// strictly increasing, gap-free sequence order.
	CommitFrame(seq uint64, frame []byte)
	// CheckpointEvent delivers a published checkpoint manifest.
	// logTruncated reports whether the WAL was emptied (every record at
	// or below man.LastSeq is folded into the manifest's files); when
	// false, a batch landed mid-rewrite and the log retains its records.
	CheckpointEvent(man wal.Manifest, logTruncated bool)
}

// SetReplicationSink attaches (or detaches, with nil) the primary-side
// shipper. The write lock orders the attachment against in-flight
// Apply batches, so a standby promoted to primary mid-stream can
// attach a shipper to a live engine: batches applied before the sink
// is attached are only visible to it through the WAL file.
func (e *Engine) SetReplicationSink(sink ReplicationSink) {
	e.mu.Lock()
	e.replSink = sink
	e.mu.Unlock()
}

// SetCommitGate attaches (or detaches, with nil) the quorum-ack gate:
// Apply calls it with the batch's sequence number after the batch is
// committed locally and the write lock is released, and propagates its
// error (wrapped in ErrQuorum semantics) to the caller. Apply captures
// the gate under the write lock, so attachment is safe on a live
// engine.
func (e *Engine) SetCommitGate(gate func(seq uint64) error) {
	e.mu.Lock()
	e.commitGate = gate
	e.mu.Unlock()
}

// LastSeq returns the sequence number of the most recent committed
// batch (0 when nothing was ever applied). Durable engines only.
func (e *Engine) LastSeq() uint64 {
	if e.dur == nil {
		return 0
	}
	return e.dur.log.LastSeq()
}

// engineOps converts logged ops back to the engine's mutation form.
func engineOps(wops []wal.Op) []Op {
	ops := make([]Op, 0, len(wops))
	for _, op := range wops {
		var k OpKind
		switch op.Kind {
		case wal.OpInsert:
			k = OpInsert
		case wal.OpUpdate:
			k = OpUpdate
		case wal.OpDelete:
			k = OpDelete
		default:
			continue // EncodeRecord refuses unknown kinds; be defensive
		}
		ops = append(ops, Op{Kind: k, ID: int(op.ID), Tuple: op.Tuple})
	}
	return ops
}

// ApplyReplicated applies one batch received from a replication stream
// to a standby engine: the batch is appended to the standby's own WAL
// (fsynced per the engine's sync policy — quorum followers use
// fsync-per-batch, so a sent ack means the frame is on stable storage)
// and then applied through the identical overlay-mutation and
// region-certified cache-invalidation path live Apply uses. Per-op
// failures are skipped exactly as recovery replay skips them (the
// mutation code is deterministic, so they failed identically on the
// primary), which is what makes the standby's state bit-identical to
// the primary's at seq.
//
// The stream's sequence discipline is enforced: seq must be exactly the
// engine's next sequence number. A smaller seq is a duplicate delivery
// (a reconnect race) and is skipped without error; a larger one is a
// gap and is refused — the follower must resync. Unlike Apply,
// ApplyReplicated never triggers checkpoint compaction (standbys
// compact in lockstep with the primary's checkpoint events) and never
// feeds a replication sink (no cascading replication).
func (e *Engine) ApplyReplicated(seq uint64, wops []wal.Op) (ApplyResult, error) {
	if e.dur == nil {
		return ApplyResult{}, fmt.Errorf("engine: ApplyReplicated requires a durable engine (OpenDir with Config.WAL)")
	}
	if e.mut == nil {
		return ApplyResult{}, fmt.Errorf("engine: %w", ErrImmutable)
	}
	if len(wops) == 0 {
		return ApplyResult{}, fmt.Errorf("engine: empty replicated batch: %w", ErrInvalid)
	}
	ops := engineOps(wops)
	e.mu.Lock()
	defer e.mu.Unlock()
	next := e.dur.log.NextSeq()
	if seq < next {
		return ApplyResult{}, nil // duplicate delivery: already committed here
	}
	if seq > next {
		return ApplyResult{}, fmt.Errorf("engine: replicated seq %d leaves a gap (next expected %d)", seq, next)
	}
	got, err := e.dur.log.Append(wops)
	if err != nil {
		return ApplyResult{}, fmt.Errorf("engine: wal append: %w", err)
	}
	if got != seq {
		return ApplyResult{}, fmt.Errorf("engine: wal assigned seq %d to a frame shipped as %d", got, seq)
	}
	return e.runOpsLocked(ops), nil
}

// OpenSnapshotFiles opens the live generation's tuple and list files
// for a snapshot transfer, pinned against concurrent checkpoints: the
// read lock excludes the checkpoint publish phase, so the returned
// manifest and file handles are mutually consistent, and POSIX unlink
// semantics keep the handles readable even if a later checkpoint sweeps
// the generation while the transfer streams. The snapshot is the state
// at man.LastSeq; the caller streams frames after that from its own
// retained history. The caller owns (and must close) both files.
func (e *Engine) OpenSnapshotFiles() (man wal.Manifest, tuples, lists *os.File, err error) {
	if e.dur == nil {
		return wal.Manifest{}, nil, nil, fmt.Errorf("engine: snapshot requires a durable engine")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	man, ok, err := wal.LoadManifest(e.dur.dir)
	if err != nil {
		return wal.Manifest{}, nil, nil, fmt.Errorf("engine: %w", err)
	}
	if !ok {
		man = wal.DefaultManifest()
	}
	tuples, err = os.Open(filepath.Join(e.dur.dir, man.Tuples))
	if err != nil {
		return wal.Manifest{}, nil, nil, err
	}
	lists, err = os.Open(filepath.Join(e.dur.dir, man.Lists))
	if err != nil {
		tuples.Close()
		return wal.Manifest{}, nil, nil, err
	}
	return man, tuples, lists, nil
}
