package engine

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/lists"
	"repro/internal/vec"
)

// FuzzValidateQuery drives arbitrary JSON query requests — the shape
// the HTTP transport decodes — through the validation gate and, when
// accepted, the full Analyze pipeline. Properties: validation never
// panics on a hand-built query; every rejection wraps ErrInvalid (the
// transport's contract for mapping to a 400); and every request that
// passes validation analyzes without panic or error, i.e. validate()
// really is the full precondition of the executor.
func FuzzValidateQuery(f *testing.F) {
	f.Add(`{"dims":[0,2],"weights":[0.4,0.3],"k":3,"phi":1}`)
	f.Add(`{"dims":[1],"weights":[1],"k":1,"phi":0}`)
	f.Add(`{"dims":[0,0],"weights":[0.2,0.2],"k":2,"phi":0}`)
	f.Add(`{"dims":[-1],"weights":[0.5],"k":0,"phi":-2}`)
	f.Add(`{"dims":[3,1],"weights":[0.1,0.9],"k":2,"phi":3}`)
	f.Add(`{"dims":[0],"weights":[null],"k":1,"phi":0}`)

	tuples := []vec.Sparse{
		{{Dim: 0, Val: 0.9}, {Dim: 1, Val: 0.2}},
		{{Dim: 0, Val: 0.4}, {Dim: 2, Val: 0.7}},
		{{Dim: 1, Val: 0.8}, {Dim: 3, Val: 0.1}},
		{{Dim: 2, Val: 0.3}, {Dim: 3, Val: 0.6}},
		{{Dim: 0, Val: 0.5}, {Dim: 3, Val: 0.5}},
	}
	eng := New(lists.NewMemIndex(tuples, 4), Config{CacheEntries: -1})

	f.Fuzz(func(t *testing.T, raw string) {
		var req struct {
			Dims    []int     `json:"dims"`
			Weights []float64 `json:"weights"`
			K       int       `json:"k"`
			Phi     int       `json:"phi"`
		}
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			return
		}
		q := vec.Query{Dims: req.Dims, Weights: req.Weights}
		if err := eng.validate(q, req.K, req.Phi); err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("validation failure not tagged ErrInvalid: %v", err)
			}
			return
		}
		if _, err := eng.Analyze(context.Background(), q, req.K, Options{Options: core.Options{Phi: req.Phi}}); err != nil {
			t.Fatalf("query passed validate but Analyze failed: %v", err)
		}
	})
}
