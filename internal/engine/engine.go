// Package engine is the unified query-execution layer: every entry
// point of the system — the public repro facade, the HTTP server, the
// refinement sessions, the CLI tools and the experiment harness — goes
// through an Engine instead of assembling the TA + region pipeline by
// hand. The Engine owns the full plan → execute → analyze path:
//
//   - query validation (k, dimension range, φ) with errors tagged
//     ErrInvalid so transports can map them to client faults,
//   - TA construction over a per-query child I/O meter, so each
//     analysis is metered in isolation while the index-wide counters
//     keep aggregating,
//   - region computation (core.Compute) with the engine's default
//     per-dimension parallelism,
//   - context-aware admission (a bounded worker pool; queued requests
//     abandon cleanly) and in-flight cancellation threaded down to the
//     TA round loop,
//   - the immutable-region answer cache (cache.go): completed analyses
//     are certificates of result validity, so repeat and in-region
//     queries are answered without touching the index,
//   - batch execution (batch.go): AnalyzeBatch fans a slice of queries
//     over the worker pool with cache-aware de-duplication.
//
// The Engine is safe for any number of concurrent callers: per-query
// state is private, the cache is internally synchronized, and
// mutations are serialized against queries by the engine-wide RWMutex.
//
// # Lock ordering
//
// The engine-wide mu is the outermost lock. Query executions hold its
// read side across compute AND cache admission; Apply holds the write
// side across WAL append, replication shipping, index mutation and
// cache invalidation, so no pre-update analysis can be admitted or
// served once Apply has returned. Everything acquired below mu — the
// cache's own mutex, the WAL writer's mutex, a replication sink's
// internal lock — is leaf-level: no code path takes mu while holding
// one of them. The checkpoint mutex (durable.ckptMu) is taken before
// mu (checkpoints span lock regions); the quorum commit gate runs with
// mu released so waiting on follower acks never stalls queries. Cache
// hits take no lock at all beyond the cache's own.
//
// # Cache-invalidation certificate
//
// A cached analysis is a validity certificate: every weight vector in
// its cross-polytope provably has the cached ranked result. Apply
// keeps an entry serving only if, for every changed tuple, the maximum
// of the linear score gap against every cached result line over the
// whole polytope is safely negative (closed form over the cached
// projections, O(k·qlen), zero index I/O — see mutate.go). The same
// certificate is what makes replication standbys trustworthy: a
// standby replays Apply batches through the identical path, so its
// cache is invalidated exactly as the primary's was.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/topk"
	"repro/internal/vec"
	"repro/internal/wal"
)

// ErrInvalid tags query-validation failures (bad k, out-of-range
// dimension, negative φ). Transports test errors.Is(err, ErrInvalid) to
// report a client fault instead of a server one.
var ErrInvalid = errors.New("invalid query")

// Default cache bounds applied when Config leaves them zero.
const (
	DefaultCacheEntries = 1024
	DefaultCacheBytes   = 64 << 20
)

// Config tunes an Engine.
type Config struct {
	// MaxConcurrent caps the number of queries executing at once (the
	// worker pool AnalyzeBatch fans over). Each in-flight query holds
	// O(n) working state, so the cap is the engine's memory
	// backpressure. 0 picks the default of 4×GOMAXPROCS; a negative
	// value disables the cap entirely. Cache hits bypass the pool.
	MaxConcurrent int
	// Parallelism is the default core.Options.Parallelism applied when a
	// query's own options leave it 0: the number of goroutines one
	// query's per-dimension region work fans over (≤ 0 keeps the
	// paper-literal sequential pipeline).
	Parallelism int
	// CacheEntries bounds the answer cache's entry count. 0 picks
	// DefaultCacheEntries; a negative value disables the cache.
	CacheEntries int
	// CacheBytes bounds the cache's estimated footprint in bytes.
	// 0 picks DefaultCacheBytes.
	CacheBytes int64
	// VerifyChecksums makes Open validate the dataset files' integrity
	// trailers before serving them. Ignored by New.
	VerifyChecksums bool
	// ReadOnly disables the write path: Apply fails with ErrImmutable
	// even over a mutable index, and Open serves the disk files directly
	// instead of wrapping them in a write overlay.
	ReadOnly bool
	// WAL enables the durability subsystem when opening a dataset
	// directory via OpenDir: Apply batches are appended to wal.log
	// before they mutate the overlay, and recovery replays the log on
	// open. Ignored by New and the path-based Open.
	WAL bool
	// WALSync selects when appended batches are fsynced (the zero value
	// is wal.SyncBatch: fsync per Apply).
	WALSync wal.SyncPolicy
	// CheckpointBytes triggers checkpoint compaction when the log or the
	// overlay delta crosses it. 0 picks DefaultCheckpointBytes; a
	// negative value disables automatic compaction (Engine.Checkpoint
	// still works).
	CheckpointBytes int64
}

// Engine executes subspace top-k queries and immutable-region analyses
// over one index.
type Engine struct {
	ix     lists.Index
	mut    lists.Mutable // non-nil when the index accepts writes
	cfg    Config
	sem    chan struct{} // nil when unlimited
	cache  *cache        // nil when disabled
	closer func() error
	dur    *durable // non-nil when the engine has a write-ahead log

	// Replication hooks (replicate.go). Both are set once, before the
	// engine serves traffic, and never change afterwards: replSink
	// observes commits/checkpoints under the write lock, commitGate runs
	// after Apply releases it.
	replSink   ReplicationSink
	commitGate func(seq uint64) error

	// mu serializes mutations against queries: every execution that
	// touches the index holds the read side for its whole run, Apply
	// holds the write side across the index mutation AND the cache
	// invalidation, so no stale certificate can be admitted or served
	// once Apply has returned. Cache hits never take mu — they read only
	// internally synchronized cache state, and an answer served while a
	// batch is still applying linearizes before it.
	mu sync.RWMutex

	// Fencing epoch state (fence.go): the node's own epoch, the highest
	// foreign epoch observed, and the persisted promotion timeline.
	epoch    atomic.Uint64
	fencedBy atomic.Uint64
	epochsMu sync.Mutex
	epochs   []wal.EpochStart

	// Mutation counters (see MutationStats).
	mutInserts, mutUpdates, mutDeletes, mutBatches atomic.Int64
	invChecked, invEvicted, invSurvived            atomic.Int64
}

// New builds an Engine over an existing index. If the index is mutable
// (lists.Mutable) and the config does not say ReadOnly, Apply is
// enabled.
func New(ix lists.Index, cfg Config) *Engine {
	e := &Engine{ix: ix, cfg: cfg}
	if m, ok := ix.(lists.Mutable); ok && !cfg.ReadOnly {
		e.mut = m
	}
	limit := cfg.MaxConcurrent
	if limit == 0 {
		limit = 4 * runtime.GOMAXPROCS(0)
	}
	if limit > 0 {
		e.sem = make(chan struct{}, limit)
	}
	if cfg.CacheEntries >= 0 {
		entries := cfg.CacheEntries
		if entries == 0 {
			entries = DefaultCacheEntries
		}
		bytes := cfg.CacheBytes
		if bytes == 0 {
			bytes = DefaultCacheBytes
		}
		e.cache = newCache(entries, bytes)
	}
	return e
}

// Open opens a persisted dataset through a buffer pool of poolPages
// pages, optionally verifying the files' checksum trailers first
// (Config.VerifyChecksums), and builds an Engine over it. Unless the
// config says ReadOnly, the disk index is wrapped in a memory-resident
// write overlay (lists.Overlay) so Apply works over persisted datasets
// too; the files themselves are never modified.
func Open(tuplePath, listPath string, poolPages int, cfg Config) (*Engine, error) {
	if cfg.VerifyChecksums {
		for _, p := range []string{tuplePath, listPath} {
			if err := storage.VerifyChecksum(p); err != nil {
				return nil, fmt.Errorf("engine: verify %s: %w", p, err)
			}
		}
	}
	ix, err := lists.OpenDiskIndex(tuplePath, listPath, poolPages)
	if err != nil {
		return nil, err
	}
	var top lists.Index = ix
	if !cfg.ReadOnly {
		top = lists.NewOverlay(ix)
	}
	e := New(top, cfg)
	e.closer = ix.Close
	return e, nil
}

// Close flushes and closes the write-ahead log (durable engines), then
// releases the underlying files (no-op for in-memory indexes). It takes
// the engine's write lock first, so it waits for in-flight queries and
// Apply batches to drain instead of closing files under them; cancel
// their contexts (e.g. by force-closing the HTTP server) to bound the
// wait.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var firstErr error
	if e.dur != nil {
		firstErr = e.dur.log.Close()
	}
	if e.closer != nil {
		if err := e.closer(); firstErr == nil {
			firstErr = err
		}
		e.closer = nil
	}
	if e.dur != nil {
		if err := e.dur.lock.Release(); firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Index exposes the underlying index (read-only).
func (e *Engine) Index() lists.Index { return e.ix }

// Stats exposes the index-wide I/O meter.
func (e *Engine) Stats() *storage.IOStats { return e.ix.Stats() }

// N returns the dataset cardinality (including tombstoned slots of a
// mutable index; it grows with inserts).
func (e *Engine) N() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ix.NumTuples()
}

// Dim returns the dataset dimensionality m.
func (e *Engine) Dim() int { return e.ix.Dim() }

// Tuple fetches one tuple by id (counted as a random I/O).
func (e *Engine) Tuple(id int) vec.Sparse {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ix.Tuple(id)
}

// Options configures one analysis request.
type Options struct {
	core.Options
	// NoCache bypasses the answer cache entirely: no lookup, no
	// admission. The paper-faithful measurement paths (benchmarks, the
	// experiment harness) use it so cached answers never contaminate
	// algorithm metering.
	NoCache bool
	// RoundRobinProbe switches the TA probing policy from the default
	// Persin best-list heuristic to strict round-robin (the paper's
	// Fig. 2 presentation order; also the ablation knob).
	RoundRobinProbe bool
}

// Source records how a response was produced.
type Source int

const (
	// SourceComputed ran the full TA + region pipeline.
	SourceComputed Source = iota
	// SourceBypass ran the full pipeline with the cache bypassed.
	SourceBypass
	// SourceCache served a cached analysis (exact weight-vector match).
	SourceCache
	// SourceCacheRegion served a top-k result certified by a cached
	// analysis whose immutable regions contain the requested weights.
	SourceCacheRegion
	// SourceDeduped shared the answer of an identical query in the same
	// batch.
	SourceDeduped
)

func (s Source) String() string {
	switch s {
	case SourceComputed:
		return "miss"
	case SourceBypass:
		return "bypass"
	case SourceCache:
		return "hit"
	case SourceCacheRegion:
		return "hit-region"
	case SourceDeduped:
		return "dedup"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// Analysis is one answered analysis. The embedded Output is shared with
// the cache on hits and must be treated as read-only; on cache hits its
// Metrics are zero (no work was done). Timings is the engine envelope
// around the computation (zero for batch-deduped items).
type Analysis struct {
	*core.Output
	Source  Source
	Timings Timings
}

// maxQueryDims is the hard qlen ceiling: the candidate-partition masks
// of internal/topk are single uint64 bitsets, so a 65-dimension query
// would corrupt them (and panics in topk.New). The engine rejects such
// queries as a client fault before they reach the executor.
const maxQueryDims = 64

// validate checks the request against the index; failures wrap
// ErrInvalid. Beyond the basics (k, φ, dimension range) it enforces the
// structural invariants the executor relies on but vec.NewQuery cannot
// guarantee for hand-built queries: parallel Dims/Weights, strictly
// ascending dimensions (duplicates would corrupt the partition-mask
// accounting), weights inside [0,1], and the 64-dimension bitset limit.
func (e *Engine) validate(q vec.Query, k, phi int) error {
	if k < 1 {
		return fmt.Errorf("engine: k=%d: %w", k, ErrInvalid)
	}
	if q.Len() == 0 {
		return fmt.Errorf("engine: empty query: %w", ErrInvalid)
	}
	if q.Len() > maxQueryDims {
		return fmt.Errorf("engine: %d query dimensions exceed the %d-dimension limit: %w", q.Len(), maxQueryDims, ErrInvalid)
	}
	if len(q.Weights) != len(q.Dims) {
		return fmt.Errorf("engine: %d dims but %d weights: %w", len(q.Dims), len(q.Weights), ErrInvalid)
	}
	if phi < 0 {
		return fmt.Errorf("engine: negative phi %d: %w", phi, ErrInvalid)
	}
	prev := -1
	for i, d := range q.Dims {
		if d < 0 || d >= e.ix.Dim() {
			return fmt.Errorf("engine: dimension %d out of range [0,%d): %w", d, e.ix.Dim(), ErrInvalid)
		}
		if d == prev {
			return fmt.Errorf("engine: duplicate query dimension %d: %w", d, ErrInvalid)
		}
		if d < prev {
			return fmt.Errorf("engine: query dimensions not sorted (%d after %d): %w", d, prev, ErrInvalid)
		}
		prev = d
		if w := q.Weights[i]; w < 0 || w > 1 || math.IsNaN(w) {
			return fmt.Errorf("engine: weight %v for dimension %d outside [0,1]: %w", w, d, ErrInvalid)
		}
	}
	return nil
}

// acquire blocks until a worker slot is free (no-op when unlimited) or
// ctx is done — a client that gave up while queued must not trigger a
// full query execution.
func (e *Engine) acquire(ctx context.Context) (release func(), err error) {
	if e.sem == nil {
		return func() {}, nil
	}
	select {
	case e.sem <- struct{}{}:
		return func() { <-e.sem }, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("engine: canceled while queued: %w", ctx.Err())
	}
}

// workers returns the batch fan-out width: the worker-pool capacity, or
// a CPU-shaped default when the pool is unlimited.
func (e *Engine) workers() int {
	if e.sem != nil {
		return cap(e.sem)
	}
	return 4 * runtime.GOMAXPROCS(0)
}

// queryIndex returns a per-request view of the index charging a fresh
// child meter, so this query's I/O is metered in isolation while still
// aggregating into the index-wide counters.
func (e *Engine) queryIndex() lists.Index {
	return e.ix.WithStats(e.ix.Stats().Child())
}

// policy maps the request options to a TA probe policy.
func (o Options) policy() topk.ProbePolicy {
	if o.RoundRobinProbe {
		return topk.RoundRobin
	}
	return topk.BestList
}

// Analyze answers the query and computes the immutable regions of every
// query dimension. The answer cache is consulted first: a cached
// analysis of the same subspace, k and options whose weight vector
// matches exactly is returned as-is (Source=SourceCache) with zero
// index I/O. Misses run the full pipeline under ctx and admit the
// completed analysis. A nil ctx is treated as context.Background().
func (e *Engine) Analyze(ctx context.Context, q vec.Query, k int, opts Options) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mQueries.Inc("analyze")
	var tm Timings
	t0 := time.Now()
	if err := e.validate(q, k, opts.Phi); err != nil {
		return nil, err
	}
	tm.Validate = time.Since(t0)
	useCache := e.cache != nil && !opts.NoCache
	if useCache {
		t0 = time.Now()
		out, ok := e.cache.lookupAnalyze(q, k, opts.Options)
		tm.Cache = time.Since(t0)
		if ok {
			return &Analysis{Output: out, Source: SourceCache, Timings: tm}, nil
		}
	} else if e.cache != nil {
		e.cache.bypasses.Add(1)
		mCacheEvents.Inc("bypass")
	}
	t0 = time.Now()
	release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	// The read lock spans computation AND admission: an analysis of the
	// pre-update dataset must not land in the cache after Apply's
	// invalidation pass has run.
	e.mu.RLock()
	defer e.mu.RUnlock()
	tm.Queue = time.Since(t0)
	out, err := e.compute(ctx, q, k, opts)
	if err != nil {
		return nil, err
	}
	src := SourceBypass
	if useCache {
		src = SourceComputed
		t0 = time.Now()
		e.cache.admit(q, k, opts.Options, out)
		tm.Admit = time.Since(t0)
	}
	return &Analysis{Output: out, Source: src, Timings: tm}, nil
}

// compute runs the full pipeline: TA over a child meter, then
// core.Compute with the engine's default parallelism.
func (e *Engine) compute(ctx context.Context, q vec.Query, k int, opts Options) (*core.Output, error) {
	copts := opts.Options
	if copts.Parallelism == 0 {
		copts.Parallelism = e.cfg.Parallelism
	}
	ta := topk.New(e.queryIndex(), q, k, opts.policy())
	out, err := core.Compute(ctx, ta, copts)
	if err == nil {
		observeCompute(out.Metrics.Phase1, out.Metrics.Phase2, out.Metrics.Phase3, ta.SortedAccesses())
	}
	return out, err
}

// TopK answers the query with the threshold algorithm. Before touching
// the index it consults the answer cache: any cached analysis of the
// same subspace and k whose immutable regions contain the requested
// weight vector certifies the ranked result, which is then rebuilt from
// the cached projections (exact scores, zero index I/O,
// Source=SourceCacheRegion). Top-k results alone carry no regions, so
// misses are not admitted — the cache fills from Analyze traffic.
func (e *Engine) TopK(ctx context.Context, q vec.Query, k int) ([]topk.Scored, Source, error) {
	res, info, err := e.TopKMetered(ctx, q, k)
	return res, info.Source, err
}

// TopKInfo meters one TopK execution: how it was answered, the engine
// envelope timings, the TA stopping depth, and this query's own I/O
// counts from its child meter (all zero on region-certified hits — no
// index work was done).
type TopKInfo struct {
	Source         Source
	Timings        Timings
	SortedAccesses int
	SeqPages       int64
	RandReads      int64
}

// TopKMetered is TopK with the per-query cost accounting exposed; the
// HTTP layer uses it to feed the slow-query log. Same semantics as
// TopK otherwise.
func (e *Engine) TopKMetered(ctx context.Context, q vec.Query, k int) ([]topk.Scored, TopKInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mQueries.Inc("topk")
	info := TopKInfo{Source: SourceComputed}
	t0 := time.Now()
	if err := e.validate(q, k, 0); err != nil {
		return nil, info, err
	}
	info.Timings.Validate = time.Since(t0)
	if e.cache != nil {
		t0 = time.Now()
		res, ok := e.cache.lookupTopK(q, k)
		info.Timings.Cache = time.Since(t0)
		if ok {
			info.Source = SourceCacheRegion
			return res, info, nil
		}
	}
	t0 = time.Now()
	release, err := e.acquire(ctx)
	if err != nil {
		return nil, info, err
	}
	defer release()
	e.mu.RLock()
	defer e.mu.RUnlock()
	info.Timings.Queue = time.Since(t0)
	ix := e.queryIndex()
	ta := topk.New(ix, q, k, topk.BestList)
	if err := ta.RunContext(ctx); err != nil {
		return nil, info, fmt.Errorf("engine: query canceled: %w", err)
	}
	info.SortedAccesses = ta.SortedAccesses()
	mSortedAccesses.Observe(float64(info.SortedAccesses))
	if st := ix.Stats(); st != nil {
		info.SeqPages, info.RandReads, _ = st.Snapshot()
	}
	return ta.Result(), info, nil
}

// TopKTrace answers the query while recording every sorted access,
// returning the ranked result and the execution trace (the paper's
// Fig. 2). Round-robin probing is used so traces match the paper's
// presentation. Traces bypass the cache — the trace IS the computation
// — but still hold a worker slot, since a trace run carries the same
// O(n) scan state (plus the trace itself) as any other query. A nil ctx
// is treated as context.Background().
func (e *Engine) TopKTrace(ctx context.Context, q vec.Query, k int) ([]topk.Scored, []topk.TraceStep, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.validate(q, k, 0); err != nil {
		return nil, nil, err
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	e.mu.RLock()
	defer e.mu.RUnlock()
	ta := topk.New(e.queryIndex(), q, k, topk.RoundRobin)
	var steps []topk.TraceStep
	ta.SetTrace(func(ts topk.TraceStep) { steps = append(steps, ts) })
	if err := ta.RunContext(ctx); err != nil {
		return nil, nil, fmt.Errorf("engine: query canceled: %w", err)
	}
	return ta.Result(), steps, nil
}

// CacheStats snapshots the answer cache's counters (zero value when the
// cache is disabled).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// CacheEnabled reports whether the answer cache is active.
func (e *Engine) CacheEnabled() bool { return e.cache != nil }

// Invalidate drops cached analyses: with no arguments the whole cache,
// otherwise every entry whose subspace uses any of the given
// dimensions. Apply performs the far finer region-certified
// invalidation automatically; this coarse hook remains for callers that
// change data behind the engine's back (e.g. rewriting the dataset
// files).
func (e *Engine) Invalidate(dims ...int) {
	if e.cache == nil {
		return
	}
	// Drain in-flight queries like Apply does: an analysis of the
	// pre-change data must not be admitted after this pass.
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(dims) == 0 {
		e.cache.invalidateAll()
		return
	}
	e.cache.invalidateDims(dims)
}
