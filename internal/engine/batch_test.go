package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/vec"
)

// TestBatchDedupAndCache covers the batch pipeline end to end:
// duplicates compute once and share the answer, invalid items fail in
// place without sinking the batch, NoCache items stay distinct, and a
// second batch is served from the cache.
func TestBatchDedupAndCache(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{})
	opts := Options{Options: core.Options{Method: core.MethodCPT, Phi: 1}}

	other := vec.MustQuery([]int{0, 1}, []float64{0.6, 0.4})
	items := []BatchItem{
		{Q: q, K: k, Opts: opts},     // computes
		{Q: q, K: k, Opts: opts},     // duplicate of 0
		{Q: other, K: k, Opts: opts}, // computes
		{Q: q, K: 0, Opts: opts},     // invalid
		{Q: q, K: k, Opts: Options{Options: opts.Options, NoCache: true}}, // distinct identity
	}
	res := eng.AnalyzeBatch(context.Background(), items)
	if len(res) != len(items) {
		t.Fatalf("%d results for %d items", len(res), len(items))
	}
	if res[0].Err != nil || res[0].Analysis.Source != SourceComputed {
		t.Fatalf("item 0: %+v", res[0])
	}
	if res[1].Err != nil || res[1].Analysis.Source != SourceDeduped {
		t.Fatalf("item 1: err=%v src=%v, want dedup", res[1].Err, res[1].Analysis.Source)
	}
	if len(res[1].Analysis.Result) == 0 || &res[1].Analysis.Result[0] != &res[0].Analysis.Result[0] {
		t.Fatal("dedup did not share the computed answer")
	}
	if !reflect.DeepEqual(res[1].Analysis.Metrics, core.Metrics{}) {
		// A batch summing per-item I/O must not double-count the one
		// computation.
		t.Fatalf("deduped item carries metrics: %+v", res[1].Analysis.Metrics)
	}
	if res[2].Err != nil || res[2].Analysis.Source != SourceComputed {
		t.Fatalf("item 2: %+v", res[2])
	}
	if !errors.Is(res[3].Err, ErrInvalid) {
		t.Fatalf("item 3 err=%v, want ErrInvalid", res[3].Err)
	}
	if res[4].Err != nil || res[4].Analysis.Source != SourceBypass {
		t.Fatalf("item 4: err=%v src=%v, want bypass", res[4].Err, res[4].Analysis.Source)
	}
	if !reflect.DeepEqual(res[0].Analysis.Regions, res[4].Analysis.Regions) {
		t.Fatal("bypass and cached-path answers diverge")
	}

	// Second round: repeats are cache hits, zero index I/O.
	seq0, rnd0, _ := eng.Stats().Snapshot()
	res2 := eng.AnalyzeBatch(context.Background(), items[:3])
	for i, r := range res2 {
		if r.Err != nil {
			t.Fatalf("round 2 item %d: %v", i, r.Err)
		}
	}
	if res2[0].Analysis.Source != SourceCache || res2[2].Analysis.Source != SourceCache {
		t.Fatalf("round 2 sources %v/%v, want hits", res2[0].Analysis.Source, res2[2].Analysis.Source)
	}
	if seq1, rnd1, _ := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 {
		t.Fatal("cached batch touched the index")
	}
}

// TestBatchMatchesSingles proves batch answers are the same analyses
// the single-query path produces, across a mixed random workload.
func TestBatchMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(7007))
	cs := fixture.RandCase(rng, 100, 7, 3, 5)
	single := memEngine(cs.Tuples, cs.M, Config{CacheEntries: -1})

	var items []BatchItem
	for i := 0; i < 9; i++ {
		q := cs.Q.Clone()
		q.Weights[i%q.Len()] = 0.15 + 0.09*float64(i%7)
		items = append(items, BatchItem{
			Q: q, K: cs.K,
			Opts: Options{Options: core.Options{Method: core.Methods[i%len(core.Methods)], Phi: i % 3}},
		})
	}
	batch := memEngine(cs.Tuples, cs.M, Config{})
	res := batch.AnalyzeBatch(context.Background(), items)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		want, err := single.Analyze(context.Background(), items[i].Q, items[i].K, items[i].Opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Analysis.Result, want.Result) || !reflect.DeepEqual(r.Analysis.Regions, want.Regions) {
			t.Fatalf("item %d diverges from single-query execution", i)
		}
	}
}

// TestBatchCanceled: a pre-canceled context fails every item with the
// context's error rather than hanging or computing.
func TestBatchCanceled(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{CacheEntries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := eng.AnalyzeBatch(ctx, []BatchItem{{Q: q, K: k}, {Q: q, K: k}})
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("item %d completed under canceled context", i)
		}
	}
}
