package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/vec"
)

// TestBatchDedupAndCache covers the batch pipeline end to end:
// duplicates compute once and share the answer, invalid items fail in
// place without sinking the batch, NoCache items stay distinct, and a
// second batch is served from the cache.
func TestBatchDedupAndCache(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{})
	opts := Options{Options: core.Options{Method: core.MethodCPT, Phi: 1}}

	other := vec.MustQuery([]int{0, 1}, []float64{0.6, 0.4})
	items := []BatchItem{
		{Q: q, K: k, Opts: opts},     // computes
		{Q: q, K: k, Opts: opts},     // duplicate of 0
		{Q: other, K: k, Opts: opts}, // computes
		{Q: q, K: 0, Opts: opts},     // invalid
		{Q: q, K: k, Opts: Options{Options: opts.Options, NoCache: true}}, // distinct identity
	}
	res := eng.AnalyzeBatch(context.Background(), items)
	if len(res) != len(items) {
		t.Fatalf("%d results for %d items", len(res), len(items))
	}
	if res[0].Err != nil || res[0].Analysis.Source != SourceComputed {
		t.Fatalf("item 0: %+v", res[0])
	}
	if res[1].Err != nil || res[1].Analysis.Source != SourceDeduped {
		t.Fatalf("item 1: err=%v src=%v, want dedup", res[1].Err, res[1].Analysis.Source)
	}
	if len(res[1].Analysis.Result) == 0 || &res[1].Analysis.Result[0] != &res[0].Analysis.Result[0] {
		t.Fatal("dedup did not share the computed answer")
	}
	if !reflect.DeepEqual(res[1].Analysis.Metrics, core.Metrics{}) {
		// A batch summing per-item I/O must not double-count the one
		// computation.
		t.Fatalf("deduped item carries metrics: %+v", res[1].Analysis.Metrics)
	}
	if res[2].Err != nil || res[2].Analysis.Source != SourceComputed {
		t.Fatalf("item 2: %+v", res[2])
	}
	if !errors.Is(res[3].Err, ErrInvalid) {
		t.Fatalf("item 3 err=%v, want ErrInvalid", res[3].Err)
	}
	if res[4].Err != nil || res[4].Analysis.Source != SourceBypass {
		t.Fatalf("item 4: err=%v src=%v, want bypass", res[4].Err, res[4].Analysis.Source)
	}
	if !reflect.DeepEqual(res[0].Analysis.Regions, res[4].Analysis.Regions) {
		t.Fatal("bypass and cached-path answers diverge")
	}

	// Second round: repeats are cache hits, zero index I/O.
	seq0, rnd0, _ := eng.Stats().Snapshot()
	res2 := eng.AnalyzeBatch(context.Background(), items[:3])
	for i, r := range res2 {
		if r.Err != nil {
			t.Fatalf("round 2 item %d: %v", i, r.Err)
		}
	}
	if res2[0].Analysis.Source != SourceCache || res2[2].Analysis.Source != SourceCache {
		t.Fatalf("round 2 sources %v/%v, want hits", res2[0].Analysis.Source, res2[2].Analysis.Source)
	}
	if seq1, rnd1, _ := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 {
		t.Fatal("cached batch touched the index")
	}
}

// TestBatchMatchesSingles proves batch answers are the same analyses
// the single-query path produces, across a mixed random workload.
func TestBatchMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(7007))
	cs := fixture.RandCase(rng, 100, 7, 3, 5)
	single := memEngine(cs.Tuples, cs.M, Config{CacheEntries: -1})

	var items []BatchItem
	for i := 0; i < 9; i++ {
		q := cs.Q.Clone()
		q.Weights[i%q.Len()] = 0.15 + 0.09*float64(i%7)
		items = append(items, BatchItem{
			Q: q, K: cs.K,
			Opts: Options{Options: core.Options{Method: core.Methods[i%len(core.Methods)], Phi: i % 3}},
		})
	}
	batch := memEngine(cs.Tuples, cs.M, Config{})
	res := batch.AnalyzeBatch(context.Background(), items)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		want, err := single.Analyze(context.Background(), items[i].Q, items[i].K, items[i].Opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Analysis.Result, want.Result) || !reflect.DeepEqual(r.Analysis.Regions, want.Regions) {
			t.Fatalf("item %d diverges from single-query execution", i)
		}
	}
}

// TestTopKBatch covers the fused ranked-query path: a shared-subspace
// group answers through one scan with results identical to solo TopK
// calls, foreign-subspace and invalid items are handled in place, and
// region-certified cache hits skip the scan entirely.
func TestTopKBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	cs := fixture.RandCase(rng, 300, 8, 4, 5)
	eng := memEngine(cs.Tuples, cs.M, Config{})

	items := make([]TopKItem, 0, 6)
	for i := 0; i < 4; i++ { // fused group: same dims, different weights
		q := cs.Q.Clone()
		for j := range q.Weights {
			q.Weights[j] = 0.1 + 0.2*float64(i+j)/8
		}
		items = append(items, TopKItem{Q: q, K: cs.K})
	}
	otherDims := []int{cs.Q.Dims[0]}
	items = append(items,
		TopKItem{Q: vec.MustQuery(otherDims, []float64{0.7}), K: cs.K}, // own group
		TopKItem{Q: cs.Q, K: 0}, // invalid
	)
	res := eng.TopKBatch(context.Background(), items)
	if len(res) != len(items) {
		t.Fatalf("%d results for %d items", len(res), len(items))
	}
	solo := memEngine(cs.Tuples, cs.M, Config{CacheEntries: -1})
	for i := 0; i < 5; i++ {
		if res[i].Err != nil || res[i].Source != SourceComputed {
			t.Fatalf("item %d: err=%v src=%v", i, res[i].Err, res[i].Source)
		}
		want, _, err := solo.TopK(context.Background(), items[i].Q, items[i].K)
		if err != nil {
			t.Fatal(err)
		}
		if len(res[i].Result) != len(want) {
			t.Fatalf("item %d: %d results, want %d", i, len(res[i].Result), len(want))
		}
		for r := range want {
			if res[i].Result[r].ID != want[r].ID || res[i].Result[r].Score != want[r].Score {
				t.Fatalf("item %d rank %d: fused (%d,%v), solo (%d,%v)",
					i, r, res[i].Result[r].ID, res[i].Result[r].Score, want[r].ID, want[r].Score)
			}
		}
	}
	if !errors.Is(res[5].Err, ErrInvalid) {
		t.Fatalf("invalid item err=%v, want ErrInvalid", res[5].Err)
	}

	// Prime the cache with an analysis at item 0's exact weights: the
	// repeat batch serves it by region containment without touching the
	// index, while the rest recompute.
	if _, err := eng.Analyze(context.Background(), items[0].Q, items[0].K, Options{}); err != nil {
		t.Fatal(err)
	}
	seq0, rnd0, _ := eng.Stats().Snapshot()
	res2 := eng.TopKBatch(context.Background(), items[:1])
	if res2[0].Err != nil || res2[0].Source != SourceCacheRegion {
		t.Fatalf("repeat: err=%v src=%v, want region hit", res2[0].Err, res2[0].Source)
	}
	if seq1, rnd1, _ := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 {
		t.Fatal("cached TopKBatch touched the index")
	}
}

// TestBatchCanceled: a pre-canceled context fails every item with the
// context's error rather than hanging or computing.
func TestBatchCanceled(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{CacheEntries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := eng.AnalyzeBatch(ctx, []BatchItem{{Q: q, K: k}, {Q: q, K: k}})
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("item %d completed under canceled context", i)
		}
	}
}
