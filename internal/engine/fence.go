// Fencing: the engine side of split-brain prevention. Every promotion
// of a standby to primary advances the dataset's fencing epoch, and the
// promotion timeline (which epoch committed which sequence range) is
// persisted in the MANIFEST alongside the generation files. A deposed
// primary that comes back learns of the newer epoch through the
// replication handshake (or a coordinator probe), records it with
// Fence, and from then on refuses client writes with ErrFenced until it
// has re-joined the cluster as a follower and adopted the new epoch.
//
// The timeline exists because sequence numbers alone cannot detect
// divergence: a deposed primary may hold frames whose sequence numbers
// a new primary later re-used with different contents. Comparing the
// epoch that owns a follower's last frame against the primary's
// timeline (EpochAt) distinguishes a true log prefix from a divergent
// branch written under a dead epoch.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/wal"
)

// ErrFenced tags Apply failures on a deposed primary: a newer fencing
// epoch has been observed, so this node must not accept client writes
// (they could never be replicated and would diverge from the cluster).
// Transports map it to 409 with a redirect to the current primary.
var ErrFenced = errors.New("node fenced by a newer primary epoch")

// Epoch returns the node's current fencing epoch (0 until the first
// promotion anywhere in the cluster).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// FencedBy returns the highest foreign epoch this node has observed
// (0 when none).
func (e *Engine) FencedBy() uint64 { return e.fencedBy.Load() }

// Fenced reports whether a newer epoch than the node's own has been
// observed — i.e. whether Apply currently refuses writes.
func (e *Engine) Fenced() bool { return e.fencedBy.Load() > e.epoch.Load() }

// Fence records an observed foreign epoch. Once a strictly higher epoch
// than the node's own is recorded, Apply refuses client writes with
// ErrFenced; ApplyReplicated still works, so the node can rejoin as a
// follower. Recording an epoch at or below the highest already seen is
// a no-op; the fence lifts when the node adopts or advances past it.
func (e *Engine) Fence(epoch uint64) {
	for {
		cur := e.fencedBy.Load()
		if epoch <= cur || e.fencedBy.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// EpochAt returns the fencing epoch that owns the frame at seq per the
// persisted promotion timeline (0 before the first promotion).
func (e *Engine) EpochAt(seq uint64) uint64 {
	e.epochsMu.Lock()
	defer e.epochsMu.Unlock()
	return wal.EpochAt(e.epochs, seq)
}

// EpochTimeline returns a copy of the promotion timeline.
func (e *Engine) EpochTimeline() []wal.EpochStart {
	e.epochsMu.Lock()
	defer e.epochsMu.Unlock()
	out := make([]wal.EpochStart, len(e.epochs))
	copy(out, e.epochs)
	return out
}

// AdvanceEpoch promotes this node's history to newEpoch: frames from
// LastSeq()+1 on belong to the new epoch. The timeline entry and the
// epoch are persisted in the MANIFEST before the call returns, so a
// crash immediately after promotion still comes back knowing it is the
// epoch-newEpoch primary. newEpoch must exceed both the current epoch
// and any observed foreign epoch (a promotion that does not outbid a
// known-live epoch would mint a second primary).
func (e *Engine) AdvanceEpoch(newEpoch uint64) error {
	if e.dur == nil {
		return fmt.Errorf("engine: epoch advance requires a durable engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.epoch.Load(); newEpoch <= cur {
		return fmt.Errorf("engine: epoch %d does not advance current epoch %d", newEpoch, cur)
	}
	if fb := e.fencedBy.Load(); newEpoch <= fb {
		return fmt.Errorf("engine: epoch %d does not outbid observed epoch %d", newEpoch, fb)
	}
	e.epochsMu.Lock()
	e.epochs = append(e.epochs, wal.EpochStart{Epoch: newEpoch, StartSeq: e.dur.log.LastSeq() + 1})
	e.epochsMu.Unlock()
	if err := e.persistEpochLocked(newEpoch); err != nil {
		return err
	}
	e.epoch.Store(newEpoch)
	return nil
}

// AdoptEpoch replaces this node's epoch and timeline with a primary's
// (delivered in the replication welcome). The primary's timeline is
// authoritative for the history the follower mirrors; adopting a lower
// epoch than the node's own is refused — that primary is stale.
func (e *Engine) AdoptEpoch(epoch uint64, timeline []wal.EpochStart) error {
	if e.dur == nil {
		return fmt.Errorf("engine: epoch adoption requires a durable engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.epoch.Load(); epoch < cur {
		return fmt.Errorf("engine: refusing to adopt stale epoch %d (local epoch %d)", epoch, cur)
	} else if epoch == cur && timelineEqual(e.epochTimelineLocked(), timeline) {
		return nil // already current: skip the manifest rewrite
	}
	e.epochsMu.Lock()
	e.epochs = append([]wal.EpochStart(nil), timeline...)
	e.epochsMu.Unlock()
	if err := e.persistEpochLocked(epoch); err != nil {
		return err
	}
	e.epoch.Store(epoch)
	return nil
}

func (e *Engine) epochTimelineLocked() []wal.EpochStart {
	e.epochsMu.Lock()
	defer e.epochsMu.Unlock()
	return e.epochs
}

func timelineEqual(a, b []wal.EpochStart) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// persistEpochLocked rewrites the MANIFEST carrying the given epoch and
// the current timeline, preserving the generation naming. Callers hold
// the engine's write lock, which serializes this against the checkpoint
// publish phase (the only other manifest writer under the dir lock).
func (e *Engine) persistEpochLocked(epoch uint64) error {
	man, ok, err := wal.LoadManifest(e.dur.dir)
	if err != nil {
		return fmt.Errorf("engine: epoch persist: %w", err)
	}
	if !ok {
		man = wal.DefaultManifest()
		man.LastSeq = 0
	}
	man.Epoch = epoch
	e.epochsMu.Lock()
	man.Epochs = append([]wal.EpochStart(nil), e.epochs...)
	e.epochsMu.Unlock()
	if err := man.Save(e.dur.dir); err != nil {
		return fmt.Errorf("engine: epoch persist: %w", err)
	}
	return nil
}
