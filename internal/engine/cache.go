// The immutable-region answer cache. The paper's core object doubles as
// a validity certificate: an analysis of query q proves that any weight
// vector inside its regions' cross-polytope (footnote 1, the same
// containment test internal/session trusts client-side) has the
// identical ranked top-k result. The cache exploits both readings of
// that certificate, always with zero index I/O:
//
//   - Analyze hits require an exact weight-vector match (the degenerate
//     containment, deviation 0) and return the cached analysis as-is —
//     bit-identical result, regions and perturbations. Regions are
//     expressed relative to the analysis-time weights, so a shifted
//     in-region weight vector would need different region values;
//     serving it the anchor's regions would be wrong, hence the exact
//     match.
//
//   - TopK hits only need containment: if the requested weights fall
//     inside any cached entry's cross-polytope for the same subspace
//     and k, the ranked ids are provably unchanged, and the scores are
//     rebuilt exactly from the cached projections (the dot product adds
//     the same nonzero terms in the same dimension order as a live TA
//     scoring pass, so the floats are bit-identical). Entries computed
//     with CompositionOnly guarantee only set preservation, so hits are
//     re-ranked by the rebuilt scores, which is correct in both modes.
//
// Eviction is LRU under two bounds, entry count and estimated bytes.
// Counters are atomic so /stats never takes the cache lock.
package engine

import (
	"container/list"
	"encoding/binary"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/topk"
	"repro/internal/vec"
)

// sig is the part of the options that selects WHICH output an analysis
// produces. Method, Schedule and Parallelism are excluded: every
// variant provably computes the same regions (the repo's property and
// parallel-equality tests enforce it), so a CPT analysis may serve a
// Scan request and vice versa. Iterative/ForceEnvelope likewise only
// change the route, not the answer — but they exist for measurement, so
// requests carrying them are expected to arrive with NoCache anyway.
type sig struct {
	phi      int
	compOnly bool
}

func sigOf(o core.Options) sig {
	return sig{phi: o.Phi, compOnly: o.CompositionOnly}
}

// bucketKey identifies a subspace: the sorted query dimensions plus k.
type bucketKey string

func keyOf(q vec.Query, k int) bucketKey {
	buf := make([]byte, 0, 8*(q.Len()+1))
	buf = binary.AppendVarint(buf, int64(k))
	for _, d := range q.Dims {
		buf = binary.AppendVarint(buf, int64(d))
	}
	return bucketKey(buf)
}

// entry is one admitted analysis: the anchor weights it was computed at
// and the completed output it certifies. lo/hi are the region extents
// flattened into columns at admission, so the containment and
// invalidation checks run as block kernels over flat float64 arrays
// instead of walking the Regions structs per lookup.
type entry struct {
	key     bucketKey
	sig     sig
	weights []float64
	lo, hi  []float64
	out     *core.Output
	size    int64
	elem    *list.Element
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits       int64 // Analyze served from an exact-weight anchor
	RegionHits int64 // TopK served by region containment
	Misses     int64
	Bypasses   int64 // lookups skipped by request (NoCache)
	Evictions  int64
	Entries    int
	Bytes      int64
}

type cache struct {
	mu      sync.Mutex
	buckets map[bucketKey][]*entry
	lru     *list.List // front = most recently used; values are *entry
	bytes   int64

	maxEntries int
	maxBytes   int64

	hits       atomic.Int64
	regionHits atomic.Int64
	misses     atomic.Int64
	bypasses   atomic.Int64
	evictions  atomic.Int64
	bytesGauge atomic.Int64
	entryGauge atomic.Int64
}

func newCache(maxEntries int, maxBytes int64) *cache {
	return &cache{
		buckets:    make(map[bucketKey][]*entry),
		lru:        list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

func (c *cache) stats() CacheStats {
	return CacheStats{
		Hits:       c.hits.Load(),
		RegionHits: c.regionHits.Load(),
		Misses:     c.misses.Load(),
		Bypasses:   c.bypasses.Load(),
		Evictions:  c.evictions.Load(),
		Entries:    int(c.entryGauge.Load()),
		Bytes:      c.bytesGauge.Load(),
	}
}

// lookupAnalyze serves a full analysis iff an anchor with the same
// subspace, k, φ-signature and exact weight vector exists. The returned
// Output shares the anchor's result and regions (read-only) but carries
// fresh zero metrics: no work was done, and the response's metering
// should say so.
func (c *cache) lookupAnalyze(q vec.Query, k int, opts core.Options) (*core.Output, bool) {
	key := keyOf(q, k)
	want := sigOf(opts)
	c.mu.Lock()
	for _, en := range c.buckets[key] {
		if en.sig == want && slices.Equal(en.weights, q.Weights) {
			c.lru.MoveToFront(en.elem)
			c.mu.Unlock()
			c.hits.Add(1)
			mCacheEvents.Inc("hit")
			return &core.Output{
				Query:   en.out.Query,
				K:       en.out.K,
				Result:  en.out.Result,
				Regions: en.out.Regions,
			}, true
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	mCacheEvents.Inc("miss")
	return nil, false
}

// lookupTopK serves a ranked result iff some anchor of the same
// subspace and k has the requested weights inside its regions'
// cross-polytope. Any φ-signature qualifies — every analysis certifies
// at least its innermost region.
func (c *cache) lookupTopK(q vec.Query, k int) ([]topk.Scored, bool) {
	key := keyOf(q, k)
	c.mu.Lock()
	for _, en := range c.buckets[key] {
		if !containsWeights(en, q.Weights) {
			continue
		}
		c.lru.MoveToFront(en.elem)
		out := en.out
		c.mu.Unlock()
		c.regionHits.Add(1)
		mCacheEvents.Inc("hit-region")
		return rescore(out.Result, q.Weights), true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	mCacheEvents.Inc("miss")
	return nil, false
}

// containsWeights is the footnote-1 containment test: the deviation
// from the anchor weights lies inside the cross-polytope spanned by the
// anchor's immutable regions. It runs on the entry's flattened extents
// through vec.CrossSafe, which is the exact flat-column twin of
// core.SafeConcurrent (equivalence pinned by boundary_test and the core
// property test) — same verdict on every input, including boundary hits.
func containsWeights(en *entry, weights []float64) bool {
	if len(en.lo) != len(weights) {
		return false // mirrors SafeConcurrent's length-mismatch error
	}
	devs := make([]float64, len(weights))
	for i, w := range weights {
		devs[i] = w - en.weights[i]
	}
	return vec.CrossSafe(en.lo, en.hi, devs)
}

// rescore rebuilds the ranked result at the requested weights from the
// cached query-subspace projections: same ids, exact scores, re-ranked
// by (score desc, id asc) — the canonical order — which also covers
// CompositionOnly anchors, whose certificate preserves the set but not
// the order. Projections are cloned: a live TA hands the caller
// query-private slices, and a caller mutating a shared one would
// corrupt the cache for every later hit.
func rescore(res []topk.Scored, weights []float64) []topk.Scored {
	out := make([]topk.Scored, len(res))
	for i, sc := range res {
		out[i] = topk.Scored{ID: sc.ID, Score: vec.Dot(weights, sc.Proj), Proj: slices.Clone(sc.Proj), NZMask: sc.NZMask}
	}
	slices.SortFunc(out, func(a, b topk.Scored) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return a.ID - b.ID
		}
	})
	return out
}

// admit stores a completed analysis, replacing an existing anchor with
// the same signature and weights, then evicts from the LRU tail until
// both bounds hold. Outputs larger than the byte bound are not admitted
// at all (they would evict the whole cache and then themselves).
func (c *cache) admit(q vec.Query, k int, opts core.Options, out *core.Output) {
	size := outputSize(out)
	if size > c.maxBytes {
		return
	}
	en := &entry{key: keyOf(q, k), sig: sigOf(opts), weights: slices.Clone(q.Weights), out: out, size: size}
	en.lo = make([]float64, len(out.Regions))
	en.hi = make([]float64, len(out.Regions))
	for i, reg := range out.Regions {
		en.lo[i], en.hi[i] = reg.Lo, reg.Hi
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	bucket := c.buckets[en.key]
	for _, old := range bucket {
		if old.sig == en.sig && slices.Equal(old.weights, en.weights) {
			// A concurrent identical computation already landed; keep the
			// incumbent (the outputs are interchangeable) and refresh it.
			c.lru.MoveToFront(old.elem)
			return
		}
	}
	en.elem = c.lru.PushFront(en)
	c.buckets[en.key] = append(bucket, en)
	c.bytes += size
	for c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldest()
	}
	c.publishGauges()
}

// evictOldest drops the LRU tail entry. Caller holds mu.
func (c *cache) evictOldest() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	c.remove(back.Value.(*entry))
	c.evictions.Add(1)
	mCacheEvents.Inc("evict")
}

// remove unlinks an entry from both structures. Caller holds mu.
func (c *cache) remove(en *entry) {
	c.lru.Remove(en.elem)
	c.bytes -= en.size
	bucket := c.buckets[en.key]
	for i, cand := range bucket {
		if cand == en {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.buckets, en.key)
	} else {
		c.buckets[en.key] = bucket
	}
}

func (c *cache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets = make(map[bucketKey][]*entry)
	c.lru.Init()
	c.bytes = 0
	c.publishGauges()
}

// invalidateDims drops every entry whose subspace uses any of dims.
func (c *cache) invalidateDims(dims []int) {
	hit := make(map[int]bool, len(dims))
	for _, d := range dims {
		hit[d] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*entry
	for _, bucket := range c.buckets {
		for _, en := range bucket {
			for _, d := range en.out.Query.Dims {
				if hit[d] {
					doomed = append(doomed, en)
					break
				}
			}
		}
	}
	for _, en := range doomed {
		c.remove(en)
	}
	c.publishGauges()
}

// publishGauges mirrors the size gauges into atomics for lock-free
// stats reads. Caller holds mu.
func (c *cache) publishGauges() {
	c.bytesGauge.Store(c.bytes)
	c.entryGauge.Store(int64(c.lru.Len()))
}

// outputSize estimates an analysis' resident footprint: the Scored
// result entries with their projection slices, the region structs with
// their perturbation schedules, and the anchor bookkeeping.
func outputSize(out *core.Output) int64 {
	qlen := int64(out.Query.Len())
	size := int64(128) + 24*qlen // entry + anchor weights + query dims/weights
	size += int64(len(out.Result)) * (48 + 8*qlen)
	for _, reg := range out.Regions {
		size += 64 + 32*int64(len(reg.Left)+len(reg.Right))
	}
	return size
}
