package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/vec"
)

// analyzeMust is a test helper returning the analysis or failing.
func analyzeMust(t *testing.T, eng *Engine, q vec.Query, k int, opts Options) *Analysis {
	t.Helper()
	a, err := eng.Analyze(context.Background(), q, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// weightsAt builds a running-example query with the given dim-0 weight.
func weightsAt(w0 float64) vec.Query {
	return vec.MustQuery([]int{0, 1}, []float64{w0, 0.5})
}

// TestCacheEntryBound verifies LRU eviction under the entry-count
// bound: the cache never exceeds it, the oldest anchor goes first, and
// a hit refreshes recency.
func TestCacheEntryBound(t *testing.T) {
	tuples, _, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{CacheEntries: 2})
	opts := Options{Options: core.Options{Method: core.MethodCPT}}

	q1, q2, q3 := weightsAt(0.6), weightsAt(0.7), weightsAt(0.8)
	analyzeMust(t, eng, q1, k, opts)
	analyzeMust(t, eng, q2, k, opts)
	// Touch q1 so q2 is now the LRU tail.
	if a := analyzeMust(t, eng, q1, k, opts); a.Source != SourceCache {
		t.Fatalf("q1 source %v, want hit", a.Source)
	}
	analyzeMust(t, eng, q3, k, opts) // evicts q2

	st := eng.CacheStats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 1 eviction", st)
	}
	if a := analyzeMust(t, eng, q2, k, opts); a.Source != SourceComputed {
		t.Fatalf("evicted q2 source %v, want recompute", a.Source)
	}
	if a := analyzeMust(t, eng, q1, k, opts); a.Source != SourceComputed {
		// q1 was the tail once q3+q2 were admitted.
		t.Fatalf("q1 source %v, want recompute after falling off", a.Source)
	}
}

// TestCacheByteBound verifies eviction under the byte bound: the
// estimated footprint never exceeds the configured limit no matter how
// many analyses are admitted.
func TestCacheByteBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7004))
	cs := fixture.RandCase(rng, 120, 6, 3, 8)
	// Size the bound to roughly three entries so admission must evict.
	probe := memEngine(cs.Tuples, cs.M, Config{})
	analyzeMust(t, probe, cs.Q, cs.K, Options{Options: core.Options{Method: core.MethodCPT, Phi: 1}})
	oneEntry := probe.CacheStats().Bytes
	if oneEntry <= 0 {
		t.Fatalf("probe entry size %d", oneEntry)
	}
	bound := 3 * oneEntry
	eng := memEngine(cs.Tuples, cs.M, Config{CacheBytes: bound, CacheEntries: 1 << 20})

	opts := Options{Options: core.Options{Method: core.MethodCPT, Phi: 1}}
	for i := 0; i < 12; i++ {
		q := cs.Q.Clone()
		q.Weights[0] = 0.05 + 0.07*float64(i)
		analyzeMust(t, eng, q, cs.K, opts)
		if st := eng.CacheStats(); st.Bytes > bound {
			t.Fatalf("after %d admissions: bytes %d exceed bound %d", i+1, st.Bytes, bound)
		}
	}
	st := eng.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("stats %+v: expected evictions under byte pressure", st)
	}
	if st.Entries == 0 {
		t.Fatalf("stats %+v: bound evicted everything", st)
	}
}

// TestCacheInvalidation covers both hooks: full invalidation and
// per-dimension invalidation (the mutable-index hook) — entries on
// untouched subspaces survive.
func TestCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7005))
	cs := fixture.RandCase(rng, 80, 8, 3, 5)
	eng := memEngine(cs.Tuples, cs.M, Config{})
	opts := Options{Options: core.Options{Method: core.MethodCPT}}

	analyzeMust(t, eng, cs.Q, cs.K, opts)
	// A second subspace disjoint from the first would need sampling; use
	// a different k instead, which lands in a different bucket but the
	// same dimensions.
	analyzeMust(t, eng, cs.Q, cs.K+1, opts)
	if st := eng.CacheStats(); st.Entries != 2 {
		t.Fatalf("entries %d, want 2", st.Entries)
	}

	// Invalidating an unused dimension keeps both.
	unused := -1
	for d := 0; d < cs.M; d++ {
		if cs.Q.Pos(d) < 0 {
			unused = d
			break
		}
	}
	eng.Invalidate(unused)
	if st := eng.CacheStats(); st.Entries != 2 {
		t.Fatalf("invalidating unused dim %d dropped entries: %+v", unused, st)
	}

	// Invalidating a query dimension drops every entry using it.
	eng.Invalidate(cs.Q.Dims[0])
	if st := eng.CacheStats(); st.Entries != 0 {
		t.Fatalf("per-dim invalidation left %d entries", st.Entries)
	}

	analyzeMust(t, eng, cs.Q, cs.K, opts)
	eng.Invalidate()
	if st := eng.CacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("full invalidation left %+v", st)
	}
	if a := analyzeMust(t, eng, cs.Q, cs.K, opts); a.Source != SourceComputed {
		t.Fatalf("post-invalidation source %v", a.Source)
	}
}

// TestCacheDisabled ensures CacheEntries < 0 really turns everything
// off: no hits, no stats, no admission.
func TestCacheDisabled(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{CacheEntries: -1})
	opts := Options{Options: core.Options{Method: core.MethodCPT}}
	if a := analyzeMust(t, eng, q, k, opts); a.Source != SourceBypass {
		t.Fatalf("source %v", a.Source)
	}
	if a := analyzeMust(t, eng, q, k, opts); a.Source != SourceBypass {
		t.Fatalf("repeat source %v, want bypass (cache disabled)", a.Source)
	}
	if eng.CacheEnabled() {
		t.Fatal("CacheEnabled with CacheEntries -1")
	}
}

// TestCacheConcurrent hammers one engine from many goroutines — mixed
// analyzes (repeat-heavy), region-hit top-k lookups and invalidations —
// and checks every response against the sequential ground truth. Run
// under -race this is the cache's synchronization proof.
func TestCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7006))
	cs := fixture.RandCase(rng, 150, 8, 3, 6)
	eng := memEngine(cs.Tuples, cs.M, Config{CacheEntries: 8})
	opts := Options{Options: core.Options{Method: core.MethodCPT, Phi: 1}}

	// A small workload of distinct weight vectors, with ground truth.
	queries := make([]vec.Query, 6)
	want := make([][]int, len(queries))
	fresh := memEngine(cs.Tuples, cs.M, Config{CacheEntries: -1})
	for i := range queries {
		q := cs.Q.Clone()
		q.Weights[i%q.Len()] = 0.2 + 0.12*float64(i)
		queries[i] = q
		a, err := fresh.Analyze(context.Background(), q, cs.K, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a.RankedIDs()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 30; r++ {
				i := (g + r) % len(queries)
				switch r % 3 {
				case 0, 1:
					a, err := eng.Analyze(context.Background(), queries[i], cs.K, opts)
					if err != nil {
						errs <- err
						return
					}
					if got := a.RankedIDs(); !equalInts(got, want[i]) {
						errs <- fmt.Errorf("q%d analyze (src %v): %v want %v", i, a.Source, got, want[i])
						return
					}
				case 2:
					res, _, err := eng.TopK(context.Background(), queries[i], cs.K)
					if err != nil {
						errs <- err
						return
					}
					for j, sc := range res {
						if sc.ID != want[i][j] {
							errs <- fmt.Errorf("q%d topk: %v want %v", i, res, want[i])
							return
						}
					}
				}
				if g == 0 && r%10 == 9 {
					eng.Invalidate(cs.Q.Dims[r%cs.Q.Len()])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
