package engine

import (
	"context"
	"math"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/vec"
)

// cachedEntry digs the single cached anchor for (q, k) out of the
// engine, for white-box containment checks.
func cachedEntry(t *testing.T, eng *Engine, q vec.Query, k int) *entry {
	t.Helper()
	bucket := eng.cache.buckets[keyOf(q, k)]
	if len(bucket) != 1 {
		t.Fatalf("bucket holds %d entries, want 1", len(bucket))
	}
	return bucket[0]
}

// TestContainsWeightsBoundaryPinned pins the cache's containment
// semantics to core.SafeConcurrent's CLOSED cross-polytope test, with
// no tolerance of its own: for any weight vector w the cache's verdict
// must equal SafeConcurrent on the recovered deviations w − anchor, and
// deviations landing exactly on the boundary (normalized sum exactly 1)
// are contained. The end-to-end consequence: the largest representable
// in-region weight still region-serves /topk, the next ulp misses.
func TestContainsWeightsBoundaryPinned(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(tuples, 2, Config{})
	a := analyzeMust(t, eng, q, k, Options{Options: core.Options{Method: core.MethodCPT}})
	en := cachedEntry(t, eng, q, k)

	// Deviation-space boundary is closed: a single-axis deviation of
	// exactly Hi (or Lo) normalizes to sum == 1 and is safe; one ulp
	// beyond is not.
	for jx, reg := range a.Regions {
		for _, dev := range []float64{reg.Hi, reg.Lo} {
			devs := make([]float64, q.Len())
			devs[jx] = dev
			if safe, err := core.SafeConcurrent(a.Regions, devs); err != nil || !safe {
				t.Fatalf("dim %d dev %v exactly on boundary: safe=%v err=%v, want contained", reg.Dim, dev, safe, err)
			}
			devs[jx] = math.Nextafter(dev, math.Copysign(math.Inf(1), dev))
			if safe, _ := core.SafeConcurrent(a.Regions, devs); safe {
				t.Fatalf("dim %d dev one ulp past %v still contained", reg.Dim, dev)
			}
		}
	}
	// A mixed deviation whose normalized coordinates sum to exactly 1
	// (powers of two keep the division exact) is on the boundary and
	// contained.
	mixed := []float64{a.Regions[0].Hi * 0.5, a.Regions[1].Hi * 0.5}
	if safe, err := core.SafeConcurrent(a.Regions, mixed); err != nil || !safe {
		t.Fatalf("mixed boundary point: safe=%v err=%v", safe, err)
	}

	// Pin containsWeights ≡ SafeConcurrent on recovered deviations for a
	// sweep of weight vectors around both bounds of dimension 0 — the
	// cache must not add or lose an epsilon anywhere.
	for _, bound := range []float64{a.Regions[0].Hi, a.Regions[0].Lo} {
		w0 := q.Weights[0] + bound
		for i := -3; i <= 3; i++ {
			w := slices.Clone(q.Weights)
			w[0] = w0
			for s := 0; s < i; s++ {
				w[0] = math.Nextafter(w[0], math.Inf(1))
			}
			for s := 0; s > i; s-- {
				w[0] = math.Nextafter(w[0], math.Inf(-1))
			}
			devs := []float64{w[0] - q.Weights[0], 0}
			want, err := core.SafeConcurrent(a.Regions, devs)
			if err != nil {
				t.Fatal(err)
			}
			if got := containsWeights(en, w); got != want {
				t.Fatalf("bound %v step %d: containsWeights=%v, SafeConcurrent=%v", bound, i, got, want)
			}
		}
	}

	// End to end: the largest representable weight still inside the
	// closed region serves /topk from the cache; the next ulp recomputes.
	w0 := q.Weights[0] + a.Regions[0].Hi
	for {
		devs := []float64{w0 - q.Weights[0], 0}
		if safe, _ := core.SafeConcurrent(a.Regions, devs); safe {
			break
		}
		w0 = math.Nextafter(w0, math.Inf(-1))
	}
	inQ := vec.Query{Dims: slices.Clone(q.Dims), Weights: []float64{w0, q.Weights[1]}}
	if _, src, err := eng.TopK(context.Background(), inQ, k); err != nil || src != SourceCacheRegion {
		t.Fatalf("boundary weight: src %v err %v, want region hit", src, err)
	}
	outQ := vec.Query{Dims: slices.Clone(q.Dims), Weights: []float64{math.Nextafter(w0, math.Inf(1)), q.Weights[1]}}
	if _, src, err := eng.TopK(context.Background(), outQ, k); err != nil || src != SourceComputed {
		t.Fatalf("one ulp outside: src %v err %v, want recompute", src, err)
	}
}
