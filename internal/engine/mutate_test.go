package engine

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/vec"
)

func cloneTuples(ts []vec.Sparse) []vec.Sparse {
	out := make([]vec.Sparse, len(ts))
	for i, t := range ts {
		if t != nil {
			out[i] = t.Clone()
		}
	}
	return out
}

func mustApply(t *testing.T, eng *Engine, ops ...Op) ApplyResult {
	t.Helper()
	res, err := eng.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, or := range res.Results {
		if or.Err != nil {
			t.Fatalf("op %d: %v", i, or.Err)
		}
	}
	return res
}

// assertSameAnswers checks that eng (possibly serving from cache) and a
// fresh engine agree bit-identically on the analysis and the ranked
// top-k of one query.
func assertSameAnswers(t *testing.T, eng, fresh *Engine, q vec.Query, k int, opts Options) {
	t.Helper()
	a1 := analyzeMust(t, eng, q, k, opts)
	a2 := analyzeMust(t, fresh, q, k, opts)
	if !reflect.DeepEqual(a1.Result, a2.Result) {
		t.Fatalf("analysis result diverged (source %v):\n  got  %+v\n  want %+v", a1.Source, a1.Result, a2.Result)
	}
	if !reflect.DeepEqual(a1.Regions, a2.Regions) {
		t.Fatalf("regions diverged (source %v):\n  got  %+v\n  want %+v", a1.Source, a1.Regions, a2.Regions)
	}
	r1, _, err := eng.TopK(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := fresh.TopK(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("topk diverged:\n  got  %+v\n  want %+v", r1, r2)
	}
}

// TestApplyRunningExampleCertificates walks the paper's running example
// through the certificate's verdicts: changes provably below every
// result line keep the cached analysis serving; changes that can cross
// one inside the region polytope evict it — and in every state the
// served answers match a fresh engine built on the current dataset.
func TestApplyRunningExampleCertificates(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(cloneTuples(tuples), 2, Config{})
	opts := Options{Options: core.Options{Method: core.MethodCPT}}
	shadow := cloneTuples(tuples)

	fresh := func() *Engine { return memEngine(cloneTuples(shadow), 2, Config{CacheEntries: -1}) }
	analyzeMust(t, eng, q, k, opts)

	// d4 (id 3) is far below the result everywhere in the polytope:
	// nudging it cannot touch the certificate.
	nudged := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.1}, vec.Entry{Dim: 1, Val: 0.55})
	res := mustApply(t, eng, Op{Kind: OpUpdate, ID: 3, Tuple: nudged})
	shadow[3] = nudged
	if res.CacheChecked != 1 || res.CacheEvicted != 0 || res.CacheSurvived != 1 {
		t.Fatalf("survivor batch accounting %+v", res)
	}
	if a := analyzeMust(t, eng, q, k, opts); a.Source != SourceCache {
		t.Fatalf("surviving entry source %v, want cache hit", a.Source)
	}
	assertSameAnswers(t, eng, fresh(), q, k, opts)

	// An in-region /topk off the anchor still serves from the survivor.
	qin := vec.MustQuery([]int{0, 1}, []float64{0.82, 0.5})
	if _, src, err := eng.TopK(context.Background(), qin, k); err != nil || src != SourceCacheRegion {
		t.Fatalf("in-region topk src %v err %v, want region hit", src, err)
	}
	assertSameAnswers(t, eng, fresh(), qin, k, opts)

	// An insert that stays strictly below both result lines over the
	// whole polytope survives too.
	tiny := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.05})
	res = mustApply(t, eng, Op{Kind: OpInsert, Tuple: tiny})
	shadow = append(shadow, tiny)
	// Two anchors are cached by now: the original query and qin.
	if res.CacheEvicted != 0 || res.CacheSurvived != 2 {
		t.Fatalf("tiny-insert accounting %+v", res)
	}
	if res.Results[0].ID != 4 {
		t.Fatalf("insert id %d, want 4", res.Results[0].ID)
	}
	assertSameAnswers(t, eng, fresh(), q, k, opts)

	// d3 (id 2) defines the left region bound — its score line touches
	// d1's exactly at a polytope vertex, so any change to it must evict.
	moved := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.1}, vec.Entry{Dim: 1, Val: 0.75})
	res = mustApply(t, eng, Op{Kind: OpUpdate, ID: 2, Tuple: moved})
	shadow[2] = moved
	// d3's line touches d1's at both anchors' polytope vertices.
	if res.CacheEvicted != 2 || res.CacheSurvived != 0 {
		t.Fatalf("bound-defining update accounting %+v", res)
	}
	if a := analyzeMust(t, eng, q, k, opts); a.Source != SourceComputed {
		t.Fatalf("post-eviction source %v, want recompute", a.Source)
	}
	assertSameAnswers(t, eng, fresh(), q, k, opts)

	// Deleting a result member evicts: its cached projection is stale.
	res = mustApply(t, eng, Op{Kind: OpDelete, ID: 1})
	shadow[1] = nil
	if res.CacheEvicted != 1 {
		t.Fatalf("result-member delete accounting %+v", res)
	}
	assertSameAnswers(t, eng, fresh(), q, k, opts)

	// A dominant insert evicts: it joins the result everywhere.
	analyzeMust(t, eng, q, k, opts)
	dominant := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.9}, vec.Entry{Dim: 1, Val: 0.9})
	res = mustApply(t, eng, Op{Kind: OpInsert, Tuple: dominant})
	shadow = append(shadow, dominant)
	if res.CacheEvicted != 1 {
		t.Fatalf("dominant-insert accounting %+v", res)
	}
	assertSameAnswers(t, eng, fresh(), q, k, opts)

	// φ > 0 entries carry perturbation schedules beyond the certified
	// polytope: any subspace-touching change evicts them.
	phiOpts := Options{Options: core.Options{Method: core.MethodCPT, Phi: 2}}
	analyzeMust(t, eng, q, k, phiOpts)
	nudged2 := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.1}, vec.Entry{Dim: 1, Val: 0.5})
	res = mustApply(t, eng, Op{Kind: OpUpdate, ID: 3, Tuple: nudged2})
	shadow[3] = nudged2
	evictedPhi := false
	for _, n := range []int{res.CacheEvicted} {
		if n >= 1 {
			evictedPhi = true
		}
	}
	if !evictedPhi {
		t.Fatalf("phi>0 entry survived a subspace-touching change: %+v", res)
	}
	assertSameAnswers(t, eng, fresh(), q, k, phiOpts)

	st := eng.MutationStats()
	if st.Inserts != 2 || st.Updates != 3 || st.Deletes != 1 || st.Batches != 6 {
		t.Fatalf("mutation stats %+v", st)
	}
}

// randOpTuple draws a non-empty mutation payload (empty tuples are
// rejected: they are the on-disk tombstone encoding); half the draws
// are low-valued so the certificate has genuine survivors to prove.
func randOpTuple(rng *rand.Rand, m int) vec.Sparse {
	scale := 1.0
	if rng.Float64() < 0.5 {
		scale = 0.2
	}
	var entries []vec.Entry
	for len(entries) == 0 {
		for d := 0; d < m; d++ {
			if rng.Float64() < 0.5 {
				entries = append(entries, vec.Entry{Dim: d, Val: scale * (0.05 + 0.9*rng.Float64())})
			}
		}
	}
	t, err := vec.NewSparse(entries)
	if err != nil {
		panic(err)
	}
	return t
}

// randSubspaceQuery draws a query over a random subspace of [0,m).
func randSubspaceQuery(rng *rand.Rand, m, qlen int) vec.Query {
	dims := rng.Perm(m)[:qlen]
	weights := make([]float64, qlen)
	for i := range weights {
		weights[i] = 0.05 + 0.95*rng.Float64()
	}
	return vec.MustQuery(dims, weights)
}

// TestApplyPropertyFreshEquivalence is the acceptance property test:
// after a random sequence of inserts, updates and deletes, every
// /analyze and /topk answer — whether a certified cache survivor or a
// recompute — is bit-identical to a fresh engine built on the
// post-update dataset. The trial count is tuned so both verdicts
// (survive and evict) are exercised many times.
func TestApplyPropertyFreshEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(90125))
	var survived, evicted int64
	for trial := 0; trial < 12; trial++ {
		cs := fixture.RandCase(rng, 50+rng.Intn(40), 6, 3, 1+rng.Intn(4))
		shadow := cloneTuples(cs.Tuples)
		eng := memEngine(cloneTuples(cs.Tuples), cs.M, Config{})

		type req struct {
			q    vec.Query
			opts Options
		}
		reqs := []req{{cs.Q, Options{Options: core.Options{Method: core.MethodCPT}}}}
		for i := 0; i < 3; i++ {
			phi := 0
			if i == 2 {
				phi = 2
			}
			reqs = append(reqs, req{
				q:    randSubspaceQuery(rng, cs.M, 2+rng.Intn(2)),
				opts: Options{Options: core.Options{Method: core.MethodCPT, Phi: phi}},
			})
		}
		for _, r := range reqs {
			analyzeMust(t, eng, r.q, cs.K, r.opts)
		}

		// A random op batch, mirrored into the shadow dataset.
		var ops []Op
		for len(ops) < 6 {
			switch rng.Intn(3) {
			case 0:
				tu := randOpTuple(rng, cs.M)
				ops = append(ops, Op{Kind: OpInsert, Tuple: tu})
				shadow = append(shadow, tu)
			case 1:
				id := rng.Intn(len(cs.Tuples))
				if shadow[id] == nil {
					continue
				}
				tu := randOpTuple(rng, cs.M)
				ops = append(ops, Op{Kind: OpUpdate, ID: id, Tuple: tu})
				shadow[id] = tu
			default:
				id := rng.Intn(len(cs.Tuples))
				if shadow[id] == nil {
					continue
				}
				ops = append(ops, Op{Kind: OpDelete, ID: id})
				shadow[id] = nil
			}
		}
		res := mustApply(t, eng, ops...)
		survived += int64(res.CacheSurvived)
		evicted += int64(res.CacheEvicted)

		fresh := memEngine(cloneTuples(shadow), cs.M, Config{CacheEntries: -1})
		for _, r := range reqs {
			assertSameAnswers(t, eng, fresh, r.q, cs.K, r.opts)
		}
		// A query never analyzed before the update must agree too.
		qNew := randSubspaceQuery(rng, cs.M, 2)
		assertSameAnswers(t, eng, fresh, qNew, cs.K, Options{Options: core.Options{Method: core.MethodCPT}})
	}
	if survived == 0 {
		t.Fatal("no cache entry ever survived: the certificate was never exercised")
	}
	if evicted == 0 {
		t.Fatal("no cache entry was ever evicted: the test is too weak")
	}
}

// TestApplyInvalidationZeroIndexIO: over an in-memory index the whole
// Apply batch — mutations plus the per-entry certificate checks — runs
// without a single logical index I/O: the check works entirely on
// cached projections.
func TestApplyInvalidationZeroIndexIO(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	eng := memEngine(cloneTuples(tuples), 2, Config{})
	analyzeMust(t, eng, q, k, Options{Options: core.Options{Method: core.MethodCPT}})

	seq0, rnd0, by0 := eng.Stats().Snapshot()
	mustApply(t, eng,
		Op{Kind: OpUpdate, ID: 3, Tuple: vec.MustSparse(vec.Entry{Dim: 1, Val: 0.55})},
		Op{Kind: OpInsert, Tuple: vec.MustSparse(vec.Entry{Dim: 0, Val: 0.9}, vec.Entry{Dim: 1, Val: 0.9})},
		Op{Kind: OpDelete, ID: 3},
	)
	if seq1, rnd1, by1 := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 || by1 != by0 {
		t.Fatalf("apply touched the index meter: seq %d→%d rand %d→%d bytes %d→%d", seq0, seq1, rnd0, rnd1, by0, by1)
	}
}

// TestApplyErrors pins the failure modes: read-only engines, empty
// batches, per-op failures that leave the rest of the batch applied.
func TestApplyErrors(t *testing.T) {
	tuples, q, k := fixture.RunningExample()

	ro := memEngine(cloneTuples(tuples), 2, Config{ReadOnly: true})
	if _, err := ro.Apply([]Op{{Kind: OpDelete, ID: 0}}); !errors.Is(err, ErrImmutable) {
		t.Fatalf("read-only Apply err %v, want ErrImmutable", err)
	}

	eng := memEngine(cloneTuples(tuples), 2, Config{})
	if _, err := eng.Apply(nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty Apply err %v, want ErrInvalid", err)
	}
	res, err := eng.Apply([]Op{
		{Kind: OpDelete, ID: 99}, // out of range
		{Kind: OpInsert, Tuple: vec.MustSparse(vec.Entry{Dim: 0, Val: 0.3})}, // fine
		{Kind: OpKind(7)}, // unknown
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Err == nil || res.Results[2].Err == nil {
		t.Fatalf("per-op errors missing: %+v", res.Results)
	}
	if res.Results[1].Err != nil || res.Results[1].ID != 4 || res.Applied != 1 {
		t.Fatalf("valid op in failing batch: %+v", res)
	}
	if _, _, err := eng.TopK(context.Background(), q, k); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDiskOverlayEngine: the full write path over a persisted
// dataset — engine.Open wraps the disk index in the delta overlay, and
// post-update answers match a fresh in-memory engine on the updated
// dataset.
func TestApplyDiskOverlayEngine(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat")
	if err := lists.SaveDataset(tp, lp, tuples, 2); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(tp, lp, 64, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.Mutable() {
		t.Fatal("opened engine is not mutable")
	}

	opts := Options{Options: core.Options{Method: core.MethodCPT}}
	analyzeMust(t, eng, q, k, opts)

	shadow := cloneTuples(tuples)
	nudged := vec.MustSparse(vec.Entry{Dim: 0, Val: 0.1}, vec.Entry{Dim: 1, Val: 0.55})
	res := mustApply(t, eng,
		Op{Kind: OpUpdate, ID: 3, Tuple: nudged},
		Op{Kind: OpInsert, Tuple: vec.MustSparse(vec.Entry{Dim: 1, Val: 0.95})},
		Op{Kind: OpDelete, ID: 0},
	)
	shadow[3] = nudged
	shadow = append(shadow, vec.MustSparse(vec.Entry{Dim: 1, Val: 0.95}))
	shadow[0] = nil
	if res.Applied != 3 {
		t.Fatalf("applied %d, want 3", res.Applied)
	}

	fresh := memEngine(cloneTuples(shadow), 2, Config{CacheEntries: -1})
	assertSameAnswers(t, eng, fresh, q, k, opts)

	// ReadOnly open serves the raw disk index: immutable.
	ro, err := Open(tp, lp, 64, Config{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Mutable() {
		t.Fatal("read-only open produced a mutable engine")
	}
}

// TestApplyConcurrentWithQueries hammers the write path against live
// query traffic (run under -race): readers must always see a coherent
// index, and the final state must match a fresh engine.
func TestApplyConcurrentWithQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	cs := fixture.RandCase(rng, 80, 6, 3, 5)
	eng := memEngine(cloneTuples(cs.Tuples), cs.M, Config{})
	shadow := cloneTuples(cs.Tuples)
	opts := Options{Options: core.Options{Method: core.MethodCPT}}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := cs.Q
				if r.Intn(2) == 0 {
					q = randSubspaceQuery(r, cs.M, 2)
				}
				if _, err := eng.Analyze(context.Background(), q, cs.K, opts); err != nil {
					t.Errorf("analyze: %v", err)
					return
				}
				if _, _, err := eng.TopK(context.Background(), q, cs.K); err != nil {
					t.Errorf("topk: %v", err)
					return
				}
			}
		}(int64(1000 + w))
	}

	// The writer owns the shadow: updates and inserts only, so every op
	// is always valid.
	for i := 0; i < 25; i++ {
		var ops []Op
		for j := 0; j < 3; j++ {
			tu := randOpTuple(rng, cs.M)
			if rng.Intn(2) == 0 {
				id := rng.Intn(len(cs.Tuples))
				ops = append(ops, Op{Kind: OpUpdate, ID: id, Tuple: tu})
				shadow[id] = tu
			} else {
				ops = append(ops, Op{Kind: OpInsert, Tuple: tu})
				shadow = append(shadow, tu)
			}
		}
		mustApply(t, eng, ops...)
	}
	close(stop)
	wg.Wait()

	fresh := memEngine(cloneTuples(shadow), cs.M, Config{CacheEntries: -1})
	assertSameAnswers(t, eng, fresh, cs.Q, cs.K, opts)
}
