package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the propagation header: accepted inbound,
// echoed on every response, forwarded by the proxy to the backend.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds what we accept from the wire; anything
// longer (or containing non-token bytes) is replaced, not trusted —
// the ID lands in logs and the slow log verbatim.
const maxRequestIDLen = 64

type reqIDKey struct{}

// WithRequestID stores id in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// reqSeq breaks ties if crypto/rand ever fails (it does not on any
// supported platform, but an ID must still be unique-ish).
var reqSeq atomic.Uint64

// NewRequestID mints a 16-hex-digit random ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := reqSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts printable-ASCII tokens up to maxRequestIDLen.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// RequestID is the tracing middleware: it adopts a valid inbound
// X-Request-ID or mints one, sets it on the response, rewrites the
// inbound header (so a proxy forwarding r's headers propagates the
// same ID to its backend), and stores it in the request context for
// LogWith and the slow log.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = NewRequestID()
			r.Header.Set(RequestIDHeader, id)
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
	})
}

// StatusRecorder captures the status code and body size written
// through a ResponseWriter; both the access log and the per-endpoint
// error counters key off it.
type StatusRecorder struct {
	http.ResponseWriter
	Code  int
	Bytes int64
}

// NewStatusRecorder wraps w with Code preset to 200 (the implicit
// status when a handler writes without calling WriteHeader).
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
}

// WriteHeader records the status and forwards it.
func (s *StatusRecorder) WriteHeader(code int) {
	s.Code = code
	s.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes and forwards them.
func (s *StatusRecorder) Write(p []byte) (int, error) {
	n, err := s.ResponseWriter.Write(p)
	s.Bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it streams.
func (s *StatusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog emits one structured line per request (method, path,
// status, bytes, duration, request ID). The daemons wrap their whole
// mux with it; library tests do not, so suites stay quiet. AccessLog
// sits OUTSIDE the RequestID middleware, so the ID is read back from
// the inbound header after serving — RequestID rewrites it there, and
// the shallow request copy it passes down shares the header map.
func AccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := NewStatusRecorder(w)
		next.ServeHTTP(rec, r)
		id := RequestIDFrom(r.Context())
		if id == "" {
			id = r.Header.Get(RequestIDHeader)
		}
		Log().Info("http_request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.Code,
			"bytes", rec.Bytes,
			"duration_ms", float64(time.Since(t0).Microseconds())/1000.0,
			"request_id", id,
		)
	})
}
