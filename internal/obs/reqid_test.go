package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestIDMinted(t *testing.T) {
	var seenCtx, seenHeader string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtx = RequestIDFrom(r.Context())
		seenHeader = r.Header.Get(RequestIDHeader)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/topk", nil))
	id := rec.Header().Get(RequestIDHeader)
	if id == "" || len(id) != 16 {
		t.Fatalf("minted ID %q, want 16 hex chars", id)
	}
	if seenCtx != id || seenHeader != id {
		t.Fatalf("context=%q header=%q response=%q not all equal", seenCtx, seenHeader, id)
	}
}

func TestRequestIDAdopted(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	req := httptest.NewRequest("GET", "/topk", nil)
	req.Header.Set(RequestIDHeader, "client-chose-this")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-chose-this" || rec.Header().Get(RequestIDHeader) != "client-chose-this" {
		t.Fatalf("inbound ID not adopted: ctx=%q hdr=%q", seen, rec.Header().Get(RequestIDHeader))
	}
}

func TestRequestIDRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space", "ctl\x01byte", "bad\nnewline"} {
		h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		req := httptest.NewRequest("GET", "/", nil)
		if bad != "" {
			req.Header["X-Request-Id"] = []string{bad}
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if got := rec.Header().Get(RequestIDHeader); got == bad || got == "" {
			t.Errorf("garbage ID %q not replaced (got %q)", bad, got)
		}
	}
}

func TestAccessLogEmitsJSON(t *testing.T) {
	var buf bytes.Buffer
	old := Log()
	SetLogOutput(&buf)
	defer SetLogger(old)

	h := RequestID(AccessLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte("short and stout"))
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/teapot", nil))

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON object: %v\n%s", err, buf.String())
	}
	if line["msg"] != "http_request" || line["path"] != "/teapot" {
		t.Fatalf("unexpected line: %v", line)
	}
	if line["status"] != float64(http.StatusTeapot) || line["bytes"] != float64(len("short and stout")) {
		t.Fatalf("status/bytes wrong: %v", line)
	}
	if line["request_id"] != rec.Header().Get(RequestIDHeader) {
		t.Fatalf("request_id %v != header %q", line["request_id"], rec.Header().Get(RequestIDHeader))
	}
}

func TestSlowLogRecordsAndWraps(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	if l.Record(SlowEntry{Endpoint: "topk", DurationMs: 5}) {
		t.Fatal("under-threshold entry recorded")
	}
	for i := 0; i < 5; i++ {
		if !l.Record(SlowEntry{Endpoint: "topk", K: i, DurationMs: 20}) {
			t.Fatalf("entry %d not recorded", i)
		}
	}
	got, total := l.Snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want ring capacity 3", len(got))
	}
	// Newest first: K values 4, 3, 2.
	for i, wantK := range []int{4, 3, 2} {
		if got[i].K != wantK {
			t.Fatalf("entry %d has K=%d, want %d", i, got[i].K, wantK)
		}
	}
}

func TestSlowLogDisabled(t *testing.T) {
	var nilLog *SlowLog
	if nilLog.Record(SlowEntry{DurationMs: 1e9}) {
		t.Fatal("nil slow log recorded")
	}
	if e, n := nilLog.Snapshot(); e != nil || n != 0 {
		t.Fatal("nil slow log snapshot not empty")
	}
	off := NewSlowLog(0, 4)
	if off.Record(SlowEntry{DurationMs: 1e9}) {
		t.Fatal("disabled slow log recorded")
	}
}
