package obs

import (
	"runtime"
	"time"
)

// Version and Commit are stamped by the linker:
//
//	go build -ldflags "-X repro/internal/obs.Version=v9 -X repro/internal/obs.Commit=$(git rev-parse --short HEAD)"
//
// (the Makefile build target does exactly that). Unstamped builds —
// plain `go build`, `go test` — report dev/unknown.
var (
	Version = "dev"
	Commit  = "unknown"
)

// processStart anchors uptime; counters reset on restart, and the
// start-time gauge is what makes those resets visible to a scraper.
var processStart = time.Now()

// StartTime returns when this process initialized obs.
func StartTime() time.Time { return processStart }

// Uptime returns the time since process start.
func Uptime() time.Duration { return time.Since(processStart) }

// Build-info exposition: the constant-label value-1 gauge convention,
// plus start time (unix seconds) and a live uptime gauge.
var (
	_ = NewLabeledGaugeFunc("ir_build_info",
		"build metadata; value is constant 1, the labels carry version and commit",
		map[string]string{"version": Version, "commit": Commit, "go": runtime.Version()},
		func() float64 { return 1 })
	_ = NewGaugeFunc("ir_process_start_time_seconds",
		"unix time the process started; a drop in counters without a change here is impossible",
		func() float64 { return float64(processStart.UnixNano()) / 1e9 })
	_ = NewGaugeFunc("ir_process_uptime_seconds",
		"seconds since process start",
		func() float64 { return Uptime().Seconds() })
)
