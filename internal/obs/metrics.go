package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricNameRe is the runtime charset check on registration; the
// obsreg analyzer additionally pins the repo's `ir_` prefix statically.
var metricNameRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// LatencyBuckets are the default duration buckets (seconds): half a
// millisecond to ten seconds, roughly 2.5x apart — wide enough for the
// cold fig12 tail, fine enough to separate cache hits from TA scans.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets suit discrete work counters (sorted accesses, rounds):
// powers of four from 64 to ~1M.
var CountBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// metric is one registered family; write emits its sample lines (not
// HELP/TYPE — the registry owns those).
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string
	write(w *bufio.Writer)
}

// Registry is a set of metric families keyed by name. The zero value
// is not usable; see NewRegistry. All methods are safe for concurrent
// use; sample updates are atomic and never block exposition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]metric
}

// NewRegistry returns an empty registry. Almost all code uses the
// package-level Default via the New* constructors; separate registries
// exist for tests.
func NewRegistry() *Registry {
	return &Registry{families: map[string]metric{}}
}

// Default is the process-wide registry served by Handler.
var Default = NewRegistry()

// register adds m, panicking on duplicate or malformed names:
// registration happens once at package init, so a bad name is a bug
// that should stop the process before it serves anything.
func (r *Registry) register(m metric) {
	name := m.metricName()
	if !metricNameRe.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.families[name] = m
}

// Names returns the registered family names, sorted. The golden
// metric-name snapshot test pins this set.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteText renders the registry in the Prometheus text exposition
// format (0.0.4): families sorted by name, HELP and TYPE once each,
// then the samples.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]metric, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	for _, m := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.metricName(), escapeHelp(m.metricHelp()))
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.metricName(), m.metricType())
		m.write(bw)
	}
	return bw.Flush()
}

// Handler serves the default registry as text/plain exposition.
func Handler() http.Handler {
	return HandlerFor(Default)
}

// HandlerFor serves one registry's exposition.
func HandlerFor(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// escapeHelp escapes backslashes and newlines per the exposition
// grammar (HELP text is otherwise free-form).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value for the `name{k="v"}` syntax.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders sample values: integers without an exponent,
// everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// atomicFloat is a float64 with atomic add/load, stored as IEEE bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ---- Counter ----

// Counter is a monotonically increasing integer sample.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, hp: help}
	Default.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.nm }
func (c *Counter) metricHelp() string { return c.hp }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) write(w *bufio.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// ---- CounterVec ----

// CounterVec is a counter family over one label whose values come from
// a closed set; With creates the child series on first use.
type CounterVec struct {
	nm, hp, label string
	mu            sync.RWMutex
	children      map[string]*atomic.Int64
}

// NewCounterVec registers a one-label counter family.
func NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{nm: name, hp: help, label: label, children: map[string]*atomic.Int64{}}
	Default.register(v)
	return v
}

// child returns the series cell for one label value, creating it on
// first use. Values must come from a closed set (the obsreg analyzer
// rejects non-constant values without an explicit suppression).
func (v *CounterVec) child(value string) *atomic.Int64 {
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = new(atomic.Int64)
		v.children[value] = c
	}
	return c
}

// Inc adds one to the series for value.
func (v *CounterVec) Inc(value string) { v.child(value).Add(1) }

// Add adds n (non-negative) to the series for value.
func (v *CounterVec) Add(value string, n int64) {
	if n > 0 {
		v.child(value).Add(n)
	}
}

// Value returns the series count (0 if the series does not exist yet).
func (v *CounterVec) Value(value string) int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c := v.children[value]; c != nil {
		return c.Load()
	}
	return 0
}

func (v *CounterVec) metricName() string { return v.nm }
func (v *CounterVec) metricHelp() string { return v.hp }
func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) write(w *bufio.Writer) {
	v.mu.RLock()
	vals := make([]string, 0, len(v.children))
	for val := range v.children {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	for _, val := range vals {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.nm, v.label, escapeLabel(val), v.children[val].Load())
	}
	v.mu.RUnlock()
}

// ---- Gauge ----

// Gauge is a settable float sample.
type Gauge struct {
	nm, hp string
	bits   atomic.Uint64
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, hp: help}
	Default.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.nm }
func (g *Gauge) metricHelp() string { return g.hp }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) write(w *bufio.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.Value()))
}

// ---- GaugeFunc ----

// GaugeFunc samples a callback at exposition time; it is the bridge
// type that mirrors the /stats snapshots (storage.IOStats, WAL,
// overlay, replication lag) into /metrics so the two never drift.
type GaugeFunc struct {
	nm, hp string
	labels string // pre-rendered `{k="v",...}` or ""
	fn     func() float64
}

// NewGaugeFunc registers a callback-backed gauge. fn runs on every
// scrape and must be cheap, non-blocking and nil-safe.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{nm: name, hp: help, fn: fn}
	Default.register(g)
	return g
}

// NewLabeledGaugeFunc registers a callback gauge with constant labels
// (rendered once, sorted by key) — the `ir_build_info` idiom.
func NewLabeledGaugeFunc(name, help string, labels map[string]string, fn func() float64) *GaugeFunc {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	g := &GaugeFunc{nm: name, hp: help, labels: "{" + b.String() + "}", fn: fn}
	Default.register(g)
	return g
}

func (g *GaugeFunc) metricName() string { return g.nm }
func (g *GaugeFunc) metricHelp() string { return g.hp }
func (g *GaugeFunc) metricType() string { return "gauge" }
func (g *GaugeFunc) write(w *bufio.Writer) {
	fmt.Fprintf(w, "%s%s %s\n", g.nm, g.labels, formatFloat(g.fn()))
}

// ---- Histogram ----

// Histogram is a fixed-bucket distribution; buckets are upper bounds
// in ascending order with an implicit +Inf. Observe is lock-free.
type Histogram struct {
	nm, hp string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	n      atomic.Int64
}

// NewHistogram registers a histogram; buckets must be strictly
// ascending and non-empty (registration panics otherwise).
func NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, help, buckets)
	Default.register(h)
	return h
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " needs buckets")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram " + name + " buckets not ascending")
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{nm: name, hp: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

func (h *Histogram) metricName() string { return h.nm }
func (h *Histogram) metricHelp() string { return h.hp }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) write(w *bufio.Writer) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.n.Load())
}

// ---- HistogramVec ----

// HistogramVec is a histogram family over one label.
type HistogramVec struct {
	nm, hp, label string
	bounds        []float64
	mu            sync.RWMutex
	children      map[string]*Histogram
}

// NewHistogramVec registers a one-label histogram family.
func NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	// Validate eagerly via a throwaway child so bad buckets fail at init.
	_ = newHistogram(name, help, buckets)
	v := &HistogramVec{nm: name, hp: help, label: label,
		bounds: append([]float64(nil), buckets...), children: map[string]*Histogram{}}
	Default.register(v)
	return v
}

// Observe records a sample in the series for value.
func (v *HistogramVec) Observe(value string, sample float64) {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h == nil {
		v.mu.Lock()
		if h = v.children[value]; h == nil {
			h = newHistogram(v.nm, v.hp, v.bounds)
			v.children[value] = h
		}
		v.mu.Unlock()
	}
	h.Observe(sample)
}

// Count returns the observation count for one series.
func (v *HistogramVec) Count(value string) int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if h := v.children[value]; h != nil {
		return h.Count()
	}
	return 0
}

func (v *HistogramVec) metricName() string { return v.nm }
func (v *HistogramVec) metricHelp() string { return v.hp }
func (v *HistogramVec) metricType() string { return "histogram" }
func (v *HistogramVec) write(w *bufio.Writer) {
	v.mu.RLock()
	vals := make([]string, 0, len(v.children))
	for val := range v.children {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	for _, val := range vals {
		h := v.children[val]
		lbl := fmt.Sprintf("%s=\"%s\",", v.label, escapeLabel(val))
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", v.nm, lbl, formatFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", v.nm, lbl, cum)
		fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %s\n", v.nm, v.label, escapeLabel(val), formatFloat(h.sum.load()))
		fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", v.nm, v.label, escapeLabel(val), h.n.Load())
	}
	v.mu.RUnlock()
}
