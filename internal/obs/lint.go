package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintExposition parses a Prometheus text exposition (version 0.0.4)
// and returns every grammar violation it finds: samples without HELP
// or TYPE, malformed metric or label names, duplicate series,
// non-monotonic or +Inf-less histogram buckets, histogram _count
// disagreeing with the +Inf bucket, unparseable values. The /metrics
// conformance tests run every daemon's exposition through it; an
// empty slice means conformant.
func LintExposition(r io.Reader) []string {
	var problems []string
	addf := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type familyInfo struct {
		help, typ string
		helpLine  int
	}
	families := map[string]*familyInfo{}
	// seriesSeen keys are "name{sortedlabels}"; duplicates are illegal.
	seriesSeen := map[string]int{}
	// histogram bucket tracking: family -> non-le label signature ->
	// ordered (le, cumulative count) pairs, plus _count samples.
	type bucketSeq struct {
		lastLe    float64
		lastCum   float64
		sawInf    bool
		infCum    float64
		firstLine int
	}
	buckets := map[string]map[string]*bucketSeq{}
	counts := map[string]map[string]float64{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			name, kind, rest, ok := parseMeta(line)
			if !ok {
				if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
					addf(lineNo, "malformed %s line: %q", strings.Fields(line)[1], line)
				}
				continue
			}
			fam := families[name]
			if fam == nil {
				fam = &familyInfo{}
				families[name] = fam
			}
			switch kind {
			case "HELP":
				if fam.help != "" {
					addf(lineNo, "duplicate HELP for %s", name)
				}
				fam.help, fam.helpLine = rest, lineNo
			case "TYPE":
				if fam.typ != "" {
					addf(lineNo, "duplicate TYPE for %s", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					fam.typ = rest
				default:
					addf(lineNo, "unknown TYPE %q for %s", rest, name)
					fam.typ = "untyped"
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf(lineNo, "%v", err)
			continue
		}
		if !metricNameRe.MatchString(name) {
			addf(lineNo, "metric name %q does not match [a-z_][a-z0-9_]*", name)
		}
		base := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if f := families[strings.TrimSuffix(name, s)]; f != nil && f.typ == "histogram" {
					base, suffix = strings.TrimSuffix(name, s), s
				}
				break
			}
		}
		fam := families[base]
		if fam == nil {
			addf(lineNo, "sample %s has no HELP/TYPE metadata", name)
			continue
		}
		if fam.help == "" {
			addf(lineNo, "sample %s missing HELP", name)
		}
		if fam.typ == "" {
			addf(lineNo, "sample %s missing TYPE", name)
		}

		key := name + "{" + canonicalLabels(labels) + "}"
		if prev, dup := seriesSeen[key]; dup {
			addf(lineNo, "duplicate series %s (first at line %d)", key, prev)
		}
		seriesSeen[key] = lineNo

		if fam.typ == "histogram" && suffix != "" {
			sig := canonicalLabelsExcept(labels, "le")
			switch suffix {
			case "_bucket":
				le, hasLe := labelValue(labels, "le")
				if !hasLe {
					addf(lineNo, "%s bucket without le label", base)
					continue
				}
				bm := buckets[base]
				if bm == nil {
					bm = map[string]*bucketSeq{}
					buckets[base] = bm
				}
				seq := bm[sig]
				if seq == nil {
					seq = &bucketSeq{lastLe: math.Inf(-1), lastCum: -1, firstLine: lineNo}
					bm[sig] = seq
				}
				if le == "+Inf" {
					seq.sawInf = true
					seq.infCum = value
					if value < seq.lastCum {
						addf(lineNo, "%s +Inf bucket count %v below previous bucket %v", base, value, seq.lastCum)
					}
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					addf(lineNo, "%s bucket has unparseable le=%q", base, le)
					continue
				}
				if seq.sawInf {
					addf(lineNo, "%s bucket le=%q after +Inf", base, le)
				}
				if bound <= seq.lastLe {
					addf(lineNo, "%s bucket bounds not ascending (le=%q after %v)", base, le, seq.lastLe)
				}
				if value < seq.lastCum {
					addf(lineNo, "%s bucket counts not cumulative (%v after %v)", base, value, seq.lastCum)
				}
				seq.lastLe, seq.lastCum = bound, value
			case "_count":
				cm := counts[base]
				if cm == nil {
					cm = map[string]float64{}
					counts[base] = cm
				}
				cm[sig] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		addf(lineNo, "read: %v", err)
	}

	// Post-pass: every histogram series must end at +Inf and agree
	// with its _count.
	bases := make([]string, 0, len(buckets))
	for b := range buckets {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		sigs := make([]string, 0, len(buckets[base]))
		for s := range buckets[base] {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			seq := buckets[base][sig]
			if !seq.sawInf {
				addf(seq.firstLine, "histogram %s{%s} has no +Inf bucket", base, sig)
				continue
			}
			if cm := counts[base]; cm != nil {
				if c, ok := cm[sig]; ok && c != seq.infCum {
					addf(seq.firstLine, "histogram %s{%s}: _count %v != +Inf bucket %v", base, sig, c, seq.infCum)
				}
			}
		}
	}
	return problems
}

// parseMeta splits a `# HELP name text` / `# TYPE name kind` line.
func parseMeta(line string) (name, kind, rest string, ok bool) {
	for _, k := range []string{"# HELP ", "# TYPE "} {
		if strings.HasPrefix(line, k) {
			body := line[len(k):]
			sp := strings.IndexByte(body, ' ')
			if sp < 0 {
				// TYPE requires a kind; HELP with no text is legal but
				// our registry never emits it — treat as malformed.
				return "", "", "", false
			}
			return body[:sp], strings.TrimSpace(k[2:7]), body[sp+1:], true
		}
	}
	return "", "", "", false
}

var labelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// parseSample parses `name{k="v",...} value` into parts; labels keep
// their escaped form (escaping is validated by labelRe).
func parseSample(line string) (name string, labels [][2]string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if len(rest) == 0 {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			m := labelRe.FindStringSubmatch(rest)
			if m == nil {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			labels = append(labels, [2]string{m[1], m[2]})
			rest = rest[len(m[0]):]
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; we never
	// emit one, but tolerate it by taking the first field.
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}

// canonicalLabels renders a label set sorted by key for dedup keys.
func canonicalLabels(labels [][2]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels [][2]string, drop string) string {
	kv := make([]string, 0, len(labels))
	for _, l := range labels {
		if l[0] == drop {
			continue
		}
		kv = append(kv, l[0]+`="`+l[1]+`"`)
	}
	sort.Strings(kv)
	return strings.Join(kv, ",")
}

// labelValue fetches one label's (escaped) value.
func labelValue(labels [][2]string, key string) (string, bool) {
	for _, l := range labels {
		if l[0] == key {
			return l[1], true
		}
	}
	return "", false
}
