package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// logger holds the process logger; swapped atomically so tests can
// capture output without racing live handlers.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
}

// Log returns the process-wide structured logger. Every line is one
// JSON object; handlers attach the request ID via LogWith so a single
// X-Request-ID stitches proxy and backend logs together.
func Log() *slog.Logger { return logger.Load() }

// SetLogger replaces the process logger (tests, or a daemon routing
// to a file).
func SetLogger(l *slog.Logger) {
	if l != nil {
		logger.Store(l)
	}
}

// SetLogOutput points the default JSON logger at w.
func SetLogOutput(w io.Writer) {
	logger.Store(slog.New(slog.NewJSONHandler(w, nil)))
}

// LogWith returns the process logger annotated with the context's
// request ID (if any) — the one call sites use inside handlers.
func LogWith(ctx context.Context) *slog.Logger {
	l := Log()
	if id := RequestIDFrom(ctx); id != "" {
		l = l.With(slog.String("request_id", id))
	}
	return l
}
