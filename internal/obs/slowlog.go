package obs

import (
	"sync"
	"time"
)

// PhaseMillis is the per-phase breakdown of one slow query, in
// milliseconds — the paper's cost accounting attached to a single
// offending request. Scan is the TA sorted/random access phase
// (Metrics.Phase1); Region covers must-appear + best-k-bounds region
// computation (Phase2+Phase3); Validate/Queue/Cache/Admit are the
// engine envelope around the compute.
type PhaseMillis struct {
	Validate float64 `json:"validate"`
	Queue    float64 `json:"queue"`
	Cache    float64 `json:"cache"`
	Scan     float64 `json:"scan"`
	Region   float64 `json:"region"`
	Admit    float64 `json:"admit"`
}

// SlowEntry is one over-threshold query as served by /debug/slowlog.
type SlowEntry struct {
	Time       time.Time   `json:"time"`
	RequestID  string      `json:"request_id,omitempty"`
	Endpoint   string      `json:"endpoint"`
	Dims       []int       `json:"dims,omitempty"`
	K          int         `json:"k,omitempty"`
	Method     string      `json:"method,omitempty"`
	Cache      string      `json:"cache,omitempty"`
	DurationMs float64     `json:"duration_ms"`
	PhaseMs    PhaseMillis `json:"phase_ms"`
	SeqPages   int64       `json:"seq_pages"`
	RandReads  int64       `json:"rand_reads"`
}

// SlowLog is a fixed-capacity ring of the most recent over-threshold
// queries. A nil or disabled (threshold <= 0) log records nothing.
type SlowLog struct {
	mu    sync.Mutex
	thr   time.Duration
	buf   []SlowEntry
	next  int
	full  bool
	total int64
}

// NewSlowLog returns a ring of the given capacity (minimum 1) that
// records queries at or over threshold; threshold <= 0 disables it.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{thr: threshold, buf: make([]SlowEntry, capacity)}
}

// Threshold returns the recording threshold (<= 0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.thr
}

// Record stores e if its duration is at or over the threshold,
// reporting whether it was kept.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil || l.thr <= 0 {
		return false
	}
	if time.Duration(e.DurationMs*float64(time.Millisecond)) < l.thr {
		return false
	}
	l.mu.Lock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.total++
	l.mu.Unlock()
	return true
}

// Snapshot returns the retained entries, newest first, plus the
// all-time count of recorded queries (the ring only keeps the tail).
func (l *SlowLog) Snapshot() ([]SlowEntry, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]SlowEntry, 0, n)
	for i := 1; i <= n; i++ {
		// Walk backwards from the slot before next, wrapping.
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out, l.total
}
