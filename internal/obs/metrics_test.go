package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Registries under test are private so the package-global Default (and
// its golden name set) is untouched.

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := &Counter{nm: "ir_test_total", hp: "a test counter"}
	r.register(c)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP ir_test_total a test counter\n# TYPE ir_test_total counter\nir_test_total 5\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestCounterVecSortsAndEscapes(t *testing.T) {
	r := NewRegistry()
	vec := &CounterVec{nm: "ir_test_vec_total", hp: "h", label: "kind", children: map[string]*atomic.Int64{}}
	r.register(vec)
	vec.Inc("b")
	vec.Add("a", 2)
	vec.Inc(`quo"te`)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia, ib := strings.Index(out, `kind="a"`), strings.Index(out, `kind="b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("children not sorted by label value:\n%s", out)
	}
	if !strings.Contains(out, `kind="quo\"te"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

func TestGaugeAndFunc(t *testing.T) {
	r := NewRegistry()
	g := &Gauge{nm: "ir_test_gauge", hp: "g"}
	r.register(g)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %v, want 1.5", got)
	}
	gf := &GaugeFunc{nm: "ir_test_gf", hp: "gf", fn: func() float64 { return 42 }}
	r.register(gf)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ir_test_gauge 1.5\n") || !strings.Contains(b.String(), "ir_test_gf 42\n") {
		t.Fatalf("exposition:\n%s", b.String())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := newHistogram("ir_test_seconds", "h", []float64{0.1, 1, 10})
	r.register(h)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ir_test_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1 (le is inclusive)
		`ir_test_seconds_bucket{le="1"} 3`,
		`ir_test_seconds_bucket{le="10"} 4`,
		`ir_test_seconds_bucket{le="+Inf"} 5`,
		`ir_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := &HistogramVec{nm: "ir_test_hv_seconds", hp: "h", label: "target",
		bounds: []float64{0.5, 1}, children: map[string]*Histogram{}}
	r.register(v)
	v.Observe("n2", 0.2)
	v.Observe("n1", 2)
	v.Observe("n1", 0.7)
	if got := v.Count("n1"); got != 2 {
		t.Fatalf("Count(n1) = %d, want 2", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ir_test_hv_seconds_bucket{target="n1",le="0.5"} 0`,
		`ir_test_hv_seconds_bucket{target="n1",le="1"} 1`,
		`ir_test_hv_seconds_bucket{target="n1",le="+Inf"} 2`,
		`ir_test_hv_seconds_count{target="n1"} 2`,
		`ir_test_hv_seconds_count{target="n2"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.register(&Counter{nm: "ir_dup_total"})
	for name, m := range map[string]metric{
		"duplicate": &Counter{nm: "ir_dup_total"},
		"bad chars": &Counter{nm: "ir-bad-name"},
		"uppercase": &Counter{nm: "IR_bad"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("register(%s) did not panic", name)
				}
			}()
			r.register(m)
		}()
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := newHistogram("ir_test_conc_seconds", "h", LatencyBuckets)
	r.register(h)
	c := &Counter{nm: "ir_test_conc_total", hp: "c"}
	r.register(c)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%100) / 100)
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("lost updates: hist=%d counter=%d", h.Count(), c.Value())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"missing metadata": "ir_orphan_total 1\n",
		"missing type":     "# HELP ir_x_total h\nir_x_total 1\n",
		"duplicate series": "# HELP ir_d h\n# TYPE ir_d gauge\nir_d 1\nir_d 2\n",
		"bad name":         "# HELP ir_Bad h\n# TYPE ir_Bad gauge\nir_Bad 1\n",
		"bad type":         "# HELP ir_t h\n# TYPE ir_t rate\nir_t 1\n",
		"no inf bucket": "# HELP ir_h h\n# TYPE ir_h histogram\n" +
			"ir_h_bucket{le=\"1\"} 1\nir_h_sum 1\nir_h_count 1\n",
		"non-monotonic": "# HELP ir_h h\n# TYPE ir_h histogram\n" +
			"ir_h_bucket{le=\"1\"} 5\nir_h_bucket{le=\"2\"} 3\nir_h_bucket{le=\"+Inf\"} 5\nir_h_sum 1\nir_h_count 5\n",
		"count mismatch": "# HELP ir_h h\n# TYPE ir_h histogram\n" +
			"ir_h_bucket{le=\"1\"} 1\nir_h_bucket{le=\"+Inf\"} 2\nir_h_sum 1\nir_h_count 3\n",
		"unparseable value": "# HELP ir_v h\n# TYPE ir_v gauge\nir_v x\n",
	}
	for name, in := range cases {
		if problems := LintExposition(strings.NewReader(in)); len(problems) == 0 {
			t.Errorf("%s: lint found nothing in:\n%s", name, in)
		}
	}
	clean := "# HELP ir_ok_total h\n# TYPE ir_ok_total counter\nir_ok_total 3\n"
	if problems := LintExposition(strings.NewReader(clean)); len(problems) != 0 {
		t.Errorf("clean exposition flagged: %v", problems)
	}
}

func TestDefaultRegistryConformant(t *testing.T) {
	var b strings.Builder
	if err := Default.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("default registry not conformant: %v", problems)
	}
	for _, want := range []string{"ir_build_info", "ir_process_start_time_seconds", "ir_process_uptime_seconds"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("default registry missing %s", want)
		}
	}
}
