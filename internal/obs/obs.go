// Package obs is the repo's observability kernel: a concurrency-safe
// metrics registry with Prometheus text exposition, a structured
// (slog/JSON) logger, request-ID propagation middleware, and a
// ring-buffer slow-query log. It is stdlib-only by design — the same
// constraint the rest of the tree lives under — and every other layer
// (server, engine, replication, client, the daemons) instruments
// itself through this package rather than growing private counters.
//
// # Registry discipline
//
// Metrics are package-level vars registered exactly once at package
// init with constant `ir_`-prefixed names:
//
//	var mApplied = obs.NewCounter("ir_engine_apply_total", "mutation batches applied")
//
// Registration panics on a duplicate or malformed name — misuse is a
// programming error, not a runtime condition — and the obsreg irlint
// analyzer enforces the same rules statically (init-time registration,
// literal names, no request-derived label values). Label values on the
// Vec types must come from closed sets (endpoint names, phase names,
// cluster member IDs), never from request payloads: a label value is a
// new time series forever.
//
// # Exposition
//
// Handler serves the default registry in the Prometheus text format
// (version 0.0.4): one HELP and one TYPE line per family, samples
// sorted by name then label value, histogram buckets cumulative with a
// trailing +Inf. LintExposition checks that grammar and is the basis
// of the conformance tests that run against every daemon's /metrics.
//
// # Tracing
//
// RequestID accepts or mints an X-Request-ID per request and threads
// it through the context, the response header, and (because it mutates
// the inbound header) any proxy hop to a backend; Log() emits JSON
// lines carrying the same ID, and the SlowLog records over-threshold
// queries with the paper's cost model attached — per-phase timings and
// sequential/random I/O counts, per offending request.
package obs
