package client

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/server"
)

// lockedBuffer captures the process log under the race detector.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestProxyRequestIDPropagation drives one query through irproxy's
// handler into a real backend server and proves the single request ID
// shows up in the proxy's access log, the backend's access log, the
// response header, and the backend's slow-query log.
func TestProxyRequestIDPropagation(t *testing.T) {
	var logs lockedBuffer
	obs.SetLogOutput(&logs)
	defer obs.SetLogOutput(os.Stderr)

	// Real backend, advertising itself as a single-member cluster's
	// confirmed primary so the routing client will target it.
	tuples, _, _ := fixture.RunningExample()
	srv := server.New(lists.NewMemIndex(tuples, 2))
	srv.SetSlowQuery(time.Nanosecond)
	info := replication.ClusterInfo{
		NodeID: "n1", Role: "primary", Confirmed: true, Ready: true, Epoch: 1,
	}
	var infoMu sync.Mutex
	srv.SetClusterInfo(func() any {
		infoMu.Lock()
		defer infoMu.Unlock()
		return info
	})
	backend := httptest.NewServer(obs.AccessLog(srv.Handler()))
	defer backend.Close()
	infoMu.Lock()
	info.HTTPAddr = backend.URL
	info.PrimaryHTTP = backend.URL
	infoMu.Unlock()

	c, err := New(Config{Seeds: []string{backend.URL}, ID: "obs-test"})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(obs.AccessLog(NewProxy(c).Handler()))
	defer front.Close()

	const reqID = "e2e-prop-0042"
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/topk",
		strings.NewReader(`{"dims":[0,1],"weights":[0.8,0.5],"k":2}`))
	req.Header.Set(obs.RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != reqID {
		t.Fatalf("response request id %q, want %q", got, reqID)
	}

	// The same ID must appear in BOTH access logs: once for the proxy's
	// /topk and once for the backend's.
	var withID int
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "http_request" && rec["path"] == "/topk" && rec["request_id"] == reqID {
			withID++
		}
	}
	if withID != 2 {
		t.Fatalf("found %d /topk access-log lines carrying %q, want 2 (proxy + backend)\nlogs:\n%s",
			withID, reqID, logs.String())
	}

	// And in the backend's slow log, with the query's shape attached.
	sresp, err := http.Get(backend.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sl server.SlowlogResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	for _, e := range sl.Entries {
		if e.RequestID == reqID {
			if e.Endpoint != "topk" || e.K != 2 {
				t.Fatalf("slowlog entry mismatch: %+v", e)
			}
			return
		}
	}
	t.Fatalf("no slowlog entry with request id %q: %+v", reqID, sl.Entries)
}

// TestProxyMetricsConformant scrapes the proxy's own /metrics.
func TestProxyMetricsConformant(t *testing.T) {
	c, err := New(Config{Seeds: []string{"http://127.0.0.1:1"}, ID: "obs-test-2"})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewProxy(c).Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if problems := obs.LintExposition(resp.Body); len(problems) != 0 {
		t.Fatalf("proxy exposition not conformant:\n  %s", strings.Join(problems, "\n  "))
	}
}
