// Observability: the routing client's and proxy's obs registrations.
package client

import "repro/internal/obs"

var (
	mRequests = obs.NewCounterVec("ir_client_requests_total",
		"requests entering the routing loop, by path kind (write goes to the primary, read to the least-lagged ready standby)",
		"kind")
	mRetries = obs.NewCounter("ir_client_retries_total",
		"routing-loop retries (transport failure, 502, retryable 503, or a 409 primary move)")
	mRedirects = obs.NewCounter("ir_client_redirects_total",
		"409 Location referrals followed to a new primary")
	mUpstreamSeconds = obs.NewHistogramVec("ir_client_upstream_seconds",
		"latency of one upstream attempt, by target node address",
		"target", obs.LatencyBuckets)
	mProxyRequests = obs.NewCounter("ir_proxy_requests_total",
		"requests the proxy forwarded into the routing loop")
)
