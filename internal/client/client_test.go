package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/replication"
)

// fakeNode is a /cluster beacon plus a scripted write endpoint.
type fakeNode struct {
	hs     *httptest.Server
	info   atomic.Pointer[replication.ClusterInfo]
	writes atomic.Int64
	// onWrite, when set, scripts /update's response; default 200.
	onWrite atomic.Pointer[func(w http.ResponseWriter, r *http.Request)]
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		ci := n.info.Load()
		if ci == nil {
			http.Error(w, "not a member", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(ci)
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		n.writes.Add(1)
		if fn := n.onWrite.Load(); fn != nil {
			(*fn)(w, r)
			return
		}
		w.Write([]byte(`{"applied":1}`))
	})
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(fmt.Sprintf(`{"served_by":%q}`, n.hs.URL)))
	})
	n.hs = httptest.NewServer(mux)
	t.Cleanup(n.hs.Close)
	return n
}

func (n *fakeNode) setInfo(ci replication.ClusterInfo) {
	ci.HTTPAddr = n.hs.URL
	n.info.Store(&ci)
}

func testClient(t *testing.T, nodes ...*fakeNode) *Client {
	t.Helper()
	seeds := make([]string, len(nodes))
	for i, n := range nodes {
		seeds[i] = n.hs.URL
	}
	c, err := New(Config{
		Seeds:       seeds,
		ID:          t.Name(),
		MaxRetries:  4,
		RetryBase:   5 * time.Millisecond,
		RetryCap:    20 * time.Millisecond,
		TopologyTTL: 50 * time.Millisecond,
		HTTPClient:  &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRoutingWritesToPrimaryReadsToLeastLagged: writes land on the
// confirmed primary; reads on the connected, ready standby with the
// smallest lag.
func TestRoutingWritesToPrimaryReadsToLeastLagged(t *testing.T) {
	prim, lag2, lag9 := newFakeNode(t), newFakeNode(t), newFakeNode(t)
	prim.setInfo(replication.ClusterInfo{Role: "primary", Confirmed: true, Epoch: 1, Ready: true})
	lag2.setInfo(replication.ClusterInfo{Role: "follower", Connected: true, Ready: true, LagSeqs: 2})
	lag9.setInfo(replication.ClusterInfo{Role: "follower", Connected: true, Ready: true, LagSeqs: 9})

	c := testClient(t, prim, lag2, lag9)
	ctx := context.Background()
	if got, err := c.Primary(ctx); err != nil || got != prim.hs.URL {
		t.Fatalf("Primary() = %q, %v; want %q", got, err, prim.hs.URL)
	}
	if got, err := c.ReadTarget(ctx); err != nil || got != lag2.hs.URL {
		t.Fatalf("ReadTarget() = %q, %v; want least-lagged %q", got, err, lag2.hs.URL)
	}
	if err := c.PostJSON(ctx, "/update", []byte(`{}`), nil); err != nil {
		t.Fatal(err)
	}
	if prim.writes.Load() != 1 || lag2.writes.Load() != 0 {
		t.Fatalf("write went to the wrong node (primary=%d lag2=%d)", prim.writes.Load(), lag2.writes.Load())
	}

	// A standby that loses readiness drops out of read routing.
	lag2.setInfo(replication.ClusterInfo{Role: "follower", Connected: true, Ready: false, LagSeqs: 2})
	c.Invalidate()
	if got, _ := c.ReadTarget(ctx); got != lag9.hs.URL {
		t.Fatalf("ReadTarget() = %q, want the remaining ready standby %q", got, lag9.hs.URL)
	}
}

// TestWriteFollows409Redirect: a deposed node's 409 + Location referral
// re-points the client at the successor, which then takes the retry.
func TestWriteFollows409Redirect(t *testing.T) {
	old, succ := newFakeNode(t), newFakeNode(t)
	// Both still claim the primary role (the stale one hasn't demoted
	// yet); the stale one wins discovery by epoch order in the seed
	// list, then refers.
	old.setInfo(replication.ClusterInfo{Role: "primary", Confirmed: true, Epoch: 1})
	succ.setInfo(replication.ClusterInfo{Role: "follower", Connected: true, Ready: true})
	refuse := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", succ.hs.URL+r.URL.Path)
		http.Error(w, `{"error":"not the primary"}`, http.StatusConflict)
	}
	old.onWrite.Store(&refuse)

	c := testClient(t, old, succ)
	if err := c.PostJSON(context.Background(), "/update", []byte(`{}`), nil); err != nil {
		t.Fatal(err)
	}
	if succ.writes.Load() != 1 {
		t.Fatalf("successor saw %d writes, want 1", succ.writes.Load())
	}
}

// TestRetryOn503ThenSuccess: a plain 503 (election in progress) is
// retried until the node recovers.
func TestRetryOn503ThenSuccess(t *testing.T) {
	n := newFakeNode(t)
	n.setInfo(replication.ClusterInfo{Role: "primary", Confirmed: true, Epoch: 1})
	var failures atomic.Int64
	flaky := func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(1) <= 2 {
			http.Error(w, `{"error":"no confirmed primary"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"applied":1}`))
	}
	n.onWrite.Store(&flaky)

	c := testClient(t, n)
	if err := c.PostJSON(context.Background(), "/update", []byte(`{}`), nil); err != nil {
		t.Fatalf("write did not survive transient 503s: %v", err)
	}
	if got := n.writes.Load(); got != 3 {
		t.Fatalf("expected 3 attempts (2 failures + success), got %d", got)
	}
}

// TestIndeterminate503NotRetried: a 503 carrying X-Indeterminate means
// the write may have committed — the client must surface it, not
// retry into a double-apply.
func TestIndeterminate503NotRetried(t *testing.T) {
	n := newFakeNode(t)
	n.setInfo(replication.ClusterInfo{Role: "primary", Confirmed: true, Epoch: 1})
	indeterminate := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Indeterminate", "true")
		http.Error(w, `{"error":"batch applied locally but quorum missed"}`, http.StatusServiceUnavailable)
	}
	n.onWrite.Store(&indeterminate)

	c := testClient(t, n)
	err := c.PostJSON(context.Background(), "/update", []byte(`{}`), nil)
	se, ok := err.(*StatusError)
	if !ok {
		t.Fatalf("expected a StatusError, got %v", err)
	}
	if !se.Indeterminate || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected an indeterminate 503, got %+v", se)
	}
	if got := n.writes.Load(); got != 1 {
		t.Fatalf("indeterminate write was retried %d times", got-1)
	}
}

// TestJitterDeterministic: the retry jitter is a pure function of the
// client identity.
func TestJitterDeterministic(t *testing.T) {
	if jitterFraction("a") != jitterFraction("a") {
		t.Fatal("jitter not deterministic")
	}
	if jitterFraction("a") == jitterFraction("b") {
		t.Fatal("distinct identities collided")
	}
	if j := jitterFraction("proxy-1"); j < 0 || j >= 0.5 {
		t.Fatalf("jitter %v outside [0, 0.5)", j)
	}
}

// TestProxyForwards: the proxy relays routed responses verbatim and
// serves its own /healthz.
func TestProxyForwards(t *testing.T) {
	prim := newFakeNode(t)
	prim.setInfo(replication.ClusterInfo{Role: "primary", Confirmed: true, Epoch: 1, Ready: true})
	c := testClient(t, prim)
	proxy := httptest.NewServer(NewProxy(c).Handler())
	defer proxy.Close()

	resp, err := http.Post(proxy.URL+"/update", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || prim.writes.Load() != 1 {
		t.Fatalf("proxy write: status %d, %d upstream writes", resp.StatusCode, prim.writes.Load())
	}
	resp, err = http.Get(proxy.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy /healthz: %d", resp.StatusCode)
	}
}
