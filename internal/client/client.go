// Package client is the cluster-aware HTTP client for a replicated
// deployment: it discovers the topology through the nodes' GET /cluster
// beacons, routes writes to the current confirmed primary and reads to
// the least-lagged ready standby, and rides out a failover with capped,
// deterministically-jittered retries.
//
// # Routing rules
//
//   - Writes (/update, /delete) go to the confirmed primary. A 409
//     answer means "not the primary anymore": the client follows the
//     Location header when present, re-resolves the topology, and
//     retries. A 503 without the X-Indeterminate header means "no
//     primary yet" (an election in progress): back off and retry.
//   - A 503 WITH X-Indeterminate is surfaced to the caller verbatim:
//     the write was committed on the primary but its replication
//     durability is unknown (a missed quorum), so a blind retry could
//     double-apply it. The caller owns that decision.
//   - Transport errors are retried against a re-resolved topology.
//     For writes this makes delivery at-least-once: a primary killed
//     after commit but before the response produces a duplicate on
//     retry. Inserts of idempotent content and keyed updates tolerate
//     this; see docs/operations.md.
//   - Reads (/topk, /analyze, ...) prefer the connected, ready standby
//     with the smallest replication lag, falling back to the primary
//     when no standby qualifies.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/replication"
)

// Config tunes a Client.
type Config struct {
	// Seeds are node HTTP base URLs to bootstrap discovery from; any
	// live member suffices, the beacon's peer list reaches the rest.
	Seeds []string
	// ID seeds the deterministic retry jitter (default: joined seeds).
	// Distinct clients should use distinct IDs so their retries spread.
	ID string
	// MaxRetries bounds the retry loop per request (default 8).
	MaxRetries int
	// RetryBase and RetryCap bound the exponential backoff between
	// retries (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// TopologyTTL is how long a discovered topology is trusted before
	// re-probing (default 1s). Errors invalidate it immediately.
	TopologyTTL time.Duration
	// HTTPClient overrides the transport (default: 10s timeout).
	HTTPClient *http.Client
}

func (c *Config) setDefaults() {
	if c.ID == "" {
		c.ID = strings.Join(c.Seeds, ",")
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.TopologyTTL <= 0 {
		c.TopologyTTL = time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
}

// Client routes requests across a replicated cluster.
type Client struct {
	cfg    Config
	jitter float64 // deterministic fraction in [0, 0.5), from Config.ID

	mu        sync.Mutex
	primary   string                             // confirmed primary's base URL ("" unknown)
	views     map[string]replication.ClusterInfo // by HTTPAddr
	refreshed time.Time
}

// New builds a Client. At least one seed is required.
func New(cfg Config) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("client: at least one seed URL is required")
	}
	cfg.setDefaults()
	return &Client{
		cfg:    cfg,
		jitter: jitterFraction(cfg.ID),
		views:  make(map[string]replication.ClusterInfo),
	}, nil
}

// jitterFraction maps an identity to a stable fraction in [0, 0.5)
// (FNV-1a), so a client's backoff schedule is reproducible in tests yet
// distinct clients don't stampede in sync.
func jitterFraction(id string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return float64(h%1024) / 2048
}

// WritePath reports whether path must be served by the primary.
func WritePath(path string) bool {
	switch path {
	case "/update", "/delete", "/promote":
		return true
	}
	return false
}

// Refresh probes the seeds (plus every previously discovered member)
// and rebuilds the topology. Returns the number of members that
// answered.
func (c *Client) Refresh(ctx context.Context) int {
	targets := make(map[string]bool)
	for _, s := range c.cfg.Seeds {
		targets[s] = true
	}
	c.mu.Lock()
	for addr, v := range c.views {
		targets[addr] = true
		for _, p := range v.Peers {
			targets[p] = true
		}
	}
	c.mu.Unlock()

	type probe struct {
		ci replication.ClusterInfo
		ok bool
	}
	addrs := make([]string, 0, len(targets))
	for a := range targets {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	probes := make([]probe, len(addrs))
	var wg sync.WaitGroup
	for i, a := range addrs {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			if ci, err := replication.FetchClusterInfo(ctx, c.cfg.HTTPClient, base); err == nil {
				probes[i] = probe{ci, true}
			}
		}(i, a)
	}
	wg.Wait()

	views := make(map[string]replication.ClusterInfo)
	primary, primaryHint := "", ""
	var bestEpoch uint64
	bestConfirmed := false
	n := 0
	for i, p := range probes {
		if !p.ok {
			continue
		}
		n++
		ci := p.ci
		if ci.HTTPAddr == "" {
			ci.HTTPAddr = addrs[i]
		}
		views[ci.HTTPAddr] = ci
		if ci.Role == string(replication.RolePrimary) {
			better := primary == "" || ci.Epoch > bestEpoch ||
				(ci.Epoch == bestEpoch && ci.Confirmed && !bestConfirmed)
			if better {
				primary, bestEpoch, bestConfirmed = ci.HTTPAddr, ci.Epoch, ci.Confirmed
			}
		} else if ci.PrimaryHTTP != "" && primaryHint == "" {
			primaryHint = ci.PrimaryHTTP
		}
	}
	if primary == "" {
		primary = primaryHint // a follower's belief beats nothing
	}
	c.mu.Lock()
	c.views = views
	c.primary = primary
	c.refreshed = time.Now()
	c.mu.Unlock()
	return n
}

// Invalidate drops the cached topology so the next request re-probes.
func (c *Client) Invalidate() {
	c.mu.Lock()
	c.primary = ""
	c.refreshed = time.Time{}
	c.mu.Unlock()
}

// Primary returns the current primary's base URL, refreshing the
// topology if needed.
func (c *Client) Primary(ctx context.Context) (string, error) {
	return c.target(ctx, true)
}

// ReadTarget returns the base URL reads should go to right now.
func (c *Client) ReadTarget(ctx context.Context) (string, error) {
	return c.target(ctx, false)
}

// Topology returns the latest discovered views, keyed by HTTP address.
func (c *Client) Topology() map[string]replication.ClusterInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]replication.ClusterInfo, len(c.views))
	for k, v := range c.views {
		out[k] = v
	}
	return out
}

func (c *Client) target(ctx context.Context, write bool) (string, error) {
	c.mu.Lock()
	stale := c.primary == "" || time.Since(c.refreshed) > c.cfg.TopologyTTL
	c.mu.Unlock()
	if stale {
		c.Refresh(ctx)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if write {
		if c.primary == "" {
			return "", fmt.Errorf("client: no primary known")
		}
		return c.primary, nil
	}
	// Least-lagged ready standby; ties broken by address for
	// determinism. Falls back to the primary.
	best := ""
	var bestLag uint64
	for _, addr := range sortedKeys(c.views) {
		v := c.views[addr]
		if v.Role != string(replication.RoleFollower) || !v.Ready || !v.Connected {
			continue
		}
		if best == "" || v.LagSeqs < bestLag {
			best, bestLag = addr, v.LagSeqs
		}
	}
	if best != "" {
		return best, nil
	}
	if c.primary != "" {
		return c.primary, nil
	}
	return "", fmt.Errorf("client: no reachable node")
}

func sortedKeys(m map[string]replication.ClusterInfo) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Do routes one request through the cluster with retries. The body (if
// any) is buffered so it can be replayed; the caller owns closing the
// returned response's body.
func (c *Client) Do(ctx context.Context, method, path, rawQuery string, header http.Header, body []byte) (*http.Response, error) {
	write := WritePath(path)
	if write {
		mRequests.Inc("write")
	} else {
		mRequests.Inc("read")
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			if err := c.sleep(ctx, attempt); err != nil {
				return nil, err
			}
		}
		base, err := c.target(ctx, write)
		if err != nil {
			lastErr = err
			continue
		}
		sendStart := time.Now()
		resp, err := c.send(ctx, base, method, path, rawQuery, header, body)
		if err == nil {
			// The target set is the cluster membership discovered from
			// /cluster beacons — a closed set, not request data.
			//lint:allow obsreg per-target latency over the bounded cluster membership
			mUpstreamSeconds.Observe(base, time.Since(sendStart).Seconds())
		}
		if err != nil {
			// Transport failure: the node died or the connection broke.
			// Re-resolve and retry (at-least-once for writes; see the
			// package comment).
			lastErr = err
			c.Invalidate()
			continue
		}
		switch {
		case resp.StatusCode == http.StatusConflict && write:
			// Not the primary (anymore). Follow its referral when
			// given, else rediscover.
			loc := resp.Header.Get("Location")
			drain(resp)
			if base := baseOf(loc); base != "" {
				mRedirects.Inc()
				c.setPrimary(base)
			} else {
				c.Invalidate()
			}
			lastErr = fmt.Errorf("client: %s %s: primary moved (409)", method, path)
		case resp.StatusCode == http.StatusServiceUnavailable &&
			resp.Header.Get("X-Indeterminate") == "":
			// Election in progress, engine mid-swap, or quorum not yet
			// formed — retryable by design.
			drain(resp)
			c.Invalidate()
			lastErr = fmt.Errorf("client: %s %s: unavailable (503)", method, path)
		case resp.StatusCode == http.StatusBadGateway:
			// A routing hop (load balancer, another proxy) answered for
			// a dead node: the request never reached an engine.
			drain(resp)
			c.Invalidate()
			lastErr = fmt.Errorf("client: %s %s: node unreachable (502)", method, path)
		default:
			// Success, a client error, or an indeterminate write
			// failure: the caller decides.
			return resp, nil
		}
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxRetries+1, lastErr)
}

func (c *Client) send(ctx context.Context, base, method, path, rawQuery string, header http.Header, body []byte) (*http.Response, error) {
	u := base + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return c.cfg.HTTPClient.Do(req)
}

// sleep blocks for the attempt's backoff: base·2^(attempt-1), capped,
// stretched by the deterministic jitter fraction.
func (c *Client) sleep(ctx context.Context, attempt int) error {
	d := c.cfg.RetryBase << uint(attempt-1)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	d += time.Duration(float64(d) * c.jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) setPrimary(base string) {
	c.mu.Lock()
	c.primary = base
	c.refreshed = time.Now()
	c.mu.Unlock()
}

// baseOf extracts the scheme://host[:port] base from a Location URL.
func baseOf(loc string) string {
	if loc == "" {
		return ""
	}
	u, err := url.Parse(loc)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return ""
	}
	return u.Scheme + "://" + u.Host
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

// PostJSON routes a JSON POST and decodes the response into out (which
// may be nil). Non-2xx responses come back as errors carrying the
// status and body.
func (c *Client) PostJSON(ctx context.Context, path string, reqBody []byte, out any) error {
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	resp, err := c.Do(ctx, http.MethodPost, path, "", hdr, reqBody)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &StatusError{Code: resp.StatusCode, Body: string(raw),
			Indeterminate: resp.Header.Get("X-Indeterminate") != ""}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// StatusError is a non-2xx response surfaced by PostJSON.
// Indeterminate marks a write whose durability is unknown (quorum
// failure): retrying it may double-apply.
type StatusError struct {
	Code          int
	Body          string
	Indeterminate bool
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: status %d: %s", e.Code, strings.TrimSpace(e.Body))
}
