package client

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
)

// maxProxyBodyBytes bounds a buffered request body. Bodies are buffered
// in full so a request can be replayed against a re-elected primary.
const maxProxyBodyBytes = 64 << 20

// Proxy is the smart routing front door (cmd/irproxy): an http.Handler
// that forwards every request through a Client, so callers keep a
// single stable address across failovers. The proxy itself is
// stateless — kill -9 it and restart; the topology is rediscovered from
// the seeds.
type Proxy struct {
	c *Client
}

// NewProxy wraps a Client as a routing proxy.
func NewProxy(c *Client) *Proxy { return &Proxy{c: c} }

// Handler returns the proxy's http.Handler. /healthz, /topology and
// /metrics are answered by the proxy itself; everything else is routed
// to the cluster (writes → primary, reads → least-lagged ready
// standby). The whole mux runs behind the request-ID middleware: the
// adopted-or-minted X-Request-ID is rewritten into the inbound header,
// so forward's header relay propagates the same ID to the backend.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// The proxy's own liveness, deliberately independent of the
		// cluster's health: a proxy with zero reachable nodes is still
		// a live proxy.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
		p.c.Refresh(r.Context())
		writeJSON(w, http.StatusOK, p.c.Topology())
	})
	mux.HandleFunc("/", p.forward)
	return obs.RequestID(mux)
}

// forward buffers the request, routes it through the Client's retry
// loop, and relays the final response verbatim (status, headers, body —
// including X-Indeterminate, which the end client must see).
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxProxyBodyBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %v", err))
			return
		}
		if len(body) > maxProxyBodyBytes {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte proxy limit", maxProxyBodyBytes))
			return
		}
	}
	mProxyRequests.Inc()
	resp, err := p.c.Do(r.Context(), r.Method, r.URL.Path, r.URL.RawQuery, r.Header, body)
	if err != nil {
		obs.LogWith(r.Context()).Warn("proxy_route_failed",
			"method", r.Method, "path", r.URL.Path, "error", err.Error())
		httpError(w, http.StatusBadGateway, fmt.Errorf("no node could serve the request: %v", err))
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if k == obs.RequestIDHeader {
			// Already set by the request-ID middleware (the backend
			// echoes the same propagated ID); Add would duplicate it.
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(raw)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
