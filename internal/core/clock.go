package core

import "time"

// stopwatch starts a phase timer and returns a function reporting the
// elapsed time. This is the core's single deliberate wall-clock use:
// the durations land in Metrics only — never in scores, bounds or
// ordering — so the determinism contract (bit-identical recomputation
// backing region-certificate validity) is untouched. Keeping both
// clock reads here means detcore polices every other call site.
func stopwatch() func() time.Duration {
	t0 := time.Now() //lint:allow detcore metrics-only phase timing; durations never feed scores, bounds or ordering
	return func() time.Duration {
		return time.Since(t0) //lint:allow detcore metrics-only phase timing; durations never feed scores, bounds or ordering
	}
}
