package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
)

// computeWith runs one full TA+Compute at the given parallelism.
func computeWith(t *testing.T, cs fixture.Case, opts core.Options, parallelism int) *core.Output {
	t.Helper()
	ix := lists.NewMemIndex(cs.Tuples, cs.M)
	ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
	opts.Parallelism = parallelism
	out, err := core.Compute(context.Background(), ta, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelMatchesSequential: for every method and φ, the forked
// per-dimension path must be deterministic — Parallelism = 1 (forked,
// run on the calling goroutine) and Parallelism = NumCPU must return
// bit-identical Regions, Evaluated counts and Phase-3 pulls. The forked
// regions must also match the brute-force oracle, and the paper-literal
// shared-scan path (Parallelism = 0) must agree on the regions (its
// Evaluated counts legitimately differ: later dimensions of the shared
// scan observe and evaluate earlier dimensions' Phase-3 pulls).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	trials := 12
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		n := 30 + rng.Intn(60)
		m := 4 + rng.Intn(5)
		qlen := 2 + rng.Intn(3)
		k := 1 + rng.Intn(5)
		cs := fixture.RandCase(rng, n, m, qlen, k)
		for phi := 0; phi <= 2; phi++ {
			want := core.ExactRegions(cs.Tuples, cs.Q, cs.K, phi, false)
			for _, method := range core.Methods {
				opts := core.Options{Method: method, Phi: phi}
				label := fmt.Sprintf("trial=%d n=%d qlen=%d k=%d phi=%d %v", trial, n, qlen, k, phi, method)

				seq := computeWith(t, cs, opts, 1)
				par := computeWith(t, cs, opts, workers)
				legacy := computeWith(t, cs, opts, 0)

				if !reflect.DeepEqual(seq.Regions, par.Regions) {
					t.Errorf("%s: parallel regions differ from sequential:\n  seq %+v\n  par %+v",
						label, seq.Regions, par.Regions)
				}
				if seq.Metrics.Evaluated != par.Metrics.Evaluated ||
					!reflect.DeepEqual(seq.Metrics.EvaluatedPerDim, par.Metrics.EvaluatedPerDim) {
					t.Errorf("%s: evaluated %d %v (seq) vs %d %v (par)", label,
						seq.Metrics.Evaluated, seq.Metrics.EvaluatedPerDim,
						par.Metrics.Evaluated, par.Metrics.EvaluatedPerDim)
				}
				if seq.Metrics.Phase3Pulled != par.Metrics.Phase3Pulled {
					t.Errorf("%s: phase3 pulled %d (seq) vs %d (par)", label,
						seq.Metrics.Phase3Pulled, par.Metrics.Phase3Pulled)
				}
				if seq.Metrics.SeqPages != par.Metrics.SeqPages || seq.Metrics.RandReads != par.Metrics.RandReads {
					t.Errorf("%s: io (%d,%d) (seq) vs (%d,%d) (par)", label,
						seq.Metrics.SeqPages, seq.Metrics.RandReads,
						par.Metrics.SeqPages, par.Metrics.RandReads)
				}
				compareRegions(t, label+" forked-vs-oracle", seq.Regions, want)
				compareRegions(t, label+" legacy-vs-forked", legacy.Regions, seq.Regions)
			}
		}
	}
}

// TestParallelVariants covers the remaining option combinations on the
// forked path: composition-only, forced envelope, iterative φ>0 and the
// score-biased schedule must all be scheduling-independent too.
func TestParallelVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 6; trial++ {
		cs := fixture.RandCase(rng, 40+rng.Intn(40), 5, 3, 1+rng.Intn(4))
		variants := []core.Options{
			{Method: core.MethodCPT, CompositionOnly: true},
			{Method: core.MethodCPT, ForceEnvelope: true},
			{Method: core.MethodPrune, Phi: 2, Iterative: true},
			{Method: core.MethodCPT, Phi: 1, Schedule: core.ScheduleScoreBiased},
		}
		for vi, opts := range variants {
			seq := computeWith(t, cs, opts, 1)
			par := computeWith(t, cs, opts, 4)
			if !reflect.DeepEqual(seq.Regions, par.Regions) {
				t.Errorf("trial %d variant %d: regions diverge under parallelism", trial, vi)
			}
			if seq.Metrics.Evaluated != par.Metrics.Evaluated {
				t.Errorf("trial %d variant %d: evaluated %d vs %d", trial, vi,
					seq.Metrics.Evaluated, par.Metrics.Evaluated)
			}
		}
	}
}

// TestParallelDegenerate: |R| < k and qlen = 1 must behave under every
// parallelism setting.
func TestParallelDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	cs := fixture.RandCase(rng, 8, 4, 2, 1)
	for _, p := range []int{0, 1, 8} {
		out := computeWith(t, cs, core.Options{Method: core.MethodCPT}, p)
		if len(out.Regions) != cs.Q.Len() {
			t.Fatalf("parallelism %d: %d regions", p, len(out.Regions))
		}
	}
	// k larger than the dataset: full-domain regions on every path.
	ixSeq := lists.NewMemIndex(cs.Tuples, cs.M)
	ta := topk.New(ixSeq, cs.Q, 1000, topk.BestList)
	out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range out.Regions {
		if reg.Lo != -cs.Q.Weights[reg.QPos] || reg.Hi != 1-cs.Q.Weights[reg.QPos] {
			t.Fatalf("degenerate region %+v not full-domain", reg)
		}
	}
}
