package core_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

// TestScheduleMatchesOracle: the alternative score-biased probing
// schedule must not change any answer, only the probing order.
func TestScheduleMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 8; trial++ {
		cs := fixture.RandCase(rng, 60, 5, 3, 4)
		for _, phi := range []int{0, 2} {
			want := core.ExactRegions(cs.Tuples, cs.Q, cs.K, phi, false)
			for _, method := range []core.Method{core.MethodThres, core.MethodCPT} {
				ix := lists.NewMemIndex(cs.Tuples, cs.M)
				ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
				out, err := core.Compute(context.Background(), ta, core.Options{
					Method: method, Phi: phi, Schedule: core.ScheduleScoreBiased,
				})
				if err != nil {
					t.Fatal(err)
				}
				compareRegions(t, "score-biased "+method.String(), out.Regions, want)
			}
		}
	}
}

// TestExtremeK covers k=1 and k=n against the oracle.
func TestExtremeK(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	for trial := 0; trial < 6; trial++ {
		n := 20 + rng.Intn(20)
		cs := fixture.RandCase(rng, n, 5, 3, 1)
		for _, k := range []int{1, n} {
			want := core.ExactRegions(cs.Tuples, cs.Q, k, 1, false)
			for _, method := range core.Methods {
				ix := lists.NewMemIndex(cs.Tuples, cs.M)
				ta := topk.New(ix, cs.Q, k, topk.BestList)
				out, err := core.Compute(context.Background(), ta, core.Options{Method: method, Phi: 1})
				if err != nil {
					t.Fatal(err)
				}
				compareRegions(t, method.String(), out.Regions, want)
			}
		}
	}
}

// TestSingleQueryDimension: with qlen=1 every score is q0·coord, so
// scaling the weight can never reorder tuples — the region must span
// (essentially) the whole weight domain. This configuration is fully
// degenerate: all score lines meet at exactly δ=−q0 (where every score
// hits zero), so floating-point rounding may report a perturbation a
// hair inside the domain edge; anything further inside is a bug.
func TestSingleQueryDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(316))
	for trial := 0; trial < 6; trial++ {
		cs := fixture.RandCase(rng, 40, 4, 1, 3)
		q0 := cs.Q.Weights[0]
		for _, method := range core.Methods {
			for _, force := range []bool{false, true} {
				ix := lists.NewMemIndex(cs.Tuples, cs.M)
				ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
				out, err := core.Compute(context.Background(), ta, core.Options{Method: method, ForceEnvelope: force})
				if err != nil {
					t.Fatal(err)
				}
				reg := out.Regions[0]
				if math.Abs(reg.Hi-(1-q0)) > 1e-9 {
					t.Errorf("trial %d %v force=%v: Hi=%v, want %v", trial, method, force, reg.Hi, 1-q0)
				}
				if math.Abs(reg.Lo-(-q0)) > 1e-9 {
					t.Errorf("trial %d %v force=%v: Lo=%v, want %v", trial, method, force, reg.Lo, -q0)
				}
				for _, p := range append(append([]core.Perturbation{}, reg.Left...), reg.Right...) {
					if math.Abs(math.Abs(p.Delta)-q0) > 1e-9 && math.Abs(p.Delta-(1-q0)) > 1e-9 {
						t.Errorf("trial %d %v force=%v: interior perturbation %+v", trial, method, force, p)
					}
				}
			}
		}
	}
}

// TestWeightAtDomainEdge: with qj=1 the upward domain is empty; with a
// tiny qj the downward domain nearly is.
func TestWeightAtDomainEdge(t *testing.T) {
	tuples := []vec.Sparse{
		vec.FromDense([]float64{0.9, 0.2}),
		vec.FromDense([]float64{0.5, 0.8}),
		vec.FromDense([]float64{0.3, 0.1}),
	}
	q := vec.MustQuery([]int{0, 1}, []float64{1.0, 0.05})
	ix := lists.NewMemIndex(tuples, 2)
	ta := topk.New(ix, q, 2, topk.BestList)
	out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT})
	if err != nil {
		t.Fatal(err)
	}
	r0 := out.Regions[0]
	if r0.Hi != 0 {
		t.Errorf("qj=1: upper deviation %v, want 0", r0.Hi)
	}
	if r0.Lo < -1 {
		t.Errorf("lower deviation %v below -qj", r0.Lo)
	}
	want := core.ExactRegions(tuples, q, 2, 0, false)
	compareRegions(t, "domain-edge", out.Regions, want)
}

// TestKExceedsN: with fewer tuples than k nothing can perturb the
// result; regions span the whole weight domain.
func TestKExceedsN(t *testing.T) {
	tuples, q, _ := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	ta := topk.New(ix, q, 10, topk.BestList)
	out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT, Phi: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range out.Regions {
		qj := q.Weights[reg.QPos]
		if reg.Lo != -qj || reg.Hi != 1-qj {
			t.Errorf("dim %d: region (%v,%v), want full domain (-%v,%v)", reg.Dim, reg.Lo, reg.Hi, qj, 1-qj)
		}
		if len(reg.Left) != 0 || len(reg.Right) != 0 {
			t.Errorf("dim %d: unexpected perturbations %+v %+v", reg.Dim, reg.Left, reg.Right)
		}
	}
}

// TestNegativePhiRejected covers the Compute validation path.
func TestNegativePhiRejected(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	ta := topk.New(ix, q, k, topk.BestList)
	if _, err := core.Compute(context.Background(), ta, core.Options{Phi: -1}); err == nil {
		t.Fatal("negative phi accepted")
	}
}

// TestResultAfterErrors covers the replay error paths.
func TestResultAfterErrors(t *testing.T) {
	reg := core.Regions{Right: []core.Perturbation{{Above: 5, Below: 7, Entry: true}}}
	if _, err := reg.ResultAfter([]int{1, 2}, true, 3); err == nil {
		t.Error("out-of-range perturbation index accepted")
	}
	// Entry expects Above at the last rank.
	if _, err := reg.ResultAfter([]int{1, 2}, true, 0); err == nil {
		t.Error("entry with wrong last tuple accepted")
	}
	// Reorder on a non-adjacent pair must fail.
	reg2 := core.Regions{Right: []core.Perturbation{{Above: 9, Below: 1}}}
	if _, err := reg2.ResultAfter([]int{1, 2, 9}, true, 0); err == nil {
		t.Error("non-adjacent reorder accepted")
	}
}

// TestMetricsHelpers covers the aggregate accessors.
func TestMetricsHelpers(t *testing.T) {
	m := core.Metrics{Evaluated: 12, EvaluatedPerDim: []int{6, 6}, Phase1: 1, Phase2: 2, Phase3: 3}
	if got := m.EvaluatedPerDimAvg(); got != 6 {
		t.Errorf("EvaluatedPerDimAvg = %v", got)
	}
	if got := m.CPU(); got != 6 {
		t.Errorf("CPU = %v", got)
	}
	if (core.Metrics{}).EvaluatedPerDimAvg() != 0 {
		t.Error("empty metrics avg not 0")
	}
}

// TestMethodStrings covers the Stringers.
func TestMethodStrings(t *testing.T) {
	names := map[core.Method]string{
		core.MethodScan: "Scan", core.MethodPrune: "Prune",
		core.MethodThres: "Thres", core.MethodCPT: "CPT",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if core.ScheduleRoundRobin.String() != "round-robin" || core.ScheduleScoreBiased.String() != "score-biased" {
		t.Error("schedule names wrong")
	}
}

// TestDegenerateEqualCoordinates: tuples sharing the varied coordinate
// run in parallel and never constrain the region.
func TestDegenerateEqualCoordinates(t *testing.T) {
	tuples := []vec.Sparse{
		vec.FromDense([]float64{0.5, 0.9}),
		vec.FromDense([]float64{0.5, 0.7}),
		vec.FromDense([]float64{0.5, 0.5}),
		vec.FromDense([]float64{0.5, 0.3}),
	}
	q := vec.MustQuery([]int{0, 1}, []float64{0.6, 0.6})
	ix := lists.NewMemIndex(tuples, 2)
	ta := topk.New(ix, q, 2, topk.BestList)
	out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT})
	if err != nil {
		t.Fatal(err)
	}
	// All tuples share the first coordinate: varying q0 changes nothing.
	r0 := out.Regions[0]
	if r0.Lo != -0.6 || math.Abs(r0.Hi-0.4) > 1e-15 {
		t.Errorf("parallel tuples: region (%v,%v), want full domain", r0.Lo, r0.Hi)
	}
}
