package core

import (
	"sort"
	"time"

	"repro/internal/topk"
)

// lemma1 returns the critical deviation at which `below` catches up with
// `above` when the weight of the inspected dimension changes (Lemma 1),
// along with which bound it constrains: +1 the upper (Formula 2), -1 the
// lower (Formula 3), 0 neither (parallel score lines).
func lemma1(aboveScore, aboveCoord, belowScore, belowCoord float64) (float64, int) {
	diff := belowCoord - aboveCoord
	switch {
	case diff > 0:
		return (aboveScore - belowScore) / diff, +1
	case diff < 0:
		return (aboveScore - belowScore) / diff, -1
	default:
		return 0, 0
	}
}

// boundState accumulates the φ=0 immutable region of one dimension.
type boundState struct {
	lo, hi float64
	leftP  *Perturbation
	rightP *Perturbation
}

// applyUpper tightens the upper bound to crit if smaller, recording the
// perturbation that materializes there.
func (b *boundState) applyUpper(crit float64, p Perturbation) {
	if crit < b.hi {
		b.hi = crit
		p.Delta = crit
		b.rightP = &p
	}
}

// applyLower tightens the lower bound to crit if larger.
func (b *boundState) applyLower(crit float64, p Perturbation) {
	if crit > b.lo {
		b.lo = crit
		p.Delta = crit
		b.leftP = &p
	}
}

// apply dispatches a Lemma-1 outcome to the matching bound.
func (b *boundState) apply(crit float64, kind int, p Perturbation) {
	switch kind {
	case +1:
		b.applyUpper(crit, p)
	case -1:
		b.applyLower(crit, p)
	}
}

// regions materializes the boundState into the reported Regions.
func (b *boundState) regions(dim, qpos int) Regions {
	r := Regions{Dim: dim, QPos: qpos, Lo: b.lo, Hi: b.hi}
	if b.rightP != nil {
		r.Right = []Perturbation{*b.rightP}
	}
	if b.leftP != nil {
		r.Left = []Perturbation{*b.leftP}
	}
	return r
}

// classicDim runs the three-phase φ=0 pipeline (§4, §5) on one dimension.
func (c *computer) classicDim(jx int) Regions {
	qj := c.q.Weights[jx]
	b := &boundState{lo: -qj, hi: 1 - qj}

	t0 := time.Now()
	c.phase1(jx, b)
	c.met.Phase1 += time.Since(t0)

	t1 := time.Now()
	switch c.opts.Method {
	case MethodScan:
		c.phase2Evaluate(jx, c.fullSet(), b)
	case MethodPrune:
		c.phase2Evaluate(jx, c.prunedSet(jx, 0), b)
	case MethodThres:
		c.phase2Threshold(jx, c.fullSet(), b)
	case MethodCPT:
		c.phase2Threshold(jx, c.prunedSet(jx, 0), b)
	}
	c.met.Phase2 += time.Since(t1)

	t2 := time.Now()
	c.phase3(jx, b)
	c.met.Phase3 += time.Since(t2)

	return b.regions(c.q.Dims[jx], jx)
}

// phase1 (Algorithm 1) derives the interim region from reorderings among
// consecutive result tuples. (The published pseudo-code's line 5 carries
// a typo, dα−1,j for dα+1,j; the intended comparison is implemented.)
func (c *computer) phase1(jx int, b *boundState) {
	if c.opts.CompositionOnly {
		return
	}
	for a := 0; a+1 < len(c.res); a++ {
		above, below := c.res[a], c.res[a+1]
		crit, kind := lemma1(above.Score, above.Proj[jx], below.Score, below.Proj[jx])
		b.apply(crit, kind, Perturbation{Above: above.ID, Below: below.ID})
	}
}

// fullSet returns all current candidates in decreasing score order (the
// order C(q) is maintained in).
func (c *computer) fullSet() []topk.Scored {
	return sortScoreDesc(c.ta.Candidates())
}

// classify partitions the candidates for dimension jx into the three
// classes of §5.1, each in decreasing score order: C0 (zero on jx), CH
// (non-zero only on jx), CL (non-zero on jx and elsewhere).
func (c *computer) classify(jx int) (c0, ch, cl []topk.Scored) {
	bit := uint64(1) << uint(jx)
	for _, cd := range c.fullSet() {
		switch {
		case cd.NZMask&bit == 0:
			c0 = append(c0, cd)
		case cd.NZMask == bit:
			ch = append(ch, cd)
		default:
			cl = append(cl, cd)
		}
	}
	return c0, ch, cl
}

// prunedSet applies Lemmas 2–4: all CL candidates, the φ+1 top-scoring
// C0 candidates (they alone can affect the lower bounds) and the φ+1 CH
// candidates with the highest jx-coordinate (they alone can affect the
// upper bounds). For CH singletons score order equals coordinate order,
// so both representative picks are prefixes of the score-ordered class.
func (c *computer) prunedSet(jx, phi int) []topk.Scored {
	c0, ch, cl := c.classify(jx)
	keep := phi + 1
	out := append([]topk.Scored(nil), cl...)
	out = append(out, prefix(c0, keep)...)
	out = append(out, prefix(ch, keep)...)
	return sortScoreDesc(out)
}

func prefix(s []topk.Scored, n int) []topk.Scored {
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

// phase2Evaluate checks every candidate in set against the k-th result
// tuple (Scan's Phase 2; also Prune's, on the reduced set).
func (c *computer) phase2Evaluate(jx int, set []topk.Scored, b *boundState) {
	dk := c.dk()
	dkj := dk.Proj[jx]
	for _, cd := range set {
		proj := c.evaluate(jx, cd.ID)
		crit, kind := lemma1(dk.Score, dkj, cd.Score, proj[jx])
		b.apply(crit, kind, Perturbation{Above: dk.ID, Below: cd.ID, Entry: true})
	}
}

// phase2Threshold is Algorithm 3: the 3-list round-robin probe of SLS
// (score-descending), SLj↑ (coordinates below dkj, ascending) and SLj↓
// (coordinates above dkj, descending) with the dual termination test per
// bound. Entries already evaluated in this dimension are skipped both
// when pulling and when reading thresholds (a strictly tighter, still
// safe threshold).
func (c *computer) phase2Threshold(jx int, set []topk.Scored, b *boundState) {
	dk := c.dk()
	dkj := dk.Proj[jx]
	sk := dk.Score

	sls := set // already score-descending
	var up, down []topk.Scored
	for _, cd := range set {
		cj := cd.Proj[jx]
		switch {
		case cj < dkj:
			up = append(up, cd)
		case cj > dkj:
			down = append(down, cd)
		}
	}
	sort.Slice(up, func(i, j int) bool {
		if up[i].Proj[jx] != up[j].Proj[jx] {
			return up[i].Proj[jx] < up[j].Proj[jx]
		}
		return up[i].ID < up[j].ID
	})
	sort.Slice(down, func(i, j int) bool {
		if down[i].Proj[jx] != down[j].Proj[jx] {
			return down[i].Proj[jx] > down[j].Proj[jx]
		}
		return down[i].ID < down[j].ID
	})

	iS, iUp, iDown := 0, 0, 0
	activeL, activeU := true, true

	evalPull := func(cd topk.Scored) (coord float64) {
		proj := c.evaluate(jx, cd.ID)
		return proj[jx]
	}
	update := func(cd topk.Scored, coord float64, side int) {
		crit, kind := lemma1(sk, dkj, cd.Score, coord)
		if side != 0 && kind != side {
			return
		}
		b.apply(crit, kind, Perturbation{Above: dk.ID, Below: cd.ID, Entry: true})
	}

	slsPulls := 1
	if c.opts.Schedule == ScheduleScoreBiased {
		slsPulls = 2
	}
	for activeL || activeU {
		// Pull the top unevaluated candidate(s) from SLS (Alg. 3 lines
		// 4–8; the score-biased schedule draws twice since SLS feeds
		// both searches).
		for p := 0; p < slsPulls; p++ {
			sc, ok := c.nextUneval(sls, &iS)
			if !ok {
				return // every candidate evaluated: both searches complete
			}
			coord := evalPull(sc)
			if coord < dkj && activeL {
				update(sc, coord, -1)
			} else if coord > dkj && activeU {
				update(sc, coord, +1)
			}
		}

		if activeL {
			activeL = c.stepLower(sls, up, &iS, &iUp, jx, sk, dkj, b, update, evalPull)
		}
		if activeU {
			activeU = c.stepUpper(sls, down, &iS, &iDown, jx, sk, dkj, b, update, evalPull)
		}
	}
}

// stepLower performs the lj-side termination test and, if still active,
// one pull from SLj↑ (Alg. 3 lines 9–14). It returns the updated flag.
func (c *computer) stepLower(sls, up []topk.Scored, iS, iUp *int, jx int, sk, dkj float64, b *boundState, update func(topk.Scored, float64, int), evalPull func(topk.Scored) float64) bool {
	next, okJ := c.peekUneval(up, *iUp)
	if !okJ || next.Proj[jx] >= dkj {
		return false // candidates left of dk exhausted
	}
	tS, okS := c.peekUneval(sls, *iS)
	if !okS {
		return false
	}
	if (sk-tS.Score)/(next.Proj[jx]-dkj) <= b.lo {
		return false // no unseen candidate can raise lj
	}
	sc, ok := c.nextUneval(up, iUp)
	if !ok {
		return false
	}
	coord := evalPull(sc)
	update(sc, coord, -1)
	return true
}

// stepUpper is the symmetric uj-side step on SLj↓ (Alg. 3 lines 15–20).
func (c *computer) stepUpper(sls, down []topk.Scored, iS, iDown *int, jx int, sk, dkj float64, b *boundState, update func(topk.Scored, float64, int), evalPull func(topk.Scored) float64) bool {
	next, okJ := c.peekUneval(down, *iDown)
	if !okJ || next.Proj[jx] <= dkj {
		return false
	}
	tS, okS := c.peekUneval(sls, *iS)
	if !okS {
		return false
	}
	if (sk-tS.Score)/(next.Proj[jx]-dkj) >= b.hi {
		return false // no unseen candidate can lower uj
	}
	sc, ok := c.nextUneval(down, iDown)
	if !ok {
		return false
	}
	coord := evalPull(sc)
	update(sc, coord, +1)
	return true
}

// peekUneval returns the first not-yet-evaluated entry at or after *i.
func (c *computer) peekUneval(list []topk.Scored, i int) (topk.Scored, bool) {
	for ; i < len(list); i++ {
		if _, seen := c.evalSeen[list[i].ID]; !seen {
			return list[i], true
		}
	}
	return topk.Scored{}, false
}

// nextUneval consumes and returns the first not-yet-evaluated entry.
func (c *computer) nextUneval(list []topk.Scored, i *int) (topk.Scored, bool) {
	for ; *i < len(list); *i++ {
		if _, seen := c.evalSeen[list[*i].ID]; !seen {
			sc := list[*i]
			*i++
			return sc, true
		}
	}
	return topk.Scored{}, false
}

// phase3 (Algorithm 2) resumes the TA scan to rule out — or account for —
// tuples never encountered. The upper side is skipped when dk's posting
// in list jx was consumed by sorted access (§4: all higher-coordinate
// tuples were then already encountered).
func (c *computer) phase3(jx int, b *boundState) {
	dk := c.dk()
	dkj := dk.Proj[jx]
	sk := dk.Score
	qj := c.q.Weights[jx]
	needUpper := !c.ta.WasSortedAccessed(jx, dk.ID, dkj)

	sBar := sk + b.hi*dkj
	sUnd := sk + b.lo*dkj
	for {
		t := c.ta.Thresholds()
		sumOther := 0.0
		for i, ti := range t {
			if i != jx {
				sumOther += c.q.Weights[i] * ti
			}
		}
		tj := t[jx]
		condL := sumOther+(qj+b.lo)*tj > sUnd
		condU := needUpper && sumOther+(qj+b.hi)*tj > sBar
		if !condL && !condU {
			return
		}
		sc, ok := c.ta.Resume()
		if !ok {
			return
		}
		c.met.Phase3Pulled++
		proj := c.noteEvaluated(jx, sc)
		crit, kind := lemma1(sk, dkj, sc.Score, proj[jx])
		b.apply(crit, kind, Perturbation{Above: dk.ID, Below: sc.ID, Entry: true})
		sBar = sk + b.hi*dkj
		sUnd = sk + b.lo*dkj
	}
}

// sortScoreDesc returns a copy ordered by decreasing score (ties by
// ascending id), the canonical C(q) order.
func sortScoreDesc(s []topk.Scored) []topk.Scored {
	out := make([]topk.Scored, len(s))
	copy(out, s)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
