package core

import (
	"slices"

	"repro/internal/topk"
)

// lemma1 returns the critical deviation at which `below` catches up with
// `above` when the weight of the inspected dimension changes (Lemma 1),
// along with which bound it constrains: +1 the upper (Formula 2), -1 the
// lower (Formula 3), 0 neither (parallel score lines).
func lemma1(aboveScore, aboveCoord, belowScore, belowCoord float64) (float64, int) {
	diff := belowCoord - aboveCoord
	switch {
	case diff > 0:
		return (aboveScore - belowScore) / diff, +1
	case diff < 0:
		return (aboveScore - belowScore) / diff, -1
	default:
		return 0, 0
	}
}

// boundState accumulates the φ=0 immutable region of one dimension.
type boundState struct {
	lo, hi float64
	leftP  *Perturbation
	rightP *Perturbation
}

// applyUpper tightens the upper bound to crit if smaller, recording the
// perturbation that materializes there.
func (b *boundState) applyUpper(crit float64, p Perturbation) {
	if crit < b.hi {
		b.hi = crit
		p.Delta = crit
		b.rightP = &p
	}
}

// applyLower tightens the lower bound to crit if larger.
func (b *boundState) applyLower(crit float64, p Perturbation) {
	if crit > b.lo {
		b.lo = crit
		p.Delta = crit
		b.leftP = &p
	}
}

// apply dispatches a Lemma-1 outcome to the matching bound.
func (b *boundState) apply(crit float64, kind int, p Perturbation) {
	switch kind {
	case +1:
		b.applyUpper(crit, p)
	case -1:
		b.applyLower(crit, p)
	}
}

// regions materializes the boundState into the reported Regions.
func (b *boundState) regions(dim, qpos int) Regions {
	r := Regions{Dim: dim, QPos: qpos, Lo: b.lo, Hi: b.hi}
	if b.rightP != nil {
		r.Right = []Perturbation{*b.rightP}
	}
	if b.leftP != nil {
		r.Left = []Perturbation{*b.leftP}
	}
	return r
}

// classicDim runs the three-phase φ=0 pipeline (§4, §5) on one dimension.
func (c *dimComputer) classicDim(jx int) Regions {
	qj := c.q.Weights[jx]
	b := &boundState{lo: -qj, hi: 1 - qj}

	t0 := stopwatch()
	c.phase1(jx, b)
	c.met.Phase1 += t0()

	t1 := stopwatch()
	switch c.opts.Method {
	case MethodScan:
		c.phase2Evaluate(jx, c.fullSet(), b)
	case MethodPrune:
		c.phase2Evaluate(jx, c.prunedSet(jx, 0), b)
	case MethodThres:
		c.phase2Threshold(jx, c.fullSet(), b)
	case MethodCPT:
		c.phase2Threshold(jx, c.prunedSet(jx, 0), b)
	}
	c.met.Phase2 += t1()

	t2 := stopwatch()
	c.phase3(jx, b)
	c.met.Phase3 += t2()

	return b.regions(c.q.Dims[jx], jx)
}

// phase1 (Algorithm 1) derives the interim region from reorderings among
// consecutive result tuples. (The published pseudo-code's line 5 carries
// a typo, dα−1,j for dα+1,j; the intended comparison is implemented.)
func (c *dimComputer) phase1(jx int, b *boundState) {
	if c.opts.CompositionOnly {
		return
	}
	for a := 0; a+1 < len(c.res); a++ {
		above, below := c.res[a], c.res[a+1]
		crit, kind := lemma1(above.Score, above.Proj[jx], below.Score, below.Proj[jx])
		b.apply(crit, kind, Perturbation{Above: above.ID, Below: below.ID})
	}
}

// fullSet returns all current candidates in decreasing score order (the
// order C(q) is maintained in). The sorted copy is cached and reused
// until the candidate list grows (it only ever grows, so an unchanged
// length implies unchanged content): Thres/CPT consult it once per
// dimension and side, and re-sorting |C| 40-byte entries each time
// dominated Phase 2 before caching.
func (c *dimComputer) fullSet() []topk.Scored {
	cands := c.view.Candidates()
	if len(cands) != c.cachedLen || (c.cachedFull == nil && len(cands) > 0) {
		c.cachedFull = sortScoreDesc(cands)
		c.cachedLen = len(cands)
	}
	return c.cachedFull
}

// filterClasses selects a dimension-jx pruned view of the candidate
// list per the three classes of §5.1 — C0 (zero on jx), CH (non-zero
// only on jx), CL (non-zero on jx and elsewhere) — keeping every CL
// entry plus the first keep0 C0 and keepH CH entries. The full list is
// already in the (score desc, id asc) total order and a subsequence of
// a sorted list is sorted, so this one filter pass produces exactly
// what materializing the classes and re-sorting used to — without the
// three per-dimension class copies and the O(n log n) re-sort.
func (c *dimComputer) filterClasses(jx, keep0, keepH int) []topk.Scored {
	full := c.fullSet()
	bit := uint64(1) << uint(jx)
	n0, nh, n := 0, 0, 0
	for _, cd := range full {
		switch {
		case cd.NZMask&bit == 0:
			if n0 < keep0 {
				n0++
				n++
			}
		case cd.NZMask == bit:
			if nh < keepH {
				nh++
				n++
			}
		default:
			n++
		}
	}
	out := make([]topk.Scored, 0, n)
	n0, nh = 0, 0
	for _, cd := range full {
		switch {
		case cd.NZMask&bit == 0:
			if n0 < keep0 {
				n0++
				out = append(out, cd)
			}
		case cd.NZMask == bit:
			if nh < keepH {
				nh++
				out = append(out, cd)
			}
		default:
			out = append(out, cd)
		}
	}
	return out
}

// prunedSet applies Lemmas 2–4: all CL candidates, the φ+1 top-scoring
// C0 candidates (they alone can affect the lower bounds) and the φ+1 CH
// candidates with the highest jx-coordinate (they alone can affect the
// upper bounds). For CH singletons score order equals coordinate order,
// so both representative picks are prefixes of the score-ordered class.
func (c *dimComputer) prunedSet(jx, phi int) []topk.Scored {
	return c.filterClasses(jx, phi+1, phi+1)
}

// phase2Evaluate checks every candidate in set against the k-th result
// tuple (Scan's Phase 2; also Prune's, on the reduced set).
func (c *dimComputer) phase2Evaluate(jx int, set []topk.Scored, b *boundState) {
	dk := c.dk()
	dkj := dk.Proj[jx]
	for _, cd := range set {
		if c.stop() {
			return
		}
		proj := c.evaluate(jx, cd)
		crit, kind := lemma1(dk.Score, dkj, cd.Score, proj[jx])
		b.apply(crit, kind, Perturbation{Above: dk.ID, Below: cd.ID, Entry: true})
	}
}

// phase2Threshold is Algorithm 3: the 3-list round-robin probe of SLS
// (score-descending), SLj↑ (coordinates below dkj, ascending) and SLj↓
// (coordinates above dkj, descending) with the dual termination test per
// bound. Entries already evaluated in this dimension are skipped both
// when pulling and when reading thresholds (a strictly tighter, still
// safe threshold).
func (c *dimComputer) phase2Threshold(jx int, set []topk.Scored, b *boundState) {
	dk := c.dk()
	dkj := dk.Proj[jx]
	sk := dk.Score

	sls := set // already score-descending
	// SLj↑ and SLj↓ are index lists over set, ordered against a flat
	// coordinate column: sorting 4-byte indices over an 8-byte column is
	// much cheaper than moving 40-byte Scored entries around.
	coords := make([]float64, len(set))
	up := make([]int32, 0, len(set))
	down := make([]int32, 0, len(set))
	for i, cd := range set {
		cj := cd.Proj[jx]
		coords[i] = cj
		switch {
		case cj < dkj:
			up = append(up, int32(i))
		case cj > dkj:
			down = append(down, int32(i))
		}
	}
	sortIdxByCoord(up, coords, set, true)    // SLj↑: ascending coordinate
	sortIdxByCoord(down, coords, set, false) // SLj↓: descending coordinate

	iS, iUp, iDown := 0, 0, 0
	activeL, activeU := true, true

	evalPull := func(cd topk.Scored) (coord float64) {
		proj := c.evaluate(jx, cd)
		return proj[jx]
	}
	update := func(cd topk.Scored, coord float64, side int) {
		crit, kind := lemma1(sk, dkj, cd.Score, coord)
		if side != 0 && kind != side {
			return
		}
		b.apply(crit, kind, Perturbation{Above: dk.ID, Below: cd.ID, Entry: true})
	}

	slsPulls := 1
	if c.opts.Schedule == ScheduleScoreBiased {
		slsPulls = 2
	}
	for activeL || activeU {
		if c.stop() {
			return
		}
		// Pull the top unevaluated candidate(s) from SLS (Alg. 3 lines
		// 4–8; the score-biased schedule draws twice since SLS feeds
		// both searches).
		for p := 0; p < slsPulls; p++ {
			sc, ok := c.nextUneval(sls, &iS)
			if !ok {
				return // every candidate evaluated: both searches complete
			}
			coord := evalPull(sc)
			if coord < dkj && activeL {
				update(sc, coord, -1)
			} else if coord > dkj && activeU {
				update(sc, coord, +1)
			}
		}

		if activeL {
			activeL = c.stepSide(set, coords, up, &iS, &iUp, -1, sk, dkj, b, update, evalPull)
		}
		if activeU {
			activeU = c.stepSide(set, coords, down, &iS, &iDown, +1, sk, dkj, b, update, evalPull)
		}
	}
}

// stepSide performs one side's termination test and, if still active,
// one pull from its coordinate list (Alg. 3 lines 9–14 for the lower
// bound on SLj↑, side = -1; lines 15–20 for the upper on SLj↓,
// side = +1). It returns the updated active flag.
func (c *dimComputer) stepSide(set []topk.Scored, coords []float64, idx []int32, iS, iJ *int, side int, sk, dkj float64, b *boundState, update func(topk.Scored, float64, int), evalPull func(topk.Scored) float64) bool {
	ni, okJ := c.peekUnevalIdx(set, idx, *iJ)
	if !okJ || (side < 0 && coords[ni] >= dkj) || (side > 0 && coords[ni] <= dkj) {
		return false // candidates on dk's side of the list exhausted
	}
	tS, okS := c.peekUneval(set, *iS)
	if !okS {
		return false
	}
	crit := (sk - tS.Score) / (coords[ni] - dkj)
	if (side < 0 && crit <= b.lo) || (side > 0 && crit >= b.hi) {
		return false // no unseen candidate can tighten this bound
	}
	i, ok := c.nextUnevalIdx(set, idx, iJ)
	if !ok {
		return false
	}
	sc := set[i]
	coord := evalPull(sc)
	update(sc, coord, side)
	return true
}

// peekUneval returns the first not-yet-evaluated entry at or after *i.
func (c *dimComputer) peekUneval(list []topk.Scored, i int) (topk.Scored, bool) {
	for ; i < len(list); i++ {
		if !c.eval.contains(list[i].ID) {
			return list[i], true
		}
	}
	return topk.Scored{}, false
}

// nextUneval consumes and returns the first not-yet-evaluated entry.
func (c *dimComputer) nextUneval(list []topk.Scored, i *int) (topk.Scored, bool) {
	for ; *i < len(list); *i++ {
		if !c.eval.contains(list[*i].ID) {
			sc := list[*i]
			*i++
			return sc, true
		}
	}
	return topk.Scored{}, false
}

// peekUnevalIdx is peekUneval over an index list: it returns the first
// index (into set) at or after position i whose entry is unevaluated.
func (c *dimComputer) peekUnevalIdx(set []topk.Scored, idx []int32, i int) (int32, bool) {
	for ; i < len(idx); i++ {
		if !c.eval.contains(set[idx[i]].ID) {
			return idx[i], true
		}
	}
	return 0, false
}

// nextUnevalIdx consumes and returns the first unevaluated index.
func (c *dimComputer) nextUnevalIdx(set []topk.Scored, idx []int32, i *int) (int32, bool) {
	for ; *i < len(idx); *i++ {
		if !c.eval.contains(set[idx[*i]].ID) {
			v := idx[*i]
			*i++
			return v, true
		}
	}
	return 0, false
}

// phase3 (Algorithm 2) resumes the TA scan to rule out — or account for —
// tuples never encountered. The upper side is skipped when dk's posting
// in list jx was consumed by sorted access (§4: all higher-coordinate
// tuples were then already encountered).
func (c *dimComputer) phase3(jx int, b *boundState) {
	dk := c.dk()
	dkj := dk.Proj[jx]
	sk := dk.Score
	qj := c.q.Weights[jx]
	needUpper := !c.view.WasSortedAccessed(jx, dk.ID, dkj)

	sBar := sk + b.hi*dkj
	sUnd := sk + b.lo*dkj
	t := make([]float64, c.q.Len()) // reused across resume checks
	for {
		if c.stop() {
			return
		}
		c.view.ThresholdsInto(t)
		sumOther := 0.0
		for i, ti := range t {
			if i != jx {
				sumOther += c.q.Weights[i] * ti
			}
		}
		tj := t[jx]
		condL := sumOther+(qj+b.lo)*tj > sUnd
		condU := needUpper && sumOther+(qj+b.hi)*tj > sBar
		if !condL && !condU {
			return
		}
		sc, ok := c.view.Resume()
		if !ok {
			return
		}
		c.met.Phase3Pulled++
		proj := c.noteEvaluated(jx, sc)
		crit, kind := lemma1(sk, dkj, sc.Score, proj[jx])
		b.apply(crit, kind, Perturbation{Above: dk.ID, Below: sc.ID, Entry: true})
		sBar = sk + b.hi*dkj
		sUnd = sk + b.lo*dkj
	}
}

// sortIdxByCoord orders an index list over set by the flat coordinate
// column — ascending when asc, else descending — with ties broken by
// ascending tuple id. Both the classic and envelope Phase-2 paths build
// their SLj lists with this one ordering.
func sortIdxByCoord(idx []int32, coords []float64, set []topk.Scored, asc bool) {
	slices.SortFunc(idx, func(a, b int32) int {
		av, bv := coords[a], coords[b]
		if av != bv {
			if (av < bv) == asc {
				return -1
			}
			return 1
		}
		return set[a].ID - set[b].ID
	})
}

// sortScoreDesc returns a copy ordered by decreasing score (ties by
// ascending id), the canonical C(q) order.
func sortScoreDesc(s []topk.Scored) []topk.Scored {
	out := make([]topk.Scored, len(s))
	copy(out, s)
	slices.SortFunc(out, func(a, b topk.Scored) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return a.ID - b.ID
		}
	})
	return out
}
