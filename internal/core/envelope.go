package core

import (
	"repro/internal/geom"
	"repro/internal/topk"
)

// boundary tracks the evolving result boundary of §6 on one side of the
// current weight: every relevant tuple is a line y = score + x·coord in
// score–deviation space (x mirrored for negative deviations), the
// boundary is the k-th–highest envelope of the accepted lines, and the
// perturbation events are the line crossings that touch the top-k. The
// horizon is the (φ+1)-th event — deviations past it are irrelevant.
type boundary struct {
	k, phi    int
	compOnly  bool
	domainEnd float64
	lines     []geom.Line
	events    []Perturbation // ascending x (pre-mirror deltas)
	horizon   float64
	env       geom.PiecewiseLinear
}

// newBoundary seeds a boundary with the k result lines. mirror=true
// builds the negative-deviation side: slopes are negated so that the
// sweep always advances in +x.
func newBoundary(res []topk.Scored, jx, phi int, domainEnd float64, mirror, compOnly bool) *boundary {
	b := &boundary{k: len(res), phi: phi, compOnly: compOnly, domainEnd: domainEnd}
	for _, r := range res {
		coord := r.Proj[jx]
		if mirror {
			coord = -coord
		}
		b.lines = append(b.lines, geom.Line{A: r.Score, B: coord, ID: r.ID})
	}
	b.rebuild()
	return b
}

// rebuild recomputes the perturbation events and the k-th envelope after
// a membership change. Crossings strictly below the top-k are ignored;
// a crossing at ranks (k-1, k) is an entry (composition change).
func (b *boundary) rebuild() {
	sw := geom.NewSweep(b.lines, 0, b.domainEnd)
	b.events = b.events[:0]
	b.horizon = b.domainEnd
	for {
		cr, ok := sw.Next()
		if !ok {
			break
		}
		if cr.RankAbove > b.k-1 {
			continue
		}
		entry := cr.RankAbove == b.k-1
		if b.compOnly && !entry {
			continue
		}
		b.events = append(b.events, Perturbation{
			Delta: cr.X,
			Above: b.lines[cr.I].ID,
			Below: b.lines[cr.J].ID,
			Entry: entry,
		})
		if len(b.events) == b.phi+1 {
			b.horizon = cr.X
			break
		}
	}
	b.env = geom.KthEnvelope(b.lines, b.k, 0, b.horizon)
}

// consider tests whether a candidate line can climb above the boundary
// within the horizon; if so it joins the tracked set (coord pre-mirrored
// by the caller). Because the k-th envelope only rises as lines are
// added, a rejected candidate stays rejected forever.
func (b *boundary) consider(id int, score, coord float64) bool {
	ln := geom.Line{A: score, B: coord, ID: id}
	x, ok := b.env.FirstCrossingAbove(ln)
	if !ok || x >= b.horizon {
		return false
	}
	b.lines = append(b.lines, ln)
	b.rebuild()
	return true
}

// innerBound returns the first perturbation position, or the domain end.
func (b *boundary) innerBound() float64 {
	if len(b.events) > 0 {
		return b.events[0].Delta
	}
	return b.domainEnd
}

// envelopeDim computes up to phi+1 immutable regions per side of
// dimension jx via the §6 machinery.
func (c *dimComputer) envelopeDim(jx, phi int) Regions {
	qj := c.q.Weights[jx]

	// Phase 1: plane-sweep the k result lines for the interim events.
	t0 := stopwatch()
	right := newBoundary(c.res, jx, phi, 1-qj, false, c.opts.CompositionOnly)
	left := newBoundary(c.res, jx, phi, qj, true, c.opts.CompositionOnly)
	c.met.Phase1 += t0()

	// Phase 2: per-side pruning (Lemma 4) and thresholding.
	t1 := stopwatch()
	c.envelopeSide(jx, phi, right, false)
	c.envelopeSide(jx, phi, left, true)
	c.met.Phase2 += t1()

	// Phase 3: resume TA until the unseen-tuple cap line clears both
	// envelopes.
	t2 := stopwatch()
	c.envelopePhase3(jx, right, left)
	c.met.Phase3 += t2()

	return assembleRegions(c.q.Dims[jx], jx, qj, right, left)
}

// assembleRegions converts the two boundaries into the reported Regions
// (left-side deltas un-mirrored to negative values).
func assembleRegions(dim, jx int, qj float64, right, left *boundary) Regions {
	reg := Regions{Dim: dim, QPos: jx, Hi: right.innerBound(), Lo: -left.innerBound()}
	reg.Right = append(reg.Right, right.events...)
	for _, p := range left.events {
		p.Delta = -p.Delta
		reg.Left = append(reg.Left, p)
	}
	return reg
}

// sideSet selects the candidates Phase 2 examines on one side: Lemma 4
// keeps, besides all of CL, only the φ+1 highest-coordinate CH tuples on
// the positive side and the φ+1 best-scoring C0 tuples on the negative
// side. Scan/Thres take everything.
func (c *dimComputer) sideSet(jx, phi int, mirror bool) []topk.Scored {
	switch c.opts.Method {
	case MethodScan, MethodThres:
		return c.fullSet()
	}
	if mirror {
		return c.filterClasses(jx, phi+1, 0)
	}
	return c.filterClasses(jx, 0, phi+1)
}

// envelopeSide runs Phase 2 on one boundary. Scan/Prune evaluate their
// whole set; Thres/CPT probe the score list and the coordinate list
// round-robin and stop once the unseen-candidate cap line lies below the
// envelope everywhere within the horizon.
func (c *dimComputer) envelopeSide(jx, phi int, bd *boundary, mirror bool) {
	set := c.sideSet(jx, phi, mirror)
	sgn := 1.0
	if mirror {
		sgn = -1
	}
	switch c.opts.Method {
	case MethodScan, MethodPrune:
		for _, cd := range set {
			if c.stop() {
				return
			}
			proj := c.evaluate(jx, cd)
			bd.consider(cd.ID, cd.Score, sgn*proj[jx])
		}
		return
	}

	dkj := c.dk().Proj[jx]
	// SLS is set itself (score-descending, probed by position); SLj is an
	// index list over set, sorted against a flat coordinate column (cheap
	// 4-byte swaps instead of 40-byte Scored moves).
	coords := make([]float64, len(set))
	slj := make([]int32, 0, len(set))
	for i, cd := range set {
		cj := cd.Proj[jx]
		coords[i] = cj
		if (!mirror && cj > dkj) || (mirror && cj < dkj) {
			slj = append(slj, int32(i))
		}
	}
	// SLj↑ (mirror): ascending coordinate; SLj↓: descending.
	sortIdxByCoord(slj, coords, set, mirror)

	// processed tracks set positions already offered to THIS boundary;
	// the fetch memo (the eval table) is shared across sides so a tuple's
	// random read is charged once per dimension, but each side must still
	// offer its own view of the tuple to its own boundary.
	processed := make([]bool, len(set))
	peekS := func(i int) (int32, bool) { // next unprocessed SLS position
		for ; i < len(set); i++ {
			if !processed[i] {
				return int32(i), true
			}
		}
		return 0, false
	}
	peekJ := func(i int) (pos int, idx int32, ok bool) { // next unprocessed SLj entry
		for ; i < len(slj); i++ {
			if !processed[slj[i]] {
				return i, slj[i], true
			}
		}
		return 0, 0, false
	}

	iS, iJ := 0, 0
	done := func() bool {
		top, okS := peekS(iS)
		if !okS {
			return true // every candidate on this side processed
		}
		// Cap slope: the next coordinate key while the coordinate list
		// has unprocessed entries, then dkj (all remaining coordinates
		// are on dk's other side and bounded by it).
		slope := dkj
		if _, nxt, okJ := peekJ(iJ); okJ {
			slope = coords[nxt]
		}
		return bd.env.AboveLine(geom.Line{A: set[top].Score, B: sgn * slope})
	}
	offer := func(i int32) {
		processed[i] = true
		sc := set[i]
		proj := c.evaluate(jx, sc)
		bd.consider(sc.ID, sc.Score, sgn*proj[jx])
	}
	slsPulls := 1
	if c.opts.Schedule == ScheduleScoreBiased {
		slsPulls = 2
	}
	for {
		if c.stop() {
			return
		}
		for p := 0; p < slsPulls; p++ {
			if done() {
				return
			}
			i, ok := peekS(iS)
			if !ok {
				return
			}
			iS = int(i) + 1
			offer(i)
		}
		if done() {
			return
		}
		if pos, i, ok := peekJ(iJ); ok {
			iJ = pos + 1
			offer(i)
		}
	}
}

// envelopePhase3 resumes the TA scan until the threshold line
// y = Σ qi·ti + tj·x (constant on the mirrored side, since coordinates
// are non-negative) no longer intersects either envelope (§6 Phase 3).
func (c *dimComputer) envelopePhase3(jx int, right, left *boundary) {
	t := make([]float64, c.q.Len()) // reused across resume checks
	for {
		if c.stop() {
			return
		}
		c.view.ThresholdsInto(t)
		base := 0.0
		for i, ti := range t {
			base += c.q.Weights[i] * ti
		}
		capR := geom.Line{A: base, B: t[jx]}
		capL := geom.Line{A: base, B: 0}
		if right.env.AboveLine(capR) && left.env.AboveLine(capL) {
			return
		}
		sc, ok := c.view.Resume()
		if !ok {
			return
		}
		c.met.Phase3Pulled++
		proj := c.noteEvaluated(jx, sc)
		right.consider(sc.ID, sc.Score, proj[jx])
		left.consider(sc.ID, sc.Score, -proj[jx])
	}
}

// iterativeDim is the Fig. 15 baseline: answer a φ>0 request by φ+1
// successive single-region computations, re-processing the candidate
// lists from scratch every round (the "iterative re-processing" cost §4
// calls out). The final round's answer is complete; the metrics
// accumulate the waste of all rounds.
func (c *dimComputer) iterativeDim(jx int) Regions {
	var reg Regions
	for r := 0; r <= c.opts.Phi; r++ {
		if c.canceled() != nil {
			return reg
		}
		c.eval.reset() // refetch everything
		reg = c.envelopeDim(jx, r)
	}
	return reg
}
