// Package core implements the paper's contribution: immutable-region
// computation for subspace top-k queries. Given a completed TA run
// (result R(q) and candidate list C(q)), it derives for every query
// dimension j the widest weight-deviation interval (lj, uj) that
// preserves the ranked result, optionally generalized to up to φ
// tolerated perturbations per side, and reports the perturbation (which
// tuple overtakes which) at every region bound.
//
// Four algorithm variants are provided, matching the paper's §7.1:
//
//   - Scan  — the baseline of §4: every candidate is evaluated.
//   - Prune — Scan plus candidate pruning (§5.1, Lemmas 2–4).
//   - Thres — Scan plus candidate thresholding (§5.2, Algorithm 3).
//   - CPT   — pruning followed by thresholding (§5, §6).
//
// φ = 0 runs the paper's three-phase pipeline literally (Algorithms
// 1–3); φ > 0 runs the score–deviation envelope machinery of §6. An
// exact brute-force oracle (oracle.go) independent of TA validates both.
//
// # Concurrency model
//
// Dimensions are independent given the TA state, so Compute can fan the
// per-dimension work out across a goroutine pool (Options.Parallelism).
// What is shared between dimension workers is strictly read-only: the
// index, the query, the ranked result, and the candidate snapshot taken
// when TA terminated. Everything a dimension mutates is private to it —
// its topk.Fork (an isolated resumable scan with cloned cursors, so
// Phase-3 pulls never leak across dimensions), its evaluation memo, and
// its own Metrics, which are merged in ascending dimension order after
// the workers drain so the reported totals are deterministic. Phase
// durations then sum per-dimension CPU time, not wall time. I/O charges
// from all workers land on the index's (atomic) meter; the SeqPages and
// RandReads deltas in Metrics bracket the whole call.
//
// Parallelism ≤ 0 keeps the paper-literal sequential semantics: one
// shared scan, later dimensions observing earlier dimensions' Phase-3
// pulls, exactly as the published pseudo-code reads. Parallelism ≥ 1
// switches to fork isolation; 1 runs the forked dimensions on the
// calling goroutine, and because forks are deterministic regardless of
// scheduling, Parallelism = 1 and Parallelism = N produce bit-identical
// Regions and evaluation metrics (Evaluated, per-dimension counts,
// Phase-3 pulls, RandReads; durations excepted). SeqPages is likewise
// identical on a MemIndex, whose logical page charges are
// deterministic; on a DiskIndex the buffer pool is shared across
// workers, so which access pays a physical page miss depends on
// interleaving and SeqPages may vary between runs.
package core

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Method selects the candidate-processing strategy of Phase 2.
type Method int

const (
	// MethodScan evaluates every candidate (baseline, §4).
	MethodScan Method = iota
	// MethodPrune evaluates only candidates surviving Lemmas 2–4 (§5.1).
	MethodPrune
	// MethodThres thresholds all candidates (§5.2).
	MethodThres
	// MethodCPT prunes then thresholds (§5): the paper's full algorithm.
	MethodCPT
)

// Methods lists all variants in the paper's presentation order.
var Methods = []Method{MethodScan, MethodThres, MethodPrune, MethodCPT}

func (m Method) String() string {
	switch m {
	case MethodScan:
		return "Scan"
	case MethodPrune:
		return "Prune"
	case MethodThres:
		return "Thres"
	case MethodCPT:
		return "CPT"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a region computation.
type Options struct {
	Method Method
	// Phi is the number of tolerable result perturbations per side
	// (φ ≥ 0). Phi+1 region bounds are produced on each side of qj.
	Phi int
	// CompositionOnly ignores reorderings within R(q): only inclusions
	// of new tuples count as perturbations (§7.4).
	CompositionOnly bool
	// Iterative answers φ > 0 by repeated one-region requests instead of
	// the one-off computation of §6 — the wasteful strategy Fig. 15
	// compares against.
	Iterative bool
	// ForceEnvelope routes φ = 0 through the §6 envelope path instead of
	// Algorithms 1–3; used for cross-validation.
	ForceEnvelope bool
	// Schedule selects the probing schedule of the thresholding lists.
	Schedule Schedule
	// Parallelism selects the per-dimension execution mode. ≤ 0 (the
	// default) is the paper-literal sequential pipeline: one shared TA
	// scan, later dimensions seeing earlier dimensions' Phase-3 pulls.
	// ≥ 1 isolates every dimension on its own TA fork and runs up to
	// Parallelism dimensions concurrently; 1 and N are bit-identical in
	// results and evaluation metrics (see the package comment for the
	// exact guarantee and the DiskIndex SeqPages caveat).
	Parallelism int
}

// Schedule is the probing schedule of Thres/CPT. §5.2 reports having
// tried alternatives to plain round-robin, such as drawing from the
// score list twice as often (it feeds both bound searches); round-robin
// won on robustness. Both are implemented for the ablation benchmark.
type Schedule int

const (
	// ScheduleRoundRobin probes SLS, SLj↑ and SLj↓ in strict turn.
	ScheduleRoundRobin Schedule = iota
	// ScheduleScoreBiased pulls two SLS candidates per round.
	ScheduleScoreBiased
)

func (s Schedule) String() string {
	if s == ScheduleScoreBiased {
		return "score-biased"
	}
	return "round-robin"
}

// Perturbation is a result change at a region bound: at deviation Delta,
// tuple Below overtakes tuple Above. Entry is true when Below was outside
// the result (composition change) and false for a reordering within it.
type Perturbation struct {
	Delta float64
	Above int
	Below int
	Entry bool
}

// Regions holds the immutable regions of one query dimension. Lo/Hi is
// the innermost (φ=0) region as deviations of the weight (Lo ≤ 0 ≤ Hi).
// Right lists the successive perturbations at deviations > 0 in
// ascending order (up to Phi+1 of them), Left the ones at deviations < 0
// in order of increasing |delta|. The r-th immutable region on the right
// is (Right[r-1].Delta, Right[r].Delta); a missing entry means the
// region extends to the weight-domain edge.
type Regions struct {
	Dim   int // dataset dimension id
	QPos  int // index within Query().Dims
	Lo    float64
	Hi    float64
	Right []Perturbation
	Left  []Perturbation
}

// ResultAfter replays perturbations on the ranked base result and returns
// the ranked result valid in the region immediately past the i-th bound
// (0-based) on the chosen side. base is a ranked id list (R(q)).
func (r Regions) ResultAfter(base []int, right bool, i int) ([]int, error) {
	perts := r.Left
	if right {
		perts = r.Right
	}
	if i >= len(perts) {
		return nil, fmt.Errorf("core: only %d perturbations on that side", len(perts))
	}
	out := append([]int(nil), base...)
	for _, p := range perts[:i+1] {
		if err := applyPerturbation(out, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// applyPerturbation mutates the ranked list in place.
func applyPerturbation(ranked []int, p Perturbation) error {
	if p.Entry {
		if len(ranked) == 0 || ranked[len(ranked)-1] != p.Above {
			return fmt.Errorf("core: entry perturbation expects %d at rank k", p.Above)
		}
		ranked[len(ranked)-1] = p.Below
		return nil
	}
	for i := 0; i+1 < len(ranked); i++ {
		if ranked[i] == p.Above && ranked[i+1] == p.Below {
			ranked[i], ranked[i+1] = ranked[i+1], ranked[i]
			return nil
		}
	}
	return fmt.Errorf("core: reorder perturbation %d/%d not adjacent", p.Above, p.Below)
}

// Metrics meters one Compute call. Evaluated counts candidates checked
// against the result boundary (the paper's "# evaluated candidates";
// fetching each costs one random I/O). Phase durations cover all query
// dimensions (in parallel mode they sum per-dimension CPU time, not wall
// time); I/O counters are deltas against the index's meter.
type Metrics struct {
	Evaluated       int
	EvaluatedPerDim []int
	Phase1          time.Duration
	Phase2          time.Duration
	Phase3          time.Duration
	Phase3Pulled    int
	SeqPages        int64
	RandReads       int64
	MemBytes        int64
}

// merge folds one dimension's metrics into the aggregate. Callers merge
// in ascending dimension order, making parallel totals deterministic.
func (m *Metrics) merge(o Metrics) {
	m.Evaluated += o.Evaluated
	for i, v := range o.EvaluatedPerDim {
		m.EvaluatedPerDim[i] += v
	}
	m.Phase1 += o.Phase1
	m.Phase2 += o.Phase2
	m.Phase3 += o.Phase3
	m.Phase3Pulled += o.Phase3Pulled
}

// EvaluatedPerDimAvg is Evaluated averaged over the query dimensions.
func (m Metrics) EvaluatedPerDimAvg() float64 {
	if len(m.EvaluatedPerDim) == 0 {
		return 0
	}
	return float64(m.Evaluated) / float64(len(m.EvaluatedPerDim))
}

// CPU returns the total processing time across phases.
func (m Metrics) CPU() time.Duration { return m.Phase1 + m.Phase2 + m.Phase3 }

// Output is the full product of a region computation.
type Output struct {
	Query   vec.Query
	K       int
	Result  []topk.Scored
	Regions []Regions
	Metrics Metrics
}

// RankedIDs returns the ranked tuple ids of the base result.
func (o *Output) RankedIDs() []int {
	ids := make([]int, len(o.Result))
	for i, r := range o.Result {
		ids[i] = r.ID
	}
	return ids
}

// computer carries the state shared by every dimension of one Compute
// call. All fields are read-only once the TA run has completed, so any
// number of dimension workers may consult them concurrently.
type computer struct {
	ix   lists.Index
	q    vec.Query
	k    int
	n    int // dataset cardinality
	opts Options
	res  []topk.Scored

	// ctx may be nil (never cancelled). The phase loops poll it at a
	// coarse stride — each iteration they guard costs a tuple fetch — and
	// bail out early once it fires; Compute then discards the partial
	// output and surfaces the context's error.
	ctx context.Context

	// forked reports whether the per-dimension work ran on TA forks, in
	// which case Phase-3 pulls live in the forks' private candidate
	// lists (not the parent's) and the memory model adds them separately.
	forked bool
}

// dimComputer is the working state of one dimension's region
// computation: the shared read-only computer plus this dimension's
// private scan view, metrics, and evaluation memo.
type dimComputer struct {
	*computer
	view topk.View
	met  *Metrics
	eval *evalTable

	// ctxTick strides the cancellation polls of the Phase-2/3 loops.
	ctxTick uint32

	// cachedFull memoizes the score-sorted candidate list; valid while
	// the candidate list still has cachedLen entries (it only grows).
	cachedFull []topk.Scored
	cachedLen  int
}

// evalTable memoizes the projections of evaluated candidates, keyed by
// tuple id. It is a dense epoch-tagged array rather than a map: the
// uneval-scanning loops of Phase 2 probe it once per list entry, and a
// slice index beats a map lookup there by an order of magnitude. reset
// (one integer bump) starts a new dimension without clearing.
type evalTable struct {
	proj    [][]float64
	mark    []uint32
	sparse  map[int][]float64 // non-nil → sparse mode (huge datasets)
	touched []int32           // ids written since the table left the pool
	epoch   uint32
}

// evalDenseMax caps the dense layout: beyond ~1M tuples the O(n) arrays
// (28 B/tuple, one table per concurrent query and per worker) would
// dominate server memory, so larger datasets fall back to a map sized
// by the candidates actually evaluated.
const evalDenseMax = 1 << 20

func (t *evalTable) reset() {
	if t.sparse != nil {
		clear(t.sparse)
		return
	}
	t.epoch++
	if t.epoch == 0 { // wrapped: marks from 4Gi resets ago could alias
		clear(t.mark)
		t.epoch = 1
	}
}

func (t *evalTable) get(id int) ([]float64, bool) {
	if t.sparse != nil {
		p, ok := t.sparse[id]
		return p, ok
	}
	if t.mark[id] == t.epoch {
		return t.proj[id], true
	}
	return nil, false
}

func (t *evalTable) contains(id int) bool {
	if t.sparse != nil {
		_, ok := t.sparse[id]
		return ok
	}
	return t.mark[id] == t.epoch
}

func (t *evalTable) put(id int, p []float64) {
	if t.sparse != nil {
		t.sparse[id] = p
		return
	}
	t.mark[id] = t.epoch
	t.proj[id] = p
	t.touched = append(t.touched, int32(id))
}

// evalPool recycles evalTables across Compute calls; dense tables are
// sized to the dataset cardinality, which dominates their cost.
var evalPool sync.Pool

func getEvalTable(n int) *evalTable {
	if n > evalDenseMax {
		return &evalTable{sparse: make(map[int][]float64)}
	}
	if v := evalPool.Get(); v != nil {
		t := v.(*evalTable)
		if t.sparse == nil && len(t.mark) >= n {
			return t
		}
	}
	return &evalTable{proj: make([][]float64, n), mark: make([]uint32, n)}
}

// putEvalTable returns a table to the pool with the projection pointers
// it wrote dropped, so a pooled table does not pin the finished query's
// projection arenas until the pool is GC-evicted. Sparse tables are not
// pooled; they are already sized to their query.
func putEvalTable(t *evalTable) {
	if t.sparse != nil {
		return
	}
	for _, id := range t.touched {
		t.proj[id] = nil
	}
	t.touched = t.touched[:0]
	evalPool.Put(t)
}

// Runner is the execution surface region computation drives: a
// topk.View that can additionally be run to termination (a no-op when
// the scan already completed — e.g. a member view of a fused
// multi-query run) and forked for per-dimension isolation. *topk.TA and
// *topk.MemberRun both implement it.
type Runner interface {
	topk.View
	RunContext(ctx context.Context) error
	ForkView() topk.View
}

// Compute derives the immutable regions of every query dimension from a
// completed TA run. With Options.Parallelism ≤ 0 the TA's candidate
// list grows as Phase 3 resumes the scan, exactly as in the paper
// (later dimensions see earlier additions); with Parallelism ≥ 1 every
// dimension works on an isolated fork of the scan (see the package
// comment for the full concurrency model).
//
// ctx cancels the computation mid-flight: the TA round loop, the
// Phase-2 evaluation/thresholding loops and the Phase-3 resume loops all
// poll it at a coarse stride, so a disconnected client stops costing CPU
// and I/O within a few hundred accesses. On cancellation the partial
// output is discarded and the context's error is returned. A nil ctx is
// treated as context.Background().
func Compute(ctx context.Context, ta *topk.TA, opts Options) (*Output, error) {
	return ComputeView(ctx, ta, opts)
}

// ComputeView is Compute over any Runner — the entry point the fused
// batch path uses to compute regions for each member view of a shared
// multi-query scan. The answer is identical to a solo run's: a member
// view's candidate superset only adds non-binding constraints.
func ComputeView(ctx context.Context, r Runner, opts Options) (*Output, error) {
	if opts.Phi < 0 {
		return nil, fmt.Errorf("core: negative phi %d", opts.Phi)
	}
	if err := r.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("core: query canceled during top-k: %w", err)
	}
	c := &computer{
		ix:   r.Index(),
		q:    r.Query(),
		k:    r.K(),
		n:    r.Index().NumTuples(),
		opts: opts,
		res:  r.Result(),
		ctx:  ctx,
	}
	qlen := c.q.Len()
	out := &Output{Query: c.q, K: c.k, Result: c.res}
	out.Regions = make([]Regions, qlen)
	met := Metrics{EvaluatedPerDim: make([]int, qlen)}

	seq0, rnd0, _ := c.ix.Stats().Snapshot()
	switch {
	case len(c.res) < c.k:
		// Fewer tuples than k: no tuple can displace anything.
		for jx := range c.q.Dims {
			out.Regions[jx] = c.fullDomainRegions(jx)
		}
	case opts.Parallelism <= 0:
		c.computeSequential(r, out, &met)
	default:
		c.computeForked(r, out, &met)
	}
	if err := c.canceled(); err != nil {
		return nil, fmt.Errorf("core: query canceled: %w", err)
	}
	seq1, rnd1, _ := c.ix.Stats().Snapshot()
	met.SeqPages = seq1 - seq0
	met.RandReads = rnd1 - rnd0
	met.MemBytes = c.memFootprint(r.Candidates())
	// Forked Phase-3 pulls grow the forks' private candidate lists, not
	// the parent's, so memFootprint missed them; add all pulls at the
	// candidate-entry unit (16 B) to match the sequential path, where
	// the same pulls land in ta.cands before the footprint is taken.
	if c.forked {
		met.MemBytes += int64(met.Phase3Pulled) * 16
	}
	out.Metrics = met
	return out, nil
}

// canceled reports the computation's cancellation error, if any.
func (c *computer) canceled() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// stop is the strided cancellation poll of the Phase-2/3 loops: it
// checks the context only every 64th call, because one loop iteration
// costs roughly a tuple fetch while ctx.Err may take a lock.
func (d *dimComputer) stop() bool {
	if d.ctx == nil {
		return false
	}
	d.ctxTick++
	return d.ctxTick&63 == 0 && d.ctx.Err() != nil
}

// computeSequential is the paper-literal pipeline: one shared scan, one
// evaluation memo reset per dimension, metrics accumulated in place.
func (c *computer) computeSequential(r Runner, out *Output, met *Metrics) {
	eval := getEvalTable(c.n)
	defer putEvalTable(eval)
	d := &dimComputer{computer: c, view: r, met: met, eval: eval}
	for jx := range c.q.Dims {
		if c.canceled() != nil {
			return // Compute reports the error after the loop
		}
		d.eval.reset()
		out.Regions[jx] = d.computeDim(jx)
	}
}

// computeForked fans the dimensions out over min(Parallelism, qlen)
// workers, each dimension on its own TA fork, and merges the
// per-dimension metrics in ascending dimension order.
func (c *computer) computeForked(r Runner, out *Output, met *Metrics) {
	qlen := c.q.Len()
	workers := c.opts.Parallelism
	if workers > qlen {
		workers = qlen
	}
	perDim := make([]Metrics, qlen)
	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	run := func() {
		eval := getEvalTable(c.n)
		defer putEvalTable(eval)
		for {
			jx := int(next.Add(1)) - 1
			if jx >= qlen || c.canceled() != nil {
				return
			}
			perDim[jx].EvaluatedPerDim = make([]int, qlen)
			d := &dimComputer{
				computer: c,
				view:     r.ForkView(),
				met:      &perDim[jx],
				eval:     eval,
			}
			eval.reset()
			out.Regions[jx] = d.computeDim(jx)
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicOnce.Do(func() { panicked = r })
					}
				}()
				run()
			}()
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
	}
	for jx := range perDim {
		met.merge(perDim[jx])
	}
	c.forked = true
}

// computeDim routes one dimension to the right algorithm variant.
func (d *dimComputer) computeDim(jx int) Regions {
	opts := d.opts
	switch {
	case opts.Iterative && opts.Phi > 0:
		return d.iterativeDim(jx)
	case opts.Phi > 0 || opts.ForceEnvelope || opts.CompositionOnly:
		// Composition-only always takes the envelope path: a tuple
		// enters the result set when it crosses the k-th score
		// envelope, which is below dk's own line once result tuples
		// reorder — the classic dk-only comparison of Phase 2 would
		// miss such entries.
		return d.envelopeDim(jx, opts.Phi)
	default:
		return d.classicDim(jx)
	}
}

// fullDomainRegions covers the degenerate |R| < k case.
func (c *computer) fullDomainRegions(jx int) Regions {
	qj := c.q.Weights[jx]
	return Regions{Dim: c.q.Dims[jx], QPos: jx, Lo: -qj, Hi: 1 - qj}
}

// evaluate fetches candidate cd's full tuple (one random I/O — the
// paper's accounting unit for Phase 2) and returns its projection onto
// the query dimensions. Repeat evaluations within one dimension are
// served from the per-dimension memo without re-charging. The fetch is
// what Phase 2 pays for; the projection itself is the one the scan
// already computed from the identical tuple (Scored.Proj), so it is
// reused rather than recomputed — every candidate used to be
// re-projected once per query dimension, which dominated wide-subspace
// profiles.
func (d *dimComputer) evaluate(jx int, cd topk.Scored) []float64 {
	if p, ok := d.eval.get(cd.ID); ok {
		return p
	}
	d.ix.Tuple(cd.ID)
	d.eval.put(cd.ID, cd.Proj)
	d.met.Evaluated++
	d.met.EvaluatedPerDim[jx]++
	return cd.Proj
}

// noteEvaluated records an evaluation whose fetch was already charged
// elsewhere (Phase 3 resume pulls).
func (d *dimComputer) noteEvaluated(jx int, sc topk.Scored) []float64 {
	if p, ok := d.eval.get(sc.ID); ok {
		return p
	}
	d.eval.put(sc.ID, sc.Proj)
	d.met.Evaluated++
	d.met.EvaluatedPerDim[jx]++
	return sc.Proj
}

// dk returns the k-th (last) result tuple.
func (c *computer) dk() topk.Scored { return c.res[c.k-1] }

// memFootprint models each method's working-set size in bytes, after the
// paper's Fig. 10(d): a candidate-list entry is a pointer+score (16 B), a
// sorted-list entry a pointer+key (16 B). Prune and CPT use the
// CandidateStore optimization of §5.1 (only CL tuples plus φ+1 singleton
// representatives per dimension are retained).
func (c *computer) memFootprint(cands []topk.Scored) int64 {
	const entry = 16
	total := int64(len(cands)) * entry
	switch c.opts.Method {
	case MethodScan:
		return total
	case MethodThres:
		// candidate list + the SLj sorted list built on all candidates
		return total + int64(len(cands))*entry
	case MethodPrune, MethodCPT:
		// A dimension's pruned count is the number of multi-dimension
		// candidates with that bit set (bit set and mask != bit is the
		// same predicate), so one pass over the masks yields all
		// per-dimension counts and the multi total together.
		multi := 0
		counts := make([]int, c.q.Len())
		for _, cd := range cands {
			if cd.NonZero() >= 2 {
				multi++
				m := cd.NZMask
				for m != 0 {
					counts[bits.TrailingZeros64(m)]++
					m &= m - 1
				}
			}
		}
		maxPruned := 0
		for _, n := range counts {
			if n > maxPruned {
				maxPruned = n
			}
		}
		reps := (c.opts.Phi + 1) * c.q.Len() * 2
		store := int64(multi+reps) * entry
		if c.opts.Method == MethodPrune {
			return store
		}
		// CPT additionally builds SLj over the pruned per-dim set.
		return store + int64(maxPruned+2*(c.opts.Phi+1))*entry
	default:
		return total
	}
}
