// Package core implements the paper's contribution: immutable-region
// computation for subspace top-k queries. Given a completed TA run
// (result R(q) and candidate list C(q)), it derives for every query
// dimension j the widest weight-deviation interval (lj, uj) that
// preserves the ranked result, optionally generalized to up to φ
// tolerated perturbations per side, and reports the perturbation (which
// tuple overtakes which) at every region bound.
//
// Four algorithm variants are provided, matching the paper's §7.1:
//
//   - Scan  — the baseline of §4: every candidate is evaluated.
//   - Prune — Scan plus candidate pruning (§5.1, Lemmas 2–4).
//   - Thres — Scan plus candidate thresholding (§5.2, Algorithm 3).
//   - CPT   — pruning followed by thresholding (§5, §6).
//
// φ = 0 runs the paper's three-phase pipeline literally (Algorithms
// 1–3); φ > 0 runs the score–deviation envelope machinery of §6. An
// exact brute-force oracle (oracle.go) independent of TA validates both.
package core

import (
	"fmt"
	"time"

	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Method selects the candidate-processing strategy of Phase 2.
type Method int

const (
	// MethodScan evaluates every candidate (baseline, §4).
	MethodScan Method = iota
	// MethodPrune evaluates only candidates surviving Lemmas 2–4 (§5.1).
	MethodPrune
	// MethodThres thresholds all candidates (§5.2).
	MethodThres
	// MethodCPT prunes then thresholds (§5): the paper's full algorithm.
	MethodCPT
)

// Methods lists all variants in the paper's presentation order.
var Methods = []Method{MethodScan, MethodThres, MethodPrune, MethodCPT}

func (m Method) String() string {
	switch m {
	case MethodScan:
		return "Scan"
	case MethodPrune:
		return "Prune"
	case MethodThres:
		return "Thres"
	case MethodCPT:
		return "CPT"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a region computation.
type Options struct {
	Method Method
	// Phi is the number of tolerable result perturbations per side
	// (φ ≥ 0). Phi+1 region bounds are produced on each side of qj.
	Phi int
	// CompositionOnly ignores reorderings within R(q): only inclusions
	// of new tuples count as perturbations (§7.4).
	CompositionOnly bool
	// Iterative answers φ > 0 by repeated one-region requests instead of
	// the one-off computation of §6 — the wasteful strategy Fig. 15
	// compares against.
	Iterative bool
	// ForceEnvelope routes φ = 0 through the §6 envelope path instead of
	// Algorithms 1–3; used for cross-validation.
	ForceEnvelope bool
	// Schedule selects the probing schedule of the thresholding lists.
	Schedule Schedule
}

// Schedule is the probing schedule of Thres/CPT. §5.2 reports having
// tried alternatives to plain round-robin, such as drawing from the
// score list twice as often (it feeds both bound searches); round-robin
// won on robustness. Both are implemented for the ablation benchmark.
type Schedule int

const (
	// ScheduleRoundRobin probes SLS, SLj↑ and SLj↓ in strict turn.
	ScheduleRoundRobin Schedule = iota
	// ScheduleScoreBiased pulls two SLS candidates per round.
	ScheduleScoreBiased
)

func (s Schedule) String() string {
	if s == ScheduleScoreBiased {
		return "score-biased"
	}
	return "round-robin"
}

// Perturbation is a result change at a region bound: at deviation Delta,
// tuple Below overtakes tuple Above. Entry is true when Below was outside
// the result (composition change) and false for a reordering within it.
type Perturbation struct {
	Delta float64
	Above int
	Below int
	Entry bool
}

// Regions holds the immutable regions of one query dimension. Lo/Hi is
// the innermost (φ=0) region as deviations of the weight (Lo ≤ 0 ≤ Hi).
// Right lists the successive perturbations at deviations > 0 in
// ascending order (up to Phi+1 of them), Left the ones at deviations < 0
// in order of increasing |delta|. The r-th immutable region on the right
// is (Right[r-1].Delta, Right[r].Delta); a missing entry means the
// region extends to the weight-domain edge.
type Regions struct {
	Dim   int // dataset dimension id
	QPos  int // index within Query().Dims
	Lo    float64
	Hi    float64
	Right []Perturbation
	Left  []Perturbation
}

// ResultAfter replays perturbations on the ranked base result and returns
// the ranked result valid in the region immediately past the i-th bound
// (0-based) on the chosen side. base is a ranked id list (R(q)).
func (r Regions) ResultAfter(base []int, right bool, i int) ([]int, error) {
	perts := r.Left
	if right {
		perts = r.Right
	}
	if i >= len(perts) {
		return nil, fmt.Errorf("core: only %d perturbations on that side", len(perts))
	}
	out := append([]int(nil), base...)
	for _, p := range perts[:i+1] {
		if err := applyPerturbation(out, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// applyPerturbation mutates the ranked list in place.
func applyPerturbation(ranked []int, p Perturbation) error {
	if p.Entry {
		if len(ranked) == 0 || ranked[len(ranked)-1] != p.Above {
			return fmt.Errorf("core: entry perturbation expects %d at rank k", p.Above)
		}
		ranked[len(ranked)-1] = p.Below
		return nil
	}
	for i := 0; i+1 < len(ranked); i++ {
		if ranked[i] == p.Above && ranked[i+1] == p.Below {
			ranked[i], ranked[i+1] = ranked[i+1], ranked[i]
			return nil
		}
	}
	return fmt.Errorf("core: reorder perturbation %d/%d not adjacent", p.Above, p.Below)
}

// Metrics meters one Compute call. Evaluated counts candidates checked
// against the result boundary (the paper's "# evaluated candidates";
// fetching each costs one random I/O). Phase durations cover all query
// dimensions; I/O counters are deltas against the index's meter.
type Metrics struct {
	Evaluated       int
	EvaluatedPerDim []int
	Phase1          time.Duration
	Phase2          time.Duration
	Phase3          time.Duration
	Phase3Pulled    int
	SeqPages        int64
	RandReads       int64
	MemBytes        int64
}

// EvaluatedPerDimAvg is Evaluated averaged over the query dimensions.
func (m Metrics) EvaluatedPerDimAvg() float64 {
	if len(m.EvaluatedPerDim) == 0 {
		return 0
	}
	return float64(m.Evaluated) / float64(len(m.EvaluatedPerDim))
}

// CPU returns the total processing time across phases.
func (m Metrics) CPU() time.Duration { return m.Phase1 + m.Phase2 + m.Phase3 }

// Output is the full product of a region computation.
type Output struct {
	Query   vec.Query
	K       int
	Result  []topk.Scored
	Regions []Regions
	Metrics Metrics
}

// RankedIDs returns the ranked tuple ids of the base result.
func (o *Output) RankedIDs() []int {
	ids := make([]int, len(o.Result))
	for i, r := range o.Result {
		ids[i] = r.ID
	}
	return ids
}

// computer carries the state of one Compute call.
type computer struct {
	ta   *topk.TA
	ix   lists.Index
	q    vec.Query
	k    int
	opts Options

	res []topk.Scored
	met Metrics

	// per-dimension evaluation bookkeeping
	evalSeen map[int][]float64 // id → projected coords of evaluated candidates
}

// Compute derives the immutable regions of every query dimension from a
// completed TA run. The TA's candidate list grows as Phase 3 resumes the
// scan, exactly as in the paper (later dimensions see earlier additions).
func Compute(ta *topk.TA, opts Options) (*Output, error) {
	if opts.Phi < 0 {
		return nil, fmt.Errorf("core: negative phi %d", opts.Phi)
	}
	c := &computer{
		ta:   ta,
		ix:   ta.Index(),
		q:    ta.Query(),
		k:    ta.K(),
		opts: opts,
	}
	ta.Run()
	c.res = ta.Result()
	out := &Output{Query: c.q, K: c.k, Result: c.res}
	c.met.EvaluatedPerDim = make([]int, c.q.Len())

	seq0, rnd0, _ := c.ix.Stats().Snapshot()
	for jx := range c.q.Dims {
		c.evalSeen = make(map[int][]float64)
		var reg Regions
		if len(c.res) < c.k {
			// Fewer tuples than k: no tuple can displace anything.
			reg = c.fullDomainRegions(jx)
		} else if opts.Iterative && opts.Phi > 0 {
			reg = c.iterativeDim(jx)
		} else if opts.Phi > 0 || opts.ForceEnvelope || opts.CompositionOnly {
			// Composition-only always takes the envelope path: a tuple
			// enters the result set when it crosses the k-th score
			// envelope, which is below dk's own line once result tuples
			// reorder — the classic dk-only comparison of Phase 2 would
			// miss such entries.
			reg = c.envelopeDim(jx, opts.Phi)
		} else {
			reg = c.classicDim(jx)
		}
		out.Regions = append(out.Regions, reg)
	}
	seq1, rnd1, _ := c.ix.Stats().Snapshot()
	c.met.SeqPages = seq1 - seq0
	c.met.RandReads = rnd1 - rnd0
	c.met.MemBytes = c.memFootprint()
	out.Metrics = c.met
	return out, nil
}

// fullDomainRegions covers the degenerate |R| < k case.
func (c *computer) fullDomainRegions(jx int) Regions {
	qj := c.q.Weights[jx]
	return Regions{Dim: c.q.Dims[jx], QPos: jx, Lo: -qj, Hi: 1 - qj}
}

// evaluate fetches candidate id's full tuple (one random I/O — the
// paper's accounting unit for Phase 2) and returns its projection onto
// the query dimensions. Repeat evaluations within one dimension are
// served from the per-dimension memo without re-charging.
func (c *computer) evaluate(jx, id int) []float64 {
	if p, ok := c.evalSeen[id]; ok {
		return p
	}
	d := c.ix.Tuple(id)
	p := c.q.Project(d)
	c.evalSeen[id] = p
	c.met.Evaluated++
	c.met.EvaluatedPerDim[jx]++
	return p
}

// noteEvaluated records an evaluation whose fetch was already charged
// elsewhere (Phase 3 resume pulls).
func (c *computer) noteEvaluated(jx int, sc topk.Scored) []float64 {
	if p, ok := c.evalSeen[sc.ID]; ok {
		return p
	}
	c.evalSeen[sc.ID] = sc.Proj
	c.met.Evaluated++
	c.met.EvaluatedPerDim[jx]++
	return sc.Proj
}

// dk returns the k-th (last) result tuple.
func (c *computer) dk() topk.Scored { return c.res[c.k-1] }

// memFootprint models each method's working-set size in bytes, after the
// paper's Fig. 10(d): a candidate-list entry is a pointer+score (16 B), a
// sorted-list entry a pointer+key (16 B). Prune and CPT use the
// CandidateStore optimization of §5.1 (only CL tuples plus φ+1 singleton
// representatives per dimension are retained).
func (c *computer) memFootprint() int64 {
	const entry = 16
	cands := c.ta.Candidates()
	total := int64(len(cands)) * entry
	switch c.opts.Method {
	case MethodScan:
		return total
	case MethodThres:
		// candidate list + the SLj sorted list built on all candidates
		return total + int64(len(cands))*entry
	case MethodPrune, MethodCPT:
		multi := 0
		maxPruned := 0
		for jx := range c.q.Dims {
			pruned := 0
			for _, cd := range cands {
				bit := uint64(1) << uint(jx)
				if cd.NZMask&bit != 0 && cd.NZMask != bit {
					pruned++
				}
			}
			if pruned > maxPruned {
				maxPruned = pruned
			}
		}
		for _, cd := range cands {
			if cd.NonZero() >= 2 {
				multi++
			}
		}
		reps := (c.opts.Phi + 1) * c.q.Len() * 2
		store := int64(multi+reps) * entry
		if c.opts.Method == MethodPrune {
			return store
		}
		// CPT additionally builds SLj over the pruned per-dim set.
		return store + int64(maxPruned+2*(c.opts.Phi+1))*entry
	default:
		return total
	}
}
