package core

import (
	"context"

	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/topk"
	"repro/internal/vec"
)

// This file is the shard-side and coordinator-side machinery of the
// scatter-gather deployment (docs/sharding.md). A dataset partitioned
// by id range answers a global analysis in two rounds: the coordinator
// first merges the per-shard top-k lists into the global result R, then
// asks every shard for the region constraints ITS tuples impose on that
// result. The shard computation is the unmodified pipeline of this
// package run over a translated view: Result() reports the imposed
// global lines, Candidates()/Resume() report the shard's own tuples
// under their global ids, and the k-th result line may belong to
// another shard entirely — Lemma 1 and the §6 envelope only consume the
// line coefficients (score, coordinate), never the backing tuple, so
// the phases work unchanged.
//
// Correctness of the decomposition: the global immutable region is the
// set of deviations under which (a) no two result lines reorder and
// (b) no non-result line climbs above the k-th envelope. Constraint (a)
// is a function of R alone and is replayed identically by every shard
// (or by the coordinator); constraint (b) decomposes over the partition
// because every non-result tuple lives in exactly one shard and its
// line's crossings are pure functions of (score, coordinate) pairs that
// shard computes bit-identically to a single node. See
// docs/sharding.md for the full argument, and TestShardedBitIdentical
// for the machine-checked version.

// WithImposed wraps a shard-local Runner for an imposed-result region
// computation. base offsets the shard's local tuple ids into the global
// id space (global id = base + local id). imposed is the merged global
// result R, carrying global ids; result members owned by this shard are
// recognized by their id range and excluded from the candidate stream
// (a shard's local top-k always contains its global-result members, so
// they would otherwise be double-reported as candidates).
//
// The wrapped runner must be used with sequential region computation
// (Options.Parallelism <= 0): Phase-3 pulls must land in the shared
// candidate list so ContributedLines can report every line offered to
// the boundaries.
func WithImposed(r Runner, base int, imposed []topk.Scored) Runner {
	return &imposedRunner{inner: r, base: base, imposed: imposed}
}

// imposedRunner translates a shard-local Runner into the global id
// space and substitutes the imposed result for the local one.
type imposedRunner struct {
	inner   Runner
	base    int
	imposed []topk.Scored

	// cands is the translated candidate view: the shard's local result
	// and candidate lists minus imposed members, rebuilt when the inner
	// lists grow (Resume only ever appends).
	cands    []topk.Scored
	innerLen int
}

func (v *imposedRunner) Query() vec.Query { return v.inner.Query() }
func (v *imposedRunner) K() int           { return v.inner.K() }

// Result returns the imposed global result, not the shard-local one.
func (v *imposedRunner) Result() []topk.Scored { return v.imposed }

// ownsImposed reports whether the given global id is an imposed result
// member (k is small, so a linear probe beats a map here).
func (v *imposedRunner) ownsImposed(gid int) bool {
	for i := range v.imposed {
		if v.imposed[i].ID == gid {
			return true
		}
	}
	return false
}

// Candidates returns every shard tuple that may constrain the imposed
// result — the local top-k members that did not make the global result,
// plus the local candidate list — under global ids. The concatenation
// preserves the decreasing-score contract: local result scores dominate
// local candidate scores.
func (v *imposedRunner) Candidates() []topk.Scored {
	res, cs := v.inner.Result(), v.inner.Candidates()
	if n := len(res) + len(cs); n != v.innerLen || (v.cands == nil && n > 0) {
		v.innerLen = n
		v.cands = v.cands[:0]
		for _, part := range [2][]topk.Scored{res, cs} {
			for _, sc := range part {
				sc.ID += v.base
				if v.ownsImposed(sc.ID) {
					continue
				}
				v.cands = append(v.cands, sc)
			}
		}
	}
	return v.cands
}

// Resume pulls the shard scan and translates the id. Imposed members
// can never surface here — they are in the local top-k, which the scan
// saw before terminating — but the filter guards the invariant anyway.
func (v *imposedRunner) Resume() (topk.Scored, bool) {
	for {
		sc, ok := v.inner.Resume()
		if !ok {
			return topk.Scored{}, false
		}
		sc.ID += v.base
		if v.ownsImposed(sc.ID) {
			continue
		}
		return sc, true
	}
}

func (v *imposedRunner) Thresholds() []float64        { return v.inner.Thresholds() }
func (v *imposedRunner) ThresholdsInto(dst []float64) { v.inner.ThresholdsInto(dst) }

// WasSortedAccessed answers for shard-owned tuples only. A foreign id —
// typically the imposed d_k living on another shard — reports false,
// which makes Phase 3 keep the upper-bound resume active: conservative
// in work, exact in the produced region.
func (v *imposedRunner) WasSortedAccessed(i, id int, val float64) bool {
	local := id - v.base
	if local < 0 || local >= v.inner.Index().NumTuples() {
		return false
	}
	return v.inner.WasSortedAccessed(i, local, val)
}

func (v *imposedRunner) Index() lists.Index {
	return &offsetIndex{Index: v.inner.Index(), base: v.base}
}

func (v *imposedRunner) RunContext(ctx context.Context) error { return v.inner.RunContext(ctx) }

// ForkView panics: imposed computations are sequential by contract (see
// WithImposed), so the forked per-dimension path never runs.
func (v *imposedRunner) ForkView() topk.View {
	panic("core: imposed runner cannot fork; use Parallelism <= 0")
}

// ContributedLines returns every shard line the computation offered to
// the result boundaries — the candidate view after all phases ran,
// including Phase-3 pulls — under global ids. The coordinator replays
// these through ReplayRegions for φ > 0 merges; the set is a superset
// of the boundary-accepted lines, which is all replay exactness needs.
func (v *imposedRunner) ContributedLines() []topk.Scored {
	return append([]topk.Scored(nil), v.Candidates()...)
}

// offsetIndex presents a shard-local index under global tuple ids:
// random access subtracts the shard base, the cardinality covers the
// global id range [0, base+n) so id-indexed structures (the evaluation
// memo) size correctly, and sorted-access cursors translate posting ids
// on the way out.
type offsetIndex struct {
	lists.Index
	base int
}

func (o *offsetIndex) NumTuples() int          { return o.base + o.Index.NumTuples() }
func (o *offsetIndex) Tuple(id int) vec.Sparse { return o.Index.Tuple(id - o.base) }

func (o *offsetIndex) Cursor(dim int) lists.Cursor {
	return &offsetCursor{Cursor: o.Index.Cursor(dim), base: o.base}
}

func (o *offsetIndex) WithStats(st *storage.IOStats) lists.Index {
	return &offsetIndex{Index: o.Index.WithStats(st), base: o.base}
}

// offsetCursor translates posting ids of a shard-local cursor.
type offsetCursor struct {
	lists.Cursor
	base int
}

func (c *offsetCursor) Peek() (storage.Posting, bool) {
	p, ok := c.Cursor.Peek()
	p.ID += c.base
	return p, ok
}

func (c *offsetCursor) Next() (storage.Posting, bool) {
	p, ok := c.Cursor.Next()
	p.ID += c.base
	return p, ok
}

func (c *offsetCursor) Clone() lists.Cursor {
	return &offsetCursor{Cursor: c.Cursor.Clone(), base: c.base}
}

// ReplayRegions is the coordinator-side φ > 0 (and envelope-path) merge:
// it reruns the §6 boundary machinery per dimension over the imposed
// result lines, offering every shard-contributed line. Because a line
// rejected by boundary.consider provably never touches the k-th
// envelope within the horizon, offering a superset of the relevant
// lines yields exactly the arrangement — and therefore exactly the
// perturbation sequence — a single node computes over the union.
// k is the requested result size; len(res) < k degenerates to the full
// weight domain exactly as ComputeView's |R| < k branch does.
func ReplayRegions(q vec.Query, k int, res, extra []topk.Scored, opts Options) []Regions {
	out := make([]Regions, q.Len())
	for jx := range q.Dims {
		if len(res) < k {
			c := &computer{q: q, k: k}
			out[jx] = c.fullDomainRegions(jx)
			continue
		}
		qj := q.Weights[jx]
		right := newBoundary(res, jx, opts.Phi, 1-qj, false, opts.CompositionOnly)
		left := newBoundary(res, jx, opts.Phi, qj, true, opts.CompositionOnly)
		for _, sc := range extra {
			right.consider(sc.ID, sc.Score, sc.Proj[jx])
			left.consider(sc.ID, sc.Score, -sc.Proj[jx])
		}
		out[jx] = assembleRegions(q.Dims[jx], jx, qj, right, left)
	}
	return out
}
