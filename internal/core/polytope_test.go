package core_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/geom"
	"repro/internal/lists"
	"repro/internal/stb"
	"repro/internal/topk"
	"repro/internal/vec"
)

// rankedAtW computes the ranked top-k under an arbitrary weight vector
// (parallel to q.Dims).
func rankedAtW(tuples []vec.Sparse, q vec.Query, k int, w []float64) []int {
	q2 := q.Clone()
	copy(q2.Weights, w)
	res := topk.TopKNaive(tuples, q2, k)
	ids := make([]int, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	return ids
}

// TestValidityPolygonPreserves: points sampled strictly inside the
// polygon preserve the ranked result; points in the domain but clearly
// outside perturb it.
func TestValidityPolygonPreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 12; trial++ {
		cs := fixture.RandCase(rng, 40+rng.Intn(40), 4, 2, 1+rng.Intn(4))
		poly, err := core.ValidityPolygon2D(cs.Tuples, cs.Q, cs.K)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		qPt := geom.Point{X: cs.Q.Weights[0], Y: cs.Q.Weights[1]}
		if !geom.InConvexPolygon(qPt, poly) {
			t.Fatalf("trial %d: query point outside its own validity polygon", trial)
		}
		base := rankedAtW(cs.Tuples, cs.Q, cs.K, cs.Q.Weights)

		for s := 0; s < 40; s++ {
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			if p.X <= 0 || p.Y <= 0 {
				continue
			}
			got := rankedAtW(cs.Tuples, cs.Q, cs.K, []float64{p.X, p.Y})
			inside := geom.InConvexPolygon(p, poly)
			preserved := equalIDs(got, base)
			margin := geom.DistanceToBoundary(p, poly)
			if margin < 1e-7 {
				continue // too close to the boundary to trust either side
			}
			if inside && !preserved {
				t.Errorf("trial %d: point %v inside polygon but result changed", trial, p)
			}
			if !inside && preserved {
				t.Errorf("trial %d: point %v outside polygon but result preserved", trial, p)
			}
		}
	}
}

// TestAxisProjectionsOnBoundary: the immutable-region endpoints are the
// axis-parallel projections of q onto the validity boundary (Fig. 3) —
// each perturbation-backed endpoint must lie on the polygon boundary.
func TestAxisProjectionsOnBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	for trial := 0; trial < 12; trial++ {
		cs := fixture.RandCase(rng, 50, 4, 2, 2)
		poly, err := core.ValidityPolygon2D(cs.Tuples, cs.Q, cs.K)
		if err != nil {
			t.Fatal(err)
		}
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
		out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT})
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range out.Regions {
			check := func(dev float64, backed bool) {
				if !backed {
					return // domain-edge bound: not on a constraint face
				}
				w := append([]float64(nil), cs.Q.Weights...)
				w[reg.QPos] += dev
				p := geom.Point{X: w[0], Y: w[1]}
				if d := geom.DistanceToBoundary(p, poly); d > 1e-9 {
					t.Errorf("trial %d dim %d: endpoint %v is %.2g from the boundary", trial, reg.Dim, p, d)
				}
			}
			check(reg.Lo, len(reg.Left) > 0)
			check(reg.Hi, len(reg.Right) > 0)
		}
	}
}

// TestFootnote1HullInsidePolygon: the convex hull of the axis
// projections lies fully inside the validity polygon — the paper's
// footnote-1 claim, verified exactly in 2-D.
func TestFootnote1HullInsidePolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 12; trial++ {
		cs := fixture.RandCase(rng, 60, 4, 2, 2)
		poly, err := core.ValidityPolygon2D(cs.Tuples, cs.Q, cs.K)
		if err != nil {
			t.Fatal(err)
		}
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
		out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT})
		if err != nil {
			t.Fatal(err)
		}
		proj := core.AxisProjections(cs.Q, out.Regions)
		var pts []geom.Point
		for _, w := range proj {
			pts = append(pts, geom.Point{X: w[0], Y: w[1]})
		}
		hull := geom.ConvexHull(pts)
		// Every hull vertex (and hence the hull) must be in the polygon.
		for _, p := range hull {
			if !geom.InConvexPolygon(p, poly) {
				t.Errorf("trial %d: hull vertex %v escapes the validity polygon", trial, p)
			}
		}
		// Sampled points of the hull interior as well.
		for s := 0; s < 20 && len(hull) >= 3; s++ {
			a, b, c := hull[rng.Intn(len(hull))], hull[rng.Intn(len(hull))], hull[rng.Intn(len(hull))]
			u, v := rng.Float64(), rng.Float64()
			if u+v > 1 {
				u, v = 1-u, 1-v
			}
			p := geom.Point{
				X: a.X + u*(b.X-a.X) + v*(c.X-a.X),
				Y: a.Y + u*(b.Y-a.Y) + v*(c.Y-a.Y),
			}
			if !geom.InConvexPolygon(p, poly) {
				t.Errorf("trial %d: hull interior point %v escapes the polygon", trial, p)
			}
		}
	}
}

// TestSafeConcurrentSufficiency: deviations passing SafeConcurrent must
// preserve the ranked result — across any qlen, verified by re-querying.
func TestSafeConcurrentSufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	for trial := 0; trial < 15; trial++ {
		qlen := 2 + rng.Intn(3)
		cs := fixture.RandCase(rng, 50+rng.Intn(30), 5, qlen, 1+rng.Intn(4))
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
		out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT})
		if err != nil {
			t.Fatal(err)
		}
		base := out.RankedIDs()
		for s := 0; s < 30; s++ {
			devs := make([]float64, qlen)
			for i, reg := range out.Regions {
				if rng.Float64() < 0.5 {
					devs[i] = reg.Hi * rng.Float64()
				} else {
					devs[i] = reg.Lo * rng.Float64()
				}
			}
			safe, err := core.SafeConcurrent(out.Regions, devs)
			if err != nil {
				t.Fatal(err)
			}
			if !safe {
				continue
			}
			w := append([]float64(nil), cs.Q.Weights...)
			for i := range w {
				w[i] += devs[i]
			}
			if got := rankedAtW(cs.Tuples, cs.Q, cs.K, w); !equalIDs(got, base) {
				t.Errorf("trial %d: SafeConcurrent approved %v but result changed (%v vs %v)", trial, devs, got, base)
			}
		}
	}
}

// TestSafeConcurrentRejections covers the unsafe branches.
func TestSafeConcurrentRejections(t *testing.T) {
	regions := []core.Regions{
		{Lo: -0.2, Hi: 0.1},
		{Lo: -0.1, Hi: 0.3},
	}
	if _, err := core.SafeConcurrent(regions, []float64{0.1}); err == nil {
		t.Error("length mismatch accepted")
	}
	safe, _ := core.SafeConcurrent(regions, []float64{0.05, 0.15})
	if !safe {
		t.Error("half extents in both dims should be safe (0.5+0.5=1)")
	}
	safe, _ = core.SafeConcurrent(regions, []float64{0.09, 0.27})
	if safe {
		t.Error("0.9+0.9 of the extents exceeds the cross-polytope")
	}
	// Zero extent blocks that direction entirely.
	safe, _ = core.SafeConcurrent([]core.Regions{{Lo: -0.2, Hi: 0}}, []float64{0.01})
	if safe {
		t.Error("movement into a zero extent accepted")
	}
	safe, _ = core.SafeConcurrent([]core.Regions{{Lo: 0, Hi: 0.2}}, []float64{-0.01})
	if safe {
		t.Error("movement into a zero negative extent accepted")
	}
	// The zero vector is always safe.
	safe, _ = core.SafeConcurrent(regions, []float64{0, 0})
	if !safe {
		t.Error("zero deviation rejected")
	}
}

// TestValidityPolygonVsSTB: the STB ball B(q, ρ), clipped to the weight
// domain, must sit inside the validity polygon (ρ is the distance from q
// to the nearest constraint hyperplane).
func TestValidityPolygonVsSTB(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 10; trial++ {
		cs := fixture.RandCase(rng, 60, 4, 2, 2)
		poly, err := core.ValidityPolygon2D(cs.Tuples, cs.Q, cs.K)
		if err != nil {
			t.Fatal(err)
		}
		res := stb.Radius(cs.Tuples, cs.Q, cs.K)
		if math.IsInf(res.Rho, 1) {
			continue
		}
		for s := 0; s < 24; s++ {
			ang := 2 * math.Pi * float64(s) / 24
			p := geom.Point{
				X: cs.Q.Weights[0] + 0.999*res.Rho*math.Cos(ang),
				Y: cs.Q.Weights[1] + 0.999*res.Rho*math.Sin(ang),
			}
			if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
				continue
			}
			if !geom.InConvexPolygon(p, poly) {
				t.Errorf("trial %d: ball point %v (ρ=%v) outside validity polygon", trial, p, res.Rho)
			}
		}
	}
}

// TestValidityPolygonErrors covers the qlen guard.
func TestValidityPolygonErrors(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	q3 := vec.MustQuery([]int{0, 1}, []float64{0.5, 0.5})
	if _, err := core.ValidityPolygon2D(tuples, q3, 2); err != nil {
		t.Fatalf("qlen=2 rejected: %v", err)
	}
	q1 := vec.MustQuery([]int{0}, []float64{0.5})
	if _, err := core.ValidityPolygon2D(tuples, q1, 2); err == nil {
		t.Fatal("qlen=1 accepted")
	}
}
