package core

import "testing"

// TestEvalTableModes drives the dense and sparse evaluation memos
// through the same sequence: put/get/contains, per-dimension reset, and
// pool return (the sparse fallback only triggers beyond evalDenseMax
// tuples, which no dataset-backed test reaches).
func TestEvalTableModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"dense", 100},
		{"sparse", evalDenseMax + 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tab := getEvalTable(tc.n)
			if (tab.sparse != nil) != (tc.n > evalDenseMax) {
				t.Fatalf("mode mismatch for n=%d", tc.n)
			}
			tab.reset()
			if tab.contains(7) {
				t.Fatal("fresh table contains 7")
			}
			p := []float64{0.5, 0.25}
			tab.put(7, p)
			if got, ok := tab.get(7); !ok || &got[0] != &p[0] {
				t.Fatal("get after put failed")
			}
			if !tab.contains(7) || tab.contains(8) {
				t.Fatal("contains wrong")
			}
			tab.reset() // next dimension: everything forgotten
			if tab.contains(7) {
				t.Fatal("reset did not clear")
			}
			tab.put(9, p)
			putEvalTable(tab)
			if tab.sparse == nil && tab.proj[9] != nil {
				t.Fatal("pool return kept projection pointer alive")
			}
		})
	}
}

// TestEvalTableEpochWrap: a wrapped epoch counter must not resurrect
// entries from 4Gi resets ago.
func TestEvalTableEpochWrap(t *testing.T) {
	tab := &evalTable{proj: make([][]float64, 4), mark: make([]uint32, 4)}
	tab.epoch = ^uint32(0) - 1
	tab.reset()
	tab.put(2, []float64{1})
	tab.reset() // wraps to 0 → forced to 1 with marks cleared
	if tab.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", tab.epoch)
	}
	if tab.contains(2) {
		t.Fatal("entry survived epoch wrap")
	}
}
