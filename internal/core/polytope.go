package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/topk"
	"repro/internal/vec"
)

// This file implements the query-vector-space view of result validity
// (the paper's Fig. 3 and footnote 1): the set of weight vectors w for
// which the ranked top-k of the current query is preserved is the
// intersection of half-spaces
//
//	w · (d_α − d_{α+1}) ≥ 0   for consecutive result pairs, and
//	w · (d_k − d_β)     ≥ 0   for the k-th result tuple vs every
//	                          non-result tuple,
//
// clipped to the weight domain. In two dimensions the polygon is cheap
// to build exactly; in higher dimensions §2 notes the complexity is
// Ω(n^⌈m/2⌉), which is why the paper (and this library) isolates one
// dimension at a time — footnote 1 then observes that the cross-polytope
// spanned by the per-dimension immutable-region endpoints is a safe
// region for *concurrent* weight modifications.

// ValidityPolygon2D computes the exact preservation polygon of a
// two-dimensional query over the weight domain [0,1]², by brute force
// over all tuples (the construction of Fig. 3, with the same cost
// profile the paper criticizes: every non-result tuple contributes a
// half-plane). The polygon is counter-clockwise and contains the query's
// weight vector.
func ValidityPolygon2D(tuples []vec.Sparse, q vec.Query, k int) ([]geom.Point, error) {
	if q.Len() != 2 {
		return nil, fmt.Errorf("core: ValidityPolygon2D needs qlen=2, have %d", q.Len())
	}
	ranked := topk.TopKNaive(tuples, q, len(tuples))
	if k > len(ranked) {
		k = len(ranked)
	}
	var hs []geom.Halfplane
	add := func(above, below topk.Scored) {
		// Preserve w·above ≥ w·below ⇔ (below − above)·w ≤ 0.
		hs = append(hs, geom.Halfplane{
			A: below.Proj[0] - above.Proj[0],
			B: below.Proj[1] - above.Proj[1],
			C: 0,
		})
	}
	for a := 0; a+1 < k; a++ {
		add(ranked[a], ranked[a+1])
	}
	dk := ranked[k-1]
	for _, cand := range ranked[k:] {
		add(dk, cand)
	}
	poly := geom.IntersectHalfplanes(hs, 0, 0, 1, 1)
	if len(poly) == 0 {
		return nil, fmt.Errorf("core: empty validity polygon (degenerate ties at rank k?)")
	}
	return poly, nil
}

// AxisProjections returns, for each query dimension, the two points
// where the immutable-region bounds touch the validity boundary in
// weight space (the red crosses of Fig. 3): the query vector with qj
// shifted to qj+lj and to qj+uj. Points are expressed in the query
// subspace, parallel to q.Dims.
func AxisProjections(q vec.Query, regions []Regions) [][]float64 {
	var out [][]float64
	for _, reg := range regions {
		for _, dev := range []float64{reg.Lo, reg.Hi} {
			w := append([]float64(nil), q.Weights...)
			w[reg.QPos] += dev
			out = append(out, w)
		}
	}
	return out
}

// SafeConcurrent reports whether shifting all weights simultaneously by
// devs (parallel to q.Dims) is guaranteed to preserve the ranked result.
// It implements footnote 1: the convex hull of the axis projections —
// the cross-polytope with semi-axes (lj, uj) — lies fully inside the
// validity polyhedron, so any deviation vector with
//
//	Σ_j  |devs_j| / extent_j(sign)  ≤ 1
//
// is safe. extent is uj for a positive component and |lj| for a negative
// one. A zero extent with a non-zero component in that direction is
// unsafe. The test is sufficient, not necessary: deviations outside the
// cross-polytope may still preserve the result (they are simply not
// guaranteed to).
func SafeConcurrent(regions []Regions, devs []float64) (bool, error) {
	if len(devs) != len(regions) {
		return false, fmt.Errorf("core: %d deviations for %d query dimensions", len(devs), len(regions))
	}
	sum := 0.0
	for i, reg := range regions {
		d := devs[i]
		switch {
		case d == 0:
			continue
		case d > 0:
			if reg.Hi <= 0 {
				return false, nil
			}
			sum += d / reg.Hi
		default:
			if reg.Lo >= 0 {
				return false, nil
			}
			sum += d / reg.Lo // both negative: positive ratio
		}
	}
	return sum <= 1, nil
}
