package core_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
)

const eps = 1e-12

// runExample executes one configuration on the paper's running example.
func runExample(t *testing.T, opts core.Options) *core.Output {
	t.Helper()
	tuples, q, k := fixture.RunningExample()
	ix := lists.NewMemIndex(tuples, 2)
	ta := topk.New(ix, q, k, topk.RoundRobin)
	out, err := core.Compute(context.Background(), ta, opts)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return out
}

// TestRunningExampleRegions reproduces Fig. 1/5: IR1 = (−16/35, 0.1),
// IR2 = (−1/18, 0.5), for every method and both algorithm paths.
func TestRunningExampleRegions(t *testing.T) {
	for _, method := range core.Methods {
		for _, force := range []bool{false, true} {
			out := runExample(t, core.Options{Method: method, ForceEnvelope: force})
			if got := out.RankedIDs(); len(got) != 2 || got[0] != 1 || got[1] != 0 {
				t.Fatalf("%v force=%v: result %v, want [1 0]", method, force, got)
			}
			r1, r2 := out.Regions[0], out.Regions[1]
			if math.Abs(r1.Lo-(-16.0/35)) > eps || math.Abs(r1.Hi-0.1) > eps {
				t.Errorf("%v force=%v: IR1 = (%v, %v), want (-16/35, 0.1)", method, force, r1.Lo, r1.Hi)
			}
			if math.Abs(r2.Lo-(-1.0/18)) > eps || math.Abs(r2.Hi-0.5) > eps {
				t.Errorf("%v force=%v: IR2 = (%v, %v), want (-1/18, 0.5)", method, force, r2.Lo, r2.Hi)
			}
			// The perturbations at the inner bounds (Fig. 1 discussion):
			// at +0.1 d1 overtakes d2 (reorder); at −16/35 d3 enters over d1.
			if len(r1.Right) == 0 || r1.Right[0].Above != 1 || r1.Right[0].Below != 0 || r1.Right[0].Entry {
				t.Errorf("%v force=%v: IR1 right perturbation %+v, want d1 over d2 reorder", method, force, r1.Right)
			}
			if len(r1.Left) == 0 || r1.Left[0].Above != 0 || r1.Left[0].Below != 2 || !r1.Left[0].Entry {
				t.Errorf("%v force=%v: IR1 left perturbation %+v, want d3 enters over d1", method, force, r1.Left)
			}
			// IR2's upper bound is the weight-domain edge: no perturbation.
			if len(r2.Right) != 0 {
				t.Errorf("%v force=%v: IR2 right should reach the domain edge, got %+v", method, force, r2.Right)
			}
			if len(r2.Left) == 0 || r2.Left[0].Above != 1 || r2.Left[0].Below != 0 || r2.Left[0].Entry {
				t.Errorf("%v force=%v: IR2 left perturbation %+v, want d1 over d2 reorder", method, force, r2.Left)
			}
		}
	}
}

// TestRunningExamplePhi1 checks the φ=1 discussion of §1: on dimension 1
// the regions to the left of q1 are bounded by the entry of d3 at −16/35
// and the reordering of d3 over d2 at −0.55; to the right by the
// reordering at +0.1 and then the domain edge q1 → 1.
func TestRunningExamplePhi1(t *testing.T) {
	for _, method := range core.Methods {
		for _, iterative := range []bool{false, true} {
			out := runExample(t, core.Options{Method: method, Phi: 1, Iterative: iterative})
			r1 := out.Regions[0]
			if len(r1.Right) != 1 {
				t.Fatalf("%v iter=%v: right events %+v, want exactly 1 (then domain edge)", method, iterative, r1.Right)
			}
			if math.Abs(r1.Right[0].Delta-0.1) > eps {
				t.Errorf("%v iter=%v: first right perturbation at %v, want 0.1", method, iterative, r1.Right[0].Delta)
			}
			if len(r1.Left) != 2 {
				t.Fatalf("%v iter=%v: left events %+v, want 2", method, iterative, r1.Left)
			}
			if math.Abs(r1.Left[0].Delta-(-16.0/35)) > eps || math.Abs(r1.Left[1].Delta-(-0.55)) > eps {
				t.Errorf("%v iter=%v: left perturbations at %v, %v; want -16/35, -0.55",
					method, iterative, r1.Left[0].Delta, r1.Left[1].Delta)
			}
			if !r1.Left[0].Entry || r1.Left[1].Entry {
				t.Errorf("%v iter=%v: left entry flags %+v, want entry then reorder", method, iterative, r1.Left)
			}
			if r1.Left[1].Above != 1 || r1.Left[1].Below != 2 {
				t.Errorf("%v iter=%v: second left perturbation %+v, want d3 over d2", method, iterative, r1.Left[1])
			}
		}
	}
}

// TestRunningExampleResultAfter replays perturbations: per §1, left of
// −16/35 the result is [d2, d3], and past −0.55 it becomes [d3, d2].
func TestRunningExampleResultAfter(t *testing.T) {
	out := runExample(t, core.Options{Method: core.MethodCPT, Phi: 1})
	base := out.RankedIDs()
	r1 := out.Regions[0]

	got, err := r1.ResultAfter(base, false, 0)
	if err != nil {
		t.Fatalf("ResultAfter(left,0): %v", err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("result past -16/35 = %v, want [1 2] (d2, d3)", got)
	}
	got, err = r1.ResultAfter(base, false, 1)
	if err != nil {
		t.Fatalf("ResultAfter(left,1): %v", err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("result past -0.55 = %v, want [2 1] (d3, d2)", got)
	}
	got, err = r1.ResultAfter(base, true, 0)
	if err != nil {
		t.Fatalf("ResultAfter(right,0): %v", err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("result past +0.1 = %v, want [0 1] (d1, d2)", got)
	}
}

// TestRunningExampleCompositionOnly verifies §7.4 semantics: reorderings
// within R(q) are ignored, so IR1's upper bound extends to the domain
// edge (the reorder at +0.1 no longer counts) while the lower bound is
// still the entry of d3.
func TestRunningExampleCompositionOnly(t *testing.T) {
	for _, method := range core.Methods {
		for _, force := range []bool{false, true} {
			out := runExample(t, core.Options{Method: method, CompositionOnly: true, ForceEnvelope: force})
			r1 := out.Regions[0]
			if math.Abs(r1.Hi-0.2) > eps {
				t.Errorf("%v force=%v: composition-only IR1 upper = %v, want 0.2 (domain edge)", method, force, r1.Hi)
			}
			if math.Abs(r1.Lo-(-16.0/35)) > eps {
				t.Errorf("%v force=%v: composition-only IR1 lower = %v, want -16/35", method, force, r1.Lo)
			}
		}
	}
}

// TestRunningExampleMetrics sanity-checks the metering: Scan evaluates at
// least as many candidates as CPT, and CPT's count is positive.
func TestRunningExampleMetrics(t *testing.T) {
	scan := runExample(t, core.Options{Method: core.MethodScan})
	cpt := runExample(t, core.Options{Method: core.MethodCPT})
	if scan.Metrics.Evaluated < cpt.Metrics.Evaluated {
		t.Errorf("Scan evaluated %d < CPT %d", scan.Metrics.Evaluated, cpt.Metrics.Evaluated)
	}
	if cpt.Metrics.Evaluated <= 0 {
		t.Errorf("CPT evaluated %d, want > 0", cpt.Metrics.Evaluated)
	}
	if scan.Metrics.RandReads <= 0 {
		t.Errorf("Scan random reads %d, want > 0", scan.Metrics.RandReads)
	}
}
