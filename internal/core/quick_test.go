package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
)

// TestQuickLemma1 verifies Lemma 1 directly: for random tuple pairs with
// S(above) ≥ S(below), deviations strictly inside the returned bound
// preserve the order and deviations strictly beyond it flip the order.
func TestQuickLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	f := func() bool {
		aboveCoord := rng.Float64()
		belowCoord := rng.Float64()
		belowScore := rng.Float64()
		aboveScore := belowScore + rng.Float64() // above wins at δ=0

		scoreAt := func(s, c, d float64) float64 { return s + d*c }
		crit, kind := lemma1(aboveScore, aboveCoord, belowScore, belowCoord)
		switch kind {
		case 0:
			// Parallel: the gap never closes for any deviation.
			for _, d := range []float64{-1, -0.5, 0.5, 1} {
				if scoreAt(belowScore, belowCoord, d) > scoreAt(aboveScore, aboveCoord, d) {
					return false
				}
			}
			return true
		case +1:
			if crit < 0 {
				return false // above leads at δ=0, so the catch-up is at δ≥0
			}
			inside := crit * 0.99
			beyond := crit*1.01 + 1e-12
			return scoreAt(belowScore, belowCoord, inside) <= scoreAt(aboveScore, aboveCoord, inside) &&
				scoreAt(belowScore, belowCoord, beyond) >= scoreAt(aboveScore, aboveCoord, beyond)
		case -1:
			if crit > 0 {
				return false
			}
			inside := crit * 0.99
			beyond := crit*1.01 - 1e-12
			return scoreAt(belowScore, belowCoord, inside) <= scoreAt(aboveScore, aboveCoord, inside) &&
				scoreAt(belowScore, belowCoord, beyond) >= scoreAt(aboveScore, aboveCoord, beyond)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoundStateMonotone: applying constraints only ever narrows
// the interval, and the recorded perturbation always sits at the bound.
func TestQuickBoundStateMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	f := func() bool {
		b := &boundState{lo: -1, hi: 1}
		for i := 0; i < 50; i++ {
			crit := rng.Float64()*2 - 1
			kind := +1
			if crit < 0 {
				kind = -1
			}
			prevLo, prevHi := b.lo, b.hi
			b.apply(crit, kind, Perturbation{Above: i, Below: i + 1})
			if b.lo < prevLo || b.hi > prevHi {
				return false // widened
			}
			if b.lo > b.hi {
				return false // crossed over: impossible with crit sign split
			}
		}
		if b.rightP != nil && b.rightP.Delta != b.hi {
			return false
		}
		if b.leftP != nil && b.leftP.Delta != b.lo {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickApplyPerturbationReversible: an entry perturbation applied to
// a ranked list keeps length and replaces exactly the last element; a
// reorder is an adjacent transposition (applying it twice restores the
// list).
func TestQuickApplyPerturbationReversible(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	f := func() bool {
		n := 2 + rng.Intn(8)
		ranked := rng.Perm(n)
		orig := append([]int{}, ranked...)

		// Entry: new id replaces the last.
		entry := Perturbation{Above: ranked[n-1], Below: 1000, Entry: true}
		if err := applyPerturbation(ranked, entry); err != nil {
			return false
		}
		if ranked[n-1] != 1000 || len(ranked) != n {
			return false
		}
		copy(ranked, orig)

		// Reorder: swap an adjacent pair, twice = identity.
		i := rng.Intn(n - 1)
		re := Perturbation{Above: ranked[i], Below: ranked[i+1]}
		if err := applyPerturbation(ranked, re); err != nil {
			return false
		}
		back := Perturbation{Above: ranked[i], Below: ranked[i+1]}
		if err := applyPerturbation(ranked, back); err != nil {
			return false
		}
		for j := range orig {
			if ranked[j] != orig[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRegionsWellFormed: on random inputs, every computed region
// contains δ=0 (the current weights preserve their own result), stays
// within the weight domain, reports perturbations in the right order,
// and the footprint model returns a positive value.
func TestQuickRegionsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	f := func() bool {
		cs := fixture.RandCase(rng, 20+rng.Intn(40), 5, 2+rng.Intn(2), 1+rng.Intn(4))
		method := Methods[rng.Intn(len(Methods))]
		phi := rng.Intn(3)
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
		out, err := Compute(context.Background(), ta, Options{Method: method, Phi: phi})
		if err != nil {
			return false
		}
		if out.Metrics.MemBytes < 0 {
			return false
		}
		for _, reg := range out.Regions {
			qj := cs.Q.Weights[reg.QPos]
			if reg.Lo > 0 || reg.Hi < 0 {
				return false // δ=0 must be inside
			}
			if reg.Lo < -qj-1e-12 || reg.Hi > 1-qj+1e-12 {
				return false // outside the weight domain
			}
			prev := 0.0
			for _, p := range reg.Right {
				if p.Delta < prev-1e-12 {
					return false // right events must ascend
				}
				prev = p.Delta
			}
			prev = 0.0
			for _, p := range reg.Left {
				if p.Delta > prev+1e-12 {
					return false // left events must descend
				}
				prev = p.Delta
			}
			if len(reg.Right) > phi+1 || len(reg.Left) > phi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
