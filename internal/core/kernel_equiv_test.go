package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/vec"
)

// TestCrossSafeMatchesSafeConcurrent pins the flat-column kernel the
// engine cache uses (vec.CrossSafe) to the struct-walking reference
// vertex check (core.SafeConcurrent): identical verdicts on random
// extents and deviations, including degenerate zero extents and exact
// boundary points. This is the bridge that lets the cache store
// flattened lo/hi columns without re-deriving the footnote-1 semantics.
func TestCrossSafeMatchesSafeConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 5000; trial++ {
		qlen := 1 + rng.Intn(12)
		regions := make([]core.Regions, qlen)
		lo := make([]float64, qlen)
		hi := make([]float64, qlen)
		for j := range regions {
			l, h := -rng.Float64(), rng.Float64()
			switch rng.Intn(6) {
			case 0:
				l = 0 // degenerate: no slack on the negative side
			case 1:
				h = 0
			}
			regions[j] = core.Regions{Dim: j, QPos: j, Lo: l, Hi: h}
			lo[j], hi[j] = l, h
		}
		devs := make([]float64, qlen)
		for j := range devs {
			switch rng.Intn(5) {
			case 0:
				devs[j] = 0
			case 1:
				devs[j] = hi[j] // exact boundary on one axis
			case 2:
				devs[j] = lo[j]
			case 3:
				devs[j] = math.Nextafter(hi[j], math.Inf(1))
			default:
				devs[j] = rng.Float64()*0.6 - 0.3
			}
		}
		want, err := core.SafeConcurrent(regions, devs)
		if err != nil {
			t.Fatal(err)
		}
		if got := vec.CrossSafe(lo, hi, devs); got != want {
			t.Fatalf("trial %d: CrossSafe=%v SafeConcurrent=%v (lo=%v hi=%v devs=%v)",
				trial, got, want, lo, hi, devs)
		}
	}
}
