package core

import (
	"repro/internal/geom"
	"repro/internal/topk"
	"repro/internal/vec"
)

// ExactRegions is the brute-force ground truth: it sweeps the score lines
// of every tuple in the dataset (no index, no pruning, no thresholding)
// and reports, per query dimension, the first phi+1 perturbations of the
// ranked top-k on each side. It is O(qlen · n² log n) and exists to
// validate the algorithms; general position (no score ties at rank k) is
// assumed, which holds almost surely for random real-valued data.
func ExactRegions(tuples []vec.Sparse, q vec.Query, k, phi int, compOnly bool) []Regions {
	res := topk.TopKNaive(tuples, q, len(tuples))
	if k > len(res) {
		k = len(res)
	}
	var out []Regions
	for jx := range q.Dims {
		qj := q.Weights[jx]
		right := exactSide(res, jx, k, phi, 1-qj, false, compOnly)
		left := exactSide(res, jx, k, phi, qj, true, compOnly)
		reg := Regions{Dim: q.Dims[jx], QPos: jx, Hi: 1 - qj, Lo: -qj}
		reg.Right = right
		if len(right) > 0 {
			reg.Hi = right[0].Delta
		}
		for _, p := range left {
			p.Delta = -p.Delta
			reg.Left = append(reg.Left, p)
		}
		if len(reg.Left) > 0 {
			reg.Lo = reg.Left[0].Delta
		}
		out = append(out, reg)
	}
	return out
}

// exactSide sweeps all tuple lines on one side and returns the first
// phi+1 perturbation events.
func exactSide(ranked []topk.Scored, jx, k, phi int, domainEnd float64, mirror, compOnly bool) []Perturbation {
	lines := make([]geom.Line, len(ranked))
	for i, r := range ranked {
		coord := r.Proj[jx]
		if mirror {
			coord = -coord
		}
		lines[i] = geom.Line{A: r.Score, B: coord, ID: r.ID}
	}
	sw := geom.NewSweep(lines, 0, domainEnd)
	var events []Perturbation
	for len(events) < phi+1 {
		cr, ok := sw.Next()
		if !ok {
			break
		}
		if cr.RankAbove > k-1 {
			continue
		}
		entry := cr.RankAbove == k-1
		if compOnly && !entry {
			continue
		}
		events = append(events, Perturbation{
			Delta: cr.X,
			Above: lines[cr.I].ID,
			Below: lines[cr.J].ID,
			Entry: entry,
		})
	}
	return events
}

// RankedAt computes the exact ranked top-k at deviation delta of query
// dimension jx — the direct (re-query) oracle used to verify that
// results really are preserved inside regions and really change past
// their bounds.
func RankedAt(tuples []vec.Sparse, q vec.Query, k, jx int, delta float64) []int {
	q2 := q.Adjust(q.Dims[jx], delta)
	res := topk.TopKNaive(tuples, q2, k)
	ids := make([]int, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	return ids
}
