package core_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
)

// compareRegions asserts that got matches the oracle's regions exactly
// (identical floating-point inputs make the bound values identical up to
// a tiny tolerance; perturbation identities must match exactly).
func compareRegions(t *testing.T, label string, got, want []core.Regions) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d regions, want %d", label, len(got), len(want))
	}
	const tol = 1e-9
	for i := range want {
		g, w := got[i], want[i]
		if g.Dim != w.Dim {
			t.Fatalf("%s dim %d: dim id %d, want %d", label, i, g.Dim, w.Dim)
		}
		if math.Abs(g.Lo-w.Lo) > tol || math.Abs(g.Hi-w.Hi) > tol {
			t.Errorf("%s dim %d: region (%.12g, %.12g), want (%.12g, %.12g)", label, g.Dim, g.Lo, g.Hi, w.Lo, w.Hi)
		}
		comparePerts(t, fmt.Sprintf("%s dim %d right", label, g.Dim), g.Right, w.Right)
		comparePerts(t, fmt.Sprintf("%s dim %d left", label, g.Dim), g.Left, w.Left)
	}
}

func comparePerts(t *testing.T, label string, got, want []core.Perturbation) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d perturbations, want %d (%+v vs %+v)", label, len(got), len(want), got, want)
		return
	}
	const tol = 1e-9
	for i := range want {
		g, w := got[i], want[i]
		if math.Abs(g.Delta-w.Delta) > tol || g.Above != w.Above || g.Below != w.Below || g.Entry != w.Entry {
			t.Errorf("%s[%d]: %+v, want %+v", label, i, g, w)
		}
	}
}

// TestMethodsMatchOracle is the central cross-validation: on randomized
// general-position datasets, every method (Scan/Prune/Thres/CPT), both
// algorithm paths (classic φ=0 and envelope), the iterative mode and the
// composition-only variant must reproduce the brute-force ground truth
// exactly — bounds and perturbation identities alike.
func TestMethodsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 30 + rng.Intn(60)
		m := 4 + rng.Intn(5)
		qlen := 2 + rng.Intn(3)
		k := 1 + rng.Intn(5)
		cs := fixture.RandCase(rng, n, m, qlen, k)
		for phi := 0; phi <= 3; phi++ {
			for _, compOnly := range []bool{false, true} {
				want := core.ExactRegions(cs.Tuples, cs.Q, cs.K, phi, compOnly)
				for _, method := range core.Methods {
					variants := []core.Options{
						{Method: method, Phi: phi, CompositionOnly: compOnly},
					}
					if phi == 0 {
						variants = append(variants, core.Options{Method: method, Phi: phi, CompositionOnly: compOnly, ForceEnvelope: true})
					} else {
						variants = append(variants, core.Options{Method: method, Phi: phi, CompositionOnly: compOnly, Iterative: true})
					}
					for _, opts := range variants {
						ix := lists.NewMemIndex(cs.Tuples, cs.M)
						ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
						out, err := core.Compute(context.Background(), ta, opts)
						if err != nil {
							t.Fatalf("trial %d: Compute: %v", trial, err)
						}
						label := fmt.Sprintf("trial=%d n=%d qlen=%d k=%d phi=%d comp=%v %v force=%v iter=%v",
							trial, n, qlen, k, phi, compOnly, method, opts.ForceEnvelope, opts.Iterative)
						compareRegions(t, label, out.Regions, want)
					}
				}
			}
		}
	}
}

// TestRegionsPreserveResult samples deviations strictly inside each φ=0
// region and verifies by direct re-querying that the ranked result is
// unchanged, and that it does change just past each perturbation bound.
func TestRegionsPreserveResult(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		cs := fixture.RandCase(rng, 40+rng.Intn(40), 5, 3, 1+rng.Intn(4))
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
		out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT})
		if err != nil {
			t.Fatal(err)
		}
		base := out.RankedIDs()
		for _, reg := range out.Regions {
			jx := reg.QPos
			for _, frac := range []float64{0.05, 0.5, 0.95} {
				for _, delta := range []float64{reg.Lo * frac, reg.Hi * frac} {
					got := core.RankedAt(cs.Tuples, cs.Q, cs.K, jx, delta)
					if !equalIDs(got, base) {
						t.Errorf("trial %d dim %d: result at δ=%v is %v, want preserved %v (region %v..%v)",
							trial, reg.Dim, delta, got, base, reg.Lo, reg.Hi)
					}
				}
			}
			// Just past a perturbation bound the result must differ.
			const step = 1e-7
			if len(reg.Right) > 0 && reg.Hi+step < 1-cs.Q.Weights[jx] {
				got := core.RankedAt(cs.Tuples, cs.Q, cs.K, jx, reg.Hi+step)
				if equalIDs(got, base) {
					t.Errorf("trial %d dim %d: result unchanged past upper bound %v", trial, reg.Dim, reg.Hi)
				}
			}
			if len(reg.Left) > 0 && reg.Lo-step > -cs.Q.Weights[jx] {
				got := core.RankedAt(cs.Tuples, cs.Q, cs.K, jx, reg.Lo-step)
				if equalIDs(got, base) {
					t.Errorf("trial %d dim %d: result unchanged past lower bound %v", trial, reg.Dim, reg.Lo)
				}
			}
		}
	}
}

// TestResultAfterMatchesRequery replays the reported perturbations region
// by region (φ=2) and checks each reconstructed ranked list against a
// direct re-query at a deviation inside that region.
func TestResultAfterMatchesRequery(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 15; trial++ {
		cs := fixture.RandCase(rng, 50+rng.Intn(30), 5, 3, 2+rng.Intn(3))
		ix := lists.NewMemIndex(cs.Tuples, cs.M)
		ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
		out, err := core.Compute(context.Background(), ta, core.Options{Method: core.MethodCPT, Phi: 2})
		if err != nil {
			t.Fatal(err)
		}
		base := out.RankedIDs()
		for _, reg := range out.Regions {
			jx := reg.QPos
			checkSide := func(side []core.Perturbation, right bool, domainEnd float64) {
				for i := range side {
					lo := side[i].Delta
					hi := domainEnd
					if i+1 < len(side) {
						hi = side[i+1].Delta
					} else if len(side) == 3 {
						// φ+1 events found: the region past the last one
						// may contain further, untracked perturbations.
						continue
					}
					mid := (lo + hi) / 2
					if math.Abs(hi-lo) < 1e-9 {
						continue // degenerate sliver; midpoint unreliable
					}
					want := core.RankedAt(cs.Tuples, cs.Q, cs.K, jx, mid)
					got, err := reg.ResultAfter(base, right, i)
					if err != nil {
						t.Errorf("trial %d dim %d side right=%v i=%d: %v", trial, reg.Dim, right, i, err)
						continue
					}
					if !equalIDs(got, want) {
						t.Errorf("trial %d dim %d right=%v region %d: replay %v, requery %v", trial, reg.Dim, right, i, got, want)
					}
				}
			}
			checkSide(reg.Right, true, 1-cs.Q.Weights[jx])
			checkSide(reg.Left, false, -cs.Q.Weights[jx])
		}
	}
}

// TestEvaluationOrdering confirms the paper's efficiency claims hold as
// invariants: pruning and thresholding never evaluate more candidates
// than the baseline, and CPT never more than Prune or Thres alone.
func TestEvaluationOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 10; trial++ {
		cs := fixture.RandCase(rng, 80, 6, 3, 5)
		counts := map[core.Method]int{}
		for _, method := range core.Methods {
			ix := lists.NewMemIndex(cs.Tuples, cs.M)
			ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
			out, err := core.Compute(context.Background(), ta, core.Options{Method: method})
			if err != nil {
				t.Fatal(err)
			}
			counts[method] = out.Metrics.Evaluated
		}
		if counts[core.MethodPrune] > counts[core.MethodScan] {
			t.Errorf("trial %d: Prune evaluated %d > Scan %d", trial, counts[core.MethodPrune], counts[core.MethodScan])
		}
		if counts[core.MethodThres] > counts[core.MethodScan] {
			t.Errorf("trial %d: Thres evaluated %d > Scan %d", trial, counts[core.MethodThres], counts[core.MethodScan])
		}
		if counts[core.MethodCPT] > counts[core.MethodPrune] {
			t.Errorf("trial %d: CPT evaluated %d > Prune %d", trial, counts[core.MethodCPT], counts[core.MethodPrune])
		}
	}
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
