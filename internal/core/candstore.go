package core

import (
	"sort"

	"repro/internal/topk"
)

// CandidateStore implements the on-the-fly pruning / memory optimization
// of §5.1 (end) and its φ>0 generalization: while TA executes, instead of
// retaining the whole candidate list it keeps
//
//   - every multi-dimensional candidate (non-zero in ≥ 2 query
//     dimensions — these are in CL of some dimension and can never be
//     pruned), and
//   - per query dimension, the φ+1 best single-dimension candidates.
//     For a singleton of dimension t, score = q_t · coordinate, so one
//     coordinate-ordered top list serves both roles: it is dimension t's
//     CH representative set and contributes to every other dimension's
//     top-scoring C0 representatives.
//
// The store reproduces exactly the candidate subsets Lemmas 2–4 allow
// the pruning methods to use, with memory O(|CL| + qlen·(φ+1)) instead
// of O(|C(q)|).
type CandidateStore struct {
	qlen, phi int
	multi     []topk.Scored
	singles   [][]topk.Scored // per query dim, descending coordinate, ≤ φ+1
}

// NewCandidateStore creates a store for a query of qlen dimensions and a
// perturbation budget of phi.
func NewCandidateStore(qlen, phi int) *CandidateStore {
	return &CandidateStore{qlen: qlen, phi: phi, singles: make([][]topk.Scored, qlen)}
}

// Add offers one encountered candidate to the store.
func (s *CandidateStore) Add(sc topk.Scored) {
	if sc.NonZero() >= 2 {
		s.multi = append(s.multi, sc)
		return
	}
	jx := trailingBit(sc.NZMask)
	if jx < 0 || jx >= s.qlen {
		return // no non-zero query coordinate: can never affect anything
	}
	lst := append(s.singles[jx], sc)
	sort.Slice(lst, func(i, j int) bool {
		if lst[i].Proj[jx] != lst[j].Proj[jx] {
			return lst[i].Proj[jx] > lst[j].Proj[jx]
		}
		return lst[i].ID < lst[j].ID
	})
	if len(lst) > s.phi+1 {
		lst = lst[:s.phi+1]
	}
	s.singles[jx] = lst
}

func prefix(s []topk.Scored, n int) []topk.Scored {
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

// trailingBit returns the index of the lowest set bit, or -1.
func trailingBit(m uint64) int {
	if m == 0 {
		return -1
	}
	i := 0
	for m&1 == 0 {
		m >>= 1
		i++
	}
	return i
}

// PrunedSet returns the candidates dimension jx's Phase 2 must examine
// under Lemmas 2–4 (both sides merged), in decreasing score order:
// all multi-dimensional candidates that are non-zero on jx (CL_jx), the
// φ+1 top-scoring candidates that are zero on jx (C0_jx side), and the
// φ+1 highest-coordinate singletons of jx (CH_jx side).
func (s *CandidateStore) PrunedSet(jx int) []topk.Scored {
	keep := s.phi + 1
	bit := uint64(1) << uint(jx)
	var out []topk.Scored
	var c0 []topk.Scored
	for _, sc := range s.multi {
		if sc.NZMask&bit != 0 {
			out = append(out, sc) // CL_jx
		} else {
			c0 = append(c0, sc) // multi-dimensional member of C0_jx
		}
	}
	// C0_jx also contains every singleton of the other dimensions.
	for t := 0; t < s.qlen; t++ {
		if t != jx {
			c0 = append(c0, s.singles[t]...)
		}
	}
	c0 = sortScoreDesc(c0)
	out = append(out, prefix(c0, keep)...)
	// CH_jx representatives: stored pre-sorted by coordinate.
	out = append(out, prefix(s.singles[jx], keep)...)
	return sortScoreDesc(out)
}

// Size reports how many candidates the store retains.
func (s *CandidateStore) Size() int {
	n := len(s.multi)
	for _, l := range s.singles {
		n += len(l)
	}
	return n
}

// Bytes models the store's footprint (16 bytes per retained entry, as in
// the paper's Fig. 10(d) accounting).
func (s *CandidateStore) Bytes() int64 { return int64(s.Size()) * 16 }
