package core

import (
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
)

// TestCandidateStoreMatchesFullList: the pruned candidate sets derived
// from the memory-optimized store must be exactly the sets Lemmas 2–4
// allow — i.e. identical to those computed from the full candidate list.
func TestCandidateStoreMatchesFullList(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		qlen := 2 + rng.Intn(3)
		cs := fixture.RandCase(rng, 60+rng.Intn(60), 6, qlen, 4)
		for phi := 0; phi <= 2; phi++ {
			ix := lists.NewMemIndex(cs.Tuples, cs.M)
			ta := topk.New(ix, cs.Q, cs.K, topk.BestList)
			ta.Run()

			store := NewCandidateStore(cs.Q.Len(), phi)
			for _, cd := range ta.Candidates() {
				store.Add(cd)
			}
			comp := &dimComputer{
				computer: &computer{ix: ix, q: ta.Query(), k: cs.K, n: ix.NumTuples(),
					opts: Options{Method: MethodCPT, Phi: phi}, res: ta.Result()},
				view: ta,
			}
			for jx := range cs.Q.Dims {
				want := comp.prunedSet(jx, phi)
				got := store.PrunedSet(jx)
				if !sameIDSet(got, want) {
					t.Fatalf("trial %d phi %d dim %d: store %v, full %v",
						trial, phi, jx, idsOf(got), idsOf(want))
				}
			}
			if store.Size() > len(ta.Candidates()) {
				t.Fatalf("trial %d: store retains %d > |C| = %d", trial, store.Size(), len(ta.Candidates()))
			}
			if store.Bytes() != int64(store.Size())*16 {
				t.Fatalf("Bytes() inconsistent with Size()")
			}
		}
	}
}

// sameIDSet compares as sets: the pruning lemmas fix which candidates may
// be examined, not the ordering of the merged list.
func sameIDSet(a, b []topk.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, x := range a {
		m[x.ID] = true
	}
	for _, x := range b {
		if !m[x.ID] {
			return false
		}
	}
	return true
}

func idsOf(s []topk.Scored) []int {
	out := make([]int, len(s))
	for i, x := range s {
		out[i] = x.ID
	}
	return out
}

// TestCandidateStoreBounded: the store's footprint must stay within
// |multi| + qlen·(φ+1) regardless of how many singletons stream in.
func TestCandidateStoreBounded(t *testing.T) {
	store := NewCandidateStore(3, 1)
	for i := 0; i < 1000; i++ {
		store.Add(topk.Scored{ID: i, Score: float64(i), Proj: []float64{float64(i), 0, 0}, NZMask: 1})
	}
	if store.Size() != 2 { // φ+1 singletons of dimension 0
		t.Fatalf("store size %d, want 2", store.Size())
	}
	set := store.PrunedSet(0)
	// The two highest-coordinate singletons must have survived.
	if !containsID(set, 999) || !containsID(set, 998) {
		t.Fatalf("top singletons missing: %v", idsOf(set))
	}
	// For another dimension they are C0 material, ranked by score.
	set1 := store.PrunedSet(1)
	if !containsID(set1, 999) || !containsID(set1, 998) {
		t.Fatalf("C0 representatives missing: %v", idsOf(set1))
	}
}

func containsID(s []topk.Scored, id int) bool {
	for _, x := range s {
		if x.ID == id {
			return true
		}
	}
	return false
}

// TestTrailingBit covers the mask helper.
func TestTrailingBit(t *testing.T) {
	cases := map[uint64]int{0: -1, 1: 0, 2: 1, 8: 3, 0b1010: 1}
	for m, want := range cases {
		if got := trailingBit(m); got != want {
			t.Errorf("trailingBit(%b) = %d, want %d", m, got, want)
		}
	}
}
