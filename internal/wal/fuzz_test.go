package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vec"
)

// FuzzDecodeRecord feeds arbitrary bytes through the frame decoder the
// replication follower trusts at the wire. Properties: never panic,
// never over-allocate on a corrupt count, and — because the encoding
// is deterministic (followers' logs must end up byte-identical to the
// primary's) — every frame that decodes must re-encode to exactly the
// input bytes.
func FuzzDecodeRecord(f *testing.F) {
	seedOps := [][]Op{
		nil,
		{{Kind: OpInsert, ID: 7, Tuple: vec.Sparse{{Dim: 0, Val: 0.5}, {Dim: 3, Val: 0.25}}}},
		{{Kind: OpDelete, ID: 42}},
		{
			{Kind: OpUpdate, ID: 1, Tuple: vec.Sparse{{Dim: 2, Val: 0.125}}},
			{Kind: OpInsert, ID: 2, Tuple: vec.Sparse{{Dim: 1, Val: 1}}},
		},
	}
	for i, ops := range seedOps {
		frame, err := EncodeRecord(uint64(i+1), ops)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		// A corrupted variant of each seed, so the mutator starts from
		// near-valid frames on both sides of the CRC check.
		bad := bytes.Clone(frame)
		bad[len(bad)-1] ^= 0xff
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		seq, ops, err := DecodeRecord(frame)
		if err != nil {
			return
		}
		re, err := EncodeRecord(seq, ops)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, frame) {
			t.Fatalf("decode/encode round trip is not byte-identical:\n in: %x\nout: %x", frame, re)
		}
	})
}

// FuzzReplay writes arbitrary bytes as a wal.log and runs the
// recovery-path scanner over it. Crash recovery must never panic on
// any log state a torn write could leave behind; a corrupt or torn
// tail is reported through ReplayResult/error, not a crash. Inspect
// shares the scanner and must agree with Replay on the record count.
func FuzzReplay(f *testing.F) {
	valid, err := EncodeRecord(1, []Op{{Kind: OpInsert, ID: 3, Tuple: vec.Sparse{{Dim: 0, Val: 0.75}}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(bytes.Clone(valid), valid[:len(valid)-5]...)) // torn second record
	f.Add(append(bytes.Clone(valid), make([]byte, 64)...))     // zero tail
	f.Fuzz(func(t *testing.T, log []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, log, 0o644); err != nil {
			t.Fatal(err)
		}
		records := 0
		res, err := Replay(path, 0, func(seq uint64, ops []Op) error {
			records++
			return nil
		})
		if err != nil {
			return
		}
		if res.Records != records {
			t.Fatalf("ReplayResult.Records=%d but apply ran %d times", res.Records, records)
		}
		info, err := Inspect(path)
		if err != nil {
			t.Fatalf("Replay accepted the log but Inspect rejected it: %v", err)
		}
		if info.Records != records {
			t.Fatalf("Inspect.Records=%d, Replay saw %d", info.Records, records)
		}
	})
}
