package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// DirLock is an exclusive advisory lock on a data directory's writer
// role. Two writers appending to (or checkpointing) the same wal.log
// would interleave frames at overlapping offsets and corrupt the log
// beyond recovery, so a durable engine takes this lock before it reads
// the manifest and holds it until Close. The lock is flock-based: a
// crashed process releases it automatically with its file descriptors.
type DirLock struct {
	f *os.File
}

// AcquireDirLock takes the writer lock of dir without blocking; a held
// lock is an error naming the lock file so the operator can find the
// other process.
func AcquireDirLock(dir string) (*DirLock, error) {
	path := filepath.Join(dir, LockName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("wal: %s is locked — another writer is serving this directory", path)
		}
		return nil, fmt.Errorf("wal: lock %s: %w", path, err)
	}
	return &DirLock{f: f}, nil
}

// Release drops the lock. Safe to call once; the lock also dies with
// the process.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return f.Close()
}
