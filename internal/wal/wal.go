// Package wal is the durability subsystem: an append-only write-ahead
// log for mutation batches plus the manifest that makes checkpoint
// compaction an atomic swap. The paper treats the dataset as static;
// the engine's write path (PR 3) made it mutable through a
// memory-resident overlay — this package is what lets those writes
// survive a process crash.
//
// # Log format
//
// The log file starts with an 8-byte magic and is followed by
// length-prefixed, CRC-framed records, one per Apply batch:
//
//	magic "IRWAL001" (8)
//	frame: payloadLen uint32 | crc32c(payload) uint32 | payload
//	payload: seq uint64 | nops uint32 | ops
//	op: kind uint8 | id uint64 | nnz uint32 | nnz × (dim uint32, val float64)
//
// Sequence numbers are per-record (one per batch), start at 1 and
// increase by exactly 1; the checkpoint manifest records the last
// sequence folded into the tuple/list files, so replay after a crash
// between manifest rename and log truncation skips already-checkpointed
// records instead of double-applying them.
//
// # Crash tolerance
//
// A torn final record — the frame a crash interrupted — is repaired by
// truncating the log at the first bad frame, provided that frame
// extends to end-of-file (there is nothing after it). A bad frame with
// more log after it is mid-log corruption: the log is refused with
// ErrCorrupt rather than silently dropping committed batches.
//
// # Sync policies
//
// Every Append writes the record through to the operating system, so a
// process crash (kill -9) loses nothing under any policy; the policy
// chooses when fsync pushes records to stable storage, i.e. what a
// power loss can take:
//
//   - SyncBatch (default): fsync on every Append — at most the batch
//     being written is lost.
//   - SyncInterval: a background goroutine fsyncs every Interval.
//   - SyncNone: fsync only on Close and Truncate.
//
// # Replication
//
// The record encoding is deterministic, so frames double as the
// replication wire format: EncodeRecord/DecodeRecord expose one
// record's exact bytes, and ReplayFrames re-serializes an existing
// log's records for shipping. A standby that appends the same (seq,
// ops) records ends up with a byte-identical log (internal/replication
// builds on exactly this property).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vec"
)

// ErrCorrupt tags mid-log corruption: a bad frame that cannot be a torn
// tail because committed records follow it.
var ErrCorrupt = errors.New("wal: log corrupt")

var logMagic = [8]byte{'I', 'R', 'W', 'A', 'L', '0', '0', '1'}

// castagnoli is the CRC32C table (the usual storage-system polynomial,
// distinct from the IEEE CRC the dataset file trailers use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	headerSize = 8
	frameSize  = 8 // payloadLen + crc
	// maxRecordBytes bounds a single record's payload; anything larger in
	// a length prefix is corruption, not a real batch.
	maxRecordBytes = 1 << 30
)

// OpKind selects a logged mutation. The values are the on-disk
// encoding; zero is deliberately invalid so a zeroed frame cannot
// decode as an op.
type OpKind uint8

const (
	OpInsert OpKind = 1
	OpUpdate OpKind = 2
	OpDelete OpKind = 3
)

// Op is one logged mutation: the engine's Op in durable form.
type Op struct {
	Kind  OpKind
	ID    int64      // Update/Delete target; ignored for Insert
	Tuple vec.Sparse // Insert/Update payload
}

// SyncMode selects when Append data is fsynced (see the package
// comment).
type SyncMode int

const (
	SyncBatch SyncMode = iota
	SyncInterval
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("sync(%d)", int(m))
	}
}

// SyncPolicy is a mode plus its interval (SyncInterval only).
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
}

func (p SyncPolicy) String() string {
	if p.Mode == SyncInterval {
		return p.Interval.String()
	}
	return p.Mode.String()
}

// ParseSyncPolicy maps a flag value to a policy: "batch" (fsync per
// Append), "none" (fsync only on close), or a duration like "250ms"
// (background fsync at that interval).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "batch", "always":
		return SyncPolicy{Mode: SyncBatch}, nil
	case "none":
		return SyncPolicy{Mode: SyncNone}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return SyncPolicy{}, fmt.Errorf("wal: sync policy %q is not batch, none or a duration", s)
	}
	if d <= 0 {
		return SyncPolicy{}, fmt.Errorf("wal: sync interval %v must be positive", d)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// ReplayResult summarizes what Open recovered from an existing log.
type ReplayResult struct {
	// Records and Ops count the replayed (applied) records/ops, i.e.
	// those with seq > the caller's from.
	Records int
	Ops     int
	// SkippedRecords counts records at or below from (already folded
	// into a checkpoint).
	SkippedRecords int
	// LastSeq is the highest sequence number present in the log (0 for
	// an empty log).
	LastSeq uint64
	// TruncatedBytes is how much torn tail was cut off, 0 for a clean
	// log.
	TruncatedBytes int64
}

// Writer is the append side of the log. It is safe for concurrent use,
// though the engine serializes Appends under its write lock anyway.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	policy  SyncPolicy
	nextSeq uint64
	size    int64

	appends atomic.Int64
	syncs   atomic.Int64

	// interval syncer state
	dirty   atomic.Bool
	stop    chan struct{}
	done    chan struct{}
	syncErr atomic.Value // error from the background syncer

	closed bool
	// failed poisons the writer when a failed append could not be
	// rolled back: the log's tail state is unknown, so accepting more
	// records could bury a torn frame under valid ones — which recovery
	// would rightly refuse as mid-log corruption.
	failed error
}

// Open opens (creating if absent) the log at path, replays every record
// with seq > from through apply in order, repairs a torn tail, and
// returns a Writer positioned to append the next record. apply may be
// nil to skip replay work while still scanning and repairing.
func Open(path string, policy SyncPolicy, from uint64, apply func(seq uint64, ops []Op) error) (*Writer, ReplayResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayResult{}, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, ReplayResult{}, err
	}
	var res ReplayResult
	size := st.Size()
	if size == 0 {
		if _, err := f.Write(logMagic[:]); err != nil {
			f.Close()
			return nil, ReplayResult{}, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, ReplayResult{}, err
		}
		// The directory entry must be durable too: without this, a
		// power loss could drop the whole (fsynced) log file, losing
		// every acknowledged batch at once.
		if err := SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, ReplayResult{}, err
		}
		size = headerSize
	} else {
		sc, err := scan(f, size, from, apply)
		if err != nil {
			f.Close()
			return nil, ReplayResult{}, err
		}
		res = sc.ReplayResult
		if sc.truncateAt >= 0 {
			res.TruncatedBytes = size - sc.truncateAt
			if err := f.Truncate(sc.truncateAt); err != nil {
				f.Close()
				return nil, ReplayResult{}, err
			}
			size = sc.truncateAt
			if size < headerSize {
				// The crash interrupted file creation itself: start over.
				if _, err := f.WriteAt(logMagic[:], 0); err != nil {
					f.Close()
					return nil, ReplayResult{}, err
				}
				size = headerSize
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, ReplayResult{}, err
			}
		}
	}
	next := res.LastSeq + 1
	if from+1 > next {
		next = from + 1
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, ReplayResult{}, err
	}
	w := &Writer{f: f, path: path, policy: policy, nextSeq: next, size: size}
	if policy.Mode == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, res, nil
}

func (w *Writer) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if w.dirty.Swap(false) {
				if err := w.f.Sync(); err != nil {
					w.syncErr.Store(err)
					return
				}
				w.syncs.Add(1)
			}
		}
	}
}

// Append logs one batch and returns its sequence number. Under
// SyncBatch the record is on stable storage when Append returns. A
// failed append is rolled back (the log is truncated to the last
// committed record), so an error here means the batch is NOT in the
// log and will not resurface on replay; if the rollback itself fails
// the writer refuses all further appends.
func (w *Writer) Append(ops []Op) (uint64, error) {
	seq, _, err := w.AppendFrame(ops)
	return seq, err
}

// AppendFrame is Append, additionally returning the exact frame bytes
// committed to the log — the replication primary ships these verbatim,
// so the record is serialized exactly once. The returned slice is
// owned by the caller.
func (w *Writer) AppendFrame(ops []Op) (uint64, []byte, error) {
	if len(ops) == 0 {
		return 0, nil, fmt.Errorf("wal: empty op batch")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, nil, w.failed
	}
	if err, _ := w.syncErr.Load().(error); err != nil {
		return 0, nil, fmt.Errorf("wal: background sync failed: %w", err)
	}
	seq := w.nextSeq
	frame, err := encodeRecord(seq, ops)
	if err != nil {
		return 0, nil, err
	}
	if len(frame)-frameSize > maxRecordBytes {
		// Never let a record the recovery scan would classify as
		// corruption (and truncate away) become an acknowledged write.
		return 0, nil, fmt.Errorf("wal: batch encodes to %d bytes, above the %d-byte record limit — split it", len(frame)-frameSize, maxRecordBytes)
	}
	if _, err := w.f.Write(frame); err != nil {
		return 0, nil, w.rollback(err)
	}
	if w.policy.Mode == SyncBatch {
		// The fsync is part of the commit: a record whose durability the
		// caller was told failed must not replay on restart.
		if err := w.f.Sync(); err != nil {
			return 0, nil, w.rollback(err)
		}
		w.syncs.Add(1)
	}
	w.size += int64(len(frame))
	w.nextSeq++
	w.appends.Add(1)
	if w.policy.Mode == SyncInterval {
		w.dirty.Store(true)
	}
	return seq, frame, nil
}

// rollback restores the log to its last committed length after a failed
// append, so the rejected batch cannot resurface on replay and a torn
// frame cannot be buried under later records. If the restore fails the
// writer is poisoned. Returns the error to hand the caller.
func (w *Writer) rollback(cause error) error {
	if err := w.f.Truncate(w.size); err != nil {
		w.failed = fmt.Errorf("wal: append failed (%v) and rollback failed (%v): log tail state unknown, writer disabled", cause, err)
		return w.failed
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.failed = fmt.Errorf("wal: append failed (%v) and re-seek failed (%v): writer disabled", cause, err)
		return w.failed
	}
	return cause
}

// Sync forces an fsync regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	return nil
}

// Truncate discards every logged record — the checkpoint has folded
// them into the dataset files — while keeping the sequence counter
// monotonic. The truncation is fsynced before returning.
func (w *Writer) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(headerSize); err != nil {
		return err
	}
	if _, err := w.f.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	w.size = headerSize
	return nil
}

// Close stops the background syncer (if any), fsyncs and closes the
// log. Closing an already-closed writer is a no-op.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Size returns the current log length in bytes (header included).
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// NextSeq returns the sequence number the next Append will use.
func (w *Writer) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// LastSeq returns the sequence number of the most recent Append (0 when
// nothing has ever been appended).
func (w *Writer) LastSeq() uint64 { return w.NextSeq() - 1 }

// Appends returns how many records this writer has appended.
func (w *Writer) Appends() int64 { return w.appends.Load() }

// Syncs returns how many fsyncs this writer has issued.
func (w *Writer) Syncs() int64 { return w.syncs.Load() }

// Policy returns the writer's sync policy.
func (w *Writer) Policy() SyncPolicy { return w.policy }

// Replay scans the log read-only, applying every record with seq >
// from, tolerating a torn tail without repairing it (no write happens —
// the path read-only openers use). A missing log replays as empty.
func Replay(path string, from uint64, apply func(seq uint64, ops []Op) error) (ReplayResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return ReplayResult{}, nil
	}
	if err != nil {
		return ReplayResult{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return ReplayResult{}, err
	}
	if st.Size() == 0 {
		return ReplayResult{}, nil
	}
	sc, err := scan(f, st.Size(), from, apply)
	if err != nil {
		return ReplayResult{}, err
	}
	res := sc.ReplayResult
	if sc.truncateAt >= 0 {
		res.TruncatedBytes = st.Size() - sc.truncateAt
	}
	return res, nil
}

// Info describes a log file without replaying it; tests use the record
// offsets to cut the log at precise byte boundaries.
type Info struct {
	Records int
	LastSeq uint64
	Size    int64
	// Offsets[i] is the byte offset of record i's frame.
	Offsets []int64
}

// Inspect scans the log read-only. A torn tail is reported via Size vs
// the last offset (no repair is performed); mid-log corruption is an
// error.
func Inspect(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Info{}, err
	}
	var info Info
	info.Size = st.Size()
	if _, err := scanFrames(f, st.Size(), func(off int64, seq uint64, payload []byte) error {
		info.Records++
		info.LastSeq = seq
		info.Offsets = append(info.Offsets, off)
		return nil
	}); err != nil {
		return Info{}, err
	}
	return info, nil
}

type scanResult struct {
	ReplayResult
	// truncateAt is the offset at which a torn tail must be cut, or -1
	// for a clean log.
	truncateAt int64
}

// scan walks the log frames, applying each record with seq > from.
func scan(f *os.File, size int64, from uint64, apply func(seq uint64, ops []Op) error) (scanResult, error) {
	res := scanResult{truncateAt: -1}
	end, err := scanFrames(f, size, func(off int64, seq uint64, payload []byte) error {
		res.LastSeq = seq
		if seq <= from {
			res.SkippedRecords++
			return nil
		}
		ops, err := decodeOps(payload)
		if err != nil {
			return fmt.Errorf("%w: record at %d (seq %d): %v", ErrCorrupt, off, seq, err)
		}
		res.Records++
		res.Ops += len(ops)
		if apply != nil {
			return apply(seq, ops)
		}
		return nil
	})
	if err != nil {
		return scanResult{}, err
	}
	if end < size {
		res.truncateAt = end
	}
	return res, nil
}

// scanFrames iterates the log's frames, calling fn with each record's
// offset, sequence number and payload. It returns the offset of the
// first torn frame (== size for a clean log); a bad frame that is not
// the file's tail is ErrCorrupt.
func scanFrames(f *os.File, size int64, fn func(off int64, seq uint64, payload []byte) error) (int64, error) {
	if size < headerSize {
		// Shorter than the magic: a crash during creation. Treat the
		// whole file as torn.
		return 0, nil
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return 0, err
	}
	if string(hdr) != string(logMagic[:]) {
		return 0, fmt.Errorf("%w: bad magic (not a WAL file)", ErrCorrupt)
	}
	off := int64(headerSize)
	var prevSeq uint64
	frame := make([]byte, frameSize)
	for off < size {
		if size-off < frameSize {
			return off, nil // torn frame header
		}
		if _, err := f.ReadAt(frame, off); err != nil {
			return 0, err
		}
		plen := int64(binary.LittleEndian.Uint32(frame[0:4]))
		wantCRC := binary.LittleEndian.Uint32(frame[4:8])
		if off+frameSize+plen > size {
			// The frame claims more bytes than the file holds: the tail
			// the crash interrupted.
			return off, nil
		}
		if plen > maxRecordBytes {
			// Append refuses records this large, so an in-file frame
			// claiming one is corruption — unless the "frame" is the
			// zero-filled tail some filesystems leave after a crash
			// extended the file without writing our data.
			if zeroTail(f, off, size) {
				return off, nil
			}
			return 0, fmt.Errorf("%w: frame at %d claims %d bytes (limit %d)", ErrCorrupt, off, plen, maxRecordBytes)
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+frameSize); err != nil {
			return 0, err
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if off+frameSize+plen == size {
				return off, nil // corrupt final frame: torn write
			}
			if zeroTail(f, off, size) {
				return off, nil // zero-filled tail, not buried corruption
			}
			return 0, fmt.Errorf("%w: crc mismatch at offset %d with %d committed bytes after it",
				ErrCorrupt, off, size-(off+frameSize+plen))
		}
		if plen < 12 {
			// No real record is this small (seq + op count alone are 12
			// bytes). A zeroed frame header forges a passing CRC (plen=0,
			// crc=0, crc32c("")=0), so this is the zero-fill signature —
			// repair it as a torn tail; anything else is corruption.
			if zeroTail(f, off, size) {
				return off, nil
			}
			return 0, fmt.Errorf("%w: record at %d too short (%d bytes)", ErrCorrupt, off, plen)
		}
		seq := binary.LittleEndian.Uint64(payload[0:8])
		if prevSeq != 0 && seq != prevSeq+1 {
			return 0, fmt.Errorf("%w: sequence jump %d → %d at offset %d", ErrCorrupt, prevSeq, seq, off)
		}
		if err := fn(off, seq, payload); err != nil {
			return 0, err
		}
		prevSeq = seq
		off += frameSize + plen
	}
	return off, nil
}

// zeroTail reports whether every byte from off to size is zero — the
// signature of a filesystem that extended the file (metadata) without
// persisting our data blocks before a power loss. Such a tail holds no
// committed record and is safe to truncate away.
func zeroTail(f *os.File, off, size int64) bool {
	buf := make([]byte, 64<<10)
	for off < size {
		n := size - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return false
		}
		for _, b := range buf[:n] {
			if b != 0 {
				return false
			}
		}
		off += n
	}
	return true
}

// EncodeRecord builds the full on-disk frame (length prefix + CRC +
// payload) for one batch. The encoding is deterministic: the same
// (seq, ops) always yields the same bytes, which is what lets the
// replication subsystem ship frames verbatim and a follower's log end
// up byte-identical to the primary's for the same record sequence.
func EncodeRecord(seq uint64, ops []Op) ([]byte, error) {
	return encodeRecord(seq, ops)
}

// DecodeRecord parses one full frame as produced by EncodeRecord (and
// as stored in the log): it validates the length prefix and CRC, then
// decodes the sequence number and ops. The replication follower runs
// every received frame through this before applying it, so a corrupted
// or truncated frame is rejected at the wire instead of poisoning the
// standby's log.
func DecodeRecord(frame []byte) (seq uint64, ops []Op, err error) {
	if len(frame) < frameSize+12 {
		return 0, nil, fmt.Errorf("wal: frame too short (%d bytes)", len(frame))
	}
	plen := int(binary.LittleEndian.Uint32(frame[0:4]))
	wantCRC := binary.LittleEndian.Uint32(frame[4:8])
	if plen != len(frame)-frameSize {
		return 0, nil, fmt.Errorf("wal: frame length prefix %d does not match %d payload bytes", plen, len(frame)-frameSize)
	}
	payload := frame[frameSize:]
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return 0, nil, fmt.Errorf("wal: frame crc mismatch")
	}
	seq = binary.LittleEndian.Uint64(payload[0:8])
	ops, err = decodeOps(payload)
	if err != nil {
		return 0, nil, err
	}
	return seq, ops, nil
}

// ReplayFrames scans the log read-only like Replay, but hands the
// caller each record's full re-serialized frame (length prefix + CRC +
// payload) instead of its decoded ops — the form the replication
// primary ships over the wire. Records with seq <= from are skipped; a
// torn tail is tolerated without repair; a missing log replays as
// empty. The frame slice is freshly allocated per record and may be
// retained.
func ReplayFrames(path string, from uint64, fn func(seq uint64, frame []byte) error) (ReplayResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return ReplayResult{}, nil
	}
	if err != nil {
		return ReplayResult{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return ReplayResult{}, err
	}
	if st.Size() == 0 {
		return ReplayResult{}, nil
	}
	var res ReplayResult
	end, err := scanFrames(f, st.Size(), func(off int64, seq uint64, payload []byte) error {
		res.LastSeq = seq
		if seq <= from {
			res.SkippedRecords++
			return nil
		}
		res.Records++
		frame := make([]byte, 0, frameSize+len(payload))
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
		frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
		frame = append(frame, payload...)
		return fn(seq, frame)
	})
	if err != nil {
		return ReplayResult{}, err
	}
	if end < st.Size() {
		res.TruncatedBytes = st.Size() - end
	}
	return res, nil
}

// encodeRecord builds the full frame (header + payload) for one batch.
func encodeRecord(seq uint64, ops []Op) ([]byte, error) {
	payload := make([]byte, 0, 12+len(ops)*16)
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ops)))
	for i, op := range ops {
		switch op.Kind {
		case OpInsert, OpUpdate, OpDelete:
		default:
			return nil, fmt.Errorf("wal: op %d has unknown kind %d", i, op.Kind)
		}
		payload = append(payload, byte(op.Kind))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(op.ID))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(op.Tuple)))
		for _, e := range op.Tuple {
			payload = binary.LittleEndian.AppendUint32(payload, uint32(e.Dim))
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(e.Val))
		}
	}
	frame := make([]byte, 0, frameSize+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	return append(frame, payload...), nil
}

// decodeOps parses a record payload (past the seq field already read by
// the frame scanner).
func decodeOps(payload []byte) ([]Op, error) {
	p := payload[8:] // seq
	if len(p) < 4 {
		return nil, fmt.Errorf("missing op count")
	}
	nops := int(binary.LittleEndian.Uint32(p[0:4]))
	p = p[4:]
	// Cap the preallocation by what the payload could possibly hold
	// (each op is ≥13 bytes): a corrupt count must not drive a huge
	// allocation before the per-op bounds checks reject it.
	preall := nops
	if m := len(p) / 13; preall > m {
		preall = m
	}
	ops := make([]Op, 0, preall)
	for i := 0; i < nops; i++ {
		if len(p) < 13 {
			return nil, fmt.Errorf("op %d truncated", i)
		}
		kind := OpKind(p[0])
		if kind < OpInsert || kind > OpDelete {
			return nil, fmt.Errorf("op %d has unknown kind %d", i, kind)
		}
		id := int64(binary.LittleEndian.Uint64(p[1:9]))
		nnz := int(binary.LittleEndian.Uint32(p[9:13]))
		p = p[13:]
		if len(p) < 12*nnz {
			return nil, fmt.Errorf("op %d tuple truncated (nnz %d)", i, nnz)
		}
		var t vec.Sparse
		if nnz > 0 {
			t = make(vec.Sparse, nnz)
			for j := 0; j < nnz; j++ {
				t[j] = vec.Entry{
					Dim: int(binary.LittleEndian.Uint32(p[12*j : 12*j+4])),
					Val: math.Float64frombits(binary.LittleEndian.Uint64(p[12*j+4 : 12*j+12])),
				}
			}
			p = p[12*nnz:]
		}
		ops = append(ops, Op{Kind: kind, ID: id, Tuple: t})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after %d ops", len(p), nops)
	}
	return ops, nil
}
