package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/vec"
)

func testOps(n int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			ops = append(ops, Op{Kind: OpInsert, Tuple: vec.MustSparse(
				vec.Entry{Dim: i, Val: 0.5}, vec.Entry{Dim: i + 1, Val: 0.25})})
		case 1:
			ops = append(ops, Op{Kind: OpUpdate, ID: int64(i), Tuple: vec.MustSparse(
				vec.Entry{Dim: 0, Val: 0.125})})
		default:
			ops = append(ops, Op{Kind: OpDelete, ID: int64(i)})
		}
	}
	return ops
}

// replayAll opens the log collecting every record past from.
func replayAll(t *testing.T, path string, from uint64) (batches [][]Op, seqs []uint64, res ReplayResult) {
	t.Helper()
	w, res, err := Open(path, SyncPolicy{Mode: SyncNone}, from, func(seq uint64, ops []Op) error {
		batches = append(batches, ops)
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return batches, seqs, res
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, res, err := Open(path, SyncPolicy{Mode: SyncBatch}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || res.LastSeq != 0 {
		t.Fatalf("fresh log replay %+v", res)
	}
	want := [][]Op{testOps(1), testOps(4), testOps(2)}
	for i, ops := range want {
		seq, err := w.Append(ops)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if w.Appends() != 3 || w.Syncs() < 3 {
		t.Fatalf("appends=%d syncs=%d", w.Appends(), w.Syncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, seqs, res := replayAll(t, path, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) || res.LastSeq != 3 || res.TruncatedBytes != 0 {
		t.Fatalf("seqs %v res %+v", seqs, res)
	}
	if res.Ops != 7 {
		t.Fatalf("replayed ops %d, want 7", res.Ops)
	}

	// Replaying from a checkpoint seq skips the folded prefix.
	got, seqs, res = replayAll(t, path, 2)
	if len(got) != 1 || seqs[0] != 3 || res.SkippedRecords != 2 {
		t.Fatalf("from=2 replay got %d batches seqs %v res %+v", len(got), seqs, res)
	}
	if !reflect.DeepEqual(got[0], want[2]) {
		t.Fatalf("from=2 batch mismatch")
	}
}

// TestTornTailEveryByte is the frame-repair property: a log cut at ANY
// byte boundary of its final record reopens to exactly the committed
// prefix, and the repaired log accepts new appends.
func TestTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, SyncPolicy{Mode: SyncBatch}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Op{testOps(2), testOps(3), testOps(5)}
	for _, ops := range batches {
		if _, err := w.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 3 {
		t.Fatalf("records %d", info.Records)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := info.Offsets[2]

	for cut := lastStart; cut <= info.Size; cut++ {
		cp := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(cp, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, res := replayAll(t, cp, 0)
		wantN := 2
		if cut == info.Size {
			wantN = 3
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		if cut < info.Size && res.TruncatedBytes != cut-lastStart {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, res.TruncatedBytes, cut-lastStart)
		}
		// The repaired log must keep working: append and re-replay.
		w2, _, err := Open(cp, SyncPolicy{Mode: SyncNone}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w2.Append(testOps(1))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(wantN + 1); seq != want {
			t.Fatalf("cut %d: post-repair seq %d, want %d", cut, seq, want)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if got, _, _ := replayAll(t, cp, 0); len(got) != wantN+1 {
			t.Fatalf("cut %d: %d records after repair+append", cut, len(got))
		}
	}
}

// TestZeroFillTailRepair: a crash can extend the file with zeroed
// blocks (metadata persisted, data not); a zeroed "frame" even forges a
// passing CRC (plen=0, crc=0). Recovery must truncate such tails —
// short or long — instead of refusing the log, while zeroed bytes with
// genuine committed records after them stay ErrCorrupt.
func TestZeroFillTailRepair(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, records int, tail []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		w, _, err := Open(p, SyncPolicy{Mode: SyncNone}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			if _, err := w.Append(testOps(2)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, append(raw, tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	for _, tailLen := range []int{8, 16, 100, 4096} {
		p := write(fmt.Sprintf("zero%d.log", tailLen), 2, make([]byte, tailLen))
		got, _, res := replayAll(t, p, 0)
		if len(got) != 2 || res.TruncatedBytes != int64(tailLen) {
			t.Fatalf("tail %d: recovered %d records, truncated %d bytes", tailLen, len(got), res.TruncatedBytes)
		}
	}

	// Zeroed bytes followed by a committed record: corruption, refused.
	p := write("zeromid.log", 1, make([]byte, 16))
	w, _, err := Open(filepath.Join(dir, "donor.log"), SyncPolicy{Mode: SyncNone}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(testOps(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	donor, err := os.ReadFile(filepath.Join(dir, "donor.log"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, append(raw, donor[headerSize:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(p, SyncPolicy{Mode: SyncNone}, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zeros buried under a record: err %v, want ErrCorrupt", err)
	}
}

// TestMidLogCorruption: a bad frame with committed records after it is
// refused, not silently truncated.
func TestMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, SyncPolicy{Mode: SyncBatch}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(testOps(3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the middle record.
	raw[info.Offsets[1]+frameSize+4] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(path, SyncPolicy{Mode: SyncNone}, 0, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption error %v, want ErrCorrupt", err)
	}
	if _, err := Inspect(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inspect error %v, want ErrCorrupt", err)
	}
}

func TestTruncateKeepsSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, SyncPolicy{Mode: SyncBatch}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.Append(testOps(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != headerSize {
		t.Fatalf("post-truncate size %d", w.Size())
	}
	seq, err := w.Append(testOps(1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("post-truncate seq %d, want 5 (monotonic across truncation)", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen as after a checkpoint at seq 4: only record 5 replays.
	got, seqs, _ := replayAll(t, path, 4)
	if len(got) != 1 || seqs[0] != 5 {
		t.Fatalf("replay after truncate: %d records, seqs %v", len(got), seqs)
	}
}

func TestSyncPolicies(t *testing.T) {
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := ParseSyncPolicy("-5ms"); err == nil {
		t.Fatal("negative interval accepted")
	}
	for _, tc := range []struct {
		in   string
		mode SyncMode
	}{{"", SyncBatch}, {"batch", SyncBatch}, {"none", SyncNone}, {"20ms", SyncInterval}} {
		p, err := ParseSyncPolicy(tc.in)
		if err != nil || p.Mode != tc.mode {
			t.Fatalf("parse %q: %+v, %v", tc.in, p, err)
		}
	}

	// Interval mode: records are replayable and the background syncer
	// eventually fsyncs.
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, SyncPolicy{Mode: SyncInterval, Interval: 5 * time.Millisecond}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(testOps(2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Syncs() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Syncs() == 0 {
		t.Fatal("interval syncer never fired")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := replayAll(t, path, 0); len(got) != 1 {
		t.Fatalf("interval-mode log replayed %d records", len(got))
	}
}

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadManifest(dir); ok || err != nil {
		t.Fatalf("empty dir manifest ok=%v err=%v", ok, err)
	}
	tp, lp, m, err := ResolveDataset(dir)
	if err != nil || m.Gen != 0 {
		t.Fatalf("resolve default: %v %+v", err, m)
	}
	if filepath.Base(tp) != "tuples.dat" || filepath.Base(lp) != "lists.dat" {
		t.Fatalf("default paths %s %s", tp, lp)
	}

	tn, ln := GenFileNames(3)
	want := Manifest{Gen: 3, Tuples: tn, Lists: ln, LastSeq: 17,
		Epoch: 2, Epochs: []EpochStart{{Epoch: 1, StartSeq: 5}, {Epoch: 2, StartSeq: 12}}}
	if err := want.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(dir)
	if err != nil || !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("load %+v ok=%v err=%v", got, ok, err)
	}

	// A stale temp file (crash mid-Save) must not shadow the manifest.
	if err := os.WriteFile(filepath.Join(dir, ManifestName+".tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err = LoadManifest(dir)
	if err != nil || !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("load with stale tmp %+v ok=%v err=%v", got, ok, err)
	}

	// The epoch timeline maps sequence numbers to owning epochs.
	for _, tc := range []struct{ seq, epoch uint64 }{{0, 0}, {4, 0}, {5, 1}, {11, 1}, {12, 2}, {100, 2}} {
		if e := EpochAt(want.Epochs, tc.seq); e != tc.epoch {
			t.Fatalf("EpochAt(%d) = %d, want %d", tc.seq, e, tc.epoch)
		}
	}

	// A corrupt manifest is an error, not a silent default.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest loaded")
	}
}
