package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the file naming the live dataset generation inside a
// data directory. Directories without one serve the irgen defaults
// (tuples.dat / lists.dat); the first checkpoint creates it.
const ManifestName = "MANIFEST"

// LogName is the write-ahead log's file name inside a data directory.
const LogName = "wal.log"

// LockName is the writer lock file's name inside a data directory.
const LockName = "wal.lock"

// Manifest names the current dataset generation. It is replaced
// atomically (write temp + fsync + rename + fsync dir), so an opener
// sees either the old or the new generation, never a mix — the pivot of
// the checkpoint's crash-safe ordering.
type Manifest struct {
	// Gen is the checkpoint generation, 0 for the original irgen files.
	Gen uint64 `json:"gen"`
	// Tuples and Lists are file names relative to the data directory.
	Tuples string `json:"tuples"`
	Lists  string `json:"lists"`
	// LastSeq is the highest WAL sequence number folded into this
	// generation's files; replay skips records at or below it.
	LastSeq uint64 `json:"last_seq"`
	// Epoch is the fencing epoch: how many primary promotions this
	// dataset has been through. A node whose persisted epoch is lower
	// than the cluster's has been deposed — it must refuse client
	// writes and rejoin as a follower (see docs/replication.md).
	Epoch uint64 `json:"epoch,omitempty"`
	// Epochs is the promotion timeline: entry {E, S} says frames with
	// seq >= S were committed under epoch E (until the next entry).
	// Frames before the first entry belong to epoch 0. The timeline is
	// what lets a primary decide whether a resuming follower's log is a
	// true prefix of its own history or a divergent branch written
	// under a dead epoch — sequence numbers alone cannot tell the two
	// apart once a new primary has re-used them.
	Epochs []EpochStart `json:"epochs,omitempty"`
}

// EpochStart is one promotion in a manifest's epoch timeline.
type EpochStart struct {
	Epoch    uint64 `json:"epoch"`
	StartSeq uint64 `json:"start_seq"`
}

// EpochAt returns the epoch owning the frame at seq per the timeline
// (0 before the first entry). Entries are in ascending StartSeq order.
func EpochAt(epochs []EpochStart, seq uint64) uint64 {
	var epoch uint64
	for _, e := range epochs {
		if seq >= e.StartSeq {
			epoch = e.Epoch
		}
	}
	return epoch
}

// DefaultManifest is the implied manifest of a directory that has none.
func DefaultManifest() Manifest {
	return Manifest{Tuples: "tuples.dat", Lists: "lists.dat"}
}

// GenFileNames returns the tuple/list file names of a checkpoint
// generation.
func GenFileNames(gen uint64) (tuples, lists string) {
	return fmt.Sprintf("tuples.g%06d.dat", gen), fmt.Sprintf("lists.g%06d.dat", gen)
}

// LoadManifest reads dir's manifest; ok is false when the directory has
// none (callers then use DefaultManifest). A stale temp file from an
// interrupted Save is ignored: the rename never happened, so the old
// manifest is still the truth.
func LoadManifest(dir string) (m Manifest, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("wal: manifest corrupt: %v", err)
	}
	if m.Tuples == "" || m.Lists == "" {
		return Manifest{}, false, fmt.Errorf("wal: manifest missing file names")
	}
	return m, true, nil
}

// Save atomically replaces dir's manifest: the temp file is written and
// fsynced first, the rename publishes it, and the directory fsync makes
// the rename itself durable.
func (m Manifest) Save(dir string) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return SyncDir(dir)
}

// ResolveDataset maps a data directory to the tuple/list paths of its
// live generation, following the manifest when one exists.
func ResolveDataset(dir string) (tuplePath, listPath string, m Manifest, err error) {
	m, ok, err := LoadManifest(dir)
	if err != nil {
		return "", "", Manifest{}, err
	}
	if !ok {
		m = DefaultManifest()
	}
	return filepath.Join(dir, m.Tuples), filepath.Join(dir, m.Lists), m, nil
}

// RemoveStaleGenerations deletes checkpoint generation files (the
// tuples.gN/lists.gN pattern) whose generation is not keep: leftovers
// of interrupted or superseded checkpoints, which no manifest
// references. The original generation-0 files are never touched (they
// do not match the pattern). Returns how many files were removed;
// removal errors are ignored — a leftover is garbage either way, and
// the next sweep retries.
func RemoveStaleGenerations(dir string, keep uint64) int {
	removed := 0
	for _, pat := range []string{"tuples.g*.dat", "lists.g*.dat"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			continue
		}
		for _, p := range matches {
			var gen uint64
			base := filepath.Base(p)
			kind := "tuples"
			if base[0] == 'l' {
				kind = "lists"
			}
			if _, err := fmt.Sscanf(base, kind+".g%d.dat", &gen); err != nil || gen == keep {
				continue
			}
			if os.Remove(p) == nil {
				removed++
			}
		}
	}
	return removed
}

// SyncDir fsyncs a directory, making renames inside it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SyncFile fsyncs an existing file by path (the dataset writers flush
// but do not sync; the checkpointer must).
func SyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
