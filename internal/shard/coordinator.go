package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Config tunes the coordinator's fan-out behavior.
type Config struct {
	// AllowPartial merges the surviving shards' answers when one or more
	// shards fail, flagging the result as Partial, instead of failing
	// closed. A partial /topk may miss result tuples; a partial /analyze
	// region is NOT a certificate (the missing shard's constraints are
	// absent) — which is why closed is the default.
	AllowPartial bool
	// MaxRetries is how many times a read RPC is relaunched after a
	// per-attempt timeout or an error. Mutations never retry: Apply is
	// not idempotent, so a timed-out write fails closed immediately.
	MaxRetries int
	// AttemptTimeout bounds each read attempt; a lapsed attempt is
	// superseded, its late answer discarded by the generation guard.
	// Zero means attempts are bounded only by the caller's context.
	AttemptTimeout time.Duration
}

// Coordinator fans queries out to the shard backends in parallel and
// merges the answers. Safe for concurrent use; mutation batches
// serialize against each other (insert-id assignment must be ordered)
// but not against reads.
type Coordinator struct {
	m        Map
	backends []Backend
	cfg      Config

	applyMu sync.Mutex
}

// New builds a coordinator over one backend per Map range.
func New(m Map, backends []Backend, cfg Config) (*Coordinator, error) {
	if len(backends) != m.NumShards() {
		return nil, fmt.Errorf("shard: %d backends for %d ranges", len(backends), m.NumShards())
	}
	return &Coordinator{m: m, backends: backends, cfg: cfg}, nil
}

// Map returns the partition the coordinator routes by.
func (c *Coordinator) Map() Map { return c.m }

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.backends) }

// reply carries one attempt's answer back to the fan-out slot.
type reply struct {
	gen int
	val any
	err error
}

// callShard runs one shard's read RPC with the retry and
// attempt-generation discipline: at most one answer is ever returned,
// and only from the LATEST attempt. A retried call after a timeout must
// not merge the first attempt's answer — neither twice (double-count)
// nor at all: between the attempts a mutation may have committed, and
// the stale answer could resurrect a tombstoned tuple into the merge
// (the lists.Overlay hazard; see TestRetryNoDoubleMerge).
func (c *Coordinator) callShard(ctx context.Context, op string, i int, call func(context.Context) (any, error)) (any, error) {
	attempts := c.cfg.MaxRetries + 1
	ch := make(chan reply, attempts) // buffered: stale attempts never block
	launch := func(gen int) {
		//lint:allow obsreg op is one of the three fan-out verbs (topk, analyze, apply), a closed set
		mFanout.Inc(op)
		go func() {
			v, err := call(ctx)
			ch <- reply{gen: gen, val: v, err: err}
		}()
	}

	gen := 0
	launch(gen)
	var timer *time.Timer
	var timeout <-chan time.Time // nil: blocks forever
	arm := func() {
		if c.cfg.AttemptTimeout <= 0 {
			return
		}
		if timer == nil {
			timer = time.NewTimer(c.cfg.AttemptTimeout)
		} else {
			timer.Reset(c.cfg.AttemptTimeout)
		}
		timeout = timer.C
	}
	arm()
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	for {
		select {
		case r := <-ch:
			if r.gen != gen {
				// A superseded attempt finally answered. Its view may
				// predate mutations the fresh attempt saw; drop it.
				mStaleDrops.Inc()
				continue
			}
			if r.err != nil {
				if gen+1 < attempts && ctx.Err() == nil {
					gen++
					mRetries.Inc()
					launch(gen)
					arm()
					continue
				}
				//lint:allow obsreg op is one of the three fan-out verbs (topk, analyze, apply), a closed set
				mFanoutErrors.Inc(op)
				return nil, fmt.Errorf("shard %d: %s: %w", i, op, r.err)
			}
			return r.val, nil
		case <-timeout:
			if gen+1 < attempts {
				gen++
				mRetries.Inc()
				launch(gen)
				arm()
				continue
			}
			//lint:allow obsreg op is one of the three fan-out verbs (topk, analyze, apply), a closed set
			mFanoutErrors.Inc(op)
			return nil, fmt.Errorf("shard %d: %s: attempt timed out after %v", i, op, c.cfg.AttemptTimeout)
		case <-ctx.Done():
			//lint:allow obsreg op is one of the three fan-out verbs (topk, analyze, apply), a closed set
			mFanoutErrors.Inc(op)
			return nil, fmt.Errorf("shard %d: %s: %w", i, op, ctx.Err())
		}
	}
}

// fanout runs call against every shard in parallel. vals[i] is shard
// i's answer; failed lists the shards that exhausted their budget. With
// AllowPartial unset any failure fails the whole query (fail closed).
func (c *Coordinator) fanout(ctx context.Context, op string, call func(ctx context.Context, i int) (any, error)) (vals []any, failed []int, err error) {
	vals = make([]any, len(c.backends))
	errs := make([]error, len(c.backends))
	var wg sync.WaitGroup
	for i := range c.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.callShard(ctx, op, i, func(ctx context.Context) (any, error) {
				return call(ctx, i)
			})
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			failed = append(failed, i)
			err = e
		}
	}
	if err != nil {
		if !c.cfg.AllowPartial {
			return nil, failed, err
		}
		mPartial.Inc()
	}
	return vals, failed, nil
}

// TopKResult is a merged top-k answer. Partial is only ever true under
// AllowPartial; Failed lists the shards whose answers are missing.
type TopKResult struct {
	Result  []topk.Scored
	Partial bool
	Failed  []int
}

// TopK scatter-gathers the query and heap-merges the per-shard lists
// into the global top-k under global ids — bit-identical in ids,
// scores and order to a single-node engine over the union.
func (c *Coordinator) TopK(ctx context.Context, q vec.Query, k int) (*TopKResult, error) {
	lists, failed, err := c.topkFanout(ctx, q, k)
	if err != nil {
		return nil, err
	}
	return &TopKResult{
		Result:  mergeTopK(lists, k),
		Partial: len(failed) > 0,
		Failed:  failed,
	}, nil
}

// topkFanout is round 1 of both TopK and Analyze: per-shard top-k lists
// translated to global ids (nil for failed shards under AllowPartial).
func (c *Coordinator) topkFanout(ctx context.Context, q vec.Query, k int) ([][]topk.Scored, []int, error) {
	vals, failed, err := c.fanout(ctx, "topk", func(ctx context.Context, i int) (any, error) {
		return c.backends[i].TopK(ctx, q, k)
	})
	if err != nil {
		return nil, failed, err
	}
	lists := make([][]topk.Scored, len(vals))
	for i, v := range vals {
		if v == nil {
			continue
		}
		local := v.([]topk.Scored)
		base := c.m.Base(i)
		global := make([]topk.Scored, len(local))
		for j, sc := range local {
			sc.ID += base
			global[j] = sc
		}
		lists[i] = global
	}
	return lists, failed, nil
}

// Analysis is a merged immutable-region answer. The embedded Output
// carries the global result and regions; Metrics sums the shards' work.
// A Partial analysis is NOT a certificate — the failed shards'
// constraints are missing, so the region is an over-approximation.
type Analysis struct {
	*core.Output
	Partial bool
	Failed  []int
}

// Analyze computes the global top-k and its immutable regions in two
// network rounds: merge the per-shard top-k lists into the global
// result R, then fan R back out so every shard reports the constraints
// its own tuples impose on it, and merge those — strict min/max of the
// per-dimension bounds on the classic φ = 0 path, an exact event replay
// of the union of shard-contributed lines on the envelope paths. Both
// merges are bit-identical to a single-node Analyze over the union of
// the shards' tuples; docs/sharding.md gives the argument.
func (c *Coordinator) Analyze(ctx context.Context, q vec.Query, k int, opts engine.Options) (*Analysis, error) {
	lists, failedTopK, err := c.topkFanout(ctx, q, k)
	if err != nil {
		return nil, err
	}
	res := mergeTopK(lists, k)

	type shardAnswer struct {
		out   *core.Output
		lines []topk.Scored
	}
	vals, failedAn, err := c.fanout(ctx, "analyze", func(ctx context.Context, i int) (any, error) {
		if lists[i] == nil && len(failedTopK) > 0 {
			// The shard already failed round 1; its round-2 constraints
			// would certify a result merged without its tuples anyway.
			return nil, fmt.Errorf("skipped after top-k failure")
		}
		out, lines, err := c.backends[i].AnalyzeImposed(ctx, q, k, c.m.Base(i), res, opts)
		if err != nil {
			return nil, err
		}
		return shardAnswer{out: out, lines: lines}, nil
	})
	if err != nil {
		return nil, err
	}

	failed := mergeFailed(failedTopK, failedAn)
	var outs []*core.Output
	var lines []topk.Scored
	for _, v := range vals {
		if v == nil {
			continue
		}
		ans := v.(shardAnswer)
		outs = append(outs, ans.out)
		lines = append(lines, ans.lines...)
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("shard: no shard answered")
	}

	out := &core.Output{
		Query:   q,
		K:       k,
		Result:  res,
		Regions: mergeRegions(q, k, res, outs, lines, opts),
		Metrics: mergeMetrics(outs),
	}
	return &Analysis{Output: out, Partial: len(failed) > 0, Failed: failed}, nil
}

// Apply routes a mutation batch to the owning shards: inserts go to the
// last shard — whose open id range continues the union's numbering, so
// the minted global ids equal a single node's — updates and deletes to
// the range owner. Runs of consecutive same-shard ops stay one batch,
// preserving in-shard order; results come back under global ids.
// Mutations never retry (a timed-out insert retried could apply twice)
// and fail closed on the first shard error.
func (c *Coordinator) Apply(ops []engine.Op) (engine.ApplyResult, error) {
	c.applyMu.Lock()
	defer c.applyMu.Unlock()
	res := engine.ApplyResult{Results: make([]engine.OpResult, len(ops))}
	for start := 0; start < len(ops); {
		shard := c.target(ops[start])
		end := start + 1
		for end < len(ops) && c.target(ops[end]) == shard {
			end++
		}
		mFanout.Inc("apply")
		base := c.m.Base(shard)
		local := make([]engine.Op, end-start)
		for j, op := range ops[start:end] {
			if op.Kind != engine.OpInsert {
				op.ID -= base
			}
			local[j] = op
		}
		sr, err := c.backends[shard].Apply(local)
		if err != nil {
			mFanoutErrors.Inc("apply")
			return res, fmt.Errorf("shard %d: apply: %w", shard, err)
		}
		for j, r := range sr.Results {
			if r.Err == nil {
				r.ID += base
			}
			res.Results[start+j] = r
		}
		res.Applied += sr.Applied
		res.CacheChecked += sr.CacheChecked
		res.CacheEvicted += sr.CacheEvicted
		res.CacheSurvived += sr.CacheSurvived
		start = end
	}
	return res, nil
}

// target returns the shard an op routes to.
func (c *Coordinator) target(op engine.Op) int {
	if op.Kind == engine.OpInsert {
		return c.m.NumShards() - 1
	}
	return c.m.Owner(op.ID)
}

// mergeFailed unions two ascending failed-shard lists.
func mergeFailed(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, l := range [2][]int{a, b} {
		for _, i := range l {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}
