package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/server"
	"repro/internal/topk"
	"repro/internal/vec"
)

// httpCluster is a full scatter-gather deployment in-process: one real
// HTTP server per shard (standalone, self-beaconing), one internal/client
// per shard group, a coordinator over them, and the coordinator's own
// public HTTP front.
type httpCluster struct {
	shards []*httptest.Server
	coord  *Coordinator
	front  *httptest.Server
}

func newHTTPCluster(t *testing.T, tuples []vec.Sparse, m, shards int, ccfg Config) *httpCluster {
	t.Helper()
	bases := EvenBases(len(tuples), shards)
	engines, err := engine.NewLocalShards(tuples, m, bases, engine.Config{CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	hc := &httpCluster{shards: make([]*httptest.Server, shards)}
	backends := make([]Backend, shards)
	for i, eng := range engines {
		srv := server.FromEngine(eng)
		ts := httptest.NewServer(srv.Handler())
		// The beacon needs the listener's URL, so it is set right after
		// start — before any request can hit /cluster.
		srv.SetClusterInfo(SelfBeacon(fmt.Sprintf("shard-%d", i), ts.URL))
		t.Cleanup(ts.Close) // idempotent; tests may Close earlier to kill a shard
		cl, err := client.New(client.Config{
			Seeds:       []string{ts.URL},
			ID:          fmt.Sprintf("%s-shard-%d", t.Name(), i),
			MaxRetries:  2,
			RetryBase:   2 * time.Millisecond,
			RetryCap:    10 * time.Millisecond,
			TopologyTTL: 100 * time.Millisecond,
			HTTPClient:  &http.Client{Timeout: 5 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = HTTPBackend{C: cl}
		hc.shards[i] = ts
	}
	mp, err := NewMap(bases)
	if err != nil {
		t.Fatal(err)
	}
	hc.coord, err = New(mp, backends, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	hc.front = httptest.NewServer(NewHandler(hc.coord))
	t.Cleanup(hc.front.Close)
	return hc
}

// postJSON posts v to the cluster front and decodes into out, returning
// the response status and headers.
func (hc *httpCluster) postJSON(t *testing.T, path string, v, out any) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hc.front.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// scrapeMetric reads one sample (exact name, or name{label="v"}) from
// the front's /metrics exposition; absent samples read as 0.
func (hc *httpCluster) scrapeMetric(t *testing.T, sample string) float64 {
	t.Helper()
	resp, err := http.Get(hc.front.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, sample+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, sample+" ")), 64)
		if err != nil {
			t.Fatalf("parse sample %q from %q: %v", sample, line, err)
		}
		return v
	}
	return 0
}

// TestHTTPShardedBitIdentical runs the bit-identity contract through
// the real wire: standalone shard servers, internal/client routing
// (beacon discovery included), JSON round-trips, and the coordinator's
// public front — against a single-node engine over the union, before
// and after mutations shipped over /update and /delete.
func TestHTTPShardedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4301))
	ctx := context.Background()
	cs := fixture.RandCase(rng, 60, 6, 2, 3)
	single := singleNode(cs.Tuples, cs.M)
	hc := newHTTPCluster(t, cs.Tuples, cs.M, 3, Config{})

	check := func(tag string) {
		t.Helper()
		got, err := hc.coord.TopK(ctx, cs.Q, cs.K)
		if err != nil {
			t.Fatalf("%s: http topk: %v", tag, err)
		}
		want, err := single.TopKScored(ctx, cs.Q, cs.K)
		if err != nil {
			t.Fatalf("%s: single topk: %v", tag, err)
		}
		diffScored(t, tag+"/topk", got.Result, want)
		if got.Partial {
			t.Fatalf("%s: healthy cluster answered Partial", tag)
		}
		for vi, opts := range optsVariants(rng) {
			an, err := hc.coord.Analyze(ctx, cs.Q, cs.K, opts)
			if err != nil {
				t.Fatalf("%s: http analyze variant %d: %v", tag, vi, err)
			}
			ref, err := single.Analyze(ctx, cs.Q, cs.K, opts)
			if err != nil {
				t.Fatalf("%s: single analyze variant %d: %v", tag, vi, err)
			}
			diffOutputs(t, fmt.Sprintf("%s/variant-%d", tag, vi), an.Output, ref.Output)
		}
	}
	check("pre-mutation")

	ops := randOps(rng, cs.Q, cs.M, len(cs.Tuples), 12)
	gotRes, err := hc.coord.Apply(ops)
	if err != nil {
		t.Fatalf("http apply: %v", err)
	}
	wantRes, err := single.Apply(ops)
	if err != nil {
		t.Fatalf("single apply: %v", err)
	}
	if gotRes.Applied != wantRes.Applied {
		t.Fatalf("applied %d ops over http, single node applied %d", gotRes.Applied, wantRes.Applied)
	}
	for i := range wantRes.Results {
		g, w := gotRes.Results[i], wantRes.Results[i]
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("op %d error = %v over http, %v single-node", i, g.Err, w.Err)
		}
		if g.Err == nil && g.ID != w.ID {
			t.Fatalf("op %d id = %d over http, %d single-node", i, g.ID, w.ID)
		}
	}
	check("post-mutation")

	// The public front speaks the single-node JSON dialect.
	var entries []server.ResultEntry
	code, hdr := hc.postJSON(t, "/topk", server.QueryRequest{
		Dims: cs.Q.Dims, Weights: cs.Q.Weights, K: cs.K,
	}, &entries)
	if code != http.StatusOK {
		t.Fatalf("front /topk status %d", code)
	}
	if hdr.Get("X-Partial") != "" {
		t.Fatal("healthy front set X-Partial")
	}
	want, err := single.TopKScored(ctx, cs.Q, cs.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("front /topk returned %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.ID != want[i].ID || e.Score != want[i].Score {
			t.Fatalf("front /topk[%d] = %+v, want (id %d, score %v)", i, e, want[i].ID, want[i].Score)
		}
	}
	var an server.AnalyzeResponse
	code, _ = hc.postJSON(t, "/analyze", server.QueryRequest{
		Dims: cs.Q.Dims, Weights: cs.Q.Weights, K: cs.K,
	}, &an)
	if code != http.StatusOK {
		t.Fatalf("front /analyze status %d", code)
	}
	ref, err := single.Analyze(ctx, cs.Q, cs.K, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Partial {
		t.Fatal("healthy front flagged /analyze partial")
	}
	if len(an.Regions) != len(ref.Regions) {
		t.Fatalf("front /analyze returned %d regions, want %d", len(an.Regions), len(ref.Regions))
	}
	for jx, rj := range an.Regions {
		if rj.Lo != ref.Regions[jx].Lo || rj.Hi != ref.Regions[jx].Hi {
			t.Fatalf("front /analyze region[%d] = [%v, %v], want [%v, %v]",
				jx, rj.Lo, rj.Hi, ref.Regions[jx].Lo, ref.Regions[jx].Hi)
		}
	}
	if hc.scrapeMetric(t, `ir_shard_fanout_total{op="topk"}`) == 0 {
		t.Fatal("/metrics exposes no topk fan-out samples")
	}
}

// TestHTTPShardKilledFailsClosed is the satellite fault-injection e2e:
// killing a shard's server mid-run makes every read and the routed
// mutation fail closed (502 at the front), with the fan-out error
// counters visible in the /metrics exposition.
func TestHTTPShardKilledFailsClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(4302))
	ctx := context.Background()
	cs := fixture.RandCase(rng, 60, 6, 2, 3)
	hc := newHTTPCluster(t, cs.Tuples, cs.M, 3, Config{})

	// Healthy first: the failure below must be the kill, not setup.
	if _, err := hc.coord.TopK(ctx, cs.Q, cs.K); err != nil {
		t.Fatalf("healthy topk: %v", err)
	}
	fanoutBefore := hc.scrapeMetric(t, `ir_shard_fanout_total{op="topk"}`)
	errsBefore := hc.scrapeMetric(t, `ir_shard_fanout_errors_total{op="topk"}`)

	hc.shards[1].Close()

	code, _ := hc.postJSON(t, "/topk", server.QueryRequest{
		Dims: cs.Q.Dims, Weights: cs.Q.Weights, K: cs.K,
	}, nil)
	if code != http.StatusBadGateway {
		t.Fatalf("front /topk with dead shard: status %d, want 502", code)
	}
	if _, err := hc.coord.Analyze(ctx, cs.Q, cs.K, engine.Options{}); err == nil {
		t.Fatal("analyze with dead shard succeeded")
	}
	// A delete owned by the dead shard fails closed, with no retry.
	victim := hc.coord.Map().Base(1)
	if _, err := hc.coord.Apply([]engine.Op{{Kind: engine.OpDelete, ID: victim}}); err == nil {
		t.Fatal("apply routed to dead shard succeeded")
	}

	if got := hc.scrapeMetric(t, `ir_shard_fanout_total{op="topk"}`); got <= fanoutBefore {
		t.Fatalf("ir_shard_fanout_total{op=topk} did not grow: %v -> %v", fanoutBefore, got)
	}
	if got := hc.scrapeMetric(t, `ir_shard_fanout_errors_total{op="topk"}`); got <= errsBefore {
		t.Fatalf("ir_shard_fanout_errors_total{op=topk} did not grow: %v -> %v", errsBefore, got)
	}
}

// TestHTTPAllowPartialDegraded pins the -allow-partial posture end to
// end: with a shard dead the front still answers, flags the degradation
// (X-Partial header, partial field), serves the surviving shards' merge,
// and ticks the partial-merge counter.
func TestHTTPAllowPartialDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(4303))
	cs := fixture.RandCase(rng, 60, 6, 2, 3)
	hc := newHTTPCluster(t, cs.Tuples, cs.M, 3, Config{AllowPartial: true})

	partialBefore := hc.scrapeMetric(t, "ir_shard_partial_total")
	hc.shards[1].Close()

	var entries []server.ResultEntry
	code, hdr := hc.postJSON(t, "/topk", server.QueryRequest{
		Dims: cs.Q.Dims, Weights: cs.Q.Weights, K: cs.K,
	}, &entries)
	if code != http.StatusOK {
		t.Fatalf("degraded front /topk status %d, want 200", code)
	}
	if hdr.Get("X-Partial") != "true" {
		t.Fatal("degraded front /topk did not set X-Partial")
	}

	// The degraded answer is a single node over the union minus the dead
	// shard's range (ids renumbered in the oracle, so scores only).
	var surviving []vec.Sparse
	lo, hi := hc.coord.Map().Base(1), hc.coord.Map().Base(2)
	for id, tu := range cs.Tuples {
		if id < lo || id >= hi {
			surviving = append(surviving, tu)
		}
	}
	naive := topk.TopKNaive(surviving, cs.Q, cs.K)
	if len(entries) != len(naive) {
		t.Fatalf("degraded /topk has %d entries, want %d", len(entries), len(naive))
	}
	for i, e := range entries {
		if e.Score != naive[i].Score {
			t.Fatalf("degraded /topk score[%d] = %v, want %v", i, e.Score, naive[i].Score)
		}
	}

	var an server.AnalyzeResponse
	code, hdr = hc.postJSON(t, "/analyze", server.QueryRequest{
		Dims: cs.Q.Dims, Weights: cs.Q.Weights, K: cs.K,
	}, &an)
	if code != http.StatusOK {
		t.Fatalf("degraded front /analyze status %d, want 200", code)
	}
	if !an.Partial || hdr.Get("X-Partial") != "true" {
		t.Fatal("degraded front /analyze did not flag partial")
	}

	if got := hc.scrapeMetric(t, "ir_shard_partial_total"); got <= partialBefore {
		t.Fatalf("ir_shard_partial_total did not grow: %v -> %v", partialBefore, got)
	}
}
