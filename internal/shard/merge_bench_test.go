package shard

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topk"
)

// The shard-mode benchmark (cmd/irbench -shards) reports the
// coordinator's critical path as max(round 1) + max(round 2) over the
// per-shard RPCs and excludes the merge itself. These benchmarks pin
// that exclusion: both merges run in microseconds against the
// millisecond rounds, at realistic fan-in (k=10 over 4..16 shards).

func benchLists(shards, k int, seed int64) [][]topk.Scored {
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]topk.Scored, shards)
	for s := range lists {
		lists[s] = make([]topk.Scored, k)
		score := 1.0
		for i := range lists[s] {
			score -= rng.Float64() / float64(k)
			lists[s][i] = topk.Scored{ID: s*1_000_000 + i, Score: score, Proj: []float64{score, score / 2}}
		}
	}
	return lists
}

func BenchmarkMergeTopK(b *testing.B) {
	for _, shards := range []int{4, 16} {
		b.Run(map[int]string{4: "4shards", 16: "16shards"}[shards], func(b *testing.B) {
			lists := benchLists(shards, 10, 7)
			b.ReportAllocs()
			for b.Loop() {
				mergeTopK(lists, 10)
			}
		})
	}
}

func BenchmarkMergeClassic(b *testing.B) {
	for _, shards := range []int{4, 16} {
		b.Run(map[int]string{4: "4shards", 16: "16shards"}[shards], func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			outs := make([]*core.Output, shards)
			for s := range outs {
				regs := make([]core.Regions, 4) // qlen=4, one Regions per query dim
				for j := range regs {
					regs[j] = core.Regions{
						Dim: j, QPos: j,
						Lo: -rng.Float64(), Hi: rng.Float64(),
						Right: []core.Perturbation{{Delta: rng.Float64(), Above: 1, Below: 2}},
						Left:  []core.Perturbation{{Delta: -rng.Float64(), Above: 2, Below: 1}},
					}
				}
				outs[s] = &core.Output{Regions: regs}
			}
			b.ReportAllocs()
			for b.Loop() {
				mergeClassic(outs)
			}
		})
	}
}
