// Coordinator fan-out observability. Counters are package-level and
// registered once at init (obsreg-enforced), process-wide across every
// coordinator in the process.
package shard

import "repro/internal/obs"

var (
	mFanout = obs.NewCounterVec("ir_shard_fanout_total",
		"shard RPCs the coordinator fanned out, by op (topk, analyze, apply)", "op")
	mFanoutErrors = obs.NewCounterVec("ir_shard_fanout_errors_total",
		"shard RPCs that failed after exhausting their retry budget, by op", "op")
	mRetries = obs.NewCounter("ir_shard_retries_total",
		"shard RPC attempts relaunched after a per-attempt timeout or a transient error")
	mStaleDrops = obs.NewCounter("ir_shard_stale_drops_total",
		"late answers from superseded shard RPC attempts discarded by the attempt-generation guard instead of being merged a second time")
	mPartial = obs.NewCounter("ir_shard_partial_total",
		"scatter-gather merges that proceeded with one or more shards missing (allow-partial)")
)
