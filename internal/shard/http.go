// HTTP glue of the scatter-gather layer: a Backend that speaks to a
// shard's primary+standbys group over internal/client (so sharding
// composes with HA — the client follows redirects and fails over
// within the group), and the coordinator's own handler exposing the
// public /topk, /analyze, /update and /delete surface over the merge.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/topk"
	"repro/internal/vec"
)

// HTTPBackend drives one shard group over HTTP. C's seeds are the
// group's members; writes follow the client's primary routing.
type HTTPBackend struct {
	C *client.Client
}

// NewHTTPBackends builds one backend per shard group. groupSeeds[i]
// lists shard i's member base URLs (primary plus standbys, any order);
// base carries the shared client tuning (retries, timeouts) — its Seeds
// are ignored and its ID becomes a per-shard prefix.
func NewHTTPBackends(groupSeeds [][]string, base client.Config) ([]Backend, error) {
	backends := make([]Backend, len(groupSeeds))
	for i, seeds := range groupSeeds {
		cfg := base
		cfg.Seeds = seeds
		cfg.ID = fmt.Sprintf("%s-shard%d", base.ID, i)
		cl, err := client.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		backends[i] = HTTPBackend{C: cl}
	}
	return backends, nil
}

func (h HTTPBackend) TopK(ctx context.Context, q vec.Query, k int) ([]topk.Scored, error) {
	body, err := json.Marshal(server.QueryRequest{Dims: q.Dims, Weights: q.Weights, K: k})
	if err != nil {
		return nil, err
	}
	var resp server.ShardTopKResponse
	if err := h.C.PostJSON(ctx, "/shard/topk", body, &resp); err != nil {
		return nil, err
	}
	return server.FromScoredJSON(resp.Result), nil
}

func (h HTTPBackend) AnalyzeImposed(ctx context.Context, q vec.Query, k, base int, imposed []topk.Scored, opts engine.Options) (*core.Output, []topk.Scored, error) {
	body, err := json.Marshal(server.ShardAnalyzeRequest{
		Dims:            q.Dims,
		Weights:         q.Weights,
		K:               k,
		Base:            base,
		Imposed:         server.ToScoredJSON(imposed),
		Phi:             opts.Phi,
		Method:          methodName(opts.Method),
		CompositionOnly: opts.CompositionOnly,
		ForceEnvelope:   opts.ForceEnvelope,
		Iterative:       opts.Iterative,
	})
	if err != nil {
		return nil, nil, err
	}
	var resp server.ShardAnalyzeResponse
	if err := h.C.PostJSON(ctx, "/shard/analyze", body, &resp); err != nil {
		return nil, nil, err
	}
	out := &core.Output{Query: q, K: k, Result: imposed}
	out.Metrics.Evaluated = resp.Metrics.Evaluated
	out.Metrics.SeqPages = resp.Metrics.SeqPages
	out.Metrics.RandReads = resp.Metrics.RandReads
	out.Metrics.MemBytes = resp.Metrics.MemBytes
	out.Regions = make([]core.Regions, len(resp.Regions))
	for jx, rj := range resp.Regions {
		reg := core.Regions{Dim: rj.Dim, QPos: jx, Lo: rj.Lo, Hi: rj.Hi}
		for _, p := range rj.Left {
			reg.Left = append(reg.Left, core.Perturbation(p))
		}
		for _, p := range rj.Right {
			reg.Right = append(reg.Right, core.Perturbation(p))
		}
		out.Regions[jx] = reg
	}
	return out, server.FromScoredJSON(resp.Lines), nil
}

// Apply ships the batch as /update and /delete calls, splitting runs at
// kind boundaries (inserts and updates share /update; deletes need
// /delete) while preserving op order. Per-op engine errors come back as
// strings; they are surfaced as opaque errors in the same slots.
func (h HTTPBackend) Apply(ops []engine.Op) (engine.ApplyResult, error) {
	ctx := context.Background()
	res := engine.ApplyResult{Results: make([]engine.OpResult, len(ops))}
	for start := 0; start < len(ops); {
		del := ops[start].Kind == engine.OpDelete
		end := start + 1
		for end < len(ops) && (ops[end].Kind == engine.OpDelete) == del {
			end++
		}
		var body []byte
		var err error
		path := "/update"
		if del {
			path = "/delete"
			req := server.DeleteRequest{}
			for _, op := range ops[start:end] {
				req.IDs = append(req.IDs, op.ID)
			}
			body, err = json.Marshal(req)
		} else {
			req := server.UpdateRequest{}
			for _, op := range ops[start:end] {
				oj := server.UpdateOpJSON{}
				if op.Kind == engine.OpUpdate {
					id := op.ID
					oj.ID = &id
				}
				for _, e := range op.Tuple {
					oj.Tuple = append(oj.Tuple, server.TupleEntryJSON{Dim: e.Dim, Val: e.Val})
				}
				req.Ops = append(req.Ops, oj)
			}
			body, err = json.Marshal(req)
		}
		if err != nil {
			return res, err
		}
		var resp server.MutateResponse
		if err := h.C.PostJSON(ctx, path, body, &resp); err != nil {
			return res, err
		}
		if len(resp.Results) != end-start {
			return res, fmt.Errorf("shard: %s returned %d results for %d ops", path, len(resp.Results), end-start)
		}
		for j, or := range resp.Results {
			r := engine.OpResult{ID: or.ID}
			if or.Error != "" {
				r.Err = errors.New(or.Error)
			}
			res.Results[start+j] = r
		}
		res.Applied += resp.Applied
		res.CacheChecked += resp.CacheChecked
		res.CacheEvicted += resp.CacheEvicted
		res.CacheSurvived += resp.CacheSurvived
		start = end
	}
	return res, nil
}

// SelfBeacon is the GET /cluster document a STANDALONE shard server
// advertises: a confirmed, ready, single-member primary. It makes a
// bare shard routable by internal/client — the same discovery path an
// HA shard group uses — so sharding composes with both deployments.
// Pass the result to (*server.Server).SetClusterInfo.
func SelfBeacon(nodeID, httpAddr string) func() any {
	ci := replication.ClusterInfo{
		NodeID:      nodeID,
		Role:        string(replication.RolePrimary),
		Confirmed:   true,
		Ready:       true,
		HTTPAddr:    httpAddr,
		PrimaryHTTP: httpAddr,
	}
	return func() any { return ci }
}

// methodName is parseMethod's inverse for the shard RPC.
func methodName(m core.Method) string {
	switch m {
	case core.MethodScan:
		return "scan"
	case core.MethodPrune:
		return "prune"
	case core.MethodThres:
		return "thres"
	default:
		return "cpt"
	}
}

// NewHandler exposes the coordinator behind the public single-node
// surface — /topk, /analyze, /update, /delete, plus /healthz and
// /metrics — so existing clients work unchanged against a sharded
// deployment. Degraded answers (allow-partial) carry an X-Partial
// header, and /analyze additionally sets the partial response field.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		req, q, ok := decodeQuery(w, r)
		if !ok {
			return
		}
		res, err := c.TopK(r.Context(), q, req.K)
		if err != nil {
			scatterError(w, err)
			return
		}
		if res.Partial {
			w.Header().Set("X-Partial", "true")
		}
		entries := make([]server.ResultEntry, len(res.Result))
		for i, sc := range res.Result {
			entries[i] = server.ResultEntry{ID: sc.ID, Score: sc.Score}
		}
		writeJSON(w, http.StatusOK, entries)
	})
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		req, q, ok := decodeQuery(w, r)
		if !ok {
			return
		}
		method, err := parseMethodName(req.Method)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		opts := engine.Options{Options: core.Options{
			Method:          method,
			Phi:             req.Phi,
			CompositionOnly: req.CompositionOnly,
		}}
		an, err := c.Analyze(r.Context(), q, req.K, opts)
		if err != nil {
			scatterError(w, err)
			return
		}
		resp := server.AnalyzeResponse{Partial: an.Partial}
		if an.Partial {
			w.Header().Set("X-Partial", "true")
		}
		for _, sc := range an.Result {
			resp.Result = append(resp.Result, server.ResultEntry{ID: sc.ID, Score: sc.Score})
		}
		for _, reg := range an.Regions {
			rj := server.RegionJSON{Dim: reg.Dim, Lo: reg.Lo, Hi: reg.Hi}
			for _, p := range reg.Left {
				rj.Left = append(rj.Left, server.PerturbationJSON(p))
			}
			for _, p := range reg.Right {
				rj.Right = append(rj.Right, server.PerturbationJSON(p))
			}
			resp.Regions = append(resp.Regions, rj)
		}
		resp.Metrics = server.MetricsJSON{
			Evaluated:    an.Metrics.Evaluated,
			EvaluatedAvg: an.Metrics.EvaluatedPerDimAvg(),
			SeqPages:     an.Metrics.SeqPages,
			RandReads:    an.Metrics.RandReads,
			MemBytes:     an.Metrics.MemBytes,
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		var req server.UpdateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
			return
		}
		if len(req.Ops) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("empty op batch"))
			return
		}
		results := make([]server.OpResultJSON, len(req.Ops))
		var ops []engine.Op
		var opIdx []int
		for i, op := range req.Ops {
			entries := make([]vec.Entry, len(op.Tuple))
			for j, e := range op.Tuple {
				entries[j] = vec.Entry{Dim: e.Dim, Val: e.Val}
			}
			t, err := vec.NewSparse(entries)
			if err == nil && t.NNZ() == 0 {
				err = fmt.Errorf("empty tuple (use /delete to remove a tuple)")
			}
			if err != nil {
				id := -1
				if op.ID != nil {
					id = *op.ID
				}
				results[i] = server.OpResultJSON{ID: id, Error: err.Error()}
				continue
			}
			if op.ID != nil {
				ops = append(ops, engine.Op{Kind: engine.OpUpdate, ID: *op.ID, Tuple: t})
			} else {
				ops = append(ops, engine.Op{Kind: engine.OpInsert, Tuple: t})
			}
			opIdx = append(opIdx, i)
		}
		applyOps(w, c, ops, opIdx, results)
	})
	mux.HandleFunc("/delete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		var req server.DeleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
			return
		}
		if len(req.IDs) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("empty id list"))
			return
		}
		ops := make([]engine.Op, len(req.IDs))
		opIdx := make([]int, len(req.IDs))
		for i, id := range req.IDs {
			ops[i] = engine.Op{Kind: engine.OpDelete, ID: id}
			opIdx[i] = i
		}
		applyOps(w, c, ops, opIdx, make([]server.OpResultJSON, len(req.IDs)))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", obs.Handler())
	return obs.RequestID(mux)
}

// applyOps routes the parsed batch through the coordinator and renders
// the single-node mutation response shape.
func applyOps(w http.ResponseWriter, c *Coordinator, ops []engine.Op, opIdx []int, results []server.OpResultJSON) {
	resp := server.MutateResponse{Results: results}
	if len(ops) > 0 {
		res, err := c.Apply(ops)
		if err != nil {
			scatterError(w, err)
			return
		}
		for j, or := range res.Results {
			results[opIdx[j]] = server.OpResultJSON{ID: or.ID}
			if or.Err != nil {
				results[opIdx[j]].Error = or.Err.Error()
			}
		}
		resp.Applied = res.Applied
		resp.CacheChecked = res.CacheChecked
		resp.CacheEvicted = res.CacheEvicted
		resp.CacheSurvived = res.CacheSurvived
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeQuery parses the shared topk/analyze request shape.
func decodeQuery(w http.ResponseWriter, r *http.Request) (server.QueryRequest, vec.Query, bool) {
	var req server.QueryRequest
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return req, vec.Query{}, false
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return req, vec.Query{}, false
	}
	q, err := vec.NewQuery(req.Dims, req.Weights)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return req, vec.Query{}, false
	}
	return req, q, true
}

// parseMethodName mirrors the single-node server's method strings.
func parseMethodName(s string) (core.Method, error) {
	switch s {
	case "", "cpt":
		return core.MethodCPT, nil
	case "scan":
		return core.MethodScan, nil
	case "prune":
		return core.MethodPrune, nil
	case "thres":
		return core.MethodThres, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

// scatterError maps a merge failure to a status: client faults are
// 400s, shard unavailability is a 502 (the coordinator is a gateway).
func scatterError(w http.ResponseWriter, err error) {
	if errors.Is(err, engine.ErrInvalid) {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	httpError(w, http.StatusBadGateway, err)
}

// writeJSON and httpError mirror the single-node server's envelope.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.Log().Error("shard: encode response", "err", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
