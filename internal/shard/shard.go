// Package shard is the scatter-gather layer over the single-node
// engine: a dataset partitioned by tuple-id range across independent
// shard engines, a coordinator that fans queries out and merges the
// answers, and a merge that is bit-identical to a single node over the
// union.
//
// The partition is by id range — shard i owns global ids
// [Bases[i], Bases[i+1]), the last shard open-ended — and every shard
// holds ALL dimensions of its tuples, so per-shard TA scans and region
// computations need no cross-shard I/O. Top-k merges by (score desc,
// id asc), the same total order internal/topk maintains. Immutable
// regions merge in two rounds: the coordinator first merges the global
// result R, then asks every shard for the constraints its own tuples
// impose on R (engine.AnalyzeImposed over core.WithImposed); at φ = 0
// the per-dimension bounds combine by strict min/max, at φ > 0 the
// coordinator replays the union of shard-contributed lines through
// core.ReplayRegions. docs/sharding.md carries the correctness
// argument; TestShardedBitIdentical machine-checks it.
package shard

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Map is the id-range partition: Bases[i] is the first global id of
// shard i. Bases must be ascending and start at 0; the last shard's
// range is open-ended, which is what routes inserts (and the ids they
// mint) without remapping.
type Map struct {
	Bases []int
}

// NewMap validates the partition starts.
func NewMap(bases []int) (Map, error) {
	if len(bases) == 0 || bases[0] != 0 {
		return Map{}, fmt.Errorf("shard: bases must start at 0, have %v", bases)
	}
	for i := 1; i < len(bases); i++ {
		if bases[i] < bases[i-1] {
			return Map{}, fmt.Errorf("shard: bases not ascending: %v", bases)
		}
	}
	return Map{Bases: bases}, nil
}

// EvenBases splits n tuples into the given number of near-equal
// contiguous ranges — the partition cmd/irgen -shards writes.
func EvenBases(n, shards int) []int {
	bases := make([]int, shards)
	for i := range bases {
		bases[i] = i * n / shards
	}
	return bases
}

// NumShards returns the shard count.
func (m Map) NumShards() int { return len(m.Bases) }

// Base returns shard i's first global id.
func (m Map) Base(i int) int { return m.Bases[i] }

// Owner returns the shard owning global id gid. Ids at or past the last
// base — including ids minted by inserts — belong to the last shard.
func (m Map) Owner(gid int) int {
	return sort.Search(len(m.Bases), func(i int) bool { return m.Bases[i] > gid }) - 1
}

// Backend is one shard's query surface as the coordinator sees it. The
// local implementation wraps an *engine.Engine directly; the HTTP one
// speaks to a primary+standbys group through internal/client, which is
// how sharding composes with HA (a shard is just a replication group).
type Backend interface {
	// TopK returns the shard-local top-k in (score desc, id asc) order
	// with subspace projections filled, under LOCAL ids.
	TopK(ctx context.Context, q vec.Query, k int) ([]topk.Scored, error)
	// AnalyzeImposed computes the region constraints the shard's tuples
	// impose on the coordinator-merged result (global ids in and out).
	AnalyzeImposed(ctx context.Context, q vec.Query, k, base int, imposed []topk.Scored, opts engine.Options) (*core.Output, []topk.Scored, error)
	// Apply applies a mutation batch under LOCAL ids.
	Apply(ops []engine.Op) (engine.ApplyResult, error)
}

// Local adapts an in-process engine to the Backend surface — the
// multi-shard test mode, and the building block of single-binary
// deployments.
type Local struct {
	E *engine.Engine
}

func (l Local) TopK(ctx context.Context, q vec.Query, k int) ([]topk.Scored, error) {
	return l.E.TopKScored(ctx, q, k)
}

func (l Local) AnalyzeImposed(ctx context.Context, q vec.Query, k, base int, imposed []topk.Scored, opts engine.Options) (*core.Output, []topk.Scored, error) {
	return l.E.AnalyzeImposed(ctx, q, k, base, imposed, opts)
}

func (l Local) Apply(ops []engine.Op) (engine.ApplyResult, error) {
	return l.E.Apply(ops)
}

// NewLocal range-partitions a dataset into the given number of
// in-memory shard engines and returns a coordinator over them — the
// local multi-shard mode the property suite compares against a
// single-node engine over the same tuples.
func NewLocal(tuples []vec.Sparse, m, shards int, ecfg engine.Config, ccfg Config) (*Coordinator, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, have %d", shards)
	}
	bases := EvenBases(len(tuples), shards)
	engines, err := engine.NewLocalShards(tuples, m, bases, ecfg)
	if err != nil {
		return nil, err
	}
	backends := make([]Backend, len(engines))
	for i, e := range engines {
		backends[i] = Local{E: e}
	}
	mp, err := NewMap(bases)
	if err != nil {
		return nil, err
	}
	return New(mp, backends, ccfg)
}
