package shard

import (
	"encoding/json"
	"fmt"
	"os"
)

// Manifest is the shards.json document describing a range-partitioned
// dataset on disk: cmd/irgen -shards writes it next to the shard-<i>/
// directories, and cmd/irproxy -shard-map loads it to build the
// coordinator's Map (docs/sharding.md).
type Manifest struct {
	Shards int   `json:"shards"`
	N      int   `json:"n"`
	M      int   `json:"m"`
	Bases  []int `json:"bases"`
}

// Map validates the manifest's partition and returns it as a Map.
func (mf Manifest) Map() (Map, error) {
	if len(mf.Bases) != mf.Shards {
		return Map{}, fmt.Errorf("shard: manifest lists %d bases for %d shards", len(mf.Bases), mf.Shards)
	}
	return NewMap(mf.Bases)
}

// WriteManifest writes the manifest as indented JSON.
func WriteManifest(path string, mf Manifest) error {
	raw, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadManifest reads and validates a shards.json.
func LoadManifest(path string) (Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var mf Manifest
	if err := json.Unmarshal(raw, &mf); err != nil {
		return Manifest{}, fmt.Errorf("shard: %s: %w", path, err)
	}
	if _, err := mf.Map(); err != nil {
		return Manifest{}, fmt.Errorf("shard: %s: %w", path, err)
	}
	return mf, nil
}
