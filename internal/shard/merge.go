// The merge half of scatter-gather: per-shard top-k lists into the
// global result, per-shard region constraints into the global immutable
// regions. Everything here is pure float/slice manipulation over
// numbers the shards computed — no arithmetic is introduced that a
// single node would not perform on the identical operands, which is
// what keeps the merge bit-identical (docs/sharding.md).
package shard

import (
	"container/heap"
	"slices"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/topk"
	"repro/internal/vec"
)

// scoredLess is the global result order: score descending, id
// ascending — the same total order internal/topk maintains, so the
// k-way merge of per-shard lists reproduces a single node's result
// list exactly, ties included.
func scoredLess(a, b topk.Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// headHeap is a k-way merge heap over the per-shard lists' heads.
type headHeap struct {
	lists [][]topk.Scored
	pos   []int
	order []int // heap of list indices
}

func (h *headHeap) Len() int { return len(h.order) }
func (h *headHeap) Less(i, j int) bool {
	a, b := h.order[i], h.order[j]
	return scoredLess(h.lists[a][h.pos[a]], h.lists[b][h.pos[b]])
}
func (h *headHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *headHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *headHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// mergeTopK heap-merges per-shard top-k lists (each already in the
// global order, under global ids) and cuts to k. Failed shards pass
// nil lists, which merge as empty.
func mergeTopK(lists [][]topk.Scored, k int) []topk.Scored {
	h := &headHeap{lists: lists, pos: make([]int, len(lists))}
	for i, l := range lists {
		if len(l) > 0 {
			h.order = append(h.order, i)
		}
	}
	heap.Init(h)
	out := make([]topk.Scored, 0, k)
	for len(out) < k && h.Len() > 0 {
		i := h.order[0]
		out = append(out, h.lists[i][h.pos[i]])
		h.pos[i]++
		if h.pos[i] < len(h.lists[i]) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// mergeRegions combines the shards' per-dimension constraint regions,
// mirroring core's computeDim dispatch: the envelope paths (φ > 0,
// iterative, forced envelope, composition-only) merge by replaying the
// union of shard-contributed lines against the imposed result; the
// classic φ = 0 path merges by strict min/max of the per-shard bounds.
func mergeRegions(q vec.Query, k int, res []topk.Scored, outs []*core.Output, lines []topk.Scored, opts engine.Options) []core.Regions {
	if opts.Phi > 0 || opts.ForceEnvelope || opts.CompositionOnly {
		// Shards contribute disjoint tuple sets (imposed members are
		// excluded shard-side), so the union needs no dedup. The replay
		// is offer-order independent; sorting into the canonical
		// candidate order just makes the merge deterministic.
		lines = sortScoredGlobal(lines)
		return core.ReplayRegions(q, k, res, lines, opts.Options)
	}
	return mergeClassic(outs)
}

// sortScoredGlobal returns the lines in (score desc, id asc) order.
func sortScoredGlobal(lines []topk.Scored) []topk.Scored {
	out := append([]topk.Scored(nil), lines...)
	slices.SortFunc(out, func(a, b topk.Scored) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return a.ID - b.ID
		}
	})
	return out
}

// mergeClassic merges φ = 0 regions by per-dimension strict min/max.
// Every shard's bounds already include the result-reordering (Phase 1)
// constraints — computed from the identical imposed-result floats — so
// the strict min over shards of the upper bounds equals the single
// node's min over all constraints, exactly: each bound is the same
// Lemma-1 quotient of the same (score, coordinate) operands. The
// winning shard's perturbation rides along; a cross-shard exact tie
// resolves to the earlier shard, as the single node's strict-<
// first-seen rule resolves it to the earlier candidate.
func mergeClassic(outs []*core.Output) []core.Regions {
	merged := append([]core.Regions(nil), outs[0].Regions...)
	for _, out := range outs[1:] {
		for jx := range merged {
			s := out.Regions[jx]
			if s.Hi < merged[jx].Hi {
				merged[jx].Hi = s.Hi
				merged[jx].Right = s.Right
			}
			if s.Lo > merged[jx].Lo {
				merged[jx].Lo = s.Lo
				merged[jx].Left = s.Left
			}
		}
	}
	return merged
}

// mergeMetrics sums the shards' work counters in shard order. Merged
// metrics describe the distributed computation's total cost — they are
// NOT comparable to a single node's (shards evaluate conservatively
// near their boundaries), which is why the property suite compares
// results and regions, never metrics.
func mergeMetrics(outs []*core.Output) core.Metrics {
	m := core.Metrics{}
	if len(outs) > 0 && len(outs[0].Metrics.EvaluatedPerDim) > 0 {
		m.EvaluatedPerDim = make([]int, len(outs[0].Metrics.EvaluatedPerDim))
	}
	for _, out := range outs {
		om := out.Metrics
		m.Evaluated += om.Evaluated
		for i := range om.EvaluatedPerDim {
			if i < len(m.EvaluatedPerDim) {
				m.EvaluatedPerDim[i] += om.EvaluatedPerDim[i]
			}
		}
		m.Phase1 += om.Phase1
		m.Phase2 += om.Phase2
		m.Phase3 += om.Phase3
		m.Phase3Pulled += om.Phase3Pulled
		m.SeqPages += om.SeqPages
		m.RandReads += om.RandReads
		m.MemBytes += om.MemBytes
	}
	return m
}
