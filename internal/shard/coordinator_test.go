package shard

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/topk"
	"repro/internal/vec"
)

// scriptedBackend wraps a real Local backend but lets the test gate and
// replace individual TopK calls: call n blocks on gates[n-1] (when
// present) and returns answers[n-1] (when non-nil) instead of the live
// answer. entered receives the call number as each attempt arrives.
type scriptedBackend struct {
	Local
	mu      sync.Mutex
	n       int
	entered chan int
	gates   []chan struct{}
	answers [][]topk.Scored
}

func (s *scriptedBackend) TopK(ctx context.Context, q vec.Query, k int) ([]topk.Scored, error) {
	s.mu.Lock()
	s.n++
	n := s.n
	s.mu.Unlock()
	if s.entered != nil {
		s.entered <- n
	}
	if n <= len(s.gates) && s.gates[n-1] != nil {
		<-s.gates[n-1]
	}
	if n <= len(s.answers) && s.answers[n-1] != nil {
		return s.answers[n-1], nil
	}
	return s.Local.TopK(ctx, q, k)
}

// failingBackend fails every RPC.
type failingBackend struct{ err error }

func (f failingBackend) TopK(context.Context, vec.Query, int) ([]topk.Scored, error) {
	return nil, f.err
}
func (f failingBackend) AnalyzeImposed(context.Context, vec.Query, int, int, []topk.Scored, engine.Options) (*core.Output, []topk.Scored, error) {
	return nil, nil, f.err
}
func (f failingBackend) Apply([]engine.Op) (engine.ApplyResult, error) {
	return engine.ApplyResult{}, f.err
}

// TestRetryNoDoubleMerge is the satellite-4 regression: a shard RPC
// retried after a per-attempt timeout must merge exactly one answer —
// the retry's — even when the superseded first attempt's answer arrives
// while the merge is still waiting. The stale answer here reports a
// tuple that a mutation tombstoned between the attempts (the
// lists.Overlay hazard): merging it would resurrect the deleted tuple,
// merging both would double-count the shard.
func TestRetryNoDoubleMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4203))
	ctx := context.Background()
	cs := fixture.RandCase(rng, 40, 6, 2, 3)
	single := singleNode(cs.Tuples, cs.M)

	bases := EvenBases(len(cs.Tuples), 2)
	engines, err := engine.NewLocalShards(cs.Tuples, cs.M, bases, engine.Config{CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	scripted := &scriptedBackend{
		Local:   Local{E: engines[1]},
		entered: make(chan int, 4),
		gates:   []chan struct{}{make(chan struct{}), make(chan struct{})},
	}
	// The stale answer claims a pre-delete view: the about-to-be-deleted
	// tuple (global id bases[1], local id 0 on shard 1) at an impossibly
	// good score. If the guard ever lets it through, it lands at rank 0
	// of the merge and the test fails loudly.
	stale := []topk.Scored{{ID: 0, Score: 1e9, Proj: make([]float64, cs.Q.Len())}}
	scripted.answers = [][]topk.Scored{stale, nil}

	mp, err := NewMap(bases)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(mp, []Backend{Local{E: engines[0]}, scripted}, Config{
		MaxRetries: 1,
		// Generous: the whole stale-delivery sequence below must fit in
		// one attempt window, or the retry itself would time out.
		AttemptTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	staleBefore := mStaleDrops.Value()

	type res struct {
		r   *TopKResult
		err error
	}
	done := make(chan res, 1)
	go func() {
		r, err := coord.TopK(ctx, cs.Q, cs.K)
		done <- res{r, err}
	}()

	// Attempt 1 arrives and blocks; the per-attempt timeout lapses and
	// attempt 2 arrives, also blocked.
	if n := <-scripted.entered; n != 1 {
		t.Fatalf("first call numbered %d", n)
	}
	if n := <-scripted.entered; n != 2 {
		t.Fatalf("second call numbered %d", n)
	}
	// Tombstone the victim between the attempts, as a racing delete
	// would: the stale answer now reports a dead tuple.
	if _, err := coord.Apply([]engine.Op{{Kind: engine.OpDelete, ID: bases[1]}}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := single.Apply([]engine.Op{{Kind: engine.OpDelete, ID: bases[1]}}); err != nil {
		t.Fatalf("single delete: %v", err)
	}
	// Release the STALE attempt first — its answer reaches the
	// coordinator while the fresh attempt is still running and must be
	// discarded — then the fresh one.
	close(scripted.gates[0])
	for mStaleDrops.Value() == staleBefore {
		time.Sleep(time.Millisecond)
	}
	close(scripted.gates[1])

	r := <-done
	if r.err != nil {
		t.Fatalf("sharded topk: %v", r.err)
	}
	want, err := single.TopKScored(ctx, cs.Q, cs.K)
	if err != nil {
		t.Fatalf("single topk: %v", err)
	}
	diffScored(t, "retry/topk", r.r.Result, want)
	for _, sc := range r.r.Result {
		if sc.Score == 1e9 {
			t.Fatalf("stale pre-delete answer merged: %+v", r.r.Result)
		}
	}
	if got := mStaleDrops.Value() - staleBefore; got != 1 {
		t.Fatalf("stale drops = %d, want 1", got)
	}
}

// TestFailClosed pins the default partial-failure posture: any shard
// failing its RPC budget fails the whole query with the shard named,
// for reads; mutations fail closed with no retry at all.
func TestFailClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(4204))
	ctx := context.Background()
	cs := fixture.RandCase(rng, 40, 6, 2, 3)
	coord := localCoord(t, cs.Tuples, cs.M, 4, Config{})
	boom := errors.New("shard down")
	coord.backends[2] = failingBackend{err: boom}

	if _, err := coord.TopK(ctx, cs.Q, cs.K); !errors.Is(err, boom) {
		t.Fatalf("topk error = %v, want wrapped %v", err, boom)
	}
	if _, err := coord.Analyze(ctx, cs.Q, cs.K, engine.Options{}); !errors.Is(err, boom) {
		t.Fatalf("analyze error = %v, want wrapped %v", err, boom)
	}
	// The failing shard owns ids [Base(2), Base(3)): a delete routed
	// there must fail, and the batch must stop at it.
	if _, err := coord.Apply([]engine.Op{{Kind: engine.OpDelete, ID: coord.m.Base(2)}}); !errors.Is(err, boom) {
		t.Fatalf("apply error = %v, want wrapped %v", err, boom)
	}
}

// TestAllowPartial pins the degraded-but-flagged posture: with
// AllowPartial the merge proceeds over the surviving shards, the answer
// is marked Partial with the failed shard listed, and the partial-merge
// counter ticks.
func TestAllowPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(4205))
	ctx := context.Background()
	cs := fixture.RandCase(rng, 60, 6, 2, 3)
	coord := localCoord(t, cs.Tuples, cs.M, 4, Config{AllowPartial: true})
	coord.backends[1] = failingBackend{err: errors.New("shard down")}

	// The expected degraded answer: a single node over the union minus
	// the failed shard's id range.
	var surviving []vec.Sparse
	lo, hi := coord.m.Base(1), coord.m.Base(2)
	for id, tu := range cs.Tuples {
		if id < lo || id >= hi {
			surviving = append(surviving, tu)
		}
	}

	partialBefore := mPartial.Value()
	got, err := coord.TopK(ctx, cs.Q, cs.K)
	if err != nil {
		t.Fatalf("partial topk: %v", err)
	}
	if !got.Partial || len(got.Failed) != 1 || got.Failed[0] != 1 {
		t.Fatalf("partial flags = %+v, want Partial with shard 1 failed", got)
	}
	naive := topk.TopKNaive(surviving, cs.Q, cs.K)
	if len(got.Result) != len(naive) {
		t.Fatalf("partial merge has %d results, want %d", len(got.Result), len(naive))
	}
	for i, sc := range got.Result {
		if sc.Score != naive[i].Score {
			t.Fatalf("partial merge score[%d] = %v, want %v", i, sc.Score, naive[i].Score)
		}
	}
	if mPartial.Value() == partialBefore {
		t.Fatal("partial merge did not tick ir_shard_partial_total")
	}

	an, err := coord.Analyze(ctx, cs.Q, cs.K, engine.Options{})
	if err != nil {
		t.Fatalf("partial analyze: %v", err)
	}
	if !an.Partial || len(an.Failed) != 1 || an.Failed[0] != 1 {
		t.Fatalf("partial analyze flags = %+v/%v", an.Partial, an.Failed)
	}
}
