package shard

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

var shardCounts = []int{1, 2, 4, 8}

func singleNode(tuples []vec.Sparse, m int) *engine.Engine {
	own := append([]vec.Sparse(nil), tuples...)
	return engine.New(lists.NewMemIndex(own, m), engine.Config{CacheEntries: -1})
}

func localCoord(t *testing.T, tuples []vec.Sparse, m, shards int, ccfg Config) *Coordinator {
	t.Helper()
	coord, err := NewLocal(tuples, m, shards, engine.Config{CacheEntries: -1}, ccfg)
	if err != nil {
		t.Fatalf("NewLocal(%d shards): %v", shards, err)
	}
	return coord
}

// diffScored requires bit-identical result lists: ids, scores and
// subspace projections. Metrics are deliberately NOT compared anywhere
// in this file — shards work conservatively near their boundaries, and
// the merge contract covers answers, not effort.
func diffScored(t *testing.T, tag string, got, want []topk.Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Score != w.Score {
			t.Fatalf("%s: result[%d] = (id %d, score %v), want (id %d, score %v)",
				tag, i, g.ID, g.Score, w.ID, w.Score)
		}
		if len(g.Proj) != len(w.Proj) {
			t.Fatalf("%s: result[%d] proj len %d, want %d", tag, i, len(g.Proj), len(w.Proj))
		}
		for j := range w.Proj {
			if g.Proj[j] != w.Proj[j] {
				t.Fatalf("%s: result[%d] proj[%d] = %v, want %v", tag, i, j, g.Proj[j], w.Proj[j])
			}
		}
	}
}

func diffPerts(t *testing.T, tag string, got, want []core.Perturbation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d perturbations, want %d (got %+v want %+v)", tag, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Delta != w.Delta || g.Above != w.Above || g.Below != w.Below || g.Entry != w.Entry {
			t.Fatalf("%s: perturbation[%d] = %+v, want %+v", tag, i, g, w)
		}
	}
}

// diffOutputs requires the merged answer bit-identical to the
// single-node one: result list, then per-dimension region bounds and
// full perturbation schedules.
func diffOutputs(t *testing.T, tag string, got, want *core.Output) {
	t.Helper()
	diffScored(t, tag+"/result", got.Result, want.Result)
	if len(got.Regions) != len(want.Regions) {
		t.Fatalf("%s: %d regions, want %d", tag, len(got.Regions), len(want.Regions))
	}
	for jx := range want.Regions {
		g, w := got.Regions[jx], want.Regions[jx]
		if g.Dim != w.Dim || g.QPos != w.QPos {
			t.Fatalf("%s: regions[%d] dim/qpos = %d/%d, want %d/%d", tag, jx, g.Dim, g.QPos, w.Dim, w.QPos)
		}
		if g.Lo != w.Lo || g.Hi != w.Hi {
			t.Fatalf("%s: regions[%d] = [%v, %v], want [%v, %v]", tag, jx, g.Lo, g.Hi, w.Lo, w.Hi)
		}
		diffPerts(t, tag+"/right", g.Right, w.Right)
		diffPerts(t, tag+"/left", g.Left, w.Left)
	}
}

// randTuple draws an insert/update payload in general position: non-zero
// on at least one query dimension, like the fixture generator's tuples.
func randTuple(rng *rand.Rand, q vec.Query, m int) vec.Sparse {
	var entries []vec.Entry
	nz := 1 + rng.Intn(q.Len())
	for _, p := range rng.Perm(q.Len())[:nz] {
		entries = append(entries, vec.Entry{Dim: q.Dims[p], Val: 0.05 + 0.95*rng.Float64()})
	}
	for d := 0; d < m; d++ {
		if q.Pos(d) < 0 && rng.Float64() < 0.3 {
			entries = append(entries, vec.Entry{Dim: d, Val: rng.Float64()})
		}
	}
	tu, err := vec.NewSparse(entries)
	if err != nil {
		panic(err)
	}
	return tu
}

// randOps draws a mutation batch over the current id space [0, n):
// inserts, updates and deletes mixed, some targeting ids already dead.
func randOps(rng *rand.Rand, q vec.Query, m, n, count int) []engine.Op {
	ops := make([]engine.Op, 0, count)
	for i := 0; i < count; i++ {
		switch rng.Intn(3) {
		case 0:
			ops = append(ops, engine.Op{Kind: engine.OpInsert, Tuple: randTuple(rng, q, m)})
		case 1:
			ops = append(ops, engine.Op{Kind: engine.OpUpdate, ID: rng.Intn(n), Tuple: randTuple(rng, q, m)})
		default:
			ops = append(ops, engine.Op{Kind: engine.OpDelete, ID: rng.Intn(n)})
		}
	}
	return ops
}

// optsVariants covers both merge paths (classic min/max and envelope
// replay) and every dispatch special-case: plain φ=0 per method, φ>0,
// iterative φ>0, forced envelope and composition-only.
func optsVariants(rng *rand.Rand) []engine.Options {
	return []engine.Options{
		{Options: core.Options{Method: core.MethodScan}},
		{Options: core.Options{Method: core.MethodThres}},
		{Options: core.Options{Method: core.MethodPrune}},
		{Options: core.Options{Method: core.MethodCPT}},
		{Options: core.Options{Method: core.MethodScan, Phi: 1 + rng.Intn(2)}},
		{Options: core.Options{Method: core.MethodCPT, Phi: 2}},
		{Options: core.Options{Method: core.MethodScan, Phi: 1 + rng.Intn(2), Iterative: true}},
		{Options: core.Options{Method: core.MethodThres, ForceEnvelope: true}},
		{Options: core.Options{Method: core.MethodScan, CompositionOnly: true, Phi: 1}},
	}
}

// TestShardedBitIdentical is the tentpole's property suite: across
// randomized datasets, weights, k and φ, and across shard counts
// 1/2/4/8, the coordinator's /topk and /analyze answers are
// bit-identical to a single-node engine over the union — scores,
// result ids and order, region bounds and perturbation schedules —
// including after Engine.Apply mutation batches routed through the
// coordinator to the owning shards.
func TestShardedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4201))
	ctx := context.Background()
	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		n := 70 + rng.Intn(70)
		if trial == 0 {
			// Under-full shards: fewer tuples than shards*k, so every
			// shard returns short lists and |R| can be < k post-delete.
			n = 10
		}
		cs := fixture.RandCase(rng, n, 6, 2+rng.Intn(2), 2+rng.Intn(4))
		variants := optsVariants(rng)
		for _, shards := range shardCounts {
			single := singleNode(cs.Tuples, cs.M)
			coord := localCoord(t, cs.Tuples, cs.M, shards, Config{})

			check := func(stage string) {
				want, err := single.TopKScored(ctx, cs.Q, cs.K)
				if err != nil {
					t.Fatalf("trial %d %s: single topk: %v", trial, stage, err)
				}
				got, err := coord.TopK(ctx, cs.Q, cs.K)
				if err != nil {
					t.Fatalf("trial %d %s: sharded topk: %v", trial, stage, err)
				}
				if got.Partial {
					t.Fatalf("trial %d %s: unexpected partial topk", trial, stage)
				}
				diffScored(t, stage+"/topk", got.Result, want)

				for oi, opts := range variants {
					wa, err := single.Analyze(ctx, cs.Q, cs.K, opts)
					if err != nil {
						t.Fatalf("trial %d %s opts %d: single analyze: %v", trial, stage, oi, err)
					}
					ga, err := coord.Analyze(ctx, cs.Q, cs.K, opts)
					if err != nil {
						t.Fatalf("trial %d %s opts %d: sharded analyze: %v", trial, stage, oi, err)
					}
					if ga.Partial {
						t.Fatalf("trial %d %s opts %d: unexpected partial analyze", trial, stage, oi)
					}
					diffOutputs(t, stage+"/analyze", ga.Output, wa.Output)
				}
			}

			check("pre-mutation")

			// Route one mutation batch through both sides and re-check.
			// Per-op outcomes must agree in minted ids and success; error
			// text may differ (shards report local context).
			ops := randOps(rng, cs.Q, cs.M, len(cs.Tuples), 8)
			wr, err := single.Apply(ops)
			if err != nil {
				t.Fatalf("trial %d: single apply: %v", trial, err)
			}
			gr, err := coord.Apply(ops)
			if err != nil {
				t.Fatalf("trial %d: sharded apply: %v", trial, err)
			}
			if len(gr.Results) != len(wr.Results) || gr.Applied != wr.Applied {
				t.Fatalf("trial %d: apply applied=%d/%d results, want %d/%d",
					trial, gr.Applied, len(gr.Results), wr.Applied, len(wr.Results))
			}
			for i := range wr.Results {
				w, g := wr.Results[i], gr.Results[i]
				if (w.Err == nil) != (g.Err == nil) {
					t.Fatalf("trial %d: op %d error mismatch: single %v, sharded %v", trial, i, w.Err, g.Err)
				}
				if w.Err == nil && w.ID != g.ID {
					t.Fatalf("trial %d: op %d id %d, want %d", trial, i, g.ID, w.ID)
				}
			}

			check("post-mutation")
		}
	}
}

// TestIntersectedRegionIsCertificate is the footnote-1 property: the
// cross-polytope spanned by the merged per-dimension bounds is a true
// certificate. Any deviation vector the certifier accepts must leave
// the merged top-k unchanged (no false containment claims), and points
// scaled past the polytope boundary must be rejected.
func TestIntersectedRegionIsCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(4202))
	ctx := context.Background()
	trials := 5
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		cs := fixture.RandCase(rng, 60+rng.Intn(60), 6, 2+rng.Intn(2), 2+rng.Intn(3))
		coord := localCoord(t, cs.Tuples, cs.M, 1+rng.Intn(4), Config{})
		an, err := coord.Analyze(ctx, cs.Q, cs.K, engine.Options{})
		if err != nil {
			t.Fatalf("trial %d: analyze: %v", trial, err)
		}
		qlen := cs.Q.Len()
		lo := make([]float64, qlen)
		hi := make([]float64, qlen)
		for _, r := range an.Regions {
			lo[r.QPos], hi[r.QPos] = r.Lo, r.Hi
		}
		baseIDs := an.RankedIDs()

		checkAt := func(devs []float64, mustBeInside, mustBeOutside bool) {
			inside := vec.CrossSafe(lo, hi, devs)
			if mustBeInside && !inside {
				t.Fatalf("trial %d: certifier rejected an interior point %v of lo=%v hi=%v", trial, devs, lo, hi)
			}
			if mustBeOutside && inside {
				t.Fatalf("trial %d: certifier claimed containment outside the polytope: %v of lo=%v hi=%v", trial, devs, lo, hi)
			}
			if !inside {
				return
			}
			w := append([]float64(nil), cs.Q.Weights...)
			for j := range w {
				w[j] += devs[j]
			}
			perturbed := vec.Query{Dims: cs.Q.Dims, Weights: w}
			naive := topk.TopKNaive(cs.Tuples, perturbed, cs.K)
			for i, sc := range naive {
				if i >= len(baseIDs) || sc.ID != baseIDs[i] {
					t.Fatalf("trial %d: certified deviation %v changed the result: got %v at rank %d, base ids %v",
						trial, devs, sc.ID, i, baseIDs)
				}
			}
		}

		for s := 0; s < 40; s++ {
			// Random points in a box around the polytope: accepted ones
			// must preserve the result, whatever side they land on.
			devs := make([]float64, qlen)
			for j := range devs {
				devs[j] = (lo[j] + rng.Float64()*(hi[j]-lo[j])) * 1.6
			}
			checkAt(devs, false, false)

			// A point strictly inside the polytope: coefficients over the
			// vertex directions summing below 1 must be certified and safe.
			frac := make([]float64, qlen)
			sum := 0.0
			for j := range frac {
				frac[j] = rng.Float64()
				sum += frac[j]
			}
			inside := make([]float64, qlen)
			outside := make([]float64, qlen)
			for j := range inside {
				c := 0.9 * frac[j] / sum
				ext := hi[j]
				if rng.Intn(2) == 0 {
					ext = lo[j]
				}
				inside[j] = c * ext
				outside[j] = c * ext / 0.9 * 1.3
			}
			checkAt(inside, true, false)
			checkAt(outside, false, true)
		}
	}
}

// TestMapOwner pins the id-range routing, including the open-ended
// last shard that owns freshly minted insert ids.
func TestMapOwner(t *testing.T) {
	m, err := NewMap([]int{0, 10, 10, 25})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ gid, want int }{
		{0, 0}, {9, 0}, {10, 2}, {24, 2}, {25, 3}, {1000, 3},
	}
	for _, c := range cases {
		if got := m.Owner(c.gid); got != c.want {
			t.Fatalf("Owner(%d) = %d, want %d", c.gid, got, c.want)
		}
	}
	if _, err := NewMap([]int{1, 5}); err == nil {
		t.Fatal("NewMap accepted bases not starting at 0")
	}
	if _, err := NewMap([]int{0, 5, 3}); err == nil {
		t.Fatal("NewMap accepted descending bases")
	}
}
