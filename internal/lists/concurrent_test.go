package lists_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/topk"
)

// TestDiskIndexConcurrentQueries runs many TA scans at once over one
// disk-backed index with a small buffer pool, through per-query stats
// views. Every run must reproduce the solo result, the per-query random
// read counts must be exact, and the run must be race-clean (the pool's
// LRU is the shared mutable structure under test).
func TestDiskIndexConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cs := fixture.RandCase(rng, 250, 6, 3, 8)
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "t.dat"), filepath.Join(dir, "l.dat")
	if err := lists.SaveDataset(tp, lp, cs.Tuples, cs.M); err != nil {
		t.Fatal(err)
	}
	ix, err := lists.OpenDiskIndex(tp, lp, 16) // tiny pool: force eviction churn
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	solo := func() ([]topk.Scored, int64) {
		st := ix.Stats().Child()
		view := ix.WithStats(st)
		ta := topk.New(view, cs.Q, cs.K, topk.BestList)
		ta.Run()
		_, rnd, _ := st.Snapshot()
		return ta.Result(), rnd
	}
	wantRes, wantRnd := solo()
	if wantRnd == 0 {
		t.Fatal("solo run charged no random reads")
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				res, rnd := solo()
				if !reflect.DeepEqual(res, wantRes) {
					t.Errorf("concurrent result diverged")
				}
				if rnd != wantRnd {
					t.Errorf("per-query random reads %d, want %d", rnd, wantRnd)
				}
			}
		}()
	}
	wg.Wait()
}
