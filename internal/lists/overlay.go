// Overlay: a write layer over a read-only Index (typically a DiskIndex)
// that makes it Mutable without touching the underlying files. New and
// updated tuples live in memory as delta posting lists; base postings of
// updated or deleted tuples are tombstoned and skipped by the merged
// cursor. The merged sorted order is exactly BuildPostings' (descending
// value, ties by ascending id), so to the query path an overlay is
// indistinguishable from an index freshly built on the post-update
// dataset.
//
// The overlay follows the same synchronization contract as every other
// Mutable: mutations must be externally serialized against readers (the
// engine's reader-writer lock does this). The delta itself is
// memory-only; durability comes from the engine's write-ahead log
// (internal/wal), which replays into a fresh overlay on open, and from
// checkpoint compaction, which folds the live view (Materialize) into
// fresh tuple/list files. DeltaStats makes the overlay's growth
// observable so the checkpointer can bound it.
package lists

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/vec"
)

// overlayTuple is the overlay's version of a base tuple: a replacement,
// or a tombstone when dead is set.
type overlayTuple struct {
	t    vec.Sparse
	dead bool
}

// Overlay is a Mutable Index layering in-memory changes over a read-only
// base.
type Overlay struct {
	base  Index
	baseN int
	m     int
	stats *storage.IOStats

	// added holds inserted tuples; id = baseN + slice index. A nil slot
	// is a deleted insert (ids are never reused).
	added []vec.Sparse
	// over maps base ids to their overlay version (update or tombstone).
	over map[int]overlayTuple
	// deadBase flags base ids whose base postings are stale; merged
	// cursors skip them. One bit per base tuple.
	deadBase []uint64
	// deadPerDim counts skipped base postings per dimension, so ListLen
	// reports the live length.
	deadPerDim map[int]int
	// delta holds the postings of added and updated tuples, sorted.
	delta map[int]PostingList
	// ds is the delta accounting, maintained incrementally by every
	// mutation so DeltaStats (and the engine's per-Apply checkpoint
	// trigger) is O(1) instead of a scan of the whole delta.
	ds DeltaStats
}

// NewOverlay builds a write overlay over base. The base index must not
// change underneath it.
func NewOverlay(base Index) *Overlay {
	ov := &Overlay{
		base:       base,
		baseN:      base.NumTuples(),
		m:          base.Dim(),
		stats:      base.Stats(),
		over:       make(map[int]overlayTuple),
		deadBase:   make([]uint64, (base.NumTuples()+63)/64),
		deadPerDim: make(map[int]int),
		delta:      make(map[int]PostingList),
	}
	ov.ds.Bytes = 8 * int64(len(ov.deadBase))
	return ov
}

// NumTuples returns the dataset cardinality including inserted tuples
// (tombstoned slots are counted: ids are stable).
func (ov *Overlay) NumTuples() int { return ov.baseN + len(ov.added) }

// Dim returns the dimensionality m.
func (ov *Overlay) Dim() int { return ov.m }

// ListLen returns the live length of dim's inverted list: base postings
// minus tombstoned ones plus delta postings.
func (ov *Overlay) ListLen(dim int) int {
	return ov.base.ListLen(dim) - ov.deadPerDim[dim] + ov.delta[dim].Len()
}

// Stats returns the I/O meter (shared with the base index).
func (ov *Overlay) Stats() *storage.IOStats { return ov.stats }

// WithStats returns a view whose base and delta accesses both charge st.
func (ov *Overlay) WithStats(st *storage.IOStats) Index {
	cp := *ov
	cp.base = ov.base.WithStats(st)
	cp.stats = st
	return &cp
}

// Tuple fetches a tuple, charging one random read. Overlay-resident
// versions are charged like MemIndex tuples.
func (ov *Overlay) Tuple(id int) vec.Sparse {
	if id >= ov.baseN {
		t := ov.added[id-ov.baseN]
		ov.stats.AddRandRead(4 + 12*len(t))
		return t
	}
	if e, ok := ov.over[id]; ok {
		ov.stats.AddRandRead(4 + 12*len(e.t))
		return e.t
	}
	return ov.base.Tuple(id)
}

// DeltaStats is a point-in-time measure of an overlay's in-memory
// delta, the raw material of checkpoint-trigger decisions and /stats.
type DeltaStats struct {
	// Added counts live inserted tuples (deleted inserts excluded).
	Added int
	// Overridden counts base tuples replaced by an updated version.
	Overridden int
	// Tombstoned counts dead slots: deleted base tuples plus deleted
	// inserts.
	Tombstoned int
	// DeltaPostings counts postings in the delta lists.
	DeltaPostings int
	// Bytes approximates the delta's memory footprint: tuple payloads at
	// 12 B/entry plus delta postings at 12 B plus fixed per-slot
	// overheads. It is an estimate for bounding growth, not an exact
	// accounting.
	Bytes int64
}

// DeltaStats measures the overlay's current delta. The accounting is
// maintained incrementally by the mutation paths, so reading it is
// O(1) — cheap enough for the engine to consult on every Apply. Like
// mutations, it must be serialized against writers (the engine calls
// it under its lock).
func (ov *Overlay) DeltaStats() DeltaStats { return ov.ds }

// tupleBytes is the per-slot estimate of an overlay-resident tuple:
// slice header + map/slot overhead plus 12 B per entry.
func tupleBytes(t vec.Sparse) int64 { return 48 + 12*int64(len(t)) }

// tombBytes is the per-slot estimate of a tombstone.
const tombBytes = 16

// Materialize snapshots the live dataset view: a slice of NumTuples()
// tuples with nil at tombstoned slots, in id order — exactly what a
// checkpoint writes to fresh tuple/list files (nil slots become empty
// records, keeping ids stable across compaction). Base reads are
// charged to a throwaway meter so a checkpoint's physical scan does not
// distort query metering.
func (ov *Overlay) Materialize() []vec.Sparse {
	base := ov.base.WithStats(&storage.IOStats{})
	out := make([]vec.Sparse, ov.NumTuples())
	for id := 0; id < ov.baseN; id++ {
		if e, ok := ov.over[id]; ok {
			if !e.dead {
				out[id] = e.t
			}
			continue
		}
		if ov.deadBase[id>>6]&(1<<(uint(id)&63)) != 0 {
			continue
		}
		if t := base.Tuple(id); len(t) > 0 {
			out[id] = t // empty base records are prior-compaction tombstones
		}
	}
	copy(out[ov.baseN:], ov.added)
	return out
}

// Cursor opens a merged sorted-access cursor on dim.
func (ov *Overlay) Cursor(dim int) Cursor {
	pl := ov.delta[dim]
	return &overlayCursor{
		base:  ov.base.Cursor(dim),
		dead:  ov.deadBase,
		ids:   pl.IDs,
		vals:  pl.Vals,
		stats: ov.stats,
	}
}

// current returns the live version of a base id (nil when tombstoned)
// plus whether its base postings are already dead. An EMPTY base tuple
// is a tombstone: checkpoint compaction persists deleted slots as empty
// records (ids must stay stable), and validateTuple guarantees no live
// tuple is ever empty — so without this check a delete would stop being
// one after the next compaction.
func (ov *Overlay) current(id int) (t vec.Sparse, overridden bool, err error) {
	if e, ok := ov.over[id]; ok {
		if e.dead {
			return nil, true, fmt.Errorf("lists: tuple %d is deleted", id)
		}
		return e.t, true, nil
	}
	t = ov.base.Tuple(id)
	if len(t) == 0 {
		return nil, false, fmt.Errorf("lists: tuple %d is deleted", id)
	}
	return t, false, nil
}

// tombstoneBase marks a base tuple's postings dead (first override only).
func (ov *Overlay) tombstoneBase(id int, base vec.Sparse) {
	ov.deadBase[id>>6] |= 1 << (uint(id) & 63)
	for _, e := range base {
		ov.deadPerDim[e.Dim]++
	}
}

func (ov *Overlay) addDelta(id int, t vec.Sparse) {
	for _, e := range t {
		ov.delta[e.Dim] = insertPosting(ov.delta[e.Dim], int32(id), e.Val)
	}
	ov.ds.DeltaPostings += len(t)
	ov.ds.Bytes += 12 * int64(len(t))
}

func (ov *Overlay) dropDelta(id int, t vec.Sparse) {
	for _, e := range t {
		pl, ok := removePosting(ov.delta[e.Dim], int32(id), e.Val)
		if !ok {
			panic(fmt.Sprintf("lists: delta posting (%d, %v) missing from dim %d", id, e.Val, e.Dim))
		}
		ov.delta[e.Dim] = pl
	}
	ov.ds.DeltaPostings -= len(t)
	ov.ds.Bytes -= 12 * int64(len(t))
}

// Insert adds a new tuple to the overlay, returning its id.
func (ov *Overlay) Insert(t vec.Sparse) (int, error) {
	if err := validateTuple(t, ov.m); err != nil {
		return -1, err
	}
	id := ov.baseN + len(ov.added)
	ov.added = append(ov.added, t.Clone())
	ov.addDelta(id, t)
	ov.ds.Added++
	ov.ds.Bytes += tupleBytes(t)
	return id, nil
}

// Update replaces tuple id and returns the previous version.
func (ov *Overlay) Update(id int, t vec.Sparse) (vec.Sparse, error) {
	if id < 0 || id >= ov.NumTuples() {
		return nil, fmt.Errorf("lists: tuple %d out of range [0,%d)", id, ov.NumTuples())
	}
	if err := validateTuple(t, ov.m); err != nil {
		return nil, err
	}
	if id >= ov.baseN {
		old := ov.added[id-ov.baseN]
		if old == nil {
			return nil, fmt.Errorf("lists: tuple %d is deleted", id)
		}
		ov.dropDelta(id, old)
		ov.added[id-ov.baseN] = t.Clone()
		ov.addDelta(id, t)
		ov.ds.Bytes += tupleBytes(t) - tupleBytes(old)
		return old, nil
	}
	old, overridden, err := ov.current(id)
	if err != nil {
		return nil, err
	}
	if overridden {
		ov.dropDelta(id, old)
		ov.ds.Bytes += tupleBytes(t) - tupleBytes(old)
	} else {
		ov.tombstoneBase(id, old)
		ov.ds.Overridden++
		ov.ds.Bytes += tupleBytes(t)
	}
	ov.over[id] = overlayTuple{t: t.Clone()}
	ov.addDelta(id, t)
	return old, nil
}

// Delete tombstones tuple id and returns the deleted version.
func (ov *Overlay) Delete(id int) (vec.Sparse, error) {
	if id < 0 || id >= ov.NumTuples() {
		return nil, fmt.Errorf("lists: tuple %d out of range [0,%d)", id, ov.NumTuples())
	}
	if id >= ov.baseN {
		old := ov.added[id-ov.baseN]
		if old == nil {
			return nil, fmt.Errorf("lists: tuple %d is already deleted", id)
		}
		ov.dropDelta(id, old)
		ov.added[id-ov.baseN] = nil
		ov.ds.Added--
		ov.ds.Tombstoned++
		ov.ds.Bytes += tombBytes - tupleBytes(old)
		return old, nil
	}
	old, overridden, err := ov.current(id)
	if err != nil {
		return nil, fmt.Errorf("lists: tuple %d is already deleted", id)
	}
	if overridden {
		ov.dropDelta(id, old)
		ov.ds.Overridden--
		ov.ds.Bytes += tombBytes - tupleBytes(old)
	} else {
		ov.tombstoneBase(id, old)
		ov.ds.Bytes += tombBytes
	}
	ov.over[id] = overlayTuple{dead: true}
	ov.ds.Tombstoned++
	return old, nil
}

// overlayCursor merges the base cursor (skipping tombstoned ids) with
// the dimension's delta postings, preserving the (val desc, id asc)
// order. An id never appears on both sides: delta postings belong to
// added or overridden tuples, whose base postings are tombstoned.
type overlayCursor struct {
	base  Cursor
	dead  []uint64
	ids   []int32
	vals  []float64
	pos   int // delta position
	n     int // merged postings consumed
	stats *storage.IOStats
}

// skipDead consumes base postings of tombstoned tuples. Reading past
// them is charged to the base cursor: the scan physically visits them.
func (c *overlayCursor) skipDead() {
	for {
		p, ok := c.base.Peek()
		if !ok || c.dead[p.ID>>6]&(1<<(uint(p.ID)&63)) == 0 {
			return
		}
		c.base.Next()
	}
}

// peek returns the next merged posting and whether it comes from the
// delta side.
func (c *overlayCursor) peek() (p storage.Posting, fromDelta, ok bool) {
	c.skipDead()
	bp, bok := c.base.Peek()
	if c.pos < len(c.ids) {
		dp := storage.Posting{ID: int(c.ids[c.pos]), Val: c.vals[c.pos]}
		if !bok || dp.Val > bp.Val || (dp.Val == bp.Val && dp.ID < bp.ID) {
			return dp, true, true
		}
	}
	return bp, false, bok
}

func (c *overlayCursor) Peek() (storage.Posting, bool) {
	p, _, ok := c.peek()
	return p, ok
}

func (c *overlayCursor) Next() (storage.Posting, bool) {
	p, fromDelta, ok := c.peek()
	if !ok {
		return storage.Posting{}, false
	}
	c.n++
	if fromDelta {
		// Charge the delta side like MemIndex postings.
		if c.pos%postingsPerPage == 0 {
			c.stats.AddSeqPage(1)
		}
		c.pos++
		return p, true
	}
	return c.base.Next()
}

func (c *overlayCursor) Consumed() int { return c.n }

func (c *overlayCursor) Clone() Cursor {
	cp := *c
	cp.base = c.base.Clone()
	return &cp
}
