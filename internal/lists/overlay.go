// Overlay: a write layer over a read-only Index (typically a DiskIndex)
// that makes it Mutable without touching the underlying files. New and
// updated tuples live in memory as delta posting lists; base postings of
// updated or deleted tuples are tombstoned and skipped by the merged
// cursor. The merged sorted order is exactly BuildPostings' (descending
// value, ties by ascending id), so to the query path an overlay is
// indistinguishable from an index freshly built on the post-update
// dataset.
//
// The overlay follows the same synchronization contract as every other
// Mutable: mutations must be externally serialized against readers (the
// engine's reader-writer lock does this). Durability is out of scope —
// the delta is memory-only; persisting it through a write-ahead log on
// the DiskIndex files is the roadmap follow-up.
package lists

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/vec"
)

// overlayTuple is the overlay's version of a base tuple: a replacement,
// or a tombstone when dead is set.
type overlayTuple struct {
	t    vec.Sparse
	dead bool
}

// Overlay is a Mutable Index layering in-memory changes over a read-only
// base.
type Overlay struct {
	base  Index
	baseN int
	m     int
	stats *storage.IOStats

	// added holds inserted tuples; id = baseN + slice index. A nil slot
	// is a deleted insert (ids are never reused).
	added []vec.Sparse
	// over maps base ids to their overlay version (update or tombstone).
	over map[int]overlayTuple
	// deadBase flags base ids whose base postings are stale; merged
	// cursors skip them. One bit per base tuple.
	deadBase []uint64
	// deadPerDim counts skipped base postings per dimension, so ListLen
	// reports the live length.
	deadPerDim map[int]int
	// delta holds the postings of added and updated tuples, sorted.
	delta map[int]PostingList
}

// NewOverlay builds a write overlay over base. The base index must not
// change underneath it.
func NewOverlay(base Index) *Overlay {
	return &Overlay{
		base:       base,
		baseN:      base.NumTuples(),
		m:          base.Dim(),
		stats:      base.Stats(),
		over:       make(map[int]overlayTuple),
		deadBase:   make([]uint64, (base.NumTuples()+63)/64),
		deadPerDim: make(map[int]int),
		delta:      make(map[int]PostingList),
	}
}

// NumTuples returns the dataset cardinality including inserted tuples
// (tombstoned slots are counted: ids are stable).
func (ov *Overlay) NumTuples() int { return ov.baseN + len(ov.added) }

// Dim returns the dimensionality m.
func (ov *Overlay) Dim() int { return ov.m }

// ListLen returns the live length of dim's inverted list: base postings
// minus tombstoned ones plus delta postings.
func (ov *Overlay) ListLen(dim int) int {
	return ov.base.ListLen(dim) - ov.deadPerDim[dim] + ov.delta[dim].Len()
}

// Stats returns the I/O meter (shared with the base index).
func (ov *Overlay) Stats() *storage.IOStats { return ov.stats }

// WithStats returns a view whose base and delta accesses both charge st.
func (ov *Overlay) WithStats(st *storage.IOStats) Index {
	cp := *ov
	cp.base = ov.base.WithStats(st)
	cp.stats = st
	return &cp
}

// Tuple fetches a tuple, charging one random read. Overlay-resident
// versions are charged like MemIndex tuples.
func (ov *Overlay) Tuple(id int) vec.Sparse {
	if id >= ov.baseN {
		t := ov.added[id-ov.baseN]
		ov.stats.AddRandRead(4 + 12*len(t))
		return t
	}
	if e, ok := ov.over[id]; ok {
		ov.stats.AddRandRead(4 + 12*len(e.t))
		return e.t
	}
	return ov.base.Tuple(id)
}

// Cursor opens a merged sorted-access cursor on dim.
func (ov *Overlay) Cursor(dim int) Cursor {
	pl := ov.delta[dim]
	return &overlayCursor{
		base:  ov.base.Cursor(dim),
		dead:  ov.deadBase,
		ids:   pl.IDs,
		vals:  pl.Vals,
		stats: ov.stats,
	}
}

// current returns the live version of a base id (nil when tombstoned)
// plus whether its base postings are already dead.
func (ov *Overlay) current(id int) (t vec.Sparse, overridden bool, err error) {
	if e, ok := ov.over[id]; ok {
		if e.dead {
			return nil, true, fmt.Errorf("lists: tuple %d is deleted", id)
		}
		return e.t, true, nil
	}
	return ov.base.Tuple(id), false, nil
}

// tombstoneBase marks a base tuple's postings dead (first override only).
func (ov *Overlay) tombstoneBase(id int, base vec.Sparse) {
	ov.deadBase[id>>6] |= 1 << (uint(id) & 63)
	for _, e := range base {
		ov.deadPerDim[e.Dim]++
	}
}

func (ov *Overlay) addDelta(id int, t vec.Sparse) {
	for _, e := range t {
		ov.delta[e.Dim] = insertPosting(ov.delta[e.Dim], int32(id), e.Val)
	}
}

func (ov *Overlay) dropDelta(id int, t vec.Sparse) {
	for _, e := range t {
		pl, ok := removePosting(ov.delta[e.Dim], int32(id), e.Val)
		if !ok {
			panic(fmt.Sprintf("lists: delta posting (%d, %v) missing from dim %d", id, e.Val, e.Dim))
		}
		ov.delta[e.Dim] = pl
	}
}

// Insert adds a new tuple to the overlay, returning its id.
func (ov *Overlay) Insert(t vec.Sparse) (int, error) {
	if err := validateTuple(t, ov.m); err != nil {
		return -1, err
	}
	id := ov.baseN + len(ov.added)
	ov.added = append(ov.added, t.Clone())
	ov.addDelta(id, t)
	return id, nil
}

// Update replaces tuple id and returns the previous version.
func (ov *Overlay) Update(id int, t vec.Sparse) (vec.Sparse, error) {
	if id < 0 || id >= ov.NumTuples() {
		return nil, fmt.Errorf("lists: tuple %d out of range [0,%d)", id, ov.NumTuples())
	}
	if err := validateTuple(t, ov.m); err != nil {
		return nil, err
	}
	if id >= ov.baseN {
		old := ov.added[id-ov.baseN]
		if old == nil {
			return nil, fmt.Errorf("lists: tuple %d is deleted", id)
		}
		ov.dropDelta(id, old)
		ov.added[id-ov.baseN] = t.Clone()
		ov.addDelta(id, t)
		return old, nil
	}
	old, overridden, err := ov.current(id)
	if err != nil {
		return nil, err
	}
	if overridden {
		ov.dropDelta(id, old)
	} else {
		ov.tombstoneBase(id, old)
	}
	ov.over[id] = overlayTuple{t: t.Clone()}
	ov.addDelta(id, t)
	return old, nil
}

// Delete tombstones tuple id and returns the deleted version.
func (ov *Overlay) Delete(id int) (vec.Sparse, error) {
	if id < 0 || id >= ov.NumTuples() {
		return nil, fmt.Errorf("lists: tuple %d out of range [0,%d)", id, ov.NumTuples())
	}
	if id >= ov.baseN {
		old := ov.added[id-ov.baseN]
		if old == nil {
			return nil, fmt.Errorf("lists: tuple %d is already deleted", id)
		}
		ov.dropDelta(id, old)
		ov.added[id-ov.baseN] = nil
		return old, nil
	}
	old, overridden, err := ov.current(id)
	if err != nil {
		return nil, fmt.Errorf("lists: tuple %d is already deleted", id)
	}
	if overridden {
		ov.dropDelta(id, old)
	} else {
		ov.tombstoneBase(id, old)
	}
	ov.over[id] = overlayTuple{dead: true}
	return old, nil
}

// overlayCursor merges the base cursor (skipping tombstoned ids) with
// the dimension's delta postings, preserving the (val desc, id asc)
// order. An id never appears on both sides: delta postings belong to
// added or overridden tuples, whose base postings are tombstoned.
type overlayCursor struct {
	base  Cursor
	dead  []uint64
	ids   []int32
	vals  []float64
	pos   int // delta position
	n     int // merged postings consumed
	stats *storage.IOStats
}

// skipDead consumes base postings of tombstoned tuples. Reading past
// them is charged to the base cursor: the scan physically visits them.
func (c *overlayCursor) skipDead() {
	for {
		p, ok := c.base.Peek()
		if !ok || c.dead[p.ID>>6]&(1<<(uint(p.ID)&63)) == 0 {
			return
		}
		c.base.Next()
	}
}

// peek returns the next merged posting and whether it comes from the
// delta side.
func (c *overlayCursor) peek() (p storage.Posting, fromDelta, ok bool) {
	c.skipDead()
	bp, bok := c.base.Peek()
	if c.pos < len(c.ids) {
		dp := storage.Posting{ID: int(c.ids[c.pos]), Val: c.vals[c.pos]}
		if !bok || dp.Val > bp.Val || (dp.Val == bp.Val && dp.ID < bp.ID) {
			return dp, true, true
		}
	}
	return bp, false, bok
}

func (c *overlayCursor) Peek() (storage.Posting, bool) {
	p, _, ok := c.peek()
	return p, ok
}

func (c *overlayCursor) Next() (storage.Posting, bool) {
	p, fromDelta, ok := c.peek()
	if !ok {
		return storage.Posting{}, false
	}
	c.n++
	if fromDelta {
		// Charge the delta side like MemIndex postings.
		if c.pos%postingsPerPage == 0 {
			c.stats.AddSeqPage(1)
		}
		c.pos++
		return p, true
	}
	return c.base.Next()
}

func (c *overlayCursor) Consumed() int { return c.n }

func (c *overlayCursor) Clone() Cursor {
	cp := *c
	cp.base = c.base.Clone()
	return &cp
}
