package lists

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/fixture"
	"repro/internal/vec"
)

// randTuple draws a sparse tuple over m dimensions.
func randTuple(rng *rand.Rand, m int) vec.Sparse {
	var entries []vec.Entry
	for d := 0; d < m; d++ {
		if rng.Float64() < 0.5 {
			entries = append(entries, vec.Entry{Dim: d, Val: 0.05 + 0.95*rng.Float64()})
		}
	}
	t, err := vec.NewSparse(entries)
	if err != nil {
		panic(err)
	}
	return t
}

// applyRandomOps drives a random mutation sequence against ix while
// mirroring it in shadow (nil = deleted). Returns the shadow.
func applyRandomOps(t *testing.T, rng *rand.Rand, ix Mutable, shadow []vec.Sparse, m, nOps int) []vec.Sparse {
	t.Helper()
	live := func() []int {
		var ids []int
		for id, tu := range shadow {
			if tu != nil {
				ids = append(ids, id)
			}
		}
		return ids
	}
	for op := 0; op < nOps; op++ {
		switch ids := live(); {
		case len(ids) == 0 || rng.Float64() < 0.4:
			tu := randTuple(rng, m)
			id, err := ix.Insert(tu)
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			if id != len(shadow) {
				t.Fatalf("insert id %d, want %d", id, len(shadow))
			}
			shadow = append(shadow, tu)
		case rng.Float64() < 0.6:
			id := ids[rng.Intn(len(ids))]
			tu := randTuple(rng, m)
			old, err := ix.Update(id, tu)
			if err != nil {
				t.Fatalf("update %d: %v", id, err)
			}
			if old.String() != shadow[id].String() {
				t.Fatalf("update %d returned old %v, want %v", id, old, shadow[id])
			}
			shadow[id] = tu
		default:
			id := ids[rng.Intn(len(ids))]
			old, err := ix.Delete(id)
			if err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			if old.String() != shadow[id].String() {
				t.Fatalf("delete %d returned old %v, want %v", id, old, shadow[id])
			}
			shadow[id] = nil
		}
	}
	return shadow
}

// assertIndexEquals checks that got serves exactly the same postings,
// list lengths and tuples as a MemIndex freshly built on shadow.
func assertIndexEquals(t *testing.T, got Index, shadow []vec.Sparse, m int) {
	t.Helper()
	want := NewMemIndex(shadow, m)
	if got.NumTuples() != want.NumTuples() {
		t.Fatalf("NumTuples %d, want %d", got.NumTuples(), want.NumTuples())
	}
	for d := 0; d < m; d++ {
		if got.ListLen(d) != want.ListLen(d) {
			t.Fatalf("ListLen(%d) = %d, want %d", d, got.ListLen(d), want.ListLen(d))
		}
		gc, wc := got.Cursor(d), want.Cursor(d)
		for i := 0; ; i++ {
			gp, gok := gc.Next()
			wp, wok := wc.Next()
			if gok != wok {
				t.Fatalf("dim %d posting %d: ok %v vs %v", d, i, gok, wok)
			}
			if !gok {
				break
			}
			if gp != wp {
				t.Fatalf("dim %d posting %d: %v, want %v", d, i, gp, wp)
			}
		}
	}
	for id := range shadow {
		g, w := got.Tuple(id), want.Tuple(id)
		if g.String() != w.String() {
			t.Fatalf("tuple %d: %v, want %v", id, g, w)
		}
	}
}

// TestMemIndexMutationsMatchRebuild: after a random op sequence the
// mutated MemIndex is bit-for-bit the index a fresh build on the
// post-update dataset would produce — same posting order (val desc, id
// asc), same list lengths, same tuples.
func TestMemIndexMutationsMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const m = 5
	for trial := 0; trial < 20; trial++ {
		var shadow []vec.Sparse
		for i := 0; i < 8; i++ {
			shadow = append(shadow, randTuple(rng, m))
		}
		ix := NewMemIndex(cloneTuples(shadow), m)
		shadow = applyRandomOps(t, rng, ix, shadow, m, 30)
		assertIndexEquals(t, ix, shadow, m)
	}
}

func cloneTuples(ts []vec.Sparse) []vec.Sparse {
	out := make([]vec.Sparse, len(ts))
	for i, t := range ts {
		if t != nil {
			out[i] = t.Clone()
		}
	}
	return out
}

// TestMemIndexMutationErrors pins the rejection paths: out-of-range
// ids, double deletes, updates of deleted tuples, and out-of-domain
// payloads.
func TestMemIndexMutationErrors(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	ix := NewMemIndex(cloneTuples(tuples), 2)

	if _, err := ix.Update(99, vec.MustSparse(vec.Entry{Dim: 0, Val: 0.5})); err == nil {
		t.Fatal("update out of range accepted")
	}
	if _, err := ix.Delete(-1); err == nil {
		t.Fatal("delete out of range accepted")
	}
	if _, err := ix.Insert(vec.MustSparse(vec.Entry{Dim: 2, Val: 0.5})); err == nil {
		t.Fatal("insert with dim ≥ m accepted")
	}
	if _, err := ix.Insert(vec.Sparse{{Dim: 0, Val: 1.5}}); err == nil {
		t.Fatal("insert with value > 1 accepted")
	}
	if _, err := ix.Delete(3); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := ix.Delete(3); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := ix.Update(3, vec.MustSparse(vec.Entry{Dim: 0, Val: 0.5})); err == nil {
		t.Fatal("update of deleted tuple accepted")
	}
	if got := ix.Tuple(3); len(got) != 0 {
		t.Fatalf("deleted tuple reads %v, want empty", got)
	}
}

// TestOverlayMatchesRebuild: the disk-backed write overlay, driven by
// the same random op sequence, serves exactly what a fresh in-memory
// index on the post-update dataset serves.
func TestOverlayMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const m = 4
	var base []vec.Sparse
	for i := 0; i < 10; i++ {
		base = append(base, randTuple(rng, m))
	}
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat")
	if err := SaveDataset(tp, lp, base, m); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDiskIndex(tp, lp, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	ov := NewOverlay(disk)
	shadow := applyRandomOps(t, rng, ov, cloneTuples(base), m, 40)
	assertIndexEquals(t, ov, shadow, m)

	// Cursor clones resume independently at the merge position.
	c := ov.Cursor(0)
	c.Next()
	cl := c.Clone()
	for {
		p1, ok1 := c.Next()
		p2, ok2 := cl.Next()
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("clone diverged: %v/%v vs %v/%v", p1, ok1, p2, ok2)
		}
		if !ok1 {
			break
		}
	}
}

// TestOverlayErrorPaths pins the overlay's rejection paths, including
// deletes and updates of overlay-resident (inserted) tuples.
func TestOverlayErrorPaths(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	ov := NewOverlay(NewMemIndex(cloneTuples(tuples), 2))

	id, err := ov.Insert(vec.MustSparse(vec.Entry{Dim: 0, Val: 0.4}))
	if err != nil || id != 4 {
		t.Fatalf("insert: id %d err %v", id, err)
	}
	if _, err := ov.Delete(id); err != nil {
		t.Fatalf("delete inserted: %v", err)
	}
	if _, err := ov.Delete(id); err == nil {
		t.Fatal("double delete of inserted tuple accepted")
	}
	if _, err := ov.Update(id, vec.MustSparse(vec.Entry{Dim: 1, Val: 0.2})); err == nil {
		t.Fatal("update of deleted inserted tuple accepted")
	}
	if _, err := ov.Delete(1); err != nil {
		t.Fatalf("delete base: %v", err)
	}
	if _, err := ov.Delete(1); err == nil {
		t.Fatal("double delete of base tuple accepted")
	}
	if _, err := ov.Update(1, vec.MustSparse(vec.Entry{Dim: 1, Val: 0.2})); err == nil {
		t.Fatal("update of deleted base tuple accepted")
	}
	if _, err := ov.Update(99, nil); err == nil {
		t.Fatal("update out of range accepted")
	}
}
